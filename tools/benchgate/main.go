// Command benchgate compares two pipbench -json reports and fails when the
// new run regresses beyond a tolerance factor — the CI gate behind the
// BENCH_*.json trajectory files:
//
//	go run ./tools/benchgate -old BENCH_5.json -new BENCH_6.json [-factor 8]
//
// Checks, in order: the schema versions must match exactly (a layout change
// invalidates the comparison, not the build); every speedup and vectorized
// row of the new report must carry Identical=true (a bit-identity break is
// a correctness failure, never a perf tradeoff); and throughput /
// per-sample cost / join latency / the join micro-pair must not be worse
// than the old report by more than the tolerance factor. The factor defaults high (8x) because CI machines are noisy and
// the gate exists to catch order-of-magnitude cliffs, not jitter. Exit
// status is 1 on any finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the pipbench -json fields the gate reads; unknown fields
// are ignored so satellite additions don't break old gates.
type report struct {
	SchemaVersion int     `json:"schema_version"`
	GitSHA        string  `json:"git_sha"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	NsPerSample   float64 `json:"ns_per_sample"`
	Join          struct {
		Ms float64 `json:"ms"`
	} `json:"join"`
	Speedup []struct {
		Workload  string `json:"workload"`
		Identical bool   `json:"identical"`
	} `json:"speedup"`
	Vectorized []struct {
		Workload  string `json:"workload"`
		Identical bool   `json:"identical"`
	} `json:"vectorized"`
	JoinBenches []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"join_benches"`
}

func main() {
	var (
		oldPath = flag.String("old", "", "baseline report (required)")
		newPath = flag.String("new", "", "candidate report (required)")
		factor  = flag.Float64("factor", 8, "maximum tolerated regression factor")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	bad := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
		bad++
	}

	if oldRep.SchemaVersion != newRep.SchemaVersion {
		fail("schema version mismatch: baseline v%d, candidate v%d — regenerate the baseline",
			oldRep.SchemaVersion, newRep.SchemaVersion)
	}
	for _, s := range newRep.Speedup {
		if !s.Identical {
			fail("workload %s: parallel run is not bit-identical to sequential", s.Workload)
		}
	}
	for _, v := range newRep.Vectorized {
		if !v.Identical {
			fail("workload %s: vectorized run is not bit-identical to the row engine", v.Workload)
		}
	}
	// Higher is better for throughput; lower is better for costs.
	if o, n := oldRep.QueriesPerSec, newRep.QueriesPerSec; o > 0 && n < o / *factor {
		fail("queries/s regressed beyond %gx: %.1f -> %.1f", *factor, o, n)
	}
	if o, n := oldRep.NsPerSample, newRep.NsPerSample; o > 0 && n > o**factor {
		fail("ns/sample regressed beyond %gx: %.1f -> %.1f", *factor, o, n)
	}
	if o, n := oldRep.Join.Ms, newRep.Join.Ms; o > 0 && n > o**factor {
		fail("join latency regressed beyond %gx: %.3fms -> %.3fms", *factor, o, n)
	}
	// Join micro-pair: compared by name, only when both reports carry the
	// row (baselines before BENCH_10 lack the section).
	for _, n := range newRep.JoinBenches {
		for _, o := range oldRep.JoinBenches {
			if o.Name == n.Name && o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp**factor {
				fail("%s regressed beyond %gx: %.0fns -> %.0fns", n.Name, *factor, o.NsPerOp, n.NsPerOp)
			}
		}
	}

	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%s -> %s, factor %g)\n", oldRep.GitSHA, newRep.GitSHA, *factor)
}

// load reads and decodes one report file.
func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
