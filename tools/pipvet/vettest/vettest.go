// Package vettest is pipvet's analysistest equivalent: it loads fixture
// package trees from a testdata directory, type-checks them with the
// standard library's source importer (hermetic — no export data, no network,
// no extra modules), runs one analyzer, and compares the reported
// diagnostics against `// want "regexp"` expectation comments in the
// fixtures.
//
// Fixture layout mirrors golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<import/path>/*.go
//
// Imports between fixture packages resolve inside testdata/src, so a
// fixture tree can fake the shapes the analyzers match on (for example a
// pipfix/internal/core package with a DB type — the analyzers scope by
// import-path suffix, so the fakes are indistinguishable from the real
// module). Standard-library imports resolve from GOROOT source.
//
// Expectations: a comment `// want "re1" "re2"` on a source line demands
// exactly those diagnostics on that line, each matched by its regexp; a
// line without a want comment demands none. Both double-quoted and
// backquoted Go string literals are accepted.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"pip/tools/pipvet/analysis"
)

// Run loads each fixture package below dir/src, applies the analyzer, and
// reports every mismatch between diagnostics and want comments as a test
// error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		srcRoot: filepath.Join(dir, "src"),
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loaded{},
	}
	for _, path := range pkgPaths {
		lp, err := ld.load(path)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, lp.files, lp.pkg, lp.info)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, fset, lp.files, diags)
	}
}

// loaded is one parsed and type-checked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture imports inside srcRoot and everything else via
// the GOROOT source importer.
type loader struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	pkgs    map[string]*loaded
}

// Import implements types.Importer over the fixture tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && fi.IsDir() {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks the fixture package at the import path,
// caching the result (fixture packages may import each other).
func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

// wantRe is one expectation: a compiled regexp and whether a diagnostic
// matched it.
type wantRe struct {
	pos token.Pos
	re  *regexp.Regexp
	hit bool
}

// checkWants verifies set-equality between diagnostics and want comments,
// line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.AnalyzerDiagnostic) {
	t.Helper()
	wants := map[string][]*wantRe{} // "file:line" → expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: bad want comment: %v", fset.Position(c.Pos()), err)
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, re := range res {
					wants[key] = append(wants[key], &wantRe{pos: c.Pos(), re: re})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", p, d.Analyzer.Name, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", fset.Position(w.pos), w.re)
			}
		}
	}
}

// parseWant extracts the quoted regexps of a `// want "re" ...` comment, or
// nil if the comment carries no want marker. The marker may appear mid-
// comment (after a //pipvet: directive, whose diagnostics land on the
// directive's own line).
func parseWant(text string) ([]*regexp.Regexp, error) {
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil, nil
	}
	body := text[idx+len("// want "):]
	var out []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				return nil, fmt.Errorf("unterminated string in %q", text)
			}
			lit = rest[:end+1]
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", text)
			}
			lit = rest[:end+2]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", rest)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %w", lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("compiling %q: %w", s, err)
		}
		out = append(out, re)
	}
	return out, nil
}
