// Command pipvet is PIP's project-specific static-analysis suite: six
// analyzers that turn the engine's determinism, lock-discipline,
// WAL-commit and error-wrapping conventions into machine-checked
// contracts (see tools/pipvet/analyzers and ARCHITECTURE.md, "Statically
// enforced invariants").
//
// It speaks the `go vet -vettool` unit-checker protocol, so the supported
// invocations are:
//
//	go vet -vettool=$(command -v pipvet) ./...   # as a vet tool
//	pipvet ./...                                 # standalone: re-execs go vet
//
// The driver is hermetic: it is built from the standard library only
// (go/ast, go/types, go/importer), with no dependency on
// golang.org/x/tools. Findings print to stderr as
// `file:line:col: [analyzer] message` and the process exits 2 when any
// finding is unsuppressed, matching vet convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"pip/tools/pipvet/analysis"
	"pip/tools/pipvet/analyzers"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The go command asks for the tool's flag definitions as JSON;
		// pipvet takes none beyond the protocol flags.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	default:
		os.Exit(runStandalone(args))
	}
}

// printVersion implements the -V=full handshake: the go command hashes the
// line (in particular the buildID field, a content hash of the executable)
// into its action cache key, so vet results are invalidated when the tool
// changes.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, string(h.Sum(nil)))
}

// runStandalone re-execs the tool through `go vet -vettool=self`, which
// handles package loading, export data and caching; defaulting to ./... .
func runStandalone(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipvet: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "pipvet: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig is the JSON unit description the go command hands the tool;
// field set mirrors the x/tools unitchecker contract.
type vetConfig struct {
	// ID is the package ID of the unit.
	ID string
	// Compiler is gc or gccgo; selects the export-data reader.
	Compiler string
	// Dir is the package directory.
	Dir string
	// ImportPath is the package's import path.
	ImportPath string
	// GoVersion is the language version to type-check with.
	GoVersion string
	// GoFiles lists the package's Go sources, absolute.
	GoFiles []string
	// ImportMap resolves source import paths to canonical package paths.
	ImportMap map[string]string
	// PackageFile maps canonical package paths to export-data files.
	PackageFile map[string]string
	// Standard marks standard-library packages.
	Standard map[string]bool
	// VetxOnly is true when the go command only wants the facts file.
	VetxOnly bool
	// VetxOutput is where the tool must write its facts file.
	VetxOutput string
	// SucceedOnTypecheckFailure asks the tool to exit 0 on type errors
	// (the compiler will report them better).
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit described by the .cfg file and returns the
// process exit code (0 clean, 1 driver error, 2 findings).
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipvet: reading config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pipvet: parsing config %s: %v\n", cfgPath, err)
		return 1
	}
	// pipvet carries no facts, but the protocol requires the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pipvet: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "pipvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pipvet: %v\n", err)
		return 1
	}

	diags, err := analysis.Run(analyzers.All(), fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typecheck type-checks the unit's files against the export data the go
// command supplied, falling back through ImportMap for vendored or
// versioned paths.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compiled := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiled.Import(path)
	})
	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, arch()),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	return pkg, info, nil
}

// arch returns the target architecture for sizes, preferring the go
// command's environment.
func arch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return "amd64"
}
