// Package analysis is the minimal, dependency-free analyzer framework
// behind pipvet. It mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer holds a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics — but carries only the subset the
// pipvet suite needs (no facts, no result passing, no flag plumbing), so
// the whole toolchain builds hermetically from the standard library.
//
// The two drivers are cmd-level: tools/pipvet's unitchecker speaks the
// `go vet -vettool` protocol and constructs one Pass per vet unit, and
// tools/pipvet/vettest loads testdata fixture trees and checks reported
// diagnostics against `// want "regexp"` comments.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (as reported in diagnostics
// and named by `//pipvet:allow <name> <reason>` suppressions), a short Doc
// string, and the Run function applied to every package under analysis.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions. It must
	// be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by pipvet's usage text.
	Doc string
	// Run inspects the package presented by pass and reports findings via
	// pass.Report/Reportf. A non-nil error aborts the whole run (driver
	// failure, not a finding).
	Run func(pass *Pass) error
}

// Pass presents one type-checked package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the analyzer this pass belongs to.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression types, object uses
	// and definitions for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position in the package's file set and a
// human-readable message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes it.
	Message string
}

// Run applies each analyzer to the package described by (fset, files, pkg,
// info) and returns the collected diagnostics sorted by position. It is the
// shared core of both drivers.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]AnalyzerDiagnostic, error) {
	var out []AnalyzerDiagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				out = append(out, AnalyzerDiagnostic{Analyzer: a, Diagnostic: d})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// AnalyzerDiagnostic pairs a diagnostic with the analyzer that produced it.
type AnalyzerDiagnostic struct {
	// Analyzer produced the diagnostic.
	Analyzer *Analyzer
	// Diagnostic is the finding itself.
	Diagnostic
}

// NewInfo returns a types.Info with every map the pipvet analyzers consult
// allocated, ready to hand to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// IsTestFile reports whether the file's name ends in _test.go. The contract
// analyzers bind the engine, not its tests, so their passes skip test files;
// see the suite documentation in ARCHITECTURE.md.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
