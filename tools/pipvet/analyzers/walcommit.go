// The walcommit pass: catalog mutations only through core.DB.Commit.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pip/tools/pipvet/analysis"
)

// WALCommit enforces the fail-stop durability invariant from the WAL work:
// in the statement-exec layer (internal/sql, internal/server), applied-but-
// unlogged catalog mutations must be unrepresentable. Every call chain that
// reaches a catalog-mutating core.DB method (Register, Drop, AppendRow,
// CreateVariable, CreateJointVariables, NewVariableFromInstance,
// Materialize, UpdateConfig) must originate in a function literal passed to
// core.DB.Commit or core.DB.RunExclusive — the choke points that append to
// the write-ahead statement log before acknowledging.
//
// The pass computes, per package, the set M of named functions that
// transitively contain a guarded mutating call (function-literal bodies
// count toward their enclosing function, except commit closures, which are
// roots). It then reports:
//
//   - calls into M (and value captures of M members) from any function
//     outside M that is not a commit closure and not marked
//     //pipvet:commitpath;
//   - exported functions in M that are not marked (callers outside the
//     package would bypass the hook invisibly);
//   - unexported functions in M that nothing in the package calls
//     (mutations with no statically visible route through Commit, e.g.
//     reached only via interface dispatch);
//   - direct invocation of a commit-closure variable outside the hook
//     (the `run()` fast path for non-mutating statements) — deliberate
//     instances carry //pipvet:allow walcommit <reason>.
//
// `//pipvet:commitpath <reason>` in a function's doc comment asserts that
// every caller reaches it under Commit (used for entry points the pass
// cannot see); the suppress pass requires the reason.
var WALCommit = &analysis.Analyzer{
	Name: "walcommit",
	Doc:  "flags catalog mutations in the exec layer that can bypass the core.DB.Commit durability hook",
	Run:  runWALCommit,
}

// mutatingDBMethods are the core.DB methods that mutate durable catalog
// state — exactly what the write-ahead statement log must witness.
var mutatingDBMethods = map[string]bool{
	"Register": true, "Drop": true, "AppendRow": true,
	"CreateVariable": true, "CreateJointVariables": true,
	"NewVariableFromInstance": true, "Materialize": true,
	"UpdateConfig": true,
}

// hookMethods are the core.DB choke points whose function-literal arguments
// are the legitimate mutation roots.
var hookMethods = map[string]bool{"Commit": true, "RunExclusive": true}

// wcFunc is the per-function state of the walcommit pass.
type wcFunc struct {
	decl     *ast.FuncDecl
	file     *ast.File
	marked   bool // carries //pipvet:commitpath
	inM      bool // transitively contains a guarded mutating call
	calledIn bool // called from anywhere in the package
}

// wcEdge is one attributed call edge or value reference.
type wcEdge struct {
	from     *types.Func // nil when the caller is a commit closure
	to       *types.Func
	pos      token.Pos
	file     *ast.File
	valueRef bool // a capture (non-call use), not an invocation
}

func runWALCommit(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !pathHasSuffix(path, "internal/sql") && !pathHasSuffix(path, "internal/server") {
		return nil
	}

	funcs := map[*types.Func]*wcFunc{}
	var order []*types.Func
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			funcs[obj] = &wcFunc{decl: fd, file: f, marked: hasCommitpathMark(fd)}
			order = append(order, obj)
		}
	}

	var edges []wcEdge
	closureCalls := map[*ast.File][]token.Pos{} // run()-style invocations per file
	for _, obj := range order {
		fn := funcs[obj]
		w := &wcWalker{
			pass: pass, file: fn.file, owner: obj, fn: fn,
			funcs:     funcs,
			roots:     commitClosures(pass.TypesInfo, fn.decl),
			callNames: map[*ast.Ident]bool{},
		}
		w.walk(fn.decl.Body, false)
		edges = append(edges, w.edges...)
		closureCalls[fn.file] = append(closureCalls[fn.file], w.closureCalls...)
	}

	// Transitive closure: f ∈ M if it directly mutates or calls into M.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if e.from == nil || e.valueRef {
				continue
			}
			toF, fromF := funcs[e.to], funcs[e.from]
			if toF != nil && fromF != nil && toF.inM && !fromF.inM {
				fromF.inM = true
				changed = true
			}
		}
	}
	// Mark who is called at all (for the interface-dispatch report).
	for _, e := range edges {
		if toF := funcs[e.to]; toF != nil && !e.valueRef {
			toF.calledIn = true
		}
	}

	// Calls into (or value captures of) M from undisciplined contexts.
	for _, e := range edges {
		toF := funcs[e.to]
		if toF == nil || !toF.inM {
			continue
		}
		if e.from == nil {
			continue // commit closures are the legitimate roots
		}
		fromF := funcs[e.from]
		if fromF != nil && (fromF.inM || fromF.marked) {
			continue
		}
		sup := fileSuppressions(pass.Fset, e.file)
		if sup.suppressed(pass.Fset, e.pos, pass.Analyzer.Name) {
			continue
		}
		verb := "calls"
		if e.valueRef {
			verb = "captures"
		}
		pass.Reportf(e.pos,
			"%s %s %s, which reaches catalog mutations, outside the core.DB.Commit hook: route it through Commit or mark the caller //pipvet:commitpath <reason>",
			e.from.Name(), verb, e.to.Name())
	}

	// M members with no disciplined route into them.
	for _, obj := range order {
		fn := funcs[obj]
		if !fn.inM || fn.marked {
			continue
		}
		sup := fileSuppressions(pass.Fset, fn.file)
		if sup.suppressed(pass.Fset, fn.decl.Pos(), pass.Analyzer.Name) {
			continue
		}
		if obj.Exported() {
			pass.Reportf(fn.decl.Pos(),
				"exported function %s reaches catalog mutations: callers outside the package bypass core.DB.Commit; unexport it, route it through Commit, or mark it //pipvet:commitpath <reason>",
				obj.Name())
			continue
		}
		if !fn.calledIn {
			pass.Reportf(fn.decl.Pos(),
				"function %s reaches catalog mutations but nothing in the package calls it (interface dispatch?): its mutations can bypass core.DB.Commit; mark it //pipvet:commitpath <reason> if every route is covered",
				obj.Name())
		}
	}

	// Direct invocation of a commit closure outside the hook.
	for f, poss := range closureCalls {
		sup := fileSuppressions(pass.Fset, f)
		for _, pos := range poss {
			if sup.suppressed(pass.Fset, pos, pass.Analyzer.Name) {
				continue
			}
			pass.Reportf(pos,
				"commit closure invoked directly, bypassing the core.DB.Commit hook: only non-mutating statements may take this path; justify with //pipvet:allow walcommit <reason>")
		}
	}
	return nil
}

// wcWalker walks one function declaration, attributing calls either to the
// named function or — inside commit closures — to the root context.
type wcWalker struct {
	pass      *analysis.Pass
	file      *ast.File
	owner     *types.Func
	fn        *wcFunc
	funcs     map[*types.Func]*wcFunc
	roots     rootSet
	callNames map[*ast.Ident]bool // idents that are callee names, not captures

	edges        []wcEdge
	closureCalls []token.Pos
}

// walk traverses n; inRoot is true inside a commit-closure literal.
func (w *wcWalker) walk(n ast.Node, inRoot bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if w.roots.lits[x] {
				w.walk(x.Body, true)
				return false
			}
			return true
		case *ast.CallExpr:
			w.visitCall(x, inRoot)
			return true
		case *ast.Ident:
			w.visitIdent(x, inRoot)
			return true
		}
		return true
	})
}

// visitCall records call edges, direct mutations, and closure invocations.
func (w *wcWalker) visitCall(call *ast.CallExpr, inRoot bool) {
	// Remember the callee name so visitIdent does not double-count it as a
	// value capture (Inspect visits the CallExpr before its children).
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		w.callNames[fun] = true
	case *ast.SelectorExpr:
		w.callNames[fun.Sel] = true
	}
	from := w.owner
	if inRoot {
		from = nil
	}
	if fn := calleeFunc(w.pass.TypesInfo, call); fn != nil {
		if isGuardedMutation(fn) {
			// A direct mutation seeds M for the enclosing named function;
			// inside a commit closure it is simply legal.
			if !inRoot {
				w.fn.inM = true
			}
			return
		}
		if w.funcs[fn] != nil {
			w.edges = append(w.edges, wcEdge{from: from, to: fn, pos: call.Pos(), file: w.file})
			return
		}
	}
	// run()-style: invoking a local variable that holds a commit closure.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && !inRoot && w.roots.vars[id.Name] {
		w.closureCalls = append(w.closureCalls, call.Pos())
	}
}

// visitIdent records value references (captures) of package functions.
func (w *wcWalker) visitIdent(id *ast.Ident, inRoot bool) {
	if w.callNames[id] {
		return // callee position; visitCall already recorded the edge
	}
	fn, _ := w.pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || w.funcs[fn] == nil {
		return
	}
	from := w.owner
	if inRoot {
		from = nil
	}
	w.edges = append(w.edges, wcEdge{from: from, to: fn, pos: id.Pos(), file: w.file, valueRef: true})
}

// rootSet holds one declaration's commit-closure literals and the local
// variable names they are bound to.
type rootSet struct {
	lits map[*ast.FuncLit]bool
	vars map[string]bool
}

// commitClosures finds the function literals of fd that are passed to
// core.DB.Commit/RunExclusive — directly as arguments, or bound to a local
// function-typed variable that is passed.
func commitClosures(info *types.Info, fd *ast.FuncDecl) rootSet {
	rs := rootSet{lits: map[*ast.FuncLit]bool{}, vars: map[string]bool{}}
	candidates := map[string]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isHookCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				rs.lits[a] = true
			case *ast.Ident:
				if t := info.Types[a].Type; t != nil {
					if _, isFunc := t.Underlying().(*types.Signature); isFunc {
						candidates[a.Name] = true
					}
				}
			}
		}
		return true
	})
	if len(candidates) > 0 {
		ast.Inspect(fd, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || !candidates[id.Name] || i >= len(as.Rhs) {
					continue
				}
				if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
					rs.lits[lit] = true
					rs.vars[id.Name] = true
				}
			}
			return true
		})
	}
	return rs
}

// isHookCall reports whether call invokes core.DB.Commit or RunExclusive.
func isHookCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !hookMethods[sel.Sel.Name] {
		return false
	}
	return isCoreDBMethod(info, sel)
}

// isGuardedMutation reports whether fn is a catalog-mutating core.DB method.
func isGuardedMutation(fn *types.Func) bool {
	if !mutatingDBMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFromPkgSuffix(sig.Recv().Type(), "internal/core", "DB")
}

// isCoreDBMethod reports whether the selected function is a method on
// core.DB.
func isCoreDBMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFromPkgSuffix(sig.Recv().Type(), "internal/core", "DB")
}

// hasCommitpathMark reports whether the function's doc comment carries a
// //pipvet:commitpath directive.
func hasCommitpathMark(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//pipvet:"); ok {
			if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == dirCommitpath {
				return true
			}
		}
	}
	return false
}
