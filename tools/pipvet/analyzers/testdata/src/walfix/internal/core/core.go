// Package core fakes the real catalog package for the walcommit fixture:
// a DB with the Commit/RunExclusive hooks and the guarded mutating methods.
package core

// DB is the fixture catalog.
type DB struct{}

// Commit is the durability hook: logs the statement, then applies.
func (db *DB) Commit(text string, args []any, apply func() error) error {
	return apply()
}

// RunExclusive runs fn under the commit lock without logging.
func (db *DB) RunExclusive(fn func() error) error { return fn() }

// Register is a guarded catalog mutation.
func (db *DB) Register(name string) error { return nil }

// Drop is a guarded catalog mutation.
func (db *DB) Drop(name string) error { return nil }

// AppendRow is a guarded catalog mutation.
func (db *DB) AppendRow(name string, row []float64) error { return nil }
