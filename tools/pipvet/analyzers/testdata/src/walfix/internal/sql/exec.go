// Package sql is the walcommit consumer fixture: the import-path suffix
// internal/sql puts it in the statement-exec scope.
package sql

import "walfix/internal/core"

// execGood routes the mutation through the Commit hook: accepted.
func execGood(db *core.DB, src string) error {
	run := func() error { return execStmt(db) }
	return db.Commit(src, nil, run)
}

// execStmt is the shared apply step; it is in M (it mutates) but every
// caller is disciplined, so it is accepted.
func execStmt(db *core.DB) error {
	return db.Register("t")
}

// execDirectGood passes the literal straight to the hook: accepted.
func execDirectGood(db *core.DB, src string) error {
	return db.Commit(src, nil, func() error {
		return db.Drop("t")
	})
}

// exclusiveGood uses the RunExclusive hook: accepted.
func exclusiveGood(db *core.DB) error {
	return db.RunExclusive(func() error {
		return db.Register("t")
	})
}

// BadExec is exported and reaches mutations without the hook: flagged.
func BadExec(db *core.DB) error { // want `exported function BadExec reaches catalog mutations`
	return db.Register("t")
}

// orphanMutate is unexported, mutating, and nothing calls it: flagged.
func orphanMutate(db *core.DB) error { // want `nothing in the package calls it`
	return db.Drop("t")
}

// indirect joins M by calling execStmt outside any hook; as the top of an
// undisciplined chain with no callers it is flagged.
func indirect(db *core.DB) error { // want `nothing in the package calls it`
	return execStmt(db)
}

// execFast invokes the commit closure directly on the fast path: flagged.
func execFast(db *core.DB, src string, mut bool) error {
	run := func() error { return execStmt(db) }
	if mut {
		return db.Commit(src, nil, run)
	}
	return run() // want `commit closure invoked directly`
}

// execFastOK is the same shape with the documented justification.
func execFastOK(db *core.DB, src string, mut bool) error {
	run := func() error { return execStmt(db) }
	if mut {
		return db.Commit(src, nil, run)
	}
	//pipvet:allow walcommit non-mutating statements need no log entry
	return run()
}

// applyReplay is reached only by the recovery replayer, which already
// holds the commit path; the mark vouches for it.
//
//pipvet:commitpath recovery replay applies statements under Commit
func applyReplay(db *core.DB) error {
	return db.Register("t")
}

// handler leaks an M member as a value: flagged at the capture.
func handler() func(*core.DB) error {
	h := execStmt // want `handler captures execStmt, which reaches catalog mutations`
	return h
}
