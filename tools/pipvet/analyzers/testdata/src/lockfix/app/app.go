// Package app is the catalock consumer fixture: it sits outside the
// exempt internal/core and internal/ctable packages, so every touch of a
// catalog-live table is checked.
package app

import (
	"lockfix/internal/core"
	"lockfix/internal/ctable"
)

// scanLive ranges the raw tuple slice of a live table: flagged.
func scanLive(db *core.DB) int {
	tb, err := db.Table("x")
	if err != nil {
		return 0
	}
	n := 0
	for range tb.Tuples { // want `tb\.Tuples touches a catalog-live table`
		n++
	}
	return n
}

// lenLive calls the unlocked Len on a live table: flagged.
func lenLive(db *core.DB) int {
	tb := db.Materialize("x")
	return tb.Len() // want `tb\.Len touches a catalog-live table`
}

// appendLive mutates through an alias of a live table: the taint follows
// the assignment chain, flagged.
func appendLive(db *core.DB, row []ctable.Value) {
	tb := db.Materialize("x")
	t2 := tb
	t2.Append(row) // want `t2\.Append touches a catalog-live table`
}

// cloneLive copies a live table unlocked: flagged.
func cloneLive(db *core.DB) *ctable.Table {
	tb := db.Materialize("x")
	return tb.Clone() // want `tb\.Clone touches a catalog-live table`
}

// nameOK reads immutable post-creation state: accepted.
func nameOK(db *core.DB) string {
	tb := db.Materialize("x")
	return tb.Name
}

// snapshotOK reads through the locked accessor: accepted.
func snapshotOK(db *core.DB) int {
	tb := db.Materialize("x")
	return len(db.Snapshot(tb))
}

// localOK builds its own table — not catalog-live, unrestricted.
func localOK(row []ctable.Value) int {
	t := &ctable.Table{Name: "tmp"}
	t.Append(row)
	return len(t.Tuples)
}

// snapshotCopyOK works on the snapshot copy, not the live table: accepted.
func snapshotCopyOK(db *core.DB) int {
	tb := db.Materialize("x")
	rows := db.Snapshot(tb)
	return len(rows)
}

// suppressedLen carries a justification: suppressed.
func suppressedLen(db *core.DB) int {
	tb := db.Materialize("x")
	//pipvet:allow catalock single-writer bootstrap path, no concurrent sessions yet
	return tb.Len()
}
