// Package core fakes the real catalog package for the catalock fixture:
// a DB whose Table/Materialize accessors hand out catalog-live tables.
package core

import "lockfix/internal/ctable"

// DB is the fixture catalog.
type DB struct {
	tables map[string]*ctable.Table
}

// Table returns the live catalog table (catalock taint source).
func (db *DB) Table(name string) (*ctable.Table, error) {
	return db.tables[name], nil
}

// Materialize returns a live derived table (catalock taint source).
func (db *DB) Materialize(name string) *ctable.Table {
	return db.tables[name]
}

// Snapshot copies the tuples under the catalog lock (the sanctioned read).
func (db *DB) Snapshot(t *ctable.Table) [][]ctable.Value {
	out := make([][]ctable.Value, len(t.Tuples))
	copy(out, t.Tuples)
	return out
}

// AppendRow appends under the catalog lock (the sanctioned write).
func (db *DB) AppendRow(name string, row []ctable.Value) error {
	t, _ := db.Table(name)
	t.Append(row)
	return nil
}
