// Package ctable fakes the real tuple-table package for the catalock
// fixture: same type name, same import-path suffix, same guarded members.
package ctable

// Value is one cell.
type Value float64

// Table is the fixture table: Tuples and the unlocked methods below are
// the members catalock guards on catalog-live instances.
type Table struct {
	Name   string
	Schema []string
	Tuples [][]Value
}

// Append grows the tuple slice without locking.
func (t *Table) Append(row []Value) { t.Tuples = append(t.Tuples, row) }

// Len reads the tuple count without locking.
func (t *Table) Len() int { return len(t.Tuples) }

// Clone copies the table without locking.
func (t *Table) Clone() *Table { return &Table{Name: t.Name, Schema: t.Schema} }
