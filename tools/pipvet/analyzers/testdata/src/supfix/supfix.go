// Package supfix is the suppress fixture: every directive shape, well- and
// mal-formed. The pass runs in every package.
package supfix

// rangeJustified is a correctly placed, justified ordered directive.
func rangeJustified(m map[string]int) int {
	n := 0
	//pipvet:ordered integer count is order-insensitive
	for range m {
		n++
	}
	return n
}

// rangeSameLine puts the directive on the loop line itself: also valid.
func rangeSameLine(m map[string]int) {
	for range m { //pipvet:ordered draining side effects commute
	}
}

// badVerb uses an unknown directive verb.
func badVerb() {
	//pipvet:frobnicate whatever // want `unknown //pipvet: directive "frobnicate"`
	_ = 0
}

// orderedNoReason omits the justification.
func orderedNoReason(m map[string]int) {
	//pipvet:ordered // want `//pipvet:ordered without a reason`
	for range m {
	}
}

// orderedMisplaced is nowhere near a range statement.
func orderedMisplaced() {
	//pipvet:ordered stray justification // want `not adjacent to a range statement`
	_ = 1
}

// allowUnknown names a pass that does not exist.
func allowUnknown() {
	//pipvet:allow nosuchpass because reasons // want `unknown analyzer "nosuchpass"`
	_ = 2
}

// allowNoReason names a real pass but gives no justification.
func allowNoReason() {
	//pipvet:allow maporder // want `//pipvet:allow maporder without a reason`
	_ = 3
}

// allowJustified is fully well-formed.
func allowJustified() {
	//pipvet:allow errwrapcheck fixture example with a reason
	_ = 4
}

// replayOK carries a correctly placed commitpath mark.
//
//pipvet:commitpath recovery replays statements under Commit
func replayOK() {}

// commitpathMisplaced sits in a function body, not a doc comment.
func commitpathMisplaced() {
	//pipvet:commitpath stray claim // want `not in a function doc comment`
	_ = 5
}

// commitpathNoReason is placed correctly but unjustified.
//
//pipvet:commitpath // want `//pipvet:commitpath without a reason`
func commitpathNoReason() {}
