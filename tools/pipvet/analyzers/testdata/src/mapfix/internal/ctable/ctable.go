// Package ctable is a maporder fixture shaped like the columnar batch /
// compiled-expression layer (PR 10): variable-to-column slot assignment in
// the postfix compiler must be a pure function of the expression tree, so
// any map-iteration-ordered operand numbering inside internal/ctable or
// internal/expr is a determinism bug.
package ctable

import "sort"

// assignSlotsPostfix mirrors expr.Compile's slot assignment: operands are
// numbered by first occurrence in the postfix emission (a slice walk), the
// map is only a membership index — accepted, no map iteration.
func assignSlotsPostfix(emission []string) map[string]int32 {
	slots := make(map[string]int32, len(emission))
	for _, k := range emission {
		if _, ok := slots[k]; !ok {
			slots[k] = int32(len(slots))
		}
	}
	return slots
}

// operandOrderFromMap numbers operands by map iteration and never sorts:
// flagged — two compilations of the same expression would gather their
// sample columns in different orders.
func operandOrderFromMap(vars map[string]bool) []string {
	var order []string
	for k := range vars { // want `range over map vars .*never sorted`
		order = append(order, k)
	}
	return order
}

// operandOrderSorted collects then sorts: the canonical fix, accepted.
func operandOrderSorted(vars map[string]bool) []string {
	order := make([]string, 0, len(vars))
	for k := range vars {
		order = append(order, k)
	}
	sort.Strings(order)
	return order
}

// gatherInMapOrder accumulates float sample columns in map order: the
// float-accumulation shape of the original sampler bug, flagged.
func gatherInMapOrder(cols map[string][]float64) []float64 {
	var flat []float64
	for _, col := range cols { // want `range over map cols .*never sorted`
		flat = append(flat, col...)
	}
	return flat
}
