// Package sampler is a maporder fixture shaped like the deterministic
// sampler package: the import-path suffix internal/sampler puts it in
// scope for the pass.
package sampler

import "sort"

// sumCoeffs is the PR 2 bug shape: float accumulation in map order.
func sumCoeffs(m map[string]float64) float64 {
	var total float64
	for _, c := range m { // want `range over map m .*floating-point`
		total += c
	}
	return total
}

// sortedKeys is the canonical collect-then-sort idiom: accepted.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectUnsorted appends in map order and never sorts: flagged.
func collectUnsorted(m map[string]float64) []string {
	var keys []string
	for k := range m { // want `range over map m .*never sorted`
		keys = append(keys, k)
	}
	return keys
}

// countEntries increments an integer counter: commutative, accepted.
func countEntries(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sumInts uses integer +=, commutative even under wraparound: accepted.
func sumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// storeByKey writes into another map keyed by the range key: accepted.
func storeByKey(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// invert indexes the target by the range value, not the key: flagged
// (the pass only proves key-indexed stores order-insensitive).
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m { // want `range over map m `
		out[v] = k
	}
	return out
}

// pruneNegative deletes by the range key: accepted.
func pruneNegative(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			delete(m, k)
		}
	}
}

// contains early-returns a constant — a membership test, accepted.
func contains(m map[string]bool, needle string) bool {
	for k := range m {
		if k == needle {
			return true
		}
	}
	return false
}

// firstKey early-returns a loop-dependent value: flagged.
func firstKey(m map[string]int) string {
	for k := range m { // want `range over map m .*early return`
		return k
	}
	return ""
}

// flagAny stores a constant into outer state — idempotent, accepted.
func flagAny(m map[string]int) bool {
	seen := false
	for range m {
		seen = true
	}
	return seen
}

// localsOnly keeps loop-dependent values in loop-local variables: accepted.
func localsOnly(m map[string]int) int {
	n := 0
	for _, v := range m {
		double := v * 2
		_ = double
		n++
	}
	return n
}

// justified carries an ordered directive with a reason: suppressed.
func justified(m map[string]func()) {
	//pipvet:ordered side effects are order-independent by construction
	for _, fn := range m {
		fn()
	}
}

// callUnknown invokes a function with unknown effects per entry: flagged.
func callUnknown(m map[string]func()) {
	for _, fn := range m { // want `range over map m .*unknown effects`
		fn()
	}
}
