// Package cond is a detsource fixture shaped like the deterministic
// condition package: the import-path suffix internal/cond puts it in scope.
package cond

import (
	"math/rand"
	"os"
	"time"
)

// draw taps the globally seeded generator: flagged.
func draw() float64 {
	return rand.Float64() // want `nondeterministic source math/rand\.Float64`
}

// newRand even constructing a generator is banned in scope: two findings.
func newRand() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `math/rand\.New` `math/rand\.NewSource`
}

// drawSeeded draws from a caller-seeded generator: methods are value-
// derived, accepted.
func drawSeeded(r *rand.Rand) float64 {
	return r.Float64()
}

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now() // want `nondeterministic source time\.Now`
}

// stampAllowed carries a justification: suppressed.
func stampAllowed() time.Time {
	//pipvet:allow detsource telemetry timestamp, never feeds sampled state
	return time.Now()
}

// elapsed uses time.Since: flagged.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `nondeterministic source time\.Since`
}

// seedFromEnv reads the process environment: flagged.
func seedFromEnv() string {
	return os.Getenv("PIP_SEED") // want `nondeterministic source os\.Getenv`
}

// fanIn selects on a channel fetched from a map: flagged.
func fanIn(chans map[string]chan int) int {
	select {
	case v := <-chans["a"]: // want `map-keyed fan-in`
		return v
	}
}

// fanInFixed selects on plain channel variables: accepted.
func fanInFixed(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
