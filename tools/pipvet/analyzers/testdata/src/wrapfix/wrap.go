// Package wrapfix is the errwrapcheck fixture; the pass runs in every
// package, so no special import path is needed.
package wrapfix

import (
	"errors"
	"fmt"
)

// errBase is a sentinel callers match with errors.Is.
var errBase = errors.New("base")

// wrapBad flattens the error with %v: flagged.
func wrapBad(err error) error {
	return fmt.Errorf("open store: %v", err) // want `formats error value err with %v`
}

// wrapBadString flattens with %s: flagged.
func wrapBadString(err error) error {
	return fmt.Errorf("open store: %s", err) // want `formats error value err with %s`
}

// wrapGood wraps with %w: accepted.
func wrapGood(err error) error {
	return fmt.Errorf("open store: %w", err)
}

// wrapNonError formats plain values: accepted.
func wrapNonError(name string, n int) error {
	return fmt.Errorf("open %s: attempt %d failed", name, n)
}

// wrapMixed walks the verb list past other conversions to find the error
// at the right index: flagged.
func wrapMixed(name string, err error) error {
	return fmt.Errorf("segment %s at %d: %v", name, 3, err) // want `formats error value err with %v`
}

// wrapDouble wraps the sentinel but flattens the detail: one finding.
func wrapDouble(err error) error {
	return fmt.Errorf("%w: %v", errBase, err) // want `formats error value err with %v`
}

// wrapIndexed reuses one argument through explicit indexes: two findings.
func wrapIndexed(err error) error {
	return fmt.Errorf("twice: %[1]v and %[1]s", err) // want `with %v` `with %s`
}

// wrapWidth consumes a * width argument before the error: flagged.
func wrapWidth(err error) error {
	return fmt.Errorf("pad %*d then %v", 8, 2, err) // want `formats error value err with %v`
}

// wrapPercent steps over literal %% without consuming arguments: flagged.
func wrapPercent(err error) error {
	return fmt.Errorf("100%% broken: %v", err) // want `formats error value err with %v`
}

// wrapAllowed carries the documented justification: suppressed.
func wrapAllowed(err error) error {
	//pipvet:allow errwrapcheck user-facing summary, wrapping handled by caller
	return fmt.Errorf("summary: %v", err)
}
