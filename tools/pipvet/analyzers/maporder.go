// The maporder pass: no unordered map iteration in deterministic packages.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pip/tools/pipvet/analysis"
)

// MapOrder flags `for … range` over a map inside the deterministic packages
// (internal/sampler, cond, expr, core, sql, wal). Go randomizes map
// iteration order per run, so any result, accumulator, log record or error
// choice that depends on it breaks the same-seed ⇒ bit-identical contract —
// exactly the class of bug PR 2 fixed in the Metropolis start-point repair.
//
// A range is accepted without a justification when its body only feeds
// recognized order-insensitive sinks:
//
//   - appending the loop variables to a slice that a sort call (sort.*,
//     slices.Sort*, or any function whose name contains "sort") receives
//     later in the same function — the canonical collect-then-sort idiom;
//   - storing into a map or slice indexed by the range key (keys are
//     unique, so iteration order cannot change the final state);
//   - delete(m, k) keyed by the range key;
//   - integer counter increments (n++, n--, n += <int literal>);
//   - idempotent constant stores (flag = true);
//   - early `return` of constants only (a commutative membership test).
//
// Anything else — floating-point accumulation, appends that are never
// sorted, calls with unknown effects — is reported. A deliberate unordered
// iteration carries `//pipvet:ordered <reason>` on the loop (the suppress
// pass rejects reason-less justifications).
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration in deterministic packages unless it feeds an order-insensitive sink",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		sup := fileSuppressions(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sup.suppressed(pass.Fset, rng.Pos(), pass.Analyzer.Name) {
				return true
			}
			ck := &sinkChecker{pass: pass, file: f, rng: rng}
			ck.keyIdent, _ = rng.Key.(*ast.Ident)
			ck.valIdent, _ = rng.Value.(*ast.Ident)
			if why := ck.check(rng.Body.List); why != "" {
				pass.Reportf(rng.Pos(),
					"range over map %s in deterministic package %s: iteration order is randomized per run (%s); iterate a sorted key slice or justify with //pipvet:ordered <reason>",
					types.ExprString(rng.X), pass.Pkg.Path(), why)
			}
			return true
		})
	}
	return nil
}

// sinkChecker decides whether a map-range body only feeds order-insensitive
// sinks. check returns "" when every statement is recognized, else a short
// reason naming the first statement that is not.
type sinkChecker struct {
	pass     *analysis.Pass
	file     *ast.File
	rng      *ast.RangeStmt
	keyIdent *ast.Ident
	valIdent *ast.Ident
	locals   map[string]bool // variables declared inside the loop body
}

func (ck *sinkChecker) check(stmts []ast.Stmt) string {
	ck.locals = map[string]bool{}
	return ck.checkStmts(stmts)
}

func (ck *sinkChecker) checkStmts(stmts []ast.Stmt) string {
	for _, st := range stmts {
		if why := ck.checkStmt(st); why != "" {
			return why
		}
	}
	return ""
}

func (ck *sinkChecker) checkStmt(st ast.Stmt) string {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return ck.checkAssign(s)
	case *ast.IncDecStmt:
		if isIntegerExpr(ck.pass.TypesInfo, s.X) {
			return ""
		}
		return "non-integer increment"
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && ck.isDeleteByKey(call) {
			return ""
		}
		return "call with unknown effects"
	case *ast.IfStmt:
		// Condition and init are reads; order-sensitivity can only enter
		// through the branches, which recurse under the same rules.
		if s.Init != nil {
			if why := ck.checkStmt(s.Init); why != "" {
				return why
			}
		}
		if why := ck.checkStmts(s.Body.List); why != "" {
			return why
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return ck.checkStmts(e.List)
			default:
				return ck.checkStmt(e)
			}
		}
		return ""
	case *ast.BlockStmt:
		return ck.checkStmts(s.List)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return ""
		}
		return "goto/fallthrough"
	case *ast.ReturnStmt:
		// Returning constants commutes: whichever iteration fires first,
		// the function's result is the same (membership-test shape).
		for _, r := range s.Results {
			if !isConstResult(ck.pass.TypesInfo, r) {
				return "early return of a loop-dependent value"
			}
		}
		return ""
	case *ast.DeclStmt:
		return "" // local declarations only introduce loop-scoped names
	default:
		return "statement with unrecognized ordering effects"
	}
}

// checkAssign classifies one assignment inside the loop body.
func (ck *sinkChecker) checkAssign(s *ast.AssignStmt) string {
	// Short declarations and assignments to loop-local variables stay
	// inside the iteration, so order cannot leak through them.
	if s.Tok == token.DEFINE {
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				ck.locals[id.Name] = true
			}
		}
		return ""
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "multi-assignment to outer state"
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	if id, ok := lhs.(*ast.Ident); ok && (ck.locals[id.Name] || id.Name == "_") {
		return ""
	}
	switch s.Tok {
	case token.ASSIGN:
		// m[k] = v / s[k] = v: unique keys make the final state
		// independent of visit order.
		if ix, ok := lhs.(*ast.IndexExpr); ok && ck.isRangeKey(ix.Index) {
			return ""
		}
		// append-then-sort: s = append(s, k); a later sort call erases
		// the collection order.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(ck.pass.TypesInfo, call.Fun, "append") {
			if sameExpr(lhs, call.Args[0]) && ck.sortedLater(lhs) {
				return ""
			}
			return "append to a slice that is never sorted afterwards"
		}
		// flag = true / x = <constant>: idempotent across iterations.
		if isConstResult(ck.pass.TypesInfo, rhs) {
			return ""
		}
		return "assignment of a loop-dependent value to outer state"
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Integer += is associative and commutative even under wraparound;
		// float accumulation is not (rounding depends on order).
		if isIntegerExpr(ck.pass.TypesInfo, lhs) {
			return ""
		}
		return "floating-point (or non-integer) accumulation"
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if isIntegerExpr(ck.pass.TypesInfo, lhs) {
			return ""
		}
		return "non-integer bitwise accumulation"
	default:
		return "compound assignment with unrecognized ordering effects"
	}
}

// isRangeKey reports whether e is exactly the loop's key variable.
func (ck *sinkChecker) isRangeKey(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && ck.keyIdent != nil && id.Name == ck.keyIdent.Name && id.Name != "_"
}

// isDeleteByKey recognizes delete(m, k) with the range key.
func (ck *sinkChecker) isDeleteByKey(call *ast.CallExpr) bool {
	return isBuiltin(ck.pass.TypesInfo, call.Fun, "delete") &&
		len(call.Args) == 2 && ck.isRangeKey(call.Args[1])
}

// sortedLater reports whether, after the range statement and inside the
// same enclosing function, some call whose name contains "sort" receives
// the given slice expression as an argument (sort.Strings(keys),
// sort.Slice(keys, …), slices.Sort(keys), sortVarKeys(keys), …).
func (ck *sinkChecker) sortedLater(slice ast.Expr) bool {
	body := enclosingFuncBody(ck.file, ck.rng.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < ck.rng.End() || found {
			return !found
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			// Qualify with the receiver/package ident so sort.Strings and
			// slices.SortFunc match, not just names like sortVarKeys.
			name = fun.Sel.Name
			if x, ok := fun.X.(*ast.Ident); ok {
				name = x.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if sameExpr(arg, slice) {
				found = true
			}
		}
		return !found
	})
	return found
}

// sameExpr compares two expressions structurally by their printed form —
// adequate for the ident/selector shapes the sinks deal in.
func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(ast.Unparen(a)) == types.ExprString(ast.Unparen(b))
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// isIntegerExpr reports whether e's type is an integer kind.
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isConstResult reports whether e is a compile-time constant, nil, or a
// zero composite literal — values whose store/return commutes across
// iterations.
func isConstResult(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && (tv.Value != nil || tv.IsNil()) {
		return true
	}
	if cl, ok := e.(*ast.CompositeLit); ok {
		return len(cl.Elts) == 0
	}
	return false
}
