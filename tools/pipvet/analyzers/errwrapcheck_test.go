package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestErrWrapCheck(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.ErrWrapCheck, "wrapfix")
}
