package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestWALCommit(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.WALCommit, "walfix/internal/sql")
}
