// The detsource pass: no nondeterministic sources in deterministic packages.
package analyzers

import (
	"go/ast"
	"go/types"

	"pip/tools/pipvet/analysis"
)

// DetSource forbids nondeterministic value sources inside the deterministic
// packages: all randomness must flow from seeded internal/prng generators
// (counter-based streams keyed on world seed, sample index and variable id),
// and no sampled result may depend on wall-clock time or the process
// environment. Flagged:
//
//   - every package-level function of math/rand and math/rand/v2 (both the
//     globally-seeded ones like rand.Float64 and the constructors rand.New/
//     rand.NewSource — policy is that deterministic code never touches
//     math/rand at all);
//   - time.Now and time.Since (telemetry-only wall-clock reads carry a
//     //pipvet:allow detsource <reason> justification);
//   - os.Getenv, os.LookupEnv, os.Environ;
//   - select statements whose case channel is fetched from a map
//     (map-keyed fan-in: ready-order plus map order double nondeterminism).
var DetSource = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbids nondeterministic sources (math/rand, time.Now, os.Getenv, map-keyed select) in deterministic packages",
	Run:  runDetSource,
}

// bannedFuncs maps source package paths to the banned function names; an
// empty list bans every package-level function of that package.
var bannedFuncs = map[string][]string{
	"math/rand":    nil,
	"math/rand/v2": nil,
	"time":         {"Now", "Since"},
	"os":           {"Getenv", "LookupEnv", "Environ"},
}

func runDetSource(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		sup := fileSuppressions(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, sup, n)
			case *ast.SelectStmt:
				checkMapKeyedSelect(pass, sup, n)
			}
			return true
		})
	}
	return nil
}

// checkBannedCall reports calls to the banned package-level functions.
func checkBannedCall(pass *analysis.Pass, sup suppressions, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are value-derived
	}
	names, banned := bannedFuncs[fn.Pkg().Path()]
	if !banned {
		return
	}
	hit := names == nil
	for _, n := range names {
		if fn.Name() == n {
			hit = true
		}
	}
	if !hit || sup.suppressed(pass.Fset, call.Pos(), pass.Analyzer.Name) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to nondeterministic source %s.%s in deterministic package %s: draw randomness from seeded internal/prng streams, or justify with //pipvet:allow detsource <reason>",
		fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
}

// checkMapKeyedSelect reports select statements whose case channels are
// indexed out of a map.
func checkMapKeyedSelect(pass *analysis.Pass, sup suppressions, sel *ast.SelectStmt) {
	for _, cl := range sel.Body.List {
		comm, ok := cl.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		var ch ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.SendStmt:
			ch = c.Chan
		case *ast.ExprStmt:
			if rv, ok := c.X.(*ast.UnaryExpr); ok {
				ch = rv.X
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if rv, ok := c.Rhs[0].(*ast.UnaryExpr); ok {
					ch = rv.X
				}
			}
		}
		if ch == nil {
			continue
		}
		ix, ok := ast.Unparen(ch).(*ast.IndexExpr)
		if !ok {
			continue
		}
		t := pass.TypesInfo.Types[ix.X].Type
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		if sup.suppressed(pass.Fset, comm.Pos(), pass.Analyzer.Name) {
			continue
		}
		pass.Reportf(comm.Pos(),
			"select case channel %s is fetched from a map (map-keyed fan-in) in deterministic package %s: ready-order plus map order is doubly nondeterministic",
			types.ExprString(ch), pass.Pkg.Path())
	}
}
