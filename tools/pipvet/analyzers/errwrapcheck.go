// The errwrapcheck pass: fmt.Errorf must wrap errors with %w.
package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"

	"pip/tools/pipvet/analysis"
)

// ErrWrapCheck flags fmt.Errorf calls that format an error value with %v or
// %s instead of %w. Formatting with %v flattens the error to its message:
// errors.Is/As stop seeing the sentinel, so callers that match on
// wal.ErrPoisoned, core.ErrUnloggedMutation, sql.ErrNoRows and friends
// silently break one wrapping layer up. The pass parses the format string
// (flags, width, precision, `*`, explicit %[n] argument indexes, %%) and
// reports every argument whose static type implements error that lands on a
// %v or %s verb. Deliberate message-only formatting carries
// //pipvet:allow errwrapcheck <reason>.
var ErrWrapCheck = &analysis.Analyzer{
	Name: "errwrapcheck",
	Doc:  "flags fmt.Errorf formatting an error value with %v/%s instead of wrapping with %w",
	Run:  runErrWrapCheck,
}

func runErrWrapCheck(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		sup := fileSuppressions(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			checkErrorf(pass, sup, call)
			return true
		})
	}
	return nil
}

// checkErrorf matches the format verbs of one fmt.Errorf call against the
// static types of its arguments.
func checkErrorf(pass *analysis.Pass, sup suppressions, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass.TypesInfo, call.Args[0])
	if !ok {
		return
	}
	args := call.Args[1:]
	for _, vb := range parseVerbs(format) {
		if vb.verb != 'v' && vb.verb != 's' {
			continue
		}
		if vb.argIndex < 0 || vb.argIndex >= len(args) {
			continue
		}
		arg := args[vb.argIndex]
		t := pass.TypesInfo.Types[arg].Type
		if !isErrorType(t) {
			continue
		}
		if sup.suppressed(pass.Fset, arg.Pos(), pass.Analyzer.Name) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"fmt.Errorf formats error value %s with %%%c: use %%w so errors.Is/As keep matching through the wrap, or justify with //pipvet:allow errwrapcheck <reason>",
			types.ExprString(arg), vb.verb)
	}
}

// fmtVerb is one conversion in a format string, resolved to the argument
// index it consumes.
type fmtVerb struct {
	verb     rune
	argIndex int // -1 when the verb consumes no argument or indexing overflowed
}

// parseVerbs walks a fmt format string, tracking the implicit argument
// cursor through flags, width/precision (including *) and explicit %[n]
// indexes, and returns each conversion with its resolved argument index.
func parseVerbs(format string) []fmtVerb {
	var out []fmtVerb
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// Flags.
		for i < len(rs) && (rs[i] == '+' || rs[i] == '-' || rs[i] == '#' || rs[i] == ' ' || rs[i] == '0') {
			i++
		}
		// Width (a * consumes an argument).
		if i < len(rs) && rs[i] == '*' {
			arg++
			i++
		} else {
			for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(rs) && rs[i] == '.' {
			i++
			if i < len(rs) && rs[i] == '*' {
				arg++
				i++
			} else {
				for i < len(rs) && rs[i] >= '0' && rs[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index %[n].
		if i < len(rs) && rs[i] == '[' {
			j := i + 1
			for j < len(rs) && rs[j] != ']' {
				j++
			}
			if j < len(rs) {
				if n, err := strconv.Atoi(string(rs[i+1 : j])); err == nil && n >= 1 {
					arg = n - 1
				}
				i = j + 1
			}
		}
		if i >= len(rs) {
			break
		}
		out = append(out, fmtVerb{verb: rs[i], argIndex: arg})
		arg++
	}
	return out
}

// stringConstant extracts the compile-time string value of e, if any.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
