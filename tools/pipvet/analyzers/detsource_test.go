package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestDetSource(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.DetSource, "detfix/internal/cond")
}
