package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestMapOrder(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.MapOrder, "mapfix/internal/sampler")
}

// TestMapOrderCompiledPrograms covers the PR 10 vectorized layer: the
// postfix compiler's operand/slot ordering must come from the emission
// walk, never from map iteration.
func TestMapOrderCompiledPrograms(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.MapOrder, "mapfix/internal/ctable")
}
