package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestMapOrder(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.MapOrder, "mapfix/internal/sampler")
}
