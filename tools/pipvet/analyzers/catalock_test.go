package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestCataLock(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.CataLock, "lockfix/app")
}
