// The suppress pass: every //pipvet: directive is well-formed and justified.
package analyzers

import (
	"go/ast"
	"go/token"

	"pip/tools/pipvet/analysis"
)

// Suppress lints the suppression comments themselves, so a justification
// can never be silently dropped or mistyped into a no-op:
//
//   - the verb must be one of ordered, allow, commitpath;
//   - allow must name a real analyzer;
//   - every directive must carry a non-empty reason — suppressions are
//     audited decisions, not switches;
//   - ordered must sit on (or directly above) a range statement;
//   - commitpath must sit in a function's doc comment.
//
// It runs over every package, including ones the other passes skip, so a
// stray directive in an unscoped package is caught rather than rotting.
var Suppress = &analysis.Analyzer{
	Name: "suppress",
	Doc:  "checks that //pipvet: suppression directives are well-formed, correctly placed and justified",
	Run:  runSuppress,
}

// knownAnalyzers are the names //pipvet:allow may cite. A literal rather
// than a derivation from All() — that would be an initialization cycle.
var knownAnalyzers = map[string]bool{
	"maporder": true, "detsource": true, "catalock": true,
	"walcommit": true, "errwrapcheck": true, "suppress": true,
}

func runSuppress(pass *analysis.Pass) error {
	known := knownAnalyzers
	for _, f := range pass.Files {
		rangeLines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok {
				rangeLines[pass.Fset.Position(rng.Pos()).Line] = true
			}
			return true
		})
		for _, d := range parseDirectives(pass.Fset, f) {
			switch d.verb {
			case dirOrdered:
				if d.reason == "" {
					pass.Reportf(d.pos, "//pipvet:ordered without a reason: write //pipvet:ordered <why this unordered iteration is safe>")
				}
				if !rangeLines[d.line] && !rangeLines[d.line+1] {
					pass.Reportf(d.pos, "//pipvet:ordered is not adjacent to a range statement: place it on the loop line or the line above")
				}
			case dirAllow:
				if !known[d.analyzer] {
					pass.Reportf(d.pos, "//pipvet:allow names unknown analyzer %q: known analyzers are maporder, detsource, catalock, walcommit, errwrapcheck, suppress", d.analyzer)
				}
				if d.reason == "" {
					pass.Reportf(d.pos, "//pipvet:allow %s without a reason: write //pipvet:allow %s <why this finding is acceptable>", d.analyzer, d.analyzer)
				}
			case dirCommitpath:
				if d.reason == "" {
					pass.Reportf(d.pos, "//pipvet:commitpath without a reason: write //pipvet:commitpath <why every caller is under core.DB.Commit>")
				}
				if !inFuncDoc(f, d.pos) {
					pass.Reportf(d.pos, "//pipvet:commitpath is not in a function doc comment: attach it to the declaration it vouches for")
				}
			default:
				pass.Reportf(d.pos, "unknown //pipvet: directive %q: known verbs are ordered, allow, commitpath", d.verb)
			}
		}
	}
	return nil
}

// inFuncDoc reports whether pos falls inside the doc comment of some
// function declaration of f.
func inFuncDoc(f *ast.File, pos token.Pos) bool {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		if fd.Doc.Pos() <= pos && pos < fd.Doc.End() {
			return true
		}
	}
	return false
}
