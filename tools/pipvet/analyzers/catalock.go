// The catalock pass: catalog-live table state only via the locked accessors.
package analyzers

import (
	"go/ast"
	"go/types"

	"pip/tools/pipvet/analysis"
)

// CataLock enforces the lock discipline PR 5 introduced after the
// cross-session DML race on ctable.Table.Tuples: every append to, and every
// scan or length read of, a live catalog table must go through the core.DB
// accessors that hold the catalog mutex (AppendRow, Snapshot), never
// through the table struct directly.
//
// The pass runs everywhere outside internal/core and internal/ctable (the
// lock layer and the type's own package) and performs a local taint
// analysis per function: a *ctable.Table value is catalog-live when it is
// assigned from core.DB.Table or core.DB.Materialize (directly or through
// a chain of local variables). On a live table it flags:
//
//   - any use of the .Tuples field (read, write, range, append target);
//   - calls to the unlocked methods Append, Len and Clone.
//
// Reading immutable post-creation state (.Name, .Schema) stays allowed,
// as does handing the live table back to the core.DB accessors. Tables
// built locally (&ctable.Table{…}, ctable.New, a Snapshot copy) are not
// live and stay unrestricted. Function parameters are unconstrained —
// the pass is local by design; the gap is covered by flagging at the
// acquisition sites, which every live table flows from.
var CataLock = &analysis.Analyzer{
	Name: "catalock",
	Doc:  "flags direct access to catalog-live ctable.Table state outside the catalog-lock accessors",
	Run:  runCataLock,
}

// liveSources are the core.DB methods whose *ctable.Table results are live
// catalog state (shared, mutable under the catalog mutex).
var liveSources = map[string]bool{"Table": true, "Materialize": true}

// lockedOnly are the ctable.Table members that must not be touched on a
// live table outside the lock: the raw tuple slice and the methods that
// read or mutate it unlocked.
var lockedOnly = map[string]string{
	"Tuples": "use core.DB.Snapshot for reads and core.DB.AppendRow for appends",
	"Append": "use core.DB.AppendRow, which holds the catalog mutex",
	"Len":    "use len(core.DB.Snapshot(t)), which reads under the catalog mutex",
	"Clone":  "clone a core.DB.Snapshot copy, not the live table",
}

func runCataLock(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if pathHasSuffix(path, "internal/core") || pathHasSuffix(path, "internal/ctable") {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		sup := fileSuppressions(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncCataLock(pass, sup, fn.Body)
			return true
		})
	}
	return nil
}

// checkFuncCataLock runs the per-function taint pass: one forward sweep
// collecting live idents (source order approximates def-before-use for the
// assignment chains this targets), then a flagging sweep.
func checkFuncCataLock(pass *analysis.Pass, sup suppressions, body *ast.BlockStmt) {
	live := map[string]bool{}
	// Sweep until no new taint (covers chains like t2 := t1 written above
	// their source only in pathological orders; bounded by variable count).
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				tainted := false
				switch r := ast.Unparen(rhs).(type) {
				case *ast.CallExpr:
					tainted = isLiveSourceCall(pass.TypesInfo, r)
				case *ast.Ident:
					tainted = live[r.Name]
				}
				if !tainted {
					continue
				}
				// Multi-value sources (t, err := db.Table(…)) taint the
				// first variable; 1:1 assignments align by position.
				lhs := as.Lhs
				idx := i
				if len(as.Rhs) == 1 && len(lhs) > 1 {
					idx = 0
				}
				if idx < len(lhs) {
					if id, ok := lhs[idx].(*ast.Ident); ok && id.Name != "_" && !live[id.Name] {
						live[id.Name] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	if len(live) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		hint, guarded := lockedOnly[sel.Sel.Name]
		if !guarded {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !live[base.Name] {
			return true
		}
		if !isCtableTable(pass.TypesInfo, sel.X) {
			return true
		}
		if sup.suppressed(pass.Fset, sel.Pos(), pass.Analyzer.Name) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s touches a catalog-live table outside the catalog lock: %s (table acquired via core.DB.%s)",
			base.Name, sel.Sel.Name, hint, "Table/Materialize")
		return true
	})
}

// isLiveSourceCall reports whether the call returns a live catalog table
// (a liveSources method on core.DB).
func isLiveSourceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !liveSources[sel.Sel.Name] {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFromPkgSuffix(sig.Recv().Type(), "internal/core", "DB")
}

// isCtableTable reports whether e's static type is (a pointer to)
// ctable.Table.
func isCtableTable(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && namedFromPkgSuffix(t, "internal/ctable", "Table")
}
