// Package analyzers holds the pipvet analyzer suite: project-specific
// static checks that turn PIP's determinism, lock-discipline and
// WAL-commit conventions into machine-checked contracts.
//
// The suite (see ARCHITECTURE.md, "Statically enforced invariants"):
//
//   - maporder: no unordered map iteration in the deterministic packages
//     unless the loop feeds a recognized order-insensitive sink.
//   - detsource: no nondeterministic sources (math/rand top-level funcs,
//     time.Now, os.Getenv, map-keyed select fan-in) in those packages;
//     randomness flows from seeded internal/prng generators.
//   - catalock: catalog-live ctable.Table state is touched only through
//     the core.DB accessors that hold the catalog mutex.
//   - walcommit: catalog mutations in the statement-exec layer are
//     unreachable except through the core.DB.Commit durability hook.
//   - errwrapcheck: fmt.Errorf must embed error values with %w, never
//     %v/%s, so errors.Is keeps working across layers.
//   - suppress: every //pipvet: suppression comment is well-formed,
//     names a real analyzer and carries a justification.
//
// Scoping is by import-path suffix (e.g. "internal/sampler"), so the same
// analyzers run unchanged over the real module and over the fixture trees
// under testdata/src.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pip/tools/pipvet/analysis"
)

// All returns the full pipvet suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapOrder,
		DetSource,
		CataLock,
		WALCommit,
		ErrWrapCheck,
		Suppress,
	}
}

// detSuffixes are the import-path suffixes of the packages bound by the
// determinism contract: same seed must produce bit-identical sample worlds,
// so any order- or environment-dependence inside them is a bug.
var detSuffixes = []string{
	"internal/sampler",
	"internal/cond",
	"internal/expr",
	"internal/core",
	"internal/sql",
	"internal/sql/vectest",
	"internal/wal",
	"internal/repl",
	"internal/ctable",
}

// pathHasSuffix reports whether the import path is, or ends with a
// path-separated occurrence of, suffix ("pip/internal/sql" matches
// "internal/sql"; "internal/sqlx" does not).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isDeterministicPkg reports whether the package is bound by the
// determinism contract.
func isDeterministicPkg(path string) bool {
	for _, s := range detSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// //pipvet: directives

// directiveKind enumerates the recognized //pipvet: directive verbs.
const (
	dirOrdered    = "ordered"    // suppress maporder on the adjacent range statement
	dirAllow      = "allow"      // suppress a named analyzer on the adjacent line
	dirCommitpath = "commitpath" // mark a function as reached only under core.DB.Commit
)

// directive is one parsed //pipvet: comment.
type directive struct {
	verb     string // ordered, allow, commitpath (or the unknown verb as written)
	analyzer string // for allow: the named analyzer
	reason   string // justification text; required by the suppress lint
	pos      token.Pos
	line     int // line the comment sits on
}

// parseDirectives extracts every //pipvet: comment of the file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//pipvet:")
			if !ok {
				continue
			}
			// A reason never contains a nested comment marker; cutting there
			// lets fixture files append `// want` expectations.
			text, _, _ = strings.Cut(text, "//")
			d := directive{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			fields := strings.Fields(text)
			if len(fields) > 0 {
				d.verb = fields[0]
				rest := fields[1:]
				if d.verb == dirAllow && len(rest) > 0 {
					d.analyzer = rest[0]
					rest = rest[1:]
				}
				d.reason = strings.Join(rest, " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressions indexes a file's suppression directives by source line.
type suppressions map[int][]directive

// fileSuppressions builds the line index of one file's directives.
func fileSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{}
	for _, d := range parseDirectives(fset, f) {
		s[d.line] = append(s[d.line], d)
	}
	return s
}

// suppressed reports whether a finding of the named analyzer at pos is
// covered by a directive on the same line or the line directly above
// (`//pipvet:ordered` counts as `allow maporder`). Empty-reason directives
// still suppress — the suppress analyzer separately flags them, so the
// justification cannot be silently dropped without failing the build.
func (s suppressions) suppressed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	line := fset.Position(pos).Line
	for _, d := range append(s[line], s[line-1]...) {
		switch d.verb {
		case dirOrdered:
			if analyzer == "maporder" {
				return true
			}
		case dirAllow:
			if d.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// type helpers shared by the passes

// namedFromPkgSuffix reports whether t (after pointer indirection) is the
// named type `name` declared in a package whose import path ends in
// pkgSuffix.
func namedFromPkgSuffix(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for builtins, conversions and
// indirect calls through non-selector values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isErrorType reports whether t implements the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errIface != nil && types.Implements(t, errIface)
}

// enclosingFuncs maps every node position to its innermost enclosing
// function body by walking decl bodies; used by maporder to look for sort
// calls after a loop.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body // keep innermost: Inspect descends outermost-first
		}
		return true
	})
	return best
}
