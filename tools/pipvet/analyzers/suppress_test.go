package analyzers_test

import (
	"testing"

	"pip/tools/pipvet/analyzers"
	"pip/tools/pipvet/vettest"
)

func TestSuppress(t *testing.T) {
	vettest.Run(t, "testdata", analyzers.Suppress, "supfix")
}
