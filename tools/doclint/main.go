// Command doclint reports exported declarations that lack doc comments and
// packages without a package-level doc comment. It is the hermetic subset
// of revive's `exported`/`package-comments` rules used by CI to keep the
// godoc surface complete:
//
//	go run ./tools/doclint ./internal/sampler ./internal/cond ...
//
// Exit status is 1 when any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(strings.TrimPrefix(dir, "./"))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc && pkg.Name != "main" {
			fmt.Printf("%s: package %s missing package doc comment\n", dir, pkg.Name)
			bad++
		}
		for _, f := range pkg.Files {
			bad += lintFile(fset, f)
		}
	}
	return bad
}

func lintFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: %s %s missing doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "func", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if n.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}
