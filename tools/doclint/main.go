// Command doclint reports exported declarations that lack doc comments and
// packages without a package-level doc comment. It is the hermetic subset
// of revive's `exported`/`package-comments` rules used by CI to keep the
// godoc surface complete:
//
//	go run ./tools/doclint ./...                      # the whole module
//	go run ./tools/doclint ./internal/sampler ./driver
//
// The ./... form walks every directory under the current module that
// contains Go files (skipping hidden directories and testdata). Exit
// status is 1 when any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	bad := 0
	for _, dir := range os.Args[1:] {
		if dir == "./..." || dir == "..." {
			dirs, err := goDirs(".")
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
				os.Exit(1)
			}
			for _, d := range dirs {
				bad += lintDir(d)
			}
			continue
		}
		bad += lintDir(strings.TrimPrefix(dir, "./"))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

// goDirs walks root and returns every directory holding at least one
// non-test Go file, skipping hidden directories and testdata.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
		return nil
	})
	return out, err
}

func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// main packages document themselves as commands; every other
			// package must carry a package doc comment.
			if pkg.Name != "main" {
				fmt.Printf("%s: package %s missing package doc comment\n", dir, pkg.Name)
				bad++
			}
		}
		for _, f := range pkg.Files {
			bad += lintFile(fset, f)
		}
	}
	return bad
}

func lintFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: %s %s missing doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "func", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if n.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}
