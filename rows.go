package pip

import (
	"fmt"
	"io"
	"math"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/sql"
)

// Rows is a streaming iterator over query results, in the style of
// database/sql: Next advances, Scan copies the current row into typed
// destinations, Err reports the terminal error, Close releases the cursor.
// For aggregate-free SELECTs the underlying cursor joins, filters and
// projects one tuple per Next call — result rows are never materialized as
// a table. A Rows is single-consumer and not safe for concurrent use.
//
//	rows, err := db.QueryContext(ctx, `SELECT cust, price FROM orders WHERE price > ?`, 95)
//	defer rows.Close()
//	for rows.Next() {
//		var cust string
//		var price Expr
//		if err := rows.Scan(&cust, &price); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
type Rows struct {
	cur    sql.Cursor
	cols   []string
	t      *ctable.Tuple
	err    error
	closed bool
}

// newRows wraps an internal cursor.
func newRows(cur sql.Cursor) *Rows {
	return &Rows{cur: cur, cols: cur.Columns()}
}

// Columns returns the result column names (empty for statements producing
// no rows, e.g. DDL).
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, reporting false at the end of the result
// set or on error (distinguish with Err). The row data read by Scan, Values
// and Cond is valid until the following Next call.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	t, err := r.cur.Next()
	if err == io.EOF {
		r.t = nil
		return false
	}
	if err != nil {
		r.err = err
		r.t = nil
		return false
	}
	r.t = t
	return true
}

// Err returns the error that terminated iteration, if any. A cancelled
// request context surfaces here as ctx.Err().
func (r *Rows) Err() error { return r.err }

// Close releases the cursor; it is idempotent and safe to defer alongside
// explicit iteration to the end.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.t = nil
	return r.cur.Close()
}

// Cond returns the current row's condition — the c-table clause under which
// the row exists. Deterministic rows report the always-true condition.
func (r *Rows) Cond() Condition {
	if r.t == nil {
		return cond.TrueCondition()
	}
	return r.t.Cond
}

// Values returns the current row's raw cells (valid until the next call to
// Next); nil when no row is positioned.
func (r *Rows) Values() []Value {
	if r.t == nil {
		return nil
	}
	return r.t.Values
}

// Scan copies the current row into dest, one destination per column, with
// typed conversion:
//
//	*float64  deterministic numerics (float, int, bool)
//	*int64    ints, and floats with an exact integer value
//	*string   strings
//	*bool     bools
//	*Expr     any numeric cell, symbolic or not (constants wrap as Const)
//	*Value    the raw cell, no conversion
//	*any      the cell's native Go value (float64, int64, string, bool,
//	          Expr, or nil)
//
// Scanning a symbolic cell into *float64 or *int64 is an error — a random
// variable has no single deterministic value; scan into *Expr and apply an
// expectation operator instead.
func (r *Rows) Scan(dest ...any) error {
	if r.t == nil {
		return fmt.Errorf("pip: Scan called without a row (call Next first)")
	}
	if len(dest) != len(r.t.Values) {
		return fmt.Errorf("pip: Scan got %d destinations for %d columns", len(dest), len(r.t.Values))
	}
	for i, d := range dest {
		if err := scanValue(r.t.Values[i], d); err != nil {
			return fmt.Errorf("pip: column %d (%s): %w", i, r.colName(i), err)
		}
	}
	return nil
}

func (r *Rows) colName(i int) string {
	if i < len(r.cols) {
		return r.cols[i]
	}
	return "?"
}

// scanValue converts one cell into one typed destination.
func scanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *float64:
		if v.IsSymbolic() {
			return fmt.Errorf("cannot scan symbolic value %s into *float64 (scan into *pip.Expr)", v)
		}
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("cannot scan %s value %s into *float64", v.Kind, v)
		}
		*d = f
		return nil
	case *int64:
		switch v.Kind {
		case ctable.KindInt:
			*d = v.I
			return nil
		case ctable.KindFloat:
			if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) {
				*d = int64(v.F)
				return nil
			}
			return fmt.Errorf("cannot scan non-integral float %s into *int64", v)
		case ctable.KindExpr:
			return fmt.Errorf("cannot scan symbolic value %s into *int64 (scan into *pip.Expr)", v)
		default:
			return fmt.Errorf("cannot scan %s value %s into *int64", v.Kind, v)
		}
	case *string:
		if v.Kind != ctable.KindString {
			return fmt.Errorf("cannot scan %s value %s into *string", v.Kind, v)
		}
		*d = v.S
		return nil
	case *bool:
		if v.Kind != ctable.KindBool {
			return fmt.Errorf("cannot scan %s value %s into *bool", v.Kind, v)
		}
		*d = v.B
		return nil
	case *Expr:
		e, ok := v.AsExpr()
		if !ok {
			return fmt.Errorf("cannot scan %s value %s into *pip.Expr", v.Kind, v)
		}
		*d = e
		return nil
	case *Value:
		*d = v
		return nil
	case *any:
		*d = nativeValue(v)
		return nil
	default:
		return fmt.Errorf("unsupported Scan destination type %T", dest)
	}
}

// nativeValue unwraps a cell into its natural Go representation.
func nativeValue(v Value) any {
	switch v.Kind {
	case ctable.KindFloat:
		return v.F
	case ctable.KindInt:
		return v.I
	case ctable.KindString:
		return v.S
	case ctable.KindBool:
		return v.B
	case ctable.KindExpr:
		return v.E
	default:
		return nil
	}
}
