// Machine-readable benchmark reports: `pipbench -json FILE` runs a compact
// measurement suite and writes one JSON document designed for regression
// gating (tools/benchgate) and CI artifact upload. The schema is versioned
// so downstream tooling can reject incompatible files instead of
// misreading them.

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"pip"
	"pip/internal/bench"
	"pip/internal/server"
	"pip/internal/sql"
	"pip/internal/tpch"
)

// benchSchemaVersion identifies the report layout; bump on any
// incompatible field change so tools/benchgate refuses stale comparisons.
const benchSchemaVersion = 1

// benchReport is the top-level JSON document.
type benchReport struct {
	SchemaVersion int    `json:"schema_version"`
	GitSHA        string `json:"git_sha"`
	GoVersion     string `json:"go_version"`
	Quick         bool   `json:"quick"`
	Seed          uint64 `json:"seed"`
	Samples       int    `json:"samples"`

	// QueriesPerSec is the throughput of a simple expectation SELECT over
	// the demo catalog, single client, measured over a fixed iteration
	// count.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// NsPerSample is the sampler's per-sample cost on the Q1 workload
	// (SampleTime / sample budget).
	NsPerSample float64 `json:"ns_per_sample"`
	// Join reports the hash-join query benchmark.
	Join joinReport `json:"join"`
	// Speedup is the parallel world-evaluation curve (bench.Speedup), one
	// row per workload.
	Speedup []speedupReport `json:"speedup"`
	// Vectorized is the vectorized-vs-row A/B experiment
	// (bench.VectorizeAB), one row per workload. Additive: benchgate
	// ignores fields it does not know, so old baselines stay comparable.
	Vectorized []vectorizeReport `json:"vectorized"`
	// JoinBenches tracks the 3-table join pair — hash join and the
	// hint-forced nested-loop cross product, the same query and hints as
	// the repo's BenchmarkJoin3* benchmarks — through the public API, so
	// join-engine wins and regressions land in the baseline trajectory.
	// Additive like Vectorized.
	JoinBenches []joinBenchReport `json:"join_benches"`
}

// joinReport measures one equi-join expectation query end to end.
type joinReport struct {
	Query string  `json:"query"`
	Ms    float64 `json:"ms"`
}

// vectorizeReport is one bench.VectorizeRow, flattened for JSON.
type vectorizeReport struct {
	Workload  string  `json:"workload"`
	Query     string  `json:"query"`
	RowMs     float64 `json:"row_ms"`
	VecMs     float64 `json:"vec_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// joinBenchReport is one join micro-benchmark: average wall clock per
// executed query, streaming all result rows.
type joinBenchReport struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// speedupReport is one bench.SpeedupRow, flattened for JSON.
type speedupReport struct {
	Workload  string  `json:"workload"`
	Workers   int     `json:"workers"`
	SeqMs     float64 `json:"seq_ms"`
	ParMs     float64 `json:"par_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// gitSHA best-efforts the current commit (CI has git; a release tarball
// may not).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runJSON produces the report and writes it to path.
func runJSON(path string, opt bench.Options, quick bool, workers int) error {
	rep := benchReport{
		SchemaVersion: benchSchemaVersion,
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		Quick:         quick,
		Seed:          opt.Seed,
		Samples:       opt.Samples,
	}

	// Throughput: simple expectation SELECT over the demo catalog.
	db := pip.Open(pip.Options{Seed: opt.Seed})
	for _, stmt := range server.DemoStatements {
		db.MustExec(stmt)
	}
	const iters = 50
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		db.MustQuery("SELECT expected_sum(price) FROM orders")
	}
	rep.QueriesPerSec = iters / time.Since(t0).Seconds()

	// Join: the paper's running-example equi-join, planned as a hash join.
	joinQ := "SELECT expected_sum(o.price) FROM orders o, shipping s WHERE o.shipto = s.dest AND s.duration >= 7"
	t0 = time.Now()
	db.MustQuery(joinQ)
	rep.Join = joinReport{Query: joinQ, Ms: float64(time.Since(t0).Microseconds()) / 1000}

	// Per-sample cost: Q1's sampling phase over the TPC-H generator.
	data := tpch.Generate(opt.Scale, opt.Seed)
	q1, err := bench.Q1PIP(data, opt.Samples, opt.Seed)
	if err != nil {
		return fmt.Errorf("q1: %w", err)
	}
	if q1.Samples > 0 {
		rep.NsPerSample = float64(q1.SampleTime.Nanoseconds()) / float64(q1.Samples)
	}

	// Parallel speedup curve with the bit-identity verdicts.
	rows, err := bench.Speedup(opt, workers)
	if err != nil {
		return fmt.Errorf("speedup: %w", err)
	}
	for _, r := range rows {
		rep.Speedup = append(rep.Speedup, speedupReport{
			Workload:  r.Workload,
			Workers:   r.Workers,
			SeqMs:     float64(r.SeqTime.Microseconds()) / 1000,
			ParMs:     float64(r.ParTime.Microseconds()) / 1000,
			Speedup:   r.Speedup(),
			Identical: r.Identical,
		})
	}

	// Join pair: hash join vs hint-forced nested loop over the same rows.
	rep.JoinBenches, err = measureJoinBenches()
	if err != nil {
		return fmt.Errorf("join benches: %w", err)
	}

	// Vectorized-vs-row A/B with the differential bit-identity verdicts.
	vrows, err := bench.VectorizeAB(opt)
	if err != nil {
		return fmt.Errorf("vectorize: %w", err)
	}
	for _, r := range vrows {
		rep.Vectorized = append(rep.Vectorized, vectorizeReport{
			Workload:  r.Workload,
			Query:     r.Query,
			RowMs:     float64(r.RowTime.Microseconds()) / 1000,
			VecMs:     float64(r.VecTime.Microseconds()) / 1000,
			Speedup:   r.Speedup(),
			Identical: r.Identical,
		})
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// measureJoinBenches runs the 3-table equi-join once per planner mode:
// hash-joined as planned, then with rewrite rules and hash joins disabled
// via hints so it executes as the filtered cross product. The catalog,
// query, hints and expected row count replicate BenchmarkJoin3* exactly.
func measureJoinBenches() ([]joinBenchReport, error) {
	const joinRows = 48
	db := pip.Open(pip.Options{Seed: 5})
	db.MustExec("CREATE TABLE jr (a, ra)")
	db.MustExec("CREATE TABLE js (a, b, sb)")
	db.MustExec("CREATE TABLE jt (b, tc)")
	for i := 0; i < joinRows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO jr VALUES (%d, %d)", i, i*2))
		db.MustExec(fmt.Sprintf("INSERT INTO js VALUES (%d, %d, %d)", i, i+1000, i*3))
		db.MustExec(fmt.Sprintf("INSERT INTO jt VALUES (%d, %d)", i+1000, i*5))
	}
	const q = "SELECT jr.ra, js.sb, jt.tc FROM jr, js, jt WHERE jr.a = js.a AND js.b = jt.b"
	run := func(ctx context.Context) error {
		rows, err := db.QueryContext(ctx, q)
		if err != nil {
			return err
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			return err
		}
		if n != joinRows {
			return fmt.Errorf("join produced %d rows, want %d", n, joinRows)
		}
		return nil
	}
	cases := []struct {
		name  string
		hints sql.Hints
		iters int
	}{
		{"join3_hash", sql.Hints{}, 200},
		{"join3_nested_loop", sql.Hints{NoFold: true, NoPushdown: true, NoHashJoin: true, NoPrune: true}, 20},
	}
	out := make([]joinBenchReport, 0, len(cases))
	for _, c := range cases {
		ctx := sql.WithHints(context.Background(), c.hints)
		if err := run(ctx); err != nil { // warmup
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		t0 := time.Now()
		for i := 0; i < c.iters; i++ {
			if err := run(ctx); err != nil {
				return nil, fmt.Errorf("%s: %w", c.name, err)
			}
		}
		out = append(out, joinBenchReport{
			Name:    c.name,
			NsPerOp: float64(time.Since(t0).Nanoseconds()) / float64(c.iters),
		})
	}
	return out, nil
}
