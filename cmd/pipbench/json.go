// Machine-readable benchmark reports: `pipbench -json FILE` runs a compact
// measurement suite and writes one JSON document designed for regression
// gating (tools/benchgate) and CI artifact upload. The schema is versioned
// so downstream tooling can reject incompatible files instead of
// misreading them.

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"pip"
	"pip/internal/bench"
	"pip/internal/server"
	"pip/internal/tpch"
)

// benchSchemaVersion identifies the report layout; bump on any
// incompatible field change so tools/benchgate refuses stale comparisons.
const benchSchemaVersion = 1

// benchReport is the top-level JSON document.
type benchReport struct {
	SchemaVersion int    `json:"schema_version"`
	GitSHA        string `json:"git_sha"`
	GoVersion     string `json:"go_version"`
	Quick         bool   `json:"quick"`
	Seed          uint64 `json:"seed"`
	Samples       int    `json:"samples"`

	// QueriesPerSec is the throughput of a simple expectation SELECT over
	// the demo catalog, single client, measured over a fixed iteration
	// count.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// NsPerSample is the sampler's per-sample cost on the Q1 workload
	// (SampleTime / sample budget).
	NsPerSample float64 `json:"ns_per_sample"`
	// Join reports the hash-join query benchmark.
	Join joinReport `json:"join"`
	// Speedup is the parallel world-evaluation curve (bench.Speedup), one
	// row per workload.
	Speedup []speedupReport `json:"speedup"`
}

// joinReport measures one equi-join expectation query end to end.
type joinReport struct {
	Query string  `json:"query"`
	Ms    float64 `json:"ms"`
}

// speedupReport is one bench.SpeedupRow, flattened for JSON.
type speedupReport struct {
	Workload  string  `json:"workload"`
	Workers   int     `json:"workers"`
	SeqMs     float64 `json:"seq_ms"`
	ParMs     float64 `json:"par_ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// gitSHA best-efforts the current commit (CI has git; a release tarball
// may not).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runJSON produces the report and writes it to path.
func runJSON(path string, opt bench.Options, quick bool, workers int) error {
	rep := benchReport{
		SchemaVersion: benchSchemaVersion,
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		Quick:         quick,
		Seed:          opt.Seed,
		Samples:       opt.Samples,
	}

	// Throughput: simple expectation SELECT over the demo catalog.
	db := pip.Open(pip.Options{Seed: opt.Seed})
	for _, stmt := range server.DemoStatements {
		db.MustExec(stmt)
	}
	const iters = 50
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		db.MustQuery("SELECT expected_sum(price) FROM orders")
	}
	rep.QueriesPerSec = iters / time.Since(t0).Seconds()

	// Join: the paper's running-example equi-join, planned as a hash join.
	joinQ := "SELECT expected_sum(o.price) FROM orders o, shipping s WHERE o.shipto = s.dest AND s.duration >= 7"
	t0 = time.Now()
	db.MustQuery(joinQ)
	rep.Join = joinReport{Query: joinQ, Ms: float64(time.Since(t0).Microseconds()) / 1000}

	// Per-sample cost: Q1's sampling phase over the TPC-H generator.
	data := tpch.Generate(opt.Scale, opt.Seed)
	q1, err := bench.Q1PIP(data, opt.Samples, opt.Seed)
	if err != nil {
		return fmt.Errorf("q1: %w", err)
	}
	if q1.Samples > 0 {
		rep.NsPerSample = float64(q1.SampleTime.Nanoseconds()) / float64(q1.Samples)
	}

	// Parallel speedup curve with the bit-identity verdicts.
	rows, err := bench.Speedup(opt, workers)
	if err != nil {
		return fmt.Errorf("speedup: %w", err)
	}
	for _, r := range rows {
		rep.Speedup = append(rep.Speedup, speedupReport{
			Workload:  r.Workload,
			Workers:   r.Workers,
			SeqMs:     float64(r.SeqTime.Microseconds()) / 1000,
			ParMs:     float64(r.ParTime.Microseconds()) / 1000,
			Speedup:   r.Speedup(),
			Identical: r.Identical,
		})
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
