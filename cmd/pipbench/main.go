// Command pipbench regenerates the paper's evaluation figures (§VI) and
// measures the parallel world-evaluation engine:
//
//	pipbench -experiment fig5|fig6|fig7a|fig7b|fig8|speedup|vectorize|all [-quick]
//	         [-seed N] [-samples N] [-trials N] [-workers N]
//
// Each figure experiment prints the same series the corresponding figure
// plots. The speedup experiment runs the iceberg and TPC-H workloads once
// sequentially (workers=1) and once on the worker pool (-workers, default
// one per CPU), reporting wall-clock speedup and verifying that both runs
// return bit-identical values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pip/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig5, fig6, fig7a, fig7b, fig8, speedup, vectorize or all")
		quick      = flag.Bool("quick", false, "use the fast, small-scale configuration")
		seed       = flag.Uint64("seed", 0, "override the world seed (0 = default)")
		samples    = flag.Int("samples", 0, "override the PIP sample budget (0 = default 1000)")
		trials     = flag.Int("trials", 0, "override the RMS trial count (0 = default 30)")
		workers    = flag.Int("workers", 0, "worker pool size for the speedup experiment (0 = one per CPU)")
		jsonOut    = flag.String("json", "", "write a machine-readable benchmark report to this file ('-' = stdout) and exit")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	if *quick {
		opt = bench.QuickOptions()
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *samples > 0 {
		opt.Samples = *samples
	}
	if *trials > 0 {
		opt.Trials = *trials
	}

	if *jsonOut != "" {
		if err := runJSON(*jsonOut, opt, *quick, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "pipbench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "pipbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("fig5", func() error {
		rows, err := bench.Fig5(opt)
		if err != nil {
			return err
		}
		bench.WriteFig5(os.Stdout, rows)
		return nil
	})
	run("fig6", func() error {
		rows, err := bench.Fig6(opt)
		if err != nil {
			return err
		}
		bench.WriteFig6(os.Stdout, rows)
		return nil
	})
	run("fig7a", func() error {
		rows, err := bench.Fig7a(opt)
		if err != nil {
			return err
		}
		bench.WriteFig7(os.Stdout, "(a) group-by query, selectivity 0.005", rows)
		return nil
	})
	run("fig7b", func() error {
		rows, err := bench.Fig7b(opt)
		if err != nil {
			return err
		}
		bench.WriteFig7(os.Stdout, "(b) two-variable comparison, selectivity 0.05", rows)
		return nil
	})
	run("fig8", func() error {
		res, err := bench.Fig8(opt)
		if err != nil {
			return err
		}
		bench.WriteFig8(os.Stdout, res)
		return nil
	})

	run("speedup", func() error {
		rows, err := bench.Speedup(opt, *workers)
		if err != nil {
			return err
		}
		bench.WriteSpeedup(os.Stdout, rows)
		return nil
	})

	run("vectorize", func() error {
		rows, err := bench.VectorizeAB(opt)
		if err != nil {
			return err
		}
		bench.WriteVectorize(os.Stdout, rows)
		return nil
	})

	switch *experiment {
	case "all", "fig5", "fig6", "fig7a", "fig7b", "fig8", "speedup", "vectorize":
	default:
		fmt.Fprintf(os.Stderr, "pipbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
