// Command pipql is an interactive REPL over PIP's SQL subset.
//
//	pipql [-seed N] [-demo]
//
// With -demo, the running example of the paper (orders x shipping) is
// preloaded. Statements end with a semicolon; \d lists tables, \timing
// toggles per-query wall time, \q quits. Results stream row by row,
// EXPLAIN [ANALYZE] prints the planner's operator tree, Ctrl-C cancels the
// running query (the parallel sampler aborts at its next round barrier),
// and parse errors report their line:column position with a caret.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"pip"
)

func main() {
	var (
		seed = flag.Uint64("seed", 1, "world seed")
		demo = flag.Bool("demo", false, "preload the paper's running example")
	)
	flag.Parse()

	db := pip.Open(pip.Options{Seed: *seed})
	if *demo {
		loadDemo(db)
		fmt.Println("Demo tables loaded: orders(cust, shipto, price), shipping(dest, duration)")
		fmt.Println(`Try: SELECT expected_sum(o.price) FROM orders o, shipping s
     WHERE o.shipto = s.dest AND o.cust = 'Joe' AND s.duration >= 7;`)
	}

	fmt.Println("pipql — PIP probabilistic SQL. End statements with ';'. \\d lists tables, \\timing toggles timing, \\q quits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	timing := false
	var buf strings.Builder
	fmt.Print("pip> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "quit", "exit":
			return
		case `\d`:
			describeTables(db)
			fmt.Print("pip> ")
			continue
		case `\timing`:
			timing = !timing
			if timing {
				fmt.Println("Timing is on.")
			} else {
				fmt.Println("Timing is off.")
			}
			fmt.Print("pip> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("...> ")
			continue
		}
		stmt := buf.String()
		buf.Reset()
		start := time.Now()
		runStatement(db, stmt)
		if timing {
			fmt.Printf("Time: %.3f ms\n", float64(time.Since(start).Microseconds())/1000)
		}
		fmt.Print("pip> ")
	}
}

// describeTables lists catalog tables; lookup failures print instead of
// silently dropping the table from the listing.
func describeTables(db *pip.DB) {
	for _, n := range db.Core().TableNames() {
		tb, err := db.Table(n)
		if err != nil {
			fmt.Printf("  %s — error: %v\n", n, err)
			continue
		}
		fmt.Printf("  %s(%s) — %d rows\n", n, strings.Join(tb.Schema.Names(), ", "), tb.Len())
	}
}

// runStatement executes one statement, streaming result rows. Ctrl-C
// cancels the statement's context: the sampler aborts and the query
// reports the cancellation instead of a partial result.
func runStatement(db *pip.DB, stmt string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rows, err := db.QueryContext(ctx, stmt)
	if err != nil {
		printError(stmt, err)
		return
	}
	defer rows.Close()

	cols := rows.Columns()
	if len(cols) == 0 {
		fmt.Println("ok")
		return
	}
	// EXPLAIN results are an already-indented operator tree: print the
	// lines raw instead of as tuples.
	if len(cols) == 1 && cols[0] == "QUERY PLAN" {
		for rows.Next() {
			fmt.Println(rows.Values()[0].S)
		}
		if err := rows.Err(); err != nil {
			printError(stmt, err)
		}
		return
	}
	fmt.Printf("(%s)\n", strings.Join(cols, ", "))
	n := 0
	for rows.Next() {
		cells := make([]string, 0, len(cols))
		for _, v := range rows.Values() {
			cells = append(cells, v.String())
		}
		fmt.Printf("  (%s) | %s\n", strings.Join(cells, ", "), rows.Cond())
		n++
	}
	if err := rows.Err(); err != nil {
		printError(stmt, err)
		return
	}
	fmt.Printf("%d row(s)\n", n)
}

// printError reports a statement failure; parse errors render the offending
// source line with a caret under the error column.
func printError(stmt string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Println("cancelled")
		return
	}
	var pe *pip.ParseError
	if errors.As(err, &pe) {
		fmt.Printf("error: %v\n", pe)
		if line := pe.SourceLine(); line != "" {
			fmt.Printf("  %s\n", line)
			fmt.Printf("  %s^\n", strings.Repeat(" ", pe.Col-1))
		}
		return
	}
	fmt.Printf("error: %v\n", err)
}

func loadDemo(db *pip.DB) {
	db.MustExec("CREATE TABLE orders (cust, shipto, price)")
	db.MustExec("CREATE TABLE shipping (dest, duration)")
	db.MustExec("INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))")
	db.MustExec("INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))")
	db.MustExec("INSERT INTO shipping VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))")
	db.MustExec("INSERT INTO shipping VALUES ('LA', CREATE_VARIABLE('Normal', 4, 1))")
}
