// Command pipql is an interactive REPL over PIP's SQL subset, against
// either an in-process engine or a remote pipd server.
//
//	pipql [-seed N] [-demo]                  # in-process database
//	pipql -connect host:port [-demo]         # remote session on a pipd server
//
// With -demo, the running example of the paper (orders x shipping) is
// preloaded. Statements end with a semicolon; \d lists tables, \timing
// toggles per-query wall time, \q quits. Results stream row by row,
// EXPLAIN [ANALYZE] prints the planner's operator tree, Ctrl-C cancels the
// running query (the parallel sampler aborts at its next round barrier —
// in -connect mode the cancellation travels to the server by tearing down
// the HTTP stream), and parse errors report their line:column position
// with a caret in both modes.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"pip"
	"pip/internal/server"
)

// backend abstracts the two execution modes: run executes one statement
// and prints its result, exec executes silently (demo loading),
// demoPresent reports whether the demo tables already exist (a shared
// server may have them), describe lists the catalog, stats fetches the
// engine's SHOW STATS rows for \trace, close releases any remote state.
type backend interface {
	run(ctx context.Context, stmt string)
	exec(ctx context.Context, stmt string) error
	demoPresent() bool
	describe()
	stats(ctx context.Context) ([]statRow, error)
	close()
}

// statRow is one (scope, name, value) row of SHOW STATS, backend-neutral.
type statRow struct {
	scope, name string
	value       float64
}

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed (with -connect, overrides the session's server-inherited seed only when set explicitly)")
		connect = flag.String("connect", "", "host:port of a pipd server; empty = in-process")
		demo    = flag.Bool("demo", false, "preload the paper's running example")
	)
	flag.Parse()
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	var be backend
	if *connect != "" {
		rb, err := newRemoteBackend(*connect, *seed, seedSet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipql: %v\n", err)
			os.Exit(1)
		}
		be = rb
		fmt.Printf("Connected to pipd at %s (session %s).\n", *connect, rb.sess.ID())
	} else {
		be = &localBackend{db: pip.Open(pip.Options{Seed: *seed})}
	}
	defer be.close()

	if *demo {
		// A shared server may already hold the demo (pipd -demo, or an
		// earlier client): reloading would replace the shared tables and
		// change every other session's results, so skip instead.
		if be.demoPresent() {
			fmt.Println("Demo tables already present on the server; not reloading.")
		} else if err := loadDemo(be); err != nil {
			fmt.Fprintf(os.Stderr, "pipql: demo load: %v\n", err)
		} else {
			fmt.Println("Demo tables loaded: orders(cust, shipto, price), shipping(dest, duration)")
			fmt.Println(`Try: SELECT expected_sum(o.price) FROM orders o, shipping s
     WHERE o.shipto = s.dest AND o.cust = 'Joe' AND s.duration >= 7;`)
		}
	}

	fmt.Println("pipql — PIP probabilistic SQL. End statements with ';'. \\d lists tables, \\timing toggles timing, \\stats shows engine telemetry, \\trace toggles per-query phase timings, \\q quits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	timing := false
	trace := false
	var buf strings.Builder
	fmt.Print("pip> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "quit", "exit":
			return
		case `\d`:
			be.describe()
			fmt.Print("pip> ")
			continue
		case `\stats`:
			runCancellable(be, "SHOW STATS;")
			fmt.Print("pip> ")
			continue
		case `\trace`:
			trace = !trace
			if trace {
				fmt.Println("Tracing is on: phase timings print after each statement.")
			} else {
				fmt.Println("Tracing is off.")
			}
			fmt.Print("pip> ")
			continue
		case `\timing`:
			timing = !timing
			if timing {
				fmt.Println("Timing is on.")
			} else {
				fmt.Println("Timing is off.")
			}
			fmt.Print("pip> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("...> ")
			continue
		}
		stmt := buf.String()
		buf.Reset()
		start := time.Now()
		runCancellable(be, stmt)
		if timing {
			fmt.Printf("Time: %.3f ms\n", float64(time.Since(start).Microseconds())/1000)
		}
		if trace {
			printTrace(be)
		}
		fmt.Print("pip> ")
	}
}

// printTrace renders the last query's phase timings and sampler counters
// (the query-scope rows of SHOW STATS) as one compact line — the \trace
// output printed after each statement.
func printTrace(be backend) {
	rows, err := be.stats(context.Background())
	if err != nil {
		fmt.Printf("trace: %v\n", err)
		return
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.scope == "query" {
			byName[r.name] = r.value
		}
	}
	if len(byName) == 0 {
		fmt.Println("Trace: no traced query yet.")
		return
	}
	parts := make([]string, 0, 6)
	for _, ph := range []string{"parse", "plan", "rewrite", "execute"} {
		if secs, ok := byName["phase_"+ph+"_seconds"]; ok {
			parts = append(parts, fmt.Sprintf("%s %s", ph, time.Duration(secs*float64(time.Second)).Round(time.Microsecond)))
		}
	}
	if n := byName["samples"]; n > 0 {
		parts = append(parts, fmt.Sprintf("samples=%.0f batches=%.0f", n, byName["batches"]))
	}
	if att := byName["rejection_attempts"]; att > 0 {
		parts = append(parts, fmt.Sprintf("accept=%.3f", byName["rejection_accepts"]/att))
	}
	fmt.Printf("Trace: %s\n", strings.Join(parts, " · "))
}

// runCancellable executes one statement under a Ctrl-C-cancellable
// context: the sampler aborts and the query reports the cancellation
// instead of a partial result (remotely, closing the stream cancels the
// server-side query).
func runCancellable(be backend, stmt string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	be.run(ctx, stmt)
}

// loadDemo installs the paper's running example (server.DemoStatements,
// the dataset every -demo surface shares) through the backend, so it
// works identically in-process and against a server.
func loadDemo(be backend) error {
	for _, stmt := range server.DemoStatements {
		if err := be.exec(context.Background(), stmt); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// In-process backend

// localBackend executes against an embedded pip.DB.
type localBackend struct {
	db *pip.DB
}

func (b *localBackend) close() {}

// exec runs a statement without printing (demo loading).
func (b *localBackend) exec(ctx context.Context, stmt string) error {
	return b.db.ExecContext(ctx, stmt)
}

// demoPresent is always false in-process: the database is freshly opened.
func (b *localBackend) demoPresent() bool { return false }

// stats fetches SHOW STATS rows from the embedded engine.
func (b *localBackend) stats(ctx context.Context) ([]statRow, error) {
	rows, err := b.db.QueryContext(ctx, "SHOW STATS")
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []statRow
	for rows.Next() {
		v := rows.Values()
		out = append(out, statRow{scope: v[0].S, name: v[1].S, value: v[2].F})
	}
	return out, rows.Err()
}

// describe lists catalog tables; lookup failures print instead of
// silently dropping the table from the listing.
func (b *localBackend) describe() {
	for _, n := range b.db.Core().TableNames() {
		tb, err := b.db.Table(n)
		if err != nil {
			fmt.Printf("  %s — error: %v\n", n, err)
			continue
		}
		fmt.Printf("  %s(%s) — %d rows\n", n, strings.Join(tb.Schema.Names(), ", "), tb.Len())
	}
}

// run executes one statement, streaming result rows.
func (b *localBackend) run(ctx context.Context, stmt string) {
	rows, err := b.db.QueryContext(ctx, stmt)
	if err != nil {
		printError(err)
		return
	}
	defer rows.Close()

	cols := rows.Columns()
	if len(cols) == 0 {
		fmt.Println("ok")
		return
	}
	// EXPLAIN results are an already-indented operator tree: print the
	// lines raw instead of as tuples.
	if len(cols) == 1 && cols[0] == "QUERY PLAN" {
		for rows.Next() {
			fmt.Println(rows.Values()[0].S)
		}
		if err := rows.Err(); err != nil {
			printError(err)
		}
		return
	}
	fmt.Printf("(%s)\n", strings.Join(cols, ", "))
	n := 0
	for rows.Next() {
		cells := make([]string, 0, len(cols))
		for _, v := range rows.Values() {
			cells = append(cells, v.String())
		}
		fmt.Printf("  (%s) | %s\n", strings.Join(cells, ", "), rows.Cond())
		n++
	}
	if err := rows.Err(); err != nil {
		printError(err)
		return
	}
	fmt.Printf("%d row(s)\n", n)
}

// ---------------------------------------------------------------------------
// Remote backend

// remoteBackend executes against a pipd session over the wire protocol.
// settings are kept so an expired session can be reopened transparently.
type remoteBackend struct {
	client   *server.Client
	sess     *server.ClientSession
	settings map[string]json.Number
}

// newRemoteBackend connects, verifies liveness, and opens a session. The
// session inherits the server's configured seed unless the user set
// -seed explicitly — pipd's operator chooses the default, not this
// client's flag default.
func newRemoteBackend(addr string, seed uint64, seedSet bool) (*remoteBackend, error) {
	client := server.NewClient(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := client.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("cannot reach pipd at %s: %w", addr, err)
	}
	var settings map[string]json.Number
	if seedSet {
		settings = map[string]json.Number{"seed": json.Number(fmt.Sprint(seed))}
	}
	sess, err := client.Session(ctx, settings)
	if err != nil {
		return nil, err
	}
	return &remoteBackend{client: client, sess: sess, settings: settings}, nil
}

// refresh reopens the backend's session after the server forgot it (idle
// sweep or restart), so a long-idle REPL recovers instead of failing
// every statement. SET state of the old session is lost; the original
// connect-time settings are re-applied.
func (b *remoteBackend) refresh(ctx context.Context) error {
	sess, err := b.client.Session(ctx, b.settings)
	if err != nil {
		return err
	}
	b.sess = sess
	fmt.Printf("(session expired on the server; reconnected as %s — SET state was reset)\n", sess.ID())
	return nil
}

// sessionLost reports whether err means the server no longer knows our
// session.
func sessionLost(err error) bool { return errors.Is(err, server.ErrSessionUnknown) }

func (b *remoteBackend) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = b.sess.Close(ctx)
}

// exec runs a statement without printing (demo loading).
func (b *remoteBackend) exec(ctx context.Context, stmt string) error {
	_, err := b.sess.Exec(ctx, stmt)
	if sessionLost(err) {
		if rerr := b.refresh(ctx); rerr == nil {
			_, err = b.sess.Exec(ctx, stmt)
		}
	}
	return err
}

// demoPresent reports whether the server's shared catalog already holds
// the demo tables.
func (b *remoteBackend) demoPresent() bool {
	tables, err := b.client.Tables(context.Background())
	if err != nil {
		return false
	}
	have := map[string]bool{}
	for _, t := range tables {
		have[t.Name] = true
	}
	return have["orders"] && have["shipping"]
}

// stats fetches SHOW STATS rows over the wire — the schema is identical to
// the local surface, so the rows decode the same way.
func (b *remoteBackend) stats(ctx context.Context) ([]statRow, error) {
	rows, err := b.sess.Query(ctx, "SHOW STATS")
	if sessionLost(err) {
		if rerr := b.refresh(ctx); rerr == nil {
			rows, err = b.sess.Query(ctx, "SHOW STATS")
		}
	}
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []statRow
	for rows.Next() {
		r := rows.Row()
		val, err := r[2].Native()
		if err != nil {
			return nil, err
		}
		f, _ := val.(float64)
		out = append(out, statRow{scope: r[0].S, name: r[1].S, value: f})
	}
	return out, rows.Err()
}

// describe lists the server's shared catalog.
func (b *remoteBackend) describe() {
	tables, err := b.client.Tables(context.Background())
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	for _, t := range tables {
		fmt.Printf("  %s(%s) — %d rows\n", t.Name, strings.Join(t.Columns, ", "), t.Rows)
	}
}

// run executes one statement in the remote session, streaming rows as the
// server emits them. A session the server expired is reopened once and
// the statement retried.
func (b *remoteBackend) run(ctx context.Context, stmt string) {
	rows, err := b.sess.Query(ctx, stmt)
	if sessionLost(err) {
		if rerr := b.refresh(ctx); rerr == nil {
			rows, err = b.sess.Query(ctx, stmt)
		}
	}
	if err != nil {
		printError(err)
		return
	}
	defer rows.Close()

	cols := rows.Columns()
	if len(cols) == 0 {
		// Drain to the done chunk so the statement's outcome is real and
		// the connection returns to the keep-alive pool (closing early
		// reads as a client disconnect server-side).
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			printError(err)
			return
		}
		fmt.Println("ok")
		return
	}
	if len(cols) == 1 && cols[0] == "QUERY PLAN" {
		for rows.Next() {
			fmt.Println(rows.Row()[0].S)
		}
		if err := rows.Err(); err != nil {
			printError(err)
		}
		return
	}
	fmt.Printf("(%s)\n", strings.Join(cols, ", "))
	n := 0
	for rows.Next() {
		cells := make([]string, 0, len(cols))
		for _, v := range rows.Row() {
			cells = append(cells, v.String())
		}
		// Render deterministic rows exactly as the local backend does.
		cond := rows.Cond()
		if cond == "" {
			cond = "TRUE"
		}
		fmt.Printf("  (%s) | %s\n", strings.Join(cells, ", "), cond)
		n++
	}
	if err := rows.Err(); err != nil {
		printError(err)
		return
	}
	fmt.Printf("%d row(s)\n", n)
}

// ---------------------------------------------------------------------------

// printError reports a statement failure; parse errors render the
// offending source line with a caret under the error column (local and
// remote — the wire carries the position).
func printError(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Println("cancelled")
		return
	}
	var pe *pip.ParseError
	if errors.As(err, &pe) {
		fmt.Printf("error: %v\n", pe)
		if line := pe.SourceLine(); line != "" {
			fmt.Printf("  %s\n", line)
			fmt.Printf("  %s^\n", strings.Repeat(" ", pe.Col-1))
		}
		return
	}
	fmt.Printf("error: %v\n", err)
}
