// Command pipql is an interactive REPL over PIP's SQL subset.
//
//	pipql [-seed N] [-demo]
//
// With -demo, the running example of the paper (orders x shipping) is
// preloaded. Statements end with a semicolon; \d lists tables, \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pip"
)

func main() {
	var (
		seed = flag.Uint64("seed", 1, "world seed")
		demo = flag.Bool("demo", false, "preload the paper's running example")
	)
	flag.Parse()

	db := pip.Open(pip.Options{Seed: *seed})
	if *demo {
		loadDemo(db)
		fmt.Println("Demo tables loaded: orders(cust, shipto, price), shipping(dest, duration)")
		fmt.Println(`Try: SELECT expected_sum(o.price) FROM orders o, shipping s
     WHERE o.shipto = s.dest AND o.cust = 'Joe' AND s.duration >= 7;`)
	}

	fmt.Println("pipql — PIP probabilistic SQL. End statements with ';'. \\d lists tables, \\q quits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("pip> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "quit", "exit":
			return
		case `\d`:
			for _, n := range db.Core().TableNames() {
				tb, err := db.Table(n)
				if err != nil {
					continue
				}
				fmt.Printf("  %s(%s) — %d rows\n", n, strings.Join(tb.Schema.Names(), ", "), tb.Len())
			}
			fmt.Print("pip> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("...> ")
			continue
		}
		stmt := buf.String()
		buf.Reset()
		out, err := db.Query(stmt)
		switch {
		case err != nil:
			fmt.Printf("error: %v\n", err)
		case out == nil:
			fmt.Println("ok")
		default:
			fmt.Print(out.String())
		}
		fmt.Print("pip> ")
	}
}

func loadDemo(db *pip.DB) {
	db.MustExec("CREATE TABLE orders (cust, shipto, price)")
	db.MustExec("CREATE TABLE shipping (dest, duration)")
	db.MustExec("INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))")
	db.MustExec("INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))")
	db.MustExec("INSERT INTO shipping VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))")
	db.MustExec("INSERT INTO shipping VALUES ('LA', CREATE_VARIABLE('Normal', 4, 1))")
}
