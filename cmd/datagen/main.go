// Command datagen dumps the synthetic benchmark datasets to CSV for
// inspection:
//
//	datagen -dataset tpch|iceberg [-seed N] [-out DIR]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"pip/internal/iceberg"
	"pip/internal/tpch"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpch", "tpch or iceberg")
		seed    = flag.Uint64("seed", 0xBEEF, "generator seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var err error
	switch *dataset {
	case "tpch":
		err = dumpTPCH(*out, *seed)
	case "iceberg":
		err = dumpIceberg(*out, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2s(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }

func dumpTPCH(dir string, seed uint64) error {
	d := tpch.Generate(tpch.DefaultScale(), seed)
	var rows [][]string
	for _, c := range d.Customers {
		rows = append(rows, []string{
			strconv.Itoa(c.CustKey), c.Name, f2s(c.Purchases2YearsAgo),
			f2s(c.PurchasesLastYear), f2s(c.AvgOrderPrice), f2s(c.SatisfactionThreshold),
		})
	}
	if err := writeCSV(dir, "customer.csv",
		[]string{"custkey", "name", "purch_2y", "purch_1y", "avg_price", "sat_threshold"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range d.Parts {
		rows = append(rows, []string{
			strconv.Itoa(p.PartKey), p.Name, f2s(p.RetailPrice), f2s(p.Quantity),
			f2s(p.PopularityRate), f2s(p.GrowthLambda),
		})
	}
	if err := writeCSV(dir, "part.csv",
		[]string{"partkey", "name", "retailprice", "quantity", "pop_rate", "growth_lambda"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for _, s := range d.Suppliers {
		rows = append(rows, []string{
			strconv.Itoa(s.SuppKey), s.Name, s.Nation, f2s(s.ManufMean), f2s(s.ManufStd),
			f2s(s.ShipMean), f2s(s.ShipStd), f2s(s.ProductionRate),
		})
	}
	if err := writeCSV(dir, "supplier.csv",
		[]string{"suppkey", "name", "nation", "manuf_mean", "manuf_std", "ship_mean", "ship_std", "prod_rate"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for _, o := range d.Orders {
		rows = append(rows, []string{
			strconv.Itoa(o.OrderKey), strconv.Itoa(o.CustKey), strconv.Itoa(o.PartKey),
			strconv.Itoa(o.SuppKey), strconv.Itoa(o.Year), f2s(o.Price),
			f2s(o.ManufDays), f2s(o.ShipDays),
		})
	}
	if err := writeCSV(dir, "orders.csv",
		[]string{"orderkey", "custkey", "partkey", "suppkey", "year", "price", "manuf_days", "ship_days"}, rows); err != nil {
		return err
	}
	fmt.Printf("wrote customer.csv, part.csv, supplier.csv, orders.csv to %s\n", dir)
	return nil
}

func dumpIceberg(dir string, seed uint64) error {
	d := iceberg.Generate(2000, 100, seed)
	var rows [][]string
	for _, s := range d.Sightings {
		rows = append(rows, []string{
			strconv.Itoa(s.IcebergID), f2s(s.Lat), f2s(s.Lon), f2s(s.AgeDays),
			f2s(s.PositionStd()), f2s(s.Danger()),
		})
	}
	if err := writeCSV(dir, "sightings.csv",
		[]string{"iceberg", "lat", "lon", "age_days", "pos_std", "danger"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for _, s := range d.Ships {
		rows = append(rows, []string{strconv.Itoa(s.ShipID), f2s(s.Lat), f2s(s.Lon)})
	}
	if err := writeCSV(dir, "ships.csv", []string{"ship", "lat", "lon"}, rows); err != nil {
		return err
	}
	fmt.Printf("wrote sightings.csv, ships.csv to %s\n", dir)
	return nil
}
