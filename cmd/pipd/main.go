// Command pipd is the PIP network server: it hosts one shared
// probabilistic database behind the HTTP/JSON wire protocol of
// internal/server, multiplexing concurrent remote sessions with private
// SET settings, streaming query results, and propagating client
// disconnects into the sampler as cancellation.
//
//	pipd [-addr :7432] [-seed N] [-workers N] [-epsilon F] [-delta F]
//	     [-samples N] [-max-samples N] [-session-timeout D]
//	     [-data-dir DIR] [-fsync] [-snapshot-every N]
//	     [-replicate-addr addr] [-follow pip://host:port] [-replica-id ID]
//	     [-slow-query D] [-debug-addr addr] [-demo] [-quiet]
//
// Remote clients connect with the database/sql driver and a
// pip://host:port DSN, with pipql -connect, or with any HTTP client (see
// docs/OPERATIONS.md for the wire protocol). Request logging is structured
// (log/slog, logfmt-style text to stderr); -slow-query warns on statements
// slower than the threshold, and -debug-addr serves net/http/pprof on a
// separate listener kept off the query port.
//
// With -data-dir the database is durable: the directory is recovered
// before the listener opens (latest catalog snapshot + write-ahead log
// replay), every catalog-mutating statement is logged — and, with -fsync
// (the default), synced — before it is acknowledged, and -snapshot-every
// bounds replay time by snapshotting the catalog every N logged
// statements. Without -data-dir the database is in-memory, as before.
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests drain
// (bounded by the shutdown timeout), a final snapshot is taken when a data
// directory is configured, then the process exits.
//
// # Replication
//
// With -replicate-addr (requires -data-dir) the server is a replication
// primary: a second listener serves committed write-ahead-log records (and
// whole catalog snapshots, for replicas whose resume point was pruned) as
// an NDJSON stream to any number of replicas. With -follow pip://host:port
// the server is a read-only replica: it bootstraps from the primary's
// stream (snapshot, then log replay through the ordinary SQL path), applies
// live records as they commit, and serves queries whose answers are
// bit-identical to the primary's at equal log positions. Writes on a
// replica are rejected with a read_only error naming the primary; SET still
// works because session settings are local. A replica needs the same -seed
// as its primary (the handshake enforces it) and must not set -data-dir:
// its state is exactly the primary's log, reproduced, never its own.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"pip"
	"pip/internal/repl"
	"pip/internal/server"
	"pip/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":7432", "listen address")
		seed        = flag.Uint64("seed", 1, "world seed (equal seeds give bit-identical results)")
		workers     = flag.Int("workers", 0, "parallel sampler goroutines (0 = one per CPU)")
		epsilon     = flag.Float64("epsilon", 0, "confidence parameter in (0, 1); 0 = default")
		delta       = flag.Float64("delta", 0, "relative-error parameter in (0, 1); 0 = default")
		samples     = flag.Int("samples", 0, "fixed sample count (0 = adaptive)")
		maxSamples  = flag.Int("max-samples", 0, "adaptive sampling cap (0 = default)")
		sessionIdle = flag.Duration("session-timeout", server.DefaultSessionIdle, "expire sessions idle this long (0 = never)")
		dataDir     = flag.String("data-dir", "", "durable data directory: recover on boot, log statements (empty = in-memory)")
		fsync       = flag.Bool("fsync", true, "fsync the write-ahead log on every commit (requires -data-dir)")
		snapEvery   = flag.Int("snapshot-every", 4096, "snapshot the catalog every N logged statements (0 = only on shutdown)")
		replAddr    = flag.String("replicate-addr", "", "serve the replication stream on this address (requires -data-dir)")
		follow      = flag.String("follow", "", "follow a primary (pip://host:port) as a read-only replica")
		replicaID   = flag.String("replica-id", "", "stable replica name reported to the primary (empty = random)")
		shutdown    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain bound on SIGINT/SIGTERM")
		slowQuery   = flag.Duration("slow-query", 0, "warn on statements slower than this (0 = off)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		demo        = flag.Bool("demo", false, "preload the paper's running example (orders, shipping)")
		quiet       = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()

	// Same bounds the SET statement and session settings enforce; a bad
	// base value would silently corrupt every session's sampling guarantee.
	for name, v := range map[string]float64{"epsilon": *epsilon, "delta": *delta} {
		if v != 0 && (v <= 0 || v >= 1) {
			fmt.Fprintf(os.Stderr, "pipd: -%s must lie in (0, 1), got %g\n", name, v)
			os.Exit(2)
		}
	}
	if *samples < 0 || *maxSamples < 0 || *workers < 0 {
		fmt.Fprintln(os.Stderr, "pipd: -samples, -max-samples and -workers must be non-negative")
		os.Exit(2)
	}
	if *snapEvery < 0 {
		fmt.Fprintln(os.Stderr, "pipd: -snapshot-every must be non-negative")
		os.Exit(2)
	}
	if *replAddr != "" && *dataDir == "" {
		// The replication stream ships the write-ahead log; without a data
		// directory there is no log to ship.
		fmt.Fprintln(os.Stderr, "pipd: -replicate-addr requires -data-dir")
		os.Exit(2)
	}
	if *follow != "" {
		// A replica's state is the primary's log, reproduced. A local data
		// directory, a second primary role, or a demo preload would all give
		// it writes of its own — exactly what a replica must never have.
		switch {
		case *dataDir != "":
			fmt.Fprintln(os.Stderr, "pipd: -follow and -data-dir are mutually exclusive (a replica's state is the primary's log)")
			os.Exit(2)
		case *replAddr != "":
			fmt.Fprintln(os.Stderr, "pipd: -follow and -replicate-addr are mutually exclusive")
			os.Exit(2)
		case *demo:
			fmt.Fprintln(os.Stderr, "pipd: -follow and -demo are mutually exclusive (replicas reject writes)")
			os.Exit(2)
		}
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	db := pip.Open(pip.Options{
		Seed:         *seed,
		Workers:      *workers,
		Epsilon:      *epsilon,
		Delta:        *delta,
		FixedSamples: *samples,
		MaxSamples:   *maxSamples,
	})
	// Recover and attach the write-ahead log before anything (demo load
	// included) can mutate the catalog or open the listener: recovery must
	// see exactly the statements that were acknowledged pre-crash, and no
	// statement may be acknowledged unlogged.
	var store *wal.Store
	if *dataDir != "" {
		var info *wal.RecoveryInfo
		var err error
		store, info, err = wal.Open(*dataDir, db.Core(), wal.Options{Fsync: *fsync, SnapshotEvery: *snapEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipd: recover %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		if logger != nil {
			logger.Info("recovered", "data_dir", *dataDir,
				"snapshot_seq", info.SnapshotSeq, "replayed", info.Replayed,
				"last_seq", info.LastSeq, "duration", info.Duration)
			if info.TailErr != nil {
				// Expected after a crash mid-append: the torn, never-acknowledged
				// tail was dropped. Worth a warning so operators can correlate.
				logger.Warn("dropped torn log tail", "bytes", info.TailTruncated, "reason", info.TailErr.Error())
			}
			for _, skipped := range info.SkippedSnapshots {
				logger.Warn("skipped unreadable snapshot", "reason", skipped)
			}
		}
	}
	if *demo {
		// A recovered catalog already holds its data (demo tables included if
		// it was seeded with -demo originally); reloading would double rows.
		if len(db.Core().TableNames()) > 0 {
			if logger != nil {
				logger.Info("skipping demo load: recovered catalog is not empty")
			}
		} else {
			loadDemo(db)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Replication roles. The primary serves its log on a dedicated listener
	// kept off the query port; the follower marks the database read-only
	// (inside NewFollower) before the query listener opens, so no client
	// write can ever slip in ahead of the first applied record.
	var primary *repl.Primary
	var replHS *http.Server
	if *replAddr != "" {
		primary = repl.NewPrimary(store, *seed)
		db.Core().RegisterStatsScope("repl", primary.StatsMap)
		replHS = &http.Server{Addr: *replAddr, Handler: primary.Handler()}
		go func() {
			if err := replHS.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "pipd: replication listener: %v\n", err)
				os.Exit(1)
			}
		}()
		if logger != nil {
			logger.Info("replication enabled", "addr", *replAddr)
		}
	}
	var follower *repl.Follower
	if *follow != "" {
		follower = repl.NewFollower(db.Core(), repl.FollowerOptions{
			Primary:   *follow,
			ReplicaID: *replicaID,
			Seed:      *seed,
			Logger:    logger,
		})
		db.Core().RegisterStatsScope("repl", follower.StatsMap)
		go func() {
			// Run reconnects through transient failures and returns only on
			// ctx cancellation (nil) or an integrity failure: fail-stop
			// rather than keep serving reads that may no longer match the
			// primary's log.
			if err := follower.Run(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "pipd: replication failed: %v\n", err)
				os.Exit(1)
			}
		}()
		if logger != nil {
			logger.Info("following", "primary", *follow, "replica_id", follower.ReplicaID(), "seed", *seed)
		}
	}

	idle := *sessionIdle
	if idle == 0 {
		idle = -1 // Config.SessionIdle: negative disables, zero means default.
	}
	srv := server.New(server.Config{DB: db, Logger: logger, SlowQuery: *slowQuery, SessionIdle: idle, WAL: store, Repl: primary, Follower: follower})
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		// pprof stays on its own listener so profiling endpoints are never
		// reachable through the query port. The blank net/http/pprof import
		// registered its handlers on http.DefaultServeMux.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pipd: debug listener: %v\n", err)
			}
		}()
		if logger != nil {
			logger.Info("pprof enabled", "addr", *debugAddr)
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if logger != nil {
		logger.Info("listening", "addr", *addr, "seed", *seed, "session_timeout", *sessionIdle)
	}

	select {
	case err := <-errc:
		// Listener failed before shutdown was requested.
		fmt.Fprintf(os.Stderr, "pipd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	if logger != nil {
		logger.Info("shutting down", "drain_timeout", *shutdown)
	}
	sctx, cancel := context.WithTimeout(context.Background(), *shutdown)
	defer cancel()
	if replHS != nil {
		// Close, not Shutdown: open replication streams are held by live
		// followers and would block a graceful drain forever; they resume
		// from their own acked position on reconnect.
		replHS.Close()
	}
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "pipd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if store != nil {
		// Final snapshot so the next boot recovers without replay, then a
		// clean detach. Failures are non-fatal: the log already holds
		// everything a snapshot would.
		if err := store.Snapshot(); err != nil {
			fmt.Fprintf(os.Stderr, "pipd: final snapshot: %v\n", err)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pipd: close wal: %v\n", err)
		}
	}
}

// loadDemo installs the paper's running example (orders x shipping).
func loadDemo(db *pip.DB) {
	for _, stmt := range server.DemoStatements {
		db.MustExec(stmt)
	}
}
