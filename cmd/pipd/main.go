// Command pipd is the PIP network server: it hosts one shared
// probabilistic database behind the HTTP/JSON wire protocol of
// internal/server, multiplexing concurrent remote sessions with private
// SET settings, streaming query results, and propagating client
// disconnects into the sampler as cancellation.
//
//	pipd [-addr :7432] [-seed N] [-workers N] [-epsilon F] [-delta F]
//	     [-samples N] [-max-samples N] [-session-timeout D]
//	     [-slow-query D] [-debug-addr addr] [-demo] [-quiet]
//
// Remote clients connect with the database/sql driver and a
// pip://host:port DSN, with pipql -connect, or with any HTTP client (see
// docs/OPERATIONS.md for the wire protocol). Request logging is structured
// (log/slog, logfmt-style text to stderr); -slow-query warns on statements
// slower than the threshold, and -debug-addr serves net/http/pprof on a
// separate listener kept off the query port. SIGINT/SIGTERM trigger a
// graceful shutdown: in-flight requests drain (bounded by the shutdown
// timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"pip"
	"pip/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7432", "listen address")
		seed        = flag.Uint64("seed", 1, "world seed (equal seeds give bit-identical results)")
		workers     = flag.Int("workers", 0, "parallel sampler goroutines (0 = one per CPU)")
		epsilon     = flag.Float64("epsilon", 0, "confidence parameter in (0, 1); 0 = default")
		delta       = flag.Float64("delta", 0, "relative-error parameter in (0, 1); 0 = default")
		samples     = flag.Int("samples", 0, "fixed sample count (0 = adaptive)")
		maxSamples  = flag.Int("max-samples", 0, "adaptive sampling cap (0 = default)")
		sessionIdle = flag.Duration("session-timeout", server.DefaultSessionIdle, "expire sessions idle this long (0 = never)")
		shutdown    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain bound on SIGINT/SIGTERM")
		slowQuery   = flag.Duration("slow-query", 0, "warn on statements slower than this (0 = off)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		demo        = flag.Bool("demo", false, "preload the paper's running example (orders, shipping)")
		quiet       = flag.Bool("quiet", false, "disable request logging")
	)
	flag.Parse()

	// Same bounds the SET statement and session settings enforce; a bad
	// base value would silently corrupt every session's sampling guarantee.
	for name, v := range map[string]float64{"epsilon": *epsilon, "delta": *delta} {
		if v != 0 && (v <= 0 || v >= 1) {
			fmt.Fprintf(os.Stderr, "pipd: -%s must lie in (0, 1), got %g\n", name, v)
			os.Exit(2)
		}
	}
	if *samples < 0 || *maxSamples < 0 || *workers < 0 {
		fmt.Fprintln(os.Stderr, "pipd: -samples, -max-samples and -workers must be non-negative")
		os.Exit(2)
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	db := pip.Open(pip.Options{
		Seed:         *seed,
		Workers:      *workers,
		Epsilon:      *epsilon,
		Delta:        *delta,
		FixedSamples: *samples,
		MaxSamples:   *maxSamples,
	})
	if *demo {
		loadDemo(db)
	}

	idle := *sessionIdle
	if idle == 0 {
		idle = -1 // Config.SessionIdle: negative disables, zero means default.
	}
	srv := server.New(server.Config{DB: db, Logger: logger, SlowQuery: *slowQuery, SessionIdle: idle})
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		// pprof stays on its own listener so profiling endpoints are never
		// reachable through the query port. The blank net/http/pprof import
		// registered its handlers on http.DefaultServeMux.
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pipd: debug listener: %v\n", err)
			}
		}()
		if logger != nil {
			logger.Info("pprof enabled", "addr", *debugAddr)
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if logger != nil {
		logger.Info("listening", "addr", *addr, "seed", *seed, "session_timeout", *sessionIdle)
	}

	select {
	case err := <-errc:
		// Listener failed before shutdown was requested.
		fmt.Fprintf(os.Stderr, "pipd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	if logger != nil {
		logger.Info("shutting down", "drain_timeout", *shutdown)
	}
	sctx, cancel := context.WithTimeout(context.Background(), *shutdown)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "pipd: shutdown: %v\n", err)
		os.Exit(1)
	}
}

// loadDemo installs the paper's running example (orders x shipping).
func loadDemo(db *pip.DB) {
	for _, stmt := range server.DemoStatements {
		db.MustExec(stmt)
	}
}
