package pip

import (
	"context"
	"fmt"

	"pip/internal/ctable"
	"pip/internal/expr"
	"pip/internal/sql"
)

// Stmt is a prepared statement: parsed once by Prepare, executed many times
// with per-call placeholder bindings. A Stmt is immutable and safe for
// concurrent use by multiple goroutines.
type Stmt struct {
	db *DB
	p  *sql.Prepared
}

// Prepare parses a statement for repeated execution. ? placeholders bind
// positionally at Query/Exec time; parse failures wrap ErrParse and carry a
// *ParseError position.
func (db *DB) Prepare(query string) (*Stmt, error) {
	p, err := sql.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, p: p}, nil
}

// PrepareContext is Prepare honoring ctx cancellation (parsing is
// CPU-bound and quick, so the context is only checked, not plumbed).
func (db *DB) PrepareContext(ctx context.Context, query string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return db.Prepare(query)
}

// NumInput returns the number of ? placeholders the statement binds.
func (s *Stmt) NumInput() int { return s.p.NumInput() }

// Close releases the statement. Prepared statements hold no engine
// resources, so Close is a no-op provided for driver-style symmetry.
func (s *Stmt) Close() error { return nil }

// Query executes the statement and streams the result rows.
func (s *Stmt) Query(args ...any) (*Rows, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext executes the statement under ctx and streams the result
// rows. Cancellation or deadline expiry stops the parallel sampler at its
// next batch dispatch or round barrier and surfaces ctx.Err() from
// Rows.Err (or here, when cancelled before execution begins) — never a
// partial result.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	cur, err := s.p.QueryContext(ctx, s.db.core, vals...)
	if err != nil {
		return nil, err
	}
	return newRows(cur), nil
}

// QueryTable executes the statement and materializes the full result
// c-table — the Table-returning twin of Query for callers feeding the
// programmatic operators.
func (s *Stmt) QueryTable(args ...any) (*Table, error) {
	return s.QueryTableContext(context.Background(), args...)
}

// QueryTableContext is QueryTable under a request context.
func (s *Stmt) QueryTableContext(ctx context.Context, args ...any) (*Table, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return s.p.ExecContext(ctx, s.db.core, vals...)
}

// Exec executes the statement, discarding any result rows.
func (s *Stmt) Exec(args ...any) error {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext is Exec under a request context.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) error {
	_, err := s.QueryTableContext(ctx, args...)
	return err
}

// Explain compiles a SELECT through the query planner and returns the
// typed physical plan tree without executing it. query may be a bare
// SELECT or an EXPLAIN / EXPLAIN ANALYZE statement — under ANALYZE the
// query also executes (rows discarded) and every plan node carries its
// emitted row count and cumulative wall time:
//
//	plan, err := db.Explain(`EXPLAIN ANALYZE SELECT o.cust FROM orders o,
//	    shipping s WHERE o.shipto = s.dest`)
//	fmt.Println(plan) // indented operator tree with rows= / time=
func (db *DB) Explain(query string, args ...any) (*PlanNode, error) {
	return db.ExplainContext(context.Background(), query, args...)
}

// ExplainContext is Explain under a request context; under EXPLAIN ANALYZE
// a cancelled context aborts the measured execution.
func (db *DB) ExplainContext(ctx context.Context, query string, args ...any) (*PlanNode, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return sql.ExplainContext(ctx, db.core, query, vals...)
}

// QueryContext runs a statement under ctx with bound placeholder arguments,
// streaming the result rows. One-shot form of Prepare + Stmt.QueryContext.
func (db *DB) QueryContext(ctx context.Context, query string, args ...any) (*Rows, error) {
	st, err := db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return st.QueryContext(ctx, args...)
}

// QueryRows is QueryContext with a background context.
func (db *DB) QueryRows(query string, args ...any) (*Rows, error) {
	return db.QueryContext(context.Background(), query, args...)
}

// ExecContext runs a statement under ctx with bound placeholder arguments,
// discarding any result rows.
func (db *DB) ExecContext(ctx context.Context, query string, args ...any) error {
	st, err := db.Prepare(query)
	if err != nil {
		return err
	}
	return st.ExecContext(ctx, args...)
}

// bindArgs converts caller arguments to engine values.
func bindArgs(args []any) ([]ctable.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]ctable.Value, len(args))
	for i, a := range args {
		v, err := BindValue(a)
		if err != nil {
			return nil, fmt.Errorf("%w: argument %d: %w", ErrBind, i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// BindValue converts a Go value to an engine Value, as placeholder binding
// does: numerics, strings, bools, []byte (as string), an existing Value,
// a random Variable, or a symbolic Expr. nil binds NULL.
func BindValue(a any) (Value, error) {
	switch v := a.(type) {
	case nil:
		return ctable.Null(), nil
	case Value:
		return v, nil
	case float64:
		return ctable.Float(v), nil
	case float32:
		return ctable.Float(float64(v)), nil
	case int:
		return ctable.Int(int64(v)), nil
	case int64:
		return ctable.Int(v), nil
	case int32:
		return ctable.Int(int64(v)), nil
	case uint:
		return ctable.Int(int64(v)), nil
	case uint32:
		return ctable.Int(int64(v)), nil
	case string:
		return ctable.String_(v), nil
	case []byte:
		return ctable.String_(string(v)), nil
	case bool:
		return ctable.Bool(v), nil
	case *Variable:
		return ctable.Symbolic(expr.NewVar(v)), nil
	case Expr:
		return ctable.Symbolic(v), nil
	default:
		return Value{}, fmt.Errorf("unsupported bind type %T", a)
	}
}
