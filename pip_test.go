package pip

import (
	"math"
	"strings"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	db := Open(Options{})
	if db == nil || db.Core() == nil {
		t.Fatal("Open returned nil")
	}
	cfg := db.Core().Config()
	if cfg.Epsilon != 0.05 || cfg.Delta != 0.05 {
		t.Fatalf("default epsilon/delta: %v/%v", cfg.Epsilon, cfg.Delta)
	}
}

func TestOpenOverrides(t *testing.T) {
	db := Open(Options{Seed: 9, Epsilon: 0.01, Delta: 0.02, FixedSamples: 50, MaxSamples: 500})
	cfg := db.Core().Config()
	if cfg.WorldSeed != 9 || cfg.Epsilon != 0.01 || cfg.Delta != 0.02 ||
		cfg.FixedSamples != 50 || cfg.MaxSamples != 500 {
		t.Fatalf("overrides lost: %+v", cfg)
	}
}

func TestSQLRoundTrip(t *testing.T) {
	db := Open(Options{Seed: 5})
	db.MustExec("CREATE TABLE t (name, v)")
	db.MustExec("INSERT INTO t VALUES ('a', CREATE_VARIABLE('Normal', 3, 1))")
	res := db.MustQuery("SELECT expectation(v) FROM t")
	got, _ := res.Tuples[0].Values[0].AsFloat()
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("expectation %v", got)
	}
	if err := db.Exec("SELECT FROM nowhere"); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestProgrammaticAPI(t *testing.T) {
	db := Open(Options{Seed: 5})
	x := db.NormalVar(10, 2)
	u := db.UniformVar(0, 1)
	e := db.ExponentialVar(0.5)
	p := db.PoissonVar(3)
	for _, v := range []*Variable{x, u, e, p} {
		if v == nil {
			t.Fatal("variable constructor returned nil")
		}
	}
	r := db.Conf(LT(V(u), C(0.3)))
	if !r.Exact || math.Abs(r.Prob-0.3) > 1e-12 {
		t.Fatalf("conf %v", r.Prob)
	}
	r = db.Expectation(Add(Mul(C(2), V(x)), C(1)))
	if !r.Exact || r.Mean != 21 {
		t.Fatalf("E[2x+1] = %v exact=%v", r.Mean, r.Exact)
	}
}

func TestTableBuildingAndAggregates(t *testing.T) {
	db := Open(Options{Seed: 5})
	tb := db.NewTable("sales", "region", "amount")
	if err := db.Insert(tb, Str("east"), Float(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(tb, Str("west"), VarValue(db.NormalVar(20, 1))); err != nil {
		t.Fatal(err)
	}
	sum, err := db.ExpectedSum(tb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-30) > 1e-9 {
		t.Fatalf("sum %v", sum)
	}
	max, err := db.ExpectedMax(tb, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(max-20) > 0.5 {
		t.Fatalf("max %v", max)
	}
	hist, err := db.Histogram(tb, 1, 100)
	if err != nil || len(hist) != 100 {
		t.Fatalf("hist: %v len %d", err, len(hist))
	}
}

func TestMaterializeAndLookup(t *testing.T) {
	db := Open(Options{Seed: 5})
	tb := db.NewTable("src", "v")
	if err := db.Insert(tb, Float(1)); err != nil {
		t.Fatal(err)
	}
	db.Materialize("view1", tb)
	got, err := db.Table("view1")
	if err != nil || got.Len() != 1 {
		t.Fatalf("view: %v", err)
	}
}

func TestCreateVariableErrors(t *testing.T) {
	db := Open(Options{})
	if _, err := db.CreateVariable("bogus"); err == nil {
		t.Fatal("bogus distribution accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NormalVar with bad sigma did not panic")
		}
	}()
	db.NormalVar(0, -1)
}

func TestExprValueAndAtoms(t *testing.T) {
	db := Open(Options{Seed: 8})
	x := db.NormalVar(0, 1)
	atoms := []struct {
		name string
		r    Result
		want float64
	}{
		{"GE", db.Conf(GE(V(x), C(0))), 0.5},
		{"LE", db.Conf(LE(V(x), C(0))), 0.5},
		{"NEQ", db.Conf(NEQ(V(x), C(0))), 1},
	}
	for _, a := range atoms {
		if math.Abs(a.r.Prob-a.want) > 0.02 {
			t.Fatalf("%s: %v, want %v", a.name, a.r.Prob, a.want)
		}
	}
}

func TestDistributionsList(t *testing.T) {
	names := Distributions()
	if len(names) < 10 {
		t.Fatalf("too few distributions: %v", names)
	}
}

func TestDeterministicAcrossOpens(t *testing.T) {
	run := func() float64 {
		db := Open(Options{Seed: 123})
		x := db.NormalVar(0, 1)
		y := db.NormalVar(0, 1)
		r := db.Expectation(V(x), GT(Add(V(x), V(y)), C(1)))
		return r.Mean
	}
	if run() != run() {
		t.Fatal("results differ across identical runs")
	}
}

// TestExplainAPI drives the planner's public surface: DB.Explain returns
// the typed operator tree, EXPLAIN ANALYZE text carries execution
// counters, and the rendered tree nests operators by indentation.
func TestExplainAPI(t *testing.T) {
	db := Open(Options{Seed: 4})
	db.MustExec("CREATE TABLE o (cust, shipto, price)")
	db.MustExec("CREATE TABLE s (dest, duration)")
	db.MustExec("INSERT INTO o VALUES ('Joe', 'NY', 100), ('Bob', 'LA', 80)")
	db.MustExec("INSERT INTO s VALUES ('NY', 5), ('LA', 4)")

	plan, err := db.Explain("SELECT o.cust FROM o, s WHERE o.shipto = s.dest AND o.price > ?", 90)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op != "Project" || plan.Analyzed {
		t.Fatalf("root: %+v", plan)
	}
	text := plan.String()
	if !strings.Contains(text, "HashJoin") || !strings.Contains(text, "  Filter") {
		t.Fatalf("plan text:\n%s", text)
	}

	plan, err = db.Explain("EXPLAIN ANALYZE SELECT o.cust FROM o, s WHERE o.shipto = s.dest")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Analyzed || plan.Rows != 2 {
		t.Fatalf("analyze root: %+v", plan)
	}

	// The statement form flows through Rows like any query.
	rows, err := db.QueryRows("EXPLAIN SELECT cust FROM o WHERE 1 = 0")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) != 1 || cols[0] != "QUERY PLAN" {
		t.Fatalf("columns %v", cols)
	}
	var lines []string
	for rows.Next() {
		var l string
		if err := rows.Scan(&l); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "Result") || strings.Contains(joined, "Scan") {
		t.Fatalf("constant-false plan:\n%s", joined)
	}
}
