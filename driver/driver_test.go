package driver

import (
	"context"
	"database/sql"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"pip"
)

// TestRoundTrip is the acceptance path: sql.Open("pip", ...), DDL/DML
// through the pool, Prepare with ? args, typed scanning, and symbolic
// cells rendering as equation strings.
func TestRoundTrip(t *testing.T) {
	db, err := sql.Open("pip", "seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE orders (cust, price)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO orders VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for _, r := range []struct {
		cust  string
		price float64
	}{{"joe", 100}, {"bob", 80}, {"amy", 120}} {
		if _, err := ins.Exec(r.cust, r.price); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`INSERT INTO orders VALUES ('sym', CREATE_VARIABLE('Normal', 50, 5))`); err != nil {
		t.Fatal(err)
	}

	// Prepared SELECT with a bound comparison, executed twice. The symbolic
	// row survives any price filter as a conditional c-table row, so it is
	// always present; its price scans as an equation string via `any`.
	sel, err := db.Prepare(`SELECT cust, price FROM orders WHERE price >= ? ORDER BY cust`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	for bound, want := range map[float64]int{100: 3, 60: 4} {
		rows, err := sel.Query(bound)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			var cust string
			var price any
			if err := rows.Scan(&cust, &price); err != nil {
				t.Fatal(err)
			}
			if _, isStr := price.(string); isStr != (cust == "sym") {
				t.Fatalf("cust %q scanned price %T", cust, price)
			}
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if n != want {
			t.Fatalf("bound %v: %d rows, want %d", bound, n, want)
		}
	}

	// Aggregate through QueryRow.
	var total float64
	if err := db.QueryRow(`SELECT expected_sum(price) FROM orders WHERE price > 10`).Scan(&total); err != nil {
		t.Fatal(err)
	}
	if total < 340 || total > 360 {
		t.Fatalf("expected_sum %v (want ~350)", total)
	}

	// Symbolic cells scan as their equation string.
	var eq string
	if err := db.QueryRow(`SELECT price FROM orders WHERE cust = 'sym'`).Scan(&eq); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eq, "X") {
		t.Fatalf("symbolic cell scanned as %q (want an equation over X variables)", eq)
	}
}

// TestQueryRowContextCancelled is the acceptance criterion:
// QueryRowContext with a cancelled context returns ctx.Err().
func TestQueryRowContextCancelled(t *testing.T) {
	db, err := sql.Open("pip", "seed=2")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (v)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 0, 1))`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`SELECT expectation(v) FROM t WHERE v > ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out float64
	if err := st.QueryRowContext(ctx, 0.0).Scan(&out); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled QueryRowContext: %v", err)
	}
	// Deadline flavor.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if err := st.QueryRowContext(dctx, 0.0).Scan(&out); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired QueryRowContext: %v", err)
	}
	// And the statement still works afterwards.
	if err := st.QueryRowContext(context.Background(), -10.0).Scan(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out) > 1 {
		t.Fatalf("expectation after cancel: %v", out)
	}
}

// TestSharedAndPrivateDSNs: name= shares a database process-wide; an empty
// name gives each pool a private database.
func TestSharedAndPrivateDSNs(t *testing.T) {
	a, err := sql.Open("pip", "name=shared_test&seed=4")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := sql.Open("pip", "name=shared_test")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := sql.Open("pip", "seed=4")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := a.Exec(`CREATE TABLE shared (v)`); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(`INSERT INTO shared VALUES (1)`); err != nil {
		t.Fatalf("shared pool does not see DDL: %v", err)
	}
	if _, err := c.Exec(`INSERT INTO shared VALUES (1)`); err == nil {
		t.Fatal("private pool sees the shared table")
	}
}

// TestDriverErrors: DSN validation, typed engine errors through the
// database/sql plumbing, unsupported features.
func TestDriverErrors(t *testing.T) {
	if _, err := sql.Open("pip", "bogus=1"); err == nil {
		// sql.Open defers driver.Open for non-DriverContext drivers, but
		// OpenConnector runs eagerly, so the DSN error surfaces here.
		t.Fatal("unknown DSN key accepted")
	}
	// Option values get the same validation the SET statements enforce.
	for _, dsn := range []string{"epsilon=2", "delta=0", "workers=-1", "samples=-5", "max_samples=0", "seed=abc"} {
		if _, err := sql.Open("pip", dsn); err == nil {
			t.Fatalf("DSN %q accepted", dsn)
		}
	}
	db, err := sql.Open("pip", "")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`SELECT v FROM absent`); !errors.Is(err, pip.ErrUnknownTable) {
		t.Fatalf("unknown table through driver: %v", err)
	}
	if _, err := db.Exec(`SELEC`); !errors.Is(err, pip.ErrParse) {
		t.Fatalf("parse error through driver: %v", err)
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("transactions accepted")
	}
}

// TestExplainThroughDriver runs EXPLAIN over database/sql: the plan arrives
// as ordinary rows with a single QUERY PLAN string column, so any SQL
// tooling on the pool can inspect the planner.
func TestExplainThroughDriver(t *testing.T) {
	db, err := sql.Open("pip", "seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE l (k, lv)`)
	mustExec(`CREATE TABLE r (k, rv)`)
	mustExec(`INSERT INTO l VALUES (1, 10), (2, 20)`)
	mustExec(`INSERT INTO r VALUES (1, 'x'), (2, 'y')`)

	rows, err := db.Query(`EXPLAIN ANALYZE SELECT l.lv, r.rv FROM l, r WHERE l.k = r.k`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "QUERY PLAN" {
		t.Fatalf("columns %v", cols)
	}
	var plan []string
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		plan = append(plan, line)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	text := strings.Join(plan, "\n")
	if !strings.Contains(text, "HashJoin") || !strings.Contains(text, "rows=") {
		t.Fatalf("plan through driver:\n%s", text)
	}
}
