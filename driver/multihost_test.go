package driver

import (
	"bufio"
	"context"
	"database/sql"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"pip"
	"pip/internal/repl"
	"pip/internal/server"
	"pip/internal/wal"
)

func TestParseMultiHostDSN(t *testing.T) {
	hosts, settings, err := parseRemoteDSN("pip://p:7432,r1:7432,r2:7433?seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"p:7432", "r1:7432", "r2:7433"}; !reflect.DeepEqual(hosts, want) {
		t.Fatalf("hosts = %v, want %v", hosts, want)
	}
	if string(settings["seed"]) != "7" {
		t.Fatalf("settings = %v, want seed=7", settings)
	}

	// A replica without a port after a ported primary is legal (this shape
	// is why the host list is not parsed by net/url).
	hosts, _, err = parseRemoteDSN("pip://p:7432,replica")
	if err != nil || len(hosts) != 2 || hosts[1] != "replica" {
		t.Fatalf("mixed-port host list: hosts %v, err %v", hosts, err)
	}

	if _, _, err := parseRemoteDSN("pip://"); err == nil {
		t.Fatal("empty host list accepted")
	}
	if _, _, err := parseRemoteDSN("pip://a,b/path"); err == nil {
		t.Fatal("path in a multi-host DSN accepted")
	}
	if _, _, err := parseRemoteDSN("pip://a,b?bogus=1"); err == nil {
		t.Fatal("unknown key accepted in a multi-host DSN")
	}
}

func TestIsSetStmt(t *testing.T) {
	for q, want := range map[string]bool{
		"SET max_samples = 1":      true,
		"  set seed = 9":           true,
		"SET\tepsilon = 0.1":       true,
		"SELECT 1":                 false,
		"SETTINGS":                 false,
		"INSERT INTO t VALUES (1)": false,
		"set":                      false,
	} {
		if got := isSetStmt(q); got != want {
			t.Fatalf("isSetStmt(%q) = %v, want %v", q, got, want)
		}
	}
}

// replTopology boots a real primary/replica pair over HTTP and returns
// their addresses, the follower (for catch-up waits), and the two query
// servers' metrics URLs.
func replTopology(t *testing.T, seed uint64) (primAddr, replAddr string, f *repl.Follower) {
	t.Helper()
	pdb := pip.Open(pip.Options{Seed: seed})
	store, _, err := wal.Open(t.TempDir(), pdb.Core(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	prim := repl.NewPrimary(store, seed)
	prim.PingEvery = 20 * time.Millisecond
	psrv := server.New(server.Config{DB: pdb, WAL: store, Repl: prim})
	pts := httptest.NewServer(psrv.Handler())
	t.Cleanup(func() { pts.Close(); psrv.Close() })

	rdb := pip.Open(pip.Options{Seed: seed})
	f = repl.NewFollower(rdb.Core(), repl.FollowerOptions{
		Primary:          pts.URL,
		ReplicaID:        "r1",
		Seed:             seed,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})
	rsrv := server.New(server.Config{DB: rdb, Follower: f})
	rts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(func() { rts.Close(); rsrv.Close() })
	return pts.Listener.Addr().String(), rts.Listener.Addr().String(), f
}

// queriesTotal scrapes pip_queries_total from a server's /metrics.
func queriesTotal(t *testing.T, addr string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "pip_queries_total "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatal("pip_queries_total not found in exposition")
	return 0
}

// waitForSeq blocks until the replica applied through seq.
func waitForSeq(t *testing.T, f *repl.Follower, seq uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitForSeq(ctx, seq); err != nil {
		t.Fatalf("replica never reached seq %d: %v", seq, err)
	}
}

// TestMultiHostRouting drives a real replicated topology through a
// multi-host DSN: writes land on the primary, replicate, and reads are
// answered by the replica — proven by the replica's own query counter and
// by bit-identical results.
func TestMultiHostRouting(t *testing.T) {
	primAddr, replAddr, f := replTopology(t, 7)
	db, err := sql.Open("pip", "pip://"+primAddr+","+replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One connection keeps the primary/replica session pair stable across
	// statements, so counter accounting below is exact.
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE orders (cust, price)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10)), ('Ann', 55)`); err != nil {
		t.Fatal(err)
	}
	waitForSeq(t, f, 2)

	primBefore, replBefore := queriesTotal(t, primAddr), queriesTotal(t, replAddr)
	rows, err := db.Query(`SELECT cust, expectation(price) FROM orders ORDER BY cust`)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, rows)
	rows.Close()
	if len(got) != 2 {
		t.Fatalf("replica-served read returned %d rows, want 2", len(got))
	}
	if d := queriesTotal(t, replAddr) - replBefore; d < 1 {
		t.Fatalf("replica served %g queries during the read, want >= 1 (read not routed to replica)", d)
	}
	if d := queriesTotal(t, primAddr) - primBefore; d != 0 {
		t.Fatalf("primary served %g queries during the read, want 0 (read leaked to primary)", d)
	}

	// The replica's answer is the primary's answer, bit for bit.
	prows, err := db.Query(`SELECT expectation(price) FROM orders WHERE cust = 'Joe'`)
	if err != nil {
		t.Fatal(err)
	}
	replicaRows := scanAll(t, prows)
	prows.Close()
	pdbDirect, err := sql.Open("pip", "pip://"+primAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pdbDirect.Close()
	drows, err := pdbDirect.Query(`SELECT expectation(price) FROM orders WHERE cust = 'Joe'`)
	if err != nil {
		t.Fatal(err)
	}
	primaryRows := scanAll(t, drows)
	drows.Close()
	if !reflect.DeepEqual(replicaRows, primaryRows) {
		t.Fatalf("replica answer %v != primary answer %v", replicaRows, primaryRows)
	}
}

// TestMultiHostWriteThroughQueryFallsBack pins the misroute repair: a
// mutation issued through the Query path bounces off the replica's
// read-only guard and lands on the primary transparently.
func TestMultiHostWriteThroughQueryFallsBack(t *testing.T) {
	primAddr, replAddr, f := replTopology(t, 7)
	db, err := sql.Open("pip", "pip://"+primAddr+","+replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (v)`); err != nil {
		t.Fatal(err)
	}
	waitForSeq(t, f, 1)

	// database/sql's Query path; the statement mutates. The replica
	// rejects it with ErrReadOnly and the driver retries on the primary.
	rows, err := db.Query(`INSERT INTO t VALUES (42)`)
	if err != nil {
		t.Fatalf("mutation through Query on a replicated DSN: %v", err)
	}
	rows.Close()
	waitForSeq(t, f, 2)
	var v float64
	if err := db.QueryRow(`SELECT v FROM t`).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("fallback write read back %v, want 42", v)
	}
}

// TestMultiHostSetAppliesToBothSessions pins SET fan-out: session settings
// must be equal on the primary and replica halves of a connection, or the
// same logical query would sample differently depending on routing.
func TestMultiHostSetAppliesToBothSessions(t *testing.T) {
	primAddr, replAddr, f := replTopology(t, 7)
	db, err := sql.Open("pip", "pip://"+primAddr+","+replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)

	if _, err := db.Exec(`CREATE TABLE t (v)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 10, 1))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SET samples = 64`); err != nil {
		t.Fatal(err)
	}
	waitForSeq(t, f, 2)

	// The replica-routed query must sample under the SET; with a fixed
	// sample count the replica's answer equals the primary's fixed-count
	// answer bit-for-bit, which only holds if the SET reached the replica
	// session too.
	rows, err := db.Query(`SELECT expectation(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	viaReplica := scanAll(t, rows)
	rows.Close()

	direct, err := sql.Open("pip", "pip://"+primAddr+"?samples=64")
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	drows, err := direct.Query(`SELECT expectation(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	viaPrimary := scanAll(t, drows)
	drows.Close()
	if !reflect.DeepEqual(viaReplica, viaPrimary) {
		t.Fatalf("SET did not reach the replica session: replica %v, primary-with-setting %v", viaReplica, viaPrimary)
	}
}

// TestSingleHostDSNStillPrimaryOnly guards the degenerate case: one host
// means one session, no read routing, exactly the old behavior.
func TestSingleHostDSNStillPrimaryOnly(t *testing.T) {
	addr := bootServer(t, 7)
	db, err := sql.Open("pip", "pip://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (v)`); err != nil {
		t.Fatal(err)
	}
	var n float64
	if _, err := db.Exec(`INSERT INTO t VALUES (3)`); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow(`SELECT v FROM t`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("read back %v, want 3", n)
	}
}

// TestReplicaOnlyWriteSurfacesTypedError ensures that without a fallback
// target (replica listed as the only host) the typed error reaches the
// caller through database/sql.
func TestReplicaOnlyWriteSurfacesTypedError(t *testing.T) {
	_, replAddr, _ := replTopology(t, 7)
	db, err := sql.Open("pip", "pip://"+replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = db.Exec(`CREATE TABLE t (v)`)
	if !errors.Is(err, pip.ErrReadOnly) {
		t.Fatalf("write to a replica-only DSN: got %v, want ErrReadOnly", err)
	}
}

// Keep math imported for the float-bit helpers shared with remote_test.
var _ = math.Float64bits
