package driver

import (
	"context"
	"database/sql"
	"reflect"
	"testing"

	"pip"
)

// TestShowStatsSchemaAcrossSurfaces asserts SHOW STATS returns the same
// (scope, name, value) schema and the same engine-scope row names on every
// query surface: the native API, the in-process database/sql driver, and
// the pip:// remote driver. The values differ per engine instance — the
// contract is the shape.
func TestShowStatsSchemaAcrossSurfaces(t *testing.T) {
	wantCols := []string{"scope", "name", "value"}

	// Surface 1: native API.
	native := pip.Open(pip.Options{Seed: 3})
	nRows, err := native.QueryContext(context.Background(), "SHOW STATS")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nRows.Columns(), wantCols) {
		t.Fatalf("native columns %v, want %v", nRows.Columns(), wantCols)
	}
	var nativeNames []string
	for nRows.Next() {
		v := nRows.Values()
		if v[0].S == "engine" {
			nativeNames = append(nativeNames, v[1].S)
		}
	}
	nRows.Close()

	engineNames := func(t *testing.T, db *sql.DB) []string {
		t.Helper()
		rows, err := db.Query("SHOW STATS")
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		cols, err := rows.Columns()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cols, wantCols) {
			t.Fatalf("columns %v, want %v", cols, wantCols)
		}
		var names []string
		for rows.Next() {
			var scope, name string
			var value float64
			if err := rows.Scan(&scope, &name, &value); err != nil {
				t.Fatal(err)
			}
			if scope == "engine" {
				names = append(names, name)
			}
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return names
	}

	// Surface 2: in-process database/sql driver.
	local, err := sql.Open("pip", "seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	localNames := engineNames(t, local)

	// Surface 3: remote database/sql driver over the wire protocol.
	addr := bootServer(t, 3)
	remote, err := sql.Open("pip", "pip://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	remoteNames := engineNames(t, remote)

	if len(nativeNames) == 0 {
		t.Fatal("native surface returned no engine rows")
	}
	if !reflect.DeepEqual(localNames, nativeNames) {
		t.Fatalf("local driver engine rows %v != native %v", localNames, nativeNames)
	}
	if !reflect.DeepEqual(remoteNames, nativeNames) {
		t.Fatalf("remote driver engine rows %v != native %v", remoteNames, nativeNames)
	}
}
