package driver

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pip"
	"pip/internal/server"
)

// bootServer starts a pipd-equivalent server over a fresh seeded database
// and returns its host:port.
func bootServer(t testing.TB, seed uint64) string {
	t.Helper()
	db := pip.Open(pip.Options{Seed: seed})
	srv := server.New(server.Config{DB: db})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.Listener.Addr().String()
}

// scanAll drains a database/sql result into comparable rows; float64
// cells are rendered through their exact bit pattern so a one-ULP
// divergence fails the comparison.
func scanAll(t *testing.T, rows *sql.Rows) [][]string {
	t.Helper()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]string
	for rows.Next() {
		dest := make([]any, len(cols))
		for i := range dest {
			dest[i] = new(any)
		}
		if err := rows.Scan(dest...); err != nil {
			t.Fatal(err)
		}
		row := make([]string, len(cols))
		for i, d := range dest {
			switch v := (*d.(*any)).(type) {
			case float64:
				row[i] = fmt.Sprintf("f:%x", math.Float64bits(v))
			case nil:
				row[i] = "null"
			default:
				row[i] = fmt.Sprintf("%T:%v", v, v)
			}
		}
		out = append(out, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRemoteDriverBitIdentity executes the same seeded statements through
// an in-process DSN and a pip:// DSN and asserts database/sql delivers
// bit-identical values either way — the determinism contract at the
// outermost public surface.
func TestRemoteDriverBitIdentity(t *testing.T) {
	setup := []string{
		`CREATE TABLE orders (cust, shipto, price)`,
		`CREATE TABLE shipping (dest, duration)`,
		`INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))`,
		`INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))`,
		`INSERT INTO shipping VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))`,
		`INSERT INTO shipping VALUES ('LA', CREATE_VARIABLE('Normal', 4, 1))`,
	}
	queries := []string{
		`SELECT cust, price FROM orders WHERE price > 95`,
		`SELECT cust, expectation(price) e, conf() c FROM orders WHERE price > 90`,
		`SELECT expected_sum(o.price) FROM orders o, shipping s WHERE o.shipto = s.dest AND s.duration >= 7`,
		`SELECT shipto, expected_count() n FROM orders GROUP BY shipto`,
		`SELECT cust FROM orders ORDER BY cust LIMIT 1`,
	}

	local, err := sql.Open("pip", "seed=5")
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	addr := bootServer(t, 5)
	remote, err := sql.Open("pip", "pip://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	for _, db := range []*sql.DB{local, remote} {
		for _, s := range setup {
			if _, err := db.Exec(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, q := range queries {
		lr, err := local.Query(q)
		if err != nil {
			t.Fatalf("local %q: %v", q, err)
		}
		want := scanAll(t, lr)
		lr.Close()
		rr, err := remote.Query(q)
		if err != nil {
			t.Fatalf("remote %q: %v", q, err)
		}
		got := scanAll(t, rr)
		rr.Close()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q:\nlocal  %v\nremote %v", q, want, got)
		}
	}
}

// TestRemoteDriverPreparedAndErrors covers the prepared path, typed
// errors and transaction rejection over a pip:// DSN.
func TestRemoteDriverPreparedAndErrors(t *testing.T) {
	addr := bootServer(t, 9)
	db, err := sql.Open("pip", "pip://"+addr+"?samples=512")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE t (cust, v)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO t VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ins.Exec(fmt.Sprint("c", i), float64(i)*10); err != nil {
			t.Fatal(err)
		}
	}
	ins.Close()

	sel, err := db.Prepare(`SELECT cust FROM t WHERE v >= ? ORDER BY cust`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	var got []string
	rows, err := sel.Query(10.0)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		var c string
		if err := rows.Scan(&c); err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if strings.Join(got, ",") != "c1,c2" {
		t.Fatalf("prepared remote query returned %v", got)
	}

	if _, err := db.Exec(`SELEC`); !errors.Is(err, pip.ErrParse) {
		t.Errorf("remote parse error = %v, want ErrParse", err)
	}
	if _, err := db.Query(`SELECT x FROM absent`); !errors.Is(err, pip.ErrUnknownTable) {
		t.Errorf("remote unknown table = %v, want ErrUnknownTable", err)
	}
	if _, err := db.Begin(); err == nil {
		t.Error("remote transactions accepted")
	}
}

// TestRemoteDriverCancellation: a context that expires mid-query surfaces
// as a context error through database/sql, and the connection remains
// usable afterwards.
func TestRemoteDriverCancellation(t *testing.T) {
	addr := bootServer(t, 3)
	db, err := sql.Open("pip", "pip://"+addr+"?samples=200000000")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1) // one session: the later SET must see the same one

	if _, err := db.Exec(`CREATE TABLE t (v)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 0, 1))`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var out float64
	err = db.QueryRowContext(ctx, `SELECT expectation(v) FROM t WHERE v > 0`).Scan(&out)
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled remote query = %v, want a context error", err)
	}

	// The pool recovers: drop to a sane sample count and query again.
	if _, err := db.Exec(`SET samples = 512`); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow(`SELECT expectation(v) FROM t WHERE v > -100`).Scan(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out) > 1 {
		t.Fatalf("expectation after cancel = %v", out)
	}
}

// TestRemoteDriverSessionRecovery: when the server's idle sweep (or a
// restart) forgets a pooled connection's session, the driver maps the
// failure to driver.ErrBadConn so database/sql transparently retries on a
// fresh connection — the pool never stays poisoned.
func TestRemoteDriverSessionRecovery(t *testing.T) {
	base := pip.Open(pip.Options{Seed: 2})
	srv := server.New(server.Config{DB: base, SessionIdle: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	db, err := sql.Open("pip", "pip://"+ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)
	db.SetConnMaxIdleTime(0) // keep the idle connection pooled forever

	if _, err := db.Exec(`CREATE TABLE t (x)`); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has swept the session behind the pooled
	// connection, then use the pool again: the first attempt fails with
	// ErrBadConn internally and database/sql must recover on a fresh
	// session without surfacing an error.
	deadline := time.Now().Add(10 * time.Second)
	for srv := srv; ; {
		if n := srvSessionCount(srv); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never swept the idle session")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatalf("pool did not recover from a swept session: %v", err)
	}
}

// srvSessionCount peeks at the server's live session count.
func srvSessionCount(s *server.Server) int { return s.SessionCount() }

// TestRemoteDSNValidation pins the pip:// DSN grammar errors.
func TestRemoteDSNValidation(t *testing.T) {
	for _, dsn := range []string{
		"pip://",                        // no host
		"pip://host:1/extra",            // path
		"pip://host:1?bogus=1",          // unknown key
		"pip://host:1?name=x",           // in-process-only key
		"pip://host:1?seed=1;workers=2", // malformed query
		"pip://host:1?workers=abc",      // non-numeric value
		"pip://host:1?seed=",            // empty value
	} {
		if _, err := sql.Open("pip", dsn); err == nil {
			t.Errorf("DSN %q accepted", dsn)
		}
	}
}
