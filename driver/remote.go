package driver

import (
	"context"
	"database/sql/driver"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pip"
	"pip/internal/server"
)

// remoteScheme prefixes DSNs that route through the wire protocol to a
// pipd server instead of an in-process engine.
const remoteScheme = "pip://"

// isRemoteDSN reports whether the DSN names a network server.
func isRemoteDSN(dsn string) bool { return strings.HasPrefix(dsn, remoteScheme) }

// parseRemoteDSN splits pip://host:port[,host:port...]?key=value&... into
// the server addresses — the first is the primary, any further hosts are
// read replicas — and the session settings forwarded at connection time.
// Keys are the SQL SET names (seed, workers, epsilon, delta, samples,
// max_samples, min_samples); values are validated by the server with the
// same bounds as SET.
//
// The host list is split by hand rather than url.Parse because net/url
// rejects comma-separated authorities whose last element lacks a port.
func parseRemoteDSN(dsn string) (hosts []string, settings map[string]json.Number, err error) {
	rest := strings.TrimPrefix(dsn, remoteScheme)
	hostPart, rawQuery, _ := strings.Cut(rest, "?")
	hostPart = strings.TrimSuffix(hostPart, "/")
	if strings.ContainsAny(hostPart, "/#") {
		return nil, nil, fmt.Errorf("pip driver: remote DSN %q must not carry a path", dsn)
	}
	for _, h := range strings.Split(hostPart, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		return nil, nil, fmt.Errorf("pip driver: remote DSN %q has no host:port", dsn)
	}
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, nil, fmt.Errorf("pip driver: malformed remote DSN query %q: %w", rawQuery, err)
	}
	settings = map[string]json.Number{}
	for k, vs := range q {
		switch k {
		case "seed", "workers", "epsilon", "delta", "samples", "max_samples", "min_samples":
			v := vs[len(vs)-1]
			// Syntactic check up front so a bad value is a clear DSN error
			// at sql.Open time; range validation stays server-side with
			// the same bounds as SET.
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return nil, nil, fmt.Errorf("pip driver: invalid remote DSN value %q for %s (want a number)", v, k)
			}
			settings[k] = json.Number(v)
		case "name":
			return nil, nil, fmt.Errorf("pip driver: DSN key %q is for in-process databases (a server is already shared by name: its address)", k)
		default:
			return nil, nil, fmt.Errorf("pip driver: unknown remote DSN key %q", k)
		}
	}
	return hosts, settings, nil
}

// remoteConnector implements driver.Connector against a pipd topology:
// every pooled connection opens its own server-side session on the primary
// (and, in a multi-host DSN, a second one on a replica chosen round-robin),
// so per-session state (SET settings, prepared statements) is
// per-connection, while the catalog behind all sessions is shared — DDL on
// one pooled connection is visible to every other, exactly like the
// in-process backend.
type remoteConnector struct {
	d        *Driver
	primary  *server.Client
	replicas []*server.Client
	next     atomic.Uint64
	settings map[string]json.Number
}

// Connect implements driver.Connector by creating a server session on the
// primary and, when the DSN names replicas, a read session on the next
// replica in round-robin order. A replica that cannot be reached degrades
// the connection to primary-only reads rather than failing it: replicas
// scale reads out, they are not required for correctness (every replica
// answer is bit-identical to the primary's at equal log positions anyway).
func (c *remoteConnector) Connect(ctx context.Context) (driver.Conn, error) {
	sess, err := c.primary.Session(ctx, c.settings)
	if err != nil {
		return nil, fmt.Errorf("pip driver: connect: %w", err)
	}
	conn := &remoteConn{sess: sess}
	if len(c.replicas) > 0 {
		rc := c.replicas[int(c.next.Add(1)-1)%len(c.replicas)]
		if rsess, rerr := rc.Session(ctx, c.settings); rerr == nil {
			conn.read = rsess
		}
	}
	return conn, nil
}

// Driver implements driver.Connector.
func (c *remoteConnector) Driver() driver.Driver { return c.d }

// remoteConn is one pooled connection: a live session on the primary and,
// in a replicated topology, a second session on one replica that serves
// this connection's reads.
type remoteConn struct {
	sess *server.ClientSession // primary: writes, and reads when read == nil
	read *server.ClientSession // replica read session (nil = single host)
}

// readSession returns the session that serves this connection's queries.
func (c *remoteConn) readSession() *server.ClientSession {
	if c.read != nil {
		return c.read
	}
	return c.sess
}

// isSetStmt reports whether query is a SET statement. SET is session-local
// state, so a replicated connection must run it on both of its sessions for
// later reads (replica) and writes (primary) to see the same settings.
func isSetStmt(query string) bool {
	q := strings.TrimSpace(query)
	if len(q) < 4 || !strings.EqualFold(q[:3], "SET") {
		return false
	}
	switch q[3] {
	case ' ', '\t', '\n', '\r':
		return true
	}
	return false
}

// mapSessionErr converts a lost-session failure (expired by the server's
// idle sweep, or a server restart) into driver.ErrBadConn, so
// database/sql discards this pooled connection and retries the statement
// on a fresh one — which opens a fresh server session — instead of
// failing every future statement on a permanently poisoned connection.
func mapSessionErr(err error) error {
	if errors.Is(err, server.ErrSessionUnknown) {
		return driver.ErrBadConn
	}
	return err
}

// Close implements driver.Conn by releasing the server-side sessions (the
// pool calls this without a context, so the release is time-bounded).
func (c *remoteConn) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var rerr error
	if c.read != nil {
		rerr = c.read.Close(ctx)
	}
	if err := c.sess.Close(ctx); err != nil {
		return err
	}
	return rerr
}

// Begin implements driver.Conn. Transactions are not supported.
func (c *remoteConn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("pip driver: transactions are not supported")
}

// Prepare implements driver.Conn.
func (c *remoteConn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext: the statement is
// parsed and cached server-side — on both sessions of a replicated
// connection, so later Query calls run it on the replica and Exec calls on
// the primary without re-preparing.
func (c *remoteConn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	st, err := c.sess.Prepare(ctx, query)
	if err != nil {
		return nil, mapSessionErr(err)
	}
	rs := &remoteStmt{st: st, query: query}
	if c.read != nil {
		rst, rerr := c.read.Prepare(ctx, query)
		if rerr != nil {
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			st.Close(cctx)
			cancel()
			return nil, mapSessionErr(rerr)
		}
		rs.rst = rst
	}
	return rs, nil
}

// QueryContext implements driver.QueryerContext (direct, unprepared
// queries) over one wire round trip, routed to this connection's read
// session. A mutation issued through Query on a replica comes back
// ErrReadOnly and is retried on the primary, so misrouted writes still
// land correctly.
func (c *remoteConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	rows, err := c.readSession().Query(ctx, query, bound...)
	if err != nil && c.read != nil && errors.Is(err, pip.ErrReadOnly) {
		rows, err = c.sess.Query(ctx, query, bound...)
	}
	if err != nil {
		return nil, mapSessionErr(err)
	}
	return &remoteRows{rows: rows}, nil
}

// ExecContext implements driver.ExecerContext (direct, unprepared
// statements), routed to the primary. SET additionally runs on the read
// session: session settings are local to each session, and this
// connection's reads must sample under the same settings as its writes.
func (c *remoteConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	if _, err := c.sess.Exec(ctx, query, bound...); err != nil {
		return nil, mapSessionErr(err)
	}
	if c.read != nil && isSetStmt(query) {
		if _, err := c.read.Exec(ctx, query, bound...); err != nil {
			return nil, mapSessionErr(err)
		}
	}
	return driver.ResultNoRows, nil
}

// remoteStmt implements driver.Stmt over a server-side prepared statement —
// two of them on a replicated connection (primary for Exec, replica for
// Query), prepared together and routed like unprepared statements.
type remoteStmt struct {
	st    *server.ClientStmt // on the primary session
	rst   *server.ClientStmt // on the replica read session (nil = single host)
	query string
}

// Close implements driver.Stmt.
func (s *remoteStmt) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var rerr error
	if s.rst != nil {
		rerr = s.rst.Close(ctx)
	}
	if err := s.st.Close(ctx); err != nil {
		return err
	}
	return rerr
}

// NumInput implements driver.Stmt.
func (s *remoteStmt) NumInput() int { return s.st.NumInput() }

// Exec implements driver.Stmt.
func (s *remoteStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

// ExecContext implements driver.StmtExecContext on the primary-session
// statement; a prepared SET runs on both sessions like an unprepared one.
func (s *remoteStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	if _, err := s.st.Exec(ctx, bound...); err != nil {
		return nil, mapSessionErr(err)
	}
	if s.rst != nil && isSetStmt(s.query) {
		if _, err := s.rst.Exec(ctx, bound...); err != nil {
			return nil, mapSessionErr(err)
		}
	}
	return driver.ResultNoRows, nil
}

// Query implements driver.Stmt.
func (s *remoteStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

// QueryContext implements driver.StmtQueryContext on the replica-session
// statement when one exists, falling back to the primary if the replica
// rejects a mutation issued through Query.
func (s *remoteStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	qst := s.st
	if s.rst != nil {
		qst = s.rst
	}
	rows, err := qst.Query(ctx, bound...)
	if err != nil && s.rst != nil && errors.Is(err, pip.ErrReadOnly) {
		rows, err = s.st.Query(ctx, bound...)
	}
	if err != nil {
		return nil, mapSessionErr(err)
	}
	return &remoteRows{rows: rows}, nil
}

// remoteRows implements driver.Rows by consuming the NDJSON row stream
// incrementally — a remote result set costs the same per-row memory as a
// local one.
type remoteRows struct {
	rows *server.ClientRows
}

// Columns implements driver.Rows.
func (r *remoteRows) Columns() []string { return r.rows.Columns() }

// Close implements driver.Rows; closing mid-stream cancels the
// server-side query.
func (r *remoteRows) Close() error { return r.rows.Close() }

// Next implements driver.Rows: deterministic cells convert to their
// driver.Value type, symbolic cells to their equation string — the same
// mapping as the in-process backend, bit-identical under equal seeds.
func (r *remoteRows) Next(dest []driver.Value) error {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.rows.Row()
	if len(dest) != len(row) {
		return fmt.Errorf("pip driver: %d destinations for %d columns", len(dest), len(row))
	}
	for i, v := range row {
		n, err := v.Native()
		if err != nil {
			return err
		}
		dest[i] = n
	}
	return nil
}
