package driver

import (
	"context"
	"database/sql/driver"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"time"

	"pip/internal/server"
)

// remoteScheme prefixes DSNs that route through the wire protocol to a
// pipd server instead of an in-process engine.
const remoteScheme = "pip://"

// isRemoteDSN reports whether the DSN names a network server.
func isRemoteDSN(dsn string) bool { return strings.HasPrefix(dsn, remoteScheme) }

// parseRemoteDSN splits pip://host:port?key=value&... into the server
// address and the session settings forwarded at connection time. Keys are
// the SQL SET names (seed, workers, epsilon, delta, samples, max_samples,
// min_samples); values are validated by the server with the same bounds as
// SET.
func parseRemoteDSN(dsn string) (addr string, settings map[string]json.Number, err error) {
	u, err := url.Parse(dsn)
	if err != nil {
		return "", nil, fmt.Errorf("pip driver: malformed remote DSN %q: %w", dsn, err)
	}
	if u.Host == "" {
		return "", nil, fmt.Errorf("pip driver: remote DSN %q has no host:port", dsn)
	}
	if u.Path != "" && u.Path != "/" {
		return "", nil, fmt.Errorf("pip driver: remote DSN %q must not carry a path", dsn)
	}
	q, err := url.ParseQuery(u.RawQuery)
	if err != nil {
		return "", nil, fmt.Errorf("pip driver: malformed remote DSN query %q: %w", u.RawQuery, err)
	}
	settings = map[string]json.Number{}
	for k, vs := range q {
		switch k {
		case "seed", "workers", "epsilon", "delta", "samples", "max_samples", "min_samples":
			v := vs[len(vs)-1]
			// Syntactic check up front so a bad value is a clear DSN error
			// at sql.Open time; range validation stays server-side with
			// the same bounds as SET.
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				return "", nil, fmt.Errorf("pip driver: invalid remote DSN value %q for %s (want a number)", v, k)
			}
			settings[k] = json.Number(v)
		case "name":
			return "", nil, fmt.Errorf("pip driver: DSN key %q is for in-process databases (a server is already shared by name: its address)", k)
		default:
			return "", nil, fmt.Errorf("pip driver: unknown remote DSN key %q", k)
		}
	}
	return u.Host, settings, nil
}

// remoteConnector implements driver.Connector against a pipd server: every
// pooled connection opens its own server-side session, so per-session
// state (SET settings, prepared statements) is per-connection, while the
// catalog behind all sessions is shared — DDL on one pooled connection is
// visible to every other, exactly like the in-process backend.
type remoteConnector struct {
	d        *Driver
	client   *server.Client
	settings map[string]json.Number
}

// Connect implements driver.Connector by creating a server session.
func (c *remoteConnector) Connect(ctx context.Context) (driver.Conn, error) {
	sess, err := c.client.Session(ctx, c.settings)
	if err != nil {
		return nil, fmt.Errorf("pip driver: connect: %w", err)
	}
	return &remoteConn{sess: sess}, nil
}

// Driver implements driver.Connector.
func (c *remoteConnector) Driver() driver.Driver { return c.d }

// remoteConn is one pooled connection: a live server-side session.
type remoteConn struct {
	sess *server.ClientSession
}

// mapSessionErr converts a lost-session failure (expired by the server's
// idle sweep, or a server restart) into driver.ErrBadConn, so
// database/sql discards this pooled connection and retries the statement
// on a fresh one — which opens a fresh server session — instead of
// failing every future statement on a permanently poisoned connection.
func mapSessionErr(err error) error {
	if errors.Is(err, server.ErrSessionUnknown) {
		return driver.ErrBadConn
	}
	return err
}

// Close implements driver.Conn by releasing the server-side session (the
// pool calls this without a context, so the release is time-bounded).
func (c *remoteConn) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return c.sess.Close(ctx)
}

// Begin implements driver.Conn. Transactions are not supported.
func (c *remoteConn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("pip driver: transactions are not supported")
}

// Prepare implements driver.Conn.
func (c *remoteConn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext: the statement is
// parsed and cached server-side.
func (c *remoteConn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	st, err := c.sess.Prepare(ctx, query)
	if err != nil {
		return nil, mapSessionErr(err)
	}
	return &remoteStmt{st: st}, nil
}

// QueryContext implements driver.QueryerContext (direct, unprepared
// queries) over one wire round trip.
func (c *remoteConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	rows, err := c.sess.Query(ctx, query, bound...)
	if err != nil {
		return nil, mapSessionErr(err)
	}
	return &remoteRows{rows: rows}, nil
}

// ExecContext implements driver.ExecerContext (direct, unprepared
// statements).
func (c *remoteConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	if _, err := c.sess.Exec(ctx, query, bound...); err != nil {
		return nil, mapSessionErr(err)
	}
	return driver.ResultNoRows, nil
}

// remoteStmt implements driver.Stmt over a server-side prepared statement.
type remoteStmt struct {
	st *server.ClientStmt
}

// Close implements driver.Stmt.
func (s *remoteStmt) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.st.Close(ctx)
}

// NumInput implements driver.Stmt.
func (s *remoteStmt) NumInput() int { return s.st.NumInput() }

// Exec implements driver.Stmt.
func (s *remoteStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

// ExecContext implements driver.StmtExecContext.
func (s *remoteStmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	if _, err := s.st.Exec(ctx, bound...); err != nil {
		return nil, mapSessionErr(err)
	}
	return driver.ResultNoRows, nil
}

// Query implements driver.Stmt.
func (s *remoteStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *remoteStmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	rows, err := s.st.Query(ctx, bound...)
	if err != nil {
		return nil, mapSessionErr(err)
	}
	return &remoteRows{rows: rows}, nil
}

// remoteRows implements driver.Rows by consuming the NDJSON row stream
// incrementally — a remote result set costs the same per-row memory as a
// local one.
type remoteRows struct {
	rows *server.ClientRows
}

// Columns implements driver.Rows.
func (r *remoteRows) Columns() []string { return r.rows.Columns() }

// Close implements driver.Rows; closing mid-stream cancels the
// server-side query.
func (r *remoteRows) Close() error { return r.rows.Close() }

// Next implements driver.Rows: deterministic cells convert to their
// driver.Value type, symbolic cells to their equation string — the same
// mapping as the in-process backend, bit-identical under equal seeds.
func (r *remoteRows) Next(dest []driver.Value) error {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.rows.Row()
	if len(dest) != len(row) {
		return fmt.Errorf("pip driver: %d destinations for %d columns", len(dest), len(row))
	}
	for i, v := range row {
		n, err := v.Native()
		if err != nil {
			return err
		}
		dest[i] = n
	}
	return nil
}
