// Package driver embeds PIP into the standard library's database/sql
// machinery: importing it (for side effects) registers a driver named
// "pip", so the probabilistic engine is usable through the idioms Go
// services already build on — connection pools, prepared statements with ?
// placeholders, and context-aware querying:
//
//	import (
//		"database/sql"
//		_ "pip/driver"
//	)
//
//	db, _ := sql.Open("pip", "seed=1")
//	db.Exec(`CREATE TABLE orders (cust, price)`)
//	st, _ := db.Prepare(`SELECT cust FROM orders WHERE price > ?`)
//	rows, _ := st.QueryContext(ctx, 95)
//
// # Data source names
//
// The driver has two backends, selected by the DSN.
//
// An **in-process** DSN is a &-separated key=value list. An empty DSN
// opens a fresh in-memory database private to that sql.DB pool. Keys:
//
//	name        share one in-memory database between every sql.Open with
//	            the same name (process-wide), like SQLite's shared cache
//	seed        world seed (uint); equal seeds give bit-identical results
//	workers     parallel sampler goroutines (0 = one per CPU)
//	epsilon     confidence parameter in (0, 1)
//	delta       relative-error parameter in (0, 1)
//	samples     fixed sample count (disables adaptive stopping)
//	max_samples adaptive sampling cap
//
// Every connection of a pool shares the same underlying pip.DB, so DDL
// executed on one pooled connection is visible to all others.
//
// A **remote** DSN of the form
//
//	pip://host:port[?seed=N&workers=N&epsilon=F&delta=F&samples=N&max_samples=N&min_samples=N]
//
// routes every statement through the pipd wire protocol (internal/server).
// Each pooled connection opens its own server-side session, created with
// the DSN's settings: SET statements and prepared statements are
// per-connection, while the catalog is shared by every session of the
// server — DDL on one connection (or one client process) is visible to
// all. The determinism contract crosses the wire intact: equal seeds give
// bit-identical results whether the DSN is in-process or remote.
//
// A remote DSN may name a **replicated topology** by listing hosts:
//
//	pip://primary:7432,replica1:7432,replica2:7432
//
// The first host is the primary; the rest are read replicas (pipd -follow).
// Each pooled connection then holds a session on the primary and a session
// on one replica, chosen round-robin, and routes statements by kind: Query
// runs on the replica, Exec on the primary, SET on both (settings are
// session-local). A mutation issued through Query bounces off the replica's
// read-only guard and is transparently retried on the primary. Because
// replicas are bit-identical to the primary at equal log positions, routing
// changes where a query runs, never what it answers — though a read may
// observe a write slightly late if the replica has not applied it yet
// (replication is asynchronous).
//
// # Value mapping
//
// Deterministic cells scan as float64, int64, string and bool. Symbolic
// cells — random-variable equations — have no driver.Value representation,
// so they scan as their equation string (e.g. "x1 + 5"); apply expectation
// operators in SQL (expectation(col), expected_sum(col)) to obtain
// numbers, or use the native pip API for symbolic results. Transactions
// are not supported.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"pip"
	"pip/internal/ctable"
	"pip/internal/server"
)

func init() {
	sql.Register("pip", Default)
}

// Default is the Driver instance registered under the name "pip". It owns
// the process-wide registry of name=... shared databases.
var Default = &Driver{shared: map[string]*pip.DB{}}

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct {
	mu     sync.Mutex
	shared map[string]*pip.DB
}

// Open implements driver.Driver.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector implements driver.DriverContext, dispatching on the DSN:
// pip://host:port DSNs return a remote connector speaking the pipd wire
// protocol (each pooled connection opens its own server session), any
// other DSN is parsed once as in-process options and every connection of
// the pool shares one pip.DB.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	if isRemoteDSN(dsn) {
		hosts, settings, err := parseRemoteDSN(dsn)
		if err != nil {
			return nil, err
		}
		rc := &remoteConnector{d: d, primary: server.NewClient(hosts[0]), settings: settings}
		for _, h := range hosts[1:] {
			rc.replicas = append(rc.replicas, server.NewClient(h))
		}
		return rc, nil
	}
	name, opts, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	var db *pip.DB
	if name == "" {
		db = pip.Open(opts)
	} else {
		d.mu.Lock()
		db = d.shared[name]
		if db == nil {
			db = pip.Open(opts)
			d.shared[name] = db
		}
		d.mu.Unlock()
	}
	return &Connector{d: d, db: db}, nil
}

// parseDSN parses the &-separated key=value data source name.
func parseDSN(dsn string) (name string, opts pip.Options, err error) {
	for _, kv := range strings.Split(dsn, "&") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", opts, fmt.Errorf("pip driver: malformed DSN entry %q (want key=value)", kv)
		}
		bad := func(e error) error {
			return fmt.Errorf("pip driver: invalid DSN value %q for %s (%w)", v, k, e)
		}
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "name":
			name = v
		case "seed":
			n, e := strconv.ParseUint(v, 10, 64)
			if e != nil {
				return "", opts, bad(e)
			}
			opts.Seed = n
		case "workers":
			n, e := strconv.Atoi(v)
			if e != nil || n < 0 {
				return "", opts, bad(fmt.Errorf("want a non-negative integer (0 = one per CPU)"))
			}
			opts.Workers = n
		case "epsilon":
			f, e := strconv.ParseFloat(v, 64)
			if e != nil || f <= 0 || f >= 1 {
				return "", opts, bad(fmt.Errorf("want a float in (0, 1)"))
			}
			opts.Epsilon = f
		case "delta":
			f, e := strconv.ParseFloat(v, 64)
			if e != nil || f <= 0 || f >= 1 {
				return "", opts, bad(fmt.Errorf("want a float in (0, 1)"))
			}
			opts.Delta = f
		case "samples":
			n, e := strconv.Atoi(v)
			if e != nil || n < 0 {
				return "", opts, bad(fmt.Errorf("want a non-negative integer (0 = adaptive)"))
			}
			opts.FixedSamples = n
		case "max_samples":
			n, e := strconv.Atoi(v)
			if e != nil || n < 1 {
				return "", opts, bad(fmt.Errorf("want a positive integer"))
			}
			opts.MaxSamples = n
		default:
			return "", opts, fmt.Errorf("pip driver: unknown DSN key %q", k)
		}
	}
	return name, opts, nil
}

// Connector implements driver.Connector over a shared pip.DB.
type Connector struct {
	d  *Driver
	db *pip.DB
}

// Connect implements driver.Connector.
func (c *Connector) Connect(context.Context) (driver.Conn, error) {
	return &Conn{db: c.db}, nil
}

// Driver implements driver.Connector.
func (c *Connector) Driver() driver.Driver { return c.d }

// DB returns the underlying pip database, escaping to the native API
// (symbolic results, programmatic operators) from a database/sql pool.
func (c *Connector) DB() *pip.DB { return c.db }

// Conn implements driver.Conn; every pooled connection shares the
// connector's database.
type Conn struct {
	db *pip.DB
}

// Prepare implements driver.Conn.
func (c *Conn) Prepare(query string) (driver.Stmt, error) {
	st, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{st: st}, nil
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *Conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Prepare(query)
}

// Close implements driver.Conn. The underlying database is shared with the
// pool, so closing a connection releases nothing.
func (c *Conn) Close() error { return nil }

// Begin implements driver.Conn. Transactions are not supported.
func (c *Conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("pip driver: transactions are not supported")
}

// QueryContext implements driver.QueryerContext (direct, unprepared
// queries).
func (c *Conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	st, err := c.db.PrepareContext(ctx, query)
	if err != nil {
		return nil, err
	}
	return stmtQuery(ctx, st, args)
}

// ExecContext implements driver.ExecerContext (direct, unprepared
// statements).
func (c *Conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	st, err := c.db.PrepareContext(ctx, query)
	if err != nil {
		return nil, err
	}
	return stmtExec(ctx, st, args)
}

// Stmt implements driver.Stmt over a native prepared statement.
type Stmt struct {
	st *pip.Stmt
}

// Close implements driver.Stmt.
func (s *Stmt) Close() error { return s.st.Close() }

// NumInput implements driver.Stmt.
func (s *Stmt) NumInput() int { return s.st.NumInput() }

// Exec implements driver.Stmt.
func (s *Stmt) Exec(args []driver.Value) (driver.Result, error) {
	return stmtExec(context.Background(), s.st, namedValues(args))
}

// ExecContext implements driver.StmtExecContext.
func (s *Stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return stmtExec(ctx, s.st, args)
}

// Query implements driver.Stmt.
func (s *Stmt) Query(args []driver.Value) (driver.Rows, error) {
	return stmtQuery(context.Background(), s.st, namedValues(args))
}

// QueryContext implements driver.StmtQueryContext.
func (s *Stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return stmtQuery(ctx, s.st, args)
}

// namedValues adapts positional driver.Values to NamedValues.
func namedValues(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, a := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}

// bindNamed converts driver argument values to engine bind arguments.
func bindNamed(args []driver.NamedValue) ([]any, error) {
	out := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("pip driver: named parameter %q not supported (use ? placeholders)", a.Name)
		}
		switch v := a.Value.(type) {
		case int64, float64, bool, string, []byte, nil:
			out[i] = v
		default:
			return nil, fmt.Errorf("pip driver: unsupported argument type %T", a.Value)
		}
	}
	return out, nil
}

func stmtExec(ctx context.Context, st *pip.Stmt, args []driver.NamedValue) (driver.Result, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	if err := st.ExecContext(ctx, bound...); err != nil {
		return nil, err
	}
	return driver.ResultNoRows, nil
}

func stmtQuery(ctx context.Context, st *pip.Stmt, args []driver.NamedValue) (driver.Rows, error) {
	bound, err := bindNamed(args)
	if err != nil {
		return nil, err
	}
	rows, err := st.QueryContext(ctx, bound...)
	if err != nil {
		return nil, err
	}
	return &Rows{rows: rows}, nil
}

// Rows implements driver.Rows by streaming a native pip.Rows.
type Rows struct {
	rows *pip.Rows
}

// Columns implements driver.Rows.
func (r *Rows) Columns() []string { return r.rows.Columns() }

// Close implements driver.Rows.
func (r *Rows) Close() error { return r.rows.Close() }

// Next implements driver.Rows: deterministic cells convert to their
// driver.Value type, symbolic cells to their equation string.
func (r *Rows) Next(dest []driver.Value) error {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	vals := r.rows.Values()
	if len(dest) != len(vals) {
		return fmt.Errorf("pip driver: %d destinations for %d columns", len(dest), len(vals))
	}
	for i, v := range vals {
		dest[i] = driverValue(v)
	}
	return nil
}

// driverValue maps one engine cell to a driver.Value.
func driverValue(v pip.Value) driver.Value {
	switch v.Kind {
	case ctable.KindFloat:
		return v.F
	case ctable.KindInt:
		return v.I
	case ctable.KindString:
		return v.S
	case ctable.KindBool:
		return v.B
	case ctable.KindExpr:
		return v.E.String()
	default:
		return nil
	}
}
