// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus ablations of the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Fig. 5/6 benches time the full query pair (PIP vs Sample-First at
// accuracy-matched sample counts); Fig. 7 benches time one RMS trial;
// Fig. 8 benches time the exact-CDF and sampled iceberg queries. The
// pipbench command prints the corresponding series (values, errors,
// ratios); these benches expose the same work to Go's benchmarking
// harness for timing/allocation tracking.
package pip

import (
	"context"
	"fmt"
	"testing"

	"pip/internal/bench"
	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/iceberg"
	"pip/internal/sampler"
	"pip/internal/sql"
	"pip/internal/tpch"
)

// benchScale keeps benchmark iterations fast while preserving the
// engine-vs-engine work ratio.
func benchScale() tpch.Scale { return tpch.SmallScale() }

const benchSamples = 200

// ---------------------------------------------------------------------------
// Fig. 5: Q4 at varying selectivity, Sample-First scaled by 1/selectivity.

func benchmarkFig5(b *testing.B, selectivity float64, pip bool) {
	data := tpch.Generate(benchScale(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pip {
			_, err = bench.Q4PIP(data, selectivity, benchSamples, uint64(i))
		} else {
			worlds := int(float64(benchSamples) / selectivity)
			_, err = bench.Q4SF(data, selectivity, worlds, uint64(i))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PIPSel25(b *testing.B)  { benchmarkFig5(b, 0.25, true) }
func BenchmarkFig5PIPSel05(b *testing.B)  { benchmarkFig5(b, 0.05, true) }
func BenchmarkFig5PIPSel01(b *testing.B)  { benchmarkFig5(b, 0.01, true) }
func BenchmarkFig5PIPSel005(b *testing.B) { benchmarkFig5(b, 0.005, true) }
func BenchmarkFig5SFSel25(b *testing.B)   { benchmarkFig5(b, 0.25, false) }
func BenchmarkFig5SFSel05(b *testing.B)   { benchmarkFig5(b, 0.05, false) }
func BenchmarkFig5SFSel01(b *testing.B)   { benchmarkFig5(b, 0.01, false) }
func BenchmarkFig5SFSel005(b *testing.B)  { benchmarkFig5(b, 0.005, false) }

// ---------------------------------------------------------------------------
// Fig. 6: Q1–Q4 on both engines at accuracy-matched budgets.

func BenchmarkFig6Q1PIP(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q1PIP(data, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q1SF(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q1SF(data, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q2PIP(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q2PIP(data, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q2SF(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q2SF(data, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q3PIP(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q3PIP(data, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q3SF(b *testing.B) {
	// Selectivity ~0.1: Sample-First runs at 10x the worlds to match.
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q3SF(data, benchSamples*10, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q4PIP(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q4PIP(data, 0.005, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Q4SF(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q4SF(data, 0.005, benchSamples*10, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 7: one RMS trial per iteration (200 samples, 20 parts).

func BenchmarkFig7aPIPTrial(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	parts := data.Parts[:20]
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q4PIPValues(parts, 0.005, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aSFTrial(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	parts := data.Parts[:20]
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q4SFValues(parts, 0.005, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bPIPTrial(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	parts := data.Parts[:20]
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q5PIPValues(parts, 0.05, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bSFTrial(b *testing.B) {
	data := tpch.Generate(benchScale(), 1)
	parts := data.Parts[:20]
	for i := 0; i < b.N; i++ {
		if _, err := bench.Q5SFValues(parts, 0.05, benchSamples, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 8: iceberg threat, exact CDF vs world sampling.

func BenchmarkFig8PIPExact(b *testing.B) {
	opt := bench.QuickOptions()
	data := iceberg.Generate(opt.Fig8Bergs, 1, opt.Seed)
	ship := data.Ships[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = iceberg.ExactThreat(data, ship)
	}
}

func BenchmarkFig8Experiment(b *testing.B) {
	opt := bench.QuickOptions()
	opt.Fig8Ships = 3
	opt.Fig8Bergs = 100
	opt.Fig8Worlds = 500
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md): each pair isolates one design choice.

func ablationSampler(mod func(*sampler.Config)) *sampler.Sampler {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 99
	cfg.FixedSamples = benchSamples
	if mod != nil {
		mod(&cfg)
	}
	return sampler.New(cfg)
}

var ablationVarID uint64 = 1

func ablationVar(class dist.Class, params ...float64) *expr.Variable {
	ablationVarID++
	return &expr.Variable{Key: expr.VarKey{ID: ablationVarID}, Dist: dist.MustInstance(class, params...)}
}

// BenchmarkAblationCDFvsRejection: a selective single-variable constraint
// (P ~ 0.0013) with and without inverse-CDF constrained sampling.
func BenchmarkAblationCDFOn(b *testing.B) {
	s := ablationSampler(nil)
	y := ablationVar(dist.Normal{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(3))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(y), c, false)
	}
}

func BenchmarkAblationCDFOffRejection(b *testing.B) {
	s := ablationSampler(func(c *sampler.Config) {
		c.DisableCDFInversion = true
		c.DisableMetropolis = true
	})
	y := ablationVar(dist.Normal{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(3))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(y), c, false)
	}
}

// BenchmarkAblationIndependence: expectation of X under a constraint on an
// unrelated selective Y; partitioning samples X unconditionally while the
// merged group rejects on Y for every X draw.
func BenchmarkAblationIndependenceOn(b *testing.B) {
	s := ablationSampler(func(c *sampler.Config) { c.DisableCDFInversion = true; c.DisableMetropolis = true })
	x := ablationVar(dist.Normal{}, 10, 1)
	y := ablationVar(dist.Normal{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(2))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(x), c, false)
	}
}

func BenchmarkAblationIndependenceOff(b *testing.B) {
	s := ablationSampler(func(c *sampler.Config) {
		c.DisableIndependence = true
		c.DisableCDFInversion = true
		c.DisableMetropolis = true
	})
	x := ablationVar(dist.Normal{}, 10, 1)
	y := ablationVar(dist.Normal{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(2))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(x), c, false)
	}
}

// BenchmarkAblationMetropolis: a deep-tail two-variable constraint where
// rejection alone is hopeless; with Metropolis disabled the sampler burns
// the rejection cap and gives up.
func BenchmarkAblationMetropolisOn(b *testing.B) {
	s := ablationSampler(func(c *sampler.Config) {
		c.FixedSamples = 50
		c.RejectionCap = 20000
	})
	y1 := ablationVar(dist.Normal{}, 0, 1)
	y2 := ablationVar(dist.Normal{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.Add(expr.NewVar(y1), expr.NewVar(y2)), cond.GT, expr.Const(6))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(y1), c, false)
	}
}

func BenchmarkAblationMetropolisOff(b *testing.B) {
	s := ablationSampler(func(c *sampler.Config) {
		c.FixedSamples = 50
		c.RejectionCap = 20000
		c.DisableMetropolis = true
	})
	y1 := ablationVar(dist.Normal{}, 0, 1)
	y2 := ablationVar(dist.Normal{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.Add(expr.NewVar(y1), expr.NewVar(y2)), cond.GT, expr.Const(6))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(y1), c, false)
	}
}

// BenchmarkAblationMax: sorted early-terminating expected_max vs the naive
// per-world evaluation on a 200-row table.
func ablationMaxTable(rows int) (*core.DB, *ctable.Table) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 7
	cfg.FixedSamples = benchSamples
	db := core.NewDB(cfg)
	tb := ctable.New("t", "v")
	for i := 0; i < rows; i++ {
		u := db.NewVariableFromInstance(dist.MustInstance(dist.Uniform{}, 0, 1), "u")
		tup := ctable.NewTuple(ctable.Float(float64(rows - i)))
		tup.Cond = cond.FromClause(cond.Clause{
			cond.NewAtom(expr.NewVar(u), cond.LT, expr.Const(0.5)),
		})
		tb.MustAppend(tup)
	}
	return db, tb
}

func BenchmarkAblationMaxSorted(b *testing.B) {
	db, tb := ablationMaxTable(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Sampler().ExpectedMax(tb, 0, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMaxNaive(b *testing.B) {
	db, tb := ablationMaxTable(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Sampler().ExpectedMaxNaive(tb, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptive: (epsilon, delta) adaptive stopping vs a fixed
// 1000-sample budget on an easy expectation — adaptive stops far earlier at
// the same accuracy target.
func BenchmarkAblationAdaptiveStopping(b *testing.B) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 99
	s := sampler.New(cfg)
	y := ablationVar(dist.Uniform{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(0.5))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(y), c, false)
	}
}

func BenchmarkAblationFixed1000(b *testing.B) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 99
	cfg.FixedSamples = 1000
	s := sampler.New(cfg)
	y := ablationVar(dist.Uniform{}, 0, 1)
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(0.5))}
	for i := 0; i < b.N; i++ {
		_ = s.Expectation(expr.NewVar(y), c, false)
	}
}

// ---------------------------------------------------------------------------
// Query planner: 3-table equi-join, hash join vs the nested-loop odometer.
//
// The planner extracts r.a = s.a / s.b = t.b into hash joins; with hash
// joins (and the other rewrite rules) disabled via planner hints, the same
// query runs as the pre-planner filtered cross product. Deterministic
// values keep the sampler out of the loop, so the pair isolates the join
// path itself.

const join3Rows = 48

func join3DB() *DB {
	db := Open(Options{Seed: 5})
	db.MustExec("CREATE TABLE jr (a, ra)")
	db.MustExec("CREATE TABLE js (a, b, sb)")
	db.MustExec("CREATE TABLE jt (b, tc)")
	for i := 0; i < join3Rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO jr VALUES (%d, %d)", i, i*2))
		db.MustExec(fmt.Sprintf("INSERT INTO js VALUES (%d, %d, %d)", i, i+1000, i*3))
		db.MustExec(fmt.Sprintf("INSERT INTO jt VALUES (%d, %d)", i+1000, i*5))
	}
	return db
}

const join3Query = `SELECT jr.ra, js.sb, jt.tc FROM jr, js, jt
	WHERE jr.a = js.a AND js.b = jt.b`

func benchmarkJoin3(b *testing.B, hints sql.Hints) {
	db := join3DB()
	ctx := sql.WithHints(context.Background(), hints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.QueryContext(ctx, join3Query)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
		if n != join3Rows {
			b.Fatalf("join produced %d rows, want %d", n, join3Rows)
		}
	}
}

func BenchmarkJoin3HashJoin(b *testing.B) { benchmarkJoin3(b, sql.Hints{}) }

func BenchmarkJoin3NestedLoop(b *testing.B) {
	benchmarkJoin3(b, sql.Hints{NoFold: true, NoPushdown: true, NoHashJoin: true, NoPrune: true})
}

// ---------------------------------------------------------------------------
// Example 4.4 micro-bench: the early-termination table from the paper.

func BenchmarkExample44ExpectedMax(b *testing.B) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 3
	db := core.NewDB(cfg)
	tb := ctable.New("R", "A")
	add := func(v, p float64) {
		u := db.NewVariableFromInstance(dist.MustInstance(dist.Uniform{}, 0, 1), "u")
		tup := ctable.NewTuple(ctable.Float(v))
		tup.Cond = cond.FromClause(cond.Clause{
			cond.NewAtom(expr.NewVar(u), cond.LT, expr.Const(p)),
		})
		tb.MustAppend(tup)
	}
	add(5, 0.7)
	add(4, 0.8)
	add(1, 0.3)
	add(0, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Sampler().ExpectedMax(tb, 0, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
