package pip

import (
	"math"
	"strings"
	"testing"
)

// TestRowsScan is the typed-scan matrix: every destination type against
// every cell kind, successes and rejections.
func TestRowsScan(t *testing.T) {
	db := Open(Options{Seed: 11})
	// The engine parses INSERT numeric literals as floats; bind an int64 to
	// get a KindInt cell into the matrix.
	db.MustExec("CREATE TABLE t (f, i, s, e)")
	db.MustExec("INSERT INTO t VALUES (?, ?, ?, CREATE_VARIABLE('Normal', 3, 1))",
		2.5, int64(42), "hi")

	open := func() *Rows {
		rows, err := db.QueryRows("SELECT f, i, s, e FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("no row: %v", rows.Err())
		}
		return rows
	}

	t.Run("matching-types", func(t *testing.T) {
		rows := open()
		defer rows.Close()
		var f float64
		var i int64
		var s string
		var e Expr
		if err := rows.Scan(&f, &i, &s, &e); err != nil {
			t.Fatal(err)
		}
		if f != 2.5 || i != 42 || s != "hi" || e == nil {
			t.Fatalf("scanned %v %v %q %v", f, i, s, e)
		}
	})

	t.Run("any-and-value", func(t *testing.T) {
		rows := open()
		defer rows.Close()
		var a, b, c, d any
		if err := rows.Scan(&a, &b, &c, &d); err != nil {
			t.Fatal(err)
		}
		if a.(float64) != 2.5 || b.(int64) != 42 || c.(string) != "hi" {
			t.Fatalf("any scan: %v %v %v", a, b, c)
		}
		if _, ok := d.(Expr); !ok {
			t.Fatalf("symbolic any scan: %T", d)
		}
		rows2 := open()
		defer rows2.Close()
		var vals [4]Value
		if err := rows2.Scan(&vals[0], &vals[1], &vals[2], &vals[3]); err != nil {
			t.Fatal(err)
		}
		if !vals[3].IsSymbolic() {
			t.Fatalf("raw value scan: %v", vals[3])
		}
	})

	t.Run("numeric-coercions", func(t *testing.T) {
		rows := open()
		defer rows.Close()
		// int cell into *float64; integral float cell would coerce to int64
		// (f = 2.5 does not).
		var f float64
		var skip any
		if err := rows.Scan(&skip, &f, &skip, &skip); err != nil {
			t.Fatal(err)
		}
		if f != 42 {
			t.Fatalf("int into float64: %v", f)
		}
		rows2 := open()
		defer rows2.Close()
		var i int64
		if err := rows2.Scan(&i, &skip, &skip, &skip); err == nil {
			t.Fatal("non-integral float scanned into *int64")
		}
	})

	t.Run("rejections", func(t *testing.T) {
		rows := open()
		defer rows.Close()
		var skip any
		var f float64
		err := rows.Scan(&skip, &skip, &skip, &f)
		if err == nil || !strings.Contains(err.Error(), "symbolic") {
			t.Fatalf("symbolic into *float64: %v", err)
		}
		var s string
		if err := rows.Scan(&s, &skip, &skip, &skip); err == nil {
			t.Fatal("float scanned into *string")
		}
		var b bool
		if err := rows.Scan(&b, &skip, &skip, &skip); err == nil {
			t.Fatal("float scanned into *bool")
		}
		if err := rows.Scan(&skip, &skip, &skip); err == nil {
			t.Fatal("arity mismatch accepted")
		}
		var unsupported struct{}
		if err := rows.Scan(&unsupported, &skip, &skip, &skip); err == nil {
			t.Fatal("unsupported destination accepted")
		}
	})
}

// TestRowsIteration covers Columns, Cond, Err and Close behavior over a
// multi-row streaming result.
func TestRowsIteration(t *testing.T) {
	db := Open(Options{Seed: 3})
	db.MustExec("CREATE TABLE t (name, v)")
	db.MustExec("INSERT INTO t VALUES ('a', 1), ('b', CREATE_VARIABLE('Normal', 0, 1))")

	rows, err := db.QueryRows("SELECT name FROM t WHERE v > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Columns(); len(got) != 1 || got[0] != "name" {
		t.Fatalf("columns %v", got)
	}
	var names []string
	symbolic := 0
	for rows.Next() {
		var n string
		if err := rows.Scan(&n); err != nil {
			t.Fatal(err)
		}
		if !rows.Cond().IsTrue() {
			symbolic++
		}
		names = append(names, n)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// 'a' passes deterministically; 'b' survives with the symbolic
	// condition v > 0.5 attached.
	if len(names) != 2 || symbolic != 1 {
		t.Fatalf("names %v, symbolic %d", names, symbolic)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next after Close")
	}
}

// TestStmtPrepareBindMany exercises the public prepared-statement surface
// with mixed Go argument types.
func TestStmtPrepareBindMany(t *testing.T) {
	db := Open(Options{Seed: 2})
	db.MustExec("CREATE TABLE t (name, v)")
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	if ins.NumInput() != 2 {
		t.Fatalf("NumInput %d", ins.NumInput())
	}
	for i, name := range []string{"a", "b", "c"} {
		if err := ins.Exec(name, i+1); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := db.Prepare("SELECT name FROM t WHERE v >= ?")
	if err != nil {
		t.Fatal(err)
	}
	count := func(bound any) int {
		rows, err := sel.Query(bound)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(2); got != 2 {
		t.Fatalf("v >= 2: %d rows", got)
	}
	if got := count(2.5); got != 1 {
		t.Fatalf("v >= 2.5: %d rows", got)
	}
	if _, err := sel.Query("x", "y"); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := sel.Query(struct{}{}); err == nil {
		t.Fatal("unsupported bind type accepted")
	}
}

// TestQueryExpectationViaRows streams a per-row expectation and checks the
// value, proving row functions run on the streaming path.
func TestQueryExpectationViaRows(t *testing.T) {
	db := Open(Options{Seed: 5})
	db.MustExec("CREATE TABLE t (v)")
	db.MustExec("INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 3, 1))")
	rows, err := db.QueryRows("SELECT expectation(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var got float64
	if err := rows.Scan(&got); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("expectation %v", got)
	}
}
