package pip

import (
	"pip/internal/core"
	"pip/internal/sql"
)

// Typed errors of the query path. The sentinels are wrapped with %w by the
// engine, so errors.Is matches them through any amount of annotation, and
// parse failures additionally carry a position via *ParseError (errors.As).
var (
	// ErrParse matches every lexical/syntactic failure. The concrete error
	// is a *ParseError with line:column position and the source line.
	ErrParse = sql.ErrParse
	// ErrUnknownTable matches lookups of tables absent from the catalog.
	ErrUnknownTable = core.ErrUnknownTable
	// ErrUnknownColumn matches references to columns absent from the FROM
	// tables (targets, WHERE operands, GROUP BY / ORDER BY keys).
	ErrUnknownColumn = sql.ErrUnknownColumn
	// ErrBind matches placeholder-binding failures: wrong argument arity,
	// unsupported argument type, or executing a statement containing ?
	// placeholders without binding arguments.
	ErrBind = sql.ErrBind
	// ErrReadOnly matches mutations attempted on a read-only replica. The
	// wrapped message names the primary (pip://host:port) that accepts
	// writes; SET remains allowed because session settings are local.
	ErrReadOnly = core.ErrReadOnly
)

// ParseError is the concrete parse failure: position (1-based line and
// rune column), message, and the source text for caret rendering. Retrieve
// it with errors.As.
type ParseError = sql.ParseError
