module pip

go 1.24
