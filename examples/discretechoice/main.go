// Discrete choice: the repair-key operator (paper §V-A, footnote 2).
//
// PIP handles discrete uncertainty through MayBMS-style repair-key: a
// deterministic table of weighted alternatives becomes a probabilistic
// table in which each key group chooses exactly one of its rows, with
// probability proportional to the weight. Rows of a group are mutually
// exclusive and exhaustive, which is exactly the block-independent-disjoint
// structure from which relational algebra can build any finite distribution.
//
// The scenario: a logistics planner weighs routing options per shipment,
// each option carrying a cost model with continuous uncertainty — discrete
// and continuous variables mix freely in one query.
//
//	go run ./examples/discretechoice
package main

import (
	"fmt"

	"pip"
	"pip/internal/ctable"
)

func main() {
	db := pip.Open(pip.Options{Seed: 99})

	// Deterministic alternatives: (shipment, route, weight).
	options := db.NewTable("options", "shipment", "route", "weight")
	must(db.Insert(options, pip.Str("S1"), pip.Str("air"), pip.Float(3))) // 75%
	must(db.Insert(options, pip.Str("S1"), pip.Str("sea"), pip.Float(1))) // 25%
	must(db.Insert(options, pip.Str("S2"), pip.Str("rail"), pip.Float(1)))
	must(db.Insert(options, pip.Str("S2"), pip.Str("road"), pip.Float(1)))

	// repair-key: per shipment, exactly one route is chosen.
	chosen, err := db.Core().RepairKey(options, []int{0}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("after repair-key (each row conditioned on a Categorical choice):")
	fmt.Print(chosen)

	// Attach continuous cost models per route — discrete choice times
	// continuous cost in one c-table.
	costs := map[string]*pip.Variable{
		"air":  db.NormalVar(900, 120),
		"sea":  db.NormalVar(300, 90),
		"rail": db.NormalVar(450, 60),
		"road": db.NormalVar(520, 150),
	}
	withCost := ctable.New("planned", "shipment", "route", "cost")
	for _, tup := range chosen.Tuples {
		route := tup.Values[1].S
		t := ctable.NewTuple(tup.Values[0], tup.Values[1], pip.VarValue(costs[route]))
		t.Cond = tup.Cond
		withCost.MustAppend(t)
	}

	// Per-row confidences are exact (Categorical point masses).
	fmt.Println("\nroute probabilities and conditional expected costs:")
	for i := range withCost.Tuples {
		tup := &withCost.Tuples[i]
		conf := db.Core().Conf(tup)
		er, err := db.Core().Expectation(tup, 2, false)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %s via %-4s  P = %.2f  E[cost | chosen] = %7.2f\n",
			tup.Values[0].S, tup.Values[1].S, conf.Prob, er.Mean)
	}

	// Expected total cost: sum over rows of P[chosen] * E[cost].
	total, err := db.ExpectedSum(withCost, 2)
	if err != nil {
		panic(err)
	}
	// Closed form: S1: .75*900 + .25*300 = 750; S2: .5*450 + .5*520 = 485.
	fmt.Printf("\nexpected total shipping cost: %.2f (closed form 1235.00)\n", total)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
