// Risk management: the paper's running example (§1.1, §2.1, §3.1).
//
// A company stores expected customer orders with uncertain prices and a
// model of shipping durations per destination. The product is free if not
// delivered within seven days; the query asks for the expected loss due to
// late deliveries to customers named Joe.
//
// The example shows why deferred sampling matters: the relational part of
// the query determines that only the NY shipping duration (X2) is relevant,
// that the price (X1) is independent of it, and that P[X2 >= 7] has a
// closed form via the Normal CDF — so the expectation needs no wasted
// samples at all.
//
//	go run ./examples/riskmanagement
package main

import (
	"fmt"
	"math"

	"pip"
)

func main() {
	db := pip.Open(pip.Options{Seed: 7})

	db.MustExec(`CREATE TABLE orders (cust, shipto, price)`)
	db.MustExec(`CREATE TABLE shipping (dest, duration)`)
	// X1..X4 of the paper's example c-tables.
	db.MustExec(`INSERT INTO orders VALUES
		('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10)),
		('Bob', 'LA', CREATE_VARIABLE('Normal',  80,  5))`)
	db.MustExec(`INSERT INTO shipping VALUES
		('NY', CREATE_VARIABLE('Normal', 5, 2)),
		('LA', CREATE_VARIABLE('Normal', 4, 1))`)

	// The paper's query, verbatim semantics:
	//   select expected_sum(O.Price) from Order O, Shipping S
	//   where O.ShipTo = S.Dest and O.Cust = 'Joe' and S.Duration >= 7;
	res := db.MustQuery(`
		SELECT expected_sum(o.price) AS expected_loss
		FROM orders o, shipping s
		WHERE o.shipto = s.dest AND o.cust = 'Joe' AND s.duration >= 7`)
	loss, _ := res.Tuples[0].Values[0].AsFloat()

	// Closed form for comparison: E[X1] * P[X2 >= 7], since price and
	// duration are independent and the join fixed X2 as the only relevant
	// duration variable.
	pLate := 1 - 0.5*math.Erfc(-(7.0-5)/(2*math.Sqrt2))
	fmt.Printf("expected loss from late deliveries to Joe: %.2f\n", loss)
	fmt.Printf("closed form E[X1]*P[X2>=7]               : %.2f\n", 100*pLate)

	// The symbolic intermediate (before the expectation) is the c-table
	// {| (X1, X2 >= 7) |} of Example 3.1 — inspectable and materializable.
	sym := db.MustQuery(`
		SELECT o.price
		FROM orders o, shipping s
		WHERE o.shipto = s.dest AND o.cust = 'Joe' AND s.duration >= 7`)
	fmt.Println("\nsymbolic result c-table (Example 3.1):")
	fmt.Print(sym)

	// Materialized views of symbolic results are lossless: downstream
	// expectations are unbiased, and more samples can be drawn later
	// without re-running the query.
	db.Materialize("joe_at_risk", sym)
	view, _ := db.Table("joe_at_risk")
	hist, err := db.Histogram(view, 0, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n5 per-world samples of the loss (0 = delivered on time): %v\n", rounded(hist))
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Round(x*100) / 100
	}
	return out
}
