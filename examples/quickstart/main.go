// Quickstart: create a probabilistic table, query it with ordinary SQL, and
// read off expectations and confidences.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pip"
)

func main() {
	db := pip.Open(pip.Options{Seed: 42})

	// Uncertain data is declared with CREATE_VARIABLE: the value is a
	// random variable, stored symbolically, not a sample.
	db.MustExec(`CREATE TABLE forecasts (city, temp)`)
	db.MustExec(`INSERT INTO forecasts VALUES
		('Ithaca',   CREATE_VARIABLE('Normal', 12, 4)),
		('Phoenix',  CREATE_VARIABLE('Normal', 33, 3)),
		('Helsinki', CREATE_VARIABLE('Normal',  4, 5))`)

	// Deterministic queries work untouched; probabilistic comparisons
	// become row conditions instead of filtering (the c-tables model).
	fmt.Println("Cities that might freeze (temp < 0), with probability:")
	res := db.MustQuery(`SELECT city, conf() AS p_freeze FROM forecasts WHERE temp < 0`)
	fmt.Print(res)

	// Expectations of arbitrary arithmetic over the random variables.
	fmt.Println("\nExpected temperatures in Fahrenheit:")
	res = db.MustQuery(`SELECT city, expectation(temp * 9 / 5 + 32) AS f FROM forecasts`)
	fmt.Print(res)

	// Aggregates: expected_sum, expected_avg, expected_max, expected_count.
	fmt.Println("\nExpected maximum temperature across cities:")
	res = db.MustQuery(`SELECT expected_max(temp) AS hottest FROM forecasts`)
	fmt.Print(res)

	// The programmatic API exposes the same machinery directly.
	x := db.NormalVar(100, 15)
	r := db.Expectation(pip.V(x), pip.GT(pip.V(x), pip.C(130)))
	fmt.Printf("\nE[X | X > 130] = %.1f with P[X > 130] = %.4f (IQ > 130)\n", r.Mean, r.Prob)
}
