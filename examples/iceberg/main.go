// Iceberg threat assessment: the Fig. 8 scenario as an application.
//
// Each iceberg's present position is modelled as a Normal distribution
// around its last sighting (uncertainty growing with age), with an
// exponentially decaying danger level. A ship asks: what is the total
// threat from icebergs with a non-negligible (>0.1%) chance of being
// nearby?
//
// Because "nearby" is a conjunction of interval constraints on Normal
// variables, PIP's expectation operator integrates each probability
// *exactly* with four CDF evaluations — no sampling. A sample-first engine
// must generate thousands of position samples per iceberg and still
// carries multi-percent error (the paper measured 6-28% at 10k samples).
//
//	go run ./examples/iceberg
package main

import (
	"fmt"
	"math"

	"pip"
	"pip/internal/iceberg"
)

func main() {
	db := pip.Open(pip.Options{Seed: 2026})
	data := iceberg.Generate(500, 1, 2026)
	ship := data.Ships[0]

	fmt.Printf("ship at (%.2f, %.2f), %d iceberg sightings over 4 years\n\n",
		ship.Lat, ship.Lon, len(data.Sightings))

	totalThreat := 0.0
	threats := 0
	for _, s := range data.Sightings {
		std := s.PositionStd()
		lat := db.NormalVar(s.Lat, std)
		lon := db.NormalVar(s.Lon, std)

		// P[iceberg inside the proximity box] via PIP's exact CDF path.
		r := db.Conf(
			pip.GT(pip.V(lat), pip.C(ship.Lat-iceberg.ProximityRadius)),
			pip.LT(pip.V(lat), pip.C(ship.Lat+iceberg.ProximityRadius)),
			pip.GT(pip.V(lon), pip.C(ship.Lon-iceberg.ProximityRadius)),
			pip.LT(pip.V(lon), pip.C(ship.Lon+iceberg.ProximityRadius)),
		)
		if !r.Exact {
			panic("expected exact CDF integration")
		}
		if r.Prob > iceberg.DangerThreshold {
			threats++
			totalThreat += s.Danger() * r.Prob
		}
	}

	want := iceberg.ExactThreat(data, ship)
	fmt.Printf("icebergs above the 0.1%% proximity threshold: %d\n", threats)
	fmt.Printf("total threat (PIP, exact)                   : %.6f\n", totalThreat)
	fmt.Printf("total threat (closed-form reference)        : %.6f\n", want)
	if math.Abs(totalThreat-want) > 1e-9 {
		panic("exactness lost")
	}
	fmt.Println("\nPIP's answer required zero samples; every probability came from 4 CDF evaluations.")
}
