// Client/server: boot the pipd service layer in-process, then query it
// remotely through the standard database/sql driver with a pip:// DSN —
// and show that the wire changes nothing: the same seeded query returns
// the bit-identical answer in-process and over the network.
//
// In production the server side is the pipd binary (cmd/pipd) and clients
// connect from other processes/machines; this example folds both ends
// into one program so `go run` demonstrates the full round trip with no
// setup.
//
//	go run ./examples/clientserver
package main

import (
	"database/sql"
	"fmt"
	"net"
	"net/http"

	"pip"
	_ "pip/driver"
	"pip/internal/server"
)

const seed = 42

var statements = []string{
	`CREATE TABLE orders (cust, shipto, price)`,
	`INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))`,
	`INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))`,
}

const query = `SELECT cust, expectation(price) AS e, conf() AS p FROM orders WHERE price > 90`

func main() {
	// --- Server side: what `pipd -addr :7432` does. -----------------------
	db := pip.Open(pip.Options{Seed: seed})
	srv := server.New(server.Config{DB: db})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go http.Serve(ln, srv.Handler())
	addr := ln.Addr().String()
	fmt.Printf("pipd service listening on %s\n\n", addr)

	// --- Client side: a remote DSN routes through the wire protocol. ------
	remote, err := sql.Open("pip", "pip://"+addr)
	if err != nil {
		panic(err)
	}
	defer remote.Close()
	for _, s := range statements {
		if _, err := remote.Exec(s); err != nil {
			panic(err)
		}
	}
	fmt.Println("remote result (via pip:// DSN):")
	remoteRows := runQuery(remote)

	// --- The control: the same seed, fully in-process. --------------------
	local, err := sql.Open("pip", fmt.Sprintf("seed=%d", seed))
	if err != nil {
		panic(err)
	}
	defer local.Close()
	for _, s := range statements {
		if _, err := local.Exec(s); err != nil {
			panic(err)
		}
	}
	fmt.Println("\nlocal result (in-process DSN):")
	localRows := runQuery(local)

	if remoteRows == localRows {
		fmt.Println("\nbit-identical: the wire protocol does not perturb determinism.")
	} else {
		fmt.Println("\nDIVERGED — this is a bug; equal seeds must match across the wire.")
	}
}

// runQuery executes the example query on a pool and returns a rendering
// that is exact in every float bit.
func runQuery(db *sql.DB) string {
	rows, err := db.Query(query)
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	out := ""
	for rows.Next() {
		var cust string
		var e, p float64
		if err := rows.Scan(&cust, &e, &p); err != nil {
			panic(err)
		}
		line := fmt.Sprintf("  %-4s E[price | price>90] = %.6f   P[price>90] = %.6f", cust, e, p)
		fmt.Println(line)
		out += fmt.Sprintf("%s|%x|%x\n", cust, e, p)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	return out
}
