// Supply chain: the Q5-style two-variable model behind Fig. 7(b).
//
// Suppliers' production capacity for next year follows an Exponential
// model; demand follows another. The query asks for the expected
// underproduction (demand - supply) restricted to the worlds where demand
// exceeds supply — a comparison of two random variables, which forces
// rejection sampling. PIP decides to reject-and-redraw per sample instead
// of re-running the query, and its independence partitioning keeps other
// constraint groups out of the rejection loop.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"

	"pip"
)

type product struct {
	name       string
	demandMean float64 // expected units demanded
	supplyMean float64 // expected units produceable
}

func main() {
	db := pip.Open(pip.Options{Seed: 11})

	products := []product{
		{"widgets", 120, 2280}, // P[D>S] = 0.05: healthy stock
		{"gadgets", 300, 1200}, // P[D>S] = 0.20: riskier
		{"gizmos", 500, 500},   // P[D>S] = 0.50: coin flip
	}

	fmt.Println("product   P[shortage]   E[shortfall | shortage]   closed-form")
	for _, p := range products {
		demand := db.ExponentialVar(1 / p.demandMean)
		supply := db.ExponentialVar(1 / p.supplyMean)

		shortfall := pip.Sub(pip.V(demand), pip.V(supply))
		r := db.Expectation(shortfall, pip.GT(pip.V(demand), pip.V(supply)))

		// Exponential memorylessness gives closed forms to check against:
		// P[D > S] = rs / (rs + rd) and E[D - S | D > S] = E[D].
		rd, rs := 1/p.demandMean, 1/p.supplyMean
		wantP := rs / (rs + rd)
		fmt.Printf("%-9s %8.3f (want %.3f) %12.1f %18.1f\n",
			p.name, r.Prob, wantP, r.Mean, p.demandMean)
	}

	// The same model through SQL, with the shortage as a c-table and the
	// expected total shortfall across products as the aggregate.
	db.MustExec(`CREATE TABLE risk (product, demand, supply)`)
	db.MustExec(`INSERT INTO risk VALUES
		('widgets', CREATE_VARIABLE('Exponential', 0.008333), CREATE_VARIABLE('Exponential', 0.000439)),
		('gadgets', CREATE_VARIABLE('Exponential', 0.003333), CREATE_VARIABLE('Exponential', 0.000833))`)
	res := db.MustQuery(`
		SELECT expected_sum(demand - supply) AS total_shortfall
		FROM risk
		WHERE demand > supply`)
	fmt.Println("\nexpected total shortfall across products (weighted by shortage probability):")
	fmt.Print(res)
}
