package pip

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// heavyDB builds a database whose queries spend real sampling time, so a
// cancellation race has a window to land mid-query.
func heavyDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{Seed: 7, FixedSamples: 5000})
	db.MustExec("CREATE TABLE t (v, w)")
	for i := 0; i < 40; i++ {
		db.MustExec("INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 10, 3), CREATE_VARIABLE('Normal', 0, 1))")
	}
	return db
}

// TestQueryContextPreCancelled: a context cancelled before execution must
// return ctx.Err() without touching the sampler.
func TestQueryContextPreCancelled(t *testing.T) {
	db := heavyDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT expected_sum(v) FROM t WHERE w > v - 10"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: %v", err)
	}
	if err := db.ExecContext(ctx, "INSERT INTO t VALUES (1, 2)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled exec: %v", err)
	}
	if _, err := db.PrepareContext(ctx, "SELECT v FROM t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled prepare: %v", err)
	}
}

// TestQueryContextDeadline: an already-expired deadline surfaces as
// DeadlineExceeded.
func TestQueryContextDeadline(t *testing.T) {
	db := heavyDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := db.QueryContext(ctx, "SELECT expected_sum(v) FROM t WHERE w > v - 10")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v", err)
	}
}

// TestQueryContextCancelMidQuery races cancellation against running
// aggregate queries (run under -race in CI): the query must terminate and
// report either a complete result (cancel landed too late) or exactly
// ctx.Err() — never a partial table and never a hang.
func TestQueryContextCancelMidQuery(t *testing.T) {
	db := heavyDB(t)
	const q = "SELECT expected_sum(v) FROM t WHERE w > v - 10"

	// Reference result for the completed case.
	want := db.MustQuery(q)
	wantVal, _ := want.Tuples[0].Values[0].AsFloat()

	sawCancel := false
	for _, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		for rep := 0; rep < 3; rep++ {
			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(delay)
				cancel()
			}()
			st, err := db.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			out, err := st.QueryTableContext(ctx)
			wg.Wait()
			switch {
			case err == nil:
				got, _ := out.Tuples[0].Values[0].AsFloat()
				if got != wantVal {
					t.Fatalf("delay %v: completed with %v, want %v (partial result leaked)", delay, got, wantVal)
				}
			case errors.Is(err, context.Canceled):
				sawCancel = true
				if out != nil {
					t.Fatalf("delay %v: cancelled query returned a table", delay)
				}
			default:
				t.Fatalf("delay %v: unexpected error %v", delay, err)
			}
			cancel()
		}
	}
	if !sawCancel {
		t.Log("no run observed a mid-query cancellation (machine too fast); pre-cancelled path is covered elsewhere")
	}
}

// TestRowsCancelMidStream cancels while a streaming cursor is half-drained:
// Next must stop and Err report ctx.Err().
func TestRowsCancelMidStream(t *testing.T) {
	db := Open(Options{Seed: 9})
	db.MustExec("CREATE TABLE t (v)")
	for i := 0; i < 20; i++ {
		db.MustExec("INSERT INTO t VALUES (?)", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.QueryContext(ctx, "SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
		if n == 5 {
			cancel()
		}
	}
	if n < 5 {
		t.Fatalf("stopped after %d rows", n)
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after mid-stream cancel: %v", err)
	}
}

// TestContextDeterminism: running under a never-cancelled context must not
// perturb results relative to the context-free path — the determinism
// contract extends across the context plumbing.
func TestContextDeterminism(t *testing.T) {
	build := func() *DB {
		db := Open(Options{Seed: 123})
		db.MustExec("CREATE TABLE t (v, w)")
		for i := 0; i < 10; i++ {
			db.MustExec("INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 5, 2), CREATE_VARIABLE('Exponential', 0.2))")
		}
		return db
	}
	const q = "SELECT expected_sum(v) FROM t WHERE w > 3"
	base := build().MustQuery(q)
	st, err := build().Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := st.QueryTableContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := base.Tuples[0].Values[0].AsFloat()
	c, _ := ctxed.Tuples[0].Values[0].AsFloat()
	if b != c {
		t.Fatalf("context plumbing perturbed result: %v != %v", c, b)
	}
}
