// Package ctable implements probabilistic conditional tables (c-tables,
// paper §II) and the relational algebra of Fig. 1 on them.
//
// A c-table is a multiset of tuples, each carrying a local condition — a
// conjunction of atomic comparisons over random variables. Data fields hold
// constants or symbolic random-variable equations (the CTYPE/VarExp duality
// of Fig. 4). Relational operators manipulate conditions exactly as in
// Fig. 1: selection conjoins predicate atoms, product conjoins input
// conditions, distinct coalesces duplicate tuples into DNF, and difference
// negates.
package ctable

import (
	"fmt"
	"math"
	"strconv"

	"pip/internal/expr"
)

// Kind enumerates the runtime types a c-table cell can hold.
type Kind int

// Cell kinds. KindExpr marks a symbolic cell: a random-variable equation
// whose value varies across possible worlds.
const (
	KindNull Kind = iota
	KindFloat
	KindInt
	KindString
	KindBool
	KindExpr
)

// String names the value kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindExpr:
		return "expr"
	default:
		return "?"
	}
}

// Value is one c-table cell. The zero value is NULL.
type Value struct {
	Kind Kind
	F    float64
	I    int64
	S    string
	B    bool
	E    expr.Expr
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// String_ wraps a string. (Named with a trailing underscore to avoid
// colliding with the String method.)
func String_(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Symbolic wraps a random-variable equation. If the expression is actually
// constant it is folded to a float value.
func Symbolic(e expr.Expr) Value {
	if c, ok := e.(expr.Const); ok {
		return Float(float64(c))
	}
	return Value{Kind: KindExpr, E: e}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsSymbolic reports whether the value depends on random variables.
func (v Value) IsSymbolic() bool { return v.Kind == KindExpr }

// IsNumeric reports whether the value can participate in arithmetic.
func (v Value) IsNumeric() bool {
	switch v.Kind {
	case KindFloat, KindInt, KindExpr:
		return true
	default:
		return false
	}
}

// AsFloat returns the deterministic numeric value; ok is false for
// non-numeric or symbolic values.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindFloat:
		return v.F, true
	case KindInt:
		return float64(v.I), true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsExpr returns the value as an equation: symbolic values return their
// tree, deterministic numerics return a Const. ok is false for strings and
// NULL.
func (v Value) AsExpr() (expr.Expr, bool) {
	switch v.Kind {
	case KindExpr:
		return v.E, true
	case KindFloat:
		return expr.Const(v.F), true
	case KindInt:
		return expr.Const(float64(v.I)), true
	case KindBool:
		if v.B {
			return expr.Const(1), true
		}
		return expr.Const(0), true
	default:
		return nil, false
	}
}

// EvalWorld resolves the value in the possible world described by asn:
// symbolic cells evaluate their equation, deterministic cells pass through.
func (v Value) EvalWorld(asn expr.Assignment) Value {
	if v.Kind != KindExpr {
		return v
	}
	return Float(v.E.Eval(asn))
}

// CollectVars adds the value's random variables (if any) to set.
func (v Value) CollectVars(set map[expr.VarKey]*expr.Variable) {
	if v.Kind == KindExpr {
		v.E.CollectVars(set)
	}
}

// Equal reports deterministic equality between two values. Symbolic values
// compare by syntactic identity of their equations (used by distinct);
// numerically equal int/float pairs are equal.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindExpr || o.Kind == KindExpr {
		if v.Kind != KindExpr || o.Kind != KindExpr {
			return false
		}
		return v.E.String() == o.E.String()
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindString:
		return v.S == o.S
	case KindBool:
		return v.B == o.B
	default:
		return false
	}
}

// Compare orders two deterministic values; symbolic values are not
// comparable deterministically and return ok=false. NULLs sort first.
func (v Value) Compare(o Value) (int, bool) {
	if v.Kind == KindExpr || o.Kind == KindExpr {
		return 0, false
	}
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == KindNull && o.Kind == KindNull:
			return 0, true
		case v.Kind == KindNull:
			return -1, true
		default:
			return 1, true
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		switch {
		case v.S < o.S:
			return -1, true
		case v.S > o.S:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return v.S
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindExpr:
		return v.E.String()
	default:
		return fmt.Sprintf("?%d", v.Kind)
	}
}

// HashKey returns a hashable representation of a deterministic value,
// consistent with Compare/Equal semantics: numerically equal int/float pairs
// share a key. Used by hash-join pairing, grouping and distinct. Symbolic
// values key by equation syntax and must not be used for equality pairing.
func (v Value) HashKey() string { return v.key() }

// AppendBinaryKey appends a compact binary key for v to dst and returns the
// extended slice. The key partitions values into exactly the same
// equivalence classes as HashKey — numerically equal int/float pairs share
// a key (both go through AsFloat), every NaN is canonicalized to one
// pattern (FormatFloat renders every NaN as "NaN"), and -0 stays distinct
// from +0 (as "-0" differs from "0") — but costs no float formatting, which
// dominates the string path. Keys are self-delimiting (kind tag plus
// fixed-width or length-prefixed payload), so multi-column keys concatenate
// without a separator.
func (v Value) AppendBinaryKey(dst []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 'n')
	case KindString:
		dst = append(dst, 's')
		dst = appendKeyLen(dst, len(v.S))
		return append(dst, v.S...)
	case KindBool:
		if v.B {
			return append(dst, 'b', 1)
		}
		return append(dst, 'b', 0)
	case KindExpr:
		s := v.E.String()
		dst = append(dst, 'e')
		dst = appendKeyLen(dst, len(s))
		return append(dst, s...)
	default:
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		if f != f {
			bits = 0x7FF8000000000000
		}
		return append(dst, 'f',
			byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
			byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
	}
}

// appendKeyLen appends a length prefix as a little-endian base-128 varint.
func appendKeyLen(dst []byte, n int) []byte {
	u := uint64(n)
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// key returns a hashable representation used for grouping and distinct.
func (v Value) key() string {
	switch v.Kind {
	case KindNull:
		return "n:"
	case KindString:
		return "s:" + v.S
	case KindBool:
		return "b:" + strconv.FormatBool(v.B)
	case KindExpr:
		return "e:" + v.E.String()
	default:
		f, _ := v.AsFloat()
		return "f:" + strconv.FormatFloat(f, 'g', -1, 64)
	}
}
