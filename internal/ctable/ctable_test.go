package ctable

import (
	"math"
	"testing"
	"testing/quick"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
)

func normalVar(id uint64) *expr.Variable {
	return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null not null")
	}
	f, ok := Int(42).AsFloat()
	if !ok || f != 42 {
		t.Fatal("Int AsFloat")
	}
	f, ok = Bool(true).AsFloat()
	if !ok || f != 1 {
		t.Fatal("Bool AsFloat")
	}
	if _, ok := String_("x").AsFloat(); ok {
		t.Fatal("string converted to float")
	}
	if !Float(1).Equal(Int(1)) {
		t.Fatal("numeric cross-kind equality failed")
	}
	if Float(1).Equal(String_("1")) {
		t.Fatal("float equals string")
	}
}

func TestSymbolicValueFolding(t *testing.T) {
	v := Symbolic(expr.Const(5))
	if v.Kind != KindFloat || v.F != 5 {
		t.Fatalf("constant expression should fold: %v", v)
	}
	x := normalVar(1)
	s := Symbolic(expr.NewVar(x))
	if !s.IsSymbolic() {
		t.Fatal("variable expression not symbolic")
	}
	w := s.EvalWorld(expr.Assignment{x.Key: 3})
	if f, _ := w.AsFloat(); f != 3 {
		t.Fatalf("EvalWorld = %v", w)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Float(1), Float(2), -1},
		{Float(2), Float(2), 0},
		{Int(3), Float(2), 1},
		{String_("a"), String_("b"), -1},
		{Null(), Float(0), -1},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if !ok || got != c.want {
			t.Fatalf("Compare(%v, %v) = %d, %v", c.a, c.b, got, ok)
		}
	}
	if _, ok := Float(1).Compare(Symbolic(expr.NewVar(normalVar(1)))); ok {
		t.Fatal("symbolic comparison should not be deterministic")
	}
}

func TestScalarResolution(t *testing.T) {
	x := normalVar(1)
	tb := New("t", "a", "b")
	tb.MustAppend(NewTuple(Float(10), Symbolic(expr.NewVar(x))))
	tup := &tb.Tuples[0]

	v, err := Col(0).Resolve(tup)
	if err != nil || v.F != 10 {
		t.Fatalf("Col resolve: %v %v", v, err)
	}
	if _, err := Col(5).Resolve(tup); err == nil {
		t.Fatal("out-of-range column did not error")
	}
	// 2 * b is symbolic.
	a := Arith{Op: expr.OpMul, Left: LitFloat(2), Right: Col(1)}
	v, err = a.Resolve(tup)
	if err != nil || !v.IsSymbolic() {
		t.Fatalf("symbolic arith: %v %v", v, err)
	}
	got := v.E.Eval(expr.Assignment{x.Key: 4})
	if got != 8 {
		t.Fatalf("2*b at b=4: %v", got)
	}
	// a + 1 folds.
	a2 := Arith{Op: expr.OpAdd, Left: Col(0), Right: LitFloat(1)}
	v, err = a2.Resolve(tup)
	if err != nil || v.Kind != KindFloat || v.F != 11 {
		t.Fatalf("det arith: %v %v", v, err)
	}
	// string arithmetic errors.
	tb2 := New("t2", "s")
	tb2.MustAppend(NewTuple(String_("x")))
	a3 := Arith{Op: expr.OpAdd, Left: Col(0), Right: LitFloat(1)}
	if _, err := a3.Resolve(&tb2.Tuples[0]); err == nil {
		t.Fatal("string arithmetic should error")
	}
}

func TestComparePredicate(t *testing.T) {
	x := normalVar(1)
	tb := New("t", "name", "price")
	tb.MustAppend(NewTuple(String_("Joe"), Symbolic(expr.NewVar(x))))
	tup := &tb.Tuples[0]

	// Deterministic string comparison.
	o, _, err := Compare{Op: cond.EQ, Left: Col(0), Right: LitString("Joe")}.Eval(tup)
	if err != nil || o != PredTrue {
		t.Fatalf("det string compare: %v %v", o, err)
	}
	o, _, _ = Compare{Op: cond.EQ, Left: Col(0), Right: LitString("Bob")}.Eval(tup)
	if o != PredFalse {
		t.Fatal("mismatched string compared true")
	}
	// Symbolic comparison yields an atom.
	o, atoms, err := Compare{Op: cond.GE, Left: Col(1), Right: LitFloat(7)}.Eval(tup)
	if err != nil || o != PredSymbolic || len(atoms) != 1 {
		t.Fatalf("symbolic compare: %v %v %v", o, atoms, err)
	}
	if !atoms.Holds(expr.Assignment{x.Key: 8}) || atoms.Holds(expr.Assignment{x.Key: 6}) {
		t.Fatal("atom semantics wrong")
	}
	// NULL comparisons are false.
	tb2 := New("t2", "a")
	tb2.MustAppend(NewTuple(Null()))
	o, _, _ = Compare{Op: cond.EQ, Left: Col(0), Right: LitFloat(0)}.Eval(&tb2.Tuples[0])
	if o != PredFalse {
		t.Fatal("NULL comparison not false")
	}
}

// buildPaperExample constructs the running example of §1.1/§2.1:
// Order(Cust, ShipTo, Price) and Shipping(Dest, Duration).
func buildPaperExample() (*Table, *Table, map[string]*expr.Variable) {
	vars := map[string]*expr.Variable{
		"X1": {Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 100, 10), Name: "X1"},
		"X2": {Key: expr.VarKey{ID: 2}, Dist: dist.MustInstance(dist.Normal{}, 5, 2), Name: "X2"},
		"X3": {Key: expr.VarKey{ID: 3}, Dist: dist.MustInstance(dist.Normal{}, 200, 10), Name: "X3"},
		"X4": {Key: expr.VarKey{ID: 4}, Dist: dist.MustInstance(dist.Normal{}, 6, 2), Name: "X4"},
	}
	order := New("Order", "Cust", "ShipTo", "Price")
	order.MustAppend(NewTuple(String_("Joe"), String_("NY"), Symbolic(expr.NewVar(vars["X1"]))))
	order.MustAppend(NewTuple(String_("Bob"), String_("LA"), Symbolic(expr.NewVar(vars["X3"]))))
	shipping := New("Shipping", "Dest", "Duration")
	shipping.MustAppend(NewTuple(String_("NY"), Symbolic(expr.NewVar(vars["X2"]))))
	shipping.MustAppend(NewTuple(String_("LA"), Symbolic(expr.NewVar(vars["X4"]))))
	return order, shipping, vars
}

func TestPaperRunningExample(t *testing.T) {
	// pi_Price(sigma_{ShipTo=Dest}(sigma_{Cust='Joe'}(Order) x
	//          sigma_{Duration>=7}(Shipping)))
	order, shipping, vars := buildPaperExample()

	joe, err := Select(order, Compare{Op: cond.EQ, Left: Col(0), Right: LitString("Joe")})
	if err != nil {
		t.Fatal(err)
	}
	if joe.Len() != 1 {
		t.Fatalf("sigma_Cust='Joe' kept %d rows", joe.Len())
	}
	late, err := Select(shipping, Compare{Op: cond.GE, Left: Col(1), Right: LitFloat(7)})
	if err != nil {
		t.Fatal(err)
	}
	// Both shipping rows survive symbolically, with conditions X2>=7, X4>=7.
	if late.Len() != 2 {
		t.Fatalf("sigma_Duration>=7 kept %d rows", late.Len())
	}
	prod := Product(joe, late)
	if prod.Len() != 2 {
		t.Fatalf("product has %d rows", prod.Len())
	}
	joined, err := Select(prod, Compare{Op: cond.EQ, Left: Col(1), Right: Col(3)})
	if err != nil {
		t.Fatal(err)
	}
	// Only the NY-NY pairing survives deterministically.
	if joined.Len() != 1 {
		t.Fatalf("join kept %d rows", joined.Len())
	}
	result, err := Project(joined, []string{"Price"}, []Scalar{Col(2)})
	if err != nil {
		t.Fatal(err)
	}
	// The result must be the c-table {| (X1, X2 >= 7) |} of Example 3.1.
	tup := result.Tuples[0]
	if !tup.Values[0].IsSymbolic() {
		t.Fatal("price should be symbolic")
	}
	if len(tup.Cond.Clauses) != 1 || len(tup.Cond.Clauses[0]) != 1 {
		t.Fatalf("condition shape wrong: %s", tup.Cond)
	}
	a := tup.Cond.Clauses[0][0]
	set := map[expr.VarKey]*expr.Variable{}
	a.CollectVars(set)
	if _, ok := set[vars["X2"].Key]; !ok || len(set) != 1 {
		t.Fatalf("condition should mention only X2: %s", a)
	}
}

func TestSelectDropsInconsistent(t *testing.T) {
	y := normalVar(1)
	tb := New("t", "v")
	tup := NewTuple(Float(1))
	tup.Cond = cond.FromClause(cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(5))})
	tb.MustAppend(tup)
	// Adding v<3 to a row conditioned on Y>5 is fine; adding Y<3 kills it.
	out, err := Select(tb, Compare{Op: cond.LT, Left: ScalarVar(y), Right: LitFloat(3)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("inconsistent row survived: %s", out)
	}
}

// ScalarVar adapts a bare variable as a Scalar for tests.
func ScalarVar(v *expr.Variable) Scalar {
	return ScalarFunc{Name: v.String(), Fn: func(*Tuple) (Value, error) {
		return Symbolic(expr.NewVar(v)), nil
	}}
}

func TestDistinctCoalescesToDNF(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	tb := New("t", "v")
	t1 := NewTuple(Float(1))
	t1.Cond = cond.FromClause(cond.Clause{cond.NewAtom(expr.NewVar(x), cond.GT, expr.Const(0))})
	t2 := NewTuple(Float(1))
	t2.Cond = cond.FromClause(cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(0))})
	t3 := NewTuple(Float(2))
	tb.MustAppend(t1)
	tb.MustAppend(t2)
	tb.MustAppend(t3)
	d := Distinct(tb)
	if d.Len() != 2 {
		t.Fatalf("distinct kept %d rows", d.Len())
	}
	if len(d.Tuples[0].Cond.Clauses) != 2 {
		t.Fatalf("coalesced condition has %d clauses", len(d.Tuples[0].Cond.Clauses))
	}
	// Semantics: the merged condition is the OR.
	asn := expr.Assignment{x.Key: 1, y.Key: -1}
	if !d.Tuples[0].Cond.Holds(asn) {
		t.Fatal("OR semantics lost")
	}
}

func TestUnionAndArity(t *testing.T) {
	a := New("a", "x")
	b := New("b", "x")
	a.MustAppend(NewTuple(Float(1)))
	b.MustAppend(NewTuple(Float(2)))
	u, err := Union(a, b)
	if err != nil || u.Len() != 2 {
		t.Fatalf("union: %v len %d", err, u.Len())
	}
	c := New("c", "x", "y")
	if _, err := Union(a, c); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDifferenceSemantics(t *testing.T) {
	// R - S where S's matching row has condition phi: survivors carry
	// NOT phi (Fig. 1).
	x := normalVar(1)
	r := New("r", "v")
	r.MustAppend(NewTuple(Float(1)))
	r.MustAppend(NewTuple(Float(2)))
	s := New("s", "v")
	ts := NewTuple(Float(1))
	ts.Cond = cond.FromClause(cond.Clause{cond.NewAtom(expr.NewVar(x), cond.GT, expr.Const(0))})
	s.MustAppend(ts)

	d, err := Difference(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("difference has %d rows", d.Len())
	}
	// Row v=1 must now hold exactly when NOT (x > 0).
	var row1 *Tuple
	for i := range d.Tuples {
		if f, _ := d.Tuples[i].Values[0].AsFloat(); f == 1 {
			row1 = &d.Tuples[i]
		}
	}
	if row1 == nil {
		t.Fatal("row v=1 missing")
	}
	if row1.Cond.Holds(expr.Assignment{x.Key: 1}) {
		t.Fatal("row should be absent when x>0")
	}
	if !row1.Cond.Holds(expr.Assignment{x.Key: -1}) {
		t.Fatal("row should be present when x<=0")
	}
}

func TestNotInvolution(t *testing.T) {
	// Property: Not(Not(c)) is semantically c on random single-var DNFs.
	x := normalVar(1)
	mk := func(th float64, op cond.CmpOp) cond.Condition {
		return cond.FromClause(cond.Clause{cond.NewAtom(expr.NewVar(x), op, expr.Const(th))})
	}
	f := func(a, b, v float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(v) {
			return true
		}
		d := mk(a, cond.GT).Or(mk(b, cond.LE))
		nn := Not(Not(d))
		asn := expr.Assignment{x.Key: v}
		return nn.Holds(asn) == d.Holds(asn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEquiJoinMatchesProductSelect(t *testing.T) {
	order, shipping, _ := buildPaperExample()
	a, err := EquiJoin(order, shipping, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(order, shipping, Compare{Op: cond.EQ, Left: Col(1), Right: Col(3)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("EquiJoin %d rows vs Join %d rows", a.Len(), b.Len())
	}
}

func TestGroupBy(t *testing.T) {
	tb := New("t", "k", "v")
	tb.MustAppend(NewTuple(String_("a"), Float(1)))
	tb.MustAppend(NewTuple(String_("b"), Float(2)))
	tb.MustAppend(NewTuple(String_("a"), Float(3)))
	groups, err := GroupBy(tb, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	if len(groups[0].Rows) != 2 || groups[0].Key[0].S != "a" {
		t.Fatalf("group a wrong: %+v", groups[0])
	}
	// Grouping by a symbolic column must fail.
	tb2 := New("t2", "k")
	tb2.MustAppend(NewTuple(Symbolic(expr.NewVar(normalVar(1)))))
	if _, err := GroupBy(tb2, []int{0}); err == nil {
		t.Fatal("symbolic group key accepted")
	}
}

func TestAppendArity(t *testing.T) {
	tb := New("t", "a", "b")
	if err := tb.Append(NewTuple(Float(1))); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestVarsOf(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	tb := New("t", "v")
	tup := NewTuple(Symbolic(expr.NewVar(x)))
	tup.Cond = cond.FromClause(cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(0))})
	tb.MustAppend(tup)
	vars := VarsOf(tb)
	if len(vars) != 2 {
		t.Fatalf("VarsOf found %d vars", len(vars))
	}
}

func TestTupleIsDeterministic(t *testing.T) {
	if !NewTuple(Float(1)).IsDeterministic() {
		t.Fatal("plain tuple not deterministic")
	}
	sym := NewTuple(Symbolic(expr.NewVar(normalVar(1))))
	if sym.IsDeterministic() {
		t.Fatal("symbolic tuple reported deterministic")
	}
}
