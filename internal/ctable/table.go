package ctable

import (
	"fmt"
	"strings"

	"pip/internal/cond"
	"pip/internal/expr"
)

// Column describes one data column of a c-table.
type Column struct {
	Name string
}

// Schema is the ordered list of data columns. The local condition is not a
// schema column; it lives on the tuple (Fig. 4's phi columns are an
// encoding detail of the Postgres embedding, not of the model).
type Schema []Column

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Tuple is one c-table row: data values plus the local condition. The
// condition is kept in DNF; relational operators preserve the invariant
// that conditions produced without DISTINCT remain single conjunctive
// clauses (paper §III-B).
type Tuple struct {
	Values []Value
	Cond   cond.Condition
}

// NewTuple builds a tuple with the always-true condition.
func NewTuple(vals ...Value) Tuple {
	return Tuple{Values: vals, Cond: cond.TrueCondition()}
}

// Clone deep-copies the tuple's value slice (conditions are immutable by
// convention and shared).
func (t Tuple) Clone() Tuple {
	vals := make([]Value, len(t.Values))
	copy(vals, t.Values)
	return Tuple{Values: vals, Cond: t.Cond}
}

// IsDeterministic reports whether the tuple has a trivially true condition
// and no symbolic cells.
func (t Tuple) IsDeterministic() bool {
	if !t.Cond.IsTrue() {
		return false
	}
	for _, v := range t.Values {
		if v.IsSymbolic() {
			return false
		}
	}
	return true
}

// dataKey returns a hashable key of the data columns (not the condition),
// as needed by distinct and group-by.
func (t Tuple) dataKey() string {
	var b strings.Builder
	for _, v := range t.Values {
		b.WriteString(v.key())
		b.WriteByte('|')
	}
	return b.String()
}

// Table is a probabilistic c-table: a schema plus a bag of tuples.
type Table struct {
	Name   string
	Schema Schema
	Tuples []Tuple
}

// New creates an empty table with the given column names.
func New(name string, cols ...string) *Table {
	sch := make(Schema, len(cols))
	for i, c := range cols {
		sch[i] = Column{Name: c}
	}
	return &Table{Name: name, Schema: sch}
}

// Append adds a tuple, validating arity.
func (tb *Table) Append(t Tuple) error {
	if len(t.Values) != len(tb.Schema) {
		return fmt.Errorf("ctable: tuple arity %d does not match schema arity %d of %s",
			len(t.Values), len(tb.Schema), tb.Name)
	}
	tb.Tuples = append(tb.Tuples, t)
	return nil
}

// MustAppend is Append panicking on arity mismatch (programmer error).
func (tb *Table) MustAppend(t Tuple) {
	if err := tb.Append(t); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (tb *Table) Len() int { return len(tb.Tuples) }

// Clone returns a deep copy of the table.
func (tb *Table) Clone() *Table {
	out := &Table{Name: tb.Name, Schema: tb.Schema.Clone()}
	out.Tuples = make([]Tuple, len(tb.Tuples))
	for i, t := range tb.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// String renders the table for debugging, one row per line with its
// condition.
func (tb *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", tb.Name, strings.Join(tb.Schema.Names(), ", "))
	for _, t := range tb.Tuples {
		cells := make([]string, len(t.Values))
		for i, v := range t.Values {
			cells[i] = v.String()
		}
		fmt.Fprintf(&b, "  (%s) | %s\n", strings.Join(cells, ", "), t.Cond.String())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Relational algebra (Fig. 1)

// Select implements C_sigma(R): each surviving tuple's condition is
// conjoined with the predicate's symbolic atoms; deterministically false
// rows are dropped; rows whose condition becomes provably inconsistent are
// removed (paper §III-C "if such tuples are discovered, they may be freely
// removed").
func Select(tb *Table, p Predicate) (*Table, error) {
	out := &Table{Name: tb.Name, Schema: tb.Schema}
	for i := range tb.Tuples {
		kept, keep, err := ApplyPredicate(&tb.Tuples[i], p)
		if err != nil {
			return nil, err
		}
		if keep {
			out.Tuples = append(out.Tuples, kept)
		}
	}
	return out, nil
}

// ApplyPredicate evaluates p against a single tuple with Select's
// semantics: keep=false drops the tuple (deterministically false predicate,
// or a condition proven inconsistent by Algorithm 3.2); otherwise the
// returned tuple carries the input condition conjoined with the predicate's
// symbolic atoms. It is the per-row unit behind both the materializing
// Select operator and streaming cursors.
func ApplyPredicate(t *Tuple, p Predicate) (kept Tuple, keep bool, err error) {
	outcome, atoms, err := p.Eval(t)
	if err != nil {
		return Tuple{}, false, err
	}
	switch outcome {
	case PredFalse:
		return Tuple{}, false, nil
	case PredTrue:
		return *t, true, nil
	default:
		nc := t.Cond.And(cond.FromClause(atoms))
		nc = dropInconsistent(nc)
		if nc.IsFalse() {
			return Tuple{}, false, nil
		}
		return Tuple{Values: t.Values, Cond: nc}, true, nil
	}
}

// dropInconsistent removes clauses that Algorithm 3.2 proves inconsistent.
func dropInconsistent(c cond.Condition) cond.Condition {
	out := cond.Condition{}
	for _, cl := range c.Clauses {
		res := cond.CheckConsistency(cl)
		if res.Verdict == cond.Inconsistent {
			continue
		}
		out.Clauses = append(out.Clauses, cl)
	}
	return out
}

// Project implements C_pi(R) generalized to computed targets: each output
// column is a Scalar over the input tuple. Conditions pass through
// unchanged (the CTYPE pass-through rewrite of §V-A).
func Project(tb *Table, names []string, targets []Scalar) (*Table, error) {
	if len(names) != len(targets) {
		return nil, fmt.Errorf("ctable: %d names for %d projection targets", len(names), len(targets))
	}
	sch := make(Schema, len(names))
	for i, n := range names {
		sch[i] = Column{Name: n}
	}
	out := &Table{Name: tb.Name, Schema: sch}
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		vals := make([]Value, len(targets))
		for j, tgt := range targets {
			v, err := tgt.Resolve(t)
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		out.Tuples = append(out.Tuples, Tuple{Values: vals, Cond: t.Cond})
	}
	return out, nil
}

// Product implements C_RxS: the cross product conjoins conditions.
func Product(a, b *Table) *Table {
	sch := make(Schema, 0, len(a.Schema)+len(b.Schema))
	sch = append(sch, a.Schema...)
	sch = append(sch, b.Schema...)
	out := &Table{Name: a.Name + "_x_" + b.Name, Schema: sch}
	for i := range a.Tuples {
		ta := &a.Tuples[i]
		for j := range b.Tuples {
			tbp := &b.Tuples[j]
			vals := make([]Value, 0, len(ta.Values)+len(tbp.Values))
			vals = append(vals, ta.Values...)
			vals = append(vals, tbp.Values...)
			nc := ta.Cond.And(tbp.Cond)
			if nc.IsFalse() {
				continue
			}
			out.Tuples = append(out.Tuples, Tuple{Values: vals, Cond: nc})
		}
	}
	return out
}

// Join is Product followed by Select — provided as a convenience so
// planners can fuse the pair without materializing the full product for
// deterministic equi-join predicates.
func Join(a, b *Table, on Predicate) (*Table, error) {
	return Select(Product(a, b), on)
}

// EquiJoin performs a hash join on deterministic key columns, a much faster
// path than Product+Select when the join keys are non-probabilistic (the
// usual case — the paper notes deterministic query optimizers do a
// satisfactory job on the deterministic skeleton).
func EquiJoin(a, b *Table, aCol, bCol int) (*Table, error) {
	if aCol < 0 || aCol >= len(a.Schema) {
		return nil, fmt.Errorf("ctable: join column %d out of range for %s", aCol, a.Name)
	}
	if bCol < 0 || bCol >= len(b.Schema) {
		return nil, fmt.Errorf("ctable: join column %d out of range for %s", bCol, b.Name)
	}
	sch := make(Schema, 0, len(a.Schema)+len(b.Schema))
	sch = append(sch, a.Schema...)
	sch = append(sch, b.Schema...)
	out := &Table{Name: a.Name + "_join_" + b.Name, Schema: sch}

	idx := map[string][]int{}
	for j := range b.Tuples {
		v := b.Tuples[j].Values[bCol]
		if v.IsSymbolic() {
			return nil, fmt.Errorf("ctable: EquiJoin key column %s.%s is symbolic; use Join",
				b.Name, b.Schema[bCol].Name)
		}
		idx[v.key()] = append(idx[v.key()], j)
	}
	for i := range a.Tuples {
		ta := &a.Tuples[i]
		v := ta.Values[aCol]
		if v.IsSymbolic() {
			return nil, fmt.Errorf("ctable: EquiJoin key column %s.%s is symbolic; use Join",
				a.Name, a.Schema[aCol].Name)
		}
		for _, j := range idx[v.key()] {
			tbp := &b.Tuples[j]
			vals := make([]Value, 0, len(ta.Values)+len(tbp.Values))
			vals = append(vals, ta.Values...)
			vals = append(vals, tbp.Values...)
			nc := ta.Cond.And(tbp.Cond)
			if nc.IsFalse() {
				continue
			}
			out.Tuples = append(out.Tuples, Tuple{Values: vals, Cond: nc})
		}
	}
	return out, nil
}

// Union implements C_RuS: bag union (list concatenation).
func Union(a, b *Table) (*Table, error) {
	if len(a.Schema) != len(b.Schema) {
		return nil, fmt.Errorf("ctable: union arity mismatch: %d vs %d", len(a.Schema), len(b.Schema))
	}
	out := &Table{Name: a.Name + "_u_" + b.Name, Schema: a.Schema}
	out.Tuples = append(out.Tuples, a.Tuples...)
	out.Tuples = append(out.Tuples, b.Tuples...)
	return out, nil
}

// Distinct implements C_distinct(R): duplicate data tuples coalesce into a
// single row whose condition is the disjunction of the duplicates'
// conditions (DNF). Output order follows first occurrence.
func Distinct(tb *Table) *Table {
	out := &Table{Name: tb.Name, Schema: tb.Schema}
	pos := map[string]int{}
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		k := t.dataKey()
		if j, seen := pos[k]; seen {
			out.Tuples[j].Cond = out.Tuples[j].Cond.Or(t.Cond)
			continue
		}
		pos[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, Tuple{Values: t.Values, Cond: t.Cond})
	}
	return out
}

// Not returns the negation of a DNF condition, re-normalized to DNF:
// NOT (C1 OR C2 ...) = NOT C1 AND NOT C2 ..., each NOT Ci being a
// disjunction of negated atoms, distributed back into DNF.
func Not(c cond.Condition) cond.Condition {
	if c.IsFalse() {
		return cond.TrueCondition()
	}
	out := cond.TrueCondition()
	for _, cl := range c.Clauses {
		out = out.And(cl.NegateToDNF())
		if out.IsFalse() {
			return out
		}
	}
	return out
}

// Difference implements C_(R-S) from Fig. 1: for each distinct tuple of R,
// conjoin the negation of the matching distinct(S) condition (or keep the
// tuple unchanged if S has no matching row).
func Difference(a, b *Table) (*Table, error) {
	if len(a.Schema) != len(b.Schema) {
		return nil, fmt.Errorf("ctable: difference arity mismatch: %d vs %d", len(a.Schema), len(b.Schema))
	}
	da := Distinct(a)
	db := Distinct(b)
	sCond := map[string]cond.Condition{}
	for i := range db.Tuples {
		sCond[db.Tuples[i].dataKey()] = db.Tuples[i].Cond
	}
	out := &Table{Name: a.Name + "_minus_" + b.Name, Schema: a.Schema}
	for i := range da.Tuples {
		t := &da.Tuples[i]
		pi, matched := sCond[t.dataKey()]
		if !matched {
			out.Tuples = append(out.Tuples, *t)
			continue
		}
		nc := t.Cond.And(Not(pi))
		nc = dropInconsistent(nc)
		if nc.IsFalse() {
			continue
		}
		out.Tuples = append(out.Tuples, Tuple{Values: t.Values, Cond: nc})
	}
	return out, nil
}

// GroupBy partitions tuples by deterministic key columns, returning the
// groups in first-occurrence order. Symbolic key cells are rejected: the
// paper considers grouping by (continuously) uncertain columns of doubtful
// value (§II-C).
func GroupBy(tb *Table, keyCols []int) ([]GroupRows, error) {
	for _, c := range keyCols {
		if c < 0 || c >= len(tb.Schema) {
			return nil, fmt.Errorf("ctable: group-by column %d out of range", c)
		}
	}
	var groups []GroupRows
	pos := map[string]int{}
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		var kb strings.Builder
		for _, c := range keyCols {
			v := t.Values[c]
			if v.IsSymbolic() {
				return nil, fmt.Errorf("ctable: cannot group by symbolic column %s", tb.Schema[c].Name)
			}
			kb.WriteString(v.key())
			kb.WriteByte('|')
		}
		k := kb.String()
		j, seen := pos[k]
		if !seen {
			j = len(groups)
			pos[k] = j
			keyVals := make([]Value, len(keyCols))
			for n, c := range keyCols {
				keyVals[n] = t.Values[c]
			}
			groups = append(groups, GroupRows{Key: keyVals})
		}
		groups[j].Rows = append(groups[j].Rows, i)
	}
	return groups, nil
}

// GroupRows is one group-by bucket: the key values plus indexes of member
// rows in the source table.
type GroupRows struct {
	Key  []Value
	Rows []int
}

// VarsOf collects every random variable occurring anywhere in the table
// (cells and conditions).
func VarsOf(tb *Table) map[expr.VarKey]*expr.Variable {
	set := map[expr.VarKey]*expr.Variable{}
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		for _, v := range t.Values {
			v.CollectVars(set)
		}
		t.Cond.CollectVars(set)
	}
	return set
}
