// Columnar batches: the unit of data exchange between vectorized query
// operators. A Batch holds ~1k rows as column-major Value slices plus a
// per-row local condition, with an optional selection vector so filters can
// drop rows without copying the surviving cells. Batches carry the same
// information as a []Tuple slice — operators produce identical rows in
// identical order through either representation.

package ctable

import "pip/internal/cond"

// Batch is a column-major block of c-table rows. Cols[c][i] is the cell of
// physical row i in column c; Conds[i] is row i's local condition. When Sel
// is non-nil it lists the physical indexes of the live rows, in order —
// logical row k is physical row Sel[k]. A nil Sel means all physical rows
// are live (dense).
//
// Ownership follows the Cursor convention: a batch returned by an operator
// is valid until that operator's next NextBatch call, so consumers either
// finish with it before pulling again or copy the rows out. Producers may
// therefore reuse batch memory across calls, and filters may edit Sel and
// Conds of an upstream batch in place.
type Batch struct {
	Cols  [][]Value
	Conds []cond.Condition
	Sel   []int
}

// NewBatch returns an empty dense batch of ncols columns with capacity for
// rows physical rows.
func NewBatch(ncols, rows int) *Batch {
	b := &Batch{Cols: make([][]Value, ncols), Conds: make([]cond.Condition, 0, rows)}
	for c := range b.Cols {
		b.Cols[c] = make([]Value, 0, rows)
	}
	return b
}

// Reset truncates the batch to zero rows, keeping column capacity, and
// clears the selection vector.
func (b *Batch) Reset() {
	for c := range b.Cols {
		b.Cols[c] = b.Cols[c][:0]
	}
	b.Conds = b.Conds[:0]
	b.Sel = nil
}

// Len returns the number of live (logical) rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Conds)
}

// RowIdx maps logical row k to its physical row index.
func (b *Batch) RowIdx(k int) int {
	if b.Sel != nil {
		return b.Sel[k]
	}
	return k
}

// At returns the cell of logical row k in column c.
func (b *Batch) At(c, k int) Value { return b.Cols[c][b.RowIdx(k)] }

// CondAt returns the local condition of logical row k.
func (b *Batch) CondAt(k int) cond.Condition { return b.Conds[b.RowIdx(k)] }

// Row gathers logical row k into a freshly allocated Tuple (safe to retain
// after the batch is reused).
func (b *Batch) Row(k int) Tuple {
	i := b.RowIdx(k)
	vals := make([]Value, len(b.Cols))
	for c := range b.Cols {
		vals[c] = b.Cols[c][i]
	}
	return Tuple{Values: vals, Cond: b.Conds[i]}
}

// GatherRow copies logical row k's cells into dst (which must have one slot
// per column) and returns the row's condition — the allocation-free variant
// of Row for operators with a reusable row scratch.
func (b *Batch) GatherRow(k int, dst []Value) cond.Condition {
	i := b.RowIdx(k)
	for c := range b.Cols {
		dst[c] = b.Cols[c][i]
	}
	return b.Conds[i]
}

// AppendRow appends a dense row, copying the cells. It must not be mixed
// with a non-nil Sel.
func (b *Batch) AppendRow(vals []Value, c cond.Condition) {
	for ci := range b.Cols {
		b.Cols[ci] = append(b.Cols[ci], vals[ci])
	}
	b.Conds = append(b.Conds, c)
}

// AppendTuple appends a dense row from a Tuple, copying the cells.
func (b *Batch) AppendTuple(t *Tuple) { b.AppendRow(t.Values, t.Cond) }

// Head returns a view of the first n logical rows (no copying; the view
// shares the batch's storage).
func (b *Batch) Head(n int) *Batch {
	if n >= b.Len() {
		return b
	}
	if b.Sel != nil {
		return &Batch{Cols: b.Cols, Conds: b.Conds, Sel: b.Sel[:n]}
	}
	out := &Batch{Cols: make([][]Value, len(b.Cols)), Conds: b.Conds[:n]}
	for c := range b.Cols {
		out.Cols[c] = b.Cols[c][:n]
	}
	return out
}
