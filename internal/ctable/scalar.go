package ctable

import (
	"fmt"

	"pip/internal/cond"
	"pip/internal/expr"
)

// Scalar is a target-clause scalar expression over a tuple: column
// references, literals and arithmetic. Resolving a Scalar against a tuple
// yields a Value; if any referenced column is symbolic the result is a
// symbolic equation (operator overloading of paper §V-A — "arbitrary
// equations may be constructed in this way").
type Scalar interface {
	// Resolve evaluates the scalar against a tuple.
	Resolve(t *Tuple) (Value, error)
	// String renders the scalar for display/planning output.
	String() string
}

// Col references a column by position.
type Col int

// Resolve implements Scalar.
func (c Col) Resolve(t *Tuple) (Value, error) {
	if int(c) < 0 || int(c) >= len(t.Values) {
		return Value{}, fmt.Errorf("ctable: column index %d out of range (%d columns)", c, len(t.Values))
	}
	return t.Values[c], nil
}

// String implements Scalar.
func (c Col) String() string { return fmt.Sprintf("$%d", int(c)) }

// Lit is a literal scalar.
type Lit struct{ V Value }

// LitFloat wraps a float literal.
func LitFloat(f float64) Lit { return Lit{Float(f)} }

// LitString wraps a string literal.
func LitString(s string) Lit { return Lit{String_(s)} }

// Resolve implements Scalar.
func (l Lit) Resolve(*Tuple) (Value, error) { return l.V, nil }

// String implements Scalar.
func (l Lit) String() string { return l.V.String() }

// Arith is an arithmetic combination of two scalars.
type Arith struct {
	Op          expr.Op
	Left, Right Scalar
}

// Resolve implements Scalar: deterministic operands fold to constants;
// symbolic operands build an equation tree.
func (a Arith) Resolve(t *Tuple) (Value, error) {
	l, err := a.Left.Resolve(t)
	if err != nil {
		return Value{}, err
	}
	r, err := a.Right.Resolve(t)
	if err != nil {
		return Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	le, ok := l.AsExpr()
	if !ok {
		return Value{}, fmt.Errorf("ctable: non-numeric operand %s in arithmetic", l)
	}
	re, ok := r.AsExpr()
	if !ok {
		return Value{}, fmt.Errorf("ctable: non-numeric operand %s in arithmetic", r)
	}
	switch a.Op {
	case expr.OpAdd:
		return Symbolic(expr.Add(le, re)), nil
	case expr.OpSub:
		return Symbolic(expr.Sub(le, re)), nil
	case expr.OpMul:
		return Symbolic(expr.Mul(le, re)), nil
	case expr.OpDiv:
		return Symbolic(expr.Div(le, re)), nil
	default:
		return Value{}, fmt.Errorf("ctable: unknown arithmetic op %v", a.Op)
	}
}

// String implements Scalar.
func (a Arith) String() string {
	return "(" + a.Left.String() + " " + a.Op.String() + " " + a.Right.String() + ")"
}

// ScalarFunc adapts an arbitrary function as a Scalar; used by generators
// and tests for computed columns beyond basic arithmetic.
type ScalarFunc struct {
	Name string
	Fn   func(t *Tuple) (Value, error)
}

// Resolve implements Scalar.
func (s ScalarFunc) Resolve(t *Tuple) (Value, error) { return s.Fn(t) }

// String implements Scalar.
func (s ScalarFunc) String() string { return s.Name + "(...)" }

// ---------------------------------------------------------------------------
// Predicates

// PredOutcome is the tri-state result of evaluating a predicate against a
// tuple: definitely false (drop the tuple), definitely true (keep it
// unchanged), or symbolic (keep it, conjoining constraint atoms onto its
// local condition — the CTYPE rewrite of §V-A).
type PredOutcome int

// Predicate outcomes.
const (
	PredFalse PredOutcome = iota
	PredTrue
	PredSymbolic
)

// Predicate evaluates a selection predicate against a tuple.
type Predicate interface {
	Eval(t *Tuple) (PredOutcome, cond.Clause, error)
	String() string
}

// Compare is the structured comparison predicate Left op Right. If both
// sides resolve deterministically the comparison is decided on the spot;
// if either side is symbolic, the comparison becomes a constraint atom.
type Compare struct {
	Op          cond.CmpOp
	Left, Right Scalar
}

// Eval implements Predicate.
func (c Compare) Eval(t *Tuple) (PredOutcome, cond.Clause, error) {
	l, err := c.Left.Resolve(t)
	if err != nil {
		return PredFalse, nil, err
	}
	r, err := c.Right.Resolve(t)
	if err != nil {
		return PredFalse, nil, err
	}
	// NULL comparisons are false (SQL three-valued logic collapsed to
	// two-valued, which is all the engine needs).
	if l.IsNull() || r.IsNull() {
		return PredFalse, nil, nil
	}
	if !l.IsSymbolic() && !r.IsSymbolic() {
		cmp, ok := l.Compare(r)
		if !ok {
			return PredFalse, nil, fmt.Errorf("ctable: incomparable values %s and %s", l, r)
		}
		if detHolds(c.Op, cmp) {
			return PredTrue, nil, nil
		}
		return PredFalse, nil, nil
	}
	le, ok := l.AsExpr()
	if !ok {
		return PredFalse, nil, fmt.Errorf("ctable: non-numeric symbolic comparison operand %s", l)
	}
	re, ok := r.AsExpr()
	if !ok {
		return PredFalse, nil, fmt.Errorf("ctable: non-numeric symbolic comparison operand %s", r)
	}
	return PredSymbolic, cond.Clause{cond.NewAtom(le, c.Op, re)}, nil
}

func detHolds(op cond.CmpOp, cmp int) bool {
	switch op {
	case cond.EQ:
		return cmp == 0
	case cond.NEQ:
		return cmp != 0
	case cond.LT:
		return cmp < 0
	case cond.LE:
		return cmp <= 0
	case cond.GT:
		return cmp > 0
	case cond.GE:
		return cmp >= 0
	default:
		return false
	}
}

// String implements Predicate.
func (c Compare) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// AndPred is a conjunction of predicates.
type AndPred []Predicate

// Eval implements Predicate: any false conjunct makes the row false; all
// symbolic atoms accumulate.
func (ps AndPred) Eval(t *Tuple) (PredOutcome, cond.Clause, error) {
	var atoms cond.Clause
	outcome := PredTrue
	for _, p := range ps {
		o, c, err := p.Eval(t)
		if err != nil {
			return PredFalse, nil, err
		}
		switch o {
		case PredFalse:
			return PredFalse, nil, nil
		case PredSymbolic:
			outcome = PredSymbolic
			atoms = append(atoms, c...)
		}
	}
	return outcome, atoms, nil
}

// String implements Predicate.
func (ps AndPred) String() string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += " AND "
		}
		out += p.String()
	}
	return out
}

// PredFuncAdapter lifts a deterministic row function (e.g. a string LIKE
// filter) into a Predicate.
type PredFuncAdapter struct {
	Name string
	Fn   func(t *Tuple) (bool, error)
}

// Eval implements Predicate.
func (p PredFuncAdapter) Eval(t *Tuple) (PredOutcome, cond.Clause, error) {
	ok, err := p.Fn(t)
	if err != nil {
		return PredFalse, nil, err
	}
	if ok {
		return PredTrue, nil, nil
	}
	return PredFalse, nil, nil
}

// String implements Predicate.
func (p PredFuncAdapter) String() string { return p.Name }
