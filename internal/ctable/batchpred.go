package ctable

import "pip/internal/cond"

// This file is the columnar twin of ApplyPredicate: a selection predicate
// compiled once per query into a flat conjunct list that evaluates straight
// against Batch columns, with no per-row gather, no Tuple construction and
// no interface boxing. It covers the deterministic comparison fragment —
// Compare conjuncts whose operands are column references or literals —
// which is how equi-join residuals and constant filters arrive after
// planning. Rows that leave the fragment at runtime (a symbolic operand, an
// incomparable pair) are reported back to the caller, which must re-run the
// shared row-at-a-time unit on exactly that row so outcomes, condition
// rewrites and error messages stay bit-identical to the row engine.

// batchCmp is one compiled Compare conjunct. A negative column index means
// the corresponding literal value is used instead.
type batchCmp struct {
	op         cond.CmpOp
	lcol, rcol int
	lv, rv     Value
}

// BatchPred is a predicate compiled for columnar evaluation. The zero value
// is unusable; construct with CompileBatchPred.
type BatchPred struct {
	cmps []batchCmp
}

// CompileBatchPred compiles p for columnar evaluation. ok is false when p
// contains a conjunct outside the Compare(Col|Lit, Col|Lit) fragment, in
// which case the caller must stay on the row-at-a-time path.
func CompileBatchPred(p AndPred) (*BatchPred, bool) {
	bp := &BatchPred{cmps: make([]batchCmp, 0, len(p))}
	for _, conj := range p {
		cmp, isCmp := conj.(Compare)
		if !isCmp {
			return nil, false
		}
		bc := batchCmp{op: cmp.Op, lcol: -1, rcol: -1}
		switch s := cmp.Left.(type) {
		case Col:
			bc.lcol = int(s)
		case Lit:
			bc.lv = s.V
		default:
			return nil, false
		}
		switch s := cmp.Right.(type) {
		case Col:
			bc.rcol = int(s)
		case Lit:
			bc.rv = s.V
		default:
			return nil, false
		}
		bp.cmps = append(bp.cmps, bc)
	}
	return bp, true
}

// EvalRow evaluates the conjunction against physical row phys of b. ok is
// false when the row needs the row-at-a-time unit (a symbolic operand or an
// incomparable pair — the latter so the fallback reproduces the row
// engine's exact error). With ok true, keep reports the deterministic
// verdict; a kept row's condition is untouched, exactly as ApplyPredicate
// leaves a PredTrue row. Conjuncts short-circuit in predicate order, and
// each conjunct checks NULL before symbolic, mirroring Compare.Eval.
func (bp *BatchPred) EvalRow(b *Batch, phys int) (keep, ok bool) {
	for i := range bp.cmps {
		c := &bp.cmps[i]
		l := &c.lv
		if c.lcol >= 0 {
			if c.lcol >= len(b.Cols) {
				return false, false
			}
			l = &b.Cols[c.lcol][phys]
		}
		r := &c.rv
		if c.rcol >= 0 {
			if c.rcol >= len(b.Cols) {
				return false, false
			}
			r = &b.Cols[c.rcol][phys]
		}
		if l.Kind == KindNull || r.Kind == KindNull {
			return false, true
		}
		if l.Kind == KindExpr || r.Kind == KindExpr {
			return false, false
		}
		// Numeric pairs dominate filter traffic; compare them in place
		// (Value.Compare's exact numeric arm) without copying the 64-byte
		// cells. Everything else takes the general path.
		var cmp int
		if (l.Kind == KindFloat || l.Kind == KindInt) &&
			(r.Kind == KindFloat || r.Kind == KindInt) {
			a, z := l.F, r.F
			if l.Kind == KindInt {
				a = float64(l.I)
			}
			if r.Kind == KindInt {
				z = float64(r.I)
			}
			switch {
			case a < z:
				cmp = -1
			case a > z:
				cmp = 1
			}
		} else {
			var comparable bool
			cmp, comparable = l.Compare(*r)
			if !comparable {
				return false, false
			}
		}
		if !detHolds(c.op, cmp) {
			return false, true
		}
	}
	return true, true
}
