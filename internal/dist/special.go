package dist

import "math"

// Special functions backing the analytic capabilities: without these,
// Normal/Poisson/Gamma/Beta would be sample-only classes and the exact-CDF
// and inverse-CDF strategies of Algorithm 4.3 could never fire for them.

// ErfInv returns the inverse error function: ErfInv(Erf(x)) = x. It is
// accurate to full double precision over (-1, 1) via a Winitzki-style
// initial guess polished with two Newton steps on math.Erf.
func ErfInv(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return math.NaN()
	case x <= -1:
		return math.Inf(-1)
	case x >= 1:
		return math.Inf(1)
	case x == 0:
		return 0
	}
	// Winitzki (2008) approximation, max error ~2e-3 — plenty for a Newton
	// starting point.
	const a = 0.147
	ln := math.Log1p(-x * x)
	t := 2/(math.Pi*a) + ln/2
	g := math.Sqrt(math.Sqrt(t*t-ln/a) - t)
	if x < 0 {
		g = -g
	}
	// Newton on f(y) = erf(y) - x with f'(y) = (2/sqrt(pi)) exp(-y^2);
	// three quadratic steps take the ~2e-3 guess to machine precision even
	// deep in the tails.
	const invDerivScale = 0.8862269254527580136490837416705726 // sqrt(pi)/2
	for i := 0; i < 3; i++ {
		g -= (math.Erf(g) - x) * invDerivScale * math.Exp(g*g)
	}
	return g
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// normInvCDF is the standard normal quantile function.
func normInvCDF(u float64) float64 {
	return math.Sqrt2 * ErfInv(2*u-1)
}

// lgamma is ln Γ(x) for x > 0 (sign dropped; all callers pass positives).
func lgamma(x float64) float64 {
	l, _ := math.Lgamma(x)
	return l
}

// regGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), the CDF of Gamma(shape a, rate 1). Series
// expansion for x < a+1, Lentz continued fraction otherwise (Numerical
// Recipes gammp/gammq).
func regGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContFrac(a, x)
	}
}

// gammaSeries evaluates P(a, x) by its power series; converges fast for
// x < a+1.
func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

// gammaContFrac evaluates Q(a, x) = 1 - P(a, x) by modified Lentz
// continued fraction; converges fast for x >= a+1.
func gammaContFrac(a, x float64) float64 {
	const (
		maxIter = 500
		tiny    = 1e-300
	)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

// regIncBeta returns the regularized incomplete beta function
// I_x(a, b) — the CDF of Beta(a, b) at x — via the symmetric continued
// fraction (Numerical Recipes betai/betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	front := math.Exp(lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContFrac(a, b, x) / a
	}
	return 1 - front*betaContFrac(b, a, 1-x)/b
}

// betaContFrac is the continued fraction for the incomplete beta function,
// evaluated with the modified Lentz method.
func betaContFrac(a, b, x float64) float64 {
	const (
		maxIter = 500
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return h
}

// invCDFBisect inverts a monotone CDF over (lo, hi) by bisection. It is
// the generic quantile fallback for classes (Gamma, Beta) whose inverse has
// no convenient closed form; ~90 halvings reach full double precision.
func invCDFBisect(cdf func(float64) float64, u, lo, hi float64) float64 {
	if u <= 0 {
		return lo
	}
	if u >= 1 {
		return hi
	}
	// Expand an unbounded upper edge geometrically until it brackets u.
	if math.IsInf(hi, 1) {
		hi = 1
		for cdf(hi) < u {
			hi *= 2
			if math.IsInf(hi, 1) {
				return hi
			}
		}
	}
	if math.IsInf(lo, -1) {
		lo = -1
		for cdf(lo) > u {
			lo *= 2
			if math.IsInf(lo, -1) {
				return lo
			}
		}
	}
	for i := 0; i < 200; i++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // interval no longer splittable in float64
		}
		if cdf(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}
