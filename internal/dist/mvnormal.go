package dist

import (
	"fmt"
	"math"

	"pip/internal/prng"
)

// MVNormal is the multivariate normal distribution. Its parameter vector is
// the flat encoding produced by MVNormalParams:
//
//	[ n, mean_0..mean_{n-1}, L_00, L_10, L_11, L_20, ..., L_{n-1,n-1} ]
//
// where L is the lower-triangular Cholesky factor of the covariance matrix
// stored row-major. A joint draw is mean + L z for z ~ N(0, I), so the
// covariance of the draw is L Lᵀ; components are addressed by variable
// subscript and drawn together from one seed (paper §III-B), which is what
// keeps their correlations intact no matter where each component appears in
// a query.
type MVNormal struct{}

// Name implements Class.
func (MVNormal) Name() string { return "MVNormal" }

// CheckParams implements Class.
func (MVNormal) CheckParams(params []float64) error {
	if len(params) == 0 {
		return fmt.Errorf("empty parameter vector; use MVNormalParams")
	}
	n := int(params[0])
	if float64(n) != params[0] || n < 1 {
		return fmt.Errorf("dimension %g must be a positive integer", params[0])
	}
	want := 1 + n + n*(n+1)/2
	if len(params) != want {
		return fmt.Errorf("want %d parameters for dimension %d, got %d", want, n, len(params))
	}
	for i, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("parameter %d is %v", i, p)
		}
	}
	// Positive diagonal keeps the factor full-rank (a semidefinite joint
	// would silently collapse components onto each other).
	off := 1 + n
	for i := 0; i < n; i++ {
		diag := params[off+i*(i+1)/2+i]
		if diag <= 0 {
			return fmt.Errorf("cholesky diagonal entry %d is %g; must be positive", i, diag)
		}
	}
	return nil
}

// Dim implements Multivariater.
func (MVNormal) Dim(params []float64) int { return int(params[0]) }

// GenerateJoint implements Multivariater: mean + L z with z ~ N(0, I).
func (MVNormal) GenerateJoint(params []float64, r *prng.Rand) []float64 {
	n := int(params[0])
	mean := params[1 : 1+n]
	chol := params[1+n:]
	z := make([]float64, n)
	for i := range z {
		z[i] = r.NormFloat64()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v := mean[i]
		row := chol[i*(i+1)/2:]
		for j := 0; j <= i; j++ {
			v += row[j] * z[j]
		}
		out[i] = v
	}
	return out
}

// Generate implements Class by returning component 0 of a joint draw; the
// sampler routes multivariate variables through GenerateJoint instead.
func (m MVNormal) Generate(params []float64, r *prng.Rand) float64 {
	return m.GenerateJoint(params, r)[0]
}

// MVNormalParams flattens a mean vector and a lower-triangular Cholesky
// factor (as returned by CholeskyFromCovariance) into the parameter
// encoding of MVNormal. Entries of chol above the diagonal are ignored.
func MVNormalParams(mean []float64, chol [][]float64) []float64 {
	n := len(mean)
	params := make([]float64, 0, 1+n+n*(n+1)/2)
	params = append(params, float64(n))
	params = append(params, mean...)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			params = append(params, chol[i][j])
		}
	}
	return params
}

// CholeskyFromCovariance factors a symmetric positive-definite covariance
// matrix into its lower-triangular Cholesky factor L (cov = L Lᵀ) using the
// Cholesky–Banachiewicz recurrence. It errors on non-square, asymmetric or
// non-positive-definite input.
func CholeskyFromCovariance(cov [][]float64) ([][]float64, error) {
	n := len(cov)
	if n == 0 {
		return nil, fmt.Errorf("dist: empty covariance matrix")
	}
	for i, row := range cov {
		if len(row) != n {
			return nil, fmt.Errorf("dist: covariance row %d has %d entries, want %d", i, len(row), n)
		}
	}
	const symTol = 1e-9
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			scale := math.Max(1, math.Max(math.Abs(cov[i][j]), math.Abs(cov[j][i])))
			if math.Abs(cov[i][j]-cov[j][i]) > symTol*scale {
				return nil, fmt.Errorf("dist: covariance not symmetric at (%d, %d): %g vs %g",
					i, j, cov[i][j], cov[j][i])
			}
		}
	}
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := cov[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("dist: covariance not positive definite (pivot %d is %g)", i, sum)
				}
				l[i][j] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}
