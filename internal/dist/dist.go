// Package dist implements PIP's distribution classes (paper §III-B, §V-A):
// the parametrized probability distributions random variables are drawn
// from. A distribution class is more than a black-box VG function — PIP's
// goal-directed integration strategies (Algorithm 4.3) interrogate classes
// for analytic capabilities:
//
//   - Generate is the only mandatory capability: given parameters and a
//     seeded generator, produce one draw. A class exposing nothing else
//     behaves like an MCDB-style VG function and restricts the sampler to
//     naive rejection.
//   - PDFer unlocks the Metropolis random-walk fallback (§IV-A-d), which
//     needs pointwise density evaluation for its acceptance ratio.
//   - CDFer unlocks exact integration of single-variable interval
//     constraints (Algorithm 4.3 line 32) — no sampling at all.
//   - InvCDFer (together with CDFer) unlocks constrained direct generation:
//     draw u uniformly in [CDF(lo), CDF(hi)] and map through the inverse
//     CDF, so every sample satisfies the constraint by construction.
//   - Multivariater marks joint distributions whose components are drawn
//     together (e.g. MVNormal); components share one variable id and are
//     sampled from one seed so correlations survive.
//
// Capabilities are discovered by interface assertion on the Class value, so
// adding a new class with only Generate degrades gracefully everywhere.
//
// Instances pair a class with its concrete parameter vector and carry the
// convenience methods (Mean, Support, CDF, ...) used throughout the engine.
// All sampling draws through internal/prng: equal seeds give bit-identical
// worlds.
package dist

import (
	"fmt"
	"math"
	"strings"

	"pip/internal/prng"
)

// Class is a distribution class: a named, parametrized recipe for a random
// variable. Implementations are small value types (Normal{}, Uniform{}, ...)
// safe for concurrent use; all state lives in the parameter vector.
type Class interface {
	// Name returns the canonical registry name (e.g. "Normal").
	Name() string
	// CheckParams validates a parameter vector for this class.
	CheckParams(params []float64) error
	// Generate draws one value using the given generator. For multivariate
	// classes this returns component 0; use Multivariater.GenerateJoint for
	// the full vector.
	Generate(params []float64, r *prng.Rand) float64
}

// PDFer is implemented by classes that can evaluate their density (or, for
// discrete classes, probability mass) at a point.
type PDFer interface {
	PDF(params []float64, x float64) float64
}

// CDFer is implemented by classes with a computable cumulative distribution
// function P[X <= x]. For integer-valued classes the CDF is the
// right-continuous step function evaluated at floor(x).
type CDFer interface {
	CDF(params []float64, x float64) float64
}

// InvCDFer is implemented by classes with a computable inverse CDF
// (quantile function). For discrete classes the generalized inverse is
// used: the smallest support point x with CDF(x) >= u.
type InvCDFer interface {
	InvCDF(params []float64, u float64) float64
}

// Meaner is implemented by classes with a closed-form mean.
type Meaner interface {
	Mean(params []float64) float64
}

// Variancer is implemented by classes with a closed-form variance.
type Variancer interface {
	Variance(params []float64) float64
}

// Supporter is implemented by classes whose support is a proper subset of
// the reals; the consistency checker seeds interval bounds from it.
type Supporter interface {
	Support(params []float64) (lo, hi float64)
}

// Discreter marks classes with finite discrete support, where equality
// atoms (X = c) carry positive probability mass. Countably-infinite
// integer-valued classes (Poisson) deliberately do not implement it; they
// implement IntegerValued instead, which is what the sampler checks where
// integer semantics matter.
type Discreter interface {
	Discrete(params []float64) bool
}

// IntegerValued marks classes whose samples are always integers (finite or
// countable support). The sampler uses it to integrate closed integer
// intervals against step-function CDFs: [lo, hi] carries mass
// CDF(hi) - CDF(ceil(lo)-1), not CDF(hi) - CDF(lo). Extension classes
// registered via Register must implement it to get discrete interval
// semantics.
type IntegerValued interface {
	IntegerValued(params []float64) bool
}

// Multivariater is implemented by joint distribution classes. Component i
// of a joint draw is addressed by variable subscript i.
type Multivariater interface {
	Class
	// Dim returns the number of components for the parameter vector.
	Dim(params []float64) int
	// GenerateJoint draws one joint vector of Dim components.
	GenerateJoint(params []float64, r *prng.Rand) []float64
}

// Instance is a distribution class bound to a concrete parameter vector —
// what a random variable actually carries (paper §III-B: "each variable is
// associated with a parametrized distribution instance").
type Instance struct {
	Class  Class
	Params []float64
}

// NewInstance validates params against the class and binds them.
func NewInstance(c Class, params ...float64) (Instance, error) {
	if c == nil {
		return Instance{}, fmt.Errorf("dist: nil class")
	}
	if err := c.CheckParams(params); err != nil {
		return Instance{}, fmt.Errorf("dist: %s: %w", c.Name(), err)
	}
	return Instance{Class: c, Params: params}, nil
}

// MustInstance is NewInstance panicking on invalid parameters; for tests
// and straight-line setup code.
func MustInstance(c Class, params ...float64) Instance {
	in, err := NewInstance(c, params...)
	if err != nil {
		panic(err)
	}
	return in
}

// Generate draws one value.
func (in Instance) Generate(r *prng.Rand) float64 {
	return in.Class.Generate(in.Params, r)
}

// PDF evaluates the density (mass) at x; ok is false when the class does
// not expose a PDF.
func (in Instance) PDF(x float64) (float64, bool) {
	if p, has := in.Class.(PDFer); has {
		return p.PDF(in.Params, x), true
	}
	return math.NaN(), false
}

// CDF evaluates P[X <= x]; ok is false when the class does not expose a CDF.
func (in Instance) CDF(x float64) (float64, bool) {
	if c, has := in.Class.(CDFer); has {
		return c.CDF(in.Params, x), true
	}
	return math.NaN(), false
}

// InvCDF evaluates the quantile function at u in [0, 1]; ok is false when
// the class does not expose an inverse CDF.
func (in Instance) InvCDF(u float64) (float64, bool) {
	if c, has := in.Class.(InvCDFer); has {
		return c.InvCDF(in.Params, u), true
	}
	return math.NaN(), false
}

// Mean returns the closed-form mean; ok is false when unavailable (e.g.
// black-box and multivariate classes).
func (in Instance) Mean() (float64, bool) {
	if m, has := in.Class.(Meaner); has {
		return m.Mean(in.Params), true
	}
	return math.NaN(), false
}

// Variance returns the closed-form variance; ok is false when unavailable.
func (in Instance) Variance() (float64, bool) {
	if v, has := in.Class.(Variancer); has {
		return v.Variance(in.Params), true
	}
	return math.NaN(), false
}

// Support returns the distribution's support interval, defaulting to the
// whole real line for classes that do not declare one.
func (in Instance) Support() (lo, hi float64) {
	if s, has := in.Class.(Supporter); has {
		return s.Support(in.Params)
	}
	return math.Inf(-1), math.Inf(1)
}

// Discrete reports whether the instance has finite discrete support (see
// Discreter for the Poisson caveat).
func (in Instance) Discrete() bool {
	if d, has := in.Class.(Discreter); has {
		return d.Discrete(in.Params)
	}
	return false
}

// IntegerValued reports whether every sample of the instance is an
// integer; finite-support discrete classes count as integer-valued even
// if they predate the IntegerValued interface.
func (in Instance) IntegerValued() bool {
	if iv, has := in.Class.(IntegerValued); has {
		return iv.IntegerValued(in.Params)
	}
	return in.Discrete()
}

// String renders the instance as Name(p1, p2, ...).
func (in Instance) String() string {
	if in.Class == nil {
		return "<nil dist>"
	}
	parts := make([]string, len(in.Params))
	for i, p := range in.Params {
		parts[i] = fmt.Sprintf("%g", p)
	}
	return in.Class.Name() + "(" + strings.Join(parts, ", ") + ")"
}

// needParams is the shared arity check used by CheckParams implementations.
func needParams(params []float64, n int, usage string) error {
	if len(params) != n {
		return fmt.Errorf("want %d parameters (%s), got %d", n, usage, len(params))
	}
	for i, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("parameter %d (%s) is %v", i, usage, p)
		}
	}
	return nil
}
