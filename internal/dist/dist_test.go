package dist

import (
	"math"
	"testing"

	"pip/internal/prng"
)

// univariateCases lists every registered univariate class with valid
// example parameters, used by the table-driven capability tests below.
var univariateCases = []struct {
	name   string
	class  Class
	params []float64
}{
	{"Normal", Normal{}, []float64{3, 2}},
	{"Uniform", Uniform{}, []float64{-1, 4}},
	{"Exponential", Exponential{}, []float64{0.5}},
	{"Lognormal", Lognormal{}, []float64{0.25, 0.5}},
	{"Gamma", Gamma{}, []float64{2.5, 1.5}},
	{"Beta", Beta{}, []float64{2, 5}},
	{"Poisson", Poisson{}, []float64{6}},
	{"Bernoulli", Bernoulli{}, []float64{0.3}},
	{"DiscreteUniform", DiscreteUniform{}, []float64{2, 11}},
	{"Categorical", Categorical{}, []float64{0.2, 0.5, 0.3}},
}

func TestRegistryCoversAllNames(t *testing.T) {
	names := Names()
	if len(names) < 9 {
		t.Fatalf("registry has %d classes, want >= 9: %v", len(names), names)
	}
	for _, n := range names {
		c, ok := Lookup(n)
		if !ok {
			t.Fatalf("Names() lists %q but Lookup misses it", n)
		}
		if c.Name() != n {
			t.Fatalf("class registered as %q reports Name() %q", n, c.Name())
		}
	}
	// Case-insensitive lookup is what the SQL layer relies on.
	if _, ok := Lookup("normal"); !ok {
		t.Fatal("lowercase lookup failed")
	}
	if _, ok := Lookup("NORMAL"); !ok {
		t.Fatal("uppercase lookup failed")
	}
	if _, ok := Lookup("NoSuchClass"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestEveryNamedClassIsCreatable(t *testing.T) {
	// Valid parameters per registered name; keep in sync with the registry.
	params := map[string][]float64{
		"MVNormal": MVNormalParams([]float64{0, 0}, [][]float64{{1, 0}, {0, 1}}),
	}
	for _, c := range univariateCases {
		params[c.name] = c.params
	}
	for _, n := range Names() {
		p, ok := params[n]
		if !ok {
			t.Fatalf("no test parameters for registered class %q", n)
		}
		class, _ := Lookup(n)
		in, err := NewInstance(class, p...)
		if err != nil {
			t.Fatalf("NewInstance(%s): %v", n, err)
		}
		v := in.Generate(prng.New(1))
		if math.IsNaN(v) {
			t.Fatalf("%s generated NaN", n)
		}
	}
}

func TestCheckParamsRejectsBadParams(t *testing.T) {
	bad := []struct {
		class  Class
		params []float64
	}{
		{Normal{}, []float64{0}},            // arity
		{Normal{}, []float64{0, 0}},         // sigma = 0
		{Normal{}, []float64{0, -1}},        // sigma < 0
		{Normal{}, []float64{math.NaN(), 1}},
		{Uniform{}, []float64{2, 2}},        // empty interval
		{Uniform{}, []float64{3, 1}},        // inverted
		{Exponential{}, []float64{0}},       // rate = 0
		{Exponential{}, []float64{}},        // arity
		{Lognormal{}, []float64{0, 0}},      // sigma = 0
		{Gamma{}, []float64{0, 1}},          // shape = 0
		{Gamma{}, []float64{1, 0}},          // rate = 0
		{Beta{}, []float64{0, 1}},           // alpha = 0
		{Poisson{}, []float64{0}},           // lambda = 0
		{Bernoulli{}, []float64{1.5}},       // p > 1
		{Bernoulli{}, []float64{-0.1}},      // p < 0
		{DiscreteUniform{}, []float64{0.5, 2}}, // non-integer bound
		{DiscreteUniform{}, []float64{5, 2}},   // inverted
		{Categorical{}, []float64{}},        // no weights
		{Categorical{}, []float64{0, 0}},    // zero total
		{Categorical{}, []float64{1, -1}},   // negative weight
		{MVNormal{}, []float64{2, 0, 0, 1}}, // truncated vector
	}
	for _, c := range bad {
		if _, err := NewInstance(c.class, c.params...); err == nil {
			t.Errorf("%s%v: bad parameters accepted", c.class.Name(), c.params)
		}
	}
}

// TestCDFInvCDFRoundTrip: for every class exposing both capabilities,
// InvCDF(CDF) must be the identity on continuous supports and the
// generalized inverse (smallest support point with CDF >= u) on discrete
// ones.
func TestCDFInvCDFRoundTrip(t *testing.T) {
	quantiles := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		_, hasCDF := c.class.(CDFer)
		_, hasInv := c.class.(InvCDFer)
		if !hasCDF || !hasInv {
			t.Errorf("%s: expected full CDF/InvCDF capability", c.name)
			continue
		}
		for _, u := range quantiles {
			x, _ := in.InvCDF(u)
			v, _ := in.CDF(x)
			if in.Discrete() || c.name == "Poisson" {
				// Generalized inverse: CDF(x) >= u and CDF(x-1) < u.
				if v < u-1e-12 {
					t.Errorf("%s: CDF(InvCDF(%g)) = %g < u", c.name, u, v)
				}
				if prev, _ := in.CDF(x - 1); prev >= u && x > 0 {
					t.Errorf("%s: InvCDF(%g) = %g is not minimal (CDF(x-1) = %g)",
						c.name, u, x, prev)
				}
				continue
			}
			if math.Abs(v-u) > 1e-9 {
				t.Errorf("%s: CDF(InvCDF(%g)) = %g, drift %g", c.name, u, v, math.Abs(v-u))
			}
		}
	}
}

// TestMomentsMatchSampleEstimates: closed-form mean/variance must agree
// with 10k-sample estimates under a fixed seed within 5 standard errors.
func TestMomentsMatchSampleEstimates(t *testing.T) {
	const n = 10000
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		mean, okM := in.Mean()
		variance, okV := in.Variance()
		if !okM || !okV {
			t.Errorf("%s: expected closed-form mean and variance", c.name)
			continue
		}
		r := prng.NewKeyed(0xD157, 42)
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := in.Generate(r)
			sum += v
			sumSq += v * v
		}
		m := sum / n
		v := sumSq/n - m*m
		se := math.Sqrt(variance / n)
		if math.Abs(m-mean) > 5*se+1e-12 {
			t.Errorf("%s: sample mean %g vs closed form %g (se %g)", c.name, m, mean, se)
		}
		// Variance estimator tolerance: loose relative bound; heavy-tailed
		// classes (Lognormal) wander more.
		if math.Abs(v-variance) > 0.2*variance+5*se {
			t.Errorf("%s: sample variance %g vs closed form %g", c.name, v, variance)
		}
	}
}

// TestCDFMatchesEmpirical cross-validates each analytic CDF against the
// empirical CDF of its own sampler (a coarse Kolmogorov–Smirnov check, cf.
// density-estimation validation).
func TestCDFMatchesEmpirical(t *testing.T) {
	const n = 20000
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		r := prng.NewKeyed(0xCDF, 7)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = in.Generate(r)
		}
		for _, u := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			x, _ := in.InvCDF(u)
			want, _ := in.CDF(x)
			got := 0.0
			for _, s := range samples {
				if s <= x {
					got++
				}
			}
			got /= n
			// KS-style tolerance ~ 5/sqrt(n) plus slack for discrete steps.
			if math.Abs(got-want) > 5/math.Sqrt(n)+1e-3 {
				t.Errorf("%s: empirical CDF(%g) = %g vs analytic %g", c.name, x, got, want)
			}
		}
	}
}

// TestDeterminism: equal seeds must give bit-identical draws, and distinct
// seeds distinct streams — the contract the whole consistent-sampling
// scheme (paper §III-B) rests on.
func TestDeterminism(t *testing.T) {
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		a := prng.NewKeyed(11, 22, 33)
		b := prng.NewKeyed(11, 22, 33)
		other := prng.NewKeyed(11, 22, 34)
		diverged := false
		for i := 0; i < 100; i++ {
			va, vb := in.Generate(a), in.Generate(b)
			if va != vb {
				t.Fatalf("%s: same seed diverged at draw %d: %v vs %v", c.name, i, va, vb)
			}
			if va != in.Generate(other) {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds produced identical 100-draw streams", c.name)
		}
	}
	// Joint draws are deterministic too.
	l, err := CholeskyFromCovariance([][]float64{{2, 0.3}, {0.3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	in := MustInstance(MVNormal{}, MVNormalParams([]float64{1, -1}, l)...)
	mv := in.Class.(Multivariater)
	va := mv.GenerateJoint(in.Params, prng.NewKeyed(5, 6))
	vb := mv.GenerateJoint(in.Params, prng.NewKeyed(5, 6))
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("MVNormal joint draw diverged: %v vs %v", va, vb)
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integral of the PDF over [q10, q90] must match the CDF
	// mass of the interval for continuous classes.
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		if in.Discrete() || c.name == "Poisson" {
			continue
		}
		lo, _ := in.InvCDF(0.1)
		hi, _ := in.InvCDF(0.9)
		const steps = 20000
		h := (hi - lo) / steps
		integral := 0.0
		for i := 0; i <= steps; i++ {
			p, ok := in.PDF(lo + float64(i)*h)
			if !ok {
				t.Fatalf("%s: no PDF", c.name)
			}
			w := h
			if i == 0 || i == steps {
				w = h / 2
			}
			integral += p * w
		}
		cLo, _ := in.CDF(lo)
		cHi, _ := in.CDF(hi)
		if math.Abs(integral-(cHi-cLo)) > 1e-4 {
			t.Errorf("%s: integral(PDF) = %g vs CDF mass %g", c.name, integral, cHi-cLo)
		}
	}
}

func TestIntegerValuedCapability(t *testing.T) {
	integer := map[string]bool{
		"Poisson": true, "Bernoulli": true, "DiscreteUniform": true, "Categorical": true,
	}
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		if got, want := in.IntegerValued(), integer[c.name]; got != want {
			t.Errorf("%s: IntegerValued() = %v, want %v", c.name, got, want)
		}
		// Discrete (finite-support) classes must all be integer-valued in
		// this engine; Poisson is integer-valued without being Discrete.
		if in.Discrete() && !in.IntegerValued() {
			t.Errorf("%s: Discrete but not IntegerValued", c.name)
		}
	}
	// A Discreter-only extension class (no IntegerValued method) still
	// reports integer-valued via the Discrete fallback.
	if !(Instance{Class: discreteOnlyClass{}}).IntegerValued() {
		t.Error("Discreter-only class not treated as integer-valued")
	}
}

type discreteOnlyClass struct {
	generateOnlyClass
}

func (discreteOnlyClass) Discrete([]float64) bool { return true }

func TestDiscretePMFSumsToOne(t *testing.T) {
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		if !in.Discrete() {
			continue
		}
		lo, hi := in.Support()
		total := 0.0
		for x := lo; x <= hi; x++ {
			p, _ := in.PDF(x)
			total += p
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("%s: pmf sums to %g", c.name, total)
		}
	}
}

func TestSupportContainsSamples(t *testing.T) {
	for _, c := range univariateCases {
		in := MustInstance(c.class, c.params...)
		lo, hi := in.Support()
		r := prng.NewKeyed(77, 88)
		for i := 0; i < 1000; i++ {
			v := in.Generate(r)
			if v < lo || v > hi {
				t.Fatalf("%s: sample %g outside declared support [%g, %g]", c.name, v, lo, hi)
			}
		}
	}
}

func TestMVNormalJointCorrelation(t *testing.T) {
	// cov = [[1, 0.8], [0.8, 1]]; component draws must reproduce it.
	l, err := CholeskyFromCovariance([][]float64{{1, 0.8}, {0.8, 1}})
	if err != nil {
		t.Fatal(err)
	}
	params := MVNormalParams([]float64{2, -3}, l)
	in := MustInstance(MVNormal{}, params...)
	mv, ok := in.Class.(Multivariater)
	if !ok {
		t.Fatal("MVNormal does not implement Multivariater")
	}
	if got := mv.Dim(params); got != 2 {
		t.Fatalf("Dim = %d, want 2", got)
	}
	const n = 30000
	r := prng.NewKeyed(3, 1, 4)
	var sx, sy, sxy float64
	for i := 0; i < n; i++ {
		v := mv.GenerateJoint(params, r)
		sx += v[0]
		sy += v[1]
		sxy += v[0] * v[1]
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	if math.Abs(mx-2) > 0.05 || math.Abs(my+3) > 0.05 {
		t.Fatalf("joint means drifted: %g, %g", mx, my)
	}
	if math.Abs(cov-0.8) > 0.05 {
		t.Fatalf("joint covariance %g, want 0.8", cov)
	}
}

func TestCholeskyFromCovariance(t *testing.T) {
	cov := [][]float64{{4, 2, 0.6}, {2, 2, 0.5}, {0.6, 0.5, 1}}
	l, err := CholeskyFromCovariance(cov)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct L Lᵀ.
	n := len(cov)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := 0.0
			for k := 0; k < n; k++ {
				got += l[i][k] * l[j][k]
			}
			if math.Abs(got-cov[i][j]) > 1e-12 {
				t.Fatalf("L Lᵀ[%d][%d] = %g, want %g", i, j, got, cov[i][j])
			}
		}
	}
	// Error paths.
	if _, err := CholeskyFromCovariance(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := CholeskyFromCovariance([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, err := CholeskyFromCovariance([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := CholeskyFromCovariance([][]float64{{1, 0}}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestInstanceString(t *testing.T) {
	in := MustInstance(Normal{}, 0, 1)
	if got := in.String(); got != "Normal(0, 1)" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Instance{}).String(); got != "<nil dist>" {
		t.Fatalf("zero Instance String() = %q", got)
	}
}

func TestInstanceCapabilityFallbacks(t *testing.T) {
	// An Instance over a Generate-only class degrades gracefully.
	in := Instance{Class: generateOnlyClass{}}
	if _, ok := in.PDF(0); ok {
		t.Fatal("PDF reported available")
	}
	if _, ok := in.CDF(0); ok {
		t.Fatal("CDF reported available")
	}
	if _, ok := in.InvCDF(0.5); ok {
		t.Fatal("InvCDF reported available")
	}
	if _, ok := in.Mean(); ok {
		t.Fatal("Mean reported available")
	}
	if _, ok := in.Variance(); ok {
		t.Fatal("Variance reported available")
	}
	if lo, hi := in.Support(); !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Fatalf("default support [%g, %g], want whole line", lo, hi)
	}
	if in.Discrete() {
		t.Fatal("default Discrete() = true")
	}
}

type generateOnlyClass struct{}

func (generateOnlyClass) Name() string                { return "GenOnly" }
func (generateOnlyClass) CheckParams([]float64) error { return nil }
func (generateOnlyClass) Generate(_ []float64, r *prng.Rand) float64 {
	return r.Float64()
}
