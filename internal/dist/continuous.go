package dist

import (
	"fmt"
	"math"

	"pip/internal/prng"
)

// ---------------------------------------------------------------------------
// Normal(mu, sigma)

// Normal is the Gaussian distribution with parameters (mean, stddev).
// It exposes the full analytic capability set, so single-variable interval
// constraints over normal variables integrate exactly and bounded
// constraints generate through the inverse CDF with zero rejections.
type Normal struct{}

// Name implements Class.
func (Normal) Name() string { return "Normal" }

// CheckParams implements Class.
func (Normal) CheckParams(params []float64) error {
	if err := needParams(params, 2, "mean, stddev"); err != nil {
		return err
	}
	if params[1] <= 0 {
		return fmt.Errorf("stddev %g must be positive", params[1])
	}
	return nil
}

// Generate implements Class.
func (Normal) Generate(params []float64, r *prng.Rand) float64 {
	return params[0] + params[1]*r.NormFloat64()
}

// PDF implements PDFer.
func (Normal) PDF(params []float64, x float64) float64 {
	mu, sigma := params[0], params[1]
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// CDF implements CDFer.
func (Normal) CDF(params []float64, x float64) float64 {
	return normCDF((x - params[0]) / params[1])
}

// InvCDF implements InvCDFer.
func (Normal) InvCDF(params []float64, u float64) float64 {
	return params[0] + params[1]*normInvCDF(u)
}

// Mean implements Meaner.
func (Normal) Mean(params []float64) float64 { return params[0] }

// Variance implements Variancer.
func (Normal) Variance(params []float64) float64 { return params[1] * params[1] }

// ---------------------------------------------------------------------------
// Uniform(a, b)

// Uniform is the continuous uniform distribution on [a, b).
type Uniform struct{}

// Name implements Class.
func (Uniform) Name() string { return "Uniform" }

// CheckParams implements Class.
func (Uniform) CheckParams(params []float64) error {
	if err := needParams(params, 2, "lo, hi"); err != nil {
		return err
	}
	if params[0] >= params[1] {
		return fmt.Errorf("lo %g must be below hi %g", params[0], params[1])
	}
	return nil
}

// Generate implements Class.
func (Uniform) Generate(params []float64, r *prng.Rand) float64 {
	return params[0] + (params[1]-params[0])*r.Float64()
}

// PDF implements PDFer.
func (Uniform) PDF(params []float64, x float64) float64 {
	if x < params[0] || x > params[1] {
		return 0
	}
	return 1 / (params[1] - params[0])
}

// CDF implements CDFer.
func (Uniform) CDF(params []float64, x float64) float64 {
	switch {
	case x <= params[0]:
		return 0
	case x >= params[1]:
		return 1
	default:
		return (x - params[0]) / (params[1] - params[0])
	}
}

// InvCDF implements InvCDFer.
func (Uniform) InvCDF(params []float64, u float64) float64 {
	return params[0] + (params[1]-params[0])*clampUnit(u)
}

// Mean implements Meaner.
func (Uniform) Mean(params []float64) float64 { return (params[0] + params[1]) / 2 }

// Variance implements Variancer.
func (Uniform) Variance(params []float64) float64 {
	w := params[1] - params[0]
	return w * w / 12
}

// Support implements Supporter.
func (Uniform) Support(params []float64) (float64, float64) { return params[0], params[1] }

// ---------------------------------------------------------------------------
// Exponential(rate)

// Exponential is the exponential distribution parametrized by rate
// (mean 1/rate).
type Exponential struct{}

// Name implements Class.
func (Exponential) Name() string { return "Exponential" }

// CheckParams implements Class.
func (Exponential) CheckParams(params []float64) error {
	if err := needParams(params, 1, "rate"); err != nil {
		return err
	}
	if params[0] <= 0 {
		return fmt.Errorf("rate %g must be positive", params[0])
	}
	return nil
}

// Generate implements Class.
func (Exponential) Generate(params []float64, r *prng.Rand) float64 {
	return r.ExpFloat64() / params[0]
}

// PDF implements PDFer.
func (Exponential) PDF(params []float64, x float64) float64 {
	if x < 0 {
		return 0
	}
	rate := params[0]
	return rate * math.Exp(-rate*x)
}

// CDF implements CDFer.
func (Exponential) CDF(params []float64, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-params[0] * x)
}

// InvCDF implements InvCDFer.
func (Exponential) InvCDF(params []float64, u float64) float64 {
	u = clampUnit(u)
	if u >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-u) / params[0]
}

// Mean implements Meaner.
func (Exponential) Mean(params []float64) float64 { return 1 / params[0] }

// Variance implements Variancer.
func (Exponential) Variance(params []float64) float64 { return 1 / (params[0] * params[0]) }

// Support implements Supporter.
func (Exponential) Support(params []float64) (float64, float64) { return 0, math.Inf(1) }

// ---------------------------------------------------------------------------
// Lognormal(mu, sigma)

// Lognormal is the log-normal distribution: exp(N(mu, sigma)). Parameters
// are the mean and stddev of the underlying normal.
type Lognormal struct{}

// Name implements Class.
func (Lognormal) Name() string { return "Lognormal" }

// CheckParams implements Class.
func (Lognormal) CheckParams(params []float64) error {
	if err := needParams(params, 2, "mu, sigma of log"); err != nil {
		return err
	}
	if params[1] <= 0 {
		return fmt.Errorf("sigma %g must be positive", params[1])
	}
	return nil
}

// Generate implements Class.
func (Lognormal) Generate(params []float64, r *prng.Rand) float64 {
	return math.Exp(params[0] + params[1]*r.NormFloat64())
}

// PDF implements PDFer.
func (Lognormal) PDF(params []float64, x float64) float64 {
	if x <= 0 {
		return 0
	}
	mu, sigma := params[0], params[1]
	z := (math.Log(x) - mu) / sigma
	return math.Exp(-z*z/2) / (x * sigma * math.Sqrt(2*math.Pi))
}

// CDF implements CDFer.
func (Lognormal) CDF(params []float64, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return normCDF((math.Log(x) - params[0]) / params[1])
}

// InvCDF implements InvCDFer.
func (Lognormal) InvCDF(params []float64, u float64) float64 {
	return math.Exp(params[0] + params[1]*normInvCDF(clampUnit(u)))
}

// Mean implements Meaner.
func (Lognormal) Mean(params []float64) float64 {
	return math.Exp(params[0] + params[1]*params[1]/2)
}

// Variance implements Variancer.
func (Lognormal) Variance(params []float64) float64 {
	s2 := params[1] * params[1]
	return math.Expm1(s2) * math.Exp(2*params[0]+s2)
}

// Support implements Supporter.
func (Lognormal) Support(params []float64) (float64, float64) { return 0, math.Inf(1) }

// ---------------------------------------------------------------------------
// Gamma(shape, rate)

// Gamma is the gamma distribution parametrized by (shape k, rate lambda),
// mean k/lambda. Sampling uses the Marsaglia–Tsang squeeze method, with the
// standard power-of-uniform boost for shape < 1.
type Gamma struct{}

// Name implements Class.
func (Gamma) Name() string { return "Gamma" }

// CheckParams implements Class.
func (Gamma) CheckParams(params []float64) error {
	if err := needParams(params, 2, "shape, rate"); err != nil {
		return err
	}
	if params[0] <= 0 || params[1] <= 0 {
		return fmt.Errorf("shape %g and rate %g must be positive", params[0], params[1])
	}
	return nil
}

// Generate implements Class.
func (Gamma) Generate(params []float64, r *prng.Rand) float64 {
	return gammaDraw(params[0], r) / params[1]
}

// gammaDraw samples Gamma(shape, rate 1) via Marsaglia–Tsang (2000).
func gammaDraw(shape float64, r *prng.Rand) float64 {
	if shape < 1 {
		// G(a) = G(a+1) * U^{1/a}.
		u := r.Float64Open()
		return gammaDraw(shape+1, r) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// PDF implements PDFer.
func (Gamma) PDF(params []float64, x float64) float64 {
	if x < 0 {
		return 0
	}
	k, rate := params[0], params[1]
	if x == 0 {
		switch {
		case k < 1:
			return math.Inf(1)
		case k == 1:
			return rate
		default:
			return 0
		}
	}
	return math.Exp(k*math.Log(rate) + (k-1)*math.Log(x) - rate*x - lgamma(k))
}

// CDF implements CDFer.
func (Gamma) CDF(params []float64, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regGammaP(params[0], params[1]*x)
}

// InvCDF implements InvCDFer.
func (Gamma) InvCDF(params []float64, u float64) float64 {
	c := Gamma{}
	return invCDFBisect(func(x float64) float64 { return c.CDF(params, x) },
		clampUnit(u), 0, math.Inf(1))
}

// Mean implements Meaner.
func (Gamma) Mean(params []float64) float64 { return params[0] / params[1] }

// Variance implements Variancer.
func (Gamma) Variance(params []float64) float64 { return params[0] / (params[1] * params[1]) }

// Support implements Supporter.
func (Gamma) Support(params []float64) (float64, float64) { return 0, math.Inf(1) }

// ---------------------------------------------------------------------------
// Beta(alpha, beta)

// Beta is the beta distribution on [0, 1], sampled as the gamma ratio
// G(alpha) / (G(alpha) + G(beta)).
type Beta struct{}

// Name implements Class.
func (Beta) Name() string { return "Beta" }

// CheckParams implements Class.
func (Beta) CheckParams(params []float64) error {
	if err := needParams(params, 2, "alpha, beta"); err != nil {
		return err
	}
	if params[0] <= 0 || params[1] <= 0 {
		return fmt.Errorf("alpha %g and beta %g must be positive", params[0], params[1])
	}
	return nil
}

// Generate implements Class.
func (Beta) Generate(params []float64, r *prng.Rand) float64 {
	x := gammaDraw(params[0], r)
	y := gammaDraw(params[1], r)
	return x / (x + y)
}

// PDF implements PDFer.
func (Beta) PDF(params []float64, x float64) float64 {
	a, b := params[0], params[1]
	if x < 0 || x > 1 {
		return 0
	}
	if x == 0 || x == 1 {
		// Edge densities: finite only at interior-regular parameters.
		if (x == 0 && a < 1) || (x == 1 && b < 1) {
			return math.Inf(1)
		}
		if (x == 0 && a > 1) || (x == 1 && b > 1) {
			return 0
		}
	}
	// Skip zero-exponent log terms so the a = 1 / b = 1 edges avoid 0 * inf.
	lt := lgamma(a+b) - lgamma(a) - lgamma(b)
	if a != 1 {
		lt += (a - 1) * math.Log(x)
	}
	if b != 1 {
		lt += (b - 1) * math.Log1p(-x)
	}
	return math.Exp(lt)
}

// CDF implements CDFer.
func (Beta) CDF(params []float64, x float64) float64 {
	return regIncBeta(params[0], params[1], x)
}

// InvCDF implements InvCDFer.
func (Beta) InvCDF(params []float64, u float64) float64 {
	c := Beta{}
	return invCDFBisect(func(x float64) float64 { return c.CDF(params, x) },
		clampUnit(u), 0, 1)
}

// Mean implements Meaner.
func (Beta) Mean(params []float64) float64 { return params[0] / (params[0] + params[1]) }

// Variance implements Variancer.
func (Beta) Variance(params []float64) float64 {
	a, b := params[0], params[1]
	s := a + b
	return a * b / (s * s * (s + 1))
}

// Support implements Supporter.
func (Beta) Support(params []float64) (float64, float64) { return 0, 1 }

// clampUnit clamps u into [0, 1]; quantile callers may overshoot the unit
// interval by an ulp when composing CDF and interval arithmetic.
func clampUnit(u float64) float64 {
	switch {
	case u < 0:
		return 0
	case u > 1:
		return 1
	default:
		return u
	}
}
