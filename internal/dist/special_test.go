package dist

import (
	"math"
	"testing"
)

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999, 0.9999999} {
		got := math.Erf(ErfInv(x))
		if math.Abs(got-x) > 1e-14 {
			t.Errorf("Erf(ErfInv(%g)) = %g, drift %g", x, got, math.Abs(got-x))
		}
	}
	for _, y := range []float64{-3, -1, -0.25, 0.25, 1, 3} {
		got := ErfInv(math.Erf(y))
		if math.Abs(got-y) > 1e-12*math.Max(1, math.Abs(y)) {
			t.Errorf("ErfInv(Erf(%g)) = %g", y, got)
		}
	}
}

func TestErfInvEdges(t *testing.T) {
	if !math.IsInf(ErfInv(1), 1) || !math.IsInf(ErfInv(-1), -1) {
		t.Fatal("ErfInv at +-1 must be +-Inf")
	}
	if ErfInv(0) != 0 {
		t.Fatal("ErfInv(0) != 0")
	}
	if !math.IsNaN(ErfInv(math.NaN())) {
		t.Fatal("ErfInv(NaN) not NaN")
	}
	// Odd symmetry.
	for _, x := range []float64{0.1, 0.5, 0.99} {
		if ErfInv(-x) != -ErfInv(x) {
			t.Errorf("ErfInv not odd at %g", x)
		}
	}
}

func TestRegGammaP(t *testing.T) {
	// Reference values: P(a, x) for integer a has the closed form
	// 1 - e^{-x} sum_{k<a} x^k/k!.
	ref := func(a int, x float64) float64 {
		sum := 0.0
		term := 1.0
		for k := 0; k < a; k++ {
			if k > 0 {
				term *= x / float64(k)
			}
			sum += term
		}
		return 1 - math.Exp(-x)*sum
	}
	for _, a := range []int{1, 2, 5, 10, 50} {
		for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 40, 100} {
			got := regGammaP(float64(a), x)
			want := ref(a, x)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("P(%d, %g) = %.15g, want %.15g", a, x, got, want)
			}
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 4} {
		got := regGammaP(0.5, x)
		want := math.Erf(math.Sqrt(x))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5, %g) = %g, want %g", x, got, want)
		}
	}
	if regGammaP(2, 0) != 0 {
		t.Fatal("P(a, 0) != 0")
	}
	if regGammaP(2, math.Inf(1)) != 1 {
		t.Fatal("P(a, inf) != 1")
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1, b) = 1 - (1-x)^b; I_x(a, 1) = x^a.
	for _, b := range []float64{0.5, 1, 2, 7} {
		for _, x := range []float64{0.1, 0.4, 0.8} {
			got := regIncBeta(1, b, x)
			want := 1 - math.Pow(1-x, b)
			if math.Abs(got-want) > 1e-13 {
				t.Errorf("I_%g(1, %g) = %g, want %g", x, b, got, want)
			}
			got = regIncBeta(b, 1, x)
			want = math.Pow(x, b)
			if math.Abs(got-want) > 1e-13 {
				t.Errorf("I_%g(%g, 1) = %g, want %g", x, b, got, want)
			}
		}
	}
	// Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
	for _, x := range []float64{0.2, 0.5, 0.9} {
		got := regIncBeta(2.5, 3.5, x) + regIncBeta(3.5, 2.5, 1-x)
		if math.Abs(got-1) > 1e-13 {
			t.Errorf("symmetry violated at x = %g: sum %g", x, got)
		}
	}
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("incomplete beta edge values wrong")
	}
}

func TestInvCDFBisect(t *testing.T) {
	// Invert a known CDF: standard exponential.
	cdf := func(x float64) float64 { return 1 - math.Exp(-x) }
	for _, u := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		got := invCDFBisect(cdf, u, 0, math.Inf(1))
		want := -math.Log(1 - u)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("invCDFBisect(%g) = %g, want %g", u, got, want)
		}
	}
	if got := invCDFBisect(cdf, 0, 0, math.Inf(1)); got != 0 {
		t.Fatalf("u = 0 gave %g", got)
	}
	// Two-sided bracket (standard normal via erf) with infinite lower edge.
	ncdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	for _, u := range []float64{0.1, 0.5, 0.9} {
		got := invCDFBisect(ncdf, u, math.Inf(-1), math.Inf(1))
		want := normInvCDF(u)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("normal bisect(%g) = %g, want %g", u, got, want)
		}
	}
}
