package dist

import (
	"sort"
	"strings"
	"sync"
)

// The registry maps distribution names to classes so the SQL layer's
// CREATE_VARIABLE('Normal', ...) can resolve classes by name (paper §V-A).
// Lookups are case-insensitive; Names returns canonical capitalization.
var (
	regMu    sync.RWMutex
	registry = map[string]Class{}
)

// Register installs a class under its canonical name. Registering a second
// class with the same (case-insensitive) name replaces the first; this is
// deliberate so embedders can override built-ins.
func Register(c Class) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToLower(c.Name())] = c
}

// Lookup resolves a class by case-insensitive name.
func Lookup(name string) (Class, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[strings.ToLower(name)]
	return c, ok
}

// Names lists the canonical names of all registered classes in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for _, c := range registry {
		out = append(out, c.Name())
	}
	sort.Strings(out)
	return out
}

func init() {
	for _, c := range []Class{
		Normal{},
		Uniform{},
		Exponential{},
		Lognormal{},
		Gamma{},
		Beta{},
		Poisson{},
		Bernoulli{},
		DiscreteUniform{},
		Categorical{},
		MVNormal{},
	} {
		Register(c)
	}
}
