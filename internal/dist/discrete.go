package dist

import (
	"fmt"
	"math"

	"pip/internal/prng"
)

// ---------------------------------------------------------------------------
// Poisson(lambda)

// Poisson is the Poisson distribution with mean lambda. It is integer-
// valued but deliberately does not implement Discreter (countably infinite
// support — see the Discreter docs); it implements IntegerValued instead,
// which is what the sampler checks where integer semantics matter.
type Poisson struct{}

// Name implements Class.
func (Poisson) Name() string { return "Poisson" }

// CheckParams implements Class.
func (Poisson) CheckParams(params []float64) error {
	if err := needParams(params, 1, "lambda"); err != nil {
		return err
	}
	if params[0] <= 0 {
		return fmt.Errorf("lambda %g must be positive", params[0])
	}
	return nil
}

// Generate implements Class.
func (Poisson) Generate(params []float64, r *prng.Rand) float64 {
	return float64(r.Poisson(params[0]))
}

// PDF implements PDFer; it is the probability mass function, zero off the
// integers.
func (Poisson) PDF(params []float64, x float64) float64 {
	if x < 0 || x != math.Floor(x) {
		return 0
	}
	lambda := params[0]
	return math.Exp(x*math.Log(lambda) - lambda - lgamma(x+1))
}

// CDF implements CDFer: P[N <= x] = Q(floor(x)+1, lambda), the regularized
// upper incomplete gamma identity.
func (Poisson) CDF(params []float64, x float64) float64 {
	if x < 0 {
		return 0
	}
	k := math.Floor(x)
	return 1 - regGammaP(k+1, params[0])
}

// InvCDF implements InvCDFer with the generalized inverse: the smallest
// integer k with CDF(k) >= u, found by binary search on the analytic CDF.
func (Poisson) InvCDF(params []float64, u float64) float64 {
	u = clampUnit(u)
	if u == 0 {
		return 0
	}
	lambda := params[0]
	c := Poisson{}
	// Upper bracket: mean + 10 sigma + slack covers any u < 1 we can
	// represent; expand geometrically as a safety net.
	hi := math.Ceil(lambda + 10*math.Sqrt(lambda) + 20)
	for c.CDF(params, hi) < u {
		if u >= 1 || hi > 1e18 {
			return math.Inf(1)
		}
		hi *= 2
	}
	lo := 0.0
	for lo < hi {
		mid := math.Floor((lo + hi) / 2)
		if c.CDF(params, mid) < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntegerValued implements IntegerValued.
func (Poisson) IntegerValued(params []float64) bool { return true }

// Mean implements Meaner.
func (Poisson) Mean(params []float64) float64 { return params[0] }

// Variance implements Variancer.
func (Poisson) Variance(params []float64) float64 { return params[0] }

// Support implements Supporter.
func (Poisson) Support(params []float64) (float64, float64) { return 0, math.Inf(1) }

// ---------------------------------------------------------------------------
// Bernoulli(p)

// Bernoulli is the {0, 1} coin with success probability p.
type Bernoulli struct{}

// Name implements Class.
func (Bernoulli) Name() string { return "Bernoulli" }

// CheckParams implements Class.
func (Bernoulli) CheckParams(params []float64) error {
	if err := needParams(params, 1, "p"); err != nil {
		return err
	}
	if params[0] < 0 || params[0] > 1 {
		return fmt.Errorf("p %g must be in [0, 1]", params[0])
	}
	return nil
}

// Generate implements Class.
func (Bernoulli) Generate(params []float64, r *prng.Rand) float64 {
	if r.Float64() < params[0] {
		return 1
	}
	return 0
}

// PDF implements PDFer (probability mass).
func (Bernoulli) PDF(params []float64, x float64) float64 {
	switch x {
	case 0:
		return 1 - params[0]
	case 1:
		return params[0]
	default:
		return 0
	}
}

// CDF implements CDFer.
func (Bernoulli) CDF(params []float64, x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x < 1:
		return 1 - params[0]
	default:
		return 1
	}
}

// InvCDF implements InvCDFer.
func (Bernoulli) InvCDF(params []float64, u float64) float64 {
	if clampUnit(u) <= 1-params[0] {
		return 0
	}
	return 1
}

// IntegerValued implements IntegerValued.
func (Bernoulli) IntegerValued(params []float64) bool { return true }

// Mean implements Meaner.
func (Bernoulli) Mean(params []float64) float64 { return params[0] }

// Variance implements Variancer.
func (Bernoulli) Variance(params []float64) float64 { return params[0] * (1 - params[0]) }

// Support implements Supporter.
func (Bernoulli) Support(params []float64) (float64, float64) { return 0, 1 }

// Discrete implements Discreter.
func (Bernoulli) Discrete(params []float64) bool { return true }

// ---------------------------------------------------------------------------
// DiscreteUniform(lo, hi)

// DiscreteUniform is the uniform distribution over the integers
// lo, lo+1, ..., hi inclusive.
type DiscreteUniform struct{}

// Name implements Class.
func (DiscreteUniform) Name() string { return "DiscreteUniform" }

// CheckParams implements Class.
func (DiscreteUniform) CheckParams(params []float64) error {
	if err := needParams(params, 2, "lo, hi"); err != nil {
		return err
	}
	if params[0] != math.Floor(params[0]) || params[1] != math.Floor(params[1]) {
		return fmt.Errorf("bounds %g, %g must be integers", params[0], params[1])
	}
	if params[0] > params[1] {
		return fmt.Errorf("lo %g must not exceed hi %g", params[0], params[1])
	}
	return nil
}

// Generate implements Class.
func (DiscreteUniform) Generate(params []float64, r *prng.Rand) float64 {
	n := int(params[1]-params[0]) + 1
	return params[0] + float64(r.Intn(n))
}

// PDF implements PDFer (probability mass).
func (DiscreteUniform) PDF(params []float64, x float64) float64 {
	if x < params[0] || x > params[1] || x != math.Floor(x) {
		return 0
	}
	return 1 / (params[1] - params[0] + 1)
}

// CDF implements CDFer.
func (DiscreteUniform) CDF(params []float64, x float64) float64 {
	switch {
	case x < params[0]:
		return 0
	case x >= params[1]:
		return 1
	default:
		return (math.Floor(x) - params[0] + 1) / (params[1] - params[0] + 1)
	}
}

// InvCDF implements InvCDFer (generalized inverse).
func (DiscreteUniform) InvCDF(params []float64, u float64) float64 {
	u = clampUnit(u)
	n := params[1] - params[0] + 1
	k := math.Ceil(u*n) - 1
	if k < 0 {
		k = 0
	}
	if k > n-1 {
		k = n - 1
	}
	return params[0] + k
}

// IntegerValued implements IntegerValued.
func (DiscreteUniform) IntegerValued(params []float64) bool { return true }

// Mean implements Meaner.
func (DiscreteUniform) Mean(params []float64) float64 { return (params[0] + params[1]) / 2 }

// Variance implements Variancer.
func (DiscreteUniform) Variance(params []float64) float64 {
	n := params[1] - params[0] + 1
	return (n*n - 1) / 12
}

// Support implements Supporter.
func (DiscreteUniform) Support(params []float64) (float64, float64) { return params[0], params[1] }

// Discrete implements Discreter.
func (DiscreteUniform) Discrete(params []float64) bool { return true }

// ---------------------------------------------------------------------------
// Categorical(w0, w1, ..., wn-1)

// Categorical is the finite distribution over outcomes 0..n-1 with
// probability proportional to the n weight parameters. It is the class
// behind repair-key (paper §V-A): each key group's choice variable is
// Categorical over the group's normalized weights.
type Categorical struct{}

// Name implements Class.
func (Categorical) Name() string { return "Categorical" }

// CheckParams implements Class.
func (Categorical) CheckParams(params []float64) error {
	if len(params) == 0 {
		return fmt.Errorf("want at least one weight")
	}
	total := 0.0
	for i, w := range params {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("weight %d is %g; weights must be finite and non-negative", i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("total weight must be positive")
	}
	return nil
}

// Generate implements Class.
func (Categorical) Generate(params []float64, r *prng.Rand) float64 {
	total := 0.0
	for _, w := range params {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range params {
		acc += w
		if u < acc {
			return float64(i)
		}
	}
	// Round-off fell past the last bucket: return the last positive-weight
	// outcome.
	for i := len(params) - 1; i >= 0; i-- {
		if params[i] > 0 {
			return float64(i)
		}
	}
	return 0
}

// PDF implements PDFer (probability mass).
func (Categorical) PDF(params []float64, x float64) float64 {
	if x != math.Floor(x) || x < 0 || x >= float64(len(params)) {
		return 0
	}
	total := 0.0
	for _, w := range params {
		total += w
	}
	return params[int(x)] / total
}

// CDF implements CDFer.
func (Categorical) CDF(params []float64, x float64) float64 {
	if x < 0 {
		return 0
	}
	k := int(math.Floor(x))
	if k >= len(params)-1 {
		return 1
	}
	total, acc := 0.0, 0.0
	for _, w := range params {
		total += w
	}
	for i := 0; i <= k; i++ {
		acc += params[i]
	}
	return acc / total
}

// InvCDF implements InvCDFer (generalized inverse).
func (Categorical) InvCDF(params []float64, u float64) float64 {
	u = clampUnit(u)
	total := 0.0
	for _, w := range params {
		total += w
	}
	acc := 0.0
	for i, w := range params {
		acc += w
		if u <= acc/total {
			return float64(i)
		}
	}
	return float64(len(params) - 1)
}

// IntegerValued implements IntegerValued.
func (Categorical) IntegerValued(params []float64) bool { return true }

// Mean implements Meaner.
func (Categorical) Mean(params []float64) float64 {
	total, m := 0.0, 0.0
	for i, w := range params {
		total += w
		m += float64(i) * w
	}
	return m / total
}

// Variance implements Variancer.
func (Categorical) Variance(params []float64) float64 {
	total, m, m2 := 0.0, 0.0, 0.0
	for i, w := range params {
		total += w
		m += float64(i) * w
		m2 += float64(i) * float64(i) * w
	}
	m /= total
	m2 /= total
	return m2 - m*m
}

// Support implements Supporter.
func (Categorical) Support(params []float64) (float64, float64) {
	return 0, float64(len(params) - 1)
}

// Discrete implements Discreter.
func (Categorical) Discrete(params []float64) bool { return true }
