// Package samplefirst reimplements the MCDB-style "Sample-First" approach
// the paper benchmarks PIP against (§VI): samples of entire databases are
// computed first, then queries are processed over those samples.
//
// Following the paper's own reimplementation, a sampled variable is
// represented as an array of floats (one entry per sampled world) and a
// tuple bundle's presence in each world as a densely packed array of
// booleans. Query operators evaluate per world: a selection predicate
// clears presence bits of worlds that violate it, arithmetic combines
// sample arrays elementwise, and aggregates reduce each world independently
// before averaging across worlds.
//
// The approach's defining weakness — the one PIP's deferred sampling
// removes — is that samples are committed before the query is known:
// selective predicates silently discard sample mass (reducing accuracy at
// fixed cost), and obtaining more samples requires re-running the entire
// query.
package samplefirst

import "math/bits"

// Bitmap is a densely packed boolean array marking the worlds in which a
// tuple bundle is present.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap of n bits, all set (present in every world).
func NewBitmap(n int) *Bitmap {
	b := &Bitmap{words: make([]uint64, (n+63)/64), n: n}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << r) - 1
	}
	return b
}

// NewEmptyBitmap returns a bitmap of n bits, all clear.
func NewEmptyBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.words[i/64] |= 1 << (i % 64)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i/64] &^= 1 << (i % 64)
}

// And intersects o into b (b &= o).
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}
