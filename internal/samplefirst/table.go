package samplefirst

import (
	"fmt"
	"strings"

	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/prng"
)

// Cell is one tuple-bundle field: either a deterministic value shared by
// all worlds, or an array of per-world samples.
type Cell struct {
	Det     ctable.Value
	Samples []float64 // non-nil marks a sampled cell
}

// DetCell wraps a deterministic value.
func DetCell(v ctable.Value) Cell { return Cell{Det: v} }

// SampledCell wraps a per-world sample array.
func SampledCell(s []float64) Cell { return Cell{Samples: s} }

// IsSampled reports whether the cell varies across worlds.
func (c Cell) IsSampled() bool { return c.Samples != nil }

// At returns the cell's value in world w as a float; ok is false for
// non-numeric deterministic cells.
func (c Cell) At(w int) (float64, bool) {
	if c.Samples != nil {
		return c.Samples[w], true
	}
	return c.Det.AsFloat()
}

// Tuple is a tuple bundle: cells plus the presence bitmap.
type Tuple struct {
	Cells   []Cell
	Present *Bitmap
}

// Table is a Sample-First relation over a fixed number of sampled worlds.
type Table struct {
	Name   string
	Schema ctable.Schema
	Worlds int
	Tuples []Tuple
}

// New creates an empty Sample-First table over n worlds.
func New(name string, worlds int, cols ...string) *Table {
	sch := make(ctable.Schema, len(cols))
	for i, c := range cols {
		sch[i] = ctable.Column{Name: c}
	}
	return &Table{Name: name, Schema: sch, Worlds: worlds}
}

// Append adds a bundle with all-present bitmap if t.Present is nil.
func (tb *Table) Append(t Tuple) error {
	if len(t.Cells) != len(tb.Schema) {
		return fmt.Errorf("samplefirst: tuple arity %d vs schema %d", len(t.Cells), len(tb.Schema))
	}
	if t.Present == nil {
		t.Present = NewBitmap(tb.Worlds)
	}
	tb.Tuples = append(tb.Tuples, t)
	return nil
}

// MustAppend panics on arity mismatch.
func (tb *Table) MustAppend(t Tuple) {
	if err := tb.Append(t); err != nil {
		panic(err)
	}
}

// Len returns the bundle count.
func (tb *Table) Len() int { return len(tb.Tuples) }

// ColIndex resolves a column name.
func (tb *Table) ColIndex(name string) int { return tb.Schema.ColIndex(name) }

// GenerateColumn samples a fresh per-world array for each tuple from the
// instance produced by mk (which may parametrize the distribution from the
// tuple's deterministic cells). This is the sample-first moment: values for
// every world are drawn before the rest of the query is known.
func (tb *Table) GenerateColumn(name string, seed uint64, mk func(t *Tuple) (dist.Instance, error)) error {
	tb.Schema = append(tb.Schema, ctable.Column{Name: name})
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		inst, err := mk(t)
		if err != nil {
			return err
		}
		samples := make([]float64, tb.Worlds)
		for w := 0; w < tb.Worlds; w++ {
			r := prng.NewKeyed(seed, uint64(i), uint64(w))
			samples[w] = inst.Generate(r)
		}
		t.Cells = append(t.Cells, SampledCell(samples))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Scalars (per-world arithmetic)

// Scalar resolves to a Cell against a bundle; sampled operands broadcast
// per world.
type Scalar interface {
	Resolve(tb *Table, t *Tuple) (Cell, error)
	String() string
}

// Col references a column.
type Col int

// Resolve implements Scalar.
func (c Col) Resolve(tb *Table, t *Tuple) (Cell, error) {
	if int(c) < 0 || int(c) >= len(t.Cells) {
		return Cell{}, fmt.Errorf("samplefirst: column %d out of range", int(c))
	}
	return t.Cells[c], nil
}

// String implements Scalar.
func (c Col) String() string { return fmt.Sprintf("$%d", int(c)) }

// Lit is a literal.
type Lit struct{ V ctable.Value }

// Resolve implements Scalar.
func (l Lit) Resolve(*Table, *Tuple) (Cell, error) { return DetCell(l.V), nil }

// String implements Scalar.
func (l Lit) String() string { return l.V.String() }

// BinOp is elementwise arithmetic over cells.
type BinOp struct {
	Op          byte // '+', '-', '*', '/'
	Left, Right Scalar
}

// Resolve implements Scalar.
func (b BinOp) Resolve(tb *Table, t *Tuple) (Cell, error) {
	l, err := b.Left.Resolve(tb, t)
	if err != nil {
		return Cell{}, err
	}
	r, err := b.Right.Resolve(tb, t)
	if err != nil {
		return Cell{}, err
	}
	apply := func(a, c float64) float64 {
		switch b.Op {
		case '+':
			return a + c
		case '-':
			return a - c
		case '*':
			return a * c
		case '/':
			return a / c
		default:
			return 0
		}
	}
	if !l.IsSampled() && !r.IsSampled() {
		lf, ok1 := l.Det.AsFloat()
		rf, ok2 := r.Det.AsFloat()
		if !ok1 || !ok2 {
			return Cell{}, fmt.Errorf("samplefirst: non-numeric arithmetic operands")
		}
		return DetCell(ctable.Float(apply(lf, rf))), nil
	}
	out := make([]float64, tb.Worlds)
	for w := 0; w < tb.Worlds; w++ {
		lf, ok1 := l.At(w)
		rf, ok2 := r.At(w)
		if !ok1 || !ok2 {
			return Cell{}, fmt.Errorf("samplefirst: non-numeric arithmetic operands")
		}
		out[w] = apply(lf, rf)
	}
	return SampledCell(out), nil
}

// String implements Scalar.
func (b BinOp) String() string {
	return "(" + b.Left.String() + " " + string(b.Op) + " " + b.Right.String() + ")"
}

// ---------------------------------------------------------------------------
// Relational operators

// SelectDet filters bundles by a deterministic predicate (no per-world
// work; the bundle is kept or dropped outright).
func (tb *Table) SelectDet(pred func(t *Tuple) (bool, error)) (*Table, error) {
	out := &Table{Name: tb.Name, Schema: tb.Schema, Worlds: tb.Worlds}
	for i := range tb.Tuples {
		ok, err := pred(&tb.Tuples[i])
		if err != nil {
			return nil, err
		}
		if ok {
			out.Tuples = append(out.Tuples, tb.Tuples[i])
		}
	}
	return out, nil
}

// CmpOpSF enumerates per-world comparison operators.
type CmpOpSF int

// Comparison operators.
const (
	LT CmpOpSF = iota
	LE
	GT
	GE
	EQ
	NEQ
)

func (o CmpOpSF) holds(a, b float64) bool {
	switch o {
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	case EQ:
		return a == b
	case NEQ:
		return a != b
	default:
		return false
	}
}

// SelectWorlds applies a per-world comparison: the presence bit of each
// world where the comparison fails is cleared. This is where Sample-First
// discards sample mass on selective predicates — the bundles stay, but
// carry fewer live worlds. Bundles left present in no world are dropped.
func (tb *Table) SelectWorlds(left Scalar, op CmpOpSF, right Scalar) (*Table, error) {
	out := &Table{Name: tb.Name, Schema: tb.Schema, Worlds: tb.Worlds}
	for i := range tb.Tuples {
		t := tb.Tuples[i]
		l, err := left.Resolve(tb, &t)
		if err != nil {
			return nil, err
		}
		r, err := right.Resolve(tb, &t)
		if err != nil {
			return nil, err
		}
		if !l.IsSampled() && !r.IsSampled() {
			lf, ok1 := l.Det.AsFloat()
			rf, ok2 := r.Det.AsFloat()
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("samplefirst: non-numeric comparison")
			}
			if op.holds(lf, rf) {
				out.Tuples = append(out.Tuples, t)
			}
			continue
		}
		present := t.Present.Clone()
		for w := 0; w < tb.Worlds; w++ {
			if !present.Get(w) {
				continue
			}
			lf, _ := l.At(w)
			rf, _ := r.At(w)
			if !op.holds(lf, rf) {
				present.Clear(w)
			}
		}
		if !present.Any() {
			continue
		}
		out.Tuples = append(out.Tuples, Tuple{Cells: t.Cells, Present: present})
	}
	return out, nil
}

// Project computes new columns from scalars.
func (tb *Table) Project(names []string, targets []Scalar) (*Table, error) {
	if len(names) != len(targets) {
		return nil, fmt.Errorf("samplefirst: %d names for %d targets", len(names), len(targets))
	}
	sch := make(ctable.Schema, len(names))
	for i, n := range names {
		sch[i] = ctable.Column{Name: n}
	}
	out := &Table{Name: tb.Name, Schema: sch, Worlds: tb.Worlds}
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		cells := make([]Cell, len(targets))
		for j, tgt := range targets {
			c, err := tgt.Resolve(tb, t)
			if err != nil {
				return nil, err
			}
			cells[j] = c
		}
		out.Tuples = append(out.Tuples, Tuple{Cells: cells, Present: t.Present})
	}
	return out, nil
}

// EquiJoin hash-joins on deterministic key columns; presence bitmaps
// intersect (a joined bundle exists only in worlds where both sides exist).
func EquiJoin(a, b *Table, aCol, bCol int) (*Table, error) {
	if a.Worlds != b.Worlds {
		return nil, fmt.Errorf("samplefirst: joining tables with %d vs %d worlds", a.Worlds, b.Worlds)
	}
	sch := make(ctable.Schema, 0, len(a.Schema)+len(b.Schema))
	sch = append(sch, a.Schema...)
	sch = append(sch, b.Schema...)
	out := &Table{Name: a.Name + "_join_" + b.Name, Schema: sch, Worlds: a.Worlds}
	idx := map[string][]int{}
	for j := range b.Tuples {
		c := b.Tuples[j].Cells[bCol]
		if c.IsSampled() {
			return nil, fmt.Errorf("samplefirst: sampled join key")
		}
		idx[cellKey(c)] = append(idx[cellKey(c)], j)
	}
	for i := range a.Tuples {
		ta := &a.Tuples[i]
		c := ta.Cells[aCol]
		if c.IsSampled() {
			return nil, fmt.Errorf("samplefirst: sampled join key")
		}
		for _, j := range idx[cellKey(c)] {
			tbp := &b.Tuples[j]
			present := ta.Present.Clone()
			present.And(tbp.Present)
			if !present.Any() {
				continue
			}
			cells := make([]Cell, 0, len(ta.Cells)+len(tbp.Cells))
			cells = append(cells, ta.Cells...)
			cells = append(cells, tbp.Cells...)
			out.Tuples = append(out.Tuples, Tuple{Cells: cells, Present: present})
		}
	}
	return out, nil
}

func cellKey(c Cell) string {
	var b strings.Builder
	b.WriteString(c.Det.String())
	return b.String()
}

// ---------------------------------------------------------------------------
// Aggregates

// SumPerWorld returns, for each world, the sum of col over bundles present
// in that world.
func (tb *Table) SumPerWorld(col int) ([]float64, error) {
	out := make([]float64, tb.Worlds)
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		c := t.Cells[col]
		for w := 0; w < tb.Worlds; w++ {
			if !t.Present.Get(w) {
				continue
			}
			v, ok := c.At(w)
			if !ok {
				return nil, fmt.Errorf("samplefirst: non-numeric sum target")
			}
			out[w] += v
		}
	}
	return out, nil
}

// MaxPerWorld returns, for each world, the max of col over present bundles
// (0 when no bundle is present, matching the PIP convention).
func (tb *Table) MaxPerWorld(col int) ([]float64, error) {
	out := make([]float64, tb.Worlds)
	seen := make([]bool, tb.Worlds)
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		c := t.Cells[col]
		for w := 0; w < tb.Worlds; w++ {
			if !t.Present.Get(w) {
				continue
			}
			v, ok := c.At(w)
			if !ok {
				return nil, fmt.Errorf("samplefirst: non-numeric max target")
			}
			if !seen[w] || v > out[w] {
				out[w] = v
				seen[w] = true
			}
		}
	}
	return out, nil
}

// CountPerWorld returns the number of present bundles per world.
func (tb *Table) CountPerWorld() []float64 {
	out := make([]float64, tb.Worlds)
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		for w := 0; w < tb.Worlds; w++ {
			if t.Present.Get(w) {
				out[w]++
			}
		}
	}
	return out
}

// Mean averages a per-world series — the final expectation step.
func Mean(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range series {
		t += v
	}
	return t / float64(len(series))
}

// ExpectedSum is the Sample-First estimate of E[sum(col)].
func (tb *Table) ExpectedSum(col int) (float64, error) {
	s, err := tb.SumPerWorld(col)
	if err != nil {
		return 0, err
	}
	return Mean(s), nil
}

// ExpectedMax is the Sample-First estimate of E[max(col)].
func (tb *Table) ExpectedMax(col int) (float64, error) {
	s, err := tb.MaxPerWorld(col)
	if err != nil {
		return 0, err
	}
	return Mean(s), nil
}

// GroupedExpectedSum groups bundles by a deterministic key column and
// returns per-group Sample-First sum expectations along with the number of
// live (present-in-some-world) samples that survived selection per group —
// the quantity whose erosion under selective predicates drives Fig. 7.
func (tb *Table) GroupedExpectedSum(keyCol, aggCol int) (map[string]float64, map[string]int, error) {
	sums := map[string][]float64{}
	live := map[string]int{}
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		kc := t.Cells[keyCol]
		if kc.IsSampled() {
			return nil, nil, fmt.Errorf("samplefirst: sampled group key")
		}
		k := kc.Det.String()
		if _, ok := sums[k]; !ok {
			sums[k] = make([]float64, tb.Worlds)
		}
		s := sums[k]
		c := t.Cells[aggCol]
		for w := 0; w < tb.Worlds; w++ {
			if !t.Present.Get(w) {
				continue
			}
			v, ok := c.At(w)
			if !ok {
				return nil, nil, fmt.Errorf("samplefirst: non-numeric sum target")
			}
			s[w] += v
			live[k]++
		}
	}
	out := map[string]float64{}
	for k, s := range sums {
		out[k] = Mean(s)
	}
	return out, live, nil
}
