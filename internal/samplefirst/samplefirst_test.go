package samplefirst

import (
	"math"
	"testing"
	"testing/quick"

	"pip/internal/ctable"
	"pip/internal/dist"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(100)
	if b.Len() != 100 || b.Count() != 100 {
		t.Fatalf("len %d count %d", b.Len(), b.Count())
	}
	b.Clear(5)
	b.Clear(99)
	if b.Count() != 98 || b.Get(5) || !b.Get(4) {
		t.Fatal("Clear/Get broken")
	}
	b.Set(5)
	if !b.Get(5) || b.Count() != 99 {
		t.Fatal("Set broken")
	}
	e := NewEmptyBitmap(64)
	if e.Any() || e.Count() != 0 {
		t.Fatal("empty bitmap not empty")
	}
	e.Set(63)
	if !e.Any() || e.Count() != 1 {
		t.Fatal("Set on word boundary broken")
	}
}

func TestBitmapAnd(t *testing.T) {
	a := NewBitmap(130)
	b := NewEmptyBitmap(130)
	b.Set(0)
	b.Set(128)
	a.And(b)
	if a.Count() != 2 || !a.Get(0) || !a.Get(128) {
		t.Fatalf("And: count %d", a.Count())
	}
}

func TestBitmapCountProperty(t *testing.T) {
	f := func(clears []uint8) bool {
		b := NewBitmap(256)
		seen := map[int]bool{}
		for _, c := range clears {
			i := int(c)
			b.Clear(i)
			seen[i] = true
		}
		return b.Count() == 256-len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateColumnAndExpectedSum(t *testing.T) {
	// Two bundles with N(10,1) and N(20,1): E[sum] ~ 30.
	tb := New("t", 2000, "k")
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.Float(10))}})
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.Float(20))}})
	err := tb.GenerateColumn("v", 42, func(tp *Tuple) (dist.Instance, error) {
		mu, _ := tp.Cells[0].Det.AsFloat()
		return dist.NewInstance(dist.Normal{}, mu, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.ExpectedSum(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-30) > 0.2 {
		t.Fatalf("E[sum] = %v", got)
	}
}

func TestSelectWorldsDiscardsSampleMass(t *testing.T) {
	// The defining Sample-First weakness: a selective predicate leaves few
	// live worlds per bundle.
	tb := New("t", 1000, "k")
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.Float(0))}})
	err := tb.GenerateColumn("v", 7, func(*Tuple) (dist.Instance, error) {
		return dist.NewInstance(dist.Normal{}, 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tb.SelectWorlds(Col(1), GT, Lit{ctable.Float(2)})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 1 {
		t.Fatalf("bundle dropped entirely: %d", sel.Len())
	}
	live := sel.Tuples[0].Present.Count()
	// P[N(0,1) > 2] ~ 0.0228 -> ~23 live worlds of 1000.
	if live < 5 || live > 60 {
		t.Fatalf("live worlds %d, expected ~23", live)
	}
	// Estimate E[V | V > 2] from surviving samples: should be near 2.37.
	sum, n := 0.0, 0
	for w := 0; w < 1000; w++ {
		if sel.Tuples[0].Present.Get(w) {
			v, _ := sel.Tuples[0].Cells[1].At(w)
			sum += v
			n++
		}
	}
	if n != live {
		t.Fatal("presence bookkeeping inconsistent")
	}
	if math.Abs(sum/float64(n)-2.37) > 0.35 {
		t.Fatalf("conditional mean %v", sum/float64(n))
	}
}

func TestSelectWorldsDropsEmptyBundles(t *testing.T) {
	tb := New("t", 100, "k")
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.Float(0))}})
	err := tb.GenerateColumn("v", 9, func(*Tuple) (dist.Instance, error) {
		return dist.NewInstance(dist.Uniform{}, 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tb.SelectWorlds(Col(1), GT, Lit{ctable.Float(2)})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 0 {
		t.Fatal("impossible bundle kept")
	}
}

func TestSelectDet(t *testing.T) {
	tb := New("t", 10, "k")
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.String_("a"))}})
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.String_("b"))}})
	sel, err := tb.SelectDet(func(tp *Tuple) (bool, error) {
		return tp.Cells[0].Det.S == "a", nil
	})
	if err != nil || sel.Len() != 1 {
		t.Fatalf("SelectDet: %v len %d", err, sel.Len())
	}
}

func TestProjectArithmetic(t *testing.T) {
	tb := New("t", 500, "base")
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.Float(100))}})
	err := tb.GenerateColumn("u", 3, func(*Tuple) (dist.Instance, error) {
		return dist.NewInstance(dist.Uniform{}, 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// base * (1 + u): expectation 150.
	proj, err := tb.Project([]string{"scaled"}, []Scalar{
		BinOp{Op: '*', Left: Col(0), Right: BinOp{Op: '+', Left: Lit{ctable.Float(1)}, Right: Col(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := proj.ExpectedSum(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-150) > 2 {
		t.Fatalf("E[scaled] = %v", got)
	}
}

func TestEquiJoinPresenceIntersection(t *testing.T) {
	a := New("a", 100, "k")
	b := New("b", 100, "k")
	ta := Tuple{Cells: []Cell{DetCell(ctable.String_("x"))}, Present: NewEmptyBitmap(100)}
	tb_ := Tuple{Cells: []Cell{DetCell(ctable.String_("x"))}, Present: NewEmptyBitmap(100)}
	for w := 0; w < 50; w++ {
		ta.Present.Set(w)
	}
	for w := 25; w < 75; w++ {
		tb_.Present.Set(w)
	}
	a.MustAppend(ta)
	b.MustAppend(tb_)
	j, err := EquiJoin(a, b, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("join rows %d", j.Len())
	}
	if got := j.Tuples[0].Present.Count(); got != 25 {
		t.Fatalf("intersected presence %d, want 25", got)
	}
}

func TestMaxAndCountPerWorld(t *testing.T) {
	tb := New("t", 4, "v")
	t1 := Tuple{Cells: []Cell{SampledCell([]float64{1, 5, 3, 7})}, Present: NewBitmap(4)}
	t2 := Tuple{Cells: []Cell{SampledCell([]float64{2, 1, 9, 0})}, Present: NewEmptyBitmap(4)}
	t2.Present.Set(0)
	t2.Present.Set(2)
	tb.MustAppend(t1)
	tb.MustAppend(t2)
	maxes, err := tb.MaxPerWorld(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5, 9, 7}
	for i := range want {
		if maxes[i] != want[i] {
			t.Fatalf("world %d max %v, want %v", i, maxes[i], want[i])
		}
	}
	counts := tb.CountPerWorld()
	wantC := []float64{2, 1, 2, 1}
	for i := range wantC {
		if counts[i] != wantC[i] {
			t.Fatalf("world %d count %v", i, counts[i])
		}
	}
}

func TestGroupedExpectedSum(t *testing.T) {
	tb := New("t", 100, "g")
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.String_("a"))}})
	tb.MustAppend(Tuple{Cells: []Cell{DetCell(ctable.String_("b"))}})
	err := tb.GenerateColumn("v", 5, func(tp *Tuple) (dist.Instance, error) {
		if tp.Cells[0].Det.S == "a" {
			return dist.NewInstance(dist.Normal{}, 10, 0.5)
		}
		return dist.NewInstance(dist.Normal{}, 20, 0.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	sums, live, err := tb.GroupedExpectedSum(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sums["a"]-10) > 0.5 || math.Abs(sums["b"]-20) > 0.5 {
		t.Fatalf("group sums %v", sums)
	}
	if live["a"] != 100 || live["b"] != 100 {
		t.Fatalf("live counts %v", live)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty series")
	}
}

func TestAppendArityCheck(t *testing.T) {
	tb := New("t", 10, "a", "b")
	if err := tb.Append(Tuple{Cells: []Cell{DetCell(ctable.Float(1))}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestWorldCountMismatchJoin(t *testing.T) {
	a := New("a", 10, "k")
	b := New("b", 20, "k")
	if _, err := EquiJoin(a, b, 0, 0); err == nil {
		t.Fatal("world count mismatch accepted")
	}
}
