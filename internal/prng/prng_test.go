package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestKeyedDeterminism(t *testing.T) {
	a := NewKeyed(1, 2, 3)
	b := NewKeyed(1, 2, 3)
	c := NewKeyed(1, 2, 4)
	va, vb, vc := a.Float64(), b.Float64(), c.Float64()
	if va != vb {
		t.Fatalf("same key produced different values: %v vs %v", va, vb)
	}
	if va == vc {
		t.Fatalf("different keys produced identical values: %v", va)
	}
}

func TestMixKeySensitivity(t *testing.T) {
	// Nearby keys must decorrelate: flipping any single part changes the seed.
	base := MixKey(7, 8, 9)
	if MixKey(7, 8, 10) == base || MixKey(7, 9, 9) == base || MixKey(8, 8, 9) == base {
		t.Fatal("MixKey is insensitive to a key part")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) biased: count[%d] = %d", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(5).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 50, 200} {
		r := New(uint64(lambda * 1000))
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			if v < 0 {
				t.Fatalf("negative Poisson draw")
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("lambda=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Fatalf("lambda=%v: variance %v", lambda, variance)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	r := New(8)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestMul64MatchesBig(t *testing.T) {
	// Property: mul64 agrees with the identity via 32-bit decomposition.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via math/bits-free reference: (a*b) mod 2^64 == lo.
		return lo == a*b && (b == 0 || hi == mulHiRef(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// mulHiRef computes the high 64 bits of a*b by 4-way decomposition.
func mulHiRef(a, b uint64) uint64 {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	carry := (aLo*bLo)>>32 + (aHi*bLo)&mask + (aLo*bHi)&mask
	return aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry>>32
}

func TestUniformBitsKS(t *testing.T) {
	// A coarse Kolmogorov–Smirnov check on uniformity of Float64.
	r := New(9)
	const n = 10000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.Float64()
	}
	// Sort via simple insertion into buckets then compare CDF.
	const buckets = 100
	counts := make([]int, buckets)
	for _, v := range vals {
		b := int(v * buckets)
		if b == buckets {
			b--
		}
		counts[b]++
	}
	cum := 0
	maxDev := 0.0
	for i, c := range counts {
		cum += c
		emp := float64(cum) / n
		theo := float64(i+1) / buckets
		if d := math.Abs(emp - theo); d > maxDev {
			maxDev = d
		}
	}
	// KS critical value at alpha=0.001 for n=10000 is ~0.0195.
	if maxDev > 0.0195 {
		t.Fatalf("KS deviation %v exceeds critical value", maxDev)
	}
}
