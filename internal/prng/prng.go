// Package prng provides the deterministic pseudorandom number generation
// substrate used throughout PIP.
//
// PIP's symbolic representation requires that a random variable receive one
// consistent value per sample, no matter how many times the variable appears
// in a query result (paper §III-B: "the variable's identifier is used as part
// of the seed for the pseudorandom number generator used by the sampling
// process"). To make that cheap and stateless, every draw is produced by a
// counter-based generator keyed on (world seed, sample index, variable id):
// re-deriving the generator from the same key always reproduces the same
// stream, so no per-variable state needs to be stored.
//
// The core generator is splitmix64, which passes BigCrush, needs no warm-up
// and has a trivially seedable 64-bit state. On top of it the package
// provides the standard transforms used by the distribution classes:
// uniform, normal (both Box–Muller and inverse-CDF), exponential and
// Poisson draws.
package prng

import "math"

// Rand is a small, fast, deterministic pseudorandom generator based on
// splitmix64. The zero value is a valid generator seeded with 0; use New or
// NewKeyed to obtain a well-mixed stream.
type Rand struct {
	state uint64
	// cached spare normal deviate for Box–Muller pairs
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// NewKeyed returns a generator whose stream is a pure function of the given
// key parts. It is the hook used to give each (world, sample, variable)
// triple an independent, reproducible stream.
func NewKeyed(parts ...uint64) *Rand {
	return New(MixKey(parts...))
}

// MixKey hashes an arbitrary sequence of 64-bit key parts into a single
// well-mixed 64-bit seed. It applies the splitmix64 finalizer between parts,
// which is sufficient to decorrelate nearby keys (e.g. consecutive sample
// indices).
func MixKey(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = mix64(h)
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64 pseudorandom bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform pseudorandom float64 in the half-open interval
// [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits give a uniformly distributed dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform pseudorandom float64 in the open interval
// (0, 1). It is used where a subsequent transform (log, inverse CDF) cannot
// accept an exact 0 or 1.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform pseudorandom int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded draws.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// NormFloat64 returns a standard normal (mean 0, variance 1) deviate using
// the Box–Muller transform with spare caching.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	radius := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	r.spare = radius * math.Sin(theta)
	r.hasSpare = true
	return radius * math.Cos(theta)
}

// ExpFloat64 returns an exponential deviate with rate 1 via inverse-CDF.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Poisson returns a Poisson deviate with the given mean lambda.
//
// For small lambda it uses Knuth's product-of-uniforms method; for large
// lambda it uses the PTRS transformed-rejection method of Hörmann (1993),
// which is O(1) per draw.
func (r *Rand) Poisson(lambda float64) int64 {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		return r.poissonKnuth(lambda)
	default:
		return r.poissonPTRS(lambda)
	}
}

func (r *Rand) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

func (r *Rand) poissonPTRS(lambda float64) int64 {
	// Hörmann's PTRS algorithm. Constants follow the original paper.
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int64(k)
		}
	}
}

// logGamma returns ln Γ(x) for x > 0 using the Lanczos approximation.
// It is shared with internal/dist via re-implementation there; keeping a
// private copy avoids an import cycle for this one function.
func logGamma(x float64) float64 {
	l, _ := math.Lgamma(x)
	return l
}
