package cond

import (
	"math"
	"testing"
	"testing/quick"

	"pip/internal/dist"
	"pip/internal/expr"
)

func normalVar(id uint64) *expr.Variable {
	return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
}

func discreteVar(id uint64) *expr.Variable {
	return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.DiscreteUniform{}, 0, 9)}
}

func expVar(id uint64) *expr.Variable {
	return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Exponential{}, 1)}
}

func atom(l expr.Expr, op CmpOp, r expr.Expr) Atom { return NewAtom(l, op, r) }

func TestAtomHolds(t *testing.T) {
	x := normalVar(1)
	a := atom(expr.NewVar(x), GE, expr.Const(7))
	if !a.Holds(expr.Assignment{x.Key: 8}) {
		t.Fatal("8 >= 7 should hold")
	}
	if a.Holds(expr.Assignment{x.Key: 6}) {
		t.Fatal("6 >= 7 should not hold")
	}
}

func TestAtomNegate(t *testing.T) {
	x := normalVar(1)
	ops := []struct{ op, neg CmpOp }{
		{EQ, NEQ}, {NEQ, EQ}, {LT, GE}, {LE, GT}, {GT, LE}, {GE, LT},
	}
	for _, c := range ops {
		a := atom(expr.NewVar(x), c.op, expr.Const(1))
		if a.Negate().Op != c.neg {
			t.Fatalf("negate(%v) = %v, want %v", c.op, a.Negate().Op, c.neg)
		}
	}
	// Property: an atom and its negation never agree.
	a := atom(expr.NewVar(x), LT, expr.Const(0.5))
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		asn := expr.Assignment{x.Key: v}
		return a.Holds(asn) != a.Negate().Holds(asn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClauseAndSimplification(t *testing.T) {
	x := normalVar(1)
	c, ok := TrueClause().And(atom(expr.Const(1), LT, expr.Const(2)))
	if !ok || len(c) != 0 {
		t.Fatal("trivially true atom should be dropped")
	}
	_, ok = TrueClause().And(atom(expr.Const(2), LT, expr.Const(1)))
	if ok {
		t.Fatal("trivially false atom should fail the clause")
	}
	c, ok = TrueClause().And(atom(expr.NewVar(x), GT, expr.Const(0)))
	if !ok || len(c) != 1 {
		t.Fatal("symbolic atom should be kept")
	}
}

func TestClauseHolds(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.NewVar(x), GT, expr.Const(1)),
		atom(expr.NewVar(y), LT, expr.Const(5)),
	}
	if !c.Holds(expr.Assignment{x.Key: 2, y.Key: 3}) {
		t.Fatal("satisfying assignment rejected")
	}
	if c.Holds(expr.Assignment{x.Key: 0, y.Key: 3}) {
		t.Fatal("violating assignment accepted")
	}
	if !TrueClause().Holds(nil) {
		t.Fatal("TRUE clause should hold")
	}
}

func TestConditionDNF(t *testing.T) {
	x := normalVar(1)
	a := FromClause(Clause{atom(expr.NewVar(x), GT, expr.Const(5))})
	b := FromClause(Clause{atom(expr.NewVar(x), LT, expr.Const(-5))})
	d := a.Or(b)
	if len(d.Clauses) != 2 {
		t.Fatalf("Or should have 2 clauses, got %d", len(d.Clauses))
	}
	if !d.Holds(expr.Assignment{x.Key: 6}) || !d.Holds(expr.Assignment{x.Key: -6}) {
		t.Fatal("disjunction lost a branch")
	}
	if d.Holds(expr.Assignment{x.Key: 0}) {
		t.Fatal("disjunction accepted excluded point")
	}
}

func TestConditionAndDistributes(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	d1 := FromClause(Clause{atom(expr.NewVar(x), GT, expr.Const(0))}).
		Or(FromClause(Clause{atom(expr.NewVar(x), LT, expr.Const(-1))}))
	d2 := FromClause(Clause{atom(expr.NewVar(y), GT, expr.Const(0))})
	d := d1.And(d2)
	if len(d.Clauses) != 2 {
		t.Fatalf("distribution should give 2 clauses, got %d", len(d.Clauses))
	}
	// Property: And is semantically intersection.
	f := func(vx, vy float64) bool {
		if math.IsNaN(vx) || math.IsNaN(vy) {
			return true
		}
		asn := expr.Assignment{x.Key: vx, y.Key: vy}
		return d.Holds(asn) == (d1.Holds(asn) && d2.Holds(asn))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegateToDNF(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.NewVar(x), GT, expr.Const(0)),
		atom(expr.NewVar(y), LE, expr.Const(2)),
	}
	n := c.NegateToDNF()
	f := func(vx, vy float64) bool {
		if math.IsNaN(vx) || math.IsNaN(vy) {
			return true
		}
		asn := expr.Assignment{x.Key: vx, y.Key: vy}
		return n.Holds(asn) == !c.Holds(asn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !TrueClause().NegateToDNF().IsFalse() {
		t.Fatal("NOT TRUE should be FALSE")
	}
}

func TestTrueFalseConditions(t *testing.T) {
	if !TrueCondition().IsTrue() || TrueCondition().IsFalse() {
		t.Fatal("TrueCondition broken")
	}
	if FalseCondition().IsTrue() || !FalseCondition().IsFalse() {
		t.Fatal("FalseCondition broken")
	}
	if FalseCondition().Holds(nil) {
		t.Fatal("FALSE held")
	}
	if !TrueCondition().Holds(nil) {
		t.Fatal("TRUE did not hold")
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 20}
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Fatalf("intersect = %v", got)
	}
	if !a.Contains(0) || !a.Contains(10) || a.Contains(-0.1) {
		t.Fatal("Contains broken")
	}
	if (Interval{3, 2}).Empty() == false {
		t.Fatal("Empty broken")
	}
	if FullInterval().Bounded() {
		t.Fatal("full interval should be unbounded")
	}
	if !(Interval{0, math.Inf(1)}).Bounded() {
		t.Fatal("half-bounded interval should report Bounded")
	}
}

// --- Algorithm 3.2 ---

func TestConsistencyDeterministicAtoms(t *testing.T) {
	res := CheckConsistency(Clause{atom(expr.Const(1), GT, expr.Const(2))})
	if res.Verdict != Inconsistent {
		t.Fatalf("1 > 2: %v", res.Verdict)
	}
}

func TestConsistencyDiscreteContradiction(t *testing.T) {
	x := discreteVar(1)
	c := Clause{
		atom(expr.NewVar(x), EQ, expr.Const(1)),
		atom(expr.NewVar(x), EQ, expr.Const(2)),
	}
	if res := CheckConsistency(c); res.Verdict != Inconsistent {
		t.Fatalf("X=1 AND X=2: %v", res.Verdict)
	}
	// Same constant twice is fine.
	c2 := Clause{
		atom(expr.NewVar(x), EQ, expr.Const(1)),
		atom(expr.NewVar(x), EQ, expr.Const(1)),
	}
	if res := CheckConsistency(c2); res.Verdict == Inconsistent {
		t.Fatal("X=1 AND X=1 flagged inconsistent")
	}
}

func TestConsistencyContinuousEquality(t *testing.T) {
	y := normalVar(1)
	c := Clause{atom(expr.NewVar(y), EQ, expr.Const(3))}
	// Paper §III-C item 3: zero mass, treat as inconsistent.
	if res := CheckConsistency(c); res.Verdict != Inconsistent {
		t.Fatalf("continuous equality: %v", res.Verdict)
	}
	if res := CheckConsistencyOpt(c, false); res.Verdict == Inconsistent {
		t.Fatal("opt-out still treated equality as inconsistent")
	}
}

func TestConsistencyIntervalContradiction(t *testing.T) {
	y := normalVar(1)
	c := Clause{
		atom(expr.NewVar(y), GT, expr.Const(5)),
		atom(expr.NewVar(y), LT, expr.Const(3)),
	}
	if res := CheckConsistency(c); res.Verdict != Inconsistent {
		t.Fatalf("Y>5 AND Y<3: %v", res.Verdict)
	}
}

func TestConsistencyBoundsPropagation(t *testing.T) {
	y := normalVar(1)
	c := Clause{
		atom(expr.NewVar(y), GT, expr.Const(-3)),
		atom(expr.NewVar(y), LT, expr.Const(2)),
	}
	res := CheckConsistency(c)
	if res.Verdict != Consistent {
		t.Fatalf("verdict %v", res.Verdict)
	}
	iv := res.Bounds.Get(y.Key)
	if iv.Lo != -3 || iv.Hi != 2 {
		t.Fatalf("bounds %v", iv)
	}
}

func TestConsistencyTransitivePropagation(t *testing.T) {
	// X > Y and Y > 3 implies X > 3 after a propagation round.
	x, y := normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.NewVar(x), GT, expr.NewVar(y)),
		atom(expr.NewVar(y), GT, expr.Const(3)),
	}
	res := CheckConsistency(c)
	if res.Verdict != Consistent {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if iv := res.Bounds.Get(x.Key); iv.Lo < 3-1e-9 {
		t.Fatalf("X bounds %v; expected Lo >= 3", iv)
	}
	if iv := res.Bounds.Get(y.Key); iv.Lo != 3 {
		t.Fatalf("Y bounds %v", iv)
	}
}

func TestConsistencyChainContradiction(t *testing.T) {
	// X > Y, Y > X is unsatisfiable but needs the linear tightener on both.
	x, y := normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.NewVar(x), GT, expr.Add(expr.NewVar(y), expr.Const(1))),
		atom(expr.NewVar(y), GT, expr.Add(expr.NewVar(x), expr.Const(1))),
	}
	res := CheckConsistency(c)
	// The pure interval tightener cannot refute this without finite seeds
	// (both intervals stay infinite), so the check may come back
	// weakly consistent — but it must not claim strong consistency if it
	// skipped anything, and must never claim Inconsistent wrongly on the
	// satisfiable variant below.
	if res.Verdict == Inconsistent {
		t.Log("tightener refuted the cyclic chain (stronger than required)")
	}
	sat := Clause{
		atom(expr.NewVar(x), GT, expr.Add(expr.NewVar(y), expr.Const(1))),
		atom(expr.NewVar(y), GT, expr.Const(0)),
	}
	if CheckConsistency(sat).Verdict == Inconsistent {
		t.Fatal("satisfiable chain flagged inconsistent")
	}
}

func TestConsistencySupportSeeding(t *testing.T) {
	// Exponential has support [0, inf); Y < -1 is inconsistent with it.
	y := expVar(1)
	c := Clause{atom(expr.NewVar(y), LT, expr.Const(-1))}
	if res := CheckConsistency(c); res.Verdict != Inconsistent {
		t.Fatalf("Exponential < -1: %v", res.Verdict)
	}
}

func TestConsistencyNonLinearSkipped(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.Mul(expr.NewVar(x), expr.NewVar(y)), GT, expr.Const(0)),
	}
	res := CheckConsistency(c)
	if res.Verdict != WeaklyConsistent {
		t.Fatalf("non-linear atom should downgrade to weak: %v", res.Verdict)
	}
}

func TestConsistencyLinearCombination(t *testing.T) {
	// 2X + 3Y >= 12, X <= 0, Y <= 0 is inconsistent.
	x, y := normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.Add(expr.Mul(expr.Const(2), expr.NewVar(x)), expr.Mul(expr.Const(3), expr.NewVar(y))), GE, expr.Const(12)),
		atom(expr.NewVar(x), LE, expr.Const(0)),
		atom(expr.NewVar(y), LE, expr.Const(0)),
	}
	if res := CheckConsistency(c); res.Verdict != Inconsistent {
		t.Fatalf("verdict %v, bounds %v", res.Verdict, res.Bounds)
	}
}

func TestConsistencyNeverRejectsSatisfiable(t *testing.T) {
	// Property: clauses generated with a known satisfying point are never
	// declared Inconsistent.
	x, y := normalVar(1), normalVar(2)
	f := func(vx, vy, m1, m2 float64) bool {
		if math.IsNaN(vx) || math.IsNaN(vy) || math.IsNaN(m1) || math.IsNaN(m2) {
			return true
		}
		if math.Abs(vx) > 1e6 || math.Abs(vy) > 1e6 || math.Abs(m1) > 1e6 || math.Abs(m2) > 1e6 {
			return true
		}
		// Build atoms that (vx, vy) satisfies by construction.
		c := Clause{
			atom(expr.NewVar(x), GE, expr.Const(vx-math.Abs(m1))),
			atom(expr.NewVar(x), LE, expr.Const(vx+1)),
			atom(expr.NewVar(y), LE, expr.Const(vy+math.Abs(m2))),
			atom(expr.Add(expr.NewVar(x), expr.NewVar(y)), LE, expr.Const(vx+vy)),
		}
		res := CheckConsistency(c)
		return res.Verdict != Inconsistent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// --- Independence partitioning ---

func TestPartitionIndependentGroups(t *testing.T) {
	// The paper's example (§IV-A-c): (Y1 > 4) AND (Y1*Y2 > Y3) AND (A < 6)
	// gives two minimal independent subsets.
	y1, y2, y3, a := normalVar(1), normalVar(2), normalVar(3), normalVar(4)
	c := Clause{
		atom(expr.NewVar(y1), GT, expr.Const(4)),
		atom(expr.Mul(expr.NewVar(y1), expr.NewVar(y2)), GT, expr.NewVar(y3)),
		atom(expr.NewVar(a), LT, expr.Const(6)),
	}
	groups := Partition(c, nil)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[0].Atoms) != 2 || len(groups[0].Keys) != 3 {
		t.Fatalf("group 0: %d atoms, %d keys", len(groups[0].Atoms), len(groups[0].Keys))
	}
	if len(groups[1].Atoms) != 1 || len(groups[1].Keys) != 1 {
		t.Fatalf("group 1: %d atoms, %d keys", len(groups[1].Atoms), len(groups[1].Keys))
	}
}

func TestPartitionExtraVariables(t *testing.T) {
	x, y := normalVar(1), normalVar(2)
	c := Clause{atom(expr.NewVar(x), GT, expr.Const(0))}
	groups := Partition(c, []*expr.Variable{y})
	if len(groups) != 2 {
		t.Fatalf("extra variable should have its own group; got %d", len(groups))
	}
}

func TestPartitionMultivariateLinking(t *testing.T) {
	// Components of the same multivariate variable must share a group even
	// when no atom joins them.
	l, _ := dist.CholeskyFromCovariance([][]float64{{1, 0}, {0, 1}})
	inst := dist.MustInstance(dist.MVNormal{}, dist.MVNormalParams([]float64{0, 0}, l)...)
	v0 := &expr.Variable{Key: expr.VarKey{ID: 7, Subscript: 0}, Dist: inst}
	v1 := &expr.Variable{Key: expr.VarKey{ID: 7, Subscript: 1}, Dist: inst}
	c := Clause{
		atom(expr.NewVar(v0), GT, expr.Const(0)),
		atom(expr.NewVar(v1), LT, expr.Const(1)),
	}
	groups := Partition(c, nil)
	if len(groups) != 1 {
		t.Fatalf("multivariate components split into %d groups", len(groups))
	}
}

func TestPartitionDeterministicOrder(t *testing.T) {
	x, y, z := normalVar(3), normalVar(1), normalVar(2)
	c := Clause{
		atom(expr.NewVar(x), GT, expr.Const(0)),
		atom(expr.NewVar(y), GT, expr.Const(0)),
		atom(expr.NewVar(z), GT, expr.Const(0)),
	}
	g1 := Partition(c, nil)
	g2 := Partition(c, nil)
	if len(g1) != 3 || len(g2) != 3 {
		t.Fatalf("want 3 groups, got %d/%d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i].Keys[0] != g2[i].Keys[0] {
			t.Fatal("partition order is not deterministic")
		}
	}
	if g1[0].Keys[0].ID != 1 || g1[1].Keys[0].ID != 2 || g1[2].Keys[0].ID != 3 {
		t.Fatal("groups not sorted by smallest key")
	}
}

func TestStringRendering(t *testing.T) {
	x := &expr.Variable{Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 0, 1), Name: "Y"}
	c := Clause{atom(expr.NewVar(x), GE, expr.Const(7))}
	if got := c.String(); got != "Y >= 7" {
		t.Fatalf("clause string %q", got)
	}
	if got := TrueClause().String(); got != "TRUE" {
		t.Fatalf("true clause string %q", got)
	}
	if got := FalseCondition().String(); got != "FALSE" {
		t.Fatalf("false condition string %q", got)
	}
	d := FromClause(c).Or(FromClause(Clause{atom(expr.NewVar(x), LT, expr.Const(0))}))
	if got := d.String(); got != "Y >= 7 OR Y < 0" {
		t.Fatalf("DNF string %q", got)
	}
}
