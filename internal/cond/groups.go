package cond

import (
	"sort"

	"pip/internal/expr"
)

// Group is a minimal independent subset of a clause (paper §IV-A-c): a set
// of atoms sharing variables only with each other, plus the variables they
// mention. Groups sharing no variables may be sampled independently, which
// both reduces the work lost to rejected samples and lowers the rejection
// frequency itself.
type Group struct {
	Atoms Clause
	Keys  []expr.VarKey
	Vars  map[expr.VarKey]*expr.Variable
}

// Partition splits a clause into its minimal independent subsets using a
// union-find over the variables mentioned by each atom. Variables drawn from
// the same multivariate distribution instance (same variable ID, different
// subscripts) are merged even if no atom joins them, because they are
// statistically dependent through the joint distribution.
//
// extra lists variables that must be represented even if no atom mentions
// them (e.g. variables of the target expression in Algorithm 4.3); each
// such variable gets a group of its own unless an atom already links it.
// Deterministic atoms are ignored. The returned groups are deterministic in
// order (sorted by smallest member key).
func Partition(c Clause, extra []*expr.Variable) []Group {
	type atomInfo struct {
		atom Atom
		keys []expr.VarKey
	}

	uf := newUnionFind()
	atoms := make([]atomInfo, 0, len(c))
	varsByKey := map[expr.VarKey]*expr.Variable{}

	addVar := func(k expr.VarKey, v *expr.Variable) {
		varsByKey[k] = v
		uf.add(k)
		// Multivariate components share an ID: link to the canonical
		// subscript-0 component so the whole vector lands in one group.
		root := expr.VarKey{ID: k.ID, Subscript: 0}
		if root != k {
			if _, seen := varsByKey[root]; !seen {
				// Materialise the canonical component so joint sampling
				// knows the distribution even if subscript 0 is unused.
				varsByKey[root] = &expr.Variable{Key: root, Dist: v.Dist, Name: v.Name}
			}
			uf.add(root)
			uf.union(k, root)
		}
	}

	for _, a := range c {
		if a.IsDeterministic() {
			continue
		}
		set := map[expr.VarKey]*expr.Variable{}
		a.CollectVars(set)
		keys := make([]expr.VarKey, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		// Registration order feeds the union-find, so keep it sorted rather
		// than map-ordered.
		for _, k := range keys {
			addVar(k, set[k])
		}
		for i := 1; i < len(keys); i++ {
			uf.union(keys[0], keys[i])
		}
		atoms = append(atoms, atomInfo{atom: a, keys: keys})
	}

	for _, v := range extra {
		addVar(v.Key, v)
	}

	// Bucket variables and atoms by root, visiting keys in sorted order so
	// every group's Keys slice is built deterministically.
	allKeys := make([]expr.VarKey, 0, len(varsByKey))
	for k := range varsByKey {
		allKeys = append(allKeys, k)
	}
	sort.Slice(allKeys, func(i, j int) bool { return allKeys[i].Less(allKeys[j]) })
	groups := map[expr.VarKey]*Group{}
	for _, k := range allKeys {
		root := uf.find(k)
		g := groups[root]
		if g == nil {
			g = &Group{Vars: map[expr.VarKey]*expr.Variable{}}
			groups[root] = g
		}
		g.Keys = append(g.Keys, k)
		g.Vars[k] = varsByKey[k]
	}
	for _, ai := range atoms {
		root := uf.find(ai.keys[0])
		groups[root].Atoms = append(groups[root].Atoms, ai.atom)
	}

	// Keys are already sorted per group (appended in global sorted order);
	// order the groups themselves by smallest member key.
	roots := make([]expr.VarKey, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Less(roots[j]) })
	out := make([]Group, 0, len(groups))
	for _, root := range roots {
		out = append(out, *groups[root])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Keys[0].Less(out[j].Keys[0]) })
	return out
}

// Touches reports whether the group mentions any of the given keys.
func (g Group) Touches(keys map[expr.VarKey]bool) bool {
	for _, k := range g.Keys {
		if keys[k] {
			return true
		}
	}
	return false
}

// unionFind is a plain union-find (path halving + union by size) keyed by
// expr.VarKey.
type unionFind struct {
	parent map[expr.VarKey]expr.VarKey
	size   map[expr.VarKey]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[expr.VarKey]expr.VarKey{}, size: map[expr.VarKey]int{}}
}

func (u *unionFind) add(k expr.VarKey) {
	if _, ok := u.parent[k]; !ok {
		u.parent[k] = k
		u.size[k] = 1
	}
}

func (u *unionFind) find(k expr.VarKey) expr.VarKey {
	for u.parent[k] != k {
		u.parent[k] = u.parent[u.parent[k]]
		k = u.parent[k]
	}
	return k
}

func (u *unionFind) union(a, b expr.VarKey) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
