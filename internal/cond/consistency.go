package cond

import (
	"math"

	"pip/internal/expr"
)

// Verdict is the result of a consistency check. Following Algorithm 3.2,
// some verdicts are strong (definitely consistent / inconsistent) and some
// weak (no contradiction found, but equations were skipped).
type Verdict int

// Consistency verdicts.
const (
	// Inconsistent: the clause provably admits no satisfying assignment
	// (strong verdict — the row may be deleted).
	Inconsistent Verdict = iota
	// Consistent: bounds propagation reached a fixpoint with no empty
	// interval and no equation was skipped (strong verdict).
	Consistent
	// WeaklyConsistent: no contradiction was found, but some atoms were
	// beyond the tightener (non-linear, or disjunctive) and were skipped;
	// the Monte Carlo phase enforces them (weak verdict, Algorithm 3.2
	// line 13 italics).
	WeaklyConsistent
)

// String names the verdict for diagnostics.
func (v Verdict) String() string {
	switch v {
	case Inconsistent:
		return "Inconsistent"
	case Consistent:
		return "Consistent"
	case WeaklyConsistent:
		return "WeaklyConsistent"
	default:
		return "?"
	}
}

// CheckResult carries the verdict plus the bounds map accumulated during
// propagation; the sampler reuses the bounds for CDF-constrained sampling
// (Algorithm 4.3 lines 7–10).
type CheckResult struct {
	Verdict Verdict
	Bounds  Bounds
}

// maxTightenIterations caps the fixpoint loop; each productive iteration
// must shrink at least one interval, and oscillating shrinkage converges
// geometrically, so a modest cap suffices in practice.
const maxTightenIterations = 64

// CheckConsistency implements Algorithm 3.2 on a conjunctive clause:
//
//  1. Discrete contradictions: X = c1 AND X = c2 with c1 != c2 (and the
//     directly evaluable variants X = c AND X <> c, bounds excluding c).
//  2. Continuous equality handling (§III-C item 3): Y = e atoms over
//     continuous variables carry zero probability mass and may be treated
//     as inconsistent; Y <> e is treated as true and ignored. The caller
//     controls this via treatContinuousEq.
//  3. Interval bounds fixpoint with tighten1 on each linear atom; an empty
//     interval is a strong inconsistency.
//
// Atoms that are not linear are skipped, downgrading the verdict to
// WeaklyConsistent.
func CheckConsistency(c Clause) CheckResult {
	return CheckConsistencyOpt(c, true)
}

// CheckConsistencyOpt is CheckConsistency with control over whether
// zero-mass continuous equalities are treated as inconsistent (the paper's
// recommended treatment) or merely skipped.
func CheckConsistencyOpt(c Clause, treatContinuousEq bool) CheckResult {
	bounds := Bounds{}
	skipped := 0

	// Seed bounds with distribution support so e.g. Exponential variables
	// start at [0, inf).
	_, vars := c.Vars()
	for k, v := range vars {
		lo, hi := v.Dist.Support()
		if lo != math.Inf(-1) || hi != math.Inf(1) {
			bounds[k] = Interval{lo, hi}
		}
	}

	// Pass 1: deterministic atoms and discrete equality contradictions.
	eqConst := map[expr.VarKey]float64{}
	for _, a := range c {
		if a.IsDeterministic() {
			if !a.Holds(nil) {
				return CheckResult{Verdict: Inconsistent, Bounds: bounds}
			}
			continue
		}
		// Single-variable equality to a constant?
		if k, val, ok := varEqualsConst(a); ok {
			v := vars[k]
			// Integer-valued classes (including countable ones like
			// Poisson) carry positive mass at integer points; only truly
			// continuous equalities are zero-mass.
			discrete := v != nil && v.Dist.IntegerValued()
			if !discrete {
				// Continuous equality: zero mass (§III-C item 3).
				if treatContinuousEq {
					return CheckResult{Verdict: Inconsistent, Bounds: bounds}
				}
				skipped++
				continue
			}
			if prev, seen := eqConst[k]; seen && prev != val {
				return CheckResult{Verdict: Inconsistent, Bounds: bounds}
			}
			eqConst[k] = val
			// Equality pins the interval.
			iv := bounds.Get(k).Intersect(Interval{val, val})
			if iv.Empty() {
				return CheckResult{Verdict: Inconsistent, Bounds: bounds}
			}
			bounds[k] = iv
		}
	}

	// Pass 2: fixpoint interval propagation with tighten1 over linear atoms.
	lins := make([]linAtom, 0, len(c))
	for _, a := range c {
		if a.IsDeterministic() {
			continue
		}
		la, ok := makeLinAtom(a)
		if !ok {
			// Non-linear (degree > 1 or non-polynomial): tightenN for
			// higher degrees is not implemented, so skip (Alg 3.2 line 11).
			skipped++
			continue
		}
		if la.skip {
			skipped++
			continue
		}
		lins = append(lins, la)
	}

	changed := true
	for iter := 0; iter < maxTightenIterations && changed; iter++ {
		changed = false
		for _, la := range lins {
			for _, k := range la.keys {
				iv := tighten1(k, la, bounds)
				cur := bounds.Get(k)
				next := cur.Intersect(iv)
				if next.Empty() {
					bounds[k] = next
					return CheckResult{Verdict: Inconsistent, Bounds: bounds}
				}
				if next != cur {
					bounds[k] = next
					changed = true
				}
			}
		}
	}

	if skipped > 0 {
		return CheckResult{Verdict: WeaklyConsistent, Bounds: bounds}
	}
	return CheckResult{Verdict: Consistent, Bounds: bounds}
}

// varEqualsConst recognises atoms of the form X = c or c = X with exactly
// one variable on one side.
func varEqualsConst(a Atom) (expr.VarKey, float64, bool) {
	if a.Op != EQ {
		return expr.VarKey{}, 0, false
	}
	if v, ok := a.Left.(expr.Var); ok && expr.IsDeterministic(a.Right) {
		return v.V.Key, a.Right.Eval(nil), true
	}
	if v, ok := a.Right.(expr.Var); ok && expr.IsDeterministic(a.Left) {
		return v.V.Key, a.Left.Eval(nil), true
	}
	return expr.VarKey{}, 0, false
}

// linAtom is an atom reduced to the normal form
//
//	sum_i coeff_i * X_i + constant  (op)  0
//
// with op one of >, >=, <, <=, <> (equalities over continuous variables are
// handled in pass 1; over discrete variables they become two inequalities).
type linAtom struct {
	lf   expr.LinearForm
	op   CmpOp
	keys []expr.VarKey
	skip bool
}

func makeLinAtom(a Atom) (linAtom, bool) {
	lf, ok := a.diff()
	if !ok {
		return linAtom{}, false
	}
	la := linAtom{lf: lf, op: a.Op, keys: lf.SortedKeys()}
	switch a.Op {
	case NEQ:
		// Single-point exclusions don't tighten intervals; skip.
		la.skip = true
	case EQ:
		// Treated as both >= and <=; tighten1 handles EQ by clamping both
		// sides, which we express by running GE and LE passes. Mark EQ and
		// let tighten1 compute the two-sided bound.
	}
	return la, true
}

// tighten1 implements the degree-1 tightener of Algorithm 3.2: given
// aX + (rest) op 0 and bounds on the other variables, derive an implied
// interval for X. For a > 0 and op ">= 0": X >= -(max of rest)/a is wrong —
// we need the *minimum* of the rest to find the loosest bound that must
// still hold; the derivation below uses interval arithmetic on the rest
// term, which handles both signs uniformly.
func tighten1(x expr.VarKey, la linAtom, b Bounds) Interval {
	a := la.lf.Coeffs[x]
	if a == 0 {
		return FullInterval()
	}
	// rest = constant + sum_{k != x} coeff_k * X_k, as an interval.
	restLo, restHi := la.lf.Constant, la.lf.Constant
	for _, k := range la.keys {
		if k == x {
			continue
		}
		ck := la.lf.Coeffs[k]
		iv := b.Get(k)
		lo, hi := scaleInterval(ck, iv)
		restLo += lo
		restHi += hi
		if math.IsInf(restLo, -1) && math.IsInf(restHi, 1) {
			// No information to be had.
			return FullInterval()
		}
	}

	// a*X + rest (op) 0  =>  X (op') -rest/a, where the satisfiable region
	// over all rest values in [restLo, restHi] is the union; the implied
	// *necessary* bound on X uses the extreme of -rest/a that keeps the
	// atom satisfiable for at least one rest value.
	//
	// For op in {GT, GE}: a*X >= -rest for some rest in [restLo, restHi]
	//   => a*X >= -restHi.
	// For op in {LT, LE}: a*X <= -rest for some rest => a*X <= -restLo.
	// For EQ: a*X = -rest for some rest => a*X in [-restHi, -restLo].
	switch la.op {
	case GT, GE:
		bound := -restHi
		if a > 0 {
			return Interval{bound / a, math.Inf(1)}
		}
		return Interval{math.Inf(-1), bound / a}
	case LT, LE:
		bound := -restLo
		if a > 0 {
			return Interval{math.Inf(-1), bound / a}
		}
		return Interval{bound / a, math.Inf(1)}
	case EQ:
		lo, hi := -restHi, -restLo
		if a > 0 {
			return Interval{lo / a, hi / a}
		}
		return Interval{hi / a, lo / a}
	default:
		return FullInterval()
	}
}

// scaleInterval returns c * [iv.Lo, iv.Hi] as (lo, hi), handling sign and
// infinities (0 * inf is treated as 0, which is the correct limit for
// coefficient 0).
func scaleInterval(c float64, iv Interval) (float64, float64) {
	if c == 0 {
		return 0, 0
	}
	lo, hi := c*iv.Lo, c*iv.Hi
	if c < 0 {
		lo, hi = hi, lo
	}
	if math.IsNaN(lo) {
		lo = math.Inf(-1)
	}
	if math.IsNaN(hi) {
		hi = math.Inf(1)
	}
	return lo, hi
}
