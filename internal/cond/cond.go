// Package cond implements c-table conditions (paper §II-A, §III-B/C):
// boolean formulas over atomic comparisons of random-variable equations.
//
// Following the paper, each c-table row carries a conjunction of atoms;
// general boolean structure is maintained in disjunctive normal form, with
// disjunctive terms normally encoded as separate rows (bag semantics) and
// coalesced by DISTINCT. The package therefore provides two layers:
//
//   - Clause: a conjunction of atoms — the per-row local condition.
//   - Condition: a DNF (disjunction of clauses), produced by distinct and
//     difference, and consumed by the aconf() general integrator.
//
// It also implements Algorithm 3.2 (consistency checking with interval
// bounds propagation, tighten1 for linear atoms) and the minimal
// independent variable-subset partitioning of §IV-A-c.
package cond

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pip/internal/expr"
)

// CmpOp enumerates the comparison operators allowed in atomic conditions.
type CmpOp int

// Comparison operators (=, <>, <, <=, >, >=).
const (
	EQ CmpOp = iota
	NEQ
	LT
	LE
	GT
	GE
)

// String renders the operator in SQL syntax.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NEQ:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary comparison operator.
func (o CmpOp) Negate() CmpOp {
	switch o {
	case EQ:
		return NEQ
	case NEQ:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	default:
		return o
	}
}

// holds evaluates the comparison on concrete values.
func (o CmpOp) holds(l, r float64) bool {
	switch o {
	case EQ:
		return l == r
	case NEQ:
		return l != r
	case LT:
		return l < r
	case LE:
		return l <= r
	case GT:
		return l > r
	case GE:
		return l >= r
	default:
		return false
	}
}

// Atom is an atomic condition: an inequality between two random-variable
// equations (constants being the degenerate case).
type Atom struct {
	Op          CmpOp
	Left, Right expr.Expr
}

// NewAtom builds an atom.
func NewAtom(l expr.Expr, op CmpOp, r expr.Expr) Atom {
	return Atom{Op: op, Left: l, Right: r}
}

// Holds evaluates the atom under a concrete variable assignment.
func (a Atom) Holds(asn expr.Assignment) bool {
	return a.Op.holds(a.Left.Eval(asn), a.Right.Eval(asn))
}

// Negate returns the complementary atom.
func (a Atom) Negate() Atom {
	return Atom{Op: a.Op.Negate(), Left: a.Left, Right: a.Right}
}

// CollectVars adds the atom's variables to set.
func (a Atom) CollectVars(set map[expr.VarKey]*expr.Variable) {
	a.Left.CollectVars(set)
	a.Right.CollectVars(set)
}

// IsDeterministic reports whether the atom contains no random variables.
func (a Atom) IsDeterministic() bool {
	set := map[expr.VarKey]*expr.Variable{}
	a.CollectVars(set)
	return len(set) == 0
}

// String renders the atom in infix form.
func (a Atom) String() string {
	return a.Left.String() + " " + a.Op.String() + " " + a.Right.String()
}

// diff returns the linear form of Left - Right, used by the bounds tightener.
func (a Atom) diff() (expr.LinearForm, bool) {
	return expr.Linearize(expr.Sub(a.Left, a.Right))
}

// Clause is a conjunction of atoms — the local condition of one c-table row.
// The nil/empty clause is TRUE.
type Clause []Atom

// TrueClause is the always-true local condition.
func TrueClause() Clause { return nil }

// And returns the conjunction of c and atoms, simplifying away atoms that
// are deterministically true and collapsing to a contradiction marker when a
// deterministic atom is false. The second return value is false if the
// clause is deterministically unsatisfiable.
func (c Clause) And(atoms ...Atom) (Clause, bool) {
	out := make(Clause, 0, len(c)+len(atoms))
	out = append(out, c...)
	for _, a := range atoms {
		if a.IsDeterministic() {
			if a.Holds(nil) {
				continue // trivially true: drop
			}
			return nil, false // trivially false: row cannot exist
		}
		out = append(out, a)
	}
	return out, true
}

// AndClause conjoins two clauses (deterministic simplification as in And).
func (c Clause) AndClause(o Clause) (Clause, bool) {
	return c.And(o...)
}

// Holds evaluates the conjunction under an assignment.
func (c Clause) Holds(asn expr.Assignment) bool {
	for _, a := range c {
		if !a.Holds(asn) {
			return false
		}
	}
	return true
}

// CollectVars adds all variables of the clause to set.
func (c Clause) CollectVars(set map[expr.VarKey]*expr.Variable) {
	for _, a := range c {
		a.CollectVars(set)
	}
}

// Vars returns the clause's variables as a key-sorted slice plus lookup map.
func (c Clause) Vars() ([]expr.VarKey, map[expr.VarKey]*expr.Variable) {
	set := map[expr.VarKey]*expr.Variable{}
	c.CollectVars(set)
	keys := make([]expr.VarKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys, set
}

// IsTrue reports whether the clause is the trivial TRUE condition.
func (c Clause) IsTrue() bool { return len(c) == 0 }

// String renders the clause; TRUE for the empty clause.
func (c Clause) String() string {
	if len(c) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " AND ")
}

// Clone returns a copy whose backing array is independent of c.
func (c Clause) Clone() Clause {
	if c == nil {
		return nil
	}
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// NegateToDNF returns NOT(c) as a DNF condition: by De Morgan, the negation
// of a conjunction is the disjunction of the negated atoms. Used by the
// c-table difference operator (Fig. 1).
func (c Clause) NegateToDNF() Condition {
	if len(c) == 0 {
		return FalseCondition()
	}
	out := Condition{Clauses: make([]Clause, 0, len(c))}
	for _, a := range c {
		out.Clauses = append(out.Clauses, Clause{a.Negate()})
	}
	return out
}

// Condition is a DNF formula: a disjunction of conjunctive clauses. The
// zero value (no clauses, False=false marker absent) — use TrueCondition or
// FalseCondition constructors. A Condition with zero clauses is FALSE; the
// TRUE condition is a single empty clause.
type Condition struct {
	Clauses []Clause
}

// TrueCondition returns the always-true condition.
func TrueCondition() Condition { return Condition{Clauses: []Clause{nil}} }

// FalseCondition returns the always-false condition.
func FalseCondition() Condition { return Condition{} }

// FromClause wraps a single conjunctive clause as a DNF condition.
func FromClause(c Clause) Condition { return Condition{Clauses: []Clause{c}} }

// IsFalse reports whether the condition has no satisfiable clause
// syntactically (no clauses at all).
func (d Condition) IsFalse() bool { return len(d.Clauses) == 0 }

// IsTrivialTrue reports whether the condition is exactly the single TRUE
// clause — the shape for which And is the identity on the other operand.
// Callers that batch work across And calls key on this, not IsTrue, because
// a multi-clause condition with one TRUE clause still distributes.
func (d Condition) IsTrivialTrue() bool {
	return len(d.Clauses) == 1 && len(d.Clauses[0]) == 0
}

// IsTrue reports whether some clause is the trivial TRUE clause.
func (d Condition) IsTrue() bool {
	for _, c := range d.Clauses {
		if c.IsTrue() {
			return true
		}
	}
	return false
}

// Holds evaluates the DNF under an assignment.
func (d Condition) Holds(asn expr.Assignment) bool {
	for _, c := range d.Clauses {
		if c.Holds(asn) {
			return true
		}
	}
	return false
}

// Or returns the disjunction of two conditions (clause concatenation).
func (d Condition) Or(o Condition) Condition {
	out := Condition{Clauses: make([]Clause, 0, len(d.Clauses)+len(o.Clauses))}
	out.Clauses = append(out.Clauses, d.Clauses...)
	out.Clauses = append(out.Clauses, o.Clauses...)
	return out
}

// And returns the conjunction of two DNF conditions by distributing clauses
// (cross product). Deterministically false products are dropped.
func (d Condition) And(o Condition) Condition {
	// Identity fast paths: a side whose sole clause is TRUE cannot change
	// the other side, because Clause.And never stores deterministic atoms,
	// so distributing TRUE over the other side reproduces it exactly.
	// Conditions are immutable by convention, so returning the operand
	// unchanged is safe sharing, not aliasing.
	if len(d.Clauses) == 1 && len(d.Clauses[0]) == 0 {
		return o
	}
	if len(o.Clauses) == 1 && len(o.Clauses[0]) == 0 {
		return d
	}
	out := Condition{}
	for _, a := range d.Clauses {
		for _, b := range o.Clauses {
			if merged, ok := a.AndClause(b); ok {
				out.Clauses = append(out.Clauses, merged)
			}
		}
	}
	return out
}

// CollectVars adds all variables of the condition to set.
func (d Condition) CollectVars(set map[expr.VarKey]*expr.Variable) {
	for _, c := range d.Clauses {
		c.CollectVars(set)
	}
}

// String renders the DNF.
func (d Condition) String() string {
	if len(d.Clauses) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(d.Clauses))
	for i, c := range d.Clauses {
		if len(d.Clauses) > 1 && len(c) > 1 {
			parts[i] = "(" + c.String() + ")"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " OR ")
}

// ---------------------------------------------------------------------------
// Interval bounds

// Interval is a closed interval [Lo, Hi] over the extended reals. The
// consistency checker propagates one Interval per continuous variable.
type Interval struct {
	Lo, Hi float64
}

// FullInterval is (-inf, +inf).
func FullInterval() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Bounded reports whether either side is finite (i.e. the interval carries
// information beyond the full real line).
func (iv Interval) Bounded() bool {
	return !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1)
}

// String renders the interval.
func (iv Interval) String() string {
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// Bounds maps variables to their propagated intervals.
type Bounds map[expr.VarKey]Interval

// Get returns the interval for k, defaulting to the full real line.
func (b Bounds) Get(k expr.VarKey) Interval {
	if iv, ok := b[k]; ok {
		return iv
	}
	return FullInterval()
}
