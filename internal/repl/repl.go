// Package repl replicates a pip database: a primary ships its write-ahead
// statement log (and, for catch-up, whole catalog snapshots) over the wire
// to read-only replicas that replay it through the ordinary SQL path.
//
// The subsystem is thin by design because the engine's determinism does
// the heavy lifting. A catalog is a pure function of (seed, ordered
// statement log) — DDL/DML never consult the sampler and random-variable
// identifiers are allocated from a counter in statement order — so a
// replica that applies the same records a primary logged is byte-identical
// to it, not merely convergent: at equal log sequence numbers, primary and
// replica answer every query with the same bits. There is no page
// shipping, no conflict resolution, and no quorum; the log IS the state.
//
// # Topology and protocol
//
// One Primary wraps the primary's wal.Store and serves two HTTP endpoints
// (mounted on pipd's -replicate-addr listener):
//
//	GET  /v1/repl/stream?from=N&replica=ID   NDJSON record stream
//	POST /v1/repl/ack                        replica progress reports
//
// A stream opens with a hello frame carrying the primary's boot seed and
// log position. When the requested resume point is still on disk the
// primary streams records directly; when pruning has compacted it into a
// snapshot, the primary first streams the newest snapshot file in chunks
// (snap frames, then a snapend with checksum), and the record stream
// resumes past its coverage. Record frames carry the exact payload bytes
// the WAL's CRC-32C protects, re-verified on the replica, so the wire
// cannot silently corrupt a statement.
//
// A Follower owns the replica side: connect → hello → (snapshot load) →
// replay → live apply, acking applied sequence numbers back for the
// primary's lag accounting, and reconnecting with resume-from-seq after
// network failures. Failures of integrity — corrupt or out-of-order
// frames, a seed mismatch, a replay whose outcome contradicts the logged
// one — are not retried: the follower latches a typed error and stops,
// because a replica that cannot prove it matches the log must fail-stop
// rather than serve silently wrong reads. The replica database is marked
// read-only (core.ErrReadOnly names the primary); only the follower's
// applier handles may mutate it.
package repl

import (
	"errors"
	"strings"
)

// Endpoint paths served by the primary and dialed by followers.
const (
	StreamPath = "/v1/repl/stream"
	AckPath    = "/v1/repl/ack"
)

// Typed failures of the replication stream; match with errors.Is. All four
// are terminal for a follower: it latches the error, stops applying, and
// Run returns it (transient network failures, by contrast, reconnect).
var (
	// ErrStreamCorrupt reports a stream frame that failed its checksum,
	// decode, or protocol-shape checks — the bytes on the wire are not the
	// bytes the primary's log holds.
	ErrStreamCorrupt = errors.New("repl: corrupt replication stream frame")
	// ErrStreamGap reports records arriving out of sequence: a gap or
	// reordering the replica cannot apply without breaking the
	// same-log ⇒ same-catalog contract.
	ErrStreamGap = errors.New("repl: replication stream sequence gap")
	// ErrSeedMismatch reports a primary and replica booted with different
	// world seeds. Replay would produce a catalog that answers queries
	// differently, so the follower refuses to start.
	ErrSeedMismatch = errors.New("repl: primary and replica seeds differ")
	// ErrPrimaryBehind reports a primary whose log ends before this
	// replica's applied position — the primary lost acknowledged history
	// (restored from an old backup, or wiped), and following it would
	// silently rewind the replica.
	ErrPrimaryBehind = errors.New("repl: primary log is behind this replica")
)

// streamChunk is one NDJSON line of a replication stream. K selects the
// variant:
//
//	"hello"   opens the stream: Seed is the primary's boot world seed,
//	          LastSeq its newest record, SnapSeq the coverage of the
//	          snapshot about to be streamed (0 when none is needed)
//	"snap"    one chunk of the snapshot image in Data (base64 via JSON)
//	"snapend" ends the snapshot: CRC and Size cover the whole image
//	"rec"     one log record: Seq, the WAL payload bytes in Payload, and
//	          PCRC, the payload's CRC-32C as the primary's log stores it
//	"ping"    keep-alive carrying the primary's LastSeq for lag tracking
type streamChunk struct {
	K       string `json:"k"`
	Seed    uint64 `json:"seed,omitempty"`
	LastSeq uint64 `json:"last_seq,omitempty"`
	SnapSeq uint64 `json:"snap_seq,omitempty"`
	Data    []byte `json:"data,omitempty"`
	CRC     uint32 `json:"crc,omitempty"`
	Size    int64  `json:"size,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Payload []byte `json:"payload,omitempty"`
	PCRC    uint32 `json:"pcrc,omitempty"`
}

// ackRequest is a replica's progress report: every record through Seq has
// been applied. The primary uses it for per-replica lag accounting only;
// acks carry no correctness weight (re-sending an applied record is
// impossible because the replica names its own resume point).
type ackRequest struct {
	Replica string `json:"replica"`
	Seq     uint64 `json:"seq"`
}

// normalizePrimary turns the user-facing primary address forms —
// "host:port", "pip://host:port", "http://host:port" — into an http base
// URL and a display form (the one ErrReadOnly messages show).
func normalizePrimary(addr string) (base, display string) {
	display = strings.TrimSuffix(strings.TrimPrefix(addr, "pip://"), "/")
	if after, ok := strings.CutPrefix(addr, "http://"); ok {
		display = strings.TrimSuffix(after, "/")
	}
	return "http://" + display, "pip://" + display
}
