// Primary: the serving side of replication. It wraps the primary's
// wal.Store, turns tail-follow subscriptions into NDJSON record streams,
// streams snapshot files to bootstrapping replicas whose resume point was
// pruned, and tracks per-replica progress from ack reports.
package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pip/internal/wal"
)

// snapChunkSize is how many snapshot-image bytes ride in one snap frame.
// Base64 inflates it by 4/3 on the wire; 256KiB keeps lines comfortably
// under every reader buffer while amortizing per-frame JSON overhead.
const snapChunkSize = 256 << 10

// defaultPingEvery is how often an idle stream sends a keep-alive ping.
// Pings also refresh the replica's view of the primary's position, so lag
// metrics converge to zero within one interval of the last write.
const defaultPingEvery = 3 * time.Second

// Primary serves a store's log to replicas. Create one with NewPrimary and
// mount Handler (or the two exported handlers) on the replication
// listener. All methods are safe for concurrent use.
type Primary struct {
	store *wal.Store
	seed  uint64
	// PingEvery is the idle keep-alive interval (default 3s). Set it
	// before serving; tests shorten it to converge lag quickly.
	PingEvery time.Duration

	mu       sync.Mutex
	replicas map[string]*replicaInfo

	recordsShipped   atomic.Uint64
	bytesShipped     atomic.Uint64
	snapshotsShipped atomic.Uint64
	streamsTotal     atomic.Uint64
}

// replicaInfo is the primary's view of one replica, keyed by the id the
// replica presents. It outlives disconnects so lag stays observable while
// a replica is down — exactly when an operator wants to see it.
type replicaInfo struct {
	acked   uint64
	streams int
}

// NewPrimary wraps a store for serving. seed is the primary's boot world
// seed — the "seed" half of the (seed, statement log) pair — which every
// follower must match for replayed state to be bit-identical.
func NewPrimary(store *wal.Store, seed uint64) *Primary {
	return &Primary{
		store:     store,
		seed:      seed,
		PingEvery: defaultPingEvery,
		replicas:  map[string]*replicaInfo{},
	}
}

// Handler returns the replication endpoints as one http.Handler, for
// mounting on a dedicated replication listener (pipd -replicate-addr).
func (p *Primary) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+StreamPath, p.ServeStream)
	mux.HandleFunc("POST "+AckPath, p.ServeAck)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"ok\":true,\"last_seq\":%d}\n", p.store.Stats().LastSeq)
	})
	return mux
}

// ServeStream handles GET /v1/repl/stream: an NDJSON stream of hello,
// optional snapshot, then records from the requested resume point onward,
// held open with pings while idle. The stream ends when the client goes
// away, the store closes, or the subscriber falls so far behind that the
// store drops it (the follower then reconnects and resumes).
func (p *Primary) ServeStream(w http.ResponseWriter, r *http.Request) {
	from, err := parseSeqParam(r.URL.Query().Get("from"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	replica := r.URL.Query().Get("replica")
	if replica == "" {
		replica = r.RemoteAddr
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}

	hello := streamChunk{K: "hello", Seed: p.seed, LastSeq: p.store.Stats().LastSeq}
	var snapImage []byte
	sub, err := p.store.Subscribe(from)
	if errors.Is(err, wal.ErrCompacted) {
		// The resume point was pruned: its records live only inside a
		// snapshot now. Stream the newest snapshot and resume past it —
		// pruning guarantees the records after any retained snapshot are
		// still on disk, so the re-subscribe below cannot miss.
		snapSeq, snapPath, found := p.store.NewestSnapshot()
		if !found {
			http.Error(w, "records pruned but no snapshot present", http.StatusInternalServerError)
			return
		}
		snapImage, err = os.ReadFile(snapPath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		hello.SnapSeq = snapSeq
		sub, err = p.store.Subscribe(snapSeq + 1)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer sub.Close()

	p.streamOpened(replica)
	defer p.streamClosed(replica)
	p.streamsTotal.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	send := func(c streamChunk) bool {
		if err := enc.Encode(c); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send(hello) {
		return
	}
	if snapImage != nil {
		for off := 0; off < len(snapImage); off += snapChunkSize {
			end := min(off+snapChunkSize, len(snapImage))
			if !send(streamChunk{K: "snap", Data: snapImage[off:end]}) {
				return
			}
		}
		if !send(streamChunk{K: "snapend", CRC: wal.Checksum(snapImage), Size: int64(len(snapImage))}) {
			return
		}
		p.snapshotsShipped.Add(1)
	}

	ping := p.PingEvery
	if ping <= 0 {
		ping = defaultPingEvery
	}
	for {
		waitCtx, cancel := context.WithTimeout(r.Context(), ping)
		rec, err := sub.Next(waitCtx)
		cancel()
		switch {
		case err == nil:
			payload, perr := wal.EncodePayload(rec)
			if perr != nil {
				// The record encoded once already when the store appended
				// it, so this cannot happen; end the stream rather than
				// ship a frame we cannot checksum.
				return
			}
			if !send(streamChunk{K: "rec", Seq: rec.Seq, Payload: payload, PCRC: wal.Checksum(payload)}) {
				return
			}
			p.recordsShipped.Add(1)
			p.bytesShipped.Add(uint64(len(payload)))
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			if !send(streamChunk{K: "ping", LastSeq: p.store.Stats().LastSeq}) {
				return
			}
		default:
			// Client gone, store closed, or subscriber lagged out: end the
			// stream and let the follower reconnect from its own position.
			return
		}
	}
}

// ServeAck handles POST /v1/repl/ack: record a replica's applied position.
func (p *Primary) ServeAck(w http.ResponseWriter, r *http.Request) {
	var req ackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Replica == "" {
		http.Error(w, "malformed ack", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	ri := p.replicas[req.Replica]
	if ri == nil {
		ri = &replicaInfo{}
		p.replicas[req.Replica] = ri
	}
	if req.Seq > ri.acked {
		ri.acked = req.Seq
	}
	p.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// streamOpened registers a replica's live stream.
func (p *Primary) streamOpened(replica string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ri := p.replicas[replica]
	if ri == nil {
		ri = &replicaInfo{}
		p.replicas[replica] = ri
	}
	ri.streams++
}

// streamClosed drops a replica's live stream registration.
func (p *Primary) streamClosed(replica string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ri := p.replicas[replica]; ri != nil {
		ri.streams--
	}
}

// ReplicaStatus is the primary's view of one replica for telemetry.
type ReplicaStatus struct {
	ID         string
	AckedSeq   uint64
	LagRecords uint64
	Connected  bool
}

// PrimaryStats is a point-in-time snapshot of the primary's replication
// counters, rendered by /metrics and the SHOW STATS repl scope.
type PrimaryStats struct {
	LastSeq           uint64
	ConnectedReplicas int
	RecordsShipped    uint64
	BytesShipped      uint64
	SnapshotsShipped  uint64
	StreamsTotal      uint64
	Replicas          []ReplicaStatus // sorted by ID
}

// Stats returns the primary's counters with per-replica progress sorted by
// replica id, so every rendering is stable.
func (p *Primary) Stats() PrimaryStats {
	last := p.store.Stats().LastSeq
	st := PrimaryStats{
		LastSeq:          last,
		RecordsShipped:   p.recordsShipped.Load(),
		BytesShipped:     p.bytesShipped.Load(),
		SnapshotsShipped: p.snapshotsShipped.Load(),
		StreamsTotal:     p.streamsTotal.Load(),
	}
	p.mu.Lock()
	ids := make([]string, 0, len(p.replicas))
	for id := range p.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ri := p.replicas[id]
		rs := ReplicaStatus{ID: id, AckedSeq: ri.acked, Connected: ri.streams > 0}
		if last > ri.acked {
			rs.LagRecords = last - ri.acked
		}
		if rs.Connected {
			st.ConnectedReplicas++
		}
		st.Replicas = append(st.Replicas, rs)
	}
	p.mu.Unlock()
	return st
}

// StatsMap flattens the primary's counters for the SHOW STATS repl scope.
// Per-replica rows fold into the worst-case lag; /metrics carries the
// per-replica breakdown with labels.
func (p *Primary) StatsMap() map[string]float64 {
	st := p.Stats()
	var maxLag uint64
	for _, r := range st.Replicas {
		if r.LagRecords > maxLag {
			maxLag = r.LagRecords
		}
	}
	return map[string]float64{
		"role_primary":       1,
		"last_seq":           float64(st.LastSeq),
		"connected_replicas": float64(st.ConnectedReplicas),
		"known_replicas":     float64(len(st.Replicas)),
		"records_shipped":    float64(st.RecordsShipped),
		"bytes_shipped":      float64(st.BytesShipped),
		"snapshots_shipped":  float64(st.SnapshotsShipped),
		"streams_total":      float64(st.StreamsTotal),
		"max_replica_lag":    float64(maxLag),
	}
}

// parseSeqParam parses the from query parameter (empty means 1).
func parseSeqParam(s string) (uint64, error) {
	if s == "" {
		return 1, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("malformed from parameter %q", s)
	}
	return n, nil
}
