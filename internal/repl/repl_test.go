package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pip/internal/core"
	"pip/internal/sampler"
	"pip/internal/sql"
	"pip/internal/wal"
)

func newDB(seed uint64) *core.DB {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = seed
	return core.NewDB(cfg)
}

func mustExec(t *testing.T, db *core.DB, q string) {
	t.Helper()
	if _, err := sql.Exec(db, q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

func catalogBytes(t *testing.T, db *core.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.EncodeCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expectedRevenue samples the running example's aggregate; equal bits mean
// the two databases draw identical sample streams from identical state.
func expectedRevenue(t *testing.T, db *core.DB) float64 {
	t.Helper()
	out, err := sql.Exec(db, "SELECT expected_sum(price) AS r FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := out.Tuples[0].Values[0].AsFloat()
	if !ok {
		t.Fatalf("aggregate did not return a float: %v", out.Tuples[0].Values[0])
	}
	return f
}

// primaryFixture is one live primary: a durable database, its wal store,
// and the replication handler served over HTTP.
type primaryFixture struct {
	db    *core.DB
	store *wal.Store
	prim  *Primary
	ts    *httptest.Server
}

func newPrimaryFixture(t *testing.T, seed uint64) *primaryFixture {
	t.Helper()
	db := newDB(seed)
	store, _, err := wal.Open(t.TempDir(), db, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	prim := NewPrimary(store, seed)
	prim.PingEvery = 20 * time.Millisecond
	ts := httptest.NewServer(prim.Handler())
	t.Cleanup(ts.Close)
	return &primaryFixture{db: db, store: store, prim: prim, ts: ts}
}

// follow starts a follower of fx on a fresh replica database and returns
// both, with Run already going in the background.
func follow(t *testing.T, fx *primaryFixture, seed uint64) (*core.DB, *Follower) {
	t.Helper()
	rdb := newDB(seed)
	f := NewFollower(rdb, FollowerOptions{
		Primary:          fx.ts.URL,
		ReplicaID:        "r1",
		Seed:             seed,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop on context cancellation")
		}
	})
	return rdb, f
}

func waitSeq(t *testing.T, f *Follower, seq uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.WaitForSeq(ctx, seq); err != nil {
		t.Fatalf("waiting for seq %d (applied %d): %v", seq, f.AppliedSeq(), err)
	}
}

func TestNormalizePrimary(t *testing.T) {
	for _, tc := range []struct{ in, base, display string }{
		{"localhost:7433", "http://localhost:7433", "pip://localhost:7433"},
		{"pip://localhost:7433", "http://localhost:7433", "pip://localhost:7433"},
		{"http://localhost:7433", "http://localhost:7433", "pip://localhost:7433"},
		{"http://localhost:7433/", "http://localhost:7433", "pip://localhost:7433"},
	} {
		base, display := normalizePrimary(tc.in)
		if base != tc.base || display != tc.display {
			t.Fatalf("normalizePrimary(%q) = (%q, %q), want (%q, %q)", tc.in, base, display, tc.base, tc.display)
		}
	}
}

// TestFollowerBitIdentity is the tentpole's acceptance oracle in-process: a
// replica that streamed the primary's log holds a byte-identical catalog
// and answers a sampling aggregate with the same float bits, both after
// bootstrap replay and after live records.
func TestFollowerBitIdentity(t *testing.T) {
	fx := newPrimaryFixture(t, 7)
	mustExec(t, fx.db, "CREATE TABLE orders (cust, price)")
	mustExec(t, fx.db, "INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10))")
	mustExec(t, fx.db, "INSERT INTO orders VALUES ('Ann', CREATE_VARIABLE('Normal', 80, 5)), ('Bob', 42.5)")

	rdb, f := follow(t, fx, 7)
	waitSeq(t, f, 3)
	if got, want := catalogBytes(t, rdb), catalogBytes(t, fx.db); !bytes.Equal(got, want) {
		t.Fatalf("replayed catalog not bit-identical (%d vs %d bytes)", len(got), len(want))
	}

	// Live records: new commits stream through and stay bit-identical.
	mustExec(t, fx.db, "INSERT INTO orders VALUES ('Eve', CREATE_VARIABLE('Normal', 60, 3))")
	waitSeq(t, f, 4)
	if got, want := catalogBytes(t, rdb), catalogBytes(t, fx.db); !bytes.Equal(got, want) {
		t.Fatalf("live-applied catalog not bit-identical (%d vs %d bytes)", len(got), len(want))
	}
	pr, rr := expectedRevenue(t, fx.db), expectedRevenue(t, rdb)
	if math.Float64bits(pr) != math.Float64bits(rr) {
		t.Fatalf("sampled aggregate differs: primary %v, replica %v", pr, rr)
	}

	// Client sessions of the replica refuse writes with the typed error
	// naming the primary. (The root handle is the follower's applier root —
	// pipd never hands it to clients; every served session is a Session().)
	sess := rdb.Session()
	_, err := sql.Exec(sess, "INSERT INTO orders VALUES ('Mal', 1)")
	if !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica write: got %v, want ErrReadOnly", err)
	}
	if !strings.Contains(err.Error(), strings.TrimPrefix(fx.ts.URL, "http://")) {
		t.Fatalf("replica write error %q does not name the primary", err)
	}
	if _, err := sql.Exec(sess, "CREATE TABLE x (a)"); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("replica session DDL: got %v, want ErrReadOnly", err)
	}

	// Lag accounting converges: the primary sees the replica acked at its
	// own tail within a ping interval or two.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fx.prim.Stats()
		if len(st.Replicas) == 1 && st.Replicas[0].ID == "r1" &&
			st.Replicas[0].AckedSeq == st.LastSeq && st.Replicas[0].LagRecords == 0 &&
			st.Replicas[0].Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica lag never converged: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fst := f.Stats(); fst.LagRecords != 0 || !fst.Connected || fst.FailStopped {
		t.Fatalf("follower stats off after catch-up: %+v", fst)
	}
}

// TestFollowerSnapshotBootstrap covers the catch-up path: a replica whose
// resume point was pruned into a snapshot bootstraps from the streamed
// image, replays the suffix, and still matches bit-for-bit.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	fx := newPrimaryFixture(t, 7)
	mustExec(t, fx.db, "CREATE TABLE orders (cust, price)")
	mustExec(t, fx.db, "INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10))")
	if err := fx.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, fx.db, "INSERT INTO orders VALUES ('Ann', CREATE_VARIABLE('Normal', 80, 5))")
	if err := fx.store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Record 1..3 now live only inside snapshots; the wire must ship one.
	if _, err := fx.store.Subscribe(1); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("precondition: expected pruned history, got %v", err)
	}
	mustExec(t, fx.db, "INSERT INTO orders VALUES ('Bob', 42.5)")

	rdb, f := follow(t, fx, 7)
	waitSeq(t, f, 4)
	if st := f.Stats(); st.SnapshotsLoaded == 0 {
		t.Fatalf("follower caught up without loading a snapshot: %+v", st)
	}
	if got, want := catalogBytes(t, rdb), catalogBytes(t, fx.db); !bytes.Equal(got, want) {
		t.Fatalf("snapshot-bootstrapped catalog not bit-identical (%d vs %d bytes)", len(got), len(want))
	}
	pr, rr := expectedRevenue(t, fx.db), expectedRevenue(t, rdb)
	if math.Float64bits(pr) != math.Float64bits(rr) {
		t.Fatalf("sampled aggregate differs after bootstrap: primary %v, replica %v", pr, rr)
	}
}

// TestFollowerReconnectResume kills the primary's listener mid-stream,
// commits more records, brings the listener back on the same address, and
// requires the follower to resume from its own applied position — no
// re-apply, no gap — and converge bit-identically.
func TestFollowerReconnectResume(t *testing.T) {
	db := newDB(7)
	store, _, err := wal.Open(t.TempDir(), db, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	prim := NewPrimary(store, 7)
	prim.PingEvery = 20 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: prim.Handler()}
	go hs.Serve(ln)

	mustExec(t, db, "CREATE TABLE orders (cust, price)")
	mustExec(t, db, "INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10))")

	rdb := newDB(7)
	f := NewFollower(rdb, FollowerOptions{
		Primary:          addr,
		ReplicaID:        "r1",
		Seed:             7,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	waitSeq(t, f, 2)

	// Cut every open stream and the listener, then keep committing.
	hs.Close()
	mustExec(t, db, "INSERT INTO orders VALUES ('Ann', CREATE_VARIABLE('Normal', 80, 5))")
	mustExec(t, db, "INSERT INTO orders VALUES ('Bob', 42.5)")
	time.Sleep(50 * time.Millisecond) // let at least one redial fail

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := &http.Server{Handler: prim.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()

	waitSeq(t, f, 4)
	if got, want := catalogBytes(t, rdb), catalogBytes(t, db); !bytes.Equal(got, want) {
		t.Fatalf("post-reconnect catalog not bit-identical (%d vs %d bytes)", len(got), len(want))
	}
	st := f.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("follower never reconnected: %+v", st)
	}
	if st.RecordsApplied != 4 {
		t.Fatalf("records applied %d, want 4 (resume must not re-apply)", st.RecordsApplied)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("healthy reconnect latched an error: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v on cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// fakePrimary serves a scripted NDJSON stream (and swallows acks), for
// driving the follower's integrity checks with malformed input no real
// primary would produce.
func fakePrimary(t *testing.T, chunks ...streamChunk) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+AckPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET "+StreamPath, func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		for _, c := range chunks {
			enc.Encode(c)
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// runUntilFatal follows ts and returns the error Run latched.
func runUntilFatal(t *testing.T, ts *httptest.Server, seed uint64) error {
	t.Helper()
	f := NewFollower(newDB(seed), FollowerOptions{
		Primary:          ts.URL,
		Seed:             seed,
		ReconnectBackoff: 5 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := f.Run(ctx)
	if err == nil {
		t.Fatal("Run returned nil; expected a latched integrity failure")
	}
	if ferr := f.Err(); !errors.Is(err, errors.Unwrap(ferr)) && ferr == nil {
		t.Fatalf("Err() = %v after Run returned %v", ferr, err)
	}
	if !f.Stats().FailStopped {
		t.Fatal("FailStopped not reported after a fatal error")
	}
	return err
}

// encodeRecord builds a valid wire payload for one logged statement.
func encodeRecord(t *testing.T, seq uint64, text string, failed bool) streamChunk {
	t.Helper()
	payload, err := wal.EncodePayload(wal.Record{Seq: seq, M: core.Mutation{
		Session: core.RootSessionID, Seed: 7, Text: text, Failed: failed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return streamChunk{K: "rec", Seq: seq, Payload: payload, PCRC: wal.Checksum(payload)}
}

func TestFollowerSeedMismatchFailStops(t *testing.T) {
	ts := fakePrimary(t, streamChunk{K: "hello", Seed: 99, LastSeq: 0})
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("got %v, want ErrSeedMismatch", err)
	}
}

func TestFollowerCorruptFrameFailStops(t *testing.T) {
	rec := encodeRecord(t, 1, "CREATE TABLE t (a)", false)
	rec.PCRC ^= 0xdeadbeef // bit rot on the wire
	ts := fakePrimary(t, streamChunk{K: "hello", Seed: 7, LastSeq: 1}, rec)
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("got %v, want ErrStreamCorrupt", err)
	}
}

func TestFollowerUndecodablePayloadFailStops(t *testing.T) {
	garbage := []byte("not a wal payload")
	ts := fakePrimary(t,
		streamChunk{K: "hello", Seed: 7, LastSeq: 1},
		streamChunk{K: "rec", Seq: 1, Payload: garbage, PCRC: wal.Checksum(garbage)})
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("got %v, want ErrStreamCorrupt", err)
	}
}

func TestFollowerReorderedStreamFailStops(t *testing.T) {
	// Record 2 arrives where record 1 belongs: a gap the applier refuses.
	ts := fakePrimary(t,
		streamChunk{K: "hello", Seed: 7, LastSeq: 2},
		encodeRecord(t, 2, "CREATE TABLE t (a)", false))
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, ErrStreamGap) {
		t.Fatalf("got %v, want ErrStreamGap", err)
	}
}

func TestFollowerReplayDivergenceFailStops(t *testing.T) {
	// The primary logged this insert as a success; on the replica the
	// table does not exist, so the outcome contradicts the log.
	ts := fakePrimary(t,
		streamChunk{K: "hello", Seed: 7, LastSeq: 1},
		encodeRecord(t, 1, "INSERT INTO nosuch VALUES (1)", false))
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, wal.ErrReplayDiverged) {
		t.Fatalf("got %v, want ErrReplayDiverged", err)
	}
}

func TestFollowerCorruptSnapshotImageFailStops(t *testing.T) {
	img := []byte("PIPSNP01 but not really a snapshot")
	ts := fakePrimary(t,
		streamChunk{K: "hello", Seed: 7, LastSeq: 1, SnapSeq: 1},
		streamChunk{K: "snap", Data: img},
		streamChunk{K: "snapend", CRC: wal.Checksum(img), Size: int64(len(img))})
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, wal.ErrSnapshotCorrupt) {
		t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
	}
}

func TestFollowerTruncatedSnapshotFailStops(t *testing.T) {
	img := []byte("some snapshot image bytes")
	ts := fakePrimary(t,
		streamChunk{K: "hello", Seed: 7, LastSeq: 1, SnapSeq: 1},
		streamChunk{K: "snap", Data: img[:10]},
		streamChunk{K: "snapend", CRC: wal.Checksum(img), Size: int64(len(img))})
	if err := runUntilFatal(t, ts, 7); !errors.Is(err, ErrStreamCorrupt) {
		t.Fatalf("got %v, want ErrStreamCorrupt", err)
	}
}

func TestFollowerPrimaryBehindFailStops(t *testing.T) {
	ts := fakePrimary(t, streamChunk{K: "hello", Seed: 7, LastSeq: 2})
	f := NewFollower(newDB(7), FollowerOptions{
		Primary:          ts.URL,
		Seed:             7,
		ReconnectBackoff: 5 * time.Millisecond,
	})
	f.applied.Store(5) // this replica has history the primary lacks
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Run(ctx); !errors.Is(err, ErrPrimaryBehind) {
		t.Fatalf("got %v, want ErrPrimaryBehind", err)
	}
}
