// Follower: the replica side of replication. It owns the full lifecycle —
// connect, hello handshake, snapshot bootstrap when the resume point was
// pruned, suffix replay, live apply, progress acks — plus reconnection
// with resume-from-seq after transient failures and fail-stop latching on
// integrity failures.
package repl

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pip/internal/core"
	"pip/internal/wal"
)

// ackEveryRecords is how many applied records may accumulate before the
// follower reports progress mid-stream. Idle-time pings always trigger an
// ack, so lag converges to zero within one ping interval regardless.
const ackEveryRecords = 32

// maxStreamLine bounds one NDJSON stream line. Snapshot chunks are the
// largest frames: snapChunkSize bytes of image inflate by 4/3 as base64
// plus JSON overhead, comfortably under 1MiB.
const maxStreamLine = 1 << 20

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Primary is the primary's replication address: "host:port",
	// "pip://host:port", or "http://host:port".
	Primary string
	// ReplicaID labels this replica in the primary's metrics and ack
	// accounting. Defaults to a random id, fresh per process.
	ReplicaID string
	// Seed is the replica's boot world seed; it must equal the primary's
	// or the handshake fails with ErrSeedMismatch.
	Seed uint64
	// Logger receives connection lifecycle events (nil for none).
	Logger *slog.Logger
	// Client is the HTTP client used for streaming and acks (nil for a
	// default with no overall timeout — streams are long-lived).
	Client *http.Client
	// ReconnectBackoff is the initial delay before redialing after a
	// transient failure, doubling to 16x (default 250ms).
	ReconnectBackoff time.Duration
}

// Follower replicates a primary's log onto db. New marks db read-only
// (naming the primary) and reserves mutation rights for its own applier
// handles; Run drives the lifecycle until the context ends or an
// integrity failure latches. All observation methods are safe for
// concurrent use while Run is active.
type Follower struct {
	db      *core.DB
	base    string // http://host:port
	display string // pip://host:port, shown by ErrReadOnly
	id      string
	seed    uint64
	log     *slog.Logger
	client  *http.Client
	backoff time.Duration

	applied    atomic.Uint64 // newest applied record
	primarySeq atomic.Uint64 // primary's newest record, as last heard
	acked      atomic.Uint64 // newest acked record
	records    atomic.Uint64 // records applied
	bytesIn    atomic.Uint64 // payload bytes applied
	snapshots  atomic.Uint64 // snapshot images loaded
	reconnects atomic.Uint64 // redials after transient failures
	connected  atomic.Bool

	fatalMu sync.Mutex
	fatal   error
}

// NewFollower prepares db to follow the primary: the database is marked
// read-only (mutating statements fail with core.ErrReadOnly naming the
// primary) and the root handle becomes the applier root. Call Run to
// start streaming.
func NewFollower(db *core.DB, o FollowerOptions) *Follower {
	base, display := normalizePrimary(o.Primary)
	id := o.ReplicaID
	if id == "" {
		var b [6]byte
		_, _ = rand.Read(b[:])
		id = "replica-" + hex.EncodeToString(b[:])
	}
	logger := o.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	backoff := o.ReconnectBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	db.SetReadOnly(display)
	db.MarkApplier()
	return &Follower{
		db:      db,
		base:    base,
		display: display,
		id:      id,
		seed:    o.Seed,
		log:     logger,
		client:  client,
		backoff: backoff,
	}
}

// ReplicaID returns the id this follower presents to the primary.
func (f *Follower) ReplicaID() string { return f.id }

// AppliedSeq returns the newest applied record's sequence number.
func (f *Follower) AppliedSeq() uint64 { return f.applied.Load() }

// Err returns the latched integrity failure (nil while healthy). Once
// non-nil the follower has stopped applying and will not reconnect.
func (f *Follower) Err() error {
	f.fatalMu.Lock()
	defer f.fatalMu.Unlock()
	return f.fatal
}

// Run streams from the primary until ctx ends (returns nil) or an
// integrity failure latches (returns it; Err reports it from then on).
// Transient failures — refused connections, dropped streams, primary
// restarts — reconnect with exponential backoff, resuming from the
// applied position.
func (f *Follower) Run(ctx context.Context) error {
	defer f.connected.Store(false)
	backoff := f.backoff
	for {
		madeProgress, err := f.streamOnce(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil && isFatal(err) {
			f.fatalMu.Lock()
			f.fatal = err
			f.fatalMu.Unlock()
			f.log.Error("replication fail-stop", "err", err, "applied", f.applied.Load())
			return err
		}
		if madeProgress {
			backoff = f.backoff
		}
		f.reconnects.Add(1)
		f.log.Info("replication stream ended, reconnecting",
			"err", err, "applied", f.applied.Load(), "backoff", backoff)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff < 16*f.backoff {
			backoff *= 2
		}
	}
}

// isFatal classifies stream failures: integrity errors latch and stop the
// follower; everything else is transient and reconnects.
func isFatal(err error) bool {
	return errors.Is(err, ErrStreamCorrupt) ||
		errors.Is(err, ErrStreamGap) ||
		errors.Is(err, ErrSeedMismatch) ||
		errors.Is(err, ErrPrimaryBehind) ||
		errors.Is(err, wal.ErrReplayDiverged) ||
		errors.Is(err, wal.ErrSnapshotCorrupt)
}

// streamOnce runs one connection epoch: dial, handshake, optional
// snapshot bootstrap, then apply records until the stream ends. It
// reports whether any forward progress was made (for backoff reset).
func (f *Follower) streamOnce(ctx context.Context) (progress bool, err error) {
	from := f.applied.Load() + 1
	url := fmt.Sprintf("%s%s?from=%d&replica=%s", f.base, StreamPath, from, f.id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("repl: primary returned %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	f.connected.Store(true)
	defer f.connected.Store(false)

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var (
		ap           *wal.Applier
		snapBuf      []byte
		expectSnap   bool
		helloSeen    bool
		sinceLastAck uint64
	)
	for {
		line, rerr := readLine(br)
		if rerr != nil {
			// Network cut or primary shutdown mid-line: transient.
			if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
				return progress, nil
			}
			return progress, rerr
		}
		var c streamChunk
		if jerr := json.Unmarshal(line, &c); jerr != nil {
			return progress, fmt.Errorf("%w: undecodable frame: %w", ErrStreamCorrupt, jerr)
		}
		switch c.K {
		case "hello":
			if helloSeen {
				return progress, fmt.Errorf("%w: duplicate hello", ErrStreamCorrupt)
			}
			helloSeen = true
			if c.Seed != f.seed {
				return progress, fmt.Errorf("%w: primary seed %d, replica seed %d", ErrSeedMismatch, c.Seed, f.seed)
			}
			applied := f.applied.Load()
			if c.LastSeq < applied {
				return progress, fmt.Errorf("%w: primary ends at %d, replica applied %d", ErrPrimaryBehind, c.LastSeq, applied)
			}
			f.primarySeq.Store(c.LastSeq)
			if c.SnapSeq > 0 {
				if c.SnapSeq < applied {
					return progress, fmt.Errorf("%w: primary streams snapshot covering %d, replica applied %d", ErrPrimaryBehind, c.SnapSeq, applied)
				}
				expectSnap = true
			} else {
				ap = wal.NewApplier(f.db, applied)
			}
		case "snap":
			if !helloSeen || !expectSnap || ap != nil {
				return progress, fmt.Errorf("%w: unexpected snapshot chunk", ErrStreamCorrupt)
			}
			snapBuf = append(snapBuf, c.Data...)
		case "snapend":
			if !helloSeen || !expectSnap || ap != nil {
				return progress, fmt.Errorf("%w: unexpected snapshot end", ErrStreamCorrupt)
			}
			if int64(len(snapBuf)) != c.Size || wal.Checksum(snapBuf) != c.CRC {
				return progress, fmt.Errorf("%w: snapshot image %d bytes CRC %08x, expected %d bytes CRC %08x",
					ErrStreamCorrupt, len(snapBuf), wal.Checksum(snapBuf), c.Size, c.CRC)
			}
			seq, derr := wal.DecodeSnapshotImage(snapBuf, f.db)
			if derr != nil {
				return progress, derr
			}
			snapBuf = nil
			f.applied.Store(seq)
			f.snapshots.Add(1)
			f.log.Info("replication snapshot loaded", "covers_seq", seq)
			ap = wal.NewApplier(f.db, seq)
			progress = true
			f.ack(ctx, seq)
		case "rec":
			if ap == nil {
				return progress, fmt.Errorf("%w: record before handshake completed", ErrStreamCorrupt)
			}
			if wal.Checksum(c.Payload) != c.PCRC {
				return progress, fmt.Errorf("%w: record %d payload CRC mismatch", ErrStreamCorrupt, c.Seq)
			}
			rec, derr := wal.DecodePayload(c.Payload)
			if derr != nil {
				return progress, fmt.Errorf("%w: record %d: %w", ErrStreamCorrupt, c.Seq, derr)
			}
			if rec.Seq != c.Seq {
				return progress, fmt.Errorf("%w: frame says record %d, payload says %d", ErrStreamCorrupt, c.Seq, rec.Seq)
			}
			if aerr := ap.Apply(ctx, rec); aerr != nil {
				if errors.Is(aerr, wal.ErrGap) {
					return progress, fmt.Errorf("%w: %w", ErrStreamGap, aerr)
				}
				// ErrReplayDiverged (or a context cancellation mid-apply).
				return progress, aerr
			}
			f.applied.Store(rec.Seq)
			f.records.Add(1)
			f.bytesIn.Add(uint64(len(c.Payload)))
			if rec.Seq > f.primarySeq.Load() {
				f.primarySeq.Store(rec.Seq)
			}
			progress = true
			if sinceLastAck++; sinceLastAck >= ackEveryRecords {
				sinceLastAck = 0
				f.ack(ctx, rec.Seq)
			}
		case "ping":
			if c.LastSeq > f.primarySeq.Load() {
				f.primarySeq.Store(c.LastSeq)
			}
			if a := f.applied.Load(); a > f.acked.Load() {
				f.ack(ctx, a)
			}
		default:
			return progress, fmt.Errorf("%w: unknown frame kind %q", ErrStreamCorrupt, c.K)
		}
	}
}

// ack reports applied progress to the primary, best-effort: a lost ack
// only delays lag accounting, never correctness.
func (f *Follower) ack(ctx context.Context, seq uint64) {
	body, err := json.Marshal(ackRequest{Replica: f.id, Seq: seq})
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.base+AckPath, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	if seq > f.acked.Load() {
		f.acked.Store(seq)
	}
}

// WaitForSeq blocks until the follower has applied through seq, the
// follower latches an integrity failure (returned), or ctx ends
// (ctx.Err()). Tests and the CI smoke use it to await catch-up.
func (f *Follower) WaitForSeq(ctx context.Context, seq uint64) error {
	for {
		if err := f.Err(); err != nil {
			return err
		}
		if f.applied.Load() >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// FollowerStats is a point-in-time snapshot of the follower's counters,
// rendered by /metrics and the SHOW STATS repl scope.
type FollowerStats struct {
	Primary         string
	ReplicaID       string
	AppliedSeq      uint64
	PrimarySeq      uint64
	LagRecords      uint64
	RecordsApplied  uint64
	BytesApplied    uint64
	SnapshotsLoaded uint64
	Reconnects      uint64
	Connected       bool
	FailStopped     bool
}

// Stats returns the follower's counters.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Primary:         f.display,
		ReplicaID:       f.id,
		AppliedSeq:      f.applied.Load(),
		PrimarySeq:      f.primarySeq.Load(),
		RecordsApplied:  f.records.Load(),
		BytesApplied:    f.bytesIn.Load(),
		SnapshotsLoaded: f.snapshots.Load(),
		Reconnects:      f.reconnects.Load(),
		Connected:       f.connected.Load(),
		FailStopped:     f.Err() != nil,
	}
	if st.PrimarySeq > st.AppliedSeq {
		st.LagRecords = st.PrimarySeq - st.AppliedSeq
	}
	return st
}

// StatsMap flattens the follower's counters for the SHOW STATS repl scope.
func (f *Follower) StatsMap() map[string]float64 {
	st := f.Stats()
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return map[string]float64{
		"role_replica":     1,
		"applied_seq":      float64(st.AppliedSeq),
		"primary_seq":      float64(st.PrimarySeq),
		"lag_records":      float64(st.LagRecords),
		"records_applied":  float64(st.RecordsApplied),
		"bytes_applied":    float64(st.BytesApplied),
		"snapshots_loaded": float64(st.SnapshotsLoaded),
		"reconnects":       float64(st.Reconnects),
		"connected":        b2f(st.Connected),
		"fail_stopped":     b2f(st.FailStopped),
	}
}

// readLine reads one NDJSON line, bounding its length so a garbage stream
// cannot balloon memory.
func readLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		part, err := br.ReadSlice('\n')
		line = append(line, part...)
		switch {
		case err == nil:
			return bytes.TrimRight(line, "\r\n"), nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(line) > maxStreamLine {
				return nil, fmt.Errorf("%w: stream line exceeds %d bytes", ErrStreamCorrupt, maxStreamLine)
			}
		default:
			return nil, err
		}
	}
}
