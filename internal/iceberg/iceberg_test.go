package iceberg

import (
	"math"
	"testing"

	"pip/internal/prng"
)

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(100, 10, 3)
	b := Generate(100, 10, 3)
	if len(a.Sightings) != 100 || len(a.Ships) != 10 {
		t.Fatalf("sizes %d/%d", len(a.Sightings), len(a.Ships))
	}
	if a.Sightings[42] != b.Sightings[42] || a.Ships[5] != b.Ships[5] {
		t.Fatal("generator not deterministic")
	}
}

func TestSightingBounds(t *testing.T) {
	d := Generate(500, 50, 9)
	for _, s := range d.Sightings {
		if s.Lat < 40 || s.Lat > 55 || s.Lon < -60 || s.Lon > -40 {
			t.Fatalf("sighting outside box: %+v", s)
		}
		if s.AgeDays < 0 || s.AgeDays > 4*365 {
			t.Fatalf("age out of range: %v", s.AgeDays)
		}
		if s.PositionStd() <= 0 {
			t.Fatal("non-positive position std")
		}
		if d := s.Danger(); d <= 0 || d > 1 {
			t.Fatalf("danger %v out of (0, 1]", d)
		}
	}
}

func TestDangerDecay(t *testing.T) {
	recent := Sighting{AgeDays: 1}
	old := Sighting{AgeDays: 1000}
	if recent.Danger() <= old.Danger() {
		t.Fatal("danger should decay with age")
	}
	if math.Abs(Sighting{AgeDays: 365}.Danger()-math.Exp(-1)) > 1e-12 {
		t.Fatal("decay constant wrong")
	}
}

func TestExactProximityProb(t *testing.T) {
	// An iceberg sighted exactly at the ship's position with tiny age:
	// probability of being within the box is essentially 1.
	s := Sighting{Lat: 45, Lon: -50, AgeDays: 0}
	ship := Ship{Lat: 45, Lon: -50}
	if p := ExactProximityProb(s, ship); p < 0.99 {
		t.Fatalf("co-located probability %v", p)
	}
	// A far-away iceberg has essentially zero probability.
	far := Ship{Lat: 54, Lon: -41}
	if p := ExactProximityProb(s, far); p > 1e-6 {
		t.Fatalf("distant probability %v", p)
	}
}

func TestExactProximityMatchesMonteCarlo(t *testing.T) {
	s := Sighting{Lat: 45, Lon: -50, AgeDays: 200}
	ship := Ship{Lat: 45.3, Lon: -50.2}
	want := ExactProximityProb(s, ship)
	// Monte Carlo reference.
	const n = 200000
	std := s.PositionStd()
	r := prng.New(11)
	hits := 0
	for i := 0; i < n; i++ {
		la := s.Lat + std*r.NormFloat64()
		lo := s.Lon + std*r.NormFloat64()
		if math.Abs(la-ship.Lat) < ProximityRadius && math.Abs(lo-ship.Lon) < ProximityRadius {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("MC %v vs exact %v", got, want)
	}
}

func TestExactThreatMonotoneInSightings(t *testing.T) {
	d := Generate(500, 1, 13)
	ship := d.Ships[0]
	full := ExactThreat(d, ship)
	half := &Data{Sightings: d.Sightings[:250], Ships: d.Ships}
	if ExactThreat(half, ship) > full+1e-12 {
		t.Fatal("threat decreased when adding sightings")
	}
}
