// Package iceberg generates the synthetic stand-in for the NSIDC Iceberg
// Sighting Database used by the paper's final experiment (§VI, Fig. 8).
//
// Substitution note (see DESIGN.md): the real dataset records iceberg
// sightings (position, date) in the North Atlantic over several years. The
// experiment only consumes each iceberg's last sighting position and its
// age, placing a Normal positional uncertainty around the sighting that
// grows with age and an exponentially decaying danger level. This generator
// reproduces exactly that schema with deterministic pseudorandom content,
// so the query's statistical structure — and PIP's ability to answer it
// exactly via CDFs while Sample-First must sample — is preserved.
package iceberg

import (
	"math"

	"pip/internal/prng"
)

// Sighting is an iceberg's most recent sighting.
type Sighting struct {
	IcebergID int
	// Lat/Lon in degrees (North Atlantic box).
	Lat, Lon float64
	// AgeDays is the time since the sighting.
	AgeDays float64
}

// PositionStd returns the standard deviation (degrees) of the iceberg's
// present position around its last sighting: drift uncertainty grows with
// the square root of age.
func (s Sighting) PositionStd() float64 {
	return 0.05 + 0.03*math.Sqrt(s.AgeDays)
}

// Danger returns the iceberg's danger level, decaying exponentially with
// age: recent sightings are high-confidence threats, historic sightings
// mark potential new iceberg locations.
func (s Sighting) Danger() float64 {
	return math.Exp(-s.AgeDays / 365)
}

// Ship is one virtual ship placed in the North Atlantic.
type Ship struct {
	ShipID   int
	Lat, Lon float64
}

// Data is the generated scenario.
type Data struct {
	Sightings []Sighting
	Ships     []Ship
}

// Generate builds a scenario with the given numbers of iceberg sightings
// (spanning 4 years of ages) and ships, deterministically from seed.
func Generate(nSightings, nShips int, seed uint64) *Data {
	r := prng.NewKeyed(seed, 0x1ceb)
	d := &Data{}
	// North Atlantic iceberg alley: roughly 40-55N, 40-60W.
	for i := 0; i < nSightings; i++ {
		d.Sightings = append(d.Sightings, Sighting{
			IcebergID: i + 1,
			Lat:       40 + 15*r.Float64(),
			Lon:       -60 + 20*r.Float64(),
			AgeDays:   4 * 365 * r.Float64(),
		})
	}
	for i := 0; i < nShips; i++ {
		d.Ships = append(d.Ships, Ship{
			ShipID: i + 1,
			Lat:    40 + 15*r.Float64(),
			Lon:    -60 + 20*r.Float64(),
		})
	}
	return d
}

// ProximityRadius is the "near the ship" box half-width in degrees used by
// the danger query.
const ProximityRadius = 0.5

// DangerThreshold is the minimum proximity probability (0.1%) for an
// iceberg to be counted as a potential threat.
const DangerThreshold = 0.001

// ExactProximityProb computes P[iceberg within the proximity box of the
// ship] exactly: the present position is Normal(last sighting, std^2) per
// axis (independent axes), so the box probability is a product of two CDF
// differences — the closed form PIP's CDF-equipped expectation operator
// evaluates.
func ExactProximityProb(s Sighting, ship Ship) float64 {
	std := s.PositionStd()
	return normBoxProb(s.Lat, std, ship.Lat-ProximityRadius, ship.Lat+ProximityRadius) *
		normBoxProb(s.Lon, std, ship.Lon-ProximityRadius, ship.Lon+ProximityRadius)
}

func normBoxProb(mu, std, lo, hi float64) float64 {
	return normCDF((hi-mu)/std) - normCDF((lo-mu)/std)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ExactThreat computes the ship's total threat exactly: the sum over
// icebergs whose proximity probability exceeds DangerThreshold of
// danger * P[near].
func ExactThreat(d *Data, ship Ship) float64 {
	total := 0.0
	for _, s := range d.Sightings {
		p := ExactProximityProb(s, ship)
		if p > DangerThreshold {
			total += s.Danger() * p
		}
	}
	return total
}
