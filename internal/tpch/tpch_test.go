package tpch

import "testing"

func TestGenerateSizes(t *testing.T) {
	sc := Scale{Customers: 30, Parts: 40, Suppliers: 10, OrdersPerCustomer: 3}
	d := Generate(sc, 1)
	if len(d.Customers) != 30 || len(d.Parts) != 40 || len(d.Suppliers) != 10 {
		t.Fatalf("sizes %d/%d/%d", len(d.Customers), len(d.Parts), len(d.Suppliers))
	}
	if len(d.Orders) != 90 {
		t.Fatalf("orders %d", len(d.Orders))
	}
}

func TestKeysAreDense(t *testing.T) {
	d := Generate(SmallScale(), 2)
	for i, c := range d.Customers {
		if c.CustKey != i+1 {
			t.Fatalf("customer key %d at %d", c.CustKey, i)
		}
	}
	for i, p := range d.Parts {
		if p.PartKey != i+1 {
			t.Fatalf("part key %d at %d", p.PartKey, i)
		}
	}
}

func TestOrdersReferenceValidKeys(t *testing.T) {
	d := Generate(SmallScale(), 3)
	for _, o := range d.Orders {
		if o.CustKey < 1 || o.CustKey > len(d.Customers) {
			t.Fatalf("dangling cust key %d", o.CustKey)
		}
		if o.PartKey < 1 || o.PartKey > len(d.Parts) {
			t.Fatalf("dangling part key %d", o.PartKey)
		}
		if o.SuppKey < 1 || o.SuppKey > len(d.Suppliers) {
			t.Fatalf("dangling supp key %d", o.SuppKey)
		}
		if o.Year != 2008 && o.Year != 2009 {
			t.Fatalf("year %d", o.Year)
		}
	}
}

func TestModelParametersPositive(t *testing.T) {
	d := Generate(DefaultScale(), 4)
	for _, p := range d.Parts {
		if p.RetailPrice <= 0 || p.Quantity <= 0 || p.PopularityRate <= 0 || p.GrowthLambda <= 0 {
			t.Fatalf("bad part params %+v", p)
		}
	}
	for _, s := range d.Suppliers {
		if s.ManufMean <= 0 || s.ManufStd <= 0 || s.ShipMean <= 0 || s.ShipStd <= 0 || s.ProductionRate <= 0 {
			t.Fatalf("bad supplier params %+v", s)
		}
	}
}

func TestGrowthRateFloors(t *testing.T) {
	c := Customer{Purchases2YearsAgo: 10, PurchasesLastYear: 5}
	if g := c.GrowthRate(); g != 0.01 {
		t.Fatalf("shrinking customer growth %v, want floor 0.01", g)
	}
	c = Customer{Purchases2YearsAgo: 0, PurchasesLastYear: 5}
	if g := c.GrowthRate(); g != 0.1 {
		t.Fatalf("zero-history growth %v, want 0.1", g)
	}
	c = Customer{Purchases2YearsAgo: 10, PurchasesLastYear: 15}
	if g := c.GrowthRate(); g != 0.5 {
		t.Fatalf("growth %v, want 0.5", g)
	}
}

func TestNationsCycle(t *testing.T) {
	d := Generate(Scale{Customers: 1, Parts: 1, Suppliers: 12, OrdersPerCustomer: 1}, 5)
	japan := 0
	for _, s := range d.Suppliers {
		if s.Nation == "JAPAN" {
			japan++
		}
	}
	if japan != 2 {
		t.Fatalf("japan suppliers %d, want 2 of 12", japan)
	}
}
