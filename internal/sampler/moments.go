package sampler

import (
	"fmt"
	"math"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/expr"
)

// Accumulator tracks the running first and second raw moments of a sample
// stream. It is the unit of merging in the parallel evaluation engine: each
// batch of sample indices accumulates into its own Accumulator, and batch
// accumulators are merged in batch order at round barriers, so the final
// floating-point sums are independent of how batches were scheduled across
// workers (see parallel.go for the determinism contract).
type Accumulator struct {
	// N is the number of accumulated samples.
	N int
	// Sum and SumSq are the running sums of values and squared values.
	Sum, SumSq float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(v float64) {
	a.Sum += v
	a.SumSq += v * v
	a.N++
}

// Merge folds another accumulator into this one. Merging is performed in
// batch order only; it is not commutative in floating point.
func (a *Accumulator) Merge(o Accumulator) {
	a.Sum += o.Sum
	a.SumSq += o.SumSq
	a.N += o.N
}

// Mean returns the sample mean (NaN when empty).
func (a Accumulator) Mean() float64 {
	if a.N == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.N)
}

// StdErr returns the standard error of the mean estimate (0 when empty).
func (a Accumulator) StdErr() float64 {
	if a.N == 0 {
		return 0
	}
	fn := float64(a.N)
	mean := a.Sum / fn
	variance := a.SumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance / fn)
}

// MomentResult reports a higher-moment computation.
type MomentResult struct {
	// Moment is the k-th conditional raw moment E[e^k | c].
	Moment float64
	// N is the number of samples used (0 when exact).
	N int
	// Exact reports a closed-form result.
	Exact bool
	// Err is non-nil when the computation was aborted by Config.Ctx; the
	// other fields are then meaningless.
	Err error
}

// Moment computes the k-th raw moment E[e^k | c] (paper §III-D: the
// framework exposes "the higher moments" to statistical methods). k = 1 is
// the plain expectation; k = 2 feeds variance. Closed forms are used for
// unconstrained single variables with known mean/variance at k <= 2;
// everything else samples through the same goal-directed machinery as
// Expectation.
func (s *Sampler) Moment(e expr.Expr, c cond.Clause, k int) MomentResult {
	if k < 1 {
		return MomentResult{Moment: math.NaN()}
	}
	// Closed form: raw second moment of a bare variable, unconstrained.
	if k <= 2 && c.IsTrue() && !s.cfg.DisableClosedForm {
		if v, ok := e.(expr.Var); ok {
			mean, okM := v.V.Dist.Mean()
			if k == 1 && okM {
				s.cfg.Stats.AddClosedFormHit()
				return MomentResult{Moment: mean, Exact: true}
			}
			variance, okV := v.V.Dist.Variance()
			if k == 2 && okM && okV {
				s.cfg.Stats.AddClosedFormHit()
				return MomentResult{Moment: variance + mean*mean, Exact: true}
			}
		}
	}
	powed := e
	for i := 1; i < k; i++ {
		powed = expr.Mul(powed, e)
	}
	r := s.Expectation(powed, c, false)
	if r.Err != nil {
		return MomentResult{Err: r.Err}
	}
	return MomentResult{Moment: r.Mean, N: r.N, Exact: r.Exact}
}

// VarianceResult reports a conditional variance computation.
type VarianceResult struct {
	Variance float64
	StdDev   float64
	Mean     float64
	N        int
	Exact    bool
	// Err is non-nil when the computation was aborted by Config.Ctx; the
	// other fields are then meaningless.
	Err error
}

// Variance computes Var[e | c] = E[e^2 | c] - E[e | c]^2. To avoid the
// catastrophic cancellation of estimating the two moments independently,
// the sampled path draws one set of conditional samples and computes both
// moments from it.
func (s *Sampler) Variance(e expr.Expr, c cond.Clause) VarianceResult {
	// Closed form for a bare unconstrained variable.
	if c.IsTrue() && !s.cfg.DisableClosedForm {
		if v, ok := e.(expr.Var); ok {
			if variance, okV := v.V.Dist.Variance(); okV {
				mean, _ := v.V.Dist.Mean()
				s.cfg.Stats.AddClosedFormHit()
				return VarianceResult{
					Variance: variance,
					StdDev:   math.Sqrt(variance),
					Mean:     mean,
					Exact:    true,
				}
			}
		}
	}
	n := s.cfg.FixedSamples
	if n <= 0 {
		n = s.cfg.MaxSamples
		if n <= 0 || n > 10000 {
			n = 2000
		}
	}
	samples, err := s.ExpectationHistogram(e, c, n)
	if err != nil {
		return VarianceResult{Err: err}
	}
	if len(samples) == 0 {
		return VarianceResult{Variance: math.NaN(), StdDev: math.NaN(), Mean: math.NaN()}
	}
	var sum, sumSq float64
	for _, v := range samples {
		sum += v
		sumSq += v * v
	}
	fn := float64(len(samples))
	mean := sum / fn
	variance := sumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return VarianceResult{
		Variance: variance,
		StdDev:   math.Sqrt(variance),
		Mean:     mean,
		N:        len(samples),
	}
}

// AggregateVariance computes Var[fold over the table] (e.g. the variance
// of sum(col) across possible worlds) by world sampling — the per-table
// analogue of Variance, honoring inter-row variable sharing exactly.
func (s *Sampler) AggregateVariance(tb *ctable.Table, col int, fold FoldFunc, n int) (VarianceResult, error) {
	samples, err := s.AggregateHistogram(tb, col, fold, n)
	if err != nil {
		return VarianceResult{}, err
	}
	if len(samples) == 0 {
		return VarianceResult{Variance: math.NaN(), StdDev: math.NaN(), Mean: math.NaN()}, nil
	}
	var sum, sumSq float64
	for _, v := range samples {
		sum += v
		sumSq += v * v
	}
	fn := float64(len(samples))
	mean := sum / fn
	variance := sumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return VarianceResult{
		Variance: variance,
		StdDev:   math.Sqrt(variance),
		Mean:     mean,
		N:        len(samples),
	}, nil
}

// HistogramBuckets bins samples into count equal-width buckets over
// [min, max] of the data, returning bucket lower edges and counts — the
// visualization helper behind expected_sum_hist (§V-C: "This array may be
// used to generate histograms and similar visualizations").
func HistogramBuckets(samples []float64, count int) (edges []float64, counts []int, err error) {
	if count < 1 {
		return nil, nil, fmt.Errorf("sampler: bucket count %d < 1", count)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("sampler: no samples to bucket")
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples {
		if math.IsNaN(v) {
			return nil, nil, fmt.Errorf("sampler: NaN sample")
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		// Degenerate: all mass in one bucket.
		return []float64{lo}, []int{len(samples)}, nil
	}
	width := (hi - lo) / float64(count)
	edges = make([]float64, count)
	counts = make([]int, count)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, v := range samples {
		b := int((v - lo) / width)
		if b >= count {
			b = count - 1
		}
		counts[b]++
	}
	return edges, counts, nil
}
