package sampler

import (
	"math"

	"pip/internal/cond"
	"pip/internal/expr"
)

// Result reports the outcome of an expectation or confidence computation.
type Result struct {
	// Mean is the conditional expectation E[expr | condition]. NaN when
	// the condition is unsatisfiable (paper §IV-B: "If the context is
	// unsatisfiable, a value of NAN will result").
	Mean float64
	// Prob is P[condition] when requested, else 1.
	Prob float64
	// N is the number of accepted samples used for the mean (0 when the
	// result was computed exactly).
	N int
	// StdErr is the standard error of the mean estimate (0 when exact).
	StdErr float64
	// Exact is true when no sampling was necessary (closed-form mean on an
	// unconstrained variable, or CDF-integrated probability).
	Exact bool
	// UsedMetropolis reports whether any group escalated to the random
	// walk (in which case Prob falls back to sampling, see Algorithm 4.3).
	UsedMetropolis bool
}

// Sampler evaluates expectations, probabilities and aggregates against
// symbolic conditions. It is stateless across calls apart from its
// configuration; all randomness derives from Config.WorldSeed.
type Sampler struct {
	cfg Config
}

// New returns a sampler with the given configuration.
func New(cfg Config) *Sampler { return &Sampler{cfg: cfg} }

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Expectation implements Algorithm 4.3: compute E[e | c] and, when getP is
// set, P[c]. The clause is partitioned into minimal independent groups;
// only groups sharing variables with e need sampling for the mean, and
// groups disjoint from e contribute to the probability only — computed
// exactly via CDF integration when possible (line 32–33).
func (s *Sampler) Expectation(e expr.Expr, c cond.Clause, getP bool) Result {
	// Fast path: deterministic expression under a trivially-true clause.
	eKeys, eVars := expr.Vars(e)
	if len(eKeys) == 0 && c.IsTrue() {
		return Result{Mean: e.Eval(nil), Prob: 1, Exact: true}
	}

	// Exact path: unconstrained linear target with closed-form variable
	// means ("potentially even sidestep [sampling] entirely", §III-A).
	if c.IsTrue() && !s.cfg.DisableClosedForm {
		if mean, ok := linearClosedFormMean(e, eVars); ok {
			return Result{Mean: mean, Prob: 1, Exact: true}
		}
	}

	extras := make([]*expr.Variable, 0, len(eKeys))
	for _, k := range eKeys {
		extras = append(extras, eVars[k])
	}
	groups := s.partition(c, extras)

	// Identify groups relevant to the target expression.
	eKeySet := map[expr.VarKey]bool{}
	for _, k := range eKeys {
		eKeySet[k] = true
	}

	var samplingGroups []*groupSampler // groups overlapping e: must be sampled
	var probGroups []*groupSampler     // groups disjoint from e: probability only
	for _, g := range groups {
		gs := newGroupSampler(g, &s.cfg)
		if gs.inconsistent {
			return Result{Mean: math.NaN(), Prob: 0, Exact: true}
		}
		if g.Touches(eKeySet) {
			samplingGroups = append(samplingGroups, gs)
		} else {
			probGroups = append(probGroups, gs)
		}
	}

	res := Result{Prob: 1}

	// Independence + closed form: if no constraint atom touches any
	// variable of e (all of e's groups are atom-free), the conditional
	// mean equals the unconditional mean — use the closed form when the
	// target is linear with known variable means. Constrained groups then
	// only contribute probability.
	if !s.cfg.DisableClosedForm {
		atomFree := true
		for _, gs := range samplingGroups {
			if len(gs.group.Atoms) > 0 {
				atomFree = false
				break
			}
		}
		if atomFree {
			if mean, ok := linearClosedFormMean(e, eVars); ok {
				res.Mean = mean
				res.Exact = true
				if !getP {
					return res
				}
				prob := 1.0
				for _, gs := range probGroups {
					prob *= s.clauseProb(gs.group)
				}
				res.Prob = prob
				return res
			}
		}
	}

	// Sample the groups the mean depends on.
	if len(samplingGroups) > 0 || len(eKeys) > 0 {
		asn := expr.Assignment{}
		var sum, sumSq float64
		n := 0
		for s.cfg.wantSamples(n, sum, sumSq) {
			idx := uint64(n)
			ok := true
			for _, gs := range samplingGroups {
				if !gs.drawInto(asn, idx) {
					ok = false
					break
				}
			}
			if !ok {
				// Constraint region unreachable within budget.
				return Result{Mean: math.NaN(), Prob: 0}
			}
			v := e.Eval(asn)
			sum += v
			sumSq += v * v
			n++
		}
		res.N = n
		if n > 0 {
			res.Mean = sum / float64(n)
			variance := sumSq/float64(n) - res.Mean*res.Mean
			if variance < 0 {
				variance = 0
			}
			res.StdErr = math.Sqrt(variance / float64(n))
		} else {
			res.Mean = math.NaN()
		}
		for _, gs := range samplingGroups {
			if gs.usingMetropolis() {
				res.UsedMetropolis = true
			}
		}
	} else {
		// Deterministic expression under a purely probabilistic condition.
		res.Mean = e.Eval(nil)
		res.Exact = true
	}

	if !getP {
		return res
	}

	// Probability: accumulate per-group contributions. Groups that were
	// sampled give N/Count for free (line 29) unless they escalated to
	// Metropolis, in which case they are re-integrated by rejection.
	prob := 1.0
	for _, gs := range samplingGroups {
		if p, ok := gs.probEstimate(); ok {
			prob *= p
			continue
		}
		p := s.clauseProb(gs.group)
		prob *= p
	}
	for _, gs := range probGroups {
		prob *= s.clauseProb(gs.group)
	}
	res.Prob = prob
	return res
}

// ExpectationDNF generalizes Expectation to DNF conditions: single-clause
// conditions take the goal-directed path; multi-clause conditions fall back
// to world sampling over the union region.
func (s *Sampler) ExpectationDNF(e expr.Expr, d cond.Condition, getP bool) Result {
	if d.IsFalse() {
		return Result{Mean: math.NaN(), Prob: 0, Exact: true}
	}
	if d.IsTrue() {
		return s.Expectation(e, cond.TrueClause(), getP)
	}
	if len(d.Clauses) == 1 {
		return s.Expectation(e, d.Clauses[0], getP)
	}
	return s.worldSampleDNF(e, d, getP)
}

// worldSampleDNF estimates E[e | d] and P[d] by naive world sampling over
// every variable of (e, d). It is the general fallback for disjunctive
// contexts (the aconf path).
func (s *Sampler) worldSampleDNF(e expr.Expr, d cond.Condition, getP bool) Result {
	vars := map[expr.VarKey]*expr.Variable{}
	d.CollectVars(vars)
	if e != nil {
		e.CollectVars(vars)
	}
	keys := sortedKeys(vars)

	asn := expr.Assignment{}
	var sum, sumSq float64
	accepted, attempts := 0, 0
	maxAttempts := s.cfg.MaxSamples * 100
	if s.cfg.FixedSamples > 0 {
		maxAttempts = s.cfg.FixedSamples * 1000
	}
	for s.cfg.wantSamples(accepted, sum, sumSq) && attempts < maxAttempts {
		drawWorld(asn, keys, vars, s.cfg.WorldSeed, uint64(attempts))
		attempts++
		if !d.Holds(asn) {
			continue
		}
		var v float64
		if e != nil {
			v = e.Eval(asn)
		}
		sum += v
		sumSq += v * v
		accepted++
	}
	res := Result{N: accepted}
	if accepted == 0 {
		res.Mean = math.NaN()
		res.Prob = 0
		return res
	}
	res.Mean = sum / float64(accepted)
	variance := sumSq/float64(accepted) - res.Mean*res.Mean
	if variance < 0 {
		variance = 0
	}
	res.StdErr = math.Sqrt(variance / float64(accepted))
	res.Prob = 1
	if getP {
		res.Prob = float64(accepted) / float64(attempts)
	}
	return res
}

// drawWorld samples every listed variable naturally into asn; multivariate
// vectors are drawn jointly.
func drawWorld(asn expr.Assignment, keys []expr.VarKey, vars map[expr.VarKey]*expr.Variable, seed, idx uint64) {
	for _, k := range keys {
		asn[k] = expr.SampleVariable(vars[k], seed, idx)
	}
}

// partition wraps cond.Partition with the DisableIndependence ablation: when
// disabled, all atoms and variables are merged into one group.
func (s *Sampler) partition(c cond.Clause, extras []*expr.Variable) []cond.Group {
	groups := cond.Partition(c, extras)
	if !s.cfg.DisableIndependence || len(groups) <= 1 {
		return groups
	}
	merged := cond.Group{Vars: map[expr.VarKey]*expr.Variable{}}
	for _, g := range groups {
		merged.Atoms = append(merged.Atoms, g.Atoms...)
		for k, v := range g.Vars {
			if _, seen := merged.Vars[k]; !seen {
				merged.Vars[k] = v
				merged.Keys = append(merged.Keys, k)
			}
		}
	}
	sortVarKeys(merged.Keys)
	return []cond.Group{merged}
}

// linearClosedFormMean computes E[e] exactly when e is linear
// (c0 + sum ci*Xi) and every variable has a closed-form mean. Linearity of
// expectation needs no independence assumption.
func linearClosedFormMean(e expr.Expr, vars map[expr.VarKey]*expr.Variable) (float64, bool) {
	lf, ok := expr.Linearize(e)
	if !ok {
		return 0, false
	}
	mean := lf.Constant
	for k, c := range lf.Coeffs {
		v := vars[k]
		if v == nil {
			v = lf.Vars[k]
		}
		m, ok := v.Dist.Mean()
		if !ok {
			return 0, false
		}
		mean += c * m
	}
	return mean, true
}

func sortedKeys(vars map[expr.VarKey]*expr.Variable) []expr.VarKey {
	keys := make([]expr.VarKey, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sortVarKeys(keys)
	return keys
}

func sortVarKeys(keys []expr.VarKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].Less(keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
