package sampler

import (
	"context"
	"math"

	"pip/internal/cond"
	"pip/internal/expr"
	"pip/internal/obs"
)

// Result reports the outcome of an expectation or confidence computation.
type Result struct {
	// Mean is the conditional expectation E[expr | condition]. NaN when
	// the condition is unsatisfiable (paper §IV-B: "If the context is
	// unsatisfiable, a value of NAN will result").
	Mean float64
	// Prob is P[condition] when requested, else 1.
	Prob float64
	// N is the number of accepted samples used for the mean (0 when the
	// result was computed exactly).
	N int
	// StdErr is the standard error of the mean estimate (0 when exact).
	StdErr float64
	// Exact is true when no sampling was necessary (closed-form mean on an
	// unconstrained variable, or CDF-integrated probability).
	Exact bool
	// UsedMetropolis reports whether any group escalated to the random
	// walk (in which case Prob falls back to sampling, see Algorithm 4.3).
	UsedMetropolis bool
	// Err is non-nil when the computation was aborted by Config.Ctx
	// (context cancellation or deadline). Every other field is then
	// meaningless: an aborted computation never reports a partial estimate.
	Err error
}

// Sampler evaluates expectations, probabilities and aggregates against
// symbolic conditions. It is stateless across calls apart from its
// configuration; all randomness derives from Config.WorldSeed.
type Sampler struct {
	cfg Config
}

// New returns a sampler with the given configuration.
func New(cfg Config) *Sampler { return &Sampler{cfg: cfg} }

// Config returns the sampler's configuration.
func (s *Sampler) Config() Config { return s.cfg }

// WithContext returns a sampler identical to s whose computations observe
// ctx: cancellation or deadline expiry aborts sampling at the next batch
// dispatch or round barrier, reporting ctx.Err() instead of a result. A nil
// ctx returns s unchanged. Sampler draws are pure functions of their sample
// index, so scoping a context never perturbs the values a completed
// computation produces.
func (s *Sampler) WithContext(ctx context.Context) *Sampler {
	if ctx == nil {
		return s
	}
	cfg := s.cfg
	cfg.Ctx = ctx
	return &Sampler{cfg: cfg}
}

// WithStats returns a sampler identical to s whose computations record
// their telemetry into st: samples, batches, rounds, rejection/Metropolis
// accounting and the adaptive epsilon-trajectory. A nil st returns s
// unchanged. Stats recording is deterministic-neutral (see Config.Stats),
// so a scoped sampler produces bit-identical values to an unscoped one.
func (s *Sampler) WithStats(st *obs.SamplerStats) *Sampler {
	if st == nil {
		return s
	}
	cfg := s.cfg
	cfg.Stats = st
	return &Sampler{cfg: cfg}
}

// Expectation implements Algorithm 4.3: compute E[e | c] and, when getP is
// set, P[c]. The clause is partitioned into minimal independent groups;
// only groups sharing variables with e need sampling for the mean, and
// groups disjoint from e contribute to the probability only — computed
// exactly via CDF integration when possible (line 32–33).
func (s *Sampler) Expectation(e expr.Expr, c cond.Clause, getP bool) Result {
	// Fast path: deterministic expression under a trivially-true clause.
	eKeys, eVars := expr.Vars(e)
	if len(eKeys) == 0 && c.IsTrue() {
		return Result{Mean: e.Eval(nil), Prob: 1, Exact: true}
	}

	// Exact path: unconstrained linear target with closed-form variable
	// means ("potentially even sidestep [sampling] entirely", §III-A).
	if c.IsTrue() && !s.cfg.DisableClosedForm {
		if mean, ok := linearClosedFormMean(e, eVars); ok {
			s.cfg.Stats.AddClosedFormHit()
			return Result{Mean: mean, Prob: 1, Exact: true}
		}
	}

	extras := make([]*expr.Variable, 0, len(eKeys))
	for _, k := range eKeys {
		extras = append(extras, eVars[k])
	}
	groups := s.partition(c, extras)

	// Identify groups relevant to the target expression.
	eKeySet := map[expr.VarKey]bool{}
	for _, k := range eKeys {
		eKeySet[k] = true
	}

	var samplingGroups []*groupSampler // groups overlapping e: must be sampled
	var probGroups []*groupSampler     // groups disjoint from e: probability only
	for _, g := range groups {
		gs := newGroupSampler(g, &s.cfg)
		if gs.inconsistent {
			return Result{Mean: math.NaN(), Prob: 0, Exact: true}
		}
		if g.Touches(eKeySet) {
			samplingGroups = append(samplingGroups, gs)
		} else {
			probGroups = append(probGroups, gs)
		}
	}

	res := Result{Prob: 1}

	// Independence + closed form: if no constraint atom touches any
	// variable of e (all of e's groups are atom-free), the conditional
	// mean equals the unconditional mean — use the closed form when the
	// target is linear with known variable means. Constrained groups then
	// only contribute probability.
	if !s.cfg.DisableClosedForm {
		atomFree := true
		for _, gs := range samplingGroups {
			if len(gs.group.Atoms) > 0 {
				atomFree = false
				break
			}
		}
		if atomFree {
			if mean, ok := linearClosedFormMean(e, eVars); ok {
				s.cfg.Stats.AddClosedFormHit()
				res.Mean = mean
				res.Exact = true
				if !getP {
					return res
				}
				prob := 1.0
				for _, gs := range probGroups {
					prob *= s.clauseProb(gs.group)
				}
				res.Prob = prob
				return res
			}
		}
	}

	// Sample the groups the mean depends on. Sample indices are sharded
	// into batches across the worker pool; the adaptive (epsilon, delta)
	// bound is checked at round barriers, and per-batch accumulators merge
	// in batch order, so the result is bit-identical for every worker count.
	if len(samplingGroups) > 0 || len(eKeys) > 0 {
		engine := newGroupEngine(&s.cfg, samplingGroups, e, false)
		acc, ok := engine.runAdaptive()
		if engine.err != nil {
			return Result{Err: engine.err}
		}
		if !ok {
			// Constraint region unreachable within budget.
			return Result{Mean: math.NaN(), Prob: 0}
		}
		res.N = acc.N
		res.Mean = acc.Mean()
		res.StdErr = acc.StdErr()
		for _, gs := range samplingGroups {
			if gs.usingMetropolis() {
				res.UsedMetropolis = true
			}
		}
	} else {
		// Deterministic expression under a purely probabilistic condition.
		res.Mean = e.Eval(nil)
		res.Exact = true
	}

	if !getP {
		return res
	}

	// Probability: accumulate per-group contributions. Groups that were
	// sampled give N/Count for free (line 29) unless they escalated to
	// Metropolis, in which case they are re-integrated by rejection.
	prob := 1.0
	for _, gs := range samplingGroups {
		if p, ok := gs.probEstimate(); ok {
			prob *= p
			continue
		}
		p := s.clauseProb(gs.group)
		prob *= p
	}
	for _, gs := range probGroups {
		prob *= s.clauseProb(gs.group)
	}
	res.Prob = prob
	// Final cancellation gate: probability integration above may have been
	// cut short by the context; report the abort, never the partial value.
	if err := s.cfg.ctxErr(); err != nil {
		return Result{Err: err}
	}
	return res
}

// ExpectationDNF generalizes Expectation to DNF conditions: single-clause
// conditions take the goal-directed path; multi-clause conditions fall back
// to world sampling over the union region.
func (s *Sampler) ExpectationDNF(e expr.Expr, d cond.Condition, getP bool) Result {
	if d.IsFalse() {
		return Result{Mean: math.NaN(), Prob: 0, Exact: true}
	}
	if d.IsTrue() {
		return s.Expectation(e, cond.TrueClause(), getP)
	}
	if len(d.Clauses) == 1 {
		return s.Expectation(e, d.Clauses[0], getP)
	}
	return s.worldSampleDNF(e, d, getP)
}

// worldSampleDNF estimates E[e | d] and P[d] by naive world sampling over
// every variable of (e, d). It is the general fallback for disjunctive
// contexts (the aconf path). Attempt indices are sharded across the worker
// pool — each world is a pure function of its attempt index — with the
// stopping bound checked at round barriers.
func (s *Sampler) worldSampleDNF(e expr.Expr, d cond.Condition, getP bool) Result {
	vars := map[expr.VarKey]*expr.Variable{}
	d.CollectVars(vars)
	if e != nil {
		e.CollectVars(vars)
	}
	keys := sortedKeys(vars)

	draw := func(asn expr.Assignment, idx uint64) (float64, bool) {
		drawWorld(asn, keys, vars, s.cfg.WorldSeed, idx)
		if !d.Holds(asn) {
			return 0, false
		}
		var v float64
		if e != nil {
			v = e.Eval(asn)
		}
		return v, true
	}

	maxAttempts := s.cfg.MaxSamples * 100
	var acc Accumulator
	attempts := 0
	if fixed := s.cfg.FixedSamples; fixed > 0 {
		// Fixed budget: collect accepted values with their attempt indices
		// and truncate to exactly `fixed` in attempt order — the same mean
		// and attempt count a per-sample loop stopping at the fixed-th
		// acceptance would produce, at any worker count.
		maxAttempts = fixed * 1000
		var values []float64
		var idxs []int
		for len(values) < fixed && attempts < maxAttempts && s.cfg.ctxErr() == nil {
			round := worldRoundSize(attempts, maxAttempts)
			if round <= 0 {
				break
			}
			wb := runWorldRound(&s.cfg, draw, attempts, round, true)
			values = append(values, wb.values...)
			idxs = append(idxs, wb.idxs...)
			attempts += wb.attempts
		}
		if len(values) >= fixed && fixed > 0 {
			// Truncate the attempt count to the fixed-th acceptance even
			// when the round landed exactly on the budget, so the getP
			// probability matches a per-sample loop's stopping point.
			attempts = idxs[fixed-1] + 1
			values = values[:fixed]
		}
		for _, v := range values {
			acc.Add(v)
		}
	} else {
		for s.cfg.wantMore(acc) && attempts < maxAttempts && s.cfg.ctxErr() == nil {
			round := worldRoundSize(attempts, maxAttempts)
			if round <= 0 {
				break
			}
			wb := runWorldRound(&s.cfg, draw, attempts, round, false)
			acc.Merge(wb.acc)
			attempts += wb.attempts
		}
	}
	if err := s.cfg.ctxErr(); err != nil {
		return Result{Err: err}
	}

	res := Result{N: acc.N}
	if acc.N == 0 {
		res.Mean = math.NaN()
		res.Prob = 0
		return res
	}
	res.Mean = acc.Mean()
	res.StdErr = acc.StdErr()
	res.Prob = 1
	if getP {
		res.Prob = float64(acc.N) / float64(attempts)
	}
	return res
}

// drawWorld samples every listed variable naturally into asn; multivariate
// vectors are drawn jointly.
func drawWorld(asn expr.Assignment, keys []expr.VarKey, vars map[expr.VarKey]*expr.Variable, seed, idx uint64) {
	for _, k := range keys {
		asn[k] = expr.SampleVariable(vars[k], seed, idx)
	}
}

// partition wraps cond.Partition with the DisableIndependence ablation: when
// disabled, all atoms and variables are merged into one group.
func (s *Sampler) partition(c cond.Clause, extras []*expr.Variable) []cond.Group {
	groups := cond.Partition(c, extras)
	if !s.cfg.DisableIndependence || len(groups) <= 1 {
		return groups
	}
	merged := cond.Group{Vars: map[expr.VarKey]*expr.Variable{}}
	for _, g := range groups {
		merged.Atoms = append(merged.Atoms, g.Atoms...)
		for k, v := range g.Vars {
			if _, seen := merged.Vars[k]; !seen {
				merged.Vars[k] = v
				merged.Keys = append(merged.Keys, k)
			}
		}
	}
	sortVarKeys(merged.Keys)
	return []cond.Group{merged}
}

// linearClosedFormMean computes E[e] exactly when e is linear
// (c0 + sum ci*Xi) and every variable has a closed-form mean. Linearity of
// expectation needs no independence assumption.
func linearClosedFormMean(e expr.Expr, vars map[expr.VarKey]*expr.Variable) (float64, bool) {
	lf, ok := expr.Linearize(e)
	if !ok {
		return 0, false
	}
	// Accumulate in sorted key order: float addition is not associative, so
	// map-order summation would break same-seed bit-identity.
	mean := lf.Constant
	for _, k := range lf.SortedKeys() {
		c := lf.Coeffs[k]
		v := vars[k]
		if v == nil {
			v = lf.Vars[k]
		}
		m, ok := v.Dist.Mean()
		if !ok {
			return 0, false
		}
		mean += c * m
	}
	return mean, true
}

func sortedKeys(vars map[expr.VarKey]*expr.Variable) []expr.VarKey {
	keys := make([]expr.VarKey, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sortVarKeys(keys)
	return keys
}

func sortVarKeys(keys []expr.VarKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].Less(keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
