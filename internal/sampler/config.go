// Package sampler implements PIP's sampling and integration layer
// (paper §IV): the expectation operator of Algorithm 4.3, goal-directed
// sampling strategies (rejection, inverse-CDF constrained sampling,
// independence partitioning, Metropolis fallback), exact CDF integration of
// single-variable conditions, confidence computation, and the aggregate
// operators (expected_sum, expected_max, expected_avg, histograms).
//
// The deferred, symbolic representation is what makes these strategies
// possible: by the time an expectation is requested, the full constraint
// clause and target expression are known, so the sampler can partition the
// constraints into independent groups, derive per-variable bounds, pick the
// cheapest sound strategy per group, and stop adaptively.
//
// Sample worlds are evaluated by a deterministic parallel engine: sample
// indices shard into fixed batches across a goroutine pool (Config.Workers)
// and per-batch accumulators merge in batch order, so equal seeds produce
// bit-identical results at every worker count — see parallel.go and
// docs/ARCHITECTURE.md for the contract.
package sampler

import (
	"context"
	"math"

	"pip/internal/dist"
	"pip/internal/obs"
)

// Config tunes the sampling process. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Epsilon and Delta give the (epsilon, delta) stopping goal of
	// Algorithm 4.3: with confidence 1-Epsilon the relative error of the
	// reported expectation is below Delta.
	Epsilon float64
	Delta   float64

	// MinSamples and MaxSamples bracket the adaptive sample count.
	MinSamples int
	MaxSamples int

	// FixedSamples, when positive, disables adaptive stopping and draws
	// exactly this many accepted samples (the paper's fixed-1000-sample
	// experiments).
	FixedSamples int

	// MetropolisThreshold is the rejection-rate threshold beyond which a
	// group escalates from rejection sampling to the Metropolis random
	// walk (Algorithm 4.3 line 19). 0.995 means: switch once fewer than
	// 1 in 200 proposals are accepted.
	MetropolisThreshold float64
	// MetropolisBurnIn is the number of initial random-walk steps
	// discarded before the chain is considered mixed.
	MetropolisBurnIn int
	// MetropolisThin is the number of random-walk steps between samples.
	MetropolisThin int

	// RejectionCap bounds the attempts for a single accepted sample before
	// the group gives up (returning NaN per the paper's semantics for
	// unsatisfiable contexts).
	RejectionCap int

	// WorldSeed parameterizes every pseudorandom draw; two runs with equal
	// seeds produce identical results.
	WorldSeed uint64

	// Workers is the number of goroutines used to evaluate sample worlds in
	// parallel. Zero (the default) resolves to runtime.GOMAXPROCS(0); one
	// forces fully sequential evaluation. Because every draw is a pure
	// function of its sample index and per-batch accumulators merge in batch
	// order, equal seeds produce bit-identical results for every Workers
	// value (see parallel.go).
	Workers int

	// Ctx, when non-nil, is observed by the parallel engine at batch
	// dispatch and round barriers: cancellation or deadline expiry aborts
	// sampling promptly. An aborted computation reports the context error
	// (Result.Err, or the error return of the aggregate operators) and never
	// a partial estimate, so the bit-identity determinism contract is
	// unaffected — a query either completes identically or fails with
	// ctx.Err(). Use Sampler.WithContext to scope a sampler to a request.
	Ctx context.Context

	// Stats, when non-nil, receives the engine's telemetry: samples merged
	// at round barriers, batches dispatched, rounds run, rejection and
	// Metropolis accounting, fast-path hits, and the epsilon-trajectory of
	// adaptive stopping. Recording is deterministic-neutral — counters are
	// atomic, updated at barriers or on the sequential walk, and never
	// influence PRNG state, batch boundaries, or merge order. Use
	// Sampler.WithStats to scope a sampler to a collection point.
	Stats *obs.SamplerStats

	// Ablation switches (all false in normal operation).
	DisableCDFInversion bool // force natural generation + rejection
	DisableIndependence bool // treat all constraint atoms as one group
	DisableMetropolis   bool // never escalate to Metropolis
	DisableExactCDF     bool // never integrate exactly; always sample
	DisableClosedForm   bool // never use closed-form means; always sample
	// DisableVectorize falls back to per-sample expression-tree walks
	// instead of compiled postfix programs evaluated batch-at-a-time. Both
	// paths are bit-identical; the switch exists for differential testing
	// and A/B benchmarks (SQL surface: SET vectorize = on|off).
	DisableVectorize bool
}

// DefaultConfig returns the configuration used by the paper's experiments:
// 95% confidence, 5% relative error, adaptive up to 10k samples.
func DefaultConfig() Config {
	return Config{
		Epsilon:             0.05,
		Delta:               0.05,
		MinSamples:          30,
		MaxSamples:          10000,
		MetropolisThreshold: 0.995,
		MetropolisBurnIn:    500,
		MetropolisThin:      10,
		RejectionCap:        200000,
		WorldSeed:           0x5eed,
	}
}

// ctxErr returns the configuration context's error, or nil when no context
// is attached. It is the cancellation check applied at the parallel engine's
// batch dispatch and round barriers.
func (c *Config) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// zTarget returns sqrt(2) * erfinv(1 - epsilon): the z-score half-width of
// the (1-epsilon) confidence interval (Algorithm 4.3 line 3).
func (c Config) zTarget() float64 {
	eps := c.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	if eps >= 1 {
		eps = 0.99
	}
	return math.Sqrt2 * dist.ErfInv(1-eps)
}

// wantSamples reports whether sampling should continue after n accepted
// samples with running sums sum and sumSq.
func (c Config) wantSamples(n int, sum, sumSq float64) bool {
	if c.FixedSamples > 0 {
		return n < c.FixedSamples
	}
	if n < c.MinSamples {
		return true
	}
	if n >= c.MaxSamples {
		return false
	}
	fn := float64(n)
	mean := sum / fn
	variance := sumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr := math.Sqrt(variance / fn)
	// Stop when the confidence half-width is within Delta relative error
	// (with a small absolute floor so a zero mean can converge).
	tol := c.Delta * math.Max(math.Abs(mean), 1e-9)
	return c.zTarget()*stderr > tol
}

// wantMore is wantSamples over a merged accumulator — the (epsilon, delta)
// stopping check applied at batch barriers by the parallel engine.
func (c Config) wantMore(a Accumulator) bool {
	return c.wantSamples(a.N, a.Sum, a.SumSq)
}

// relWidth returns the z-scaled confidence half-width of the accumulator's
// running mean, relative to the same mean floor the stopping rule uses —
// the quantity wantSamples compares against Delta. It parameterizes the
// recorded epsilon-trajectory; it never feeds back into control flow.
func (c Config) relWidth(a Accumulator) float64 {
	if a.N == 0 {
		return 0
	}
	fn := float64(a.N)
	mean := a.Sum / fn
	variance := a.SumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr := math.Sqrt(variance / fn)
	return c.zTarget() * stderr / math.Max(math.Abs(mean), 1e-9)
}

// nextRoundSize returns how many further samples the adaptive engine should
// draw before re-checking the confidence bound, given n accepted so far. The
// schedule is a pure function of n and the configuration — never of the
// worker count — so the sequence of barrier checks (and therefore the final
// sample count) is identical for every Config.Workers:
//
//   - fixed budgets run as one round;
//   - the first adaptive round draws MinSamples;
//   - later rounds double the pool (bounded below by one batch and above by
//     MaxSamples), amortizing barrier overhead while keeping overshoot
//     within 2x of the sequential per-sample check.
func (c Config) nextRoundSize(n int) int {
	if c.FixedSamples > 0 {
		return c.FixedSamples - n
	}
	if n < c.MinSamples {
		return c.MinSamples - n
	}
	r := n
	if r < sampleBatchSize {
		r = sampleBatchSize
	}
	if n+r > c.MaxSamples {
		r = c.MaxSamples - n
	}
	return r
}
