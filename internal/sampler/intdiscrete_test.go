package sampler

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
)

// TestPoissonEqualityPointMass: equality atoms on integer-valued classes
// with countable support (Poisson) must integrate to the point mass, and
// must agree with the equivalent pinned interval — the consistency checker
// may not kill them as zero-mass continuous equalities.
func TestPoissonEqualityPointMass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 4
	s := New(cfg)
	x := mkVar(t, dist.Poisson{}, 3)
	want, _ := x.Dist.PDF(2) // e^-3 3^2/2! = 0.2240...

	eq := cond.Clause{atom(expr.NewVar(x), cond.EQ, expr.Const(2))}
	rEq := s.Conf(eq)
	if !rEq.Exact || math.Abs(rEq.Prob-want) > 1e-12 {
		t.Fatalf("Conf(X = 2) = %v (exact %v), want pmf %v", rEq.Prob, rEq.Exact, want)
	}

	iv := cond.Clause{
		atom(expr.NewVar(x), cond.GE, expr.Const(2)),
		atom(expr.NewVar(x), cond.LE, expr.Const(2)),
	}
	rIv := s.Conf(iv)
	if math.Abs(rIv.Prob-rEq.Prob) > 1e-12 {
		t.Fatalf("Conf(2 <= X <= 2) = %v disagrees with Conf(X = 2) = %v", rIv.Prob, rEq.Prob)
	}

	// Non-integer equality carries no mass even for integer-valued classes.
	rBad := s.Conf(cond.Clause{atom(expr.NewVar(x), cond.EQ, expr.Const(2.5))})
	if rBad.Prob != 0 {
		t.Fatalf("Conf(X = 2.5) = %v, want 0", rBad.Prob)
	}
}
