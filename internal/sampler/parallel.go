package sampler

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"pip/internal/expr"
)

// Parallel world evaluation.
//
// Every pseudorandom draw in the sampler is keyed as
// prng.NewKeyed(WorldSeed, varID, subscript, sampleIdx, attempt) — a pure
// function of the sample index, never of execution history. The engine
// exploits this: sample indices are sharded into fixed-size batches, batches
// are dispatched to a goroutine pool, each worker draws into its own
// expr.Assignment scratch with its own per-group sampler state, and
// per-batch accumulators are merged IN BATCH ORDER at round barriers.
//
// Determinism contract: batch boundaries, the adaptive round schedule
// (Config.nextRoundSize), every per-batch draw, and the merge order are all
// independent of Config.Workers. Equal seed + any worker count => bit
// identical results. The only engine state that is not a pure function of
// the sample index — the Metropolis random walk, whose chain is inherently
// sequential — is handled by falling back to in-order batch execution on a
// single goroutine whenever a group pre-escalates, and by making mid-stream
// escalation a batch-local decision (fresh per-batch counters), which is
// again a pure function of the batch's index range.
//
// Adaptive (epsilon, delta) stopping is checked at batch barriers instead of
// per sample: after each round the merged accumulator is tested with
// Config.wantMore, so the engine may overshoot the sequential stopping point
// by at most one round — identically for every worker count.

// sampleBatchSize is the number of sample indices per dispatched batch.
// Small enough to balance load across workers at MinSamples-scale budgets,
// large enough that per-batch setup (group-sampler clones, scratch maps) is
// amortized.
const sampleBatchSize = 64

// rowBatchSize is the number of c-table rows per dispatched batch in
// row-parallel aggregates (ExpectedSum, ExpectedCount).
const rowBatchSize = 8

// effectiveWorkers resolves Config.Workers: 0 means one goroutine per
// available CPU.
func (c Config) effectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachBatch runs fn(b) for every b in [0, numBatches) on up to workers
// goroutines. fn must touch only state owned by batch b (plus read-only
// shared structures); results must be written into per-batch slots so the
// caller can merge them in batch order. With workers <= 1 the batches run
// inline, in order, on the calling goroutine — same slots, same merge.
//
// A cancelled ctx stops further batch dispatch; already-running batches
// finish. Callers must re-check the context after the barrier and discard
// the round on cancellation (slots of undispatched batches are zero), so
// cancellation can never surface as a partial result.
func forEachBatch(ctx context.Context, workers, numBatches int, fn func(b int)) {
	if workers > numBatches {
		workers = numBatches
	}
	if workers <= 1 {
		for b := 0; b < numBatches; b++ {
			if ctxCancelled(ctx) {
				return
			}
			fn(b)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !ctxCancelled(ctx) {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= numBatches {
					return
				}
				fn(b)
			}
		}()
	}
	wg.Wait()
}

// ctxCancelled reports whether a (possibly nil) context has been cancelled.
func ctxCancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// splitRange shards the index range [start, start+count) into batches of at
// most size indices, returning the batch start offsets (the last batch may
// be short). The split depends only on (start, count, size).
func splitRange(start, count, size int) []int {
	if count <= 0 {
		return nil
	}
	n := (count + size - 1) / size
	offs := make([]int, n)
	for i := range offs {
		offs[i] = start + i*size
	}
	return offs
}

// ---------------------------------------------------------------------------
// Group-sampling engine: conditional samples of an expression drawn through
// goal-directed group samplers (Expectation, ExpectationHistogram, Conf's
// rejection path).

// groupBatch is one batch's private result, merged at the round barrier.
type groupBatch struct {
	acc    Accumulator
	values []float64 // per-sample values, kept only in collect mode
	// failedAt is the first sample index whose rejection cap was exhausted
	// (-1 when the whole batch succeeded). Samples after it were not drawn.
	failedAt int
	// attempts / accepts / escalated mirror the per-group rejection counters
	// of the batch's private group-sampler clones, indexed like the engine's
	// prototype slice.
	attempts  []int
	accepts   []int
	escalated []bool
}

// groupEngine draws conditional samples for a fixed set of constraint
// groups, evaluating a target expression per accepted sample. It is shared
// by the adaptive expectation path and the fixed-count histogram path.
type groupEngine struct {
	cfg    *Config
	protos []*groupSampler
	e      expr.Expr // nil: accumulate 1 per sample (counting only)
	// prog is e compiled to a flat postfix program, evaluated across a whole
	// batch of drawn sample worlds in one pass (nil when vectorization is
	// disabled or e uses nodes the compiler does not know). Evaluation is
	// a pure read of the per-sample assignment, so batching the evaluations
	// after the batch's draws changes no PRNG state and no merge order —
	// results are bit-identical to the per-sample tree walk.
	prog *expr.Program
	// collect keeps every per-sample value (histogram mode) in addition to
	// the moment accumulator.
	collect bool

	// sequential is set when any group pre-escalated to Metropolis: the
	// chain's state must persist across samples, so batches run in order on
	// the calling goroutine against the prototypes themselves. The decision
	// is made once, from setup state that is a pure function of the query,
	// so it is identical for every worker count.
	sequential bool
	seqScratch expr.Assignment

	acc    Accumulator
	values []float64
	failed bool
	// err is the context error that aborted the run, if any. Once set, the
	// accumulated state is partial and must not be reported.
	err error
}

func newGroupEngine(cfg *Config, protos []*groupSampler, e expr.Expr, collect bool) *groupEngine {
	ge := &groupEngine{cfg: cfg, protos: protos, e: e, collect: collect}
	if e != nil && !cfg.DisableVectorize {
		if p, err := expr.Compile(e); err == nil {
			ge.prog = p
		}
	}
	for _, gs := range protos {
		if gs.usingMetropolis() {
			ge.sequential = true
			ge.seqScratch = expr.Assignment{}
			break
		}
	}
	return ge
}

// runRound draws the sample index range [start, start+count), merging batch
// results in batch order. It returns false once a sample exhausts its
// rejection cap (the constraint region is unreachable within budget) or the
// configuration context is cancelled (ge.err distinguishes the two).
func (ge *groupEngine) runRound(start, count int) bool {
	if ge.failed || ge.err != nil || count <= 0 {
		return !ge.failed && ge.err == nil
	}
	if err := ge.cfg.ctxErr(); err != nil {
		ge.err = err
		return false
	}
	offs := splitRange(start, count, sampleBatchSize)
	// Telemetry baselines, recorded as deltas once the barrier merge has
	// completed (or failed mid-merge). The counters never steer the round.
	preN := ge.acc.N
	preAtt, preAcc := 0, 0
	for _, gs := range ge.protos {
		preAtt += gs.attempts
		preAcc += gs.accepts
	}
	record := func() {
		if st := ge.cfg.Stats; st != nil {
			att, acc := 0, 0
			for _, gs := range ge.protos {
				att += gs.attempts
				acc += gs.accepts
			}
			st.AddRound()
			st.AddBatches(int64(len(offs)))
			st.AddSamples(int64(ge.acc.N - preN))
			st.AddRejection(int64(att-preAtt), int64(acc-preAcc))
		}
	}
	results := make([]groupBatch, len(offs))
	run := func(b int) {
		n := sampleBatchSize
		if rem := start + count - offs[b]; rem < n {
			n = rem
		}
		results[b] = ge.runBatch(offs[b], n)
	}
	if ge.sequential {
		// In-order execution against the live prototypes: Metropolis chain
		// state carries across batches, exactly as in a sequential engine.
		for b := range offs {
			if ctxCancelled(ge.cfg.Ctx) {
				break
			}
			run(b)
		}
	} else {
		forEachBatch(ge.cfg.Ctx, ge.cfg.effectiveWorkers(), len(offs), run)
	}
	// Round barrier: a cancellation observed here aborts before the merge —
	// undispatched batches hold zero slots, so merging them would corrupt
	// the accumulator silently.
	if err := ge.cfg.ctxErr(); err != nil {
		ge.err = err
		return false
	}
	// Barrier merge, strictly in batch order.
	for b := range results {
		r := &results[b]
		ge.acc.Merge(r.acc)
		if ge.collect {
			ge.values = append(ge.values, r.values...)
		}
		for gi := range ge.protos {
			if r.attempts != nil {
				ge.protos[gi].attempts += r.attempts[gi]
				ge.protos[gi].accepts += r.accepts[gi]
			}
			if r.escalated != nil && r.escalated[gi] {
				ge.protos[gi].escalated = true
			}
		}
		if r.failedAt >= 0 {
			ge.failed = true
			record()
			return false
		}
	}
	record()
	// If any batch escalated this round, later rounds run sequentially on
	// the prototypes: their merged counters immediately re-trigger the
	// escalation inside drawInto, so the burn-in is paid once for the rest
	// of the run instead of once per batch. The flip is a pure function of
	// the merged round results, hence identical at every worker count.
	if !ge.sequential {
		for _, gs := range ge.protos {
			if gs.escalated {
				ge.sequential = true
				ge.seqScratch = expr.Assignment{}
				break
			}
		}
	}
	return true
}

// runBatch draws samples [start, start+n) into a private result. In
// parallel mode each group prototype is cloned with fresh counters, so the
// batch result is a pure function of its index range; in sequential mode
// the prototypes themselves advance (Metropolis chains must persist).
func (ge *groupEngine) runBatch(start, n int) groupBatch {
	res := groupBatch{failedAt: -1}
	var gss []*groupSampler
	var asn expr.Assignment
	if ge.sequential {
		gss = ge.protos
		asn = ge.seqScratch
	} else {
		gss = make([]*groupSampler, len(ge.protos))
		for i, gs := range ge.protos {
			gss[i] = gs.clone()
		}
		asn = expr.Assignment{}
	}
	if ge.collect {
		res.values = make([]float64, 0, n)
	}
	// Vectorized scratch: one flat allocation holds the slot columns, the
	// output column, and the evaluation stack for the whole batch.
	vec := ge.prog != nil && n > 0
	var cols [][]float64
	var vals, out, stack []float64
	if vec {
		nslots := ge.prog.NumSlots()
		flat := make([]float64, (nslots+1+ge.prog.MaxStack())*n+nslots)
		cols = make([][]float64, nslots)
		for s := range cols {
			cols[s] = flat[s*n : (s+1)*n]
		}
		out = flat[nslots*n : (nslots+1)*n]
		stack = flat[(nslots+1)*n : (nslots+1+ge.prog.MaxStack())*n]
		vals = flat[(nslots+1+ge.prog.MaxStack())*n:]
	}
	drawn := 0
	for i := 0; i < n; i++ {
		idx := uint64(start + i)
		ok := true
		for _, gs := range gss {
			if !gs.drawInto(asn, idx) {
				ok = false
				break
			}
		}
		if !ok {
			res.failedAt = start + i
			break
		}
		if vec {
			// Snapshot this sample's variable values into the columns; the
			// arithmetic runs once for the whole batch after the draw loop.
			ge.prog.Gather(asn, vals)
			for s := range cols {
				cols[s][drawn] = vals[s]
			}
			drawn++
			continue
		}
		v := 1.0
		if ge.e != nil {
			v = ge.e.Eval(asn)
		}
		res.acc.Add(v)
		if ge.collect {
			res.values = append(res.values, v)
		}
	}
	if vec && drawn > 0 {
		ge.prog.EvalBatch(cols, drawn, out, stack)
		// Accumulate in sample order — the identical Add sequence the
		// per-sample path performs.
		for _, v := range out[:drawn] {
			res.acc.Add(v)
			if ge.collect {
				res.values = append(res.values, v)
			}
		}
	}
	if !ge.sequential {
		res.attempts = make([]int, len(gss))
		res.accepts = make([]int, len(gss))
		res.escalated = make([]bool, len(gss))
		for i, gs := range gss {
			res.attempts[i] = gs.attempts
			res.accepts[i] = gs.accepts
			res.escalated[i] = gs.usingMetropolis()
		}
	}
	return res
}

// runAdaptive draws rounds until the (epsilon, delta) bound is met at a
// barrier (or a rejection cap fires). It returns the merged accumulator and
// whether every requested sample was produced.
func (ge *groupEngine) runAdaptive() (Accumulator, bool) {
	for ge.cfg.wantMore(ge.acc) {
		round := ge.cfg.nextRoundSize(ge.acc.N)
		if round <= 0 {
			break
		}
		if !ge.runRound(ge.acc.N, round) {
			return ge.acc, false
		}
		// Epsilon-trajectory: one barrier observation of the confidence
		// half-width the stopping rule just evaluated.
		ge.cfg.Stats.RecordTrajectory(ge.acc.N, ge.cfg.relWidth(ge.acc))
	}
	return ge.acc, true
}

// runFixed draws exactly n samples (stopping early only on rejection-cap
// failure), returning the per-sample values when collecting.
func (ge *groupEngine) runFixed(n int) ([]float64, Accumulator, bool) {
	ok := ge.runRound(0, n)
	return ge.values, ge.acc, ok
}

// ---------------------------------------------------------------------------
// World-sampling engine: unconditioned draws over a fixed variable set,
// indexed by attempt (worldSampleDNF, AggregateHistogram).

// worldRoundSize returns the next number of raw attempts for the rejection
// world sampler, given attempts so far — the attempt-indexed analogue of
// nextRoundSize (initial rounds of 4 batches, then doubling).
func worldRoundSize(attempts, maxAttempts int) int {
	r := attempts
	if r < 4*sampleBatchSize {
		r = 4 * sampleBatchSize
	}
	if attempts+r > maxAttempts {
		r = maxAttempts - attempts
	}
	return r
}

// worldBatch is one batch of attempt indices of the DNF world sampler.
type worldBatch struct {
	acc      Accumulator // moments of accepted samples
	attempts int
	// values / idxs record each accepted value and its global attempt
	// index (collect mode only), letting a fixed budget truncate to exactly
	// its sample count in attempt order.
	values []float64
	idxs   []int
}

// runWorldRound draws attempt indices [start, start+count) of a rejection
// world sample: each attempt draws every variable naturally (keyed by the
// attempt index), keeps the value when the condition holds, and batch
// accumulators merge in batch order. With collect set, accepted values and
// their attempt indices are also returned, in attempt order. Callers must
// check cfg.ctxErr() after the round and discard the batch on cancellation.
func runWorldRound(cfg *Config, draw func(asn expr.Assignment, idx uint64) (float64, bool), start, count int, collect bool) worldBatch {
	offs := splitRange(start, count, sampleBatchSize)
	results := make([]worldBatch, len(offs))
	forEachBatch(cfg.Ctx, cfg.effectiveWorkers(), len(offs), func(b int) {
		n := sampleBatchSize
		if rem := start + count - offs[b]; rem < n {
			n = rem
		}
		asn := expr.Assignment{}
		r := &results[b]
		for i := 0; i < n; i++ {
			r.attempts++
			idx := offs[b] + i
			if v, ok := draw(asn, uint64(idx)); ok {
				r.acc.Add(v)
				if collect {
					r.values = append(r.values, v)
					r.idxs = append(r.idxs, idx)
				}
			}
		}
	})
	var merged worldBatch
	for b := range results {
		merged.acc.Merge(results[b].acc)
		merged.attempts += results[b].attempts
		if collect {
			merged.values = append(merged.values, results[b].values...)
			merged.idxs = append(merged.idxs, results[b].idxs...)
		}
	}
	if st := cfg.Stats; st != nil {
		st.AddRound()
		st.AddBatches(int64(len(offs)))
		st.AddSamples(int64(merged.acc.N))
		st.AddRejection(int64(merged.attempts), int64(merged.acc.N))
	}
	return merged
}
