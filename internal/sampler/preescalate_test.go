package sampler

import (
	"testing"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
)

// TestPreEscalationDeepTail: the pilot cost model (§IV-A-d) must put a
// deep-tail two-variable group onto Metropolis immediately, without burning
// a thousand rejected candidates first.
func TestPreEscalationDeepTail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 5
	cfg.FixedSamples = 100
	y1 := mkVar(t, dist.Normal{}, 0, 1)
	y2 := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{
		atom(expr.Add(expr.NewVar(y1), expr.NewVar(y2)), cond.GT, expr.Const(7)),
	}
	groups := cond.Partition(c, nil)
	gs := newGroupSampler(groups[0], &cfg)
	if !gs.usingMetropolis() {
		t.Fatal("deep-tail group did not pre-escalate to Metropolis")
	}
	// And the walk produces satisfying samples.
	asn := expr.Assignment{}
	for i := 0; i < 20; i++ {
		if !gs.drawInto(asn, uint64(i)) {
			t.Fatal("metropolis draw failed")
		}
		if !groups[0].Atoms.Holds(asn) {
			t.Fatal("metropolis sample violates constraints")
		}
	}
}

// TestNoPreEscalationModerateSelectivity: at ~5% acceptance, independent
// rejection sampling is both affordable and statistically preferable; the
// cost model must keep the group on rejection (matching the paper's Q5:
// "the comparison of 2 random variables necessitates the use of rejection
// sampling").
func TestNoPreEscalationModerateSelectivity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 5
	cfg.FixedSamples = 1000
	d := mkVar(t, dist.Exponential{}, 1.0/100)
	s := mkVar(t, dist.Exponential{}, 1.0/1900) // P[D > S] = 0.05
	c := cond.Clause{atom(expr.NewVar(d), cond.GT, expr.NewVar(s))}
	groups := cond.Partition(c, nil)
	gs := newGroupSampler(groups[0], &cfg)
	if gs.usingMetropolis() {
		t.Fatal("moderate-selectivity group pre-escalated; should stay on rejection")
	}
}

// TestNoPreEscalationSingleVarCDF: single-variable interval constraints are
// handled by CDF inversion and must never consider the walk.
func TestNoPreEscalationSingleVarCDF(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 5
	cfg.FixedSamples = 1000
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(5))} // P ~ 3e-7
	groups := cond.Partition(c, nil)
	gs := newGroupSampler(groups[0], &cfg)
	if gs.usingMetropolis() {
		t.Fatal("CDF-invertible group pre-escalated")
	}
	// Draws still succeed: CDF inversion never rejects.
	asn := expr.Assignment{}
	if !gs.drawInto(asn, 0) {
		t.Fatal("CDF draw failed")
	}
	if gs.attempts != gs.accepts {
		t.Fatal("CDF-bounded sampling rejected")
	}
}
