package sampler

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
)

// TestMixedModeProbability: a group where one variable is CDF-bounded and
// another (joined by a shared atom) rejects — the probability estimate must
// compose massFraction with the in-box acceptance rate correctly.
// Model: U ~ Uniform(0,1), V ~ Uniform(0,1), atoms U > 0.9 AND U > V.
// P = integral_{0.9}^{1} u du = (1 - 0.81)/2 = 0.095.
func TestMixedModeProbability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 12
	cfg.FixedSamples = 20000
	s := New(cfg)
	u := mkVar(t, dist.Uniform{}, 0, 1)
	v := mkVar(t, dist.Uniform{}, 0, 1)
	c := cond.Clause{
		atom(expr.NewVar(u), cond.GT, expr.Const(0.9)),
		atom(expr.NewVar(u), cond.GT, expr.NewVar(v)),
	}
	r := s.Expectation(expr.NewVar(u), c, true)
	if math.Abs(r.Prob-0.095) > 0.01 {
		t.Fatalf("P = %v, want 0.095", r.Prob)
	}
	// E[U | U>0.9, U>V] = int u^2 du / int u du over [0.9, 1] = 0.271/0.285.
	want := ((1 - 0.729) / 3) / ((1 - 0.81) / 2)
	if math.Abs(r.Mean-want) > 0.01 {
		t.Fatalf("E = %v, want %v", r.Mean, want)
	}
}
