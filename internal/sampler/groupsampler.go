package sampler

import (
	"math"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/prng"
)

// varMode selects the per-variable generation strategy inside a group
// (Algorithm 4.3 lines 6–10).
type varMode int

const (
	modeNatural varMode = iota // plain Generate
	modeCDF                    // inverse-CDF restricted to the bounds interval
)

// groupSampler draws joint values for one minimal independent constraint
// group. It owns the accept/attempt counters that feed both the Metropolis
// escalation decision and the free probability estimate of Algorithm 4.3
// line 29 (Prob = prod_K N/Count[K]).
type groupSampler struct {
	group  cond.Group
	bounds cond.Bounds
	cfg    *Config

	// keys in deterministic order; multivariate components are drawn
	// jointly via their subscript-0 seed.
	keys  []expr.VarKey
	modes map[expr.VarKey]varMode
	// cdfBox caches the (CDF(lo'), CDF(hi')) edges of each CDF-mode
	// variable's bounds interval; they are constant per group, and the
	// rejection loop would otherwise re-integrate them on every attempt.
	cdfBox map[expr.VarKey][2]float64
	// massFraction is the product over CDF-mode variables of the prior
	// mass of their bounds interval; it multiplies the acceptance rate to
	// recover the unconditioned constraint probability.
	massFraction float64

	attempts int // total candidate draws
	accepts  int // accepted (constraint-satisfying) draws

	inconsistent bool
	metro        *metroState
	// escalated records that some batch-local clone of this group switched
	// to Metropolis mid-stream (parallel engine); the merged probability
	// estimate is then invalid just as if the group itself had escalated.
	escalated bool
}

// clone returns a group sampler sharing this one's immutable setup (group,
// bounds, per-variable modes, CDF boxes — all read-only during drawing) but
// with fresh accept/attempt counters and no Metropolis chain. The parallel
// engine gives each batch its own clone, making the batch's output a pure
// function of its sample-index range. Prototypes that pre-escalated to
// Metropolis are never cloned (the engine runs them sequentially instead).
func (gs *groupSampler) clone() *groupSampler {
	return &groupSampler{
		group:        gs.group,
		bounds:       gs.bounds,
		cfg:          gs.cfg,
		keys:         gs.keys,
		modes:        gs.modes,
		cdfBox:       gs.cdfBox,
		massFraction: gs.massFraction,
	}
}

// newGroupSampler runs the consistency check for the group and chooses
// per-variable strategies.
func newGroupSampler(g cond.Group, cfg *Config) *groupSampler {
	gs := &groupSampler{
		group:        g,
		cfg:          cfg,
		keys:         g.Keys,
		modes:        map[expr.VarKey]varMode{},
		cdfBox:       map[expr.VarKey][2]float64{},
		massFraction: 1,
	}
	res := cond.CheckConsistency(g.Atoms)
	gs.bounds = res.Bounds
	if res.Verdict == cond.Inconsistent {
		gs.inconsistent = true
		return gs
	}
	for _, k := range g.Keys {
		gs.modes[k] = modeNatural
		if cfg.DisableCDFInversion {
			continue
		}
		v := g.Vars[k]
		if _, multi := v.Dist.Class.(dist.Multivariater); multi {
			// Joint draws cannot be bound per-component; leave natural.
			continue
		}
		iv := gs.bounds.Get(k)
		if !iv.Bounded() {
			continue
		}
		_, hasCDF := v.Dist.Class.(dist.CDFer)
		_, hasInv := v.Dist.Class.(dist.InvCDFer)
		if !hasCDF || !hasInv {
			continue
		}
		pLo, pHi := intervalMass(v.Dist, iv)
		if pHi <= pLo {
			// The bounds carry zero prior mass: the group is
			// (numerically) unsatisfiable.
			gs.inconsistent = true
			return gs
		}
		gs.modes[k] = modeCDF
		gs.cdfBox[k] = [2]float64{pLo, pHi}
		gs.massFraction *= pHi - pLo
	}
	gs.maybePreEscalate()
	return gs
}

// maybePreEscalate implements the paper's upfront cost comparison
// (§IV-A-d): a small pilot estimates P[reject]; if the expected rejection
// work W_naive = n / (1 - P[reject]) exceeds the Metropolis cost
// W_metropolis = C_burnin + n * C_step, the group starts on the random walk
// immediately instead of discovering the rejection rate the hard way.
func (gs *groupSampler) maybePreEscalate() {
	if gs.cfg.DisableMetropolis || gs.inconsistent || len(gs.group.Atoms) == 0 {
		return
	}
	// Single-variable CDF-bounded groups never reject on bounds; the pilot
	// is only worth running when some constraint survives the bounds
	// (multi-variable atoms, or variables without CDF support).
	multiVarAtom := false
	for _, a := range gs.group.Atoms {
		set := map[expr.VarKey]*expr.Variable{}
		a.CollectVars(set)
		if len(set) > 1 {
			multiVarAtom = true
			break
		}
	}
	if !multiVarAtom {
		return
	}
	const pilot = 200
	pReject := gs.estimateRejectProb(pilot)
	// Expected samples this group will be asked for.
	n := float64(gs.cfg.FixedSamples)
	if n <= 0 {
		n = float64(gs.cfg.MinSamples)
		if n <= 0 {
			n = 30
		}
	}
	if pReject >= 1 {
		pReject = 1 - 1e-9
	}
	wNaive := n / (1 - pReject)
	wMetropolis := float64(gs.cfg.MetropolisBurnIn) + n*float64(gs.cfg.MetropolisThin)
	// Escalate only when the rejection rate is past the threshold AND the
	// cost model favors the walk: moderate selectivities stay on rejection
	// (independent samples beat a correlated chain when affordable).
	if pReject > gs.cfg.MetropolisThreshold && wNaive > wMetropolis {
		if m := newMetroState(gs, 0); m != nil {
			gs.metro = m
			gs.cfg.Stats.AddEscalation()
		}
	}
}

// intervalMass returns the prior CDF mass edges of the closed interval iv,
// clamped to [0,1]. For integer-valued distributions the CDF is a
// right-continuous step function, so the closed interval [lo, hi] carries
// mass CDF(hi) - CDF(ceil(lo)-1); using CDF(lo) directly would drop the
// point mass at lo (and report zero mass for pinned intervals like [0, 0],
// the shape repair-key conditions produce).
func intervalMass(in dist.Instance, iv cond.Interval) (float64, float64) {
	lo, hi := 0.0, 1.0
	discrete := isIntegerValued(in)
	if !math.IsInf(iv.Lo, -1) {
		edge := iv.Lo
		if discrete {
			edge = math.Ceil(iv.Lo) - 1
		}
		if v, ok := in.CDF(edge); ok {
			lo = v
		}
	}
	if !math.IsInf(iv.Hi, 1) {
		edge := iv.Hi
		if discrete {
			edge = math.Floor(iv.Hi)
		}
		if v, ok := in.CDF(edge); ok {
			hi = v
		}
	}
	return math.Max(0, math.Min(1, lo)), math.Max(0, math.Min(1, hi))
}

// usable reports whether the group can produce samples at all.
func (gs *groupSampler) usable() bool { return !gs.inconsistent }

// usingMetropolis reports whether the group (or any batch-local clone of
// it) has escalated to the random walk.
func (gs *groupSampler) usingMetropolis() bool { return gs.metro != nil || gs.escalated }

// probEstimate returns this group's contribution to P[C]: the prior mass of
// the CDF-restricted box times the in-box acceptance rate. It is undefined
// (ok=false) for Metropolis-mode groups (Algorithm 4.3 line 31 note).
func (gs *groupSampler) probEstimate() (float64, bool) {
	if gs.inconsistent {
		return 0, true
	}
	if gs.usingMetropolis() {
		return 0, false
	}
	if gs.attempts == 0 {
		return 0, false
	}
	return gs.massFraction * float64(gs.accepts) / float64(gs.attempts), true
}

// drawInto draws one constraint-satisfying joint value for the group into
// asn. It returns false if the rejection cap is exhausted and Metropolis is
// unavailable (the context is effectively unsatisfiable: NAN result per
// Algorithm 4.3 line 25).
func (gs *groupSampler) drawInto(asn expr.Assignment, sampleIdx uint64) bool {
	if gs.inconsistent {
		return false
	}
	if gs.metro != nil {
		return gs.metro.next(asn, sampleIdx)
	}
	capN := gs.cfg.RejectionCap
	if capN <= 0 {
		capN = 200000
	}
	for local := 0; local < capN; local++ {
		gs.attempts++
		gs.generateCandidate(asn, sampleIdx, uint64(local))
		if gs.group.Atoms.Holds(asn) {
			gs.accepts++
			return true
		}
		// Escalation check (Algorithm 4.3 lines 19–24): once the observed
		// rejection rate crosses the threshold, switch to Metropolis if
		// every variable has a PDF.
		if !gs.cfg.DisableMetropolis && gs.attempts >= 1000 {
			rejRate := 1 - float64(gs.accepts)/float64(gs.attempts)
			if rejRate > gs.cfg.MetropolisThreshold {
				if m := newMetroState(gs, sampleIdx); m != nil {
					gs.metro = m
					gs.cfg.Stats.AddEscalation()
					return gs.metro.next(asn, sampleIdx)
				}
				// No PDFs: keep rejecting until the cap.
			}
		}
	}
	return false
}

// generateCandidate writes one unconditioned (or CDF-box-conditioned) draw
// for every variable of the group into asn.
func (gs *groupSampler) generateCandidate(asn expr.Assignment, sampleIdx, attempt uint64) {
	drawnJoint := map[uint64]bool{}
	for _, k := range gs.keys {
		v := gs.group.Vars[k]
		if mv, ok := v.Dist.Class.(dist.Multivariater); ok {
			if drawnJoint[k.ID] {
				continue
			}
			drawnJoint[k.ID] = true
			r := prng.NewKeyed(gs.cfg.WorldSeed, k.ID, 0, sampleIdx, attempt)
			vec := mv.GenerateJoint(v.Dist.Params, r)
			for sub, val := range vec {
				asn[expr.VarKey{ID: k.ID, Subscript: sub}] = val
			}
			continue
		}
		r := prng.NewKeyed(gs.cfg.WorldSeed, k.ID, uint64(k.Subscript), sampleIdx, attempt)
		switch gs.modes[k] {
		case modeCDF:
			iv := gs.bounds.Get(k)
			box := gs.cdfBox[k]
			pLo, pHi := box[0], box[1]
			u := pLo + (pHi-pLo)*r.Float64()
			x, _ := v.Dist.InvCDF(u)
			// Clamp against numeric drift at the interval edges.
			if x < iv.Lo {
				x = iv.Lo
			}
			if x > iv.Hi {
				x = iv.Hi
			}
			asn[k] = x
		default:
			asn[k] = v.Dist.Generate(r)
		}
	}
}

// estimateRejectProb draws a small pilot to estimate P[reject] for the
// group, used by the W_metropolis vs W_naive cost comparison (§IV-A-d).
func (gs *groupSampler) estimateRejectProb(pilot int) float64 {
	if gs.inconsistent {
		return 1
	}
	asn := expr.Assignment{}
	ok := 0
	for i := 0; i < pilot; i++ {
		gs.generateCandidate(asn, ^uint64(0)-uint64(i), 0)
		if gs.group.Atoms.Holds(asn) {
			ok++
		}
	}
	return 1 - float64(ok)/float64(pilot)
}
