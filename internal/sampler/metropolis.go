package sampler

import (
	"math"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/prng"
)

// metroState runs a Metropolis random walk over one constraint group
// (paper §IV-A-d). The target density is the prior joint density of the
// group's variables restricted to the constraint region (the indicator
// enters the acceptance test), so samples taken at thinned intervals are
// approximately distributed as the conditional distribution given the
// group's atoms.
//
// Metropolis carries an expensive burn-in but cheap per-sample steps; the
// group sampler escalates to it only when rejection sampling's observed
// rejection rate crosses the configured threshold, mirroring the
// W_metropolis vs W_naive comparison in the paper.
type metroState struct {
	gs   *groupSampler
	keys []expr.VarKey // scalar variables of the walk, fixed order
	cur  map[expr.VarKey]float64
	step map[expr.VarKey]float64
	logP float64
	rng  *prng.Rand
}

// newMetroState builds the walk if every group variable has a PDF
// (Algorithm 4.3 line 20) and a satisfying start point can be found
// (line 22–23); otherwise it returns nil.
func newMetroState(gs *groupSampler, sampleIdx uint64) *metroState {
	m := &metroState{
		gs:   gs,
		cur:  map[expr.VarKey]float64{},
		step: map[expr.VarKey]float64{},
		rng:  prng.NewKeyed(gs.cfg.WorldSeed, 0x4d657472, sampleIdx), // "Metr"
	}
	for _, k := range gs.keys {
		v := gs.group.Vars[k]
		if _, ok := v.Dist.Class.(dist.PDFer); !ok {
			return nil
		}
		if _, multi := v.Dist.Class.(dist.Multivariater); multi {
			// Joint densities are not exposed; the walk cannot target them.
			return nil
		}
		m.keys = append(m.keys, k)
		// Step size: distribution scale if known, else bounds width, else 1.
		s := 1.0
		if variance, ok := v.Dist.Variance(); ok && variance > 0 {
			s = math.Sqrt(variance) / 2
		} else if iv := gs.bounds.Get(k); iv.Bounded() && !math.IsInf(iv.Hi-iv.Lo, 1) {
			s = (iv.Hi - iv.Lo) / 4
		}
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			s = 1
		}
		m.step[k] = s
	}
	if !m.findStart() {
		return nil
	}
	// Burn-in.
	asn := expr.Assignment{}
	for i := 0; i < gs.cfg.MetropolisBurnIn; i++ {
		m.walkStep(asn)
	}
	return m
}

// findStart scans for a constraint-satisfying start point (Algorithm 4.3
// line 22): first by natural sampling, then by bounds midpoints.
func (m *metroState) findStart() bool {
	asn := expr.Assignment{}
	const scanAttempts = 5000
	for i := 0; i < scanAttempts; i++ {
		for _, k := range m.keys {
			v := m.gs.group.Vars[k]
			asn[k] = v.Dist.Generate(m.rng)
		}
		if m.gs.group.Atoms.Holds(asn) {
			m.adopt(asn)
			return true
		}
	}
	// Bounds midpoints as a deterministic fallback.
	for _, k := range m.keys {
		iv := m.gs.bounds.Get(k)
		switch {
		case iv.Bounded() && !math.IsInf(iv.Lo, -1) && !math.IsInf(iv.Hi, 1):
			asn[k] = (iv.Lo + iv.Hi) / 2
		case !math.IsInf(iv.Lo, -1):
			asn[k] = iv.Lo + 1
		case !math.IsInf(iv.Hi, 1):
			asn[k] = iv.Hi - 1
		default:
			asn[k] = 0
		}
	}
	if m.gs.group.Atoms.Holds(asn) {
		m.adopt(asn)
		return true
	}
	// Constraint repair: walk each violated linear atom into satisfaction
	// by moving its largest-coefficient variable. This finds start points
	// for deep-tail constraints (e.g. Y1+Y2 > 6 for standard normals)
	// where natural scanning is hopeless.
	if m.repairStart(asn) {
		m.adopt(asn)
		return true
	}
	return false
}

// repairStart iteratively fixes violated linear atoms in place. Returns
// true once every atom holds.
func (m *metroState) repairStart(asn expr.Assignment) bool {
	const rounds = 500
	for round := 0; round < rounds; round++ {
		violated := false
		for _, a := range m.gs.group.Atoms {
			if a.Holds(asn) {
				continue
			}
			violated = true
			lf, ok := expr.Linearize(expr.Sub(a.Left, a.Right))
			if !ok {
				return false // non-linear atoms cannot be repaired
			}
			// Current value of coef-sum; move the variable with the
			// largest coefficient magnitude to restore the inequality
			// with a margin. Coefficients are visited in sorted key order:
			// map iteration would randomize both the floating-point sum and
			// the tie-break for bestK, breaking the equal-seeds-equal-results
			// contract between runs.
			coeffKeys := make([]expr.VarKey, 0, len(lf.Coeffs))
			for vk := range lf.Coeffs {
				coeffKeys = append(coeffKeys, vk)
			}
			sortVarKeys(coeffKeys)
			val := lf.Constant
			var bestK expr.VarKey
			bestC := 0.0
			for _, vk := range coeffKeys {
				c := lf.Coeffs[vk]
				val += c * asn[vk]
				if math.Abs(c) > math.Abs(bestC) {
					bestC, bestK = c, vk
				}
			}
			if bestC == 0 {
				return false
			}
			margin := math.Abs(val)*0.1 + 1e-3
			var target float64
			switch a.Op {
			case cond.GT, cond.GE:
				target = margin // want val' = +margin
			case cond.LT, cond.LE:
				target = -margin
			case cond.EQ:
				target = 0
			case cond.NEQ:
				target = margin
			}
			asn[bestK] += (target - val) / bestC
			// Respect hard bounds if known.
			if iv := m.gs.bounds.Get(bestK); iv.Bounded() {
				if asn[bestK] < iv.Lo {
					asn[bestK] = iv.Lo
				}
				if asn[bestK] > iv.Hi {
					asn[bestK] = iv.Hi
				}
			}
		}
		if !violated {
			return true
		}
	}
	return m.gs.group.Atoms.Holds(asn)
}

func (m *metroState) adopt(asn expr.Assignment) {
	for _, k := range m.keys {
		m.cur[k] = asn[k]
	}
	m.logP = m.logDensity(m.cur)
}

// logDensity returns the log prior density of a point.
func (m *metroState) logDensity(pt map[expr.VarKey]float64) float64 {
	lp := 0.0
	for _, k := range m.keys {
		v := m.gs.group.Vars[k]
		p, _ := v.Dist.PDF(pt[k])
		if p <= 0 {
			return math.Inf(-1)
		}
		lp += math.Log(p)
	}
	return lp
}

// walkStep proposes a Gaussian move on every coordinate and accepts with
// the Metropolis ratio restricted to the constraint region.
func (m *metroState) walkStep(scratch expr.Assignment) {
	prop := map[expr.VarKey]float64{}
	for _, k := range m.keys {
		prop[k] = m.cur[k] + m.step[k]*m.rng.NormFloat64()
	}
	for k, v := range prop {
		scratch[k] = v
	}
	if !m.gs.group.Atoms.Holds(scratch) {
		m.gs.cfg.Stats.AddMetropolis(false)
		// Restore scratch to the current point for the caller.
		for _, k := range m.keys {
			scratch[k] = m.cur[k]
		}
		return
	}
	lp := m.logDensity(prop)
	if lp >= m.logP || m.rng.Float64() < math.Exp(lp-m.logP) {
		m.gs.cfg.Stats.AddMetropolis(true)
		m.cur = prop
		m.logP = lp
		return
	}
	m.gs.cfg.Stats.AddMetropolis(false)
	for _, k := range m.keys {
		scratch[k] = m.cur[k]
	}
}

// next advances the chain by the thinning interval and writes the current
// point into asn.
func (m *metroState) next(asn expr.Assignment, _ uint64) bool {
	thin := m.gs.cfg.MetropolisThin
	if thin < 1 {
		thin = 1
	}
	for i := 0; i < thin; i++ {
		m.walkStep(asn)
	}
	for _, k := range m.keys {
		asn[k] = m.cur[k]
	}
	return true
}

// metropolisViable reports whether a clause's groups could all support a
// Metropolis walk; exposed for tests and ablation benches.
func metropolisViable(groups []cond.Group) bool {
	for _, g := range groups {
		for _, k := range g.Keys {
			v := g.Vars[k]
			if _, ok := v.Dist.Class.(dist.PDFer); !ok {
				return false
			}
		}
	}
	return true
}
