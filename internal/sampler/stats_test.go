package sampler

import (
	"testing"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/obs"
)

// TestBitIdentityWithStats is the deterministic-neutrality contract of the
// telemetry layer: attaching a stats sink must not perturb a single bit of
// any result, at any worker count, across the whole strategy corpus. The
// baseline runs with Stats nil; the traced runs must match it exactly.
func TestBitIdentityWithStats(t *testing.T) {
	for _, sc := range expectationCorpus(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := sc.run(workerSampler(1))
			for _, workers := range []int{1, 3, 8} {
				st := &obs.SamplerStats{}
				got := sc.run(workerSampler(workers).WithStats(st))
				if len(got) != len(base) {
					t.Fatalf("workers=%d: %d values, want %d", workers, len(got), len(base))
				}
				for i := range base {
					if !eq(got[i], base[i]) {
						t.Fatalf("workers=%d with stats: value %d = %v, want %v (bit-identical)",
							workers, i, got[i], base[i])
					}
				}
				snap := st.Snapshot()
				if snap.Samples == 0 || snap.Rounds == 0 {
					t.Fatalf("workers=%d: stats sink stayed empty: %+v", workers, snap)
				}
			}
		})
	}
}

// TestStatsCountsAndTrajectory pins what the sampler reports: the sample
// count matches the result's N, batches cover the samples, and adaptive
// runs record a shrinking relative-width trajectory.
func TestStatsCountsAndTrajectory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 7
	cfg.Workers = 4
	st := &obs.SamplerStats{}
	cfg.Stats = st
	s := New(cfg)

	y := &expr.Variable{Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 5, 3)}
	c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(4))}
	r := s.Expectation(expr.NewVar(y), c, true)

	snap := st.Snapshot()
	if snap.Samples != int64(r.N) {
		t.Fatalf("stats saw %d samples, result drew %d", snap.Samples, r.N)
	}
	if snap.Batches == 0 || snap.Rounds == 0 {
		t.Fatalf("no batches/rounds recorded: %+v", snap)
	}
	if snap.RejectionAttempts < snap.RejectionAccepts || snap.RejectionAccepts == 0 {
		t.Fatalf("rejection counters inconsistent: %+v", snap)
	}
	traj := st.Trajectory()
	if len(traj) == 0 {
		t.Fatal("adaptive run recorded no trajectory")
	}
	last := traj[len(traj)-1]
	if last.N != r.N {
		t.Fatalf("trajectory tail N=%d, result N=%d", last.N, r.N)
	}
	if first := traj[0]; len(traj) > 1 && last.RelWidth >= first.RelWidth {
		t.Fatalf("relative width did not shrink: first %+v, last %+v", first, last)
	}
}

// TestMetropolisStatsRecorded asserts the escalation path reports itself:
// a sliver-thin constraint forces Metropolis escalation, which must show up
// as escalations and proposal/accept counts.
func TestMetropolisStatsRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 42
	cfg.FixedSamples = 300
	st := &obs.SamplerStats{}
	cfg.Stats = st
	s := New(cfg)

	// Deep-tail two-variable constraint (single-variable intervals invert
	// the exact CDF instead): rejection is hopeless, so the group
	// pre-escalates to Metropolis.
	a := &expr.Variable{Key: expr.VarKey{ID: 9}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
	b := &expr.Variable{Key: expr.VarKey{ID: 10}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
	e := expr.Add(expr.NewVar(a), expr.NewVar(b))
	c := cond.Clause{cond.NewAtom(e, cond.GT, expr.Const(6))}
	s.Expectation(e, c, false)

	snap := st.Snapshot()
	if snap.Escalations == 0 {
		t.Fatalf("thin-constraint run did not escalate: %+v", snap)
	}
	if snap.MetropolisProposals == 0 {
		t.Fatalf("escalated run recorded no Metropolis proposals: %+v", snap)
	}
	if snap.MetropolisAccepts > snap.MetropolisProposals {
		t.Fatalf("accepts exceed proposals: %+v", snap)
	}
}
