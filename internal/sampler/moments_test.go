package sampler

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
)

func TestMomentClosedForms(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 3, 2)
	m1 := s.Moment(expr.NewVar(y), cond.TrueClause(), 1)
	if !m1.Exact || m1.Moment != 3 {
		t.Fatalf("first moment %+v", m1)
	}
	// E[Y^2] = var + mean^2 = 4 + 9 = 13.
	m2 := s.Moment(expr.NewVar(y), cond.TrueClause(), 2)
	if !m2.Exact || m2.Moment != 13 {
		t.Fatalf("second moment %+v", m2)
	}
}

func TestMomentSampledThird(t *testing.T) {
	// Third raw moment of N(0,1) is 0; of N(1,1) is mu^3+3*mu*sigma^2 = 4.
	cfg := DefaultConfig()
	cfg.WorldSeed = 4
	cfg.FixedSamples = 20000
	s := New(cfg)
	y := mkVar(t, dist.Normal{}, 1, 1)
	m3 := s.Moment(expr.NewVar(y), cond.TrueClause(), 3)
	if m3.Exact {
		t.Fatal("third moment should be sampled")
	}
	if math.Abs(m3.Moment-4) > 0.3 {
		t.Fatalf("third moment %v, want 4", m3.Moment)
	}
}

func TestMomentInvalidOrder(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	if m := s.Moment(expr.NewVar(y), cond.TrueClause(), 0); !math.IsNaN(m.Moment) {
		t.Fatalf("k=0 moment %v", m.Moment)
	}
}

func TestVarianceClosedForm(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Exponential{}, 0.5)
	v := s.Variance(expr.NewVar(y), cond.TrueClause())
	if !v.Exact || v.Variance != 4 || v.StdDev != 2 || v.Mean != 2 {
		t.Fatalf("%+v", v)
	}
}

func TestVarianceConditional(t *testing.T) {
	// Var[U | U > 0.5] for U ~ Uniform(0,1) = (0.5)^2/12.
	cfg := DefaultConfig()
	cfg.WorldSeed = 4
	cfg.FixedSamples = 20000
	s := New(cfg)
	u := mkVar(t, dist.Uniform{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(u), cond.GT, expr.Const(0.5))}
	v := s.Variance(expr.NewVar(u), c)
	want := 0.25 / 12
	if math.Abs(v.Variance-want) > 0.1*want {
		t.Fatalf("conditional variance %v, want %v", v.Variance, want)
	}
	if math.Abs(v.Mean-0.75) > 0.01 {
		t.Fatalf("conditional mean %v", v.Mean)
	}
}

func TestVarianceOfExpression(t *testing.T) {
	// Var[2Y + 5] = 4*Var[Y].
	cfg := DefaultConfig()
	cfg.WorldSeed = 4
	cfg.FixedSamples = 20000
	s := New(cfg)
	y := mkVar(t, dist.Normal{}, 0, 3)
	e := expr.Add(expr.Mul(expr.Const(2), expr.NewVar(y)), expr.Const(5))
	v := s.Variance(e, cond.TrueClause())
	if math.Abs(v.Variance-36) > 2 {
		t.Fatalf("Var[2Y+5] = %v, want 36", v.Variance)
	}
}

func TestAggregateVariance(t *testing.T) {
	// Sum of two independent N(0,2) rows: Var = 8.
	s := testSampler()
	y1 := mkVar(t, dist.Normal{}, 0, 2)
	y2 := mkVar(t, dist.Normal{}, 0, 2)
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y1))))
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y2))))
	v, err := s.AggregateVariance(tb, 0, SumFold, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Variance-8) > 0.5 {
		t.Fatalf("Var[sum] = %v, want 8", v.Variance)
	}
	// Shared variable: sum = 2Y, Var = 4*Var[Y] = 16, not 8.
	tb2 := ctable.New("t2", "v")
	tb2.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y1))))
	tb2.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y1))))
	v2, err := s.AggregateVariance(tb2, 0, SumFold, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v2.Variance-16) > 1 {
		t.Fatalf("Var[2Y] = %v, want 16 (correlation lost?)", v2.Variance)
	}
}

func TestHistogramBuckets(t *testing.T) {
	samples := []float64{0, 0.1, 0.2, 0.9, 1.0}
	edges, counts, err := HistogramBuckets(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || len(counts) != 2 {
		t.Fatalf("edges %v counts %v", edges, counts)
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("counts %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(samples) {
		t.Fatal("bucket counts do not sum to sample count")
	}
}

func TestHistogramBucketsDegenerate(t *testing.T) {
	edges, counts, err := HistogramBuckets([]float64{5, 5, 5}, 4)
	if err != nil || len(edges) != 1 || counts[0] != 3 {
		t.Fatalf("degenerate: %v %v %v", edges, counts, err)
	}
	if _, _, err := HistogramBuckets(nil, 3); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, _, err := HistogramBuckets([]float64{1}, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
	if _, _, err := HistogramBuckets([]float64{math.NaN()}, 2); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestVarianceUnsatisfiable(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Exponential{}, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.LT, expr.Const(-1))}
	v := s.Variance(expr.NewVar(y), c)
	if !math.IsNaN(v.Variance) {
		t.Fatalf("unsatisfiable variance %v", v.Variance)
	}
}
