package sampler

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
)

// uniformRowCond builds a condition with exact probability p using an
// independent Uniform(0,1) variable: U < p.
func uniformRowCond(t *testing.T, p float64) cond.Condition {
	t.Helper()
	u := mkVar(t, dist.Uniform{}, 0, 1)
	return cond.FromClause(cond.Clause{atom(expr.NewVar(u), cond.LT, expr.Const(p))})
}

func TestExpectedSumDeterministic(t *testing.T) {
	s := testSampler()
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Float(3)))
	tb.MustAppend(ctable.NewTuple(ctable.Float(4)))
	r, err := s.ExpectedSum(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || r.Value != 7 {
		t.Fatalf("sum %v exact %v", r.Value, r.Exact)
	}
}

func TestExpectedSumWithConfidences(t *testing.T) {
	// Rows worth 10 and 20 with exact probabilities 0.25 and 0.5:
	// E[sum] = 10*0.25 + 20*0.5 = 12.5, exactly integrable via CDF.
	s := testSampler()
	tb := ctable.New("t", "v")
	t1 := ctable.NewTuple(ctable.Float(10))
	t1.Cond = uniformRowCond(t, 0.25)
	t2 := ctable.NewTuple(ctable.Float(20))
	t2.Cond = uniformRowCond(t, 0.5)
	tb.MustAppend(t1)
	tb.MustAppend(t2)
	r, err := s.ExpectedSum(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-12.5) > 1e-9 {
		t.Fatalf("E[sum] = %v, want 12.5", r.Value)
	}
}

func TestExpectedSumSymbolicTargets(t *testing.T) {
	// Two normal-valued rows, unconditioned: E[sum] = mu1 + mu2 exactly
	// (linearity short-circuits sampling).
	s := testSampler()
	y1 := mkVar(t, dist.Normal{}, 5, 1)
	y2 := mkVar(t, dist.Normal{}, 7, 2)
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y1))))
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y2))))
	r, err := s.ExpectedSum(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || math.Abs(r.Value-12) > 1e-12 {
		t.Fatalf("E[sum] = %v exact=%v", r.Value, r.Exact)
	}
}

func TestExpectedSumConditionedTarget(t *testing.T) {
	// One row: value Y ~ N(0,1) conditioned on Y > 1.
	// Contribution = P[Y>1] * E[Y | Y>1] = phi(1) (Mills ratio identity:
	// E[Y|Y>t]*P[Y>t] = phi(t)).
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	tb := ctable.New("t", "v")
	tup := ctable.NewTuple(ctable.Symbolic(expr.NewVar(y)))
	tup.Cond = cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(1))})
	tb.MustAppend(tup)
	r, err := s.ExpectedSum(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := phi(1)
	if math.Abs(r.Value-want) > 0.02 {
		t.Fatalf("E[sum] = %v, want %v", r.Value, want)
	}
}

func TestExpectedCount(t *testing.T) {
	s := testSampler()
	tb := ctable.New("t", "v")
	t1 := ctable.NewTuple(ctable.Float(1))
	t1.Cond = uniformRowCond(t, 0.3)
	t2 := ctable.NewTuple(ctable.Float(1)) // always present
	tb.MustAppend(t1)
	tb.MustAppend(t2)
	r, err := s.ExpectedCount(tb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-1.3) > 1e-9 {
		t.Fatalf("E[count] = %v, want 1.3", r.Value)
	}
}

func TestExpectedAvg(t *testing.T) {
	s := testSampler()
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Float(10)))
	tb.MustAppend(ctable.NewTuple(ctable.Float(20)))
	r, err := s.ExpectedAvg(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-15) > 1e-9 {
		t.Fatalf("E[avg] = %v", r.Value)
	}
	empty := ctable.New("e", "v")
	r, err = s.ExpectedAvg(empty, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r.Value) {
		t.Fatalf("avg of empty table = %v, want NaN", r.Value)
	}
}

func TestExpectedMaxExample44(t *testing.T) {
	// The paper's Example 4.4 table: values 5, 4, 1, 0 with row
	// probabilities 0.7, 0.8, 0.3, 0.6 (independent conditions).
	// Correct expectation with independent rows, scanning in descending
	// order (absent-all worlds contribute 0):
	// E[max] = 5*.7 + 4*.8*(1-.7) + 1*.3*(1-.7)(1-.8) + 0*... = 4.478
	s := testSampler()
	tb := ctable.New("R", "A")
	add := func(v, p float64) {
		tup := ctable.NewTuple(ctable.Float(v))
		tup.Cond = uniformRowCond(t, p)
		tb.MustAppend(tup)
	}
	add(5, 0.7)
	add(4, 0.8)
	add(1, 0.3)
	add(0, 0.6)
	r, err := s.ExpectedMax(tb, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 5*0.7 + 4*0.8*0.3 + 1*0.3*0.3*0.2
	if math.Abs(r.Value-want) > 1e-9 {
		t.Fatalf("E[max] = %v, want %v", r.Value, want)
	}
	if !r.Exact {
		t.Fatal("independent uniform-interval rows should be exact")
	}
}

func TestExpectedMaxEarlyTermination(t *testing.T) {
	// With precision 0.1, scanning the Example 4.4 table stops before the
	// low-value rows: after rows 5 and 4, P[none] = 0.06 and the largest
	// remaining value is 1, so the residual bound 0.06 < 0.1.
	s := testSampler()
	tb := ctable.New("R", "A")
	add := func(v, p float64) {
		tup := ctable.NewTuple(ctable.Float(v))
		tup.Cond = uniformRowCond(t, p)
		tb.MustAppend(tup)
	}
	add(5, 0.7)
	add(4, 0.8)
	add(1, 0.3)
	add(0, 0.6)
	r, err := s.ExpectedMax(tb, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsScanned >= 4 {
		t.Fatalf("scanned %d rows; early termination failed", r.RowsScanned)
	}
	exact := 5*0.7 + 4*0.8*0.3 + 1*0.3*0.3*0.2
	if math.Abs(r.Value-exact) > 0.1 {
		t.Fatalf("early-terminated E[max] = %v, exact %v", r.Value, exact)
	}
}

func TestExpectedMaxSharedVariableFallsBack(t *testing.T) {
	// Two rows conditioned on the same variable are NOT independent; the
	// sorted algorithm must detect this and fall back to world sampling.
	// Rows: value 10 when U < 0.5, value 5 when U >= 0.5 (complementary!).
	// True E[max] = 10*0.5 + 5*0.5 = 7.5 — the independent formula would
	// give 10*0.5 + 5*0.5*0.5 = 6.25.
	cfg := DefaultConfig()
	cfg.WorldSeed = 42
	cfg.MaxSamples = 4000
	s := New(cfg)
	u := mkVar(t, dist.Uniform{}, 0, 1)
	tb := ctable.New("t", "v")
	t1 := ctable.NewTuple(ctable.Float(10))
	t1.Cond = cond.FromClause(cond.Clause{atom(expr.NewVar(u), cond.LT, expr.Const(0.5))})
	t2 := ctable.NewTuple(ctable.Float(5))
	t2.Cond = cond.FromClause(cond.Clause{atom(expr.NewVar(u), cond.GE, expr.Const(0.5))})
	tb.MustAppend(t1)
	tb.MustAppend(t2)
	r, err := s.ExpectedMax(tb, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-7.5) > 0.15 {
		t.Fatalf("correlated E[max] = %v, want 7.5", r.Value)
	}
}

func TestExpectedMaxSymbolicTargets(t *testing.T) {
	// max over two unconditioned normals: E[max(A,B)] for A~N(0,1),
	// B~N(0,1) iid = 1/sqrt(pi).
	cfg := DefaultConfig()
	cfg.WorldSeed = 21
	cfg.MaxSamples = 8000
	s := New(cfg)
	a := mkVar(t, dist.Normal{}, 0, 1)
	b := mkVar(t, dist.Normal{}, 0, 1)
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(a))))
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(b))))
	r, err := s.ExpectedMax(tb, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(math.Pi)
	if math.Abs(r.Value-want) > 0.05 {
		t.Fatalf("E[max of two normals] = %v, want %v", r.Value, want)
	}
}

func TestAggregateHistogram(t *testing.T) {
	// Histogram of the sum over one always-present N(10,2) row: sample
	// mean must approach 10, sample stddev ~2.
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 10, 2)
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(y))))
	hist, err := s.AggregateHistogram(tb, 0, SumFold, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 5000 {
		t.Fatalf("got %d samples", len(hist))
	}
	var sum, sumSq float64
	for _, v := range hist {
		sum += v
		sumSq += v * v
	}
	mean := sum / 5000
	sd := math.Sqrt(sumSq/5000 - mean*mean)
	if math.Abs(mean-10) > 0.15 || math.Abs(sd-2) > 0.15 {
		t.Fatalf("hist mean %v sd %v", mean, sd)
	}
}

func TestHistogramRespectsPresence(t *testing.T) {
	// A row with P = 0.5 contributes in about half the worlds.
	s := testSampler()
	tb := ctable.New("t", "v")
	tup := ctable.NewTuple(ctable.Float(1))
	tup.Cond = uniformRowCond(t, 0.5)
	tb.MustAppend(tup)
	hist, err := s.AggregateHistogram(tb, 0, SumFold, 8000)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range hist {
		if v == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(len(hist))
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("presence fraction %v", frac)
	}
}

func TestHistogramSharedVariableCorrelation(t *testing.T) {
	// Two rows referencing the SAME variable must be perfectly correlated
	// in every world: sum is either 0 or 2, never 1.
	s := testSampler()
	u := mkVar(t, dist.Uniform{}, 0, 1)
	clause := cond.FromClause(cond.Clause{atom(expr.NewVar(u), cond.LT, expr.Const(0.5))})
	tb := ctable.New("t", "v")
	t1 := ctable.NewTuple(ctable.Float(1))
	t1.Cond = clause
	t2 := ctable.NewTuple(ctable.Float(1))
	t2.Cond = clause
	tb.MustAppend(t1)
	tb.MustAppend(t2)
	hist, err := s.AggregateHistogram(tb, 0, SumFold, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range hist {
		if v != 0 && v != 2 {
			t.Fatalf("shared-variable worlds decorrelated: sum %v", v)
		}
	}
}

func TestExpectationHistogramConditioned(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(1))}
	hist, err := s.ExpectationHistogram(expr.NewVar(y), c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2000 {
		t.Fatalf("got %d samples", len(hist))
	}
	for _, v := range hist {
		if v <= 1 {
			t.Fatalf("conditional sample %v violates Y>1", v)
		}
	}
}

func TestGroupedSumMatchesManual(t *testing.T) {
	// Regression for the per-row path under group-by usage: build two
	// "groups" by hand as separate tables and compare against the combined
	// expected sum.
	s := testSampler()
	y1 := mkVar(t, dist.Normal{}, 5, 1)
	y2 := mkVar(t, dist.Normal{}, 50, 1)
	mk := func(v *expr.Variable) *ctable.Table {
		tb := ctable.New("t", "v")
		tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(v))))
		return tb
	}
	r1, err := s.ExpectedSum(mk(y1), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.ExpectedSum(mk(y2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Value-5) > 0.2 || math.Abs(r2.Value-50) > 0.2 {
		t.Fatalf("group sums %v, %v", r1.Value, r2.Value)
	}
}

func TestNullTargetContributesZero(t *testing.T) {
	s := testSampler()
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Null()))
	tb.MustAppend(ctable.NewTuple(ctable.Float(5)))
	r, err := s.ExpectedSum(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 5 {
		t.Fatalf("sum with NULL = %v", r.Value)
	}
}

func TestNonNumericTargetErrors(t *testing.T) {
	s := testSampler()
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.String_("oops")))
	if _, err := s.ExpectedSum(tb, 0); err == nil {
		t.Fatal("string sum target accepted")
	}
	if _, err := s.ExpectedSum(tb, 3); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestUnsatisfiableRowContributesZero(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Exponential{}, 1)
	tb := ctable.New("t", "v")
	tup := ctable.NewTuple(ctable.Float(100))
	tup.Cond = cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.LT, expr.Const(-1))})
	tb.MustAppend(tup)
	tb.MustAppend(ctable.NewTuple(ctable.Float(7)))
	r, err := s.ExpectedSum(tb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 7 {
		t.Fatalf("sum = %v, want 7", r.Value)
	}
}
