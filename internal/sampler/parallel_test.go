package sampler

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
)

// workerSampler builds a sampler with an explicit worker count (this forces
// real goroutine fan-out even on single-CPU machines, where the GOMAXPROCS
// default would run inline).
func workerSampler(workers int) *Sampler {
	cfg := DefaultConfig()
	cfg.WorldSeed = 12345
	cfg.Workers = workers
	return New(cfg)
}

// eq asserts bit-identity of two float64s (NaN == NaN).
func eq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestSplitRange(t *testing.T) {
	offs := splitRange(10, 130, 64)
	want := []int{10, 74, 138}
	if len(offs) != len(want) {
		t.Fatalf("offsets %v, want %v", offs, want)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offs, want)
		}
	}
	if splitRange(0, 0, 64) != nil {
		t.Fatal("empty range should produce no batches")
	}
}

func TestForEachBatchCoversAllBatches(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hits := make([]int, 57)
		forEachBatch(nil, workers, len(hits), func(b int) { hits[b]++ })
		for b, n := range hits {
			if n != 1 {
				t.Fatalf("workers=%d: batch %d ran %d times", workers, b, n)
			}
		}
	}
}

// expectationCorpus enumerates the sampling scenarios whose results must be
// bit-identical across worker counts: every goal-directed strategy (CDF
// inversion, rejection, escalation), the DNF world sampler, and the
// probability estimators.
func expectationCorpus(t *testing.T) []struct {
	name string
	run  func(s *Sampler) []float64
} {
	t.Helper()
	normal := func(id uint64, mu, sigma float64) *expr.Variable {
		return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Normal{}, mu, sigma)}
	}
	expo := func(id uint64, rate float64) *expr.Variable {
		return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Exponential{}, rate)}
	}
	return []struct {
		name string
		run  func(s *Sampler) []float64
	}{
		{"truncated-normal-cdf", func(s *Sampler) []float64 {
			y := normal(1, 5, 3)
			c := cond.Clause{
				cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(-3)),
				cond.NewAtom(expr.NewVar(y), cond.LT, expr.Const(2)),
			}
			r := s.Expectation(expr.NewVar(y), c, true)
			return []float64{r.Mean, r.Prob, r.StdErr, float64(r.N)}
		}},
		{"two-var-rejection", func(s *Sampler) []float64 {
			d := expo(2, 1.0/40)
			sv := expo(3, 1.0/760)
			e := expr.Sub(expr.NewVar(d), expr.NewVar(sv))
			c := cond.Clause{cond.NewAtom(expr.NewVar(d), cond.GT, expr.NewVar(sv))}
			r := s.Expectation(e, c, true)
			return []float64{r.Mean, r.Prob, r.StdErr, float64(r.N)}
		}},
		{"independent-groups", func(s *Sampler) []float64 {
			x := normal(4, 0, 1)
			y := normal(5, 10, 2)
			z := expo(6, 0.25)
			e := expr.Add(expr.NewVar(x), expr.NewVar(y))
			c := cond.Clause{
				cond.NewAtom(expr.NewVar(x), cond.GT, expr.Const(0)),
				cond.NewAtom(expr.NewVar(z), cond.LT, expr.Const(3)),
			}
			r := s.Expectation(e, c, true)
			return []float64{r.Mean, r.Prob, float64(r.N)}
		}},
		{"metropolis-tail", func(s *Sampler) []float64 {
			// Deep-tail two-variable constraint: rejection is hopeless, the
			// group pre-escalates, and the engine must fall back to in-order
			// batches so the chain state is identical for every worker count.
			a := normal(7, 0, 1)
			b := normal(8, 0, 1)
			e := expr.Add(expr.NewVar(a), expr.NewVar(b))
			c := cond.Clause{cond.NewAtom(e, cond.GT, expr.Const(6))}
			r := s.Expectation(e, c, true)
			return []float64{r.Mean, r.Prob, float64(r.N)}
		}},
		{"dnf-world-sample", func(s *Sampler) []float64 {
			x := normal(9, 0, 1)
			y := normal(10, 1, 1)
			d := cond.Condition{Clauses: []cond.Clause{
				{cond.NewAtom(expr.NewVar(x), cond.GT, expr.Const(0.5))},
				{cond.NewAtom(expr.NewVar(y), cond.LT, expr.Const(0))},
			}}
			r := s.ExpectationDNF(expr.Add(expr.NewVar(x), expr.NewVar(y)), d, true)
			return []float64{r.Mean, r.Prob, r.StdErr, float64(r.N)}
		}},
		{"aconf-inclusion-exclusion", func(s *Sampler) []float64 {
			x := expo(11, 0.5)
			y := expo(12, 0.5)
			d := cond.Condition{Clauses: []cond.Clause{
				{cond.NewAtom(expr.NewVar(x), cond.GT, expr.NewVar(y))},
				{cond.NewAtom(expr.NewVar(x), cond.LT, expr.Const(1))},
			}}
			r := s.AConf(d)
			return []float64{r.Prob, float64(r.N)}
		}},
		{"expectation-histogram", func(s *Sampler) []float64 {
			y := normal(13, 2, 1)
			c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(1))}
			vals, err := s.ExpectationHistogram(expr.NewVar(y), c, 500)
			if err != nil {
				t.Fatal(err)
			}
			return vals
		}},
		{"variance-moment", func(s *Sampler) []float64 {
			y := normal(14, 3, 2)
			c := cond.Clause{cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(2))}
			v := s.Variance(expr.NewVar(y), c)
			m := s.Moment(expr.NewVar(y), c, 2)
			return []float64{v.Variance, v.Mean, m.Moment, float64(m.N)}
		}},
	}
}

// TestWorkersBitIdentity is the determinism contract: equal seed + any
// worker count => bit-identical results, across the whole strategy corpus.
func TestWorkersBitIdentity(t *testing.T) {
	for _, sc := range expectationCorpus(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := sc.run(workerSampler(1))
			for _, workers := range []int{2, 3, 8} {
				got := sc.run(workerSampler(workers))
				if len(got) != len(base) {
					t.Fatalf("workers=%d: %d values, want %d", workers, len(got), len(base))
				}
				for i := range base {
					if !eq(got[i], base[i]) {
						t.Fatalf("workers=%d: value %d = %v, want %v (bit-identical)",
							workers, i, got[i], base[i])
					}
				}
			}
		})
	}
}

// TestWorkersBitIdentityFixedBudget repeats the contract under the paper's
// fixed-sample configuration (no adaptive stopping).
func TestWorkersBitIdentityFixedBudget(t *testing.T) {
	mk := func(workers int) *Sampler {
		cfg := DefaultConfig()
		cfg.WorldSeed = 999
		cfg.FixedSamples = 700
		cfg.Workers = workers
		return New(cfg)
	}
	y := &expr.Variable{Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 5, 3)}
	z := &expr.Variable{Key: expr.VarKey{ID: 2}, Dist: dist.MustInstance(dist.Exponential{}, 0.1)}
	e := expr.Mul(expr.NewVar(y), expr.NewVar(z))
	c := cond.Clause{
		cond.NewAtom(expr.NewVar(y), cond.GT, expr.Const(4)),
		cond.NewAtom(expr.NewVar(z), cond.GT, expr.NewVar(y)),
	}
	base := mk(1).Expectation(e, c, true)
	if base.N != 700 {
		t.Fatalf("fixed budget drew %d samples, want 700", base.N)
	}
	for _, workers := range []int{2, 8} {
		got := mk(workers).Expectation(e, c, true)
		if !eq(got.Mean, base.Mean) || !eq(got.Prob, base.Prob) ||
			!eq(got.StdErr, base.StdErr) || got.N != base.N {
			t.Fatalf("workers=%d: %+v != %+v", workers, got, base)
		}
	}
}

// TestWorldSampleDNFFixedBudget pins the FixedSamples contract on the DNF
// world sampler: exactly the requested number of accepted samples is used
// (truncated in attempt order), bit-identically at every worker count.
func TestWorldSampleDNFFixedBudget(t *testing.T) {
	mk := func(workers int) *Sampler {
		cfg := DefaultConfig()
		cfg.WorldSeed = 31
		cfg.FixedSamples = 1000
		cfg.Workers = workers
		return New(cfg)
	}
	x := &expr.Variable{Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
	y := &expr.Variable{Key: expr.VarKey{ID: 2}, Dist: dist.MustInstance(dist.Normal{}, 1, 1)}
	// Near-100% acceptance: overshoot would be visible immediately.
	d := cond.Condition{Clauses: []cond.Clause{
		{cond.NewAtom(expr.NewVar(x), cond.GT, expr.Const(-50))},
		{cond.NewAtom(expr.NewVar(y), cond.LT, expr.Const(50))},
	}}
	base := mk(1).ExpectationDNF(expr.Add(expr.NewVar(x), expr.NewVar(y)), d, true)
	if base.N != 1000 {
		t.Fatalf("fixed budget used %d samples, want exactly 1000", base.N)
	}
	for _, workers := range []int{2, 8} {
		got := mk(workers).ExpectationDNF(expr.Add(expr.NewVar(x), expr.NewVar(y)), d, true)
		if got.N != base.N || !eq(got.Mean, base.Mean) || !eq(got.Prob, base.Prob) {
			t.Fatalf("workers=%d: %+v != %+v", workers, got, base)
		}
	}
}

// aggregateTable builds a c-table whose rows mix deterministic values,
// symbolic targets and probabilistic conditions.
func aggregateTable(t *testing.T) *ctable.Table {
	t.Helper()
	tb := ctable.New("agg", "val")
	for i := 0; i < 40; i++ {
		mu := float64(i%7) + 1
		v := &expr.Variable{Key: expr.VarKey{ID: uint64(100 + i)}, Dist: dist.MustInstance(dist.Normal{}, mu, 1)}
		g := &expr.Variable{Key: expr.VarKey{ID: uint64(200 + i)}, Dist: dist.MustInstance(dist.Exponential{}, 0.5)}
		tup := ctable.NewTuple(ctable.Symbolic(expr.NewVar(v)))
		tup.Cond = cond.FromClause(cond.Clause{
			cond.NewAtom(expr.NewVar(g), cond.GT, expr.Const(float64(i%3))),
		})
		tb.MustAppend(tup)
	}
	return tb
}

// TestAggregateWorkersBitIdentity checks the contract on the row-parallel
// aggregate operators and the world-parallel histogram path.
func TestAggregateWorkersBitIdentity(t *testing.T) {
	tb := aggregateTable(t)
	type aggOut struct {
		sum, cnt, avg, max float64
		hist               []float64
	}
	run := func(workers int) aggOut {
		s := workerSampler(workers)
		sum, err := s.ExpectedSum(tb, 0)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := s.ExpectedCount(tb)
		if err != nil {
			t.Fatal(err)
		}
		avg, err := s.ExpectedAvg(tb, 0)
		if err != nil {
			t.Fatal(err)
		}
		max, err := s.ExpectedMaxNaive(tb, 0)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := s.AggregateHistogram(tb, 0, SumFold, 300)
		if err != nil {
			t.Fatal(err)
		}
		return aggOut{sum.Value, cnt.Value, avg.Value, max.Value, hist}
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !eq(got.sum, base.sum) || !eq(got.cnt, base.cnt) ||
			!eq(got.avg, base.avg) || !eq(got.max, base.max) {
			t.Fatalf("workers=%d: %+v != %+v", workers, got, base)
		}
		for i := range base.hist {
			if !eq(got.hist[i], base.hist[i]) {
				t.Fatalf("workers=%d: hist[%d] = %v, want %v", workers, i, got.hist[i], base.hist[i])
			}
		}
	}
}

// TestUnsatisfiableParallel checks that rejection-cap failure (NaN result)
// is reported identically at every worker count.
func TestUnsatisfiableParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 5
	cfg.RejectionCap = 500
	cfg.DisableMetropolis = true
	// Force natural generation + rejection (no CDF boxing): a 1e-9-mass
	// tail is then unreachable within a 500-attempt cap.
	cfg.DisableCDFInversion = true
	u := &expr.Variable{Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Uniform{}, 0, 1)}
	c := cond.Clause{cond.NewAtom(expr.NewVar(u), cond.GT, expr.Const(1 - 1e-9))}
	for _, workers := range []int{1, 8} {
		cfg.Workers = workers
		r := New(cfg).Expectation(expr.NewVar(u), c, true)
		if !math.IsNaN(r.Mean) || r.Prob != 0 {
			t.Fatalf("workers=%d: unreachable region gave %+v, want NaN/0", workers, r)
		}
	}
}

// TestEffectiveWorkers pins the Workers resolution rule.
func TestEffectiveWorkers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Workers != 0 {
		t.Fatalf("default Workers = %d, want 0 (auto)", cfg.Workers)
	}
	if got := cfg.effectiveWorkers(); got < 1 {
		t.Fatalf("auto workers resolved to %d", got)
	}
	cfg.Workers = 5
	if got := cfg.effectiveWorkers(); got != 5 {
		t.Fatalf("explicit workers resolved to %d, want 5", got)
	}
}
