package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/prng"
)

// TestExactVsSampledConfAgree cross-validates the two integration paths:
// for random single-variable interval clauses, the exact CDF result and the
// pure-sampling result (exact path disabled) must agree within sampling
// tolerance.
func TestExactVsSampledConfAgree(t *testing.T) {
	exactCfg := DefaultConfig()
	exactCfg.WorldSeed = 1
	exact := New(exactCfg)

	sampledCfg := DefaultConfig()
	sampledCfg.WorldSeed = 2
	sampledCfg.DisableExactCDF = true
	sampledCfg.FixedSamples = 8000
	sampled := New(sampledCfg)

	id := uint64(1000)
	f := func(mu, sigmaRaw, aRaw, widthRaw float64) bool {
		if anyBadFloat(mu, sigmaRaw, aRaw, widthRaw) {
			return true
		}
		sigma := math.Abs(sigmaRaw)
		if sigma < 0.1 || sigma > 100 || math.Abs(mu) > 100 {
			return true
		}
		// Interval [a, a+width] positioned near the distribution mass.
		a := mu + math.Mod(aRaw, 3)*sigma
		width := (0.2 + math.Abs(math.Mod(widthRaw, 3))) * sigma
		id++
		y := &expr.Variable{
			Key:  expr.VarKey{ID: id},
			Dist: dist.MustInstance(dist.Normal{}, mu, sigma),
		}
		c := cond.Clause{
			cond.NewAtom(expr.NewVar(y), cond.GE, expr.Const(a)),
			cond.NewAtom(expr.NewVar(y), cond.LE, expr.Const(a+width)),
		}
		pe := exact.Conf(c)
		ps := sampled.Conf(c)
		if !pe.Exact {
			return false
		}
		// Sampled result is CDF-restricted, so its only error is the
		// massFraction-scaled acceptance noise.
		tol := 4*math.Sqrt(pe.Prob*(1-pe.Prob)/8000) + 1e-3
		return math.Abs(pe.Prob-ps.Prob) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundsNeverExcludeSatisfyingPoint: Algorithm 3.2's bounds maps are
// sound — a point known to satisfy the clause always lies within every
// propagated interval.
func TestBoundsNeverExcludeSatisfyingPoint(t *testing.T) {
	id := uint64(5000)
	f := func(vx, vy, m1, m2, m3 float64) bool {
		if anyBadFloat(vx, vy, m1, m2, m3) {
			return true
		}
		if math.Abs(vx) > 1e4 || math.Abs(vy) > 1e4 {
			return true
		}
		id += 2
		x := &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
		y := &expr.Variable{Key: expr.VarKey{ID: id + 1}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
		// Atoms constructed to be satisfied by (vx, vy).
		c := cond.Clause{
			cond.NewAtom(expr.NewVar(x), cond.LE, expr.Const(vx+math.Abs(m1))),
			cond.NewAtom(expr.NewVar(x), cond.GE, expr.Const(vx-1)),
			cond.NewAtom(
				expr.Add(expr.NewVar(x), expr.Mul(expr.Const(2), expr.NewVar(y))),
				cond.LE, expr.Const(vx+2*vy+math.Abs(m2))),
			cond.NewAtom(expr.NewVar(y), cond.GE, expr.Const(vy-math.Abs(m3))),
		}
		res := cond.CheckConsistency(c)
		if res.Verdict == cond.Inconsistent {
			return false
		}
		return res.Bounds.Get(x.Key).Contains(vx) && res.Bounds.Get(y.Key).Contains(vy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConfMatchesHoldsFrequency: for random two-variable clauses (beyond
// the exact path), the sampled probability matches the brute-force
// frequency with which independent world draws satisfy the clause.
func TestConfMatchesHoldsFrequency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 9
	cfg.FixedSamples = 6000
	s := New(cfg)

	id := uint64(9000)
	f := func(shift float64) bool {
		if anyBadFloat(shift) {
			return true
		}
		d := math.Mod(shift, 2)
		id += 2
		x := &expr.Variable{Key: expr.VarKey{ID: id}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
		y := &expr.Variable{Key: expr.VarKey{ID: id + 1}, Dist: dist.MustInstance(dist.Normal{}, d, 1)}
		c := cond.Clause{cond.NewAtom(expr.NewVar(x), cond.GT, expr.NewVar(y))}
		got := s.Conf(c).Prob
		// Analytic: P[X > Y] = Phi(-d / sqrt(2)).
		want := 0.5 * math.Erfc(d/2)
		return math.Abs(got-want) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMetropolisViable sanity-checks the viability predicate used by the
// escalation logic.
func TestMetropolisViable(t *testing.T) {
	x := &expr.Variable{Key: expr.VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
	c := cond.Clause{cond.NewAtom(expr.NewVar(x), cond.GT, expr.Const(0))}
	groups := cond.Partition(c, nil)
	if !metropolisViable(groups) {
		t.Fatal("normal variable should support Metropolis")
	}
	// A class without a PDF (only Generate) is not viable.
	noPDF := &expr.Variable{Key: expr.VarKey{ID: 2}, Dist: dist.Instance{Class: generateOnly{}, Params: nil}}
	c2 := cond.Clause{cond.NewAtom(expr.NewVar(noPDF), cond.GT, expr.Const(0))}
	if metropolisViable(cond.Partition(c2, nil)) {
		t.Fatal("PDF-less class reported viable")
	}
}

// generateOnly is a minimal distribution class exposing only Generate,
// exercising the degraded paths for black-box VG-function-style classes.
type generateOnly struct{}

func (generateOnly) Name() string                { return "GenerateOnly" }
func (generateOnly) CheckParams([]float64) error { return nil }
func (generateOnly) Generate(_ []float64, r *prng.Rand) float64 {
	return r.Float64()
}

func anyBadFloat(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
