package sampler

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
)

var nextTestVar uint64 = 1

func mkVar(t *testing.T, class dist.Class, params ...float64) *expr.Variable {
	t.Helper()
	inst, err := dist.NewInstance(class, params...)
	if err != nil {
		t.Fatal(err)
	}
	nextTestVar++
	return &expr.Variable{Key: expr.VarKey{ID: nextTestVar}, Dist: inst}
}

func testSampler() *Sampler {
	cfg := DefaultConfig()
	cfg.WorldSeed = 12345
	return New(cfg)
}

func atom(l expr.Expr, op cond.CmpOp, r expr.Expr) cond.Atom { return cond.NewAtom(l, op, r) }

// stdNormalPDF/CDF for analytic references.
func phi(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func Phi(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

func TestExpectationUnconstrainedExact(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 7, 2)
	r := s.Expectation(expr.NewVar(y), cond.TrueClause(), true)
	if !r.Exact {
		t.Fatal("unconstrained normal mean should be exact")
	}
	if r.Mean != 7 || r.Prob != 1 {
		t.Fatalf("mean %v prob %v", r.Mean, r.Prob)
	}
	// Linear combination is exact too.
	x := mkVar(t, dist.Exponential{}, 0.5)
	e := expr.Add(expr.Mul(expr.Const(3), expr.NewVar(y)), expr.NewVar(x))
	r = s.Expectation(e, cond.TrueClause(), false)
	if !r.Exact || math.Abs(r.Mean-23) > 1e-12 {
		t.Fatalf("3*Y+X: mean %v exact %v", r.Mean, r.Exact)
	}
}

func TestExpectationDeterministicExpression(t *testing.T) {
	s := testSampler()
	r := s.Expectation(expr.Const(42), cond.TrueClause(), true)
	if !r.Exact || r.Mean != 42 || r.Prob != 1 {
		t.Fatalf("%+v", r)
	}
}

func TestTruncatedNormalExpectation(t *testing.T) {
	// Example 4.1 shape: E[Y | a < Y < b] for Y ~ N(mu, sigma).
	// Analytic: mu + sigma * (phi(alpha) - phi(beta)) / (Phi(beta) - Phi(alpha)).
	s := testSampler()
	mu, sigma := 5.0, math.Sqrt(10)
	a, b := -3.0, 2.0
	y := mkVar(t, dist.Normal{}, mu, sigma)
	c := cond.Clause{
		atom(expr.NewVar(y), cond.GT, expr.Const(a)),
		atom(expr.NewVar(y), cond.LT, expr.Const(b)),
	}
	alpha, beta := (a-mu)/sigma, (b-mu)/sigma
	want := mu + sigma*(phi(alpha)-phi(beta))/(Phi(beta)-Phi(alpha))
	wantP := Phi(beta) - Phi(alpha)

	r := s.Expectation(expr.NewVar(y), c, true)
	if math.Abs(r.Mean-want) > 0.15 {
		t.Fatalf("truncated mean %v, want %v (n=%d)", r.Mean, want, r.N)
	}
	if math.Abs(r.Prob-wantP) > 0.02*wantP+0.01 {
		t.Fatalf("prob %v, want %v", r.Prob, wantP)
	}
}

func TestExpectationUnsatisfiableIsNaN(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{
		atom(expr.NewVar(y), cond.GT, expr.Const(5)),
		atom(expr.NewVar(y), cond.LT, expr.Const(3)),
	}
	r := s.Expectation(expr.NewVar(y), c, true)
	if !math.IsNaN(r.Mean) || r.Prob != 0 {
		t.Fatalf("unsatisfiable: mean %v prob %v", r.Mean, r.Prob)
	}
}

func TestIndependenceSeparatesGroups(t *testing.T) {
	// E[X | Y > 2] with X independent of Y must equal E[X]; the Y group
	// contributes only probability.
	s := testSampler()
	x := mkVar(t, dist.Normal{}, 10, 1)
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(2))}
	r := s.Expectation(expr.NewVar(x), c, true)
	// The default config targets 5% relative error: +-0.5 at mean 10.
	if math.Abs(r.Mean-10) > 0.5 {
		t.Fatalf("mean %v, want 10 +- 0.5", r.Mean)
	}
	wantP := 1 - Phi(2)
	if math.Abs(r.Prob-wantP) > 0.005 {
		t.Fatalf("prob %v, want %v", r.Prob, wantP)
	}
}

func TestProbFactorsAcrossGroups(t *testing.T) {
	// P[X > 1 AND Y < 0] = P[X>1] * P[Y<0] for independent X, Y — and both
	// factors are single-variable intervals, so the result is exact.
	s := testSampler()
	x := mkVar(t, dist.Normal{}, 0, 1)
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{
		atom(expr.NewVar(x), cond.GT, expr.Const(1)),
		atom(expr.NewVar(y), cond.LT, expr.Const(0)),
	}
	r := s.Conf(c)
	want := (1 - Phi(1)) * 0.5
	if !r.Exact {
		t.Fatal("two independent intervals should integrate exactly")
	}
	if math.Abs(r.Prob-want) > 1e-9 {
		t.Fatalf("prob %v, want %v", r.Prob, want)
	}
}

func TestConfExactNormalInterval(t *testing.T) {
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 5, 2)
	c := cond.Clause{
		atom(expr.NewVar(y), cond.GE, expr.Const(3)),
		atom(expr.NewVar(y), cond.LE, expr.Const(9)),
	}
	r := s.Conf(c)
	want := Phi((9.0-5)/2) - Phi((3.0-5)/2)
	if !r.Exact || math.Abs(r.Prob-want) > 1e-9 {
		t.Fatalf("prob %v (exact=%v), want %v", r.Prob, r.Exact, want)
	}
}

func TestConfExactLinearAtom(t *testing.T) {
	// 2*Y + 3 > 7 <=> Y > 2.
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{
		atom(expr.Add(expr.Mul(expr.Const(2), expr.NewVar(y)), expr.Const(3)), cond.GT, expr.Const(7)),
	}
	r := s.Conf(c)
	want := 1 - Phi(2)
	if !r.Exact || math.Abs(r.Prob-want) > 1e-9 {
		t.Fatalf("prob %v (exact=%v), want %v", r.Prob, r.Exact, want)
	}
	// Negative coefficient flips: -Y < -2 <=> Y > 2.
	c2 := cond.Clause{
		atom(expr.Negate(expr.NewVar(y)), cond.LT, expr.Const(-2)),
	}
	r2 := s.Conf(c2)
	if !r2.Exact || math.Abs(r2.Prob-want) > 1e-9 {
		t.Fatalf("flipped prob %v, want %v", r2.Prob, want)
	}
}

func TestConfExactPoissonStrictness(t *testing.T) {
	// For integer-valued X ~ Poisson(4): P[X > 2] != P[X >= 2].
	s := testSampler()
	x := mkVar(t, dist.Poisson{}, 4)
	inst := x.Dist

	gt := s.Conf(cond.Clause{atom(expr.NewVar(x), cond.GT, expr.Const(2))})
	ge := s.Conf(cond.Clause{atom(expr.NewVar(x), cond.GE, expr.Const(2))})
	cdf1, _ := inst.CDF(1)
	cdf2, _ := inst.CDF(2)
	if !gt.Exact || !ge.Exact {
		t.Fatal("Poisson intervals should be exact")
	}
	if math.Abs(gt.Prob-(1-cdf2)) > 1e-9 {
		t.Fatalf("P[X>2] = %v, want %v", gt.Prob, 1-cdf2)
	}
	if math.Abs(ge.Prob-(1-cdf1)) > 1e-9 {
		t.Fatalf("P[X>=2] = %v, want %v", ge.Prob, 1-cdf1)
	}
	if gt.Prob == ge.Prob {
		t.Fatal("strictness ignored for discrete variable")
	}
}

func TestConfDiscreteEquality(t *testing.T) {
	s := testSampler()
	x := mkVar(t, dist.Bernoulli{}, 0.3)
	r := s.Conf(cond.Clause{atom(expr.NewVar(x), cond.EQ, expr.Const(1))})
	if !r.Exact || math.Abs(r.Prob-0.3) > 1e-12 {
		t.Fatalf("P[B=1] = %v exact=%v", r.Prob, r.Exact)
	}
	// Continuous equality carries zero mass.
	y := mkVar(t, dist.Normal{}, 0, 1)
	r2 := s.Conf(cond.Clause{atom(expr.NewVar(y), cond.EQ, expr.Const(0))})
	if r2.Prob != 0 {
		t.Fatalf("P[Y=0] = %v, want 0", r2.Prob)
	}
}

func TestConfTwoVariableRejection(t *testing.T) {
	// P[X > Y] for iid N(0,1) is exactly 0.5; requires joint sampling.
	s := testSampler()
	x := mkVar(t, dist.Normal{}, 0, 1)
	y := mkVar(t, dist.Normal{}, 0, 1)
	r := s.Conf(cond.Clause{atom(expr.NewVar(x), cond.GT, expr.NewVar(y))})
	if r.Exact {
		t.Fatal("two-variable comparison cannot be exact")
	}
	if math.Abs(r.Prob-0.5) > 0.03 {
		t.Fatalf("P[X>Y] = %v", r.Prob)
	}
}

func TestConfTrueAndInconsistent(t *testing.T) {
	s := testSampler()
	if r := s.Conf(cond.TrueClause()); r.Prob != 1 || !r.Exact {
		t.Fatalf("TRUE: %+v", r)
	}
	y := mkVar(t, dist.Exponential{}, 1)
	r := s.Conf(cond.Clause{atom(expr.NewVar(y), cond.LT, expr.Const(-1))})
	if r.Prob != 0 || !r.Exact {
		t.Fatalf("exp < -1: %+v", r)
	}
}

func TestAConfInclusionExclusion(t *testing.T) {
	// P[X>1 OR Y>1] = p + p - p^2 for independent standard normals.
	s := testSampler()
	x := mkVar(t, dist.Normal{}, 0, 1)
	y := mkVar(t, dist.Normal{}, 0, 1)
	d := cond.FromClause(cond.Clause{atom(expr.NewVar(x), cond.GT, expr.Const(1))}).
		Or(cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(1))}))
	r := s.AConf(d)
	p := 1 - Phi(1)
	want := 2*p - p*p
	if !r.Exact {
		t.Fatal("interval union should be exact by inclusion-exclusion")
	}
	if math.Abs(r.Prob-want) > 1e-9 {
		t.Fatalf("prob %v, want %v", r.Prob, want)
	}
}

func TestAConfOverlappingClauses(t *testing.T) {
	// P[Y>0 OR Y>1] = P[Y>0] = 0.5 — overlapping clauses on one variable.
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	d := cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(0))}).
		Or(cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(1))}))
	r := s.AConf(d)
	if math.Abs(r.Prob-0.5) > 1e-9 {
		t.Fatalf("prob %v, want 0.5", r.Prob)
	}
}

func TestCDFInversionSelectiveQuery(t *testing.T) {
	// A highly selective single-variable constraint: P ~ 0.0013.
	// With CDF inversion the sampler never rejects, so a small fixed
	// budget still lands accurate conditional expectations.
	cfg := DefaultConfig()
	cfg.WorldSeed = 99
	cfg.FixedSamples = 200
	s := New(cfg)
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(3))}
	r := s.Expectation(expr.NewVar(y), c, true)
	want := phi(3) / (1 - Phi(3)) // E[Y | Y>3] for standard normal
	if math.Abs(r.Mean-want) > 0.08 {
		t.Fatalf("tail mean %v, want %v", r.Mean, want)
	}
	if r.N != 200 {
		t.Fatalf("accepted %d samples, want 200 (CDF inversion should never reject)", r.N)
	}
	wantP := 1 - Phi(3)
	if math.Abs(r.Prob-wantP) > wantP*0.1 {
		t.Fatalf("prob %v, want %v", r.Prob, wantP)
	}
}

func TestCDFInversionAblation(t *testing.T) {
	// With CDF inversion disabled, the same query must burn many attempts.
	cfg := DefaultConfig()
	cfg.WorldSeed = 99
	cfg.FixedSamples = 50
	cfg.DisableCDFInversion = true
	cfg.DisableMetropolis = true
	s := New(cfg)
	y := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(2.5))}

	// Build the group by hand to inspect counters.
	groups := cond.Partition(c, nil)
	gs := newGroupSampler(groups[0], &s.cfg)
	asn := expr.Assignment{}
	for i := 0; i < 50; i++ {
		if !gs.drawInto(asn, uint64(i)) {
			t.Fatal("rejection sampling failed to find a sample")
		}
	}
	// P[Y > 2.5] ~ 0.0062: expect on the order of 100+ attempts/sample.
	if gs.attempts < 50*20 {
		t.Fatalf("rejection sampling suspiciously cheap: %d attempts", gs.attempts)
	}

	cfg2 := cfg
	cfg2.DisableCDFInversion = false
	gs2 := newGroupSampler(groups[0], &cfg2)
	for i := 0; i < 50; i++ {
		if !gs2.drawInto(asn, uint64(i)) {
			t.Fatal("CDF sampling failed")
		}
	}
	if gs2.attempts != gs2.accepts {
		t.Fatalf("CDF inversion rejected: %d attempts for %d accepts", gs2.attempts, gs2.accepts)
	}
}

func TestMetropolisDeepTail(t *testing.T) {
	// Y1 + Y2 > 6 for iid N(0,1): acceptance ~ 1e-5, far beyond rejection's
	// reach; the sampler must escalate to Metropolis and still produce a
	// sensible conditional mean (E[Y1 | Y1+Y2>6] ~ 3 by symmetry).
	cfg := DefaultConfig()
	cfg.WorldSeed = 7
	cfg.FixedSamples = 400
	cfg.RejectionCap = 20000
	s := New(cfg)
	y1 := mkVar(t, dist.Normal{}, 0, 1)
	y2 := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{
		atom(expr.Add(expr.NewVar(y1), expr.NewVar(y2)), cond.GT, expr.Const(6)),
	}
	r := s.Expectation(expr.NewVar(y1), c, false)
	if !r.UsedMetropolis {
		t.Fatal("deep-tail constraint did not escalate to Metropolis")
	}
	if math.Abs(r.Mean-3) > 0.5 {
		t.Fatalf("E[Y1 | Y1+Y2>6] = %v, want ~3", r.Mean)
	}
	// The sum itself must respect the constraint.
	rs := s.Expectation(expr.Add(expr.NewVar(y1), expr.NewVar(y2)), c, false)
	if rs.Mean < 6 {
		t.Fatalf("E[Y1+Y2 | Y1+Y2>6] = %v < 6", rs.Mean)
	}
}

func TestMetropolisDisabledFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 7
	cfg.FixedSamples = 5
	cfg.DisableMetropolis = true
	cfg.RejectionCap = 2000 // too small for the tail
	s := New(cfg)
	y1 := mkVar(t, dist.Normal{}, 0, 1)
	y2 := mkVar(t, dist.Normal{}, 0, 1)
	c := cond.Clause{
		atom(expr.Add(expr.NewVar(y1), expr.NewVar(y2)), cond.GT, expr.Const(8)),
	}
	r := s.Expectation(expr.NewVar(y1), c, false)
	if !math.IsNaN(r.Mean) {
		t.Fatalf("expected NaN when sampling is hopeless, got %v", r.Mean)
	}
}

func TestAdaptiveStoppingRespectsBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 3
	cfg.MinSamples = 25
	cfg.MaxSamples = 5000
	s := New(cfg)
	y := mkVar(t, dist.Uniform{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(0.5))}
	r := s.Expectation(expr.NewVar(y), c, false)
	if r.N < cfg.MinSamples || r.N > cfg.MaxSamples {
		t.Fatalf("sample count %d outside [%d, %d]", r.N, cfg.MinSamples, cfg.MaxSamples)
	}
	if math.Abs(r.Mean-0.75) > 0.05 {
		t.Fatalf("E[U | U>0.5] = %v", r.Mean)
	}
}

func TestFixedSamplesExactCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FixedSamples = 123
	s := New(cfg)
	y := mkVar(t, dist.Normal{}, 0, 1)
	r := s.Expectation(expr.Mul(expr.NewVar(y), expr.NewVar(y)), cond.TrueClause(), false)
	if r.N != 123 {
		t.Fatalf("N = %d, want 123", r.N)
	}
	// E[Y^2] = 1.
	if math.Abs(r.Mean-1) > 0.35 {
		t.Fatalf("E[Y^2] = %v", r.Mean)
	}
}

func TestIndependenceAblationStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorldSeed = 5
	cfg.DisableIndependence = true
	s := New(cfg)
	x := mkVar(t, dist.Normal{}, 10, 1)
	y := mkVar(t, dist.Uniform{}, 0, 1)
	c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(0.5))}
	r := s.Expectation(expr.NewVar(x), c, true)
	// 5% relative-error target: +-0.5 at mean 10.
	if math.Abs(r.Mean-10) > 0.5 {
		t.Fatalf("merged-group mean %v", r.Mean)
	}
	if math.Abs(r.Prob-0.5) > 0.05 {
		t.Fatalf("merged-group prob %v", r.Prob)
	}
}

func TestExpectationDNFMultiClause(t *testing.T) {
	// E[Y | Y < -1 OR Y > 1] = 0 by symmetry; P = 2*(1-Phi(1)).
	s := testSampler()
	y := mkVar(t, dist.Normal{}, 0, 1)
	d := cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.LT, expr.Const(-1))}).
		Or(cond.FromClause(cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(1))}))
	r := s.ExpectationDNF(expr.NewVar(y), d, true)
	if math.Abs(r.Mean) > 0.2 {
		t.Fatalf("symmetric DNF mean %v", r.Mean)
	}
	want := 2 * (1 - Phi(1))
	if math.Abs(r.Prob-want) > 0.05 {
		t.Fatalf("DNF prob %v, want %v", r.Prob, want)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() Result {
		cfg := DefaultConfig()
		cfg.WorldSeed = 777
		s := New(cfg)
		y := &expr.Variable{Key: expr.VarKey{ID: 4242}, Dist: dist.MustInstance(dist.Normal{}, 0, 1)}
		c := cond.Clause{atom(expr.NewVar(y), cond.GT, expr.Const(1))}
		return s.Expectation(expr.NewVar(y), c, true)
	}
	a, b := mk(), mk()
	if a.Mean != b.Mean || a.Prob != b.Prob || a.N != b.N {
		t.Fatalf("non-deterministic results: %+v vs %+v", a, b)
	}
}
