package sampler

import (
	"fmt"
	"math"
	"sort"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/expr"
)

// AggregateResult reports a per-table aggregate.
type AggregateResult struct {
	Value float64
	// N is the total number of samples spent across all rows.
	N int
	// Exact reports whether every per-row computation was closed-form.
	Exact bool
	// RowsScanned counts rows actually processed (the early-terminating
	// expected_max may stop before the end of the table).
	RowsScanned int
}

// ExpectedSum computes E[sum(col)] over a c-table under per-table sampling
// semantics (paper §IV-C): by linearity of expectation the result is the
// sum over rows of P[phi_r] * E[h_r | phi_r], which holds under arbitrary
// inter-row correlation.
//
// Following the paper's variance observation (the sum of N estimates with
// equal per-element standard deviation has standard deviation sigma/sqrt N),
// the per-row relative precision target is relaxed by sqrt(len(rows)) when
// adaptive sampling is active.
func (s *Sampler) ExpectedSum(tb *ctable.Table, col int) (AggregateResult, error) {
	if err := checkCol(tb, col); err != nil {
		return AggregateResult{}, err
	}
	rowSampler := s.forRowCount(tb.Len())
	total := 0.0
	samples := 0
	exact := true
	for i := range tb.Tuples {
		t := &tb.Tuples[i]
		contrib, r, err := rowSampler.rowContribution(t, col)
		if err != nil {
			return AggregateResult{}, err
		}
		total += contrib
		samples += r.N
		exact = exact && r.Exact
	}
	return AggregateResult{Value: total, N: samples, Exact: exact, RowsScanned: tb.Len()}, nil
}

// ExpectedCount computes E[count(*)] = sum of row confidences.
func (s *Sampler) ExpectedCount(tb *ctable.Table) (AggregateResult, error) {
	total := 0.0
	samples := 0
	exact := true
	for i := range tb.Tuples {
		r := s.AConf(tb.Tuples[i].Cond)
		total += r.Prob
		samples += r.N
		exact = exact && r.Exact
	}
	return AggregateResult{Value: total, N: samples, Exact: exact, RowsScanned: tb.Len()}, nil
}

// ExpectedAvg approximates E[avg(col)] by the ratio E[sum]/E[count]. The
// ratio-of-expectations is the standard first-order estimator for the
// expectation of a ratio; it is exact when the row count is deterministic.
func (s *Sampler) ExpectedAvg(tb *ctable.Table, col int) (AggregateResult, error) {
	sum, err := s.ExpectedSum(tb, col)
	if err != nil {
		return AggregateResult{}, err
	}
	cnt, err := s.ExpectedCount(tb)
	if err != nil {
		return AggregateResult{}, err
	}
	if cnt.Value == 0 {
		return AggregateResult{Value: math.NaN(), N: sum.N + cnt.N}, nil
	}
	return AggregateResult{
		Value:       sum.Value / cnt.Value,
		N:           sum.N + cnt.N,
		Exact:       sum.Exact && cnt.Exact,
		RowsScanned: tb.Len(),
	}, nil
}

// ExpectedMax computes E[max(col)] with the early-terminating algorithm of
// Example 4.4 when every target value is deterministic: rows are sorted by
// value descending, row i is the maximum exactly when it is present and
// rows 0..i-1 are absent (assuming independent row conditions — the
// algorithm verifies pairwise variable disjointness and falls back to
// per-world sampling otherwise), and scanning stops once the largest
// possible remaining change drops below precision. Worlds where no row is
// present contribute 0, matching the paper's example.
func (s *Sampler) ExpectedMax(tb *ctable.Table, col int, precision float64) (AggregateResult, error) {
	if err := checkCol(tb, col); err != nil {
		return AggregateResult{}, err
	}
	if tb.Len() == 0 {
		return AggregateResult{Value: 0, Exact: true}, nil
	}
	allDet := true
	for i := range tb.Tuples {
		if tb.Tuples[i].Values[col].IsSymbolic() {
			allDet = false
			break
		}
	}
	if !allDet || !rowsIndependent(tb) {
		return s.expectedMaxByWorlds(tb, col)
	}

	type row struct {
		v float64
		i int
	}
	rows := make([]row, 0, tb.Len())
	for i := range tb.Tuples {
		f, ok := tb.Tuples[i].Values[col].AsFloat()
		if !ok {
			return AggregateResult{}, fmt.Errorf("sampler: non-numeric max target %s", tb.Tuples[i].Values[col])
		}
		rows = append(rows, row{v: f, i: i})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].v > rows[b].v })

	total := 0.0
	pNone := 1.0 // probability that no earlier (larger) row is present
	samples := 0
	exact := true
	scanned := 0
	for _, rw := range rows {
		scanned++
		// Early termination: the most any remaining row can add is
		// bounded by |value| * P[none of the larger rows present].
		if precision > 0 && math.Abs(rw.v)*pNone < precision {
			break
		}
		cr := s.AConf(tb.Tuples[rw.i].Cond)
		samples += cr.N
		exact = exact && cr.Exact
		total += rw.v * cr.Prob * pNone
		pNone *= 1 - cr.Prob
		if pNone <= 0 {
			break
		}
	}
	return AggregateResult{Value: total, N: samples, Exact: exact, RowsScanned: scanned}, nil
}

// ExpectedMaxNaive is the worst-case per-world implementation the paper
// describes for aggregates without linearity (kept for ablation benches).
func (s *Sampler) ExpectedMaxNaive(tb *ctable.Table, col int) (AggregateResult, error) {
	if err := checkCol(tb, col); err != nil {
		return AggregateResult{}, err
	}
	return s.expectedMaxByWorlds(tb, col)
}

func (s *Sampler) expectedMaxByWorlds(tb *ctable.Table, col int) (AggregateResult, error) {
	samples, err := s.AggregateHistogram(tb, col, maxFold, s.histogramSize())
	if err != nil {
		return AggregateResult{}, err
	}
	total := 0.0
	for _, v := range samples {
		total += v
	}
	n := len(samples)
	if n == 0 {
		return AggregateResult{Value: math.NaN()}, nil
	}
	return AggregateResult{Value: total / float64(n), N: n, RowsScanned: tb.Len()}, nil
}

// rowsIndependent reports whether no two rows of the table share a random
// variable (in conditions or target cells) — the premise of the sorted
// expected-max algorithm.
func rowsIndependent(tb *ctable.Table) bool {
	seen := map[expr.VarKey]bool{}
	for i := range tb.Tuples {
		local := map[expr.VarKey]*expr.Variable{}
		tb.Tuples[i].Cond.CollectVars(local)
		for _, v := range tb.Tuples[i].Values {
			v.CollectVars(local)
		}
		for k := range local {
			if seen[k] {
				return false
			}
		}
		for k := range local {
			seen[k] = true
		}
	}
	return true
}

// histogramSize returns the world-sample count used by per-world fallbacks.
func (s *Sampler) histogramSize() int {
	if s.cfg.FixedSamples > 0 {
		return s.cfg.FixedSamples
	}
	n := s.cfg.MaxSamples
	if n <= 0 {
		n = 1000
	}
	if n > 10000 {
		n = 10000
	}
	return n
}

// FoldFunc combines per-row values into a per-world aggregate. present
// lists the evaluated target values of rows whose condition holds in the
// world.
type FoldFunc func(present []float64) float64

// SumFold is the per-world sum.
func SumFold(present []float64) float64 {
	t := 0.0
	for _, v := range present {
		t += v
	}
	return t
}

func maxFold(present []float64) float64 {
	if len(present) == 0 {
		return 0
	}
	m := present[0]
	for _, v := range present[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxFold is the per-world max (0 when no row is present).
func MaxFold(present []float64) float64 { return maxFold(present) }

// AvgFold is the per-world average (0 when no row is present).
func AvgFold(present []float64) float64 {
	if len(present) == 0 {
		return 0
	}
	return SumFold(present) / float64(len(present))
}

// StdDevFold is the per-world population standard deviation across present
// rows (0 for fewer than two rows) — the fold behind the expected_stddev
// aggregate (paper §IV-C lists stddev among the aggregate operators).
func StdDevFold(present []float64) float64 {
	return math.Sqrt(VarianceFold(present))
}

// VarianceFold is the per-world population variance across present rows.
func VarianceFold(present []float64) float64 {
	n := len(present)
	if n < 2 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range present {
		sum += v
		sumSq += v * v
	}
	fn := float64(n)
	mean := sum / fn
	variance := sumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance
}

// AggregateHistogram implements the expected_*_hist operators (§V-C): it
// draws n complete worlds over every variable of the table and returns the
// per-world aggregate values, suitable for histogram construction. Unlike
// the per-row expectation path this is an unconditioned world sample: row
// conditions act as presence indicators, and inter-row variable sharing is
// honored exactly.
func (s *Sampler) AggregateHistogram(tb *ctable.Table, col int, fold FoldFunc, n int) ([]float64, error) {
	if err := checkCol(tb, col); err != nil {
		return nil, err
	}
	vars := ctable.VarsOf(tb)
	keys := sortedKeys(vars)
	out := make([]float64, 0, n)
	asn := expr.Assignment{}
	var present []float64
	for i := 0; i < n; i++ {
		drawWorld(asn, keys, vars, s.cfg.WorldSeed, uint64(i))
		present = present[:0]
		for r := range tb.Tuples {
			t := &tb.Tuples[r]
			if !t.Cond.Holds(asn) {
				continue
			}
			v := t.Values[col].EvalWorld(asn)
			f, ok := v.AsFloat()
			if !ok {
				return nil, fmt.Errorf("sampler: non-numeric histogram target %s", v)
			}
			present = append(present, f)
		}
		out = append(out, fold(present))
	}
	return out, nil
}

// rowContribution computes P[cond] * E[value | cond] for one tuple.
func (s *Sampler) rowContribution(t *ctable.Tuple, col int) (float64, Result, error) {
	v := t.Values[col]
	if v.IsNull() {
		return 0, Result{Exact: true, Prob: 0}, nil
	}
	e, ok := v.AsExpr()
	if !ok {
		return 0, Result{}, fmt.Errorf("sampler: non-numeric aggregate target %s", v)
	}
	var r Result
	if len(t.Cond.Clauses) == 1 {
		r = s.Expectation(e, t.Cond.Clauses[0], true)
	} else {
		r = s.ExpectationDNF(e, t.Cond, true)
	}
	if r.Prob == 0 {
		return 0, r, nil
	}
	if math.IsNaN(r.Mean) {
		return 0, r, nil
	}
	return r.Mean * r.Prob, r, nil
}

// forRowCount relaxes the per-row precision target by sqrt(rows) for
// adaptive aggregation over many rows (paper §IV-C variance argument).
func (s *Sampler) forRowCount(rows int) *Sampler {
	if rows <= 1 || s.cfg.FixedSamples > 0 {
		return s
	}
	cfg := s.cfg
	cfg.Delta = cfg.Delta * math.Sqrt(float64(rows))
	if cfg.Delta > 0.5 {
		cfg.Delta = 0.5
	}
	return &Sampler{cfg: cfg}
}

func checkCol(tb *ctable.Table, col int) error {
	if col < 0 || col >= len(tb.Schema) {
		return fmt.Errorf("sampler: column %d out of range for %s", col, tb.Name)
	}
	return nil
}

// ExpectationHistogram draws n conditional samples of an expression given a
// clause (the per-row expected_*_hist variant): the returned values are
// samples of e restricted to worlds satisfying c.
func (s *Sampler) ExpectationHistogram(e expr.Expr, c cond.Clause, n int) ([]float64, error) {
	eKeys, eVars := expr.Vars(e)
	extras := make([]*expr.Variable, 0, len(eKeys))
	for _, k := range eKeys {
		extras = append(extras, eVars[k])
	}
	groups := s.partition(c, extras)
	samplers := make([]*groupSampler, 0, len(groups))
	for _, g := range groups {
		gs := newGroupSampler(g, &s.cfg)
		if gs.inconsistent {
			return nil, nil
		}
		samplers = append(samplers, gs)
	}
	out := make([]float64, 0, n)
	asn := expr.Assignment{}
	for i := 0; i < n; i++ {
		ok := true
		for _, gs := range samplers {
			if !gs.drawInto(asn, uint64(i)) {
				ok = false
				break
			}
		}
		if !ok {
			return out, nil
		}
		out = append(out, e.Eval(asn))
	}
	return out, nil
}
