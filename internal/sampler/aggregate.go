package sampler

import (
	"fmt"
	"math"
	"sort"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/expr"
)

// AggregateResult reports a per-table aggregate.
type AggregateResult struct {
	Value float64
	// N is the total number of samples spent across all rows.
	N int
	// Exact reports whether every per-row computation was closed-form.
	Exact bool
	// RowsScanned counts rows actually processed (the early-terminating
	// expected_max may stop before the end of the table).
	RowsScanned int
}

// rowAggBatch is one batch of rows of a row-parallel aggregate, merged in
// batch order so the floating-point sum over rows is identical for every
// worker count.
type rowAggBatch struct {
	total   float64
	samples int
	exact   bool
	err     error
}

// forEachRowBatch evaluates per(row) over every row of the table with rows
// sharded into batches across the worker pool, then merges batch partial
// sums in batch order. Each row's value is already independent of the
// worker count (the per-sample engine's determinism contract), so batching
// only has to fix the summation order. Single-row tables skip the pool: the
// parallelism then lives entirely in the per-sample engine.
func (s *Sampler) forEachRowBatch(rows int, per func(sub *Sampler, row int) (float64, int, bool, error)) (AggregateResult, error) {
	if rows <= 1 {
		res := AggregateResult{Exact: true, RowsScanned: rows}
		if rows == 1 {
			v, n, exact, err := per(s, 0)
			if err != nil {
				return AggregateResult{}, err
			}
			res.Value, res.N, res.Exact = v, n, exact
		}
		return res, nil
	}
	// Row batch boundaries are fixed (never derived from the worker count —
	// that would change the partial-sum grouping and break bit-identity).
	// When there are fewer batches than workers, the leftover parallelism
	// moves into the per-row sampler instead: per-row values are
	// worker-count-independent by contract, so this only changes where the
	// work runs. Otherwise per-row sampling pins to one worker to avoid
	// oversubscribing with nested pools.
	offs := splitRange(0, rows, rowBatchSize)
	workers := s.cfg.effectiveWorkers()
	innerWorkers := 1
	if len(offs) < workers {
		innerWorkers = (workers + len(offs) - 1) / len(offs)
	}
	inner := s.withWorkers(innerWorkers)
	results := make([]rowAggBatch, len(offs))
	forEachBatch(s.cfg.Ctx, workers, len(offs), func(b int) {
		end := offs[b] + rowBatchSize
		if end > rows {
			end = rows
		}
		r := &results[b]
		r.exact = true
		for i := offs[b]; i < end; i++ {
			v, n, exact, err := per(inner, i)
			if err != nil {
				r.err = err
				return
			}
			r.total += v
			r.samples += n
			r.exact = r.exact && exact
		}
	})
	// Row barrier: on cancellation the undispatched batches hold zero
	// partial sums — discard the whole aggregate rather than report them.
	if err := s.cfg.ctxErr(); err != nil {
		return AggregateResult{}, err
	}
	out := AggregateResult{Exact: true, RowsScanned: rows}
	for b := range results {
		if results[b].err != nil {
			return AggregateResult{}, results[b].err
		}
		out.Value += results[b].total
		out.N += results[b].samples
		out.Exact = out.Exact && results[b].exact
	}
	return out, nil
}

// ExpectedSum computes E[sum(col)] over a c-table under per-table sampling
// semantics (paper §IV-C): by linearity of expectation the result is the
// sum over rows of P[phi_r] * E[h_r | phi_r], which holds under arbitrary
// inter-row correlation. Rows are independent computations, so they shard
// across the worker pool with partial sums merged in row order.
//
// Following the paper's variance observation (the sum of N estimates with
// equal per-element standard deviation has standard deviation sigma/sqrt N),
// the per-row relative precision target is relaxed by sqrt(len(rows)) when
// adaptive sampling is active.
func (s *Sampler) ExpectedSum(tb *ctable.Table, col int) (AggregateResult, error) {
	if err := checkCol(tb, col); err != nil {
		return AggregateResult{}, err
	}
	rowSampler := s.forRowCount(tb.Len())
	return rowSampler.forEachRowBatch(tb.Len(), func(sub *Sampler, i int) (float64, int, bool, error) {
		contrib, r, err := sub.rowContribution(&tb.Tuples[i], col)
		return contrib, r.N, r.Exact, err
	})
}

// ExpectedCount computes E[count(*)] = sum of row confidences, with rows
// sharded across the worker pool.
func (s *Sampler) ExpectedCount(tb *ctable.Table) (AggregateResult, error) {
	return s.forEachRowBatch(tb.Len(), func(sub *Sampler, i int) (float64, int, bool, error) {
		r := sub.AConf(tb.Tuples[i].Cond)
		return r.Prob, r.N, r.Exact, r.Err
	})
}

// ExpectedAvg approximates E[avg(col)] by the ratio E[sum]/E[count]. The
// ratio-of-expectations is the standard first-order estimator for the
// expectation of a ratio; it is exact when the row count is deterministic.
func (s *Sampler) ExpectedAvg(tb *ctable.Table, col int) (AggregateResult, error) {
	sum, err := s.ExpectedSum(tb, col)
	if err != nil {
		return AggregateResult{}, err
	}
	cnt, err := s.ExpectedCount(tb)
	if err != nil {
		return AggregateResult{}, err
	}
	if cnt.Value == 0 {
		return AggregateResult{Value: math.NaN(), N: sum.N + cnt.N}, nil
	}
	return AggregateResult{
		Value:       sum.Value / cnt.Value,
		N:           sum.N + cnt.N,
		Exact:       sum.Exact && cnt.Exact,
		RowsScanned: tb.Len(),
	}, nil
}

// ExpectedMax computes E[max(col)] with the early-terminating algorithm of
// Example 4.4 when every target value is deterministic: rows are sorted by
// value descending, row i is the maximum exactly when it is present and
// rows 0..i-1 are absent (assuming independent row conditions — the
// algorithm verifies pairwise variable disjointness and falls back to
// per-world sampling otherwise), and scanning stops once the largest
// possible remaining change drops below precision. Worlds where no row is
// present contribute 0, matching the paper's example.
func (s *Sampler) ExpectedMax(tb *ctable.Table, col int, precision float64) (AggregateResult, error) {
	if err := checkCol(tb, col); err != nil {
		return AggregateResult{}, err
	}
	if tb.Len() == 0 {
		return AggregateResult{Value: 0, Exact: true}, nil
	}
	allDet := true
	for i := range tb.Tuples {
		if tb.Tuples[i].Values[col].IsSymbolic() {
			allDet = false
			break
		}
	}
	if !allDet || !rowsIndependent(tb) {
		return s.expectedMaxByWorlds(tb, col)
	}

	type row struct {
		v float64
		i int
	}
	rows := make([]row, 0, tb.Len())
	for i := range tb.Tuples {
		f, ok := tb.Tuples[i].Values[col].AsFloat()
		if !ok {
			return AggregateResult{}, fmt.Errorf("sampler: non-numeric max target %s", tb.Tuples[i].Values[col])
		}
		rows = append(rows, row{v: f, i: i})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].v > rows[b].v })

	total := 0.0
	pNone := 1.0 // probability that no earlier (larger) row is present
	samples := 0
	exact := true
	scanned := 0
	for _, rw := range rows {
		scanned++
		// Early termination: the most any remaining row can add is
		// bounded by |value| * P[none of the larger rows present].
		if precision > 0 && math.Abs(rw.v)*pNone < precision {
			break
		}
		cr := s.AConf(tb.Tuples[rw.i].Cond)
		if cr.Err != nil {
			return AggregateResult{}, cr.Err
		}
		samples += cr.N
		exact = exact && cr.Exact
		total += rw.v * cr.Prob * pNone
		pNone *= 1 - cr.Prob
		if pNone <= 0 {
			break
		}
	}
	return AggregateResult{Value: total, N: samples, Exact: exact, RowsScanned: scanned}, nil
}

// ExpectedMaxNaive is the worst-case per-world implementation the paper
// describes for aggregates without linearity (kept for ablation benches).
func (s *Sampler) ExpectedMaxNaive(tb *ctable.Table, col int) (AggregateResult, error) {
	if err := checkCol(tb, col); err != nil {
		return AggregateResult{}, err
	}
	return s.expectedMaxByWorlds(tb, col)
}

func (s *Sampler) expectedMaxByWorlds(tb *ctable.Table, col int) (AggregateResult, error) {
	samples, err := s.AggregateHistogram(tb, col, maxFold, s.histogramSize())
	if err != nil {
		return AggregateResult{}, err
	}
	total := 0.0
	for _, v := range samples {
		total += v
	}
	n := len(samples)
	if n == 0 {
		return AggregateResult{Value: math.NaN()}, nil
	}
	return AggregateResult{Value: total / float64(n), N: n, RowsScanned: tb.Len()}, nil
}

// rowsIndependent reports whether no two rows of the table share a random
// variable (in conditions or target cells) — the premise of the sorted
// expected-max algorithm.
func rowsIndependent(tb *ctable.Table) bool {
	seen := map[expr.VarKey]bool{}
	for i := range tb.Tuples {
		local := map[expr.VarKey]*expr.Variable{}
		tb.Tuples[i].Cond.CollectVars(local)
		for _, v := range tb.Tuples[i].Values {
			v.CollectVars(local)
		}
		for k := range local {
			if seen[k] {
				return false
			}
		}
		for k := range local {
			seen[k] = true
		}
	}
	return true
}

// histogramSize returns the world-sample count used by per-world fallbacks.
func (s *Sampler) histogramSize() int {
	if s.cfg.FixedSamples > 0 {
		return s.cfg.FixedSamples
	}
	n := s.cfg.MaxSamples
	if n <= 0 {
		n = 1000
	}
	if n > 10000 {
		n = 10000
	}
	return n
}

// FoldFunc combines per-row values into a per-world aggregate. present
// lists the evaluated target values of rows whose condition holds in the
// world.
type FoldFunc func(present []float64) float64

// SumFold is the per-world sum.
func SumFold(present []float64) float64 {
	t := 0.0
	for _, v := range present {
		t += v
	}
	return t
}

func maxFold(present []float64) float64 {
	if len(present) == 0 {
		return 0
	}
	m := present[0]
	for _, v := range present[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxFold is the per-world max (0 when no row is present).
func MaxFold(present []float64) float64 { return maxFold(present) }

// AvgFold is the per-world average (0 when no row is present).
func AvgFold(present []float64) float64 {
	if len(present) == 0 {
		return 0
	}
	return SumFold(present) / float64(len(present))
}

// StdDevFold is the per-world population standard deviation across present
// rows (0 for fewer than two rows) — the fold behind the expected_stddev
// aggregate (paper §IV-C lists stddev among the aggregate operators).
func StdDevFold(present []float64) float64 {
	return math.Sqrt(VarianceFold(present))
}

// VarianceFold is the per-world population variance across present rows.
func VarianceFold(present []float64) float64 {
	n := len(present)
	if n < 2 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range present {
		sum += v
		sumSq += v * v
	}
	fn := float64(n)
	mean := sum / fn
	variance := sumSq/fn - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance
}

// AggregateHistogram implements the expected_*_hist operators (§V-C): it
// draws n complete worlds over every variable of the table and returns the
// per-world aggregate values, suitable for histogram construction. Unlike
// the per-row expectation path this is an unconditioned world sample: row
// conditions act as presence indicators, and inter-row variable sharing is
// honored exactly. Each world is a pure function of its index, so world
// indices shard across the worker pool, every batch writing its own
// disjoint slice of the output — no merge step is needed at all.
func (s *Sampler) AggregateHistogram(tb *ctable.Table, col int, fold FoldFunc, n int) ([]float64, error) {
	if err := checkCol(tb, col); err != nil {
		return nil, err
	}
	if n <= 0 {
		return []float64{}, nil
	}
	vars := ctable.VarsOf(tb)
	keys := sortedKeys(vars)
	out := make([]float64, n)
	offs := splitRange(0, n, sampleBatchSize)
	errs := make([]error, len(offs))
	forEachBatch(s.cfg.Ctx, s.cfg.effectiveWorkers(), len(offs), func(b int) {
		end := offs[b] + sampleBatchSize
		if end > n {
			end = n
		}
		asn := expr.Assignment{}
		var present []float64
		for i := offs[b]; i < end; i++ {
			drawWorld(asn, keys, vars, s.cfg.WorldSeed, uint64(i))
			present = present[:0]
			for r := range tb.Tuples {
				t := &tb.Tuples[r]
				if !t.Cond.Holds(asn) {
					continue
				}
				v := t.Values[col].EvalWorld(asn)
				f, ok := v.AsFloat()
				if !ok {
					errs[b] = fmt.Errorf("sampler: non-numeric histogram target %s", v)
					return
				}
				present = append(present, f)
			}
			out[i] = fold(present)
		}
	})
	if err := s.cfg.ctxErr(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Barrier point: the batch fan-out is complete, so counting here is
	// deterministic-neutral. Every drawn world is kept (no rejection).
	if st := s.cfg.Stats; st != nil {
		st.AddRound()
		st.AddBatches(int64(len(offs)))
		st.AddSamples(int64(n))
	}
	return out, nil
}

// rowContribution computes P[cond] * E[value | cond] for one tuple.
func (s *Sampler) rowContribution(t *ctable.Tuple, col int) (float64, Result, error) {
	v := t.Values[col]
	if v.IsNull() {
		return 0, Result{Exact: true, Prob: 0}, nil
	}
	e, ok := v.AsExpr()
	if !ok {
		return 0, Result{}, fmt.Errorf("sampler: non-numeric aggregate target %s", v)
	}
	var r Result
	if len(t.Cond.Clauses) == 1 {
		r = s.Expectation(e, t.Cond.Clauses[0], true)
	} else {
		r = s.ExpectationDNF(e, t.Cond, true)
	}
	if r.Err != nil {
		return 0, r, r.Err
	}
	if r.Prob == 0 {
		return 0, r, nil
	}
	if math.IsNaN(r.Mean) {
		return 0, r, nil
	}
	return r.Mean * r.Prob, r, nil
}

// forRowCount relaxes the per-row precision target by sqrt(rows) for
// adaptive aggregation over many rows (paper §IV-C variance argument).
func (s *Sampler) forRowCount(rows int) *Sampler {
	if rows <= 1 || s.cfg.FixedSamples > 0 {
		return s
	}
	cfg := s.cfg
	cfg.Delta = cfg.Delta * math.Sqrt(float64(rows))
	if cfg.Delta > 0.5 {
		cfg.Delta = 0.5
	}
	return &Sampler{cfg: cfg}
}

// withWorkers returns a sampler identical to s but evaluating with the
// given worker count. Row-parallel aggregates pin per-row work to one
// worker; by the determinism contract this never changes a result, only
// where the parallelism lives.
func (s *Sampler) withWorkers(n int) *Sampler {
	if s.cfg.Workers == n {
		return s
	}
	cfg := s.cfg
	cfg.Workers = n
	return &Sampler{cfg: cfg}
}

func checkCol(tb *ctable.Table, col int) error {
	if col < 0 || col >= len(tb.Schema) {
		return fmt.Errorf("sampler: column %d out of range for %s", col, tb.Name)
	}
	return nil
}

// ExpectationHistogram draws n conditional samples of an expression given a
// clause (the per-row expected_*_hist variant): the returned values are
// samples of e restricted to worlds satisfying c. Sampling runs through the
// batch-parallel engine; a rejection-cap failure truncates the result at
// the failing sample, identically for every worker count.
func (s *Sampler) ExpectationHistogram(e expr.Expr, c cond.Clause, n int) ([]float64, error) {
	eKeys, eVars := expr.Vars(e)
	extras := make([]*expr.Variable, 0, len(eKeys))
	for _, k := range eKeys {
		extras = append(extras, eVars[k])
	}
	groups := s.partition(c, extras)
	samplers := make([]*groupSampler, 0, len(groups))
	for _, g := range groups {
		gs := newGroupSampler(g, &s.cfg)
		if gs.inconsistent {
			return nil, nil
		}
		samplers = append(samplers, gs)
	}
	engine := newGroupEngine(&s.cfg, samplers, e, true)
	values, _, _ := engine.runFixed(n)
	if engine.err != nil {
		return nil, engine.err
	}
	if values == nil {
		values = []float64{}
	}
	return values, nil
}
