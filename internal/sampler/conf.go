package sampler

import (
	"math"

	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
)

// Conf computes the probability of a conjunctive clause — the confidence of
// a c-table row (paper §V-C conf()). Independent groups multiply; each
// group is integrated exactly via CDFs when it reduces to a single-variable
// interval (Algorithm 4.3 line 32), and by (bounded, CDF-restricted)
// rejection sampling otherwise.
func (s *Sampler) Conf(c cond.Clause) Result {
	if c.IsTrue() {
		return Result{Mean: math.NaN(), Prob: 1, Exact: true}
	}
	res := cond.CheckConsistency(c)
	if res.Verdict == cond.Inconsistent {
		return Result{Mean: math.NaN(), Prob: 0, Exact: true}
	}
	groups := s.partition(c, nil)
	prob := 1.0
	exact := true
	n := 0
	for _, g := range groups {
		p, ex, gn := s.clauseProbDetail(g)
		prob *= p
		exact = exact && ex
		n += gn
		if prob == 0 {
			break
		}
	}
	if err := s.cfg.ctxErr(); err != nil {
		return Result{Err: err}
	}
	return Result{Mean: math.NaN(), Prob: prob, Exact: exact, N: n}
}

// AConf computes the probability of a DNF condition — the paper's aconf()
// general integrator, needed once DISTINCT has introduced disjunctions. For
// a small number of clauses it applies inclusion–exclusion over exact/conf
// clause probabilities; beyond that it falls back to world sampling.
func (s *Sampler) AConf(d cond.Condition) Result {
	switch {
	case d.IsFalse():
		return Result{Mean: math.NaN(), Prob: 0, Exact: true}
	case d.IsTrue():
		return Result{Mean: math.NaN(), Prob: 1, Exact: true}
	case len(d.Clauses) == 1:
		return s.Conf(d.Clauses[0])
	}
	const inclExclLimit = 12
	if len(d.Clauses) <= inclExclLimit {
		return s.aconfInclusionExclusion(d)
	}
	r := s.worldSampleDNF(expr.Const(0), d, true)
	if r.Err != nil {
		return Result{Err: r.Err}
	}
	return Result{Mean: math.NaN(), Prob: r.Prob, N: r.N}
}

// aconfInclusionExclusion computes P[C1 or ... or Cn] as
// sum over non-empty subsets S of (-1)^(|S|+1) P[and of S].
func (s *Sampler) aconfInclusionExclusion(d cond.Condition) Result {
	n := len(d.Clauses)
	total := 0.0
	exact := true
	samples := 0
	for mask := 1; mask < 1<<n; mask++ {
		var merged cond.Clause
		ok := true
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			bits++
			merged, ok = merged.AndClause(d.Clauses[i])
			if !ok {
				break
			}
		}
		if !ok {
			continue // deterministically false intersection contributes 0
		}
		r := s.Conf(merged)
		if r.Err != nil {
			return Result{Err: r.Err}
		}
		exact = exact && r.Exact
		samples += r.N
		if bits%2 == 1 {
			total += r.Prob
		} else {
			total -= r.Prob
		}
	}
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return Result{Mean: math.NaN(), Prob: total, Exact: exact, N: samples}
}

// clauseProb returns just the probability of one group.
func (s *Sampler) clauseProb(g cond.Group) float64 {
	p, _, _ := s.clauseProbDetail(g)
	return p
}

// clauseProbDetail integrates one minimal independent group, reporting
// whether the result is exact and how many samples were spent.
func (s *Sampler) clauseProbDetail(g cond.Group) (prob float64, exact bool, n int) {
	if len(g.Atoms) == 0 {
		return 1, true, 0
	}
	if !s.cfg.DisableExactCDF {
		if p, ok := exactSingleVarProb(g); ok {
			s.cfg.Stats.AddExactCDFHit()
			return p, true, 0
		}
	}
	return s.sampleGroupProb(g)
}

// sampleGroupProb estimates P[group atoms] by counting acceptances of the
// group sampler's candidate stream (CDF-restricted when possible, with the
// restriction's prior mass folded back in). Candidate indices shard across
// the worker pool: generateCandidate is a pure function of its index and
// only reads the shared group sampler, and the 0/1 indicator accumulators
// merge in batch order, so the estimate is identical for any worker count.
func (s *Sampler) sampleGroupProb(g cond.Group) (float64, bool, int) {
	gs := newGroupSampler(g, &s.cfg)
	if gs.inconsistent {
		return 0, true, 0
	}
	draw := func(asn expr.Assignment, idx uint64) (float64, bool) {
		gs.generateCandidate(asn, idx, 0xC0)
		if g.Atoms.Holds(asn) {
			return 1, true
		}
		return 0, true
	}
	var acc Accumulator
	for s.cfg.wantMore(acc) && s.cfg.ctxErr() == nil {
		round := s.cfg.nextRoundSize(acc.N)
		if round <= 0 {
			break
		}
		wb := runWorldRound(&s.cfg, draw, acc.N, round, false)
		acc.Merge(wb.acc)
	}
	if acc.N == 0 {
		return 0, false, 0
	}
	return gs.massFraction * acc.Sum / float64(acc.N), false, acc.N
}

// exactSingleVarProb integrates the group exactly when (a) it mentions a
// single scalar variable, (b) every atom is linear in that variable, and
// (c) the variable's class exposes a CDF. Strict and non-strict bounds are
// distinguished so that discrete (integer-valued) distributions integrate
// correctly; for continuous distributions strictness carries no mass.
func exactSingleVarProb(g cond.Group) (float64, bool) {
	if len(g.Keys) != 1 {
		return 0, false
	}
	k := g.Keys[0]
	v := g.Vars[k]
	cdfClass, hasCDF := v.Dist.Class.(dist.CDFer)
	if !hasCDF {
		return 0, false
	}
	cdf := func(x float64) float64 { return cdfClass.CDF(v.Dist.Params, x) }

	// Accumulate the satisfying region as an interval with strictness
	// flags plus excluded points (from <> atoms).
	lo, hi := math.Inf(-1), math.Inf(1)
	loStrict, hiStrict := false, false
	var excluded []float64
	var pinned *float64

	for _, a := range g.Atoms {
		lf, ok := expr.Linearize(expr.Sub(a.Left, a.Right))
		if !ok {
			return 0, false
		}
		coef := lf.Coeffs[k]
		if coef == 0 || len(lf.Coeffs) != 1 {
			return 0, false
		}
		// coef*X + c (op) 0  =>  X (op') t where t = -c/coef, flipping the
		// operator when coef < 0.
		t := -lf.Constant / coef
		op := a.Op
		if coef < 0 {
			op = flipForNegation(op)
		}
		switch op {
		case cond.GT:
			if t > lo || (t == lo && !loStrict) {
				lo, loStrict = t, true
			}
		case cond.GE:
			if t > lo {
				lo, loStrict = t, false
			}
		case cond.LT:
			if t < hi || (t == hi && !hiStrict) {
				hi, hiStrict = t, true
			}
		case cond.LE:
			if t < hi {
				hi, hiStrict = t, false
			}
		case cond.EQ:
			if pinned != nil && *pinned != t {
				return 0, true
			}
			tt := t
			pinned = &tt
		case cond.NEQ:
			excluded = append(excluded, t)
		}
	}

	discrete := isIntegerValued(v.Dist)
	pdfClass, hasPDF := v.Dist.Class.(dist.PDFer)
	pmf := func(x float64) float64 {
		if !hasPDF {
			return 0
		}
		return pdfClass.PDF(v.Dist.Params, x)
	}

	if pinned != nil {
		x := *pinned
		if x < lo || x > hi || (x == lo && loStrict) || (x == hi && hiStrict) {
			return 0, true
		}
		for _, e := range excluded {
			if e == x {
				return 0, true
			}
		}
		if !discrete {
			return 0, true // zero mass (paper §III-C item 3)
		}
		if !hasPDF {
			return 0, false
		}
		return pmf(x), true
	}

	if discrete {
		// Integerize the bounds: the CDF of our integer-valued classes is a
		// right-continuous step function at integers.
		iLo := math.Ceil(lo)
		if loStrict && iLo == lo {
			iLo = lo + 1
		}
		iHi := math.Floor(hi)
		if hiStrict && iHi == hi {
			iHi = hi - 1
		}
		if iLo > iHi {
			return 0, true
		}
		p := cdfAt(cdf, iHi) - cdfAt(cdf, iLo-1)
		for _, e := range excluded {
			if e == math.Floor(e) && e >= iLo && e <= iHi && hasPDF {
				p -= pmf(e)
			} else if e == math.Floor(e) && e >= iLo && e <= iHi {
				return 0, false // cannot subtract unknown point mass
			}
		}
		return clamp01(p), true
	}

	if lo > hi || (lo == hi && (loStrict || hiStrict)) {
		return 0, true
	}
	p := cdfAt(cdf, hi) - cdfAt(cdf, lo)
	return clamp01(p), true
}

func cdfAt(cdf func(float64) float64, x float64) float64 {
	switch {
	case math.IsInf(x, 1):
		return 1
	case math.IsInf(x, -1):
		return 0
	default:
		return cdf(x)
	}
}

// flipForNegation maps op to the op obtained when both sides of
// "coef*X op t" are divided by a negative coefficient.
func flipForNegation(op cond.CmpOp) cond.CmpOp {
	switch op {
	case cond.GT:
		return cond.LT
	case cond.GE:
		return cond.LE
	case cond.LT:
		return cond.GT
	case cond.LE:
		return cond.GE
	default:
		return op
	}
}

// isIntegerValued reports whether the class's samples are always integers
// (Poisson is integer-valued but has countable support, so it implements
// IntegerValued without Discreter). Delegating to the dist-layer
// capability keeps extension classes registered via dist.Register on the
// correct discrete interval semantics.
func isIntegerValued(in dist.Instance) bool {
	return in.IntegerValued()
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
