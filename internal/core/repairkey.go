package core

import (
	"fmt"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
)

// RepairKey implements the repair-key operator PIP borrows from MayBMS for
// discrete distributions (paper §V-A, footnote 2): given a deterministic
// table, a set of key columns and a weight column, it turns each key group
// into a probabilistic choice of exactly one of its rows, with per-row
// probability proportional to the weight.
//
// Mechanically, every key group gets one fresh Categorical choice variable;
// row i of the group receives the local condition (X = i). Rows of a group
// are therefore mutually exclusive and exhaustive — the c-table encodes a
// block-independent-disjoint table, from which relational algebra can build
// any finite distribution (paper §III: "relational algebra on
// block-independent-disjoint tables can construct any finite probability
// distribution").
//
// The weight column is consumed (not included in the output schema).
func (db *DB) RepairKey(t *ctable.Table, keyCols []int, weightCol int) (*ctable.Table, error) {
	if weightCol < 0 || weightCol >= len(t.Schema) {
		return nil, fmt.Errorf("core: repair-key weight column %d out of range", weightCol)
	}
	for _, c := range keyCols {
		if c < 0 || c >= len(t.Schema) {
			return nil, fmt.Errorf("core: repair-key key column %d out of range", c)
		}
	}
	for i := range t.Tuples {
		tp := &t.Tuples[i]
		if !tp.Cond.IsTrue() {
			return nil, fmt.Errorf("core: repair-key input must be deterministic (row %d has condition %s)",
				i, tp.Cond)
		}
		if tp.Values[weightCol].IsSymbolic() {
			return nil, fmt.Errorf("core: repair-key weight in row %d is symbolic", i)
		}
	}

	groups, err := ctable.GroupBy(t, keyCols)
	if err != nil {
		return nil, err
	}

	// Output schema: input columns minus the weight column.
	sch := make(ctable.Schema, 0, len(t.Schema)-1)
	outIdx := make([]int, 0, len(t.Schema)-1)
	for i, c := range t.Schema {
		if i == weightCol {
			continue
		}
		sch = append(sch, c)
		outIdx = append(outIdx, i)
	}
	out := &ctable.Table{Name: t.Name + "_repaired", Schema: sch}

	for _, g := range groups {
		weights := make([]float64, 0, len(g.Rows))
		total := 0.0
		for _, ri := range g.Rows {
			w, ok := t.Tuples[ri].Values[weightCol].AsFloat()
			if !ok || w < 0 {
				return nil, fmt.Errorf("core: invalid repair-key weight %s in row %d",
					t.Tuples[ri].Values[weightCol], ri)
			}
			weights = append(weights, w)
			total += w
		}
		if total <= 0 {
			return nil, fmt.Errorf("core: repair-key group has non-positive total weight")
		}
		for i := range weights {
			weights[i] /= total
		}
		inst, err := dist.NewInstance(dist.Categorical{}, weights...)
		if err != nil {
			return nil, err
		}
		choice := db.NewVariableFromInstance(inst, "choice")

		for i, ri := range g.Rows {
			src := &t.Tuples[ri]
			vals := make([]ctable.Value, 0, len(outIdx))
			for _, c := range outIdx {
				vals = append(vals, src.Values[c])
			}
			tup := ctable.Tuple{
				Values: vals,
				Cond: cond.FromClause(cond.Clause{
					cond.NewAtom(expr.NewVar(choice), cond.EQ, expr.Const(float64(i))),
				}),
			}
			out.Tuples = append(out.Tuples, tup)
		}
	}
	return out, nil
}
