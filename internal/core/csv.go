package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pip/internal/ctable"
)

// LoadCSV reads a deterministic table from CSV (first record = column
// names) and registers it under the given name. Cells that parse as
// numbers become floats; everything else is kept as a string. Empty cells
// become NULL. This is the ingestion path for external datasets (e.g. the
// datagen dumps, or real sighting databases standing in for the NSIDC
// data).
func (db *DB) LoadCSV(name string, r io.Reader) (*ctable.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("core: empty CSV header")
	}
	tb := ctable.New(name, header...)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading CSV line %d: %w", line+1, err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("core: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		vals := make([]ctable.Value, len(rec))
		for i, cell := range rec {
			vals[i] = parseCSVCell(cell)
		}
		tb.MustAppend(ctable.NewTuple(vals...))
	}
	db.Register(tb)
	return tb, nil
}

func parseCSVCell(cell string) ctable.Value {
	trimmed := strings.TrimSpace(cell)
	if trimmed == "" {
		return ctable.Null()
	}
	if f, err := strconv.ParseFloat(trimmed, 64); err == nil {
		return ctable.Float(f)
	}
	switch strings.ToLower(trimmed) {
	case "true":
		return ctable.Bool(true)
	case "false":
		return ctable.Bool(false)
	}
	return ctable.String_(trimmed)
}

// WriteCSV dumps a deterministic table (or the deterministic projection of
// a probabilistic one — symbolic cells render as their equation text) to
// CSV, header first.
func WriteCSV(tb *ctable.Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tb.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, len(tb.Schema))
	for i := range tb.Tuples {
		for j, v := range tb.Tuples[i].Values {
			if v.IsNull() {
				rec[j] = ""
			} else {
				rec[j] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
