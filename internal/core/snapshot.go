// Versioned binary codec for catalog snapshots: the full durable state of a
// database — table namespace, every tuple with its symbolic cells and
// c-table conditions, and the random-variable allocator — encoded into a
// deterministic byte stream. The write-ahead log (internal/wal) persists
// these streams as snapshot files; recovery decodes the latest one and
// replays the log suffix on top.
//
// Determinism matters beyond round-tripping: two catalogs that are
// semantically identical encode to identical bytes (tables iterate in
// sorted key order, variables intern in first-appearance order), so tests
// can assert recovered-vs-control bit-identity by comparing encodings.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
)

// snapshotVersion is the current catalog encoding version. Decoders reject
// versions they do not know; bump it on any layout change.
const snapshotVersion = 1

// ErrBadSnapshot is the sentinel wrapped by every catalog-snapshot decoding
// failure (unknown version, truncated stream, malformed structure); match
// it with errors.Is. Decoding is all-or-nothing: a failed decode leaves the
// database untouched.
var ErrBadSnapshot = errors.New("core: malformed catalog snapshot")

// expression node tags of the snapshot encoding.
const (
	tagConst byte = iota
	tagVar
	tagBin
	tagNeg
)

// EncodeCatalog writes the catalog — tables, tuples (including symbolic
// cells and conditions), and the random-variable and session allocators —
// as one versioned binary stream. The encoding is deterministic: equal
// catalog states produce equal bytes. Callers that need a state sitting
// exactly on a statement boundary wrap the call in RunExclusive.
func (db *DB) EncodeCatalog(w io.Writer) error {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()

	keys := make([]string, 0, len(db.cat.tables))
	for k := range db.cat.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	enc := &snapEncoder{varIdx: map[expr.VarKey]int{}}
	// Pass 1: intern every variable in deterministic traversal order, so
	// leaf references can be small indices into one table of distribution
	// instances instead of repeating parameters at every occurrence.
	for _, k := range keys {
		if err := enc.collectTable(db.cat.tables[k]); err != nil {
			return err
		}
	}

	var body []byte
	body = binary.AppendUvarint(body, db.cat.nextVar)
	body = binary.AppendUvarint(body, db.cat.nextSession)
	body = binary.AppendUvarint(body, uint64(len(enc.vars)))
	for _, v := range enc.vars {
		body = binary.AppendUvarint(body, v.Key.ID)
		body = binary.AppendUvarint(body, uint64(v.Key.Subscript))
		body = appendString(body, v.Name)
		body = appendString(body, v.Dist.Class.Name())
		body = binary.AppendUvarint(body, uint64(len(v.Dist.Params)))
		for _, p := range v.Dist.Params {
			body = appendFloat(body, p)
		}
	}
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		t := db.cat.tables[k]
		body = appendString(body, k)
		body = appendString(body, t.Name)
		body = binary.AppendUvarint(body, uint64(len(t.Schema)))
		for _, c := range t.Schema {
			body = appendString(body, c.Name)
		}
		body = binary.AppendUvarint(body, uint64(len(t.Tuples)))
		for i := range t.Tuples {
			var err error
			body, err = enc.appendTuple(body, &t.Tuples[i])
			if err != nil {
				return err
			}
		}
	}

	var head []byte
	head = binary.AppendUvarint(head, snapshotVersion)
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// DecodeCatalog replaces the catalog with the state encoded in r. The
// decode is staged: the stream is fully parsed into fresh structures first
// and installed only on success, so a corrupt snapshot leaves the database
// exactly as it was (the error wraps ErrBadSnapshot). Callers must ensure
// no statements are in flight (recovery runs before a database serves).
func (db *DB) DecodeCatalog(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	d := &snapDecoder{buf: raw}
	ver := d.uvarint()
	if d.err == nil && ver != snapshotVersion {
		return fmt.Errorf("%w: unknown snapshot version %d (have %d)", ErrBadSnapshot, ver, snapshotVersion)
	}
	nextVar := d.uvarint()
	nextSession := d.uvarint()

	nvars := d.uvarint()
	vars := make([]*expr.Variable, 0, minU(nvars, 4096))
	for i := uint64(0); i < nvars && d.err == nil; i++ {
		id := d.uvarint()
		sub := d.uvarint()
		name := d.string()
		className := d.string()
		nparams := d.uvarint()
		params := make([]float64, 0, minU(nparams, 64))
		for j := uint64(0); j < nparams && d.err == nil; j++ {
			params = append(params, d.float())
		}
		if d.err != nil {
			break
		}
		class, ok := dist.Lookup(className)
		if !ok {
			d.fail("unknown distribution class %q", className)
			break
		}
		inst, err := dist.NewInstance(class, params...)
		if err != nil {
			d.fail("invalid %s parameters: %v", className, err)
			break
		}
		vars = append(vars, &expr.Variable{
			Key:  expr.VarKey{ID: id, Subscript: int(sub)},
			Dist: inst,
			Name: name,
		})
	}
	d.vars = vars

	ntables := d.uvarint()
	type namedTable struct {
		key string
		t   *ctable.Table
	}
	tables := make([]namedTable, 0, minU(ntables, 1024))
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		key := d.string()
		display := d.string()
		ncols := d.uvarint()
		sch := make(ctable.Schema, 0, minU(ncols, 1024))
		for j := uint64(0); j < ncols && d.err == nil; j++ {
			sch = append(sch, ctable.Column{Name: d.string()})
		}
		t := &ctable.Table{Name: display, Schema: sch}
		ntuples := d.uvarint()
		t.Tuples = make([]ctable.Tuple, 0, minU(ntuples, 4096))
		for j := uint64(0); j < ntuples && d.err == nil; j++ {
			tp := d.tuple(len(sch))
			t.Tuples = append(t.Tuples, tp)
		}
		tables = append(tables, namedTable{key: key, t: t})
	}
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing bytes", len(d.buf)-d.off)
	}
	if d.err != nil {
		return d.err
	}

	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	db.cat.nextVar = nextVar
	db.cat.nextSession = nextSession
	db.cat.tables = make(map[string]*ctable.Table, len(tables))
	for _, nt := range tables {
		db.cat.tables[nt.key] = nt.t
	}
	db.cat.version.Add(1)
	return nil
}

// ---------------------------------------------------------------------------
// Encoder

// snapEncoder interns variables and appends the recursive structures
// (tuples, conditions, expression trees) of the snapshot encoding.
type snapEncoder struct {
	varIdx map[expr.VarKey]int
	vars   []*expr.Variable
}

// collectTable interns every variable of a table in traversal order.
func (e *snapEncoder) collectTable(t *ctable.Table) error {
	for i := range t.Tuples {
		tp := &t.Tuples[i]
		for _, v := range tp.Values {
			if v.Kind == ctable.KindExpr {
				if err := e.collectExpr(v.E); err != nil {
					return err
				}
			}
		}
		for _, cl := range tp.Cond.Clauses {
			for _, a := range cl {
				if err := e.collectExpr(a.Left); err != nil {
					return err
				}
				if err := e.collectExpr(a.Right); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// collectExpr interns the variables of one expression tree, left to right.
func (e *snapEncoder) collectExpr(x expr.Expr) error {
	switch t := x.(type) {
	case expr.Const:
		return nil
	case expr.Var:
		if _, ok := e.varIdx[t.V.Key]; !ok {
			e.varIdx[t.V.Key] = len(e.vars)
			e.vars = append(e.vars, t.V)
		}
		return nil
	case expr.Bin:
		if err := e.collectExpr(t.Left); err != nil {
			return err
		}
		return e.collectExpr(t.Right)
	case expr.Neg:
		return e.collectExpr(t.X)
	default:
		return fmt.Errorf("core: cannot snapshot expression node %T", x)
	}
}

// appendTuple appends one tuple: its values then its condition.
func (e *snapEncoder) appendTuple(buf []byte, tp *ctable.Tuple) ([]byte, error) {
	var err error
	buf = binary.AppendUvarint(buf, uint64(len(tp.Values)))
	for _, v := range tp.Values {
		buf, err = e.appendValue(buf, v)
		if err != nil {
			return nil, err
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(tp.Cond.Clauses)))
	for _, cl := range tp.Cond.Clauses {
		buf = binary.AppendUvarint(buf, uint64(len(cl)))
		for _, a := range cl {
			buf = append(buf, byte(a.Op))
			buf, err = e.appendExpr(buf, a.Left)
			if err != nil {
				return nil, err
			}
			buf, err = e.appendExpr(buf, a.Right)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// appendValue appends one cell: a kind byte and a kind-specific payload.
func (e *snapEncoder) appendValue(buf []byte, v ctable.Value) ([]byte, error) {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case ctable.KindNull:
		return buf, nil
	case ctable.KindFloat:
		return appendFloat(buf, v.F), nil
	case ctable.KindInt:
		return binary.AppendVarint(buf, v.I), nil
	case ctable.KindString:
		return appendString(buf, v.S), nil
	case ctable.KindBool:
		if v.B {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case ctable.KindExpr:
		return e.appendExpr(buf, v.E)
	default:
		return nil, fmt.Errorf("core: cannot snapshot value kind %v", v.Kind)
	}
}

// appendExpr appends one expression tree in prefix order.
func (e *snapEncoder) appendExpr(buf []byte, x expr.Expr) ([]byte, error) {
	switch t := x.(type) {
	case expr.Const:
		return appendFloat(append(buf, tagConst), float64(t)), nil
	case expr.Var:
		idx, ok := e.varIdx[t.V.Key]
		if !ok {
			return nil, fmt.Errorf("core: variable %s missing from intern table", t.V.Key)
		}
		return binary.AppendUvarint(append(buf, tagVar), uint64(idx)), nil
	case expr.Bin:
		buf = append(buf, tagBin, byte(t.Op))
		buf, err := e.appendExpr(buf, t.Left)
		if err != nil {
			return nil, err
		}
		return e.appendExpr(buf, t.Right)
	case expr.Neg:
		return e.appendExpr(append(buf, tagNeg), t.X)
	default:
		return nil, fmt.Errorf("core: cannot snapshot expression node %T", x)
	}
}

// ---------------------------------------------------------------------------
// Decoder

// snapDecoder reads the snapshot encoding from a byte slice, latching the
// first error; every accessor is a no-op once err is set.
type snapDecoder struct {
	buf  []byte
	off  int
	err  error
	vars []*expr.Variable
	// depth bounds expression recursion so corrupt input cannot overflow
	// the stack.
	depth int
}

// maxExprDepth bounds decoded expression-tree nesting.
const maxExprDepth = 10_000

// fail latches a decoding error wrapping ErrBadSnapshot.
func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrBadSnapshot, fmt.Sprintf(format, args...), d.off)
	}
}

// uvarint reads one unsigned varint.
func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

// varint reads one signed varint.
func (d *snapDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// byte_ reads one byte.
func (d *snapDecoder) byte_() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// float reads one float64 (8 bytes, little endian, exact bits).
func (d *snapDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float")
		return 0
	}
	bits := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(bits)
}

// string reads one length-prefixed string.
func (d *snapDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("truncated string of length %d", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+uint64AsInt(n)])
	d.off += uint64AsInt(n)
	return s
}

// tuple reads one tuple (values + condition), validating cell arity.
func (d *snapDecoder) tuple(arity int) ctable.Tuple {
	nvals := d.uvarint()
	if d.err == nil && nvals != uint64(arity) {
		d.fail("tuple arity %d does not match schema arity %d", nvals, arity)
	}
	vals := make([]ctable.Value, 0, minU(nvals, 1024))
	for i := uint64(0); i < nvals && d.err == nil; i++ {
		vals = append(vals, d.value())
	}
	nclauses := d.uvarint()
	c := cond.Condition{}
	if n := minU(nclauses, 1024); d.err == nil && n > 0 {
		c.Clauses = make([]cond.Clause, 0, n)
	}
	for i := uint64(0); i < nclauses && d.err == nil; i++ {
		natoms := d.uvarint()
		var cl cond.Clause
		for j := uint64(0); j < natoms && d.err == nil; j++ {
			op := cond.CmpOp(d.byte_())
			if d.err == nil && (op < cond.EQ || op > cond.GE) {
				d.fail("unknown comparison operator %d", op)
			}
			left := d.expr()
			right := d.expr()
			if d.err == nil {
				cl = append(cl, cond.NewAtom(left, op, right))
			}
		}
		if d.err == nil {
			c.Clauses = append(c.Clauses, cl)
		}
	}
	return ctable.Tuple{Values: vals, Cond: c}
}

// value reads one cell.
func (d *snapDecoder) value() ctable.Value {
	kind := ctable.Kind(d.byte_())
	if d.err != nil {
		return ctable.Value{}
	}
	switch kind {
	case ctable.KindNull:
		return ctable.Null()
	case ctable.KindFloat:
		return ctable.Float(d.float())
	case ctable.KindInt:
		return ctable.Int(d.varint())
	case ctable.KindString:
		return ctable.String_(d.string())
	case ctable.KindBool:
		return ctable.Bool(d.byte_() != 0)
	case ctable.KindExpr:
		e := d.expr()
		if d.err != nil {
			return ctable.Value{}
		}
		return ctable.Value{Kind: ctable.KindExpr, E: e}
	default:
		d.fail("unknown value kind %d", kind)
		return ctable.Value{}
	}
}

// expr reads one expression tree.
func (d *snapDecoder) expr() expr.Expr {
	if d.err != nil {
		return expr.Const(0)
	}
	d.depth++
	defer func() { d.depth-- }()
	if d.depth > maxExprDepth {
		d.fail("expression nesting exceeds %d", maxExprDepth)
		return expr.Const(0)
	}
	switch tag := d.byte_(); tag {
	case tagConst:
		return expr.Const(d.float())
	case tagVar:
		idx := d.uvarint()
		if d.err != nil {
			return expr.Const(0)
		}
		if idx >= uint64(len(d.vars)) {
			d.fail("variable index %d out of range (%d interned)", idx, len(d.vars))
			return expr.Const(0)
		}
		return expr.NewVar(d.vars[idx])
	case tagBin:
		op := expr.Op(d.byte_())
		if d.err == nil && (op < expr.OpAdd || op > expr.OpDiv) {
			d.fail("unknown arithmetic operator %d", op)
		}
		left := d.expr()
		right := d.expr()
		if d.err != nil {
			return expr.Const(0)
		}
		return expr.Bin{Op: op, Left: left, Right: right}
	case tagNeg:
		x := d.expr()
		if d.err != nil {
			return expr.Const(0)
		}
		return expr.Neg{X: x}
	default:
		if d.err == nil {
			d.fail("unknown expression tag %d", tag)
		}
		return expr.Const(0)
	}
}

// ---------------------------------------------------------------------------
// Small helpers

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendFloat appends the exact bits of a float64, little endian.
func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// minU clamps an untrusted uint64 count to a sane preallocation bound.
func minU(n uint64, cap int) int {
	if n < uint64(cap) {
		return int(n)
	}
	return cap
}

// uint64AsInt converts a length already validated against the buffer size.
func uint64AsInt(n uint64) int { return int(n) }
