// Package core is PIP's engine proper: it ties the symbolic c-table algebra
// (internal/ctable) and the deferred sampling/integration layer
// (internal/sampler) into a queryable probabilistic database (paper §III,
// Fig. 2: "Query Evaluation" over a "Data Store" of probabilistic c-tables).
//
// A DB owns the random-variable namespace (CREATE VARIABLE allocates unique
// identifiers, §V-A), a catalog of named c-tables (including materialized
// views of intermediate symbolic results — lossless, so later expectations
// are unbiased by materialization, §III-A), and a configured sampler.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/obs"
	"pip/internal/sampler"
)

// ErrUnknownTable is the sentinel wrapped by every table-lookup failure;
// match it with errors.Is. The wrapping error names the missing table.
var ErrUnknownTable = errors.New("core: unknown table")

// catalog is the state shared by a database and all of its session views:
// the table namespace, the rows of the tables in it, and the
// random-variable allocator. One mutex guards all three, so concurrent
// sessions never race on DDL, DML (AppendRow/Snapshot) or
// CREATE_VARIABLE, and variable identifiers stay unique across every view
// of the database.
type catalog struct {
	mu          sync.Mutex
	nextVar     uint64
	nextSession uint64
	tables      map[string]*ctable.Table
	// stats is the engine-wide telemetry root: every session's sampler
	// counters roll up into it, and it holds the most recent query trace.
	// It has its own synchronization and is never touched under mu.
	stats obs.EngineStats
	// commitMu serializes catalog-mutating statements whenever mlog is
	// attached, so the log's record order equals the statements' effect
	// order (including random-variable allocation) and replay is exact.
	// Lock order: commitMu before mu; it is never taken under mu.
	commitMu sync.Mutex
	mlog     MutationLog
	// readOnly marks the catalog as a replica of primaryAddr: mutating SQL
	// statements from non-applier handles are rejected with ErrReadOnly
	// (see replication.go). Guarded by mu.
	readOnly    bool
	primaryAddr string
	// version counts catalog mutations applied in this process: one per
	// mutating statement (committed, recovered, or replicated) plus one per
	// snapshot loaded. Lag accounting and telemetry read it; it is never
	// part of durable state.
	version atomic.Uint64
	// scopeMu guards scopes, the SHOW STATS contributions registered by
	// subsystems outside the engine (e.g. replication). It has no ordering
	// relationship with mu or commitMu: scope functions run outside it.
	scopeMu sync.Mutex
	scopes  map[string]func() map[string]float64
}

// DB is a PIP probabilistic database instance. Handles created by Session
// and WithConfig share one catalog (tables, variable namespace) but carry
// independent sampling configurations.
type DB struct {
	cat *catalog
	// sid identifies this handle in the write-ahead statement log
	// (RootSessionID for the NewDB handle); see durability.go.
	sid uint64
	// applier exempts this handle from the catalog's read-only gate so the
	// replication subsystem can replay the primary's log (replication.go).
	// Set once before the handle is shared; not inherited by Session.
	applier bool
	mu      sync.Mutex // guards smp and cfg
	smp     *sampler.Sampler
	cfg     sampler.Config
}

// NewDB creates a database with the given sampling configuration. Unless
// the configuration already carries a stats collection point, the engine's
// own telemetry root is installed, so every sampler the database hands out
// feeds the engine-wide counters surfaced by SHOW STATS.
func NewDB(cfg sampler.Config) *DB {
	cat := &catalog{nextVar: 1, nextSession: RootSessionID + 1, tables: map[string]*ctable.Table{}}
	if cfg.Stats == nil {
		cfg.Stats = &cat.stats.Sampler
	}
	return &DB{
		cat: cat,
		sid: RootSessionID,
		smp: sampler.New(cfg),
		cfg: cfg,
	}
}

// allocSessionID hands out the next session identifier for a new handle
// over this catalog.
func (cat *catalog) allocSessionID() uint64 {
	cat.mu.Lock()
	defer cat.mu.Unlock()
	id := cat.nextSession
	cat.nextSession++
	return id
}

// Session returns a handle sharing this database's catalog and random-
// variable namespace but carrying its own sampling configuration,
// initialized from the current one. Configuration updates on the session
// (SET statements, UpdateConfig) leave every other handle untouched, while
// DDL/DML and CREATE_VARIABLE act on the shared catalog and are visible to
// all. This is the isolation unit behind the network server's per-session
// settings.
func (db *DB) Session() *DB {
	cfg := db.Config()
	return &DB{cat: db.cat, sid: db.cat.allocSessionID(), smp: sampler.New(cfg), cfg: cfg}
}

// Sampler returns the database's sampler. The returned sampler is immutable
// (SET statements install a fresh one), so it may be used concurrently with
// configuration updates.
func (db *DB) Sampler() *sampler.Sampler {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.smp
}

// SamplerContext returns the database's sampler scoped to ctx: cancellation
// or deadline expiry aborts its sampling at the parallel engine's batch
// dispatch and round barriers, and aborted computations report ctx.Err()
// instead of partial estimates. This is the per-request hook behind
// QueryContext/ExecContext on the public surface.
func (db *DB) SamplerContext(ctx context.Context) *sampler.Sampler {
	return db.Sampler().WithContext(ctx)
}

// Config returns the sampling configuration.
func (db *DB) Config() sampler.Config {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.cfg
}

// UpdateConfig applies mutate to a copy of the current sampling
// configuration, installs the result atomically, and returns it. Queries
// already holding the previous sampler finish under the old settings;
// concurrent callers of Sampler see either the old or the new one, never a
// torn state. This is the hook behind the SQL session settings (SET workers
// = N etc.).
func (db *DB) UpdateConfig(mutate func(*sampler.Config)) sampler.Config {
	db.mu.Lock()
	defer db.mu.Unlock()
	cfg := db.cfg
	mutate(&cfg)
	db.cfg = cfg
	db.smp = sampler.New(cfg)
	return cfg
}

// WithConfig returns a database sharing this database's catalog and
// variable namespace but sampling under the given configuration. Useful
// for fixed-sample experiment runs against the same data; Session is the
// same operation seeded from the current configuration.
func (db *DB) WithConfig(cfg sampler.Config) *DB {
	if cfg.Stats == nil {
		cfg.Stats = &db.cat.stats.Sampler
	}
	return &DB{cat: db.cat, sid: db.cat.allocSessionID(), smp: sampler.New(cfg), cfg: cfg}
}

// Stats returns the engine-wide telemetry root shared by every handle of
// this database: the global sampler counter set plus the trace of the most
// recently observed query. It is the backing store of SHOW STATS.
func (db *DB) Stats() *obs.EngineStats {
	return &db.cat.stats
}

// ObserveQuery registers a statement trace as the engine's most recent
// query; the SQL layer calls it once per planned SELECT.
func (db *DB) ObserveQuery(q *obs.QueryStats) {
	db.cat.stats.ObserveQuery(q)
}

// LastQuery returns the trace of the most recently observed query (nil
// before the first planned statement).
func (db *DB) LastQuery() *obs.QueryStats {
	return db.cat.stats.LastQuery()
}

// CreateVariable implements CREATE_VARIABLE(distribution, params...): it
// allocates a fresh random variable drawn from the named distribution class
// (paper §V-A). The returned variable can be placed into c-table cells and
// conditions.
func (db *DB) CreateVariable(distName string, params ...float64) (*expr.Variable, error) {
	class, ok := dist.Lookup(distName)
	if !ok {
		return nil, fmt.Errorf("core: unknown distribution class %q (have %s)",
			distName, strings.Join(dist.Names(), ", "))
	}
	inst, err := dist.NewInstance(class, params...)
	if err != nil {
		return nil, err
	}
	return db.NewVariableFromInstance(inst, ""), nil
}

// NewVariableFromInstance allocates a variable for an existing distribution
// instance, optionally named for display.
func (db *DB) NewVariableFromInstance(inst dist.Instance, name string) *expr.Variable {
	db.cat.mu.Lock()
	id := db.cat.nextVar
	db.cat.nextVar++
	db.cat.mu.Unlock()
	return &expr.Variable{Key: expr.VarKey{ID: id}, Dist: inst, Name: name}
}

// CreateJointVariables allocates the component variables of a multivariate
// distribution instance: one Variable per subscript, all sharing one id so
// the sampler draws them jointly.
func (db *DB) CreateJointVariables(inst dist.Instance, name string) ([]*expr.Variable, error) {
	mv, ok := inst.Class.(dist.Multivariater)
	if !ok {
		return nil, fmt.Errorf("core: %s is not a multivariate class", inst.Class.Name())
	}
	db.cat.mu.Lock()
	id := db.cat.nextVar
	db.cat.nextVar++
	db.cat.mu.Unlock()
	n := mv.Dim(inst.Params)
	out := make([]*expr.Variable, n)
	for i := 0; i < n; i++ {
		out[i] = &expr.Variable{Key: expr.VarKey{ID: id, Subscript: i}, Dist: inst, Name: name}
	}
	return out, nil
}

// Register installs (or replaces) a named table in the catalog.
func (db *DB) Register(t *ctable.Table) {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	db.cat.tables[strings.ToLower(t.Name)] = t
}

// Table fetches a catalog table by name. A failed lookup wraps
// ErrUnknownTable.
func (db *DB) Table(name string) (*ctable.Table, error) {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	t, ok := db.cat.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTable, name)
	}
	return t, nil
}

// AppendRow appends one tuple to a catalog table under the catalog lock.
// All DML on live catalog tables goes through here (not Table.Append
// directly), so concurrent sessions' inserts and snapshots never race:
// existing tuples are immutable, appends are serialized, and snapshots
// capture a consistent prefix.
func (db *DB) AppendRow(t *ctable.Table, tp ctable.Tuple) error {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	return t.Append(tp)
}

// Snapshot returns the table's current rows under the catalog lock, with
// capacity clipped so a concurrent AppendRow reallocates instead of
// writing into the returned slice. Query scans iterate snapshots, never
// the live slice header.
func (db *DB) Snapshot(t *ctable.Table) []ctable.Tuple {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	return t.Tuples[:len(t.Tuples):len(t.Tuples)]
}

// Drop removes a table from the catalog.
func (db *DB) Drop(name string) {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	delete(db.cat.tables, strings.ToLower(name))
}

// TableNames lists catalog tables in sorted order.
func (db *DB) TableNames() []string {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	out := make([]string, 0, len(db.cat.tables))
	for n := range db.cat.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Materialize stores a query result under a view name. The symbolic
// representation is lossless, so downstream expectations over the view are
// unbiased (paper §III-A) and online sampling can resume from it without
// re-running the deterministic query phase.
func (db *DB) Materialize(name string, t *ctable.Table) *ctable.Table {
	view := t.Clone()
	view.Name = name
	db.Register(view)
	return view
}

// ---------------------------------------------------------------------------
// Row-level analysis functions (paper §V-C)

// Conf estimates (or computes exactly) the probability of a tuple's
// condition — the row's confidence.
func (db *DB) Conf(t *ctable.Tuple) sampler.Result {
	return db.Sampler().AConf(t.Cond)
}

// Expectation computes E[column | row condition] for one tuple, optionally
// with the row probability.
func (db *DB) Expectation(t *ctable.Tuple, col int, getP bool) (sampler.Result, error) {
	return db.ExpectationContext(context.Background(), t, col, getP)
}

// ExpectationContext is Expectation under a request context: cancellation
// aborts sampling promptly and returns ctx.Err(), never a partial estimate.
func (db *DB) ExpectationContext(ctx context.Context, t *ctable.Tuple, col int, getP bool) (sampler.Result, error) {
	return TupleExpectation(db.SamplerContext(ctx), t, col, getP)
}

// TupleExpectation computes E[column | row condition] for one tuple using
// the given sampler — the sampler-parameterized core of ExpectationContext,
// letting callers (query operators) route the work through a scoped sampler
// that records into their own telemetry collection point.
func TupleExpectation(smp *sampler.Sampler, t *ctable.Tuple, col int, getP bool) (sampler.Result, error) {
	v := t.Values[col]
	e, ok := v.AsExpr()
	if !ok {
		return sampler.Result{}, fmt.Errorf("core: non-numeric expectation target %s", v)
	}
	var r sampler.Result
	if len(t.Cond.Clauses) == 1 {
		r = smp.Expectation(e, t.Cond.Clauses[0], getP)
	} else {
		r = smp.ExpectationDNF(e, t.Cond, getP)
	}
	if r.Err != nil {
		return sampler.Result{}, r.Err
	}
	return r, nil
}

// ConfTable appends a confidence column computed per row and strips
// conditions, producing a deterministic table (the conf() rewrite: "If the
// confidence operator is present, all conditions applying to the row are
// removed from the result").
func (db *DB) ConfTable(t *ctable.Table, colName string) *ctable.Table {
	sch := t.Schema.Clone()
	sch = append(sch, ctable.Column{Name: colName})
	out := &ctable.Table{Name: t.Name, Schema: sch}
	// One sampler for the whole table: a concurrent SET must not swap
	// configurations between rows of a single result.
	smp := db.Sampler()
	for i := range t.Tuples {
		tp := &t.Tuples[i]
		r := smp.AConf(tp.Cond)
		vals := make([]ctable.Value, 0, len(tp.Values)+1)
		vals = append(vals, tp.Values...)
		vals = append(vals, ctable.Float(r.Prob))
		out.Tuples = append(out.Tuples, ctable.NewTuple(vals...))
	}
	return out
}

// ExpectationTable replaces symbolic columns with their per-row conditional
// expectations and strips conditions; deterministic cells pass through.
func (db *DB) ExpectationTable(t *ctable.Table) (*ctable.Table, error) {
	out := &ctable.Table{Name: t.Name, Schema: t.Schema.Clone()}
	for i := range t.Tuples {
		tp := &t.Tuples[i]
		vals := make([]ctable.Value, len(tp.Values))
		for c, v := range tp.Values {
			if !v.IsSymbolic() {
				vals[c] = v
				continue
			}
			r, err := db.Expectation(tp, c, false)
			if err != nil {
				return nil, err
			}
			vals[c] = ctable.Float(r.Mean)
		}
		out.Tuples = append(out.Tuples, ctable.NewTuple(vals...))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Aggregate operators with group-by (paper §II-C: group-by on
// non-probabilistic columns poses no difficulty, and deferred sampling lets
// the engine create exactly as many samples per group as needed).

// AggKind enumerates the supported expectation aggregates.
type AggKind int

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggAvg
	AggMax
)

// String names the aggregate as it appears in SQL.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "expected_sum"
	case AggCount:
		return "expected_count"
	case AggAvg:
		return "expected_avg"
	case AggMax:
		return "expected_max"
	default:
		return "?"
	}
}

// GroupedAggregate computes an expectation aggregate over target column
// aggCol grouped by the deterministic columns keyCols. A nil/empty keyCols
// aggregates the whole table into one row. The result schema is the key
// columns followed by one aggregate column.
func (db *DB) GroupedAggregate(t *ctable.Table, keyCols []int, aggCol int, kind AggKind, outName string) (*ctable.Table, error) {
	var groups []ctable.GroupRows
	var err error
	if len(keyCols) == 0 {
		all := make([]int, t.Len())
		for i := range all {
			all[i] = i
		}
		groups = []ctable.GroupRows{{Rows: all}}
	} else {
		groups, err = ctable.GroupBy(t, keyCols)
		if err != nil {
			return nil, err
		}
	}

	sch := make(ctable.Schema, 0, len(keyCols)+1)
	for _, c := range keyCols {
		sch = append(sch, t.Schema[c])
	}
	sch = append(sch, ctable.Column{Name: outName})
	out := &ctable.Table{Name: t.Name + "_" + kind.String(), Schema: sch}

	// One sampler for the whole aggregate: a concurrent SET must not swap
	// configurations between groups of a single result.
	smp := db.Sampler()
	for _, g := range groups {
		sub := &ctable.Table{Name: t.Name, Schema: t.Schema}
		for _, ri := range g.Rows {
			sub.Tuples = append(sub.Tuples, t.Tuples[ri])
		}
		var res sampler.AggregateResult
		switch kind {
		case AggSum:
			res, err = smp.ExpectedSum(sub, aggCol)
		case AggCount:
			res, err = smp.ExpectedCount(sub)
		case AggAvg:
			res, err = smp.ExpectedAvg(sub, aggCol)
		case AggMax:
			res, err = smp.ExpectedMax(sub, aggCol, 0)
		default:
			err = fmt.Errorf("core: unknown aggregate %v", kind)
		}
		if err != nil {
			return nil, err
		}
		vals := make([]ctable.Value, 0, len(g.Key)+1)
		vals = append(vals, g.Key...)
		vals = append(vals, ctable.Float(res.Value))
		out.Tuples = append(out.Tuples, ctable.NewTuple(vals...))
	}
	return out, nil
}

// Histogram draws n per-world samples of the aggregate over the table
// (expected_sum_hist / expected_max_hist, §V-C).
func (db *DB) Histogram(t *ctable.Table, col int, kind AggKind, n int) ([]float64, error) {
	switch kind {
	case AggSum:
		return db.Sampler().AggregateHistogram(t, col, sampler.SumFold, n)
	case AggMax:
		return db.Sampler().AggregateHistogram(t, col, sampler.MaxFold, n)
	default:
		return nil, fmt.Errorf("core: histogram unsupported for %v", kind)
	}
}

// ---------------------------------------------------------------------------
// Convenience constructors for conditions and expressions

// VarExpr wraps a variable as an expression.
func VarExpr(v *expr.Variable) expr.Expr { return expr.NewVar(v) }

// ConstExpr wraps a constant.
func ConstExpr(f float64) expr.Expr { return expr.Const(f) }

// Atom builds a condition atom.
func Atom(l expr.Expr, op cond.CmpOp, r expr.Expr) cond.Atom {
	return cond.NewAtom(l, op, r)
}
