package core

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/sampler"
)

func testDB() *DB {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 31415
	return NewDB(cfg)
}

func TestCreateVariable(t *testing.T) {
	db := testDB()
	v1, err := db.CreateVariable("Normal", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.CreateVariable("normal", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Key.ID == v2.Key.ID {
		t.Fatal("variable ids not unique")
	}
	if _, err := db.CreateVariable("NoSuchDist", 1); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := db.CreateVariable("Normal", 1); err == nil {
		t.Fatal("bad parameters accepted")
	}
}

func TestCreateJointVariables(t *testing.T) {
	db := testDB()
	l, err := dist.CholeskyFromCovariance([][]float64{{1, 0.5}, {0.5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	inst := dist.MustInstance(dist.MVNormal{}, dist.MVNormalParams([]float64{0, 1}, l)...)
	vars, err := db.CreateJointVariables(inst, "pos")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || vars[0].Key.ID != vars[1].Key.ID || vars[0].Key.Subscript == vars[1].Key.Subscript {
		t.Fatalf("joint vars malformed: %v", vars)
	}
	uni := dist.MustInstance(dist.Normal{}, 0, 1)
	if _, err := db.CreateJointVariables(uni, "x"); err == nil {
		t.Fatal("univariate accepted as joint")
	}
}

func TestCatalog(t *testing.T) {
	db := testDB()
	tb := ctable.New("Orders", "id", "price")
	db.Register(tb)
	got, err := db.Table("orders") // case-insensitive
	if err != nil || got != tb {
		t.Fatalf("Table lookup: %v", err)
	}
	if _, err := db.Table("nope"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "orders" {
		t.Fatalf("names %v", names)
	}
	db.Drop("Orders")
	if _, err := db.Table("orders"); err == nil {
		t.Fatal("dropped table still present")
	}
}

func TestMaterializeIsDeepCopy(t *testing.T) {
	db := testDB()
	tb := ctable.New("src", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Float(1)))
	view := db.Materialize("view1", tb)
	tb.Tuples[0].Values[0] = ctable.Float(99)
	if view.Tuples[0].Values[0].F != 1 {
		t.Fatal("materialized view aliases source data")
	}
	if _, err := db.Table("view1"); err != nil {
		t.Fatal("view not registered")
	}
}

func TestConfAndExpectationHelpers(t *testing.T) {
	db := testDB()
	v, _ := db.CreateVariable("Uniform", 0, 1)
	tup := ctable.NewTuple(ctable.Symbolic(expr.NewVar(v)))
	tup.Cond = cond.FromClause(cond.Clause{
		cond.NewAtom(expr.NewVar(v), cond.LT, expr.Const(0.25)),
	})
	r := db.Conf(&tup)
	if !r.Exact || math.Abs(r.Prob-0.25) > 1e-12 {
		t.Fatalf("conf %v exact=%v", r.Prob, r.Exact)
	}
	er, err := db.Expectation(&tup, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// E[U | U < .25] = .125.
	if math.Abs(er.Mean-0.125) > 0.01 {
		t.Fatalf("mean %v", er.Mean)
	}
}

func TestConfTable(t *testing.T) {
	db := testDB()
	v, _ := db.CreateVariable("Uniform", 0, 1)
	tb := ctable.New("t", "x")
	tup := ctable.NewTuple(ctable.Float(3))
	tup.Cond = cond.FromClause(cond.Clause{
		cond.NewAtom(expr.NewVar(v), cond.GT, expr.Const(0.6)),
	})
	tb.MustAppend(tup)
	out := db.ConfTable(tb, "conf")
	if len(out.Schema) != 2 || out.Schema[1].Name != "conf" {
		t.Fatalf("schema %v", out.Schema.Names())
	}
	got, _ := out.Tuples[0].Values[1].AsFloat()
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("conf col %v", got)
	}
	if !out.Tuples[0].Cond.IsTrue() {
		t.Fatal("conditions should be stripped by conf")
	}
}

func TestExpectationTable(t *testing.T) {
	db := testDB()
	v, _ := db.CreateVariable("Normal", 8, 1)
	tb := ctable.New("t", "label", "val")
	tb.MustAppend(ctable.NewTuple(ctable.String_("a"), ctable.Symbolic(expr.NewVar(v))))
	out, err := db.ExpectationTable(tb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples[0].Values[0].S != "a" {
		t.Fatal("deterministic cell mangled")
	}
	got, _ := out.Tuples[0].Values[1].AsFloat()
	if math.Abs(got-8) > 1e-9 {
		t.Fatalf("expectation col %v", got)
	}
}

func TestGroupedAggregate(t *testing.T) {
	db := testDB()
	va, _ := db.CreateVariable("Normal", 10, 1)
	vb, _ := db.CreateVariable("Normal", 30, 1)
	tb := ctable.New("t", "grp", "val")
	tb.MustAppend(ctable.NewTuple(ctable.String_("a"), ctable.Symbolic(expr.NewVar(va))))
	tb.MustAppend(ctable.NewTuple(ctable.String_("b"), ctable.Symbolic(expr.NewVar(vb))))
	tb.MustAppend(ctable.NewTuple(ctable.String_("a"), ctable.Float(5)))

	out, err := db.GroupedAggregate(tb, []int{0}, 1, AggSum, "total")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups %d", out.Len())
	}
	byKey := map[string]float64{}
	for _, tp := range out.Tuples {
		f, _ := tp.Values[1].AsFloat()
		byKey[tp.Values[0].S] = f
	}
	if math.Abs(byKey["a"]-15) > 1e-9 || math.Abs(byKey["b"]-30) > 1e-9 {
		t.Fatalf("group sums %v", byKey)
	}
}

func TestGroupedAggregateWholeTable(t *testing.T) {
	db := testDB()
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Float(2)))
	tb.MustAppend(ctable.NewTuple(ctable.Float(3)))
	out, err := db.GroupedAggregate(tb, nil, 0, AggSum, "s")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows %d", out.Len())
	}
	if f, _ := out.Tuples[0].Values[0].AsFloat(); f != 5 {
		t.Fatalf("sum %v", f)
	}
	// Count and avg too.
	out, _ = db.GroupedAggregate(tb, nil, 0, AggCount, "c")
	if f, _ := out.Tuples[0].Values[0].AsFloat(); f != 2 {
		t.Fatalf("count %v", f)
	}
	out, _ = db.GroupedAggregate(tb, nil, 0, AggAvg, "a")
	if f, _ := out.Tuples[0].Values[0].AsFloat(); f != 2.5 {
		t.Fatalf("avg %v", f)
	}
	out, _ = db.GroupedAggregate(tb, nil, 0, AggMax, "m")
	if f, _ := out.Tuples[0].Values[0].AsFloat(); f != 3 {
		t.Fatalf("max %v", f)
	}
}

func TestHistogram(t *testing.T) {
	db := testDB()
	v, _ := db.CreateVariable("Normal", 5, 1)
	tb := ctable.New("t", "v")
	tb.MustAppend(ctable.NewTuple(ctable.Symbolic(expr.NewVar(v))))
	hist, err := db.Histogram(tb, 0, AggSum, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1000 {
		t.Fatalf("hist len %d", len(hist))
	}
	if _, err := db.Histogram(tb, 0, AggAvg, 10); err == nil {
		t.Fatal("unsupported histogram kind accepted")
	}
}

func TestWithConfigSharesCatalog(t *testing.T) {
	db := testDB()
	tb := ctable.New("shared", "v")
	db.Register(tb)
	cfg := db.Config()
	cfg.FixedSamples = 10
	db2 := db.WithConfig(cfg)
	if _, err := db2.Table("shared"); err != nil {
		t.Fatal("catalog not shared")
	}
	if db2.Config().FixedSamples != 10 {
		t.Fatal("config not applied")
	}
}

func TestRunningExampleEndToEnd(t *testing.T) {
	// The full §1.1 query: expected loss due to late deliveries to Joe.
	db := testDB()
	price, _ := db.CreateVariable("Normal", 100, 10)  // X1
	nyDur, _ := db.CreateVariable("Normal", 5, 2)     // X2
	bobPrice, _ := db.CreateVariable("Normal", 80, 5) // X3
	laDur, _ := db.CreateVariable("Normal", 4, 1)     // X4

	order := ctable.New("Order", "Cust", "ShipTo", "Price")
	order.MustAppend(ctable.NewTuple(ctable.String_("Joe"), ctable.String_("NY"), ctable.Symbolic(expr.NewVar(price))))
	order.MustAppend(ctable.NewTuple(ctable.String_("Bob"), ctable.String_("LA"), ctable.Symbolic(expr.NewVar(bobPrice))))
	shipping := ctable.New("Shipping", "Dest", "Duration")
	shipping.MustAppend(ctable.NewTuple(ctable.String_("NY"), ctable.Symbolic(expr.NewVar(nyDur))))
	shipping.MustAppend(ctable.NewTuple(ctable.String_("LA"), ctable.Symbolic(expr.NewVar(laDur))))
	db.Register(order)
	db.Register(shipping)

	joe, err := ctable.Select(order, ctable.Compare{Op: cond.EQ, Left: ctable.Col(0), Right: ctable.LitString("Joe")})
	if err != nil {
		t.Fatal(err)
	}
	late, err := ctable.Select(shipping, ctable.Compare{Op: cond.GE, Left: ctable.Col(1), Right: ctable.LitFloat(7)})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := ctable.EquiJoin(joe, late, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	result, err := ctable.Project(joined, []string{"Price"}, []ctable.Scalar{ctable.Col(2)})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := db.Sampler().ExpectedSum(result, 0)
	if err != nil {
		t.Fatal(err)
	}
	// E[X1] * P[X2 >= 7]: price independent of duration.
	wantP := 1 - 0.5*math.Erfc(-(7.0-5)/(2*math.Sqrt2))
	want := 100 * wantP
	if math.Abs(agg.Value-want) > want*0.1 {
		t.Fatalf("expected loss %v, want ~%v", agg.Value, want)
	}
}
