// Replication hooks: the read-only mode a replica database serves under,
// the applier marking that lets the replication subsystem replay the
// primary's statement log through the ordinary SQL path, and the catalog
// version counter lag accounting reads.
//
// Replication reuses the durability design wholesale (see durability.go):
// a replica that applies the same (seed, ordered statement log) pair is
// byte-identical to the primary — not merely convergent — so the only new
// machinery core needs is a gate that keeps everything except the log
// applier from mutating the replica's catalog.
package core

import (
	"errors"
	"sort"
)

// ErrReadOnly is the sentinel wrapped by every catalog-mutating statement
// rejected on a read-only replica; match it with errors.Is. The wrapping
// error names the primary writes should be sent to.
var ErrReadOnly = errors.New("core: read-only replica")

// SetReadOnly marks the whole database (every handle of this catalog)
// read-only, recording the primary's address for rejection messages.
// Catalog-mutating SQL statements on non-applier handles fail with a
// wrapped ErrReadOnly; session-local SET statements and all queries still
// run. Call it once at replica boot, before serving traffic.
func (db *DB) SetReadOnly(primary string) {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	db.cat.readOnly = true
	db.cat.primaryAddr = primary
}

// ReadOnlyPrimary reports whether the database is a read-only replica and,
// if so, the primary address writes should be redirected to.
func (db *DB) ReadOnlyPrimary() (primary string, readOnly bool) {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	return db.cat.primaryAddr, db.cat.readOnly
}

// MarkApplier marks this handle as a replication applier: a handle that
// replays the primary's statement log and is therefore exempt from the
// read-only gate. Mark a handle before it is shared across goroutines
// (replica boot, or applier session-handle creation); the flag is
// handle-local and is not inherited by Session.
func (db *DB) MarkApplier() { db.applier = true }

// IsApplier reports whether MarkApplier was called on this handle.
func (db *DB) IsApplier() bool { return db.applier }

// CatalogVersion returns the catalog's mutation version: a process-local
// counter that increments once per catalog-mutating statement applied
// (committed, recovered, or replicated) and once per snapshot loaded.
// Comparing versions across processes is only meaningful relative to a
// common boot path; replication lag accounting therefore pairs it with log
// sequence numbers, which are globally meaningful.
func (db *DB) CatalogVersion() uint64 { return db.cat.version.Load() }

// StatsScope is one named group of SHOW STATS rows contributed by a
// registered subsystem (e.g. the replication layer's "repl" scope).
type StatsScope struct {
	Scope  string
	Values map[string]float64
}

// RegisterStatsScope installs (or replaces) a subsystem's SHOW STATS
// contribution under the given scope name. fn is called on every SHOW
// STATS execution and must be safe for concurrent use.
func (db *DB) RegisterStatsScope(scope string, fn func() map[string]float64) {
	db.cat.scopeMu.Lock()
	defer db.cat.scopeMu.Unlock()
	if db.cat.scopes == nil {
		db.cat.scopes = map[string]func() map[string]float64{}
	}
	db.cat.scopes[scope] = fn
}

// StatsScopes evaluates every registered scope and returns the results
// sorted by scope name, so SHOW STATS output is stable across runs.
func (db *DB) StatsScopes() []StatsScope {
	db.cat.scopeMu.Lock()
	names := make([]string, 0, len(db.cat.scopes))
	fns := make([]func() map[string]float64, 0, len(db.cat.scopes))
	for n := range db.cat.scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fns = append(fns, db.cat.scopes[n])
	}
	db.cat.scopeMu.Unlock()
	out := make([]StatsScope, len(names))
	for i, n := range names {
		out[i] = StatsScope{Scope: n, Values: fns[i]()}
	}
	return out
}
