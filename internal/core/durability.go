// Durability hooks: the statement-commit choke point every catalog-mutating
// SQL statement passes through, and the MutationLog interface a write-ahead
// statement log (internal/wal) plugs into it.
//
// The design exploits the engine's core asset — determinism. A catalog is a
// pure function of the serialized sequence of mutating statements applied to
// it: DDL and DML never consult the sampler, and CREATE_VARIABLE allocates
// identifiers from a counter in statement order. Logging that sequence (and
// replaying it on a fresh database) therefore reconstructs the catalog
// byte-for-byte, including the random-variable allocator, so recovered and
// replicated instances answer every query bit-identically to the original.
// The one obligation is serialization: variable allocation inside one
// statement must not interleave with another statement's, which is exactly
// what the commit lock below guarantees whenever a log is attached.
package core

import (
	"errors"
	"fmt"

	"pip/internal/ctable"
)

// RootSessionID is the session identifier of the database handle returned
// by NewDB. Handles created by Session/WithConfig get successive ids.
const RootSessionID uint64 = 1

// ErrUnloggedMutation reports a catalog-mutating statement that cannot be
// made durable because its source text is unknown (raw-AST execution via
// ExecStmt) or its bound arguments are symbolic. It only fires when a
// mutation log is attached; without one, such statements execute normally.
var ErrUnloggedMutation = errors.New("core: statement mutates the catalog but cannot be logged")

// Mutation describes one catalog-mutating SQL statement as the write-ahead
// statement log records it: the statement text with its bound placeholder
// arguments, the session it executed in with that session's world seed (the
// seed context replay needs to reconstruct per-session settings), and
// whether execution returned an error. Failed statements are logged too:
// a statement may apply partial effects (rows appended, variables
// allocated) before failing, and because failures are deterministic,
// replaying the statement reproduces exactly those effects.
type Mutation struct {
	// Session identifies the issuing handle (RootSessionID for the root).
	Session uint64
	// Seed is the issuing session's world seed at commit time. Replay uses
	// it to materialize the session's handle with its original seed: a
	// handle created mid-replay would otherwise inherit root configuration
	// that may already include SET statements the original session, created
	// earlier, never saw.
	Seed uint64
	// Text is the statement source.
	Text string
	// Args are the bound ? placeholder arguments, in order.
	Args []ctable.Value
	// Failed records that execution returned an error.
	Failed bool
}

// MutationLog is the write-ahead statement log attached to a database.
// AppendMutation must make the record durable (per its own fsync policy)
// before returning: Commit acknowledges a statement to the caller only
// after AppendMutation succeeds, so acknowledged writes survive a crash.
type MutationLog interface {
	AppendMutation(m Mutation) error
}

// SetMutationLog attaches (or, with nil, detaches) the statement log shared
// by every handle of this database. Attach it after recovery and before
// serving traffic: statements replayed during recovery must not re-log.
func (db *DB) SetMutationLog(l MutationLog) {
	db.cat.commitMu.Lock()
	defer db.cat.commitMu.Unlock()
	db.cat.mlog = l
}

// SessionID returns this handle's session identifier (RootSessionID for
// the handle NewDB returned).
func (db *DB) SessionID() uint64 { return db.sid }

// EnsureSessionFloor bumps the session-id allocator so future handles get
// ids strictly greater than floor. Recovery calls it with the largest
// session id seen in the log, keeping post-restart records distinguishable
// from pre-crash ones.
func (db *DB) EnsureSessionFloor(floor uint64) {
	db.cat.mu.Lock()
	defer db.cat.mu.Unlock()
	if db.cat.nextSession <= floor {
		db.cat.nextSession = floor + 1
	}
}

// RunExclusive runs fn while holding the statement-commit lock: no mutating
// statement is mid-flight while fn executes, and none can start until it
// returns. The snapshot writer uses it to capture a catalog state that sits
// exactly on a log-record boundary.
func (db *DB) RunExclusive(fn func() error) error {
	db.cat.commitMu.Lock()
	defer db.cat.commitMu.Unlock()
	return fn()
}

// Commit is the statement-commit choke point: the SQL layer routes every
// catalog-mutating statement (DDL, DML, SET) through it. Without an
// attached log it simply runs apply. With one, it serializes the statement
// against all other mutations (so variable allocation order matches log
// order), runs apply, appends the record, and only then returns — so a
// statement is acknowledged only once it is durable. A log-append failure
// is returned even if apply succeeded: the caller must not treat the write
// as committed.
func (db *DB) Commit(text string, args []ctable.Value, apply func() error) error {
	cat := db.cat
	cat.commitMu.Lock()
	l := cat.mlog
	if l == nil {
		// No log: keep today's concurrency (statements interleave freely,
		// bounded only by the catalog lock's per-operation serialization).
		cat.commitMu.Unlock()
		err := apply()
		cat.version.Add(1)
		return err
	}
	defer cat.commitMu.Unlock()
	if text == "" {
		return fmt.Errorf("%w: no statement text (use the text-based Exec surface, not raw-AST ExecStmt)", ErrUnloggedMutation)
	}
	// Unloggable statements must be rejected before apply runs: once the
	// catalog has mutated, a failure to log it leaves state the log cannot
	// reproduce, and the store fail-stops to protect replay.
	for i, v := range args {
		if v.IsSymbolic() {
			return fmt.Errorf("%w: argument %d is symbolic (arguments must bind literal scalars)", ErrUnloggedMutation, i+1)
		}
	}
	applyErr := apply()
	cat.version.Add(1)
	m := Mutation{
		Session: db.sid,
		Seed:    db.Config().WorldSeed,
		Text:    text,
		Args:    args,
		Failed:  applyErr != nil,
	}
	if logErr := l.AppendMutation(m); logErr != nil {
		if applyErr != nil {
			return errors.Join(applyErr, logErr)
		}
		return fmt.Errorf("core: statement applied but not durable: %w", logErr)
	}
	return applyErr
}
