package core

import (
	"strings"
	"testing"

	"pip/internal/ctable"
)

func TestLoadCSV(t *testing.T) {
	db := testDB()
	src := "name,qty,active\napple,3,true\npear,,false\n"
	tb, err := db.LoadCSV("items", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 || len(tb.Schema) != 3 {
		t.Fatalf("shape: %s", tb)
	}
	if tb.Tuples[0].Values[0].S != "apple" {
		t.Fatalf("string cell %v", tb.Tuples[0].Values[0])
	}
	if f, _ := tb.Tuples[0].Values[1].AsFloat(); f != 3 {
		t.Fatalf("numeric cell %v", tb.Tuples[0].Values[1])
	}
	if !tb.Tuples[1].Values[1].IsNull() {
		t.Fatal("empty cell not NULL")
	}
	if tb.Tuples[0].Values[2].Kind != ctable.KindBool || !tb.Tuples[0].Values[2].B {
		t.Fatalf("bool cell %v", tb.Tuples[0].Values[2])
	}
	// Registered in the catalog.
	if _, err := db.Table("items"); err != nil {
		t.Fatal("table not registered")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := testDB()
	if _, err := db.LoadCSV("bad", strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := db.LoadCSV("bad", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := testDB()
	src := "k,v\nx,1.5\ny,2.5\n"
	tb, err := db.LoadCSV("rt", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(tb, &sb); err != nil {
		t.Fatal(err)
	}
	db2 := testDB()
	tb2, err := db2.LoadCSV("rt2", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != tb.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", tb2.Len(), tb.Len())
	}
	for i := range tb.Tuples {
		for j := range tb.Tuples[i].Values {
			if !tb.Tuples[i].Values[j].Equal(tb2.Tuples[i].Values[j]) {
				t.Fatalf("cell (%d,%d) changed: %v vs %v", i, j,
					tb.Tuples[i].Values[j], tb2.Tuples[i].Values[j])
			}
		}
	}
}

func TestLoadCSVThenQuery(t *testing.T) {
	db := testDB()
	if _, err := db.LoadCSV("sales", strings.NewReader("region,amount\neast,10\nwest,20\neast,5\n")); err != nil {
		t.Fatal(err)
	}
	tb, _ := db.Table("sales")
	out, err := db.GroupedAggregate(tb, []int{0}, 1, AggSum, "total")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups %d", out.Len())
	}
}
