package core

import (
	"math"
	"testing"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/expr"
)

func condFromVar(v *expr.Variable) cond.Condition {
	return cond.FromClause(cond.Clause{
		cond.NewAtom(expr.NewVar(v), cond.GT, expr.Const(0.5)),
	})
}

func repairInput() *ctable.Table {
	tb := ctable.New("opts", "city", "route", "weight")
	tb.MustAppend(ctable.NewTuple(ctable.String_("NY"), ctable.String_("air"), ctable.Float(3)))
	tb.MustAppend(ctable.NewTuple(ctable.String_("NY"), ctable.String_("sea"), ctable.Float(1)))
	tb.MustAppend(ctable.NewTuple(ctable.String_("LA"), ctable.String_("air"), ctable.Float(1)))
	return tb
}

func TestRepairKeyBasics(t *testing.T) {
	db := testDB()
	out, err := db.RepairKey(repairInput(), []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows %d", out.Len())
	}
	if len(out.Schema) != 2 {
		t.Fatalf("weight column not consumed: %v", out.Schema.Names())
	}
	// Row confidences: NY/air = 0.75, NY/sea = 0.25, LA/air = 1.
	wants := []float64{0.75, 0.25, 1}
	for i, w := range wants {
		r := db.Conf(&out.Tuples[i])
		if !r.Exact {
			t.Fatalf("row %d conf not exact", i)
		}
		if math.Abs(r.Prob-w) > 1e-12 {
			t.Fatalf("row %d conf %v, want %v", i, r.Prob, w)
		}
	}
}

func TestRepairKeyMutualExclusion(t *testing.T) {
	// Exactly one row per key group exists in every world: expected count
	// per group is 1, and a histogram never sees both NY rows together.
	db := testDB()
	out, err := db.RepairKey(repairInput(), []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := db.Sampler().ExpectedCount(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cnt.Value-2) > 1e-9 {
		t.Fatalf("E[count] = %v, want 2 (one per group)", cnt.Value)
	}
	// World-sample: per world, the two NY rows are mutually exclusive.
	ny := &ctable.Table{Name: "ny", Schema: out.Schema, Tuples: out.Tuples[:2]}
	// Mark each row with value 1; the per-world sum must always be 1.
	one := ctable.New("ny1", "v")
	for i := range ny.Tuples {
		tup := ctable.NewTuple(ctable.Float(1))
		tup.Cond = ny.Tuples[i].Cond
		one.MustAppend(tup)
	}
	hist, err := db.Sampler().AggregateHistogram(one, 0, sumFoldForTest, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range hist {
		if v != 1 {
			t.Fatalf("mutual exclusion violated: world sum %v", v)
		}
	}
}

func sumFoldForTest(present []float64) float64 {
	total := 0.0
	for _, v := range present {
		total += v
	}
	return total
}

func TestRepairKeyExpectedSum(t *testing.T) {
	// Weighted choice over payoffs: E[payoff] = sum w_i * v_i.
	db := testDB()
	tb := ctable.New("bets", "game", "payoff", "weight")
	tb.MustAppend(ctable.NewTuple(ctable.String_("g"), ctable.Float(100), ctable.Float(1)))
	tb.MustAppend(ctable.NewTuple(ctable.String_("g"), ctable.Float(0), ctable.Float(3)))
	out, err := db.RepairKey(tb, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := db.Sampler().ExpectedSum(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Value-25) > 1e-9 {
		t.Fatalf("E[payoff] = %v, want 25", sum.Value)
	}
}

func TestRepairKeyErrors(t *testing.T) {
	db := testDB()
	tb := repairInput()
	if _, err := db.RepairKey(tb, []int{0}, 9); err == nil {
		t.Fatal("bad weight column accepted")
	}
	if _, err := db.RepairKey(tb, []int{9}, 2); err == nil {
		t.Fatal("bad key column accepted")
	}
	// Negative weight.
	bad := ctable.New("b", "k", "w")
	bad.MustAppend(ctable.NewTuple(ctable.String_("a"), ctable.Float(-1)))
	if _, err := db.RepairKey(bad, []int{0}, 1); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Zero total weight.
	zero := ctable.New("z", "k", "w")
	zero.MustAppend(ctable.NewTuple(ctable.String_("a"), ctable.Float(0)))
	if _, err := db.RepairKey(zero, []int{0}, 1); err == nil {
		t.Fatal("zero-weight group accepted")
	}
	// Probabilistic input is rejected.
	v, _ := db.CreateVariable("Uniform", 0, 1)
	prob := ctable.New("p", "k", "w")
	tup := ctable.NewTuple(ctable.String_("a"), ctable.Float(1))
	tup.Cond = condFromVar(v)
	prob.MustAppend(tup)
	if _, err := db.RepairKey(prob, []int{0}, 1); err == nil {
		t.Fatal("probabilistic input accepted")
	}
}

func TestRepairKeyWholeTableKey(t *testing.T) {
	// Keying on a constant column makes the whole table one choice.
	db := testDB()
	tb := ctable.New("t", "k", "v", "w")
	tb.MustAppend(ctable.NewTuple(ctable.String_("x"), ctable.Float(1), ctable.Float(1)))
	tb.MustAppend(ctable.NewTuple(ctable.String_("x"), ctable.Float(2), ctable.Float(1)))
	tb.MustAppend(ctable.NewTuple(ctable.String_("x"), ctable.Float(3), ctable.Float(2)))
	out, err := db.RepairKey(tb, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := db.Sampler().ExpectedCount(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cnt.Value-1) > 1e-9 {
		t.Fatalf("E[count] = %v, want 1", cnt.Value)
	}
}
