package core

import (
	"bytes"
	"errors"
	"testing"

	"pip/internal/cond"
	"pip/internal/ctable"
	"pip/internal/expr"
)

// populate fills db with a catalog exercising every encodable shape: all
// scalar kinds, symbolic cells with nested expression trees, c-table
// conditions, and multiple tables.
func populate(t *testing.T, db *DB) {
	t.Helper()
	scalars := ctable.New("scalars", "a", "b", "c", "d", "e")
	db.Register(scalars)
	row := ctable.Tuple{Values: []ctable.Value{
		ctable.Null(), ctable.Float(3.75), ctable.Int(-42), ctable.String_("hello"), ctable.Bool(true),
	}}
	if err := db.AppendRow(scalars, row); err != nil {
		t.Fatal(err)
	}

	v1, err := db.CreateVariable("Normal", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.CreateVariable("Exponential", 2)
	if err != nil {
		t.Fatal(err)
	}
	sym := ctable.New("sym", "x")
	db.Register(sym)
	// x = -(v1 + 3) * v2, guarded by (v1 > 90) OR (v2 <= 1).
	e := expr.Bin{
		Op:    expr.OpMul,
		Left:  expr.Neg{X: expr.Bin{Op: expr.OpAdd, Left: expr.NewVar(v1), Right: expr.Const(3)}},
		Right: expr.NewVar(v2),
	}
	c := cond.Condition{Clauses: []cond.Clause{
		{cond.NewAtom(expr.NewVar(v1), cond.GT, expr.Const(90))},
		{cond.NewAtom(expr.NewVar(v2), cond.LE, expr.Const(1))},
	}}
	if err := db.AppendRow(sym, ctable.Tuple{Values: []ctable.Value{ctable.Symbolic(e)}, Cond: c}); err != nil {
		t.Fatal(err)
	}
}

func encode(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.EncodeCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := testDB()
	populate(t, db)
	first := encode(t, db)

	db2 := testDB()
	if err := db2.DecodeCatalog(bytes.NewReader(first)); err != nil {
		t.Fatal(err)
	}
	second := encode(t, db2)
	if !bytes.Equal(first, second) {
		t.Fatalf("round-trip not bit-identical: %d vs %d bytes", len(first), len(second))
	}

	// The variable allocator must round-trip too: the next variable created
	// on each side gets the same identifier.
	w1, err := db.CreateVariable("Normal", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := db2.CreateVariable("Normal", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Key.ID != w2.Key.ID {
		t.Fatalf("allocator diverged after decode: %d vs %d", w1.Key.ID, w2.Key.ID)
	}
}

func TestSnapshotEncodingDeterministic(t *testing.T) {
	a, b := testDB(), testDB()
	populate(t, a)
	populate(t, b)
	if !bytes.Equal(encode(t, a), encode(t, b)) {
		t.Fatal("identical construction encoded to different bytes")
	}
	if !bytes.Equal(encode(t, a), encode(t, a)) {
		t.Fatal("re-encoding the same catalog gave different bytes")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	db := testDB()
	populate(t, db)
	good := encode(t, db)

	// Truncations at every prefix length and a bit flip at every byte must
	// all surface ErrBadSnapshot — and leave the target database untouched.
	check := func(t *testing.T, raw []byte) {
		t.Helper()
		fresh := testDB()
		err := fresh.DecodeCatalog(bytes.NewReader(raw))
		if err == nil {
			// A flipped bit inside a float payload or string body can decode
			// to a different but structurally valid catalog; that is the
			// CRC's job to catch (it wraps this codec in wal files). Only
			// structural failures must error here.
			return
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("corruption error not typed: %v", err)
		}
		if n := len(fresh.TableNames()); n != 0 {
			t.Fatalf("failed decode left %d tables behind", n)
		}
	}
	for cut := 0; cut < len(good); cut += 7 {
		check(t, good[:cut])
	}
	for i := 0; i < len(good); i++ {
		mut := bytes.Clone(good)
		mut[i] ^= 0x40
		check(t, mut)
	}
}

func TestSnapshotDecodeIsAtomic(t *testing.T) {
	db := testDB()
	populate(t, db)
	good := encode(t, db)

	// Decode into a database that already has state, from a corrupt stream:
	// the existing state must survive untouched.
	target := testDB()
	target.Register(ctable.New("keep", "k"))
	if err := target.DecodeCatalog(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	names := target.TableNames()
	if len(names) != 1 || names[0] != "keep" {
		t.Fatalf("failed decode corrupted existing catalog: %v", names)
	}

	// And a successful decode replaces it wholesale.
	if err := target.DecodeCatalog(bytes.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, target), good) {
		t.Fatal("successful decode did not install the snapshot state")
	}
}
