// Applier: the replay engine shared by crash recovery and replication. It
// re-executes logged statements, in sequence order, through the ordinary
// SQL layer — the same path that produced them — and verifies the
// determinism contract as it goes: a statement whose outcome contradicts
// the log stops the applier with ErrReplayDiverged rather than letting a
// silently wrong catalog serve reads.
package wal

import (
	"context"
	"errors"
	"fmt"

	"pip/internal/core"
	"pip/internal/sampler"
	"pip/internal/sql"
)

// Applier replays log records onto a database. Records must arrive in
// sequence order with no gaps (ErrGap otherwise); each logged session gets
// its own handle so per-session SET statements do not clobber the root
// configuration, mirroring how the statements originally executed. Handle
// creation order (first appearance in the log) is itself deterministic, so
// two databases applying the same records end up byte-identical. Not safe
// for concurrent use; one applier owns the replay stream.
type Applier struct {
	root    *core.DB
	handles map[uint64]*core.DB
	applied uint64
	maxSess uint64
}

// NewApplier prepares replay onto root of the records after applied (the
// snapshot coverage recovery loaded, or 0 for an empty catalog): the first
// Apply must carry sequence number applied+1. root is used directly for
// root-session records, so root SET statements land on the configuration
// every future session inherits.
func NewApplier(root *core.DB, applied uint64) *Applier {
	return &Applier{
		root:    root,
		handles: map[uint64]*core.DB{core.RootSessionID: root},
		applied: applied,
	}
}

// Applied returns the sequence number of the last applied record.
func (a *Applier) Applied() uint64 { return a.applied }

// MaxSession returns the largest session id seen so far (0 if none beyond
// the root). The session-id allocator is bumped past it as records apply,
// so handles created after replay never collide with logged sessions.
func (a *Applier) MaxSession() uint64 { return a.maxSess }

// Apply re-executes one record. The returned errors are typed: ErrGap for
// an out-of-order sequence number, ErrReplayDiverged when the statement's
// outcome contradicts the logged one. Both are terminal — the applier's
// catalog can no longer be trusted to match the log, and the caller must
// fail-stop rather than continue.
func (a *Applier) Apply(ctx context.Context, r Record) error {
	if r.Seq != a.applied+1 {
		return fmt.Errorf("%w: record %d applied where %d expected", ErrGap, r.Seq, a.applied+1)
	}
	if r.M.Session > a.maxSess {
		a.maxSess = r.M.Session
		// Keep the allocator ahead of the log so sessions created on this
		// database while (or after) records apply stay distinguishable
		// from the logged ones.
		a.root.EnsureSessionFloor(a.maxSess)
	}
	h := a.handles[r.M.Session]
	if h == nil {
		// Session() inherits the root configuration as of this moment in
		// replay, but the original session inherited it at creation time —
		// possibly before root SET statements replay has already applied.
		// The record carries the session's world seed so its creation
		// context does not depend on replay timing: restore it here; the
		// session's own SETs, logged in order, keep it current from then
		// on. (The root handle never takes this path: its seed is boot
		// configuration, the "seed" half of the (seed, statement log) pair
		// replay reproduces.)
		h = a.root.Session()
		h.MarkApplier()
		h.UpdateConfig(func(c *sampler.Config) { c.WorldSeed = r.M.Seed })
		a.handles[r.M.Session] = h
	}
	_, execErr := sql.ExecContext(ctx, h, r.M.Text, r.M.Args...)
	if (execErr != nil) != r.M.Failed {
		if execErr == nil {
			execErr = errors.New("replay succeeded")
		}
		return fmt.Errorf("%w: record %d %.80q logged failed=%v but: %w",
			ErrReplayDiverged, r.Seq, r.M.Text, r.M.Failed, execErr)
	}
	a.applied = r.Seq
	return nil
}
