// Recovery: load the newest readable snapshot, scan the segment chain for
// the records it does not cover, and replay them through the SQL layer.
// Replay works because the engine is deterministic — re-executing the
// logged statement sequence reproduces the catalog exactly, including the
// random-variable allocator — and recovery verifies that determinism as it
// goes: a statement whose outcome contradicts the log aborts recovery with
// ErrReplayDiverged instead of serving a silently wrong catalog.
package wal

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pip/internal/core"
)

// RecoveryInfo describes what recovery found and did: which snapshot
// seeded the catalog, how much log was replayed, and whether a torn tail
// was dropped.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence number the loaded snapshot covers
	// through (0 when recovery started from an empty catalog).
	SnapshotSeq uint64
	// SnapshotPath is the loaded snapshot file ("" if none).
	SnapshotPath string
	// SkippedSnapshots lists newer snapshots that failed validation and
	// were passed over for an older one, with the reason each was skipped.
	SkippedSnapshots []string
	// Replayed counts log records re-executed on top of the snapshot.
	Replayed int
	// LastSeq is the sequence number of the last durable record; appends
	// resume at LastSeq+1.
	LastSeq uint64
	// MaxSession is the largest session id seen in replayed records (0 if
	// none); the session allocator is advanced past it.
	MaxSession uint64
	// TailTruncated is the number of bytes dropped from the end of the
	// final segment because they did not form a complete valid record.
	TailTruncated int64
	// TailErr is the typed error that ended the log scan — ErrTruncatedTail
	// or ErrCorruptRecord at the tail of the final segment, where a crash
	// mid-append legitimately leaves partial bytes. It is reported here
	// rather than failing recovery; nil when the log ended cleanly. Damage
	// is only tolerated as a tail when no intact record follows it —
	// otherwise recovery fails with ErrCorruptRecord instead of silently
	// dropping the acknowledged records beyond the corruption.
	TailErr error
	// Duration is the wall time recovery took, snapshot load included.
	Duration time.Duration
}

// layout is what recovery learned about the on-disk files, for the store
// to resume appending.
type layout struct {
	lastSeq     uint64 // last durable record; appends resume after it
	activeSeg   string // final segment's path, "" if a fresh one is needed
	activeFirst uint64 // final segment's first sequence number
}

// Restore rebuilds db from the data directory without opening it for
// writing: snapshots and segments are read, never modified (a torn tail is
// reported in RecoveryInfo but not truncated). It is the read-only half of
// Open — what a replica, an offline inspector, or a bit-identity test uses
// to reconstruct the exact catalog a crashed server had acknowledged.
func Restore(dir string, db *core.DB) (*RecoveryInfo, error) {
	info, _, err := recoverState(dir, db, false)
	return info, err
}

// recoverState performs recovery into db: newest readable snapshot, then
// replay of every record past it, in sequence order. With repair set it
// also truncates a torn final-segment tail so the store can append after
// it. Hard failures (mid-log corruption, gaps, replay divergence, every
// snapshot unreadable with no full log to fall back on) return a typed
// error and leave the catalog in an unspecified partial state — callers
// must not serve from db after an error.
func recoverState(dir string, db *core.DB, repair bool) (*RecoveryInfo, layout, error) {
	//pipvet:allow detsource recovery-duration telemetry, never feeds sampled state
	start := time.Now()
	info := &RecoveryInfo{}
	var lay layout

	segs, snaps, err := listDir(dir)
	if err != nil {
		return info, lay, err
	}

	// Newest readable snapshot wins; unreadable ones are recorded and
	// skipped. With none readable the log itself must reach back to
	// record 1, otherwise history is unrecoverable.
	loaded := false
	for i := len(snaps) - 1; i >= 0 && !loaded; i-- {
		path := filepath.Join(dir, snapName(snaps[i]))
		if rerr := readSnapshotFile(path, snaps[i], db); rerr != nil {
			info.SkippedSnapshots = append(info.SkippedSnapshots, rerr.Error())
			continue
		}
		info.SnapshotSeq, info.SnapshotPath = snaps[i], path
		loaded = true
	}
	if !loaded && len(snaps) > 0 && (len(segs) == 0 || segs[0] != 1) {
		return info, lay, fmt.Errorf("%w: no readable snapshot and the log does not start at record 1 (%s)",
			ErrSnapshotCorrupt, strings.Join(info.SkippedSnapshots, "; "))
	}
	snapSeq := info.SnapshotSeq

	// Pick the segments that can hold records past the snapshot: the last
	// segment starting at or before snapSeq+1, plus everything after it.
	startIdx := -1
	for i, first := range segs {
		if first > snapSeq+1 {
			break
		}
		startIdx = i
	}
	if startIdx == -1 && len(segs) > 0 {
		return info, lay, fmt.Errorf("%w: snapshot covers through record %d but the oldest segment starts at %d",
			ErrGap, snapSeq, segs[0])
	}

	prev := snapSeq // last sequence number accounted for
	if startIdx >= 0 {
		prev = segs[startIdx] - 1
	}
	var replay []Record
	for i := startIdx; i >= 0 && i < len(segs); i++ {
		first := segs[i]
		final := i == len(segs)-1
		if first != prev+1 {
			return info, lay, fmt.Errorf("%w: segment %s starts at record %d, expected %d",
				ErrGap, segName(first), first, prev+1)
		}
		path := filepath.Join(dir, segName(first))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return info, lay, rerr
		}
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			if final && strings.HasPrefix(segMagic, string(data)) {
				// The crash hit during segment creation: the file holds a
				// prefix of the magic and nothing else. No records lost.
				info.TailErr = fmt.Errorf("%w: segment %s cut off during creation", ErrTruncatedTail, segName(first))
				info.TailTruncated = int64(len(data))
				if repair {
					if werr := rewriteSegmentHeader(dir, path); werr != nil {
						return info, lay, werr
					}
				}
				lay.activeSeg, lay.activeFirst = path, first
				break
			}
			return info, lay, fmt.Errorf("%w: segment %s: bad magic", ErrCorruptRecord, segName(first))
		}
		recs, goodLen, tailErr := scanSegment(data[len(segMagic):], first)
		if tailErr != nil && !final {
			// Corruption with more segments after it: records beyond this
			// point were acknowledged and still exist downstream, so
			// dropping them silently is not an option.
			return info, lay, fmt.Errorf("segment %s: %w", segName(first), tailErr)
		}
		if tailErr != nil {
			// A genuine torn tail is a crash artifact: partial bytes from
			// one interrupted append, extending to end of file. An intact
			// record past the bad frame means the log kept going — the
			// damage is mid-segment corruption (a bit flip, not a crash)
			// and the records beyond it were acknowledged, so truncating
			// them away silently is not an option either.
			if off := tailHoldsRecord(data[len(segMagic)+goodLen:], first+uint64(len(recs))); off >= 0 {
				return info, lay, fmt.Errorf("%w: segment %s: intact record %d bytes past the damage at offset %d — mid-segment corruption, not a torn tail (%w)",
					ErrCorruptRecord, segName(first), off, goodLen, tailErr)
			}
			info.TailErr = fmt.Errorf("segment %s: %w", segName(first), tailErr)
			info.TailTruncated = int64(len(data) - len(segMagic) - goodLen)
			if repair {
				if werr := truncateSegment(dir, path, int64(len(segMagic)+goodLen)); werr != nil {
					return info, lay, werr
				}
			}
		}
		for _, r := range recs {
			if r.Seq > snapSeq {
				replay = append(replay, r)
			}
			prev = r.Seq
		}
		if final {
			lay.activeSeg, lay.activeFirst = path, first
		}
	}
	if prev < snapSeq {
		// The log ends before the loaded snapshot's coverage — e.g. the
		// final record was torn away while the snapshot that already
		// includes it survived. The snapshot is authoritative (no record
		// past its coverage exists to replay), so resume after it in a
		// fresh segment: appending at sequence numbers the snapshot already
		// covers would leave records the next recovery silently skips.
		prev = snapSeq
		lay.activeSeg, lay.activeFirst = "", 0
	}
	lay.lastSeq = prev

	// Replay through the shared applier (apply.go) — the same engine the
	// replication follower uses, so recovery and replication reproduce the
	// catalog by literally the same code path.
	ap := NewApplier(db, snapSeq)
	for _, r := range replay {
		if aerr := ap.Apply(context.Background(), r); aerr != nil {
			return info, lay, aerr
		}
		info.Replayed++
	}
	info.MaxSession = ap.MaxSession()
	info.LastSeq = lay.lastSeq
	//pipvet:allow detsource recovery-duration telemetry, never feeds sampled state
	info.Duration = time.Since(start)
	return info, lay, nil
}

// tailHoldsRecord scans the dropped tail bytes of a final segment for a
// complete, CRC-valid record whose sequence number is at or past next —
// evidence the bytes are not one interrupted append but mid-segment damage
// with acknowledged records beyond it. It returns the offset of the first
// such record within tail, or -1. The damage may sit in a length field, so
// frame boundaries are lost and every byte offset is tried; the CRC plus a
// full payload decode plus the sequence check make a false positive on
// genuine torn-append garbage practically impossible. Records with
// sequence numbers below next are ignored: a duplicate of an
// already-recovered frame loses nothing when dropped.
func tailHoldsRecord(tail []byte, next uint64) int {
	for off := 0; off+8 < len(tail); off++ {
		length := int(binary.LittleEndian.Uint32(tail[off:]))
		if length == 0 || length > maxRecordLen || off+8+length > len(tail) {
			continue
		}
		payload := tail[off+8 : off+8+length]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(tail[off+4:]) {
			continue
		}
		if r, err := DecodePayload(payload); err == nil && r.Seq >= next {
			return off
		}
	}
	return -1
}

// rewriteSegmentHeader resets a creation-torn segment file to exactly the
// magic header, durably.
func rewriteSegmentHeader(dir, path string) error {
	if err := os.WriteFile(path, []byte(segMagic), 0o644); err != nil {
		return err
	}
	if err := syncFile(path); err != nil {
		return err
	}
	return syncDir(dir)
}

// truncateSegment durably cuts a segment file to size, dropping a torn
// tail.
func truncateSegment(dir, path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	if err := syncFile(path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncFile fsyncs the file at path.
func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
