// Store: the live write-ahead log a running database appends to. Open
// recovers the data directory, resumes the final segment (or starts a
// fresh one), and attaches itself to the database's statement-commit hook,
// after which every catalog-mutating statement is appended — and, with
// Fsync on, synced — before the statement is acknowledged.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pip/internal/core"
	"pip/internal/obs"
)

// Store is an open write-ahead log bound to one database. It implements
// core.MutationLog; Open attaches it, Close detaches it. All methods are
// safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	db   *core.DB

	mu          sync.Mutex
	f           *os.File // active segment, positioned at its end
	segFirst    uint64   // active segment's first sequence number
	seq         uint64   // last appended sequence number
	lastSnapSeq uint64   // sequence the newest snapshot covers through
	sinceSnap   int      // records appended since that snapshot
	lastSnapErr string   // most recent automatic-snapshot failure
	poisoned    error    // first append/sync failure; fail-stop, see AppendMutation
	closed      bool
	buf         []byte          // scratch frame buffer, reused across appends
	subs        []*Subscription // live tail-follow subscriptions (subscribe.go)

	records   atomic.Uint64
	bytes     atomic.Uint64
	fsyncs    atomic.Uint64
	snapshots atomic.Uint64
	fsyncHist *obs.Histogram
	recovery  RecoveryInfo

	snapCh    chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// Stats is a point-in-time snapshot of a store's counters, rendered by the
// server's /metrics endpoint.
type Stats struct {
	// Records and Bytes count appends by this process (recovery replays
	// are not appends and are excluded).
	Records, Bytes uint64
	// Fsyncs counts log-file syncs; FsyncSeconds is their latency
	// distribution.
	Fsyncs       uint64
	FsyncSeconds obs.HistogramSnapshot
	// Snapshots counts catalog snapshots taken by this process.
	Snapshots uint64
	// LastSeq is the sequence number of the newest durable record;
	// SnapshotSeq is the record the newest snapshot covers through, and
	// SinceSnapshot how many records have accumulated past it.
	LastSeq, SnapshotSeq uint64
	SinceSnapshot        int
	// LastSnapshotError is the most recent automatic-snapshot failure
	// ("" if none); automatic snapshots retry on the next trigger.
	LastSnapshotError string
	// Poisoned is the append/sync failure that fail-stopped the store (""
	// while healthy). Once set, every mutation is refused with ErrPoisoned
	// until the process restarts and recovers.
	Poisoned string
	// Recovery reports what Open's recovery pass found and did.
	Recovery RecoveryInfo
}

// Open recovers the data directory into db (creating the directory if
// needed), opens the log for appending, attaches the store to db's
// statement-commit hook, and — when opts.SnapshotEvery is set — starts the
// automatic snapshot loop. db must be the root handle of a database that
// is not yet serving statements; on success every subsequent
// catalog-mutating statement on any handle is logged before it is
// acknowledged. The returned RecoveryInfo tells the caller what was
// restored (check its TailErr to log dropped torn tails).
func Open(dir string, db *core.DB, opts Options) (*Store, *RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	info, lay, err := recoverState(dir, db, true)
	if err != nil {
		return nil, info, err
	}
	// recoverState guarantees lastSeq >= SnapshotSeq; the guard keeps a
	// violation from wrapping the subtraction into a huge negative count
	// that would defer automatic snapshots indefinitely.
	sinceSnap := 0
	if lay.lastSeq > info.SnapshotSeq {
		sinceSnap = int(lay.lastSeq - info.SnapshotSeq)
	}
	s := &Store{
		dir:         dir,
		opts:        opts,
		db:          db,
		seq:         lay.lastSeq,
		lastSnapSeq: info.SnapshotSeq,
		sinceSnap:   sinceSnap,
		fsyncHist:   obs.NewHistogram(obs.ExpBuckets(1e-5, 4, 10)), // 10µs .. ~2.6s
		recovery:    *info,
	}
	if lay.activeSeg != "" {
		f, ferr := os.OpenFile(lay.activeSeg, os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return nil, info, ferr
		}
		s.f, s.segFirst = f, lay.activeFirst
	} else if err := s.startSegmentLocked(s.seq + 1); err != nil {
		return nil, info, err
	}
	if opts.SnapshotEvery > 0 {
		s.snapCh = make(chan struct{}, 1)
		s.done = make(chan struct{})
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	db.SetMutationLog(s)
	return s, info, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// AppendMutation implements core.MutationLog: frame the statement, append
// it to the active segment, and (with Fsync on) sync before returning.
// The commit hook calls it while holding the statement-commit lock, so
// records land in exactly the order statements applied.
func (s *Store) AppendMutation(m core.Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned != nil {
		return fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
	}
	frame, err := AppendRecord(s.buf[:0], Record{Seq: s.seq + 1, M: m})
	if err != nil {
		// Nothing reached the disk, but the statement already applied in
		// memory with no record of it, so the running catalog is no longer
		// the one the log replays to. Fail-stop (see below).
		return s.poison(fmt.Errorf("encode record %d: %w", s.seq+1, err))
	}
	s.buf = frame[:0]
	if _, err := s.f.Write(frame); err != nil {
		// A short write leaves torn bytes mid-file: were appends to
		// continue at seq+1, every later frame would sit behind the tear
		// and recovery would truncate them all as a torn tail. Fail-stop:
		// the statement is never acknowledged (recovery rightly drops any
		// partial bytes), and no further mutation is accepted, so nothing
		// acknowledged can land beyond the damage.
		return s.poison(fmt.Errorf("append record %d: %w", s.seq+1, err))
	}
	if s.opts.Fsync {
		//pipvet:allow detsource fsync-latency telemetry, never feeds sampled state
		t := time.Now()
		if err := s.f.Sync(); err != nil {
			// The frame may or may not have reached the disk. Retrying at
			// the same sequence number would duplicate it if it did — a gap
			// recovery refuses to boot on — so fail-stop here too.
			return s.poison(fmt.Errorf("sync record %d: %w", s.seq+1, err))
		}
		//pipvet:allow detsource fsync-latency telemetry, never feeds sampled state
		s.fsyncHist.Observe(time.Since(t).Seconds())
		s.fsyncs.Add(1)
	}
	s.seq++
	s.sinceSnap++
	s.records.Add(1)
	s.bytes.Add(uint64(len(frame)))
	// The record is durable; hand it to tail-follow subscribers while still
	// holding s.mu, so delivery order is commit order with no gaps even
	// across a concurrent Subscribe, rotation, or prune.
	s.notifySubscribersLocked(Record{Seq: s.seq, M: m})
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		select {
		case s.snapCh <- struct{}{}:
		default: // one is already pending
		}
	}
	return nil
}

// poison latches the first append failure, fail-stopping the store: every
// later AppendMutation or Snapshot is refused with ErrPoisoned until the
// process restarts and recovers. Returns the wrapped cause for the caller
// to report. Caller holds s.mu.
func (s *Store) poison(cause error) error {
	s.poisoned = cause
	return fmt.Errorf("wal: %w", cause)
}

// Snapshot captures the catalog as of the last appended record into a new
// snapshot file, rotates the log to a fresh segment, and prunes files made
// redundant by snapshot retention (the two newest snapshots are kept). It
// runs under the statement-commit lock, so the captured state sits exactly
// on a record boundary; with no records since the last snapshot it is a
// no-op.
func (s *Store) Snapshot() error {
	return s.db.RunExclusive(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return ErrClosed
		}
		if s.poisoned != nil {
			// After a failed append the catalog holds a statement the log
			// does not; a snapshot would persist that divergence.
			return fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
		}
		if s.seq == s.lastSnapSeq {
			return nil
		}
		if _, err := writeSnapshotFile(s.dir, s.seq, s.db); err != nil {
			return err
		}
		s.snapshots.Add(1)
		if err := s.f.Sync(); err != nil {
			return err
		}
		old := s.f
		if err := s.startSegmentLocked(s.seq + 1); err != nil {
			s.f = old // keep appending to the previous segment
			return err
		}
		old.Close()
		s.lastSnapSeq = s.seq
		s.sinceSnap = 0
		s.prune()
		return nil
	})
}

// Close takes the store out of the database's commit path, stops the
// snapshot loop, and syncs and closes the active segment. It does not take
// a final snapshot — callers wanting one (e.g. graceful shutdown) call
// Snapshot first. Safe to call more than once.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.db.SetMutationLog(nil)
		if s.done != nil {
			close(s.done)
		}
		s.wg.Wait()
		s.mu.Lock()
		defer s.mu.Unlock()
		s.closed = true
		s.closeSubscribersLocked(ErrClosed)
		if s.f != nil {
			err = s.f.Sync()
			if cerr := s.f.Close(); err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Stats returns a point-in-time copy of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	seq, snapSeq, since, snapErr := s.seq, s.lastSnapSeq, s.sinceSnap, s.lastSnapErr
	poisoned := ""
	if s.poisoned != nil {
		poisoned = s.poisoned.Error()
	}
	s.mu.Unlock()
	return Stats{
		Records:           s.records.Load(),
		Bytes:             s.bytes.Load(),
		Fsyncs:            s.fsyncs.Load(),
		FsyncSeconds:      s.fsyncHist.Snapshot(),
		Snapshots:         s.snapshots.Load(),
		LastSeq:           seq,
		SnapshotSeq:       snapSeq,
		SinceSnapshot:     since,
		LastSnapshotError: snapErr,
		Poisoned:          poisoned,
		Recovery:          s.recovery,
	}
}

// NewestSnapshot reports the newest on-disk snapshot: the sequence number
// it covers through and its full path (ok is false when none exists yet).
// The path stays valid until two newer snapshots have been taken — prune
// always retains the two newest — so a reader that opens it promptly never
// races the pruner.
func (s *Store) NewestSnapshot() (seq uint64, path string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, snaps, err := listDir(s.dir)
	if err != nil || len(snaps) == 0 {
		return 0, "", false
	}
	seq = snaps[len(snaps)-1]
	return seq, filepath.Join(s.dir, snapName(seq)), true
}

// startSegmentLocked creates and durably initializes the segment whose
// first record will be first, and makes it the active segment. Callers
// hold s.mu (or are inside Open, before the store is shared).
func (s *Store) startSegmentLocked(first uint64) error {
	path := filepath.Join(s.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.f, s.segFirst = f, first
	return nil
}

// prune deletes snapshots beyond the two newest and segments wholly
// covered by the older retained snapshot. Best-effort: removal failures
// are ignored (the files are garbage, not state). Caller holds s.mu.
func (s *Store) prune() {
	segs, snaps, err := listDir(s.dir)
	if err != nil {
		return
	}
	var doomed []string
	if len(snaps) > 2 {
		for _, sq := range snaps[:len(snaps)-2] {
			doomed = append(doomed, snapName(sq))
		}
		snaps = snaps[len(snaps)-2:]
	}
	// Segments are pruned only against the OLDER retained snapshot: while a
	// single snapshot exists, the full log stays as its fallback, so a
	// corrupt sole snapshot never strands the catalog.
	if len(snaps) >= 2 {
		older := snaps[0]
		for i := 0; i+1 < len(segs); i++ {
			// All of segs[i]'s records precede segs[i+1]; if the next
			// segment starts within the older snapshot's coverage, every
			// record here is recoverable from that snapshot alone.
			if segs[i+1] <= older+1 {
				doomed = append(doomed, segName(segs[i]))
			}
		}
	}
	removeAllNamed(s.dir, doomed)
}

// snapshotLoop services automatic snapshot triggers until Close. Failures
// are recorded for Stats and retried on the next trigger — an unsnapshotted
// log is slower to recover, not unsafe.
func (s *Store) snapshotLoop() {
	defer s.wg.Done()
	service := func() {
		if err := s.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
			s.mu.Lock()
			s.lastSnapErr = err.Error()
			s.mu.Unlock()
		}
	}
	for {
		select {
		case <-s.done:
			// Close is underway but the store is not yet closed (closed is
			// set only after this loop exits). With done and a pending
			// trigger both ready, select picks arbitrarily — so drain the
			// trigger here, or a burst of appends right before shutdown
			// loses its snapshot.
			select {
			case <-s.snapCh:
				service()
			default:
			}
			return
		case <-s.snapCh:
			service()
		}
	}
}
