// Snapshot files: one whole-catalog state encoded by core's versioned
// snapshot codec, wrapped in a small durable envelope —
//
//	8-byte magic | u64 covered seq | u32 CRC-32C of body | body
//
// — and written to a temp file, fsynced, and renamed into place so a crash
// mid-write can never leave a half-snapshot under a valid name.
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"pip/internal/core"
)

// snapHeaderLen is the envelope size before the encoded catalog body.
const snapHeaderLen = len(snapMagic) + 8 + 4

// writeSnapshotFile encodes db's catalog and durably writes it as the
// snapshot covering records 1..seq, returning the final path. The caller
// holds the statement-commit lock so the encoded state sits exactly on a
// record boundary.
func writeSnapshotFile(dir string, seq uint64, db *core.DB) (string, error) {
	var body bytes.Buffer
	if err := db.EncodeCatalog(&body); err != nil {
		return "", fmt.Errorf("wal: encode snapshot: %w", err)
	}
	buf := make([]byte, 0, snapHeaderLen+body.Len())
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body.Bytes(), castagnoli))
	buf = append(buf, body.Bytes()...)

	final := filepath.Join(dir, snapName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// readSnapshotFile validates the snapshot at path against the sequence
// number its file name claims and decodes it into db. All failures wrap
// ErrSnapshotCorrupt; every check runs before the decode, and the catalog
// decode itself is staged, so on failure db is left untouched and the
// caller can safely fall back to an older snapshot.
func readSnapshotFile(path string, wantSeq uint64, db *core.DB) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	seq, err := DecodeSnapshotImage(raw, db)
	if err != nil {
		return fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if seq != wantSeq {
		return fmt.Errorf("%w: %s: header covers record %d, name says %d", ErrSnapshotCorrupt, filepath.Base(path), seq, wantSeq)
	}
	return nil
}

// DecodeSnapshotImage validates one complete snapshot image — the exact
// bytes of a snapshot file, however delivered (read from disk, or streamed
// over the replication wire) — and decodes it into db, returning the
// sequence number the snapshot covers through. All failures wrap
// ErrSnapshotCorrupt; the envelope checks run before the decode and the
// catalog decode is staged, so on failure db is left untouched.
func DecodeSnapshotImage(raw []byte, db *core.DB) (uint64, error) {
	if len(raw) < snapHeaderLen || string(raw[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("%w: bad header", ErrSnapshotCorrupt)
	}
	seq := binary.LittleEndian.Uint64(raw[len(snapMagic):])
	wantCRC := binary.LittleEndian.Uint32(raw[len(snapMagic)+8:])
	body := raw[snapHeaderLen:]
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return 0, fmt.Errorf("%w: CRC mismatch", ErrSnapshotCorrupt)
	}
	if err := db.DecodeCatalog(bytes.NewReader(body)); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrSnapshotCorrupt, err)
	}
	return seq, nil
}
