package wal

import (
	"reflect"
	"testing"

	"pip/internal/core"
	"pip/internal/ctable"
)

// fuzzSeedRecords are realistic log records whose encoded payloads seed the
// fuzz corpus: every argument kind, failure flags, empty and multi-byte
// text, large sequence and session numbers.
var fuzzSeedRecords = []Record{
	{Seq: 1, M: core.Mutation{Session: 1, Seed: 1, Text: "CREATE TABLE orders (cust, shipto, price)"}},
	{Seq: 2, M: core.Mutation{Session: 1, Seed: 1, Text: "INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))"}},
	{Seq: 3, M: core.Mutation{Session: 7, Seed: 42, Text: "SET max_samples = 4096"}},
	{Seq: 4, M: core.Mutation{Session: 7, Seed: 42, Text: "INSERT INTO nosuch VALUES (1)", Failed: true}},
	{Seq: 1 << 40, M: core.Mutation{Session: 1 << 30, Seed: ^uint64(0), Text: "DROP TABLE orders"}},
	{Seq: 5, M: core.Mutation{Session: 2, Seed: 9, Text: "INSERT INTO t VALUES (?, ?, ?, ?, ?)",
		Args: []ctable.Value{
			ctable.Null(), ctable.Float(-0.0), ctable.Int(-1 << 62),
			ctable.String_("héllo\x00wörld"), ctable.Bool(false),
		}}},
}

// FuzzWALDecode hammers the record payload decoder with arbitrary bytes:
// it must never panic or over-allocate, and any payload it accepts must
// survive a re-encode/re-decode round trip unchanged (the decoder and
// encoder agree on the format). The accepted payload is then framed and
// pushed through the segment scanner, which must agree with the decoder.
func FuzzWALDecode(f *testing.F) {
	for _, r := range fuzzSeedRecords {
		payload, err := appendPayload(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodePayload(data)
		if err != nil {
			return
		}
		re, err := appendPayload(nil, Record{Seq: rec.Seq, M: rec.M})
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		back, err := DecodePayload(re)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, back) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, back)
		}
		// The canonical re-encoding framed into a segment must scan back to
		// the same record.
		frame, err := AppendRecord(nil, back)
		if err != nil {
			t.Fatal(err)
		}
		recs, n, tailErr := scanSegment(frame, back.Seq)
		if tailErr != nil || n != len(frame) || len(recs) != 1 || !reflect.DeepEqual(recs[0], back) {
			t.Fatalf("segment scan disagrees with decoder: %d recs, %d/%d bytes, %v", len(recs), n, len(frame), tailErr)
		}
	})
}

// FuzzSegmentScan feeds arbitrary bytes to the segment scanner, which must
// classify them without panicking and never report more valid bytes than
// it was given.
func FuzzSegmentScan(f *testing.F) {
	var seg []byte
	for _, r := range fuzzSeedRecords[:3] {
		var err error
		seg, err = AppendRecord(seg, Record{Seq: r.Seq, M: r.M})
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seg, uint64(1))
	f.Add(seg[:len(seg)-3], uint64(1))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, first uint64) {
		recs, n, _ := scanSegment(data, first)
		if n < 0 || n > len(data) {
			t.Fatalf("scanner reported %d valid bytes of %d", n, len(data))
		}
		for i, r := range recs {
			if r.Seq != first+uint64(i) {
				t.Fatalf("scanner returned out-of-order record %d at %d", r.Seq, i)
			}
		}
	})
}
