// Log record codec. Each record is framed as
//
//	u32 length | u32 CRC-32C of payload | payload
//
// (both little endian) and the payload encodes one core.Mutation plus its
// sequence number: version, seq, session, seed, a flags byte, the statement
// text, and the bound scalar arguments. The CRC covers the payload only;
// a frame whose length field itself is torn shows up as a short read and
// is classified as a truncated tail.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"pip/internal/core"
	"pip/internal/ctable"
)

// recordVersion is the current record payload encoding version.
const recordVersion = 1

// maxRecordLen bounds a record frame's declared payload length; anything
// larger is treated as corruption rather than allocated.
const maxRecordLen = 64 << 20

// flagFailed marks a statement whose execution returned an error. Failed
// statements are logged too: partial effects (rows appended, variables
// allocated before the failure) are deterministic, so replaying the
// statement reproduces them — and replay checks that it fails again.
const flagFailed = 1

// castagnoli is the CRC-32C table used for record and snapshot checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one entry of the statement log: a catalog-mutating statement
// with its sequence number.
type Record struct {
	// Seq is the record's position in the log, starting at 1 and
	// incrementing by exactly 1; gaps mean lost history and fail recovery.
	Seq uint64
	// M is the logged statement.
	M core.Mutation
}

// AppendRecord appends r's framed encoding to buf. It fails if the
// mutation cannot be represented — in particular if any bound argument is
// symbolic (KindExpr): arguments bind literal scalars, and a symbolic value
// here would mean the log cannot reproduce the statement from text alone.
func AppendRecord(buf []byte, r Record) ([]byte, error) {
	payload, err := appendPayload(nil, r)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...), nil
}

// EncodePayload returns r's unframed payload encoding — the bytes a frame's
// CRC covers and DecodePayload inverts. The replication stream ships
// records in this form (with its own framing), so primary and replica
// agree on the exact bytes the checksum protects.
func EncodePayload(r Record) ([]byte, error) {
	return appendPayload(nil, r)
}

// Checksum returns the CRC-32C (Castagnoli) checksum the log and the
// replication stream use for payload and snapshot integrity.
func Checksum(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

// appendPayload appends the unframed record payload.
func appendPayload(buf []byte, r Record) ([]byte, error) {
	buf = binary.AppendUvarint(buf, recordVersion)
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendUvarint(buf, r.M.Session)
	buf = binary.AppendUvarint(buf, r.M.Seed)
	var flags byte
	if r.M.Failed {
		flags |= flagFailed
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(r.M.Text)))
	buf = append(buf, r.M.Text...)
	buf = binary.AppendUvarint(buf, uint64(len(r.M.Args)))
	for i, v := range r.M.Args {
		var err error
		buf, err = appendArg(buf, v)
		if err != nil {
			return nil, fmt.Errorf("wal: argument %d: %w", i+1, err)
		}
	}
	return buf, nil
}

// appendArg appends one bound argument: a kind byte and a scalar payload.
func appendArg(buf []byte, v ctable.Value) ([]byte, error) {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case ctable.KindNull:
		return buf, nil
	case ctable.KindFloat:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F)), nil
	case ctable.KindInt:
		return binary.AppendVarint(buf, v.I), nil
	case ctable.KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		return append(buf, v.S...), nil
	case ctable.KindBool:
		if v.B {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	default:
		return nil, fmt.Errorf("cannot log value kind %v (arguments must be scalar)", v.Kind)
	}
}

// DecodePayload decodes one unframed record payload (the bytes the frame's
// CRC covers). Errors wrap ErrCorruptRecord. It is the inverse of the
// payload half of AppendRecord and the surface FuzzWALDecode exercises.
func DecodePayload(p []byte) (Record, error) {
	d := payloadDecoder{buf: p}
	ver := d.uvarint()
	if d.err == nil && ver != recordVersion {
		return Record{}, fmt.Errorf("%w: unknown record version %d", ErrCorruptRecord, ver)
	}
	var r Record
	r.Seq = d.uvarint()
	r.M.Session = d.uvarint()
	r.M.Seed = d.uvarint()
	flags := d.byte_()
	r.M.Failed = flags&flagFailed != 0
	r.M.Text = d.string()
	nargs := d.uvarint()
	if d.err == nil && nargs > uint64(len(p)) {
		// Each argument costs at least one byte, so more args than
		// remaining bytes is structurally impossible.
		d.fail("argument count %d exceeds payload size", nargs)
	}
	if d.err == nil && nargs > 0 {
		r.M.Args = make([]ctable.Value, 0, nargs)
		for i := uint64(0); i < nargs && d.err == nil; i++ {
			r.M.Args = append(r.M.Args, d.arg())
		}
	}
	if d.err == nil && d.off != len(p) {
		d.fail("%d trailing bytes", len(p)-d.off)
	}
	if d.err != nil {
		return Record{}, d.err
	}
	return r, nil
}

// payloadDecoder reads the record payload encoding, latching the first
// error (wrapped around ErrCorruptRecord).
type payloadDecoder struct {
	buf []byte
	off int
	err error
}

// fail latches a decoding error.
func (d *payloadDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrCorruptRecord, fmt.Sprintf(format, args...), d.off)
	}
}

// uvarint reads one unsigned varint.
func (d *payloadDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

// varint reads one signed varint.
func (d *payloadDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

// byte_ reads one byte.
func (d *payloadDecoder) byte_() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// string reads one length-prefixed string.
func (d *payloadDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("truncated string of length %d", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// arg reads one bound argument.
func (d *payloadDecoder) arg() ctable.Value {
	kind := ctable.Kind(d.byte_())
	if d.err != nil {
		return ctable.Value{}
	}
	switch kind {
	case ctable.KindNull:
		return ctable.Null()
	case ctable.KindFloat:
		if d.off+8 > len(d.buf) {
			d.fail("truncated float argument")
			return ctable.Value{}
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
		return ctable.Float(math.Float64frombits(bits))
	case ctable.KindInt:
		return ctable.Int(d.varint())
	case ctable.KindString:
		return ctable.String_(d.string())
	case ctable.KindBool:
		return ctable.Bool(d.byte_() != 0)
	default:
		d.fail("unknown argument kind %d", kind)
		return ctable.Value{}
	}
}

// scanSegment walks the framed records of one segment body (magic already
// stripped), verifying sequence continuity starting at firstSeq. It returns
// the valid records, the byte length of the valid prefix, and the typed
// error that stopped the scan: nil for a clean end, ErrTruncatedTail for a
// frame cut short, ErrCorruptRecord for a bad length/CRC/payload, ErrGap
// for a sequence discontinuity. The caller decides whether the error is
// tolerable (tail of the final segment) or fatal (anywhere else).
func scanSegment(body []byte, firstSeq uint64) (recs []Record, goodLen int, tailErr error) {
	off := 0
	next := firstSeq
	for off < len(body) {
		rem := len(body) - off
		if rem < 8 {
			return recs, off, fmt.Errorf("%w: %d dangling header bytes at offset %d", ErrTruncatedTail, rem, off)
		}
		length := int(binary.LittleEndian.Uint32(body[off:]))
		if length == 0 || length > maxRecordLen {
			return recs, off, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorruptRecord, length, off)
		}
		if rem < 8+length {
			return recs, off, fmt.Errorf("%w: frame of %d bytes cut to %d at offset %d", ErrTruncatedTail, length, rem-8, off)
		}
		wantCRC := binary.LittleEndian.Uint32(body[off+4:])
		payload := body[off+8 : off+8+length]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return recs, off, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorruptRecord, off)
		}
		r, err := DecodePayload(payload)
		if err != nil {
			return recs, off, fmt.Errorf("record at offset %d: %w", off, err)
		}
		if r.Seq != next {
			return recs, off, fmt.Errorf("%w: record %d where %d expected at offset %d", ErrGap, r.Seq, next, off)
		}
		next++
		off += 8 + length
		recs = append(recs, r)
	}
	return recs, off, nil
}
