// Subscriptions: the tail-follow API the replication subsystem rides on.
// A subscriber names the first sequence number it wants and then receives
// every committed record from there on, in order, with no gaps — first the
// historical records read back from the segment files, then live records
// as AppendMutation commits them. Registration happens under the store
// mutex, the same lock appends and pruning hold, so the switchover from
// disk reads to live delivery cannot lose or duplicate a record.
package wal

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// maxSubscriberPending bounds how many undelivered records a subscription
// buffers before the store drops it with ErrSubscriberLagged. The bound
// keeps one stalled replica from holding the primary's memory hostage;
// 64Ki records is minutes of catch-up headroom at any realistic rate.
const maxSubscriberPending = 64 << 10

// Subscription is an ordered, gap-free feed of committed log records.
// Next blocks for the next record; Close releases the feed. A single
// consumer goroutine is assumed (the store side is concurrency-safe).
type Subscription struct {
	store *Store

	// wake has capacity 1: the store tops it up whenever the queue goes
	// non-empty or the subscription dies, so a blocked Next observes it.
	wake chan struct{}

	// The store appends under its own mutex via push; Next drains. queue is
	// sub-ordinate to Store.mu in lock order: push locks it while holding
	// Store.mu; Next never touches Store.mu while holding it.
	queue struct {
		mu     sync.Mutex
		recs   []Record
		head   int
		err    error // latched terminal error (ErrClosed, ErrSubscriberLagged)
		closed bool
	}
}

// Subscribe returns a feed of every record with sequence number >= from,
// historical records included. If from is older than the oldest record
// still on disk (pruning compacted it into a snapshot), Subscribe fails
// with ErrCompacted and the caller should bootstrap from the newest
// snapshot instead. from = seq+1 of a fully caught-up consumer is valid
// and delivers live records only; from may be at most LastSeq+1.
func (s *Store) Subscribe(from uint64) (*Subscription, error) {
	if from == 0 {
		from = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if from > s.seq+1 {
		return nil, fmt.Errorf("%w: subscribe from %d but the log ends at %d", ErrGap, from, s.seq)
	}
	hist, err := s.readRecordsLocked(from)
	if err != nil {
		return nil, err
	}
	sub := &Subscription{
		store: s,
		wake:  make(chan struct{}, 1),
	}
	sub.queue.recs = hist
	if len(hist) > 0 {
		sub.signal()
	}
	s.subs = append(s.subs, sub)
	return sub, nil
}

// readRecordsLocked reads every record with sequence >= from back from the
// segment files. The caller holds s.mu, so no append, rotation, or prune
// is concurrent and the active segment ends exactly at the last committed
// record; any scan damage is real corruption, not a racing write.
func (s *Store) readRecordsLocked(from uint64) ([]Record, error) {
	if from > s.seq {
		return nil, nil
	}
	segs, _, err := listDir(s.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 || segs[0] > from {
		return nil, fmt.Errorf("%w: record %d requested, oldest on disk is %d",
			ErrCompacted, from, func() uint64 {
				if len(segs) == 0 {
					return s.seq + 1
				}
				return segs[0]
			}())
	}
	// The last segment starting at or before from holds it; scan from there.
	startIdx := 0
	for i, first := range segs {
		if first > from {
			break
		}
		startIdx = i
	}
	var out []Record
	for i := startIdx; i < len(segs); i++ {
		path := filepath.Join(s.dir, segName(segs[i]))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, rerr
		}
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			return nil, fmt.Errorf("%w: segment %s: bad magic", ErrCorruptRecord, segName(segs[i]))
		}
		recs, _, tailErr := scanSegment(data[len(segMagic):], segs[i])
		if tailErr != nil {
			return nil, fmt.Errorf("segment %s: %w", segName(segs[i]), tailErr)
		}
		for _, r := range recs {
			if r.Seq >= from {
				out = append(out, r)
			}
		}
	}
	// A hole here would mean the store resumed from a directory recovery
	// itself validated, so treat any discontinuity as corruption.
	want := from
	for _, r := range out {
		if r.Seq != want {
			return nil, fmt.Errorf("%w: record %d where %d expected reading back the log", ErrGap, r.Seq, want)
		}
		want++
	}
	if want != s.seq+1 {
		return nil, fmt.Errorf("%w: log read-back ends at %d, store is at %d", ErrGap, want-1, s.seq)
	}
	return out, nil
}

// notifySubscribersLocked hands a freshly committed record to every live
// subscription. The caller holds s.mu, so delivery order equals commit
// order. A subscription over its buffer bound is dropped with
// ErrSubscriberLagged rather than stalling the commit path.
func (s *Store) notifySubscribersLocked(r Record) {
	live := s.subs[:0]
	for _, sub := range s.subs {
		if sub.push(r) {
			live = append(live, sub)
		}
	}
	for i := len(live); i < len(s.subs); i++ {
		s.subs[i] = nil
	}
	s.subs = live
}

// closeSubscribersLocked terminates every subscription with err (store
// shutdown). The caller holds s.mu.
func (s *Store) closeSubscribersLocked(err error) {
	for _, sub := range s.subs {
		sub.fail(err)
	}
	s.subs = nil
}

// push appends one record to the subscription queue, returning false if
// the subscription is dead (closed, or just now dropped for lagging).
func (sub *Subscription) push(r Record) bool {
	q := &sub.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.err != nil {
		return false
	}
	if len(q.recs)-q.head >= maxSubscriberPending {
		q.err = ErrSubscriberLagged
		sub.signal()
		return false
	}
	q.recs = append(q.recs, r)
	sub.signal()
	return true
}

// fail latches a terminal error for the consumer to observe.
func (sub *Subscription) fail(err error) {
	q := &sub.queue
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err == nil && !q.closed {
		q.err = err
	}
	sub.signal()
}

// signal tops up the wake channel (capacity 1) without blocking.
func (sub *Subscription) signal() {
	select {
	case sub.wake <- struct{}{}:
	default:
	}
}

// Next blocks until a record is available and returns it, preserving
// commit order with no gaps. It returns the subscription's terminal error
// once one is latched and the queued records before it are drained —
// ErrSubscriberLagged if the consumer fell behind, ErrClosed if the store
// shut down — or ctx.Err() on cancellation.
func (sub *Subscription) Next(ctx context.Context) (Record, error) {
	for {
		q := &sub.queue
		q.mu.Lock()
		if q.head < len(q.recs) {
			r := q.recs[q.head]
			q.recs[q.head] = Record{}
			q.head++
			if q.head == len(q.recs) {
				q.recs = q.recs[:0]
				q.head = 0
			}
			q.mu.Unlock()
			return r, nil
		}
		if q.err != nil {
			err := q.err
			q.mu.Unlock()
			return Record{}, err
		}
		if q.closed {
			q.mu.Unlock()
			return Record{}, ErrClosed
		}
		q.mu.Unlock()
		select {
		case <-sub.wake:
		case <-ctx.Done():
			return Record{}, ctx.Err()
		}
	}
}

// Close releases the subscription; a blocked Next returns ErrClosed.
// Safe to call concurrently with the consumer and more than once.
func (sub *Subscription) Close() {
	s := sub.store
	s.mu.Lock()
	for i, x := range s.subs {
		if x == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	q := &sub.queue
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	sub.signal()
}
