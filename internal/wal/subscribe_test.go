package wal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// nextOrFail pulls one record from sub with a bounded wait.
func nextOrFail(t *testing.T, sub *Subscription) Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return r
}

func TestSubscribeDeliversHistoricalThenLive(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	seedStatements(t, db) // 5 records, one of them a logged failure

	sub, err := store.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for want := uint64(1); want <= 5; want++ {
		r := nextOrFail(t, sub)
		if r.Seq != want {
			t.Fatalf("historical record %d arrived as seq %d", want, r.Seq)
		}
	}
	// The subscription switched to live delivery; new commits arrive in
	// commit order with contiguous sequence numbers.
	mustExec(t, db, "INSERT INTO orders VALUES ('Eve', 3)")
	mustExec(t, db, "INSERT INTO orders VALUES ('Mal', 4)")
	for want := uint64(6); want <= 7; want++ {
		r := nextOrFail(t, sub)
		if r.Seq != want {
			t.Fatalf("live record arrived as seq %d, want %d", r.Seq, want)
		}
		if r.M.Text == "" {
			t.Fatalf("live record %d has no statement text", r.Seq)
		}
	}
}

func TestSubscribeAcrossSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	mustExec(t, db, "CREATE TABLE t (a)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if err := store.Snapshot(); err != nil { // rotates to a fresh segment
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	mustExec(t, db, "INSERT INTO t VALUES (3)")

	// From 1: the read-back spans both segments, still gap-free.
	sub, err := store.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for want := uint64(1); want <= 4; want++ {
		if r := nextOrFail(t, sub); r.Seq != want {
			t.Fatalf("record %d arrived as seq %d across rotation", want, r.Seq)
		}
	}
	mustExec(t, db, "INSERT INTO t VALUES (4)")
	if r := nextOrFail(t, sub); r.Seq != 5 {
		t.Fatalf("live record after rotation arrived as seq %d, want 5", r.Seq)
	}
}

func TestSubscribeCompactedAfterPruning(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	mustExec(t, db, "CREATE TABLE t (a)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Two snapshots retained; the segment holding records 1..2 is pruned.
	if _, err := store.Subscribe(1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("subscribe from pruned history: got %v, want ErrCompacted", err)
	}

	// Bootstrapping from the newest snapshot always works: its coverage
	// point is subscribable by construction of the prune invariant.
	snapSeq, _, ok := store.NewestSnapshot()
	if !ok || snapSeq != 3 {
		t.Fatalf("newest snapshot covers %d (ok=%v), want 3", snapSeq, ok)
	}
	sub, err := store.Subscribe(snapSeq + 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	mustExec(t, db, "INSERT INTO t VALUES (3)")
	if r := nextOrFail(t, sub); r.Seq != snapSeq+1 {
		t.Fatalf("post-snapshot record arrived as seq %d, want %d", r.Seq, snapSeq+1)
	}
}

func TestSubscribeBeyondTailIsGap(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	mustExec(t, db, "CREATE TABLE t (a)")
	if _, err := store.Subscribe(3); !errors.Is(err, ErrGap) {
		t.Fatalf("subscribe past the tail: got %v, want ErrGap", err)
	}
	// Exactly seq+1 (a fully caught-up consumer) is fine.
	if sub, err := store.Subscribe(2); err != nil {
		t.Fatalf("subscribe at tail+1: %v", err)
	} else {
		sub.Close()
	}
}

func TestSubscribeConcurrentCommitsInOrder(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	mustExec(t, db, "CREATE TABLE t (a)")

	sub, err := store.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session()
			for i := 0; i < perWriter; i++ {
				mustExec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d)", w*perWriter+i))
			}
		}(w)
	}

	total := uint64(1 + writers*perWriter)
	for want := uint64(1); want <= total; want++ {
		if r := nextOrFail(t, sub); r.Seq != want {
			t.Fatalf("delivery out of order: got seq %d, want %d", r.Seq, want)
		}
	}
	wg.Wait()
}

func TestSubscriberLagDropsWithTypedError(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sub, err := store.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Drive the queue directly past the bound; going through SQL would
	// need 64Ki real statements for the same coverage.
	for i := 0; i < maxSubscriberPending; i++ {
		if !sub.push(Record{Seq: uint64(i + 1)}) {
			t.Fatalf("push %d rejected below the pending bound", i+1)
		}
	}
	if sub.push(Record{Seq: maxSubscriberPending + 1}) {
		t.Fatal("push beyond the pending bound accepted")
	}
	// The buffered prefix still drains in order, then the lag error lands.
	for want := uint64(1); want <= maxSubscriberPending; want++ {
		if r := nextOrFail(t, sub); r.Seq != want {
			t.Fatalf("drain out of order at %d (got %d)", want, r.Seq)
		}
	}
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrSubscriberLagged) {
		t.Fatalf("after lag drop: got %v, want ErrSubscriberLagged", err)
	}
}

func TestStoreCloseFailsSubscribers(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := store.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Next block
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Next after Close: got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after store Close")
	}
}
