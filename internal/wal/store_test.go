package wal

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/expr"
	"pip/internal/sampler"
	"pip/internal/sql"
)

func newDB(seed uint64) *core.DB {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = seed
	return core.NewDB(cfg)
}

func mustExec(t *testing.T, db *core.DB, q string) {
	t.Helper()
	if _, err := sql.Exec(db, q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

// catalogBytes returns the deterministic catalog encoding used for
// bit-identity assertions.
func catalogBytes(t *testing.T, db *core.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.EncodeCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expectedRevenue runs the paper's running-example aggregate and returns
// the sampled expectation — a value whose exact bits depend on the seed,
// the variable identifiers, and the sampler, so equal bits mean the
// recovered database really is the same database.
func expectedRevenue(t *testing.T, db *core.DB) float64 {
	t.Helper()
	out, err := sql.Exec(db, "SELECT expected_sum(price) AS r FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := out.Tuples[0].Values[0].AsFloat()
	if !ok {
		t.Fatalf("aggregate did not return a float: %v", out.Tuples[0].Values[0])
	}
	return f
}

// seedStatements drives a small but representative workload: DDL, symbolic
// and scalar DML, a SET, and a failing statement (logged too — failures
// are deterministic and must replay as failures).
func seedStatements(t *testing.T, db *core.DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE orders (cust, price)")
	mustExec(t, db, "INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10))")
	mustExec(t, db, "INSERT INTO orders VALUES ('Ann', CREATE_VARIABLE('Normal', 80, 5)), ('Bob', 42.5)")
	mustExec(t, db, "SET max_samples = 2048")
	if _, err := sql.Exec(db, "INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Fatal("insert into missing table succeeded")
	}
}

func TestStoreLogsAndRestores(t *testing.T) {
	dir := t.TempDir()
	db := newDB(7)
	store, info, err := Open(dir, db, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 0 || info.Replayed != 0 {
		t.Fatalf("fresh dir recovered state: %+v", info)
	}
	seedStatements(t, db)
	want := catalogBytes(t, db)
	wantRevenue := expectedRevenue(t, db)
	st := store.Stats()
	if st.Records != 5 { // 4 successes + 1 logged failure
		t.Fatalf("expected 5 records, got %d", st.Records)
	}
	if st.Fsyncs == 0 || st.Bytes == 0 {
		t.Fatalf("fsync/byte counters dead: %+v", st)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// A replica restoring from the directory is bit-identical: same catalog
	// encoding, same sampled aggregate bits, and the root SET survived.
	replica := newDB(7)
	rinfo, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Replayed != 5 || rinfo.TailErr != nil {
		t.Fatalf("unexpected restore info: %+v", rinfo)
	}
	if got := catalogBytes(t, replica); !bytes.Equal(got, want) {
		t.Fatalf("restored catalog not bit-identical (%d vs %d bytes)", len(got), len(want))
	}
	if got := expectedRevenue(t, replica); math.Float64bits(got) != math.Float64bits(wantRevenue) {
		t.Fatalf("restored query result differs: %v vs %v", got, wantRevenue)
	}
	if replica.Config().MaxSamples != 2048 {
		t.Fatalf("SET did not replay: %+v", replica.Config())
	}
}

func TestStoreAppendsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := newDB(11)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	store.Close()

	// Reopen the same directory: replay, then keep appending to the log.
	db2 := newDB(11)
	store2, info, err := Open(dir, db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 5 {
		t.Fatalf("expected 5 replayed, got %d", info.Replayed)
	}
	mustExec(t, db2, "INSERT INTO orders VALUES ('Eve', CREATE_VARIABLE('Normal', 60, 6))")
	if got := store2.Stats().LastSeq; got != 6 {
		t.Fatalf("sequence did not resume: last seq %d", got)
	}
	want := catalogBytes(t, db2)
	store2.Close()

	replica := newDB(11)
	if _, err := Restore(dir, replica); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(catalogBytes(t, replica), want) {
		t.Fatal("catalog diverged after reopen+append")
	}
}

func TestSnapshotRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db := newDB(13)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A snapshot with nothing after it is a no-op, not a new file.
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if n := store.Stats().Snapshots; n != 1 {
		t.Fatalf("idle snapshot was not a no-op: %d snapshots", n)
	}
	mustExec(t, db, "INSERT INTO orders VALUES ('Kim', 12.0)")
	want := catalogBytes(t, db)
	store.Close()

	replica := newDB(13)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 5 || info.Replayed != 1 {
		t.Fatalf("expected snapshot@5 + 1 replayed, got %+v", info)
	}
	if !bytes.Equal(catalogBytes(t, replica), want) {
		t.Fatal("snapshot+suffix recovery not bit-identical")
	}
}

func TestAutomaticSnapshots(t *testing.T) {
	dir := t.TempDir()
	db := newDB(17)
	store, _, err := Open(dir, db, Options{SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a)")
	for i := 0; i < 6; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (1)")
	}
	// The snapshot loop is asynchronous; Close drains it, after which at
	// least one automatic snapshot must have landed.
	store.Close()
	_, snaps, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no automatic snapshot was taken")
	}
	if len(snaps) > 2 {
		t.Fatalf("retention kept %d snapshots", len(snaps))
	}
}

// corrupt flips one byte at offset (from the end if negative).
func corrupt(t *testing.T, path string, off int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(raw)
	}
	raw[off] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateFile cuts n bytes off the end of path.
func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// soleSegment returns the path of the only log segment in dir.
func soleSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected one segment, found %d", len(segs))
	}
	return filepath.Join(dir, segName(segs[0]))
}

func buildDir(t *testing.T, seed uint64) string {
	t.Helper()
	dir := t.TempDir()
	db := newDB(seed)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	store.Close()
	return dir
}

func TestTornTailTruncation(t *testing.T) {
	dir := buildDir(t, 19)
	truncateFile(t, soleSegment(t, dir), 3) // cut into the last record

	replica := newDB(19)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(info.TailErr, ErrTruncatedTail) {
		t.Fatalf("tail error not typed: %v", info.TailErr)
	}
	if info.Replayed != 4 || info.LastSeq != 4 {
		t.Fatalf("expected recovery to stop at record 4: %+v", info)
	}
	if info.TailTruncated == 0 {
		t.Fatal("truncated byte count not reported")
	}

	// Opening for writing truncates the torn tail and appends past it.
	db2 := newDB(19)
	store, oinfo, err := Open(dir, db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(oinfo.TailErr, ErrTruncatedTail) {
		t.Fatalf("open did not report the torn tail: %v", oinfo.TailErr)
	}
	mustExec(t, db2, "INSERT INTO orders VALUES ('Pat', 7.0)")
	if got := store.Stats().LastSeq; got != 5 {
		t.Fatalf("append after repair at wrong seq: %d", got)
	}
	store.Close()
	if _, err := Restore(dir, newDB(19)); err != nil {
		t.Fatalf("post-repair log unreadable: %v", err)
	}
}

func TestBitFlippedTailRecord(t *testing.T) {
	dir := buildDir(t, 23)
	corrupt(t, soleSegment(t, dir), -5) // inside the final record's payload

	replica := newDB(23)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(info.TailErr, ErrCorruptRecord) {
		t.Fatalf("corrupt tail record not typed: %v", info.TailErr)
	}
	if info.Replayed != 4 {
		t.Fatalf("expected 4 records to survive, got %d", info.Replayed)
	}
}

func TestGarbageFrameLength(t *testing.T) {
	dir := buildDir(t, 29)
	path := soleSegment(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header whose length is absurd must read as corruption, not
	// attempt a 4 GiB allocation.
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	info, err := Restore(dir, newDB(29))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(info.TailErr, ErrCorruptRecord) {
		t.Fatalf("garbage length not typed as corruption: %v", info.TailErr)
	}
}

func TestSnapshotFallbackToOlder(t *testing.T) {
	dir := t.TempDir()
	db := newDB(31)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	if err := store.Snapshot(); err != nil { // snapshot A @5
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO orders VALUES ('Lee', 3.0)")
	if err := store.Snapshot(); err != nil { // snapshot B @6
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO orders VALUES ('Mia', CREATE_VARIABLE('Normal', 50, 5))")
	want := catalogBytes(t, db)
	store.Close()

	corrupt(t, filepath.Join(dir, snapName(6)), -1) // newest snapshot body

	replica := newDB(31)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 5 {
		t.Fatalf("did not fall back to snapshot @5: %+v", info)
	}
	if len(info.SkippedSnapshots) != 1 || !strings.Contains(info.SkippedSnapshots[0], "CRC mismatch") {
		t.Fatalf("skipped snapshot not reported: %v", info.SkippedSnapshots)
	}
	if info.Replayed != 2 { // records 6 and 7, spanning two segments
		t.Fatalf("expected 2 replayed, got %+v", info)
	}
	if !bytes.Equal(catalogBytes(t, replica), want) {
		t.Fatal("fallback recovery not bit-identical")
	}
}

func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	db := newDB(37)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO orders VALUES ('Lee', 3.0)")
	store.Close()

	// Corrupting a record in a non-final segment is unrecoverable without
	// the snapshot that covers it — so also delete the snapshots to force
	// the scan through the damaged segment.
	segs, snaps, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected 2 segments, got %d", len(segs))
	}
	for _, sq := range snaps {
		os.Remove(filepath.Join(dir, snapName(sq)))
	}
	corrupt(t, filepath.Join(dir, segName(segs[0])), len(segMagic)+12)

	_, err = Restore(dir, newDB(37))
	if err == nil {
		t.Fatal("mid-log corruption recovered silently")
	}
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("mid-log corruption not typed: %v", err)
	}
}

func TestFullLogReplayWithoutSnapshots(t *testing.T) {
	dir := t.TempDir()
	db := newDB(41)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO orders VALUES ('Lee', 3.0)")
	want := catalogBytes(t, db)
	store.Close()

	// With every snapshot gone the full log (which still starts at record
	// 1 — only the older-snapshot coverage is ever pruned, and there was
	// just one snapshot) rebuilds the catalog from scratch.
	_, snaps, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sq := range snaps {
		os.Remove(filepath.Join(dir, snapName(sq)))
	}
	replica := newDB(41)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 0 || info.Replayed != 6 {
		t.Fatalf("full replay surprised: %+v", info)
	}
	if !bytes.Equal(catalogBytes(t, replica), want) {
		t.Fatal("full-log replay not bit-identical")
	}
}

func TestGapIsFatal(t *testing.T) {
	dir := buildDir(t, 43)
	old := soleSegment(t, dir)
	// Rename the segment so the log claims to start at record 3: records
	// 1-2 are missing and nothing covers them.
	if err := os.Rename(old, filepath.Join(dir, segName(3))); err != nil {
		t.Fatal(err)
	}
	_, err := Restore(dir, newDB(43))
	if !errors.Is(err, ErrGap) {
		t.Fatalf("gap not typed: %v", err)
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a log whose record claims a statement failed when it in
	// fact succeeds: replay must refuse rather than trust either side.
	frame, err := AppendRecord(nil, Record{Seq: 1, M: core.Mutation{
		Session: core.RootSessionID,
		Text:    "CREATE TABLE t (a)",
		Failed:  true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(segMagic), frame...)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), body, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Restore(dir, newDB(47))
	if !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("divergence not typed: %v", err)
	}
}

func TestSessionSetDoesNotClobberRoot(t *testing.T) {
	dir := t.TempDir()
	var frames []byte
	frames = append(frames, segMagic...)
	recs := []core.Mutation{
		{Session: core.RootSessionID, Text: "CREATE TABLE t (a)"},
		{Session: 2, Seed: 99, Text: "SET seed = 99"},
		{Session: 2, Seed: 99, Text: "INSERT INTO t VALUES (CREATE_VARIABLE('Normal', 1, 1))"},
	}
	for i, m := range recs {
		var err error
		frames, err = AppendRecord(frames, Record{Seq: uint64(i + 1), M: m})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), frames, 0o644); err != nil {
		t.Fatal(err)
	}
	db := newDB(53)
	info, err := Restore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	if db.Config().WorldSeed != 53 {
		t.Fatalf("session SET leaked into root config: seed %d", db.Config().WorldSeed)
	}
	if info.MaxSession != 2 {
		t.Fatalf("max session not tracked: %+v", info)
	}
	// New sessions must get identifiers beyond any logged one.
	if sid := db.Session().SessionID(); sid <= 2 {
		t.Fatalf("session allocator not floored: got id %d", sid)
	}
}

func TestConcurrentCommitsReplayBitIdentical(t *testing.T) {
	dir := t.TempDir()
	db := newDB(61)
	store, _, err := Open(dir, db, Options{SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (w, x)")
	// Hammer the log from several sessions at once, with automatic
	// snapshots rotating underneath. The interleaving is nondeterministic,
	// but whatever order the commit lock serialized is what the log holds —
	// so replay must still be bit-identical to the live catalog.
	const workers, perWorker = 8, 25
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			sess := db.Session()
			for i := 0; i < perWorker; i++ {
				if _, err := sql.Exec(sess, "INSERT INTO t VALUES (1, CREATE_VARIABLE('Normal', 10, 1))"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	want := catalogBytes(t, db)
	store.Close()

	replica := newDB(61)
	if _, err := Restore(dir, replica); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(catalogBytes(t, replica), want) {
		t.Fatal("concurrent workload replay not bit-identical")
	}
}

func TestAppendFailurePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	db := newDB(67)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (a)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	// Yank the segment file out from under the store: the next append's
	// write fails, which must fail-stop the store, not leave it retrying
	// at the same sequence number.
	store.mu.Lock()
	store.f.Close()
	store.mu.Unlock()
	if _, err := sql.Exec(db, "INSERT INTO t VALUES (2)"); err == nil {
		t.Fatal("append with a broken log acknowledged")
	}
	if _, err := sql.Exec(db, "INSERT INTO t VALUES (3)"); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("mutation after append failure not refused as poisoned: %v", err)
	}
	if err := store.Snapshot(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot of a poisoned store not refused: %v", err)
	}
	if store.Stats().Poisoned == "" {
		t.Fatal("poisoned state not reported in Stats")
	}
	_ = store.Close() // sync of the yanked file fails; nothing left to lose

	// Recovery sees exactly the acknowledged prefix: the two durable
	// records, none of the refused statements.
	replica := newDB(67)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 2 || info.LastSeq != 2 {
		t.Fatalf("expected the 2 acknowledged records, got %+v", info)
	}
}

func TestSymbolicArgumentRejectedBeforeApply(t *testing.T) {
	dir := t.TempDir()
	db := newDB(71)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	mustExec(t, db, "CREATE TABLE t (a)")
	v, err := db.CreateVariable("Normal", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// An unloggable (symbolic) argument must be refused before the catalog
	// mutates — otherwise the applied-but-unlogged row would poison the
	// store and diverge the running catalog from its log.
	_, err = sql.ExecContext(context.Background(), db, "INSERT INTO t VALUES (?)",
		ctable.Symbolic(expr.NewVar(v)))
	if !errors.Is(err, core.ErrUnloggedMutation) {
		t.Fatalf("symbolic argument not refused as unloggable: %v", err)
	}
	if st := store.Stats(); st.Poisoned != "" {
		t.Fatalf("pre-apply rejection poisoned the store: %s", st.Poisoned)
	}
	mustExec(t, db, "INSERT INTO t VALUES (4)") // store still healthy
	out, err := sql.Exec(db, "SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 1 {
		t.Fatalf("rejected statement left partial state: %d rows", len(out.Tuples))
	}
}

func TestMidSegmentCorruptionInFinalSegmentIsFatal(t *testing.T) {
	dir := buildDir(t, 73)
	// Flip a byte in the FIRST record of the only (hence final) segment:
	// intact, acknowledged records follow the damage, so this is
	// mid-segment corruption — not a torn tail — and recovery must refuse
	// to silently truncate those records away.
	corrupt(t, soleSegment(t, dir), len(segMagic)+12)

	_, err := Restore(dir, newDB(73))
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("mid-segment damage in final segment not fatal: %v", err)
	}
	// Opening for writing must refuse identically, without repair
	// truncating the surviving records.
	before, err := os.ReadFile(soleSegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, newDB(73), Options{}); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("open did not refuse mid-segment damage: %v", err)
	}
	after, err := os.ReadFile(soleSegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed open modified the damaged segment")
	}
}

func TestSnapshotBeyondLogEndResumesAfterIt(t *testing.T) {
	dir := t.TempDir()
	db := newDB(79)
	store, _, err := Open(dir, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedStatements(t, db)
	want := catalogBytes(t, db)
	if err := store.Snapshot(); err != nil { // snap@5, rotates to a fresh segment
		t.Fatal(err)
	}
	store.Close()

	// Lose the post-snapshot segment and tear the last record of the old
	// one: the log now ends at record 4 while the surviving snapshot
	// covers through 5. The snapshot is authoritative; recovery must not
	// wrap the "records since snapshot" count negative, and appends must
	// resume after the snapshot's coverage, never inside it.
	segs, _, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments after rotation, got %d", len(segs))
	}
	os.Remove(filepath.Join(dir, segName(segs[1])))
	truncateFile(t, filepath.Join(dir, segName(segs[0])), 3)

	replica := newDB(79)
	info, err := Restore(dir, replica)
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 5 || info.Replayed != 0 {
		t.Fatalf("expected snapshot-authoritative recovery to seq 5: %+v", info)
	}
	if !bytes.Equal(catalogBytes(t, replica), want) {
		t.Fatal("snapshot-only recovery not bit-identical")
	}

	db2 := newDB(79)
	store2, _, err := Open(dir, db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if since := store2.Stats().SinceSnapshot; since != 0 {
		t.Fatalf("since-snapshot count wrapped: %d", since)
	}
	mustExec(t, db2, "INSERT INTO orders VALUES ('Zoe', 9.0)")
	if got := store2.Stats().LastSeq; got != 6 {
		t.Fatalf("append did not resume past snapshot coverage: seq %d", got)
	}
	want2 := catalogBytes(t, db2)
	store2.Close()

	replica2 := newDB(79)
	if _, err := Restore(dir, replica2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(catalogBytes(t, replica2), want2) {
		t.Fatal("post-resume recovery not bit-identical")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	m := core.Mutation{
		Session: 9, Seed: 1234567, Failed: true,
		Text: "INSERT INTO t VALUES (?, ?, ?, ?, ?)",
		Args: []ctable.Value{
			ctable.Null(), ctable.Float(-2.5), ctable.Int(1 << 40),
			ctable.String_("héllo\x00world"), ctable.Bool(true),
		},
	}
	frame, err := AppendRecord(nil, Record{Seq: 77, M: m})
	if err != nil {
		t.Fatal(err)
	}
	recs, n, tailErr := scanSegment(frame, 77)
	if tailErr != nil || n != len(frame) || len(recs) != 1 {
		t.Fatalf("scan failed: %d recs, %d bytes, %v", len(recs), n, tailErr)
	}
	got := recs[0]
	if got.Seq != 77 || got.M.Session != 9 || got.M.Seed != 1234567 || !got.M.Failed || got.M.Text != m.Text {
		t.Fatalf("header fields mangled: %+v", got)
	}
	if len(got.M.Args) != len(m.Args) {
		t.Fatalf("args count: %d", len(got.M.Args))
	}
	for i := range m.Args {
		if got.M.Args[i] != m.Args[i] {
			t.Fatalf("arg %d: %v != %v", i, got.M.Args[i], m.Args[i])
		}
	}
}

func TestSymbolicArgumentRejected(t *testing.T) {
	db := newDB(59)
	v, err := db.CreateVariable("Normal", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = AppendRecord(nil, Record{Seq: 1, M: core.Mutation{
		Text: "INSERT INTO t VALUES (?)",
		Args: []ctable.Value{ctable.Symbolic(expr.NewVar(v))},
	}})
	if err == nil {
		t.Fatal("symbolic argument encoded")
	}
}
