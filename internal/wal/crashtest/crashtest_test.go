// Package crashtest is the durability proof for the write-ahead log: it
// boots a real pipd with a data directory, SIGKILLs it at a randomized
// point during a concurrent DML storm, restarts it, and asserts that
// every acknowledged statement survived and that the recovered server
// answers queries bit-identically to an independent replica recovered
// from the same log — the end-to-end form of the engine's determinism
// guarantee (same seed + same statement log ⇒ same bits).
package crashtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pip/internal/server"
)

// buildPipd compiles the real server binary (cached by the go build cache
// across tests).
func buildPipd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pipd")
	out, err := exec.Command("go", "build", "-o", bin, "pip/cmd/pipd").CombinedOutput()
	if err != nil {
		t.Fatalf("build pipd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port for a server about to start.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// pipd is one running server process under test.
type pipd struct {
	cmd  *exec.Cmd
	addr string
	logs *lockedBuffer
}

// lockedBuffer collects child-process output; the process writes from its
// own OS threads, the test reads after Wait, so guard with a mutex to stay
// race-detector clean.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// Write appends under the lock.
func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// String copies the collected output under the lock.
func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startPipd boots pipd on dataDir and waits until it serves /healthz.
// Every instance runs with the same seed so recovered instances answer
// sampled queries with the same bits the original would have.
func startPipd(t *testing.T, bin, dataDir string) *pipd {
	t.Helper()
	addr := freeAddr(t)
	logs := &lockedBuffer{}
	cmd := exec.Command(bin,
		"-addr", addr, "-data-dir", dataDir, "-seed", "7",
		"-snapshot-every", "25", "-session-timeout", "0")
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &pipd{cmd: cmd, addr: addr, logs: logs}
	t.Cleanup(func() { p.kill() })
	c := server.NewClient(addr)
	deadline := time.Now().Add(20 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return p
		}
		if time.Now().After(deadline) {
			p.kill()
			t.Fatalf("pipd did not come up: %v\nlogs:\n%s", err, logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the process — the crash under test: no drain, no final
// snapshot, no flush beyond what each commit already forced.
func (p *pipd) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
	_, _ = p.cmd.Process.Wait()
}

// stop shuts the process down gracefully (SIGTERM, drain, final snapshot).
func (p *pipd) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		p.kill()
		t.Fatalf("pipd did not drain on SIGTERM\nlogs:\n%s", p.logs.String())
	}
}

// copyDir duplicates a (quiescent) data directory for an independent
// replica recovery.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// rowKey identifies one acknowledged INSERT: worker w, iteration i.
type rowKey struct{ w, i int }

// storm hammers the server with concurrent symbolic INSERTs from several
// sessions, records which ones the server acknowledged, and SIGKILLs the
// process at a randomized moment mid-flight. Statements in flight at the
// kill simply report errors and are not recorded as acknowledged.
func storm(t *testing.T, p *pipd, rng *rand.Rand) map[rowKey]bool {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := server.NewClient(p.addr)
	root, err := c.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Exec(ctx, "CREATE TABLE crash (w, i, v)"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	acked := map[rowKey]bool{}
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := c.Session(ctx, nil)
			if err != nil {
				return // server already gone
			}
			for i := 0; ctx.Err() == nil; i++ {
				q := fmt.Sprintf("INSERT INTO crash VALUES (%d, %d, CREATE_VARIABLE('Normal', %d, 1))", w, i, 10+i%7)
				if _, err := sess.Exec(ctx, q); err != nil {
					return // the kill severed us mid-statement
				}
				mu.Lock()
				acked[rowKey{w, i}] = true
				mu.Unlock()
			}
		}(w)
	}

	// Let the storm make guaranteed progress, then pull the trigger at a
	// random point so successive runs crash in different states (mid-append,
	// mid-snapshot-rotation, between statements...).
	for start := time.Now(); ; {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 3*workers {
			break
		}
		if time.Since(start) > 30*time.Second {
			p.kill()
			t.Fatalf("storm stalled at %d acknowledged inserts\nlogs:\n%s", n, p.logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	delay := time.Duration(rng.Intn(400)) * time.Millisecond
	time.Sleep(delay)
	p.kill()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	t.Logf("killed pipd after +%v with %d acknowledged inserts", delay, len(acked))
	return acked
}

// resultDump runs the given query in a fresh session and returns the
// JSON-rendered rows — float64s render shortest-round-trip, so equal
// strings mean bit-equal values.
func resultDump(t *testing.T, addr, query string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sess, err := server.NewClient(addr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	rows, err := sess.Query(ctx, query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	defer rows.Close()
	var out []any
	for rows.Next() {
		row := append([]server.Value(nil), rows.Row()...)
		out = append(out, row, rows.Cond())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// dumpQueries are the probes compared between recovered instances: a full
// ordered scan (symbolic cells render their equations, so variable
// identifiers are part of the comparison) and a sampled aggregate whose
// bits depend on the seed, the allocator state, and the sampler.
var dumpQueries = []string{
	"SELECT w * 1000 + i AS k, v FROM crash ORDER BY k",
	"SELECT expected_sum(v) AS s FROM crash",
	"SELECT w, expectation(v) AS e FROM crash ORDER BY w",
}

func TestCrashRecoveryBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("crash injection boots real servers")
	}
	bin := buildPipd(t)
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("randomized kill schedule seed: %d", seed)

	dataDir := t.TempDir()
	victim := startPipd(t, bin, dataDir)
	acked := storm(t, victim, rng)

	// The process is dead; duplicate its directory for an independent
	// replica before the restarted server touches (repairs) it.
	replicaDir := copyDir(t, dataDir)

	recovered := startPipd(t, bin, dataDir)
	replica := startPipd(t, bin, replicaDir)

	// 1. Every acknowledged INSERT survived the SIGKILL.
	present := map[rowKey]bool{}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sess, err := server.NewClient(recovered.addr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(ctx, "SELECT w, i FROM crash")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		row := rows.Row()
		present[rowKey{valueInt(t, row[0]), valueInt(t, row[1])}] = true
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	sess.Close(ctx)
	missing := 0
	for k := range acked {
		if !present[k] {
			missing++
			t.Errorf("acknowledged insert (%d, %d) lost by the crash", k.w, k.i)
		}
	}
	t.Logf("recovered %d rows, %d acknowledged, %d missing", len(present), len(acked), missing)

	// 2. Recovered server and independent replica answer every probe with
	// identical bytes: catalog, variable identifiers, and sampled bits.
	for _, q := range dumpQueries {
		a := resultDump(t, recovered.addr, q)
		b := resultDump(t, replica.addr, q)
		if a != b {
			t.Errorf("recovered and replica diverge on %q:\n  %.200s\n  %.200s", q, a, b)
		}
	}

	// 3. A graceful drain snapshots the catalog, so the next boot replays
	// nothing — and still answers identically.
	before := resultDump(t, recovered.addr, dumpQueries[1])
	recovered.stop(t)
	again := startPipd(t, bin, dataDir)
	if got := resultDump(t, again.addr, dumpQueries[1]); got != before {
		t.Errorf("post-drain reboot diverged: %s vs %s", got, before)
	}
	if logs := again.logs.String(); !strings.Contains(logs, "replayed=0") {
		t.Errorf("post-drain reboot should recover from the final snapshot alone\nlogs:\n%s", logs)
	}
	again.stop(t)
	replica.kill()
}

// valueInt extracts an integral wire value regardless of whether the
// engine surfaced it as an int or a float cell.
func valueInt(t *testing.T, v server.Value) int {
	t.Helper()
	switch v.T {
	case "i":
		return int(v.I)
	case "f":
		f, err := strconv.ParseFloat(v.F, 64)
		if err != nil || f != float64(int(f)) {
			t.Fatalf("non-integral wire value %+v", v)
		}
		return int(f)
	}
	t.Fatalf("non-numeric wire value %+v", v)
	return 0
}
