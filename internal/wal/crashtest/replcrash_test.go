// Replica crash-and-catch-up: the replication analogue of the WAL crash
// test. A real primary ships its log to a real follower process; the
// follower is SIGKILLed mid-stream while the primary keeps committing,
// then restarted, and must catch back up to zero lag with bit-identical
// answers — the follower keeps no local state, so recovery is a fresh
// snapshot bootstrap plus live tail replay every time.
package crashtest

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pip"
	"pip/internal/server"
)

// newPipdCmd builds an exec.Cmd for pipd with output captured.
func newPipdCmd(bin string, logs *lockedBuffer, args ...string) *exec.Cmd {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logs
	cmd.Stderr = logs
	return cmd
}

// startPrimary boots pipd with both a query listener and a replication
// listener, returning the process and the replication address followers
// dial.
func startPrimary(t *testing.T, bin, dataDir string) (*pipd, string) {
	t.Helper()
	addr, replAddr := freeAddr(t), freeAddr(t)
	logs := &lockedBuffer{}
	cmd := newPipdCmd(bin, logs,
		"-addr", addr, "-data-dir", dataDir, "-seed", "7",
		"-snapshot-every", "25", "-session-timeout", "0",
		"-replicate-addr", replAddr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &pipd{cmd: cmd, addr: addr, logs: logs}
	t.Cleanup(func() { p.kill() })
	awaitHealthy(t, p)
	return p, replAddr
}

// startReplica boots a follower pipd against the primary's replication
// address. The seed must match the primary's: the catalog is a pure
// function of (seed, statement log), so a differing seed is a
// configuration error the follower fail-stops on.
func startReplica(t *testing.T, bin, primaryRepl, id string) *pipd {
	t.Helper()
	addr := freeAddr(t)
	logs := &lockedBuffer{}
	cmd := newPipdCmd(bin, logs,
		"-addr", addr, "-seed", "7", "-session-timeout", "0",
		"-follow", primaryRepl, "-replica-id", id)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &pipd{cmd: cmd, addr: addr, logs: logs}
	t.Cleanup(func() { p.kill() })
	awaitHealthy(t, p)
	return p
}

// awaitHealthy blocks until the process answers /healthz.
func awaitHealthy(t *testing.T, p *pipd) {
	t.Helper()
	c := server.NewClient(p.addr)
	deadline := time.Now().Add(20 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			p.kill()
			t.Fatalf("pipd did not come up: %v\nlogs:\n%s", err, p.logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricValue scrapes one unlabelled gauge/counter from /metrics.
func metricValue(t *testing.T, addr, name string) (float64, bool) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return v, true
		}
	}
	return 0, false
}

// awaitCaughtUp polls the replica's /metrics until it reports zero lag at
// the primary's current tail.
func awaitCaughtUp(t *testing.T, replica *pipd, primarySeq float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		applied, ok1 := metricValue(t, replica.addr, "pip_repl_applied_seq")
		lag, ok2 := metricValue(t, replica.addr, "pip_repl_lag_records")
		if ok1 && ok2 && lag == 0 && applied >= primarySeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: applied=%v lag=%v want seq>=%v\nlogs:\n%s",
				applied, lag, primarySeq, replica.logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestReplicaKillCatchup(t *testing.T) {
	if testing.Short() {
		t.Skip("crash injection boots real servers")
	}
	bin := buildPipd(t)
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("randomized kill schedule seed: %d", seed)

	primary, replAddr := startPrimary(t, bin, t.TempDir())
	replica := startReplica(t, bin, replAddr, "r-crash")

	// A single-session write storm on the primary; every statement is
	// acknowledged before the next, so the log contents are known exactly.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sess, err := server.NewClient(primary.addr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "CREATE TABLE crash (w, i, v)"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	inserted := 0
	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf("INSERT INTO crash VALUES (0, %d, CREATE_VARIABLE('Normal', %d, 1))", i, 10+i%7)
			if _, err := sess.Exec(ctx, q); err != nil {
				t.Errorf("primary insert %d failed: %v", i, err)
				return
			}
			mu.Lock()
			inserted++
			mu.Unlock()
		}
	}()

	// Let replication make real progress, then SIGKILL the follower at a
	// randomized moment while the storm is still running — the stream dies
	// mid-flight, and the primary keeps committing into the gap.
	waitInserted := func(n int) {
		for start := time.Now(); ; {
			mu.Lock()
			got := inserted
			mu.Unlock()
			if got >= n {
				return
			}
			if time.Since(start) > 30*time.Second {
				t.Fatalf("storm stalled at %d inserts\nlogs:\n%s", got, primary.logs.String())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitInserted(10)
	time.Sleep(time.Duration(rng.Intn(200)) * time.Millisecond)
	replica.kill()
	t.Log("killed replica mid-stream")

	// 30+ more commits land while the replica is down, spanning at least
	// one snapshot rotation (snapshot-every=25) so catch-up may bootstrap
	// from a snapshot the dead replica never saw.
	mu.Lock()
	killedAt := inserted
	mu.Unlock()
	waitInserted(killedAt + 30)
	close(stop)
	<-stormDone
	mu.Lock()
	total := inserted
	mu.Unlock()
	t.Logf("killed replica after ~%d inserts, primary finished at %d", killedAt, total)

	// Restart the follower. It has no local state: it must re-bootstrap
	// from the primary's newest snapshot and replay the tail to zero lag.
	replica2 := startReplica(t, bin, replAddr, "r-crash-2")
	primarySeq, ok := metricValue(t, primary.addr, "pip_repl_last_seq")
	if !ok {
		t.Fatalf("primary exposes no pip_repl_last_seq\nlogs:\n%s", primary.logs.String())
	}
	if want := float64(total + 1); primarySeq != want {
		t.Fatalf("primary last_seq = %v, want %v (CREATE + %d INSERTs)", primarySeq, want, total)
	}
	awaitCaughtUp(t, replica2, primarySeq)

	// Caught up means bit-identical: every probe answers with the same
	// bytes on both sides, including sampled aggregates.
	for _, q := range dumpQueries {
		a := resultDump(t, primary.addr, q)
		b := resultDump(t, replica2.addr, q)
		if a != b {
			t.Errorf("primary and caught-up replica diverge on %q:\n  %.200s\n  %.200s", q, a, b)
		}
	}

	// The caught-up replica still refuses writes with the typed error.
	rsess, err := server.NewClient(replica2.addr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close(ctx)
	if _, err := rsess.Exec(ctx, "INSERT INTO crash VALUES (9, 9, 9)"); !errors.Is(err, pip.ErrReadOnly) {
		t.Errorf("replica write: got %v, want ErrReadOnly", err)
	}
}
