// Package wal makes a pip database durable: an append-only write-ahead
// statement log plus periodic catalog snapshots, with recovery that loads
// the latest valid snapshot and replays the log suffix.
//
// The log records statements, not pages. The engine is deterministic —
// DDL/DML never consult the sampler, and random-variable identifiers are
// allocated from a counter in statement order — so the catalog is a pure
// function of the serialized statement sequence, and replaying that
// sequence on a fresh database reconstructs it byte-for-byte, allocator
// state included. Same (seed, statement log) therefore means bit-identical
// query answers after recovery, which is exactly the property the paper's
// determinism guarantees rest on and what the crash tests assert.
//
// On disk, a data directory holds:
//
//	wal-<firstseq>.log   append-only segments: 8-byte magic, then
//	                     length-prefixed CRC-checked records
//	snap-<seq>.pips      catalog snapshots covering records 1..seq,
//	                     written to a temp file, fsynced, renamed
//
// A snapshot rotates the log to a fresh segment; the two newest snapshots
// are retained (the older one is the fallback if the newest turns out
// unreadable) and segments wholly covered by the older retained snapshot
// are pruned. Recovery tolerates a torn tail in the final segment — the
// normal artifact of a crash mid-append — by truncating to the last valid
// record and reporting a typed error in RecoveryInfo; corruption anywhere
// else fails recovery loudly rather than silently dropping acknowledged
// statements. A tail only counts as torn when nothing decodable follows
// the damage: an intact record past the bad frame means acknowledged
// statements sit beyond mid-segment corruption, and recovery refuses to
// drop them.
//
// The store itself fail-stops: the first append or sync failure poisons
// it, and every later mutation is refused with ErrPoisoned until the
// process restarts and recovers. Appending past a failure could tear the
// log mid-file or duplicate a sequence number — and, because the failed
// statement already applied in memory, later records would replay on a
// base the log cannot reconstruct.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Typed failures recovery and the codecs report; match with errors.Is.
var (
	// ErrCorruptRecord reports a log record that fails its length, CRC, or
	// payload checks somewhere other than the tail of the final segment.
	ErrCorruptRecord = errors.New("wal: corrupt log record")
	// ErrTruncatedTail reports a final segment ending mid-record — the
	// expected artifact of a crash during an append. Recovery tolerates it:
	// the tail is dropped (and truncated away when opening for writing) and
	// the error is reported in RecoveryInfo.TailErr rather than returned.
	ErrTruncatedTail = errors.New("wal: truncated log tail")
	// ErrSnapshotCorrupt reports an unreadable snapshot file. Recovery falls
	// back to the next-older snapshot; it is fatal only when no snapshot
	// loads and the log does not reach back to record 1.
	ErrSnapshotCorrupt = errors.New("wal: corrupt snapshot")
	// ErrGap reports missing records: segment sequence numbers that do not
	// chain, or a log that starts after the loaded snapshot's coverage.
	ErrGap = errors.New("wal: log gap")
	// ErrReplayDiverged reports a replayed statement whose outcome
	// (success/failure) contradicts what the log recorded — the database no
	// longer deterministically reproduces its own history, so recovery
	// refuses to continue with a silently wrong catalog.
	ErrReplayDiverged = errors.New("wal: replay diverged from logged outcome")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("wal: store closed")
	// ErrCompacted reports a Subscribe starting point older than the oldest
	// record still on disk: pruning compacted that history into a snapshot.
	// Subscribers wanting it (a bootstrapping replica) must load the newest
	// snapshot first and resubscribe past its coverage.
	ErrCompacted = errors.New("wal: requested records compacted into a snapshot")
	// ErrSubscriberLagged reports a subscription dropped because its
	// consumer fell too far behind the append rate to buffer. The
	// subscriber's next Next returns it; resubscribing from the last
	// delivered record (or a snapshot) resumes cleanly.
	ErrSubscriberLagged = errors.New("wal: subscriber lagged too far behind appends")
	// ErrPoisoned reports a mutation refused because an earlier append or
	// sync failed. The store fail-stops on the first such failure: the disk
	// may hold torn bytes or an unacknowledged frame at the next sequence
	// number, and the failed statement applied in memory without a log
	// record, so any further append would produce a log that replays to a
	// different catalog than the one running. Restart and recover to
	// resume.
	ErrPoisoned = errors.New("wal: store poisoned by earlier append failure")
)

// Options configures a Store.
type Options struct {
	// Fsync syncs the log file after every appended record, making the
	// commit acknowledgement mean "on disk" rather than "in the page cache".
	// Off, a crash of the whole machine can lose the last few acknowledged
	// statements; a crash of just the process cannot.
	Fsync bool
	// SnapshotEvery takes a catalog snapshot automatically after this many
	// appended records (0 disables automatic snapshots; Snapshot can always
	// be called explicitly, e.g. on graceful shutdown).
	SnapshotEvery int
}

// File naming: segments are named by the sequence number of their first
// record, snapshots by the last record they cover, both zero-padded so
// lexical order is numeric order.
const (
	segMagic    = "PIPWAL01"
	snapMagic   = "PIPSNP01"
	segPrefix   = "wal-"
	segSuffix   = ".log"
	snapPrefix  = "snap-"
	snapSuffix  = ".pips"
	seqNumWidth = 20
)

// segName returns the file name of the segment whose first record is seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%0*d%s", segPrefix, seqNumWidth, seq, segSuffix)
}

// snapName returns the file name of the snapshot covering records 1..seq.
func snapName(seq uint64) string {
	return fmt.Sprintf("%s%0*d%s", snapPrefix, seqNumWidth, seq, snapSuffix)
}

// parseSeqName extracts the sequence number from a segment or snapshot
// file name with the given prefix/suffix.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != seqNumWidth {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listDir returns the segment first-sequence numbers and snapshot coverage
// sequence numbers present in dir, each sorted ascending.
func listDir(dir string) (segs, snaps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n, ok := parseSeqName(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, n)
		} else if n, ok := parseSeqName(e.Name(), snapPrefix, snapSuffix); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// removeAllNamed deletes the named files from dir, ignoring not-exist.
func removeAllNamed(dir string, names []string) {
	for _, n := range names {
		_ = os.Remove(filepath.Join(dir, n))
	}
}
