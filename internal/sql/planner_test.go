package sql

import (
	"context"
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/sampler"
)

// allRulesOff disables every rewrite rule: the pipeline degenerates to the
// pre-planner semantics (cross-product odometer + one post-join filter),
// which the equivalence corpus uses as its reference.
var allRulesOff = Hints{NoFold: true, NoPushdown: true, NoHashJoin: true, NoPrune: true}

// plannerDB builds a catalog exercising joins, symbolic cells and
// aggregates.
func plannerDB(t *testing.T) *core.DB {
	t.Helper()
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 314159
	db := core.NewDB(cfg)
	mustExec(t, db, "CREATE TABLE o (cust, shipto, price)")
	mustExec(t, db, "CREATE TABLE s (dest, duration)")
	mustExec(t, db, "INSERT INTO o VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))")
	mustExec(t, db, "INSERT INTO o VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))")
	mustExec(t, db, "INSERT INTO o VALUES ('Amy', 'NY', 55)")
	mustExec(t, db, "INSERT INTO s VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))")
	mustExec(t, db, "INSERT INTO s VALUES ('LA', 4)")
	mustExec(t, db, "CREATE TABLE r (a, ra)")
	mustExec(t, db, "CREATE TABLE s2 (a, b, sb)")
	mustExec(t, db, "CREATE TABLE u (b, uc)")
	mustExec(t, db, "INSERT INTO r VALUES (1, 'r1'), (2, 'r2'), (3, 'r3')")
	mustExec(t, db, "INSERT INTO s2 VALUES (1, 10, 's1'), (2, 20, 's2'), (2, 30, 's3')")
	mustExec(t, db, "INSERT INTO u VALUES (10, 'u1'), (20, 'u2'), (30, 'u3'), (40, 'u4')")
	return db
}

// execHinted executes one statement under planner hints.
func execHinted(t *testing.T, db *core.DB, q string, h Hints) *ctable.Table {
	t.Helper()
	out, err := ExecContext(WithHints(context.Background(), h), db, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return out
}

// TestPlannerEquivalenceCorpus asserts the rewritten pipeline returns
// tables bit-identical (values, conditions, row order, schema) to the
// rules-off reference — i.e. to pre-planner cross-product-then-filter
// semantics — across joins, per-row functions, aggregates, DISTINCT,
// ORDER BY and LIMIT.
func TestPlannerEquivalenceCorpus(t *testing.T) {
	db := plannerDB(t)
	corpus := []string{
		"SELECT * FROM o",
		"SELECT cust, price FROM o WHERE price > 60",
		"SELECT cust, price * 2 AS pp FROM o WHERE price > 60 AND price < 95",
		"SELECT o.cust, s.duration FROM o, s WHERE o.shipto = s.dest",
		"SELECT o.cust FROM o, s WHERE o.shipto = s.dest AND s.duration > 4",
		"SELECT o.cust, conf() FROM o, s WHERE o.shipto = s.dest AND s.duration > 4",
		"SELECT expectation(price) AS ev FROM o WHERE price > 90",
		"SELECT r.ra, s2.sb, u.uc FROM r, s2, u WHERE r.a = s2.a AND s2.b = u.b",
		"SELECT r.ra, u.uc FROM r, u WHERE r.a < u.b",
		"SELECT r.ra FROM r, u",
		"SELECT r.ra, s2.sb, u.uc FROM r, s2, u WHERE r.a = s2.a AND s2.b = u.b AND u.uc <> 'u2'",
		"SELECT DISTINCT shipto FROM o",
		"SELECT DISTINCT o.shipto FROM o, s WHERE o.shipto = s.dest",
		"SELECT cust FROM o ORDER BY cust DESC LIMIT 2",
		"SELECT ra FROM r ORDER BY ra LIMIT 1",
		"SELECT cust FROM o WHERE 1 = 1 AND price > 60",
		"SELECT cust FROM o WHERE 1 = 0",
		"SELECT expected_sum(o.price) AS loss FROM o, s WHERE o.shipto = s.dest AND s.duration >= 7",
		"SELECT shipto, expected_sum(price) AS total FROM o GROUP BY shipto ORDER BY shipto",
		"SELECT shipto, expected_count(*) AS c, expected_avg(price) AS a FROM o GROUP BY shipto ORDER BY shipto",
		"SELECT expected_max(price) AS m FROM o",
		"SELECT shipto, conf() AS p FROM o WHERE price > 70 GROUP BY shipto",
	}
	for _, q := range corpus {
		ref := execHinted(t, db, q, allRulesOff)
		got := execHinted(t, db, q, Hints{})
		if got.String() != ref.String() {
			t.Fatalf("%s:\nplanned:\n%s\nreference:\n%s", q, got, ref)
		}
	}
}

// TestPlannerEquivalencePrepared asserts prepared-statement re-execution
// with different bindings stays bit-identical to the reference on each run
// (plans are rebuilt per execution, so folding sees each binding).
func TestPlannerEquivalencePrepared(t *testing.T) {
	db := plannerDB(t)
	p, err := Prepare("SELECT o.cust FROM o, s WHERE o.shipto = s.dest AND o.price > ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, arg := range []float64{50, 70, 90, 1000} {
		ref, err := p.ExecContext(WithHints(context.Background(), allRulesOff), db, ctable.Float(arg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.ExecContext(context.Background(), db, ctable.Float(arg))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != ref.String() {
			t.Fatalf("arg %v:\nplanned:\n%s\nreference:\n%s", arg, got, ref)
		}
	}
}

// explainText renders the plan of one statement.
func explainText(t *testing.T, db *core.DB, q string) string {
	t.Helper()
	node, err := Explain(db, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return node.String()
}

// TestPlanShapeSnapshots pins the plan produced by each rewrite rule.
func TestPlanShapeSnapshots(t *testing.T) {
	db := plannerDB(t)
	cases := []struct {
		name, q, want string
	}{
		{"hash-join-extraction",
			"SELECT o.cust, s.duration FROM o, s WHERE o.shipto = s.dest",
			`Project (cust, duration)
  Filter (o.shipto = s.dest)
    HashJoin (o.shipto = s.dest)
      Scan o [cols: cust, shipto]
      Scan s`},
		{"pushdown-and-prune",
			"SELECT o.cust FROM o, s WHERE o.shipto = s.dest AND s.duration > 4",
			`Project (cust)
  Filter (o.shipto = s.dest AND s.duration > 4.0)
    HashJoin (o.shipto = s.dest)
      Scan o [cols: cust, shipto]
      Scan s [pre: s.duration > 4.0]`},
		{"three-table-left-deep",
			"SELECT r.ra, u.uc FROM r, s2, u WHERE r.a = s2.a AND s2.b = u.b",
			`Project (ra, uc)
  Filter (r.a = s2.a AND s2.b = u.b)
    HashJoin (s2.b = u.b)
      HashJoin (r.a = s2.a)
        Scan r
        Scan s2 [cols: a, b]
      Scan u`},
		{"nested-loop-fallback",
			"SELECT r.ra, u.uc FROM r, u WHERE r.a < u.b",
			`Project (ra, uc)
  Filter (r.a < u.b)
    NestedLoop
      Scan r
      Scan u`},
		{"prune-to-zero-width",
			"SELECT r.ra FROM r, u",
			`Project (ra)
  NestedLoop
    Scan r [cols: ra]
    Scan u [cols: none]`},
		{"constant-false-folds-to-result",
			"SELECT cust FROM o WHERE 1 = 0",
			`Project (cust)
  Result (no rows: 1.0 = 0.0 is false)`},
		{"constant-true-conjunct-drops",
			"SELECT cust FROM o WHERE 1 = 1 AND price > 60",
			`Project (cust)
  Filter (price > 60.0)
    Scan o`},
		{"blocking-operator-stack",
			"SELECT DISTINCT cust FROM o ORDER BY cust DESC LIMIT 2",
			`Limit 2
  Sort (cust DESC)
    Distinct
      Project (cust)
        Scan o`},
		{"aggregate-pipeline",
			"SELECT shipto, expected_sum(price) AS total FROM o GROUP BY shipto",
			`Aggregate (shipto, total) [group by shipto]
  Scan o`},
	}
	for _, tc := range cases {
		if got := explainText(t, db, tc.q); got != tc.want {
			t.Errorf("%s:\ngot:\n%s\nwant:\n%s", tc.name, got, tc.want)
		}
	}
}

// TestPlanHints verifies context hints disable individual rules.
func TestPlanHints(t *testing.T) {
	db := plannerDB(t)
	q := "SELECT o.cust FROM o, s WHERE o.shipto = s.dest AND s.duration > 4"
	node, err := ExplainContext(WithHints(context.Background(), allRulesOff), db, q)
	if err != nil {
		t.Fatal(err)
	}
	text := node.String()
	if strings.Contains(text, "HashJoin") || strings.Contains(text, "[pre:") || strings.Contains(text, "[cols:") {
		t.Fatalf("rules-off plan still rewritten:\n%s", text)
	}
	if !strings.Contains(text, "NestedLoop") {
		t.Fatalf("rules-off plan missing NestedLoop:\n%s", text)
	}
}

// TestExplainStatement runs EXPLAIN end-to-end through the statement
// surface: the result is a one-column QUERY PLAN table, and ANALYZE
// annotates operators with row counts.
func TestExplainStatement(t *testing.T) {
	db := plannerDB(t)
	out := mustExec(t, db, "EXPLAIN SELECT o.cust FROM o, s WHERE o.shipto = s.dest")
	if len(out.Schema) != 1 || out.Schema[0].Name != "QUERY PLAN" {
		t.Fatalf("schema %v", out.Schema.Names())
	}
	if out.Len() < 4 || !strings.Contains(out.String(), "HashJoin") {
		t.Fatalf("plan:\n%s", out)
	}
	if strings.Contains(out.String(), "rows=") {
		t.Fatalf("non-ANALYZE plan carries row counts:\n%s", out)
	}

	out = mustExec(t, db, "EXPLAIN ANALYZE SELECT o.cust FROM o, s WHERE o.shipto = s.dest")
	text := out.String()
	if !strings.Contains(text, "rows=") || !strings.Contains(text, "Execution time:") {
		t.Fatalf("ANALYZE plan missing counters:\n%s", text)
	}
}

// TestExplainAnalyzeRowCounts pins the streaming behavior ANALYZE exposes:
// a LIMIT stops pulling the scan, and a constant-false WHERE never scans.
func TestExplainAnalyzeRowCounts(t *testing.T) {
	db := plannerDB(t)
	node, err := Explain(db, "EXPLAIN ANALYZE SELECT cust FROM o LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	scan := node
	for len(scan.Children) > 0 {
		scan = scan.Children[0]
	}
	if scan.Op != "Scan" || scan.Rows != 2 {
		t.Fatalf("scan under LIMIT 2 emitted %d rows:\n%s", scan.Rows, node)
	}

	node, err = Explain(db, "EXPLAIN ANALYZE SELECT cust FROM o WHERE 1 = 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(node.String(), "Result") || strings.Contains(node.String(), "Scan") {
		t.Fatalf("constant-false plan scans:\n%s", node)
	}
}

// TestExplainTypedTree checks the programmatic Explain surface: typed
// nodes, children, columns, placeholder binding.
func TestExplainTypedTree(t *testing.T) {
	db := plannerDB(t)
	node, err := Explain(db, "SELECT o.cust FROM o, s WHERE o.shipto = s.dest AND o.price > ?", ctable.Float(90))
	if err != nil {
		t.Fatal(err)
	}
	if node.Op != "Project" || len(node.Columns) != 1 || node.Columns[0] != "cust" {
		t.Fatalf("root %+v", node)
	}
	if node.Analyzed {
		t.Fatal("plain Explain reported analyzed counters")
	}
	var ops []string
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		ops = append(ops, n.Op)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(node)
	want := []string{"Project", "Filter", "HashJoin", "Scan", "Scan"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Fatalf("operator walk %v, want %v", ops, want)
	}
	// Bound placeholder folds into the plan text as a literal.
	if !strings.Contains(node.String(), "90") {
		t.Fatalf("bound constant missing from plan:\n%s", node)
	}
	// Arity mismatch is an ErrBind, as in execution.
	if _, err := Explain(db, "SELECT cust FROM o WHERE price > ?"); err == nil {
		t.Fatal("unbound placeholder accepted")
	}
}

// TestHashJoinSymbolicKeys exercises the fallback path: symbolic join keys
// pair with everything at the join and receive their condition atom from
// the final filter, identically to the reference pipeline.
func TestHashJoinSymbolicKeys(t *testing.T) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 7
	db := core.NewDB(cfg)
	mustExec(t, db, "CREATE TABLE a (k, av)")
	mustExec(t, db, "CREATE TABLE b (k, bv)")
	mustExec(t, db, "INSERT INTO a VALUES (1, 'a1'), (CREATE_VARIABLE('DiscreteUniform', 1, 2), 'a2')")
	mustExec(t, db, "INSERT INTO b VALUES (1, 'b1'), (2, 'b2'), (CREATE_VARIABLE('DiscreteUniform', 1, 3), 'b3')")
	q := "SELECT a.av, b.bv FROM a, b WHERE a.k = b.k"
	ref := execHinted(t, db, q, allRulesOff)
	got := execHinted(t, db, q, Hints{})
	if got.String() != ref.String() {
		t.Fatalf("symbolic keys diverge:\nplanned:\n%s\nreference:\n%s", got, ref)
	}
	// The deterministic pair (1, 'a1')x(1, 'b1') plus every symbolic pairing
	// must survive with its comparison atom.
	if got.Len() != 5 {
		t.Fatalf("rows %d:\n%s", got.Len(), got)
	}
}

// TestConstantFalseSkipsRowErrors verifies folding preserves short-circuit
// semantics when the constant-false conjunct comes first: conjuncts after
// it never evaluate, so a would-be type error downstream stays silent
// exactly as in the reference.
func TestConstantFalseSkipsRowErrors(t *testing.T) {
	db := plannerDB(t)
	q := "SELECT cust FROM o WHERE 1 = 0 AND cust > 5"
	ref := execHinted(t, db, q, allRulesOff)
	got := execHinted(t, db, q, Hints{})
	if got.Len() != 0 || ref.Len() != 0 {
		t.Fatalf("constant-false returned rows")
	}
	if len(got.Schema) != 1 || got.Schema[0].Name != "cust" {
		t.Fatalf("schema %v", got.Schema.Names())
	}
}

// TestRewriteErrorScope pins the deliberate boundary of the bit-identity
// contract (see rewrite.go): rewrites may prune the very enumeration that
// would raise an ill-typed-comparison error, so the planned query succeeds
// where rules-off evaluation errors — exactly as deterministic SQL engines
// treat errors in unreached rows. Each case asserts the reference errors
// AND the planned result is the error-free evaluation's answer.
func TestRewriteErrorScope(t *testing.T) {
	db := plannerDB(t)
	mustExec(t, db, "CREATE TABLE mt (k, mv)")
	mustExec(t, db, "INSERT INTO mt VALUES (1, 'm1'), ('x', 'm2')") // mixed-kind key
	mustExec(t, db, "CREATE TABLE nk (k, nv)")
	mustExec(t, db, "INSERT INTO nk VALUES (1, 'n1')")

	cases := []struct {
		name, q  string
		wantRows int
	}{
		// Hash pairing never enumerates the string-vs-number pair the
		// cross product errors on.
		{"hash-join-kind-mismatch",
			"SELECT mt.mv, nk.nv FROM mt, nk WHERE mt.k = nk.k", 1},
		// Folding short-circuits on a later constant-false conjunct; the
		// reference evaluates the erroring conjunct first, per row.
		{"fold-after-erroring-conjunct",
			"SELECT mv FROM mt WHERE mv > 5 AND 1 = 0", 0},
		// Pushdown empties the nk input, starving the final filter of the
		// pairs whose first conjunct errors.
		{"pushdown-starves-erroring-conjunct",
			"SELECT mt.mv FROM mt, nk WHERE mt.mv > 5 AND nk.nv = 'zz'", 0},
	}
	for _, tc := range cases {
		if _, err := ExecContext(WithHints(context.Background(), allRulesOff), db, tc.q); err == nil ||
			!strings.Contains(err.Error(), "incomparable") {
			t.Fatalf("%s: rules-off reference did not raise the type error (got %v)", tc.name, err)
		}
		got := execHinted(t, db, tc.q, Hints{})
		if got.Len() != tc.wantRows {
			t.Fatalf("%s: planned returned %d rows, want %d:\n%s", tc.name, got.Len(), tc.wantRows, got)
		}
	}
}
