package sql

import (
	"errors"
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/sampler"
)

// TestReadOnlyReplicaRejectsWrites pins the replica write guard: once a
// database is marked read-only, every catalog mutation is refused with
// core.ErrReadOnly naming the primary, while reads, SHOW and SET (session-
// local state) keep working.
func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	db := plannerDB(t)
	db.SetReadOnly("primary:7432")

	for _, q := range []string{
		"CREATE TABLE x (a)",
		"INSERT INTO o VALUES ('Eve', 1)",
		"DROP TABLE o",
	} {
		_, err := Exec(db, q)
		if !errors.Is(err, core.ErrReadOnly) {
			t.Fatalf("%s on a replica: got %v, want ErrReadOnly", q, err)
		}
		if !strings.Contains(err.Error(), "primary:7432") {
			t.Fatalf("%s: error %q does not name the primary", q, err)
		}
	}

	// Reads and session-local statements still work.
	out := mustExec(t, db, "SELECT cust FROM o ORDER BY cust")
	if len(out.Tuples) != 3 {
		t.Fatalf("read on a replica returned %d rows, want 3", len(out.Tuples))
	}
	mustExec(t, db, "SET max_samples = 512")
	if got := db.Config().MaxSamples; got != 512 {
		t.Fatalf("SET on a replica did not apply: MaxSamples = %d", got)
	}
	mustExec(t, db, "SHOW STATS")
}

// TestApplierBypassesReadOnly pins the one legitimate mutation path on a
// replica: handles marked as the replication applier write through the
// guard, and the applier bit is handle-local — sessions derived from an
// applier handle are ordinary read-only sessions.
func TestApplierBypassesReadOnly(t *testing.T) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 7
	db := core.NewDB(cfg)
	db.SetReadOnly("primary:7432")
	db.MarkApplier()

	mustExec(t, db, "CREATE TABLE t (a)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	sess := db.Session()
	if _, err := Exec(sess, "INSERT INTO t VALUES (2)"); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("session of an applier handle inherited the applier bit: %v", err)
	}
	out := mustExec(t, sess, "SELECT a FROM t")
	if len(out.Tuples) != 1 {
		t.Fatalf("replica session read %d rows, want 1", len(out.Tuples))
	}
}

// TestCatalogVersionAdvancesOnCommit pins the version counter replication
// telemetry reads: bumped by every committed mutation, stable across reads.
func TestCatalogVersionAdvancesOnCommit(t *testing.T) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 7
	db := core.NewDB(cfg)
	v0 := db.CatalogVersion()
	mustExec(t, db, "CREATE TABLE t (a)")
	v1 := db.CatalogVersion()
	if v1 <= v0 {
		t.Fatalf("CatalogVersion did not advance on DDL: %d -> %d", v0, v1)
	}
	mustExec(t, db, "SELECT a FROM t")
	if got := db.CatalogVersion(); got != v1 {
		t.Fatalf("CatalogVersion moved on a read: %d -> %d", v1, got)
	}
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if got := db.CatalogVersion(); got <= v1 {
		t.Fatalf("CatalogVersion did not advance on DML: %d -> %d", v1, got)
	}
}

// TestShowStatsRegisteredScope pins the extension point SHOW STATS grew for
// replication: registered scopes render their rows after the built-ins.
func TestShowStatsRegisteredScope(t *testing.T) {
	db := plannerDB(t)
	db.RegisterStatsScope("repl", func() map[string]float64 {
		return map[string]float64{"applied_seq": 42, "lag_records": 3}
	})
	out := mustExec(t, db, "SHOW STATS")
	rows := map[[2]string]float64{}
	for _, tp := range out.Tuples {
		rows[[2]string{tp.Values[0].S, tp.Values[1].S}] = tp.Values[2].F
	}
	if rows[[2]string{"repl", "applied_seq"}] != 42 {
		t.Fatalf("repl scope missing from SHOW STATS: %v", rows)
	}
	if rows[[2]string{"repl", "lag_records"}] != 3 {
		t.Fatalf("repl lag row missing from SHOW STATS: %v", rows)
	}
}
