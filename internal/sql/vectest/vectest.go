// Package vectest is the differential bit-identity harness for the two SQL
// execution engines: the row-at-a-time operators and the columnar batch
// engine (internal/sql/vecops.go). It seeds one catalog from the paper's
// evaluation generators (synthetic TPC-H and the iceberg scenario, §VI) and
// runs a query corpus through both engines — switched per request via
// planner hints or per session via SET vectorize = on|off — asserting
// byte-identical result tables (values, sampled moments, conditions, row
// order) and identical per-operator EXPLAIN ANALYZE row counts.
//
// Float comparison rides on ctable.Value.String, which renders every NaN
// payload as "NaN" — the one place bit-identity is deliberately relaxed,
// since IEEE 754 leaves propagated-NaN payloads unspecified (see
// internal/expr/program.go).
package vectest

import (
	"context"
	"fmt"

	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/iceberg"
	"pip/internal/sampler"
	"pip/internal/sql"
	"pip/internal/tpch"
)

// Seed fixes the world seed and generator seeds so every run of the harness
// samples identical worlds.
const Seed = 20100301

// SeedDB builds the harness catalog: TPC-H-shaped tables (customers with
// the Q1/Q3 growth and delivery models, suppliers with the Q2 duration
// models, historical orders) plus the iceberg scenario (symbolic sighting
// positions, deterministic ships). All symbolic cells allocate through SQL
// CREATE_VARIABLE, so two databases seeded identically allocate identical
// variables and sample identical worlds.
func SeedDB(samples, workers int) (*core.DB, error) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = Seed
	cfg.FixedSamples = samples
	cfg.Workers = workers
	db := core.NewDB(cfg)

	exec := func(q string, args ...ctable.Value) error {
		_, err := sql.ExecContext(context.Background(), db, q, args...)
		return err
	}
	f := ctable.Float
	s := ctable.String_

	data := tpch.Generate(tpch.SmallScale(), 1)
	if err := exec("CREATE TABLE customers (cust, name, growth, price, thresh, delivery, orders)"); err != nil {
		return nil, err
	}
	for _, c := range data.Customers[:12] {
		sup := data.Suppliers[c.CustKey%len(data.Suppliers)]
		mu := sup.ManufMean + sup.ShipMean
		sigma := sup.ManufStd + sup.ShipStd
		err := exec("INSERT INTO customers VALUES (?, ?, ?, ?, ?, CREATE_VARIABLE('Normal', ?, ?), CREATE_VARIABLE('Poisson', ?))",
			f(float64(c.CustKey)), s(c.Name), f(c.GrowthRate()), f(c.AvgOrderPrice),
			f(c.SatisfactionThreshold), f(mu), f(sigma), f(c.GrowthRate()*10))
		if err != nil {
			return nil, err
		}
	}
	if err := exec("CREATE TABLE suppliers (supp, nation, manuf, ship)"); err != nil {
		return nil, err
	}
	for _, sup := range data.Suppliers[:8] {
		err := exec("INSERT INTO suppliers VALUES (?, ?, CREATE_VARIABLE('Normal', ?, ?), CREATE_VARIABLE('Normal', ?, ?))",
			f(float64(sup.SuppKey)), s(sup.Nation), f(sup.ManufMean), f(sup.ManufStd), f(sup.ShipMean), f(sup.ShipStd))
		if err != nil {
			return nil, err
		}
	}
	if err := exec("CREATE TABLE orders (okey, cust, price)"); err != nil {
		return nil, err
	}
	for _, o := range data.Orders[:30] {
		err := exec("INSERT INTO orders VALUES (?, ?, ?)",
			f(float64(o.OrderKey)), f(float64(o.CustKey)), f(o.Price))
		if err != nil {
			return nil, err
		}
	}

	berg := iceberg.Generate(8, 3, Seed)
	if err := exec("CREATE TABLE sightings (berg, danger, plat, plon)"); err != nil {
		return nil, err
	}
	for _, sg := range berg.Sightings {
		std := sg.PositionStd()
		err := exec("INSERT INTO sightings VALUES (?, ?, CREATE_VARIABLE('Normal', ?, ?), CREATE_VARIABLE('Normal', ?, ?))",
			f(float64(sg.IcebergID)), f(sg.Danger()), f(sg.Lat), f(std), f(sg.Lon), f(std))
		if err != nil {
			return nil, err
		}
	}
	if err := exec("CREATE TABLE ships (ship, lat, lon)"); err != nil {
		return nil, err
	}
	for _, sh := range berg.Ships {
		err := exec("INSERT INTO ships VALUES (?, ?, ?)",
			f(float64(sh.ShipID)), f(sh.Lat), f(sh.Lon))
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Corpus returns the differential query corpus: the planner-equivalence
// shapes (scans, filters, joins, DISTINCT, ORDER BY, LIMIT, constant
// folding) plus SQL renderings of the paper's TPC-H evaluation queries
// (Q1-Q3 analogues) and the iceberg danger query, exercising every sampled
// moment the engine exposes (expectation, variance, stddev, conf, aconf,
// expected_sum/count/avg/max).
func Corpus() []string {
	return []string{
		// Planner-equivalence shapes.
		"SELECT * FROM suppliers",
		"SELECT cust, price FROM customers WHERE price > 200",
		"SELECT cust, price * 2 AS pp FROM customers WHERE price > 150 AND price < 400",
		"SELECT name FROM customers WHERE 1 = 0",
		"SELECT growth * 10 AS g FROM customers ORDER BY g DESC LIMIT 3",
		"SELECT DISTINCT nation FROM suppliers",
		"SELECT o.okey, c.name FROM orders o, customers c WHERE o.cust = c.cust ORDER BY o.okey LIMIT 7",
		"SELECT s1.supp, s2.supp AS peer FROM suppliers s1, suppliers s2 WHERE s1.nation = s2.nation AND s1.supp < s2.supp",
		// TPC-H Q1 analogue: predicted revenue increase.
		"SELECT expected_sum(orders * price) AS rev FROM customers",
		"SELECT cust, expectation(orders * price) AS extra FROM customers LIMIT 5",
		// TPC-H Q2 analogue: worst-case delivery among Japanese suppliers.
		"SELECT expected_max(manuf + ship) AS worst FROM suppliers WHERE nation = 'JAPAN'",
		// TPC-H Q3 analogue: profit lost to dissatisfied customers.
		"SELECT expected_sum(orders * price) AS lost FROM customers WHERE delivery > thresh",
		"SELECT cust, variance(orders) AS v, stddev(orders) AS sd FROM customers WHERE delivery > thresh LIMIT 4",
		// Join + grouped aggregates over historical orders.
		"SELECT c.name, expected_count(*) AS n FROM orders o, customers c WHERE o.cust = c.cust AND o.price > 200 GROUP BY c.name ORDER BY c.name",
		"SELECT c.name, expected_avg(o.price) AS avg_price FROM orders o, customers c WHERE o.cust = c.cust GROUP BY c.name ORDER BY c.name",
		// Iceberg danger query: per-pair threat probability, then per-ship.
		"SELECT s.berg, h.ship, conf() AS threat FROM sightings s, ships h WHERE s.plat > h.lat - 0.5 AND s.plat < h.lat + 0.5 AND s.plon > h.lon - 0.5 AND s.plon < h.lon + 0.5",
		"SELECT h.ship, aconf() AS danger FROM sightings s, ships h WHERE s.plat > h.lat - 0.5 AND s.plat < h.lat + 0.5 AND s.plon > h.lon - 0.5 AND s.plon < h.lon + 0.5 GROUP BY h.ship ORDER BY h.ship",
	}
}

// Result is one query's complete observable output: the rendered result
// table (values, sampled moments, conditions, row order, schema) and the
// per-operator EXPLAIN ANALYZE skeleton.
type Result struct {
	// Rows is the result table rendered by ctable.Table.String.
	Rows string
	// Plan lists one "Op detail rows=N" line per operator, depth-first —
	// wall times and engine-specific counters (batches=) excluded, so the
	// two engines must agree line for line.
	Plan []string
}

// RunQuery executes one corpus query under the given planner hints and
// returns its Result. The query runs twice — once for the rows, once under
// EXPLAIN ANALYZE for the row counts; deferred sampling makes both runs
// draw identical worlds.
func RunQuery(db *core.DB, q string, h sql.Hints) (Result, error) {
	ctx := sql.WithHints(context.Background(), h)
	out, err := sql.ExecContext(ctx, db, q)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", q, err)
	}
	node, err := sql.ExplainContext(ctx, db, "EXPLAIN ANALYZE "+q)
	if err != nil {
		return Result{}, fmt.Errorf("explain %s: %w", q, err)
	}
	return Result{Rows: out.String(), Plan: PlanRows(node)}, nil
}

// PlanRows flattens a plan tree into engine-neutral per-operator lines:
// operator, detail and emitted row count only.
func PlanRows(node *sql.PlanNode) []string {
	var out []string
	var walk func(n *sql.PlanNode, depth int)
	walk = func(n *sql.PlanNode, depth int) {
		out = append(out, fmt.Sprintf("%*s%s %s rows=%d", depth*2, "", n.Op, n.Detail, n.Rows))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(node, 0)
	return out
}
