package vectest

import (
	"runtime"
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/sql"
)

const testSamples = 200

// rowEngine / vecEngine are the per-request switches for the two engines.
var (
	rowEngine = sql.Hints{NoVectorize: true}
	vecEngine = sql.Hints{}
)

func seedDB(t *testing.T, workers int) *core.DB {
	t.Helper()
	db, err := SeedDB(testSamples, workers)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *core.DB, q string, h sql.Hints) Result {
	t.Helper()
	r, err := RunQuery(db, q, h)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func assertSame(t *testing.T, q, label string, got, want Result) {
	t.Helper()
	if got.Rows != want.Rows {
		t.Fatalf("%s: %s rows differ:\ngot:\n%s\nwant:\n%s", q, label, got.Rows, want.Rows)
	}
	if strings.Join(got.Plan, "\n") != strings.Join(want.Plan, "\n") {
		t.Fatalf("%s: %s EXPLAIN row counts differ:\ngot:\n%s\nwant:\n%s",
			q, label, strings.Join(got.Plan, "\n"), strings.Join(want.Plan, "\n"))
	}
}

// TestEngineDifferential is the harness's core assertion: every corpus
// query returns a byte-identical result table and identical per-operator
// row counts on the vectorized and row-at-a-time engines, at every worker
// count, and the outputs are identical across worker counts too.
func TestEngineDifferential(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	baseline := make(map[string]Result)
	for _, w := range workerCounts {
		db := seedDB(t, w)
		for _, q := range Corpus() {
			ref := run(t, db, q, rowEngine)
			got := run(t, db, q, vecEngine)
			assertSame(t, q, "vectorized-vs-row", got, ref)
			if first, ok := baseline[q]; ok {
				assertSame(t, q, "cross-worker", got, first)
			} else {
				baseline[q] = got
			}
		}
	}
}

// TestEngineDifferentialRulesOff re-runs the corpus with every planner
// rewrite disabled: both engines must also agree on the naive
// cross-product-then-filter pipeline (nested-loop joins, no pushdown, no
// pruning).
func TestEngineDifferentialRulesOff(t *testing.T) {
	off := sql.Hints{NoFold: true, NoPushdown: true, NoHashJoin: true, NoPrune: true}
	offRow := off
	offRow.NoVectorize = true
	db := seedDB(t, 1)
	for _, q := range Corpus() {
		ref := run(t, db, q, offRow)
		got := run(t, db, q, off)
		assertSame(t, q, "rules-off vectorized-vs-row", got, ref)
	}
}

// TestSetVectorizeMatchesHint proves the session setting and the
// per-request hint select the same engines: SET vectorize = off must
// reproduce the NoVectorize hint byte for byte, and SET vectorize = on
// must restore the default.
func TestSetVectorizeMatchesHint(t *testing.T) {
	db := seedDB(t, 2)
	q := Corpus()[8] // TPC-H Q1 analogue: sampled aggregate
	hintRow := run(t, db, q, rowEngine)
	hintVec := run(t, db, q, vecEngine)
	if _, err := sql.Exec(db, "SET vectorize = off"); err != nil {
		t.Fatal(err)
	}
	setRow := run(t, db, q, sql.Hints{})
	if _, err := sql.Exec(db, "SET vectorize = on"); err != nil {
		t.Fatal(err)
	}
	setVec := run(t, db, q, sql.Hints{})
	assertSame(t, q, "SET off vs hint", setRow, hintRow)
	assertSame(t, q, "SET on vs default", setVec, hintVec)
}

// TestVectorizedPlanReportsBatches pins the observability split: the
// vectorized engine annotates operators with batches= in EXPLAIN ANALYZE
// while the row engine never does, and the rendered rows= stays identical.
func TestVectorizedPlanReportsBatches(t *testing.T) {
	db := seedDB(t, 1)
	q := "EXPLAIN ANALYZE SELECT cust, price FROM customers WHERE price > 200"
	render := func(h sql.Hints) string {
		out, err := sql.ExecContext(sql.WithHints(t.Context(), h), db, q)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	vec := render(vecEngine)
	row := render(rowEngine)
	if !strings.Contains(vec, "batches=") {
		t.Fatalf("vectorized EXPLAIN ANALYZE lacks batches=:\n%s", vec)
	}
	if strings.Contains(row, "batches=") && !strings.Contains(row, "samples=") {
		t.Fatalf("row-engine EXPLAIN ANALYZE reports operator batches:\n%s", row)
	}
}

// TestStreamingCursorsMatch drives both engines through the public
// streaming cursor (QueryContext) instead of eager drain, pulling one row
// at a time — the row facade over NextBatch must deliver the same rows in
// the same order as the row engine.
func TestStreamingCursorsMatch(t *testing.T) {
	db := seedDB(t, 1)
	for _, q := range []string{
		"SELECT o.okey, c.name FROM orders o, customers c WHERE o.cust = c.cust ORDER BY o.okey LIMIT 7",
		"SELECT cust, price FROM customers WHERE price > 200",
		"SELECT s.berg, h.ship, conf() AS threat FROM sightings s, ships h WHERE s.plat > h.lat - 0.5 AND s.plat < h.lat + 0.5 AND s.plon > h.lon - 0.5 AND s.plon < h.lon + 0.5",
	} {
		stream := func(h sql.Hints) []string {
			cur, err := sql.QueryContext(sql.WithHints(t.Context(), h), db, q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			defer cur.Close()
			var rows []string
			for {
				tup, err := cur.Next()
				if err != nil {
					break
				}
				cells := make([]string, len(tup.Values))
				for i, v := range tup.Values {
					cells[i] = v.String()
				}
				rows = append(rows, strings.Join(cells, "|")+"@"+tup.Cond.String())
			}
			return rows
		}
		ref := stream(rowEngine)
		got := stream(vecEngine)
		if strings.Join(ref, "\n") != strings.Join(got, "\n") {
			t.Fatalf("%s: streamed rows differ:\ngot:\n%s\nwant:\n%s",
				q, strings.Join(got, "\n"), strings.Join(ref, "\n"))
		}
	}
}
