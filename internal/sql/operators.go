// Physical operators: every plan node lowers onto an operator implementing
// the public Cursor interface, so the whole engine — eager execution,
// streaming Rows, EXPLAIN — runs one pull-based pipeline. Operators track
// emitted row counts (and, under EXPLAIN ANALYZE, cumulative wall time) in
// an embedded opBase.

package sql

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/obs"
	"pip/internal/sampler"
)

// opStats holds per-operator execution counters for EXPLAIN ANALYZE.
type opStats struct {
	rows    int64
	batches int64         // column batches emitted (vectorized operators only)
	elapsed time.Duration // cumulative: includes time spent in child operators
}

// operator is a physical plan node: a Cursor plus plan-rendering metadata.
type operator interface {
	Cursor
	base() *opBase
}

// opBase carries the metadata common to all operators.
type opBase struct {
	name   string
	detail string
	cols   []string
	kids   []operator
	stats  opStats
	timed  bool
	// samp, set only on operators that invoke the sampler (Project,
	// Aggregate), scopes their sampler work for EXPLAIN ANALYZE's samples=
	// / batches= / accept= annotations. It chains to the statement scope.
	samp *obs.SamplerStats
}

func (b *opBase) base() *opBase { return b }

// Columns implements Cursor.
func (b *opBase) Columns() []string { return b.cols }

// begin starts a timing window when ANALYZE instrumentation is on.
func (b *opBase) begin() time.Time {
	if b.timed {
		//pipvet:allow detsource ANALYZE timing window, never feeds sampled state
		return time.Now()
	}
	return time.Time{}
}

// emit closes the timing window and counts the emitted row (nil on
// EOF/error), passing the pair through for a tail-call from Next.
func (b *opBase) emit(t0 time.Time, t *ctable.Tuple, err error) (*ctable.Tuple, error) {
	if b.timed {
		//pipvet:allow detsource ANALYZE timing window, never feeds sampled state
		b.stats.elapsed += time.Since(t0)
	}
	if t != nil {
		b.stats.rows++
	}
	return t, err
}

// closeKids closes all child operators, keeping the first error.
func (b *opBase) closeKids() error {
	var first error
	for _, k := range b.kids {
		if err := k.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// physPlan is a lowered, executable plan.
type physPlan struct {
	root operator
	name string // result table name
	qs   *obs.QueryStats
}

// drain runs the plan to completion, materializing the result c-table —
// the eager execution path shares the streaming operator pipeline. The
// whole pull loop is the trace's "execute" phase.
func (p *physPlan) drain() (*ctable.Table, error) {
	defer p.qs.StartPhase("execute")()
	names := p.root.Columns()
	sch := make(ctable.Schema, len(names))
	for i, n := range names {
		sch[i] = ctable.Column{Name: n}
	}
	out := &ctable.Table{Name: p.name, Schema: sch}
	defer p.root.Close()
	if v, ok := p.root.(vecOperator); ok {
		// Batch fast path: gather rows straight out of the root's batches
		// (one backing allocation per batch, no Clone round trip).
		for {
			b, err := v.NextBatch(vecBatchSize)
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			gatherBatch(b, &out.Tuples)
		}
	}
	for {
		t, err := p.root.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Tuples = append(out.Tuples, t.Clone())
	}
}

// lowerNode lowers a logical node onto its operator, recursively.
func lowerNode(env execEnv, n lnode, timed bool) (operator, error) {
	mk := func(cols []string, kids ...operator) opBase {
		return opBase{name: n.op(), detail: n.detail(), cols: cols, kids: kids, timed: timed}
	}
	switch t := n.(type) {
	case *lScan:
		pre := make([]ctable.Compare, len(t.pre))
		for i, p := range t.pre {
			pre[i] = p.cmp
		}
		return &scanOp{opBase: mk(t.outCols()), env: env, tuples: t.tuples, keep: t.keep, pre: pre}, nil
	case *lJoin:
		left, err := lowerNode(env, t.left, timed)
		if err != nil {
			return nil, err
		}
		right, err := lowerNode(env, t.right, timed)
		if err != nil {
			return nil, err
		}
		cols := append(append([]string{}, left.Columns()...), right.Columns()...)
		if t.hash {
			return &hashJoinOp{opBase: mk(cols, left, right), env: env,
				left: left, right: right, leftKeys: t.leftKeys, rightKeys: t.rightKeys}, nil
		}
		return &nestedLoopOp{opBase: mk(cols, left, right), env: env, left: left, right: right}, nil
	case *lFilter:
		child, err := lowerNode(env, t.input, timed)
		if err != nil {
			return nil, err
		}
		pred := make(ctable.AndPred, len(t.preds))
		for i, p := range t.preds {
			pred[i] = p.cmp
		}
		return &filterOp{opBase: mk(child.Columns(), child), child: child, pred: pred}, nil
	case *lProject:
		child, err := lowerNode(env, t.input, timed)
		if err != nil {
			return nil, err
		}
		b := mk(t.names, child)
		oenv := opScope(env, &b)
		return &projectOp{opBase: b, env: oenv, child: child, spec: t}, nil
	case *lAggregate:
		child, err := lowerNode(env, t.input, timed)
		if err != nil {
			return nil, err
		}
		b := mk(t.outNames, child)
		oenv := opScope(env, &b)
		return &aggOp{opBase: b, env: oenv, child: child, spec: t}, nil
	case *lDistinct:
		child, err := lowerNode(env, t.input, timed)
		if err != nil {
			return nil, err
		}
		return &distinctOp{opBase: mk(child.Columns(), child), child: child}, nil
	case *lSort:
		child, err := lowerNode(env, t.input, timed)
		if err != nil {
			return nil, err
		}
		return &sortOp{opBase: mk(child.Columns(), child), child: child, col: t.col, colName: t.name, desc: t.desc}, nil
	case *lLimit:
		child, err := lowerNode(env, t.input, timed)
		if err != nil {
			return nil, err
		}
		return &limitOp{opBase: mk(child.Columns(), child), child: child, remaining: t.n}, nil
	case *lEmpty:
		return &emptyOp{opBase: mk(nil)}, nil
	default:
		return nil, fmt.Errorf("sql: unknown plan node %T", n)
	}
}

// opScope gives a sampling operator (Project, Aggregate) its own telemetry
// scope chained to the statement trace, and returns a copy of env whose
// sampler records into it — so EXPLAIN ANALYZE can attribute sampler work
// to the operator that caused it while the statement and engine counters
// keep aggregating through the parent chain.
func opScope(env execEnv, b *opBase) execEnv {
	var parent *obs.SamplerStats
	if env.qs != nil {
		parent = env.qs.Sampler
	}
	b.samp = &obs.SamplerStats{Parent: parent}
	env.smp = env.smp.WithStats(b.samp)
	return env
}

// ---------------------------------------------------------------------------
// Scan

// scanOp iterates a table snapshot, skipping tuples with trivially false
// conditions, applying the pushed-down drop-only prefilter, and projecting
// the kept columns. Prefilter evaluation errors are deferred to the final
// Filter, which re-evaluates the same comparison on every surviving row;
// rows the prefilter drops (or starves downstream of) follow the rewriter's
// error-scope contract (see rewrite.go).
type scanOp struct {
	opBase
	env    execEnv
	tuples []ctable.Tuple
	keep   []int
	pre    []ctable.Compare
	i      int
	done   bool
}

// Next implements Cursor.
func (o *scanOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	for {
		if o.done {
			return o.emit(t0, nil, io.EOF)
		}
		if err := o.env.ctxErr(); err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		if o.i >= len(o.tuples) {
			o.done = true
			return o.emit(t0, nil, io.EOF)
		}
		t := &o.tuples[o.i]
		o.i++
		if t.Cond.IsFalse() {
			continue
		}
		dropped := false
		for _, p := range o.pre {
			outcome, _, err := p.Eval(t)
			if err == nil && outcome == ctable.PredFalse {
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		if o.keep == nil {
			return o.emit(t0, t, nil)
		}
		vals := make([]ctable.Value, len(o.keep))
		for n, c := range o.keep {
			vals[n] = t.Values[c]
		}
		return o.emit(t0, &ctable.Tuple{Values: vals, Cond: t.Cond}, nil)
	}
}

// Close implements Cursor.
func (o *scanOp) Close() error {
	o.done = true
	return nil
}

// ---------------------------------------------------------------------------
// Joins

// nestedLoopOp is the filtered-cross-product fallback for joins without
// extractable equi-keys: the right input materializes once, then every left
// tuple pairs with every right tuple (conditions conjoined, trivially false
// pairs dropped) in the same order the pre-planner odometer produced.
type nestedLoopOp struct {
	opBase
	env         execEnv
	left, right operator
	inner       []ctable.Tuple
	built       bool
	cur         *ctable.Tuple
	ri          int
	done        bool
}

// Next implements Cursor.
func (o *nestedLoopOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done {
		return o.emit(t0, nil, io.EOF)
	}
	if !o.built {
		if err := materialize(o.right, &o.inner); err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		o.built = true
	}
	for {
		if o.cur == nil {
			t, err := o.left.Next()
			if err != nil {
				o.done = true
				return o.emit(t0, nil, err)
			}
			o.cur = t
			o.ri = 0
		}
		for o.ri < len(o.inner) {
			if err := o.env.ctxErr(); err != nil {
				o.done = true
				return o.emit(t0, nil, err)
			}
			r := &o.inner[o.ri]
			o.ri++
			nc := o.cur.Cond.And(r.Cond)
			if nc.IsFalse() {
				continue
			}
			return o.emit(t0, joinTuple(o.cur, r, nc), nil)
		}
		o.cur = nil
	}
}

// Close implements Cursor.
func (o *nestedLoopOp) Close() error {
	o.done = true
	return o.closeKids()
}

// hashJoinOp pairs rows whose deterministic key columns are equal: the
// right input builds a hash table (per-key row lists in input order, plus a
// fallback list for symbolic keys, which must pair with every probe row and
// let the final Filter conjoin the comparison as a condition atom); the
// left input probes row by row. Match emission follows build-side input
// order, so output order is identical to the filtered cross product. Keys
// of incomparable kinds (a string probing a numeric column) simply never
// pair — the "incomparable values" error the cross product would raise on
// those pairs falls under the rewriter's error-scope contract (rewrite.go).
type hashJoinOp struct {
	opBase
	env                 execEnv
	left, right         operator
	leftKeys, rightKeys []int
	build               []ctable.Tuple
	buckets             map[string][]int
	symb                []int
	keyBuf              []byte
	built               bool
	cur                 *ctable.Tuple
	matches             []int
	all                 bool // probe key symbolic: scan every build row
	mi                  int
	done                bool
}

// joinKey appends the binary key of a tuple's key columns to buf (see
// Value.AppendBinaryKey — same equivalence classes as HashKey, no float
// formatting), reporting ok=false when any key cell is symbolic (those rows
// take the pair-with-everything path). Callers reuse buf across rows; probe
// lookups convert it with an allocation-free map[string] access.
func joinKey(t *ctable.Tuple, cols []int, buf []byte) ([]byte, bool) {
	for _, c := range cols {
		v := t.Values[c]
		if v.IsSymbolic() {
			return buf, false
		}
		buf = v.AppendBinaryKey(buf)
	}
	return buf, true
}

// Next implements Cursor.
func (o *hashJoinOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done {
		return o.emit(t0, nil, io.EOF)
	}
	if !o.built {
		if err := materialize(o.right, &o.build); err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		o.buckets = make(map[string][]int, len(o.build))
		for i := range o.build {
			var ok bool
			o.keyBuf, ok = joinKey(&o.build[i], o.rightKeys, o.keyBuf[:0])
			if ok {
				o.buckets[string(o.keyBuf)] = append(o.buckets[string(o.keyBuf)], i)
			} else {
				o.symb = append(o.symb, i)
			}
		}
		o.built = true
	}
	for {
		if o.cur == nil {
			t, err := o.left.Next()
			if err != nil {
				o.done = true
				return o.emit(t0, nil, err)
			}
			o.cur = t
			o.mi = 0
			var ok bool
			o.keyBuf, ok = joinKey(t, o.leftKeys, o.keyBuf[:0])
			if ok {
				o.all = false
				o.matches = mergeSorted(o.buckets[string(o.keyBuf)], o.symb)
			} else {
				o.all = true
				o.matches = nil
			}
		}
		n := len(o.matches)
		if o.all {
			n = len(o.build)
		}
		for o.mi < n {
			if err := o.env.ctxErr(); err != nil {
				o.done = true
				return o.emit(t0, nil, err)
			}
			j := o.mi
			if !o.all {
				j = o.matches[o.mi]
			}
			o.mi++
			r := &o.build[j]
			nc := o.cur.Cond.And(r.Cond)
			if nc.IsFalse() {
				continue
			}
			return o.emit(t0, joinTuple(o.cur, r, nc), nil)
		}
		o.cur = nil
	}
}

// Close implements Cursor.
func (o *hashJoinOp) Close() error {
	o.done = true
	return o.closeKids()
}

// joinTuple concatenates two rows under an already-conjoined condition.
func joinTuple(l, r *ctable.Tuple, nc cond.Condition) *ctable.Tuple {
	vals := make([]ctable.Value, 0, len(l.Values)+len(r.Values))
	vals = append(vals, l.Values...)
	vals = append(vals, r.Values...)
	return &ctable.Tuple{Values: vals, Cond: nc}
}

// mergeSorted merges two ascending index lists (either may be empty).
func mergeSorted(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// materialize drains an operator into a tuple slice. Emitted tuples are
// stable for the query's duration (snapshots or per-row allocations), so
// the struct copy shares value slices safely.
func materialize(op operator, into *[]ctable.Tuple) error {
	for {
		t, err := op.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		*into = append(*into, *t)
	}
}

// ---------------------------------------------------------------------------
// Filter / Project

// filterOp applies the remaining WHERE conjuncts in source order via
// ApplyPredicate: deterministic failures drop the row, symbolic comparisons
// conjoin condition atoms, and conditions proven inconsistent by Algorithm
// 3.2 are removed.
type filterOp struct {
	opBase
	child operator
	pred  ctable.AndPred
	done  bool
}

// Next implements Cursor.
func (o *filterOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	for {
		if o.done {
			return o.emit(t0, nil, io.EOF)
		}
		t, err := o.child.Next()
		if err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		kept, keep, err := ctable.ApplyPredicate(t, o.pred)
		if err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		if !keep {
			continue
		}
		out := kept
		return o.emit(t0, &out, nil)
	}
}

// Close implements Cursor.
func (o *filterOp) Close() error {
	o.done = true
	return o.closeKids()
}

// projectOp computes the SELECT targets per row and finishes the per-row
// probability functions: expectation() and variance()/stddev() evaluate
// their cell under the request-scoped sampler, and conf() is
// probability-removing — it fills in the row's probability and strips the
// condition.
type projectOp struct {
	opBase
	env   execEnv
	child operator
	spec  *lProject
	done  bool
}

// Next implements Cursor.
func (o *projectOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done {
		return o.emit(t0, nil, io.EOF)
	}
	t, err := o.child.Next()
	if err != nil {
		o.done = true
		return o.emit(t0, nil, err)
	}
	out, err := o.finish(t)
	if err != nil {
		o.done = true
		return o.emit(t0, nil, err)
	}
	return o.emit(t0, out, nil)
}

// finish projects one tuple and applies the per-row functions.
func (o *projectOp) finish(t *ctable.Tuple) (*ctable.Tuple, error) {
	return finishProject(o.env, o.spec, t)
}

// finishProject computes the projection targets for one row and applies the
// per-row probability functions — the shared per-row unit behind the
// row-at-a-time and vectorized Project operators.
func finishProject(env execEnv, q *lProject, t *ctable.Tuple) (*ctable.Tuple, error) {
	vals := make([]ctable.Value, len(q.targets))
	for j, tgt := range q.targets {
		v, err := tgt.Resolve(t)
		if err != nil {
			return nil, err
		}
		vals[j] = v
	}
	out := ctable.Tuple{Values: vals, Cond: t.Cond}

	for _, pos := range q.expCols {
		if !out.Values[pos].IsSymbolic() {
			continue
		}
		res, err := core.TupleExpectation(env.smp, &out, pos, false)
		if err != nil {
			return nil, err
		}
		out.Values[pos] = ctable.Float(res.Mean)
	}
	for _, vc := range q.varCols {
		pos, kind := vc.pos, vc.kind
		e, ok := out.Values[pos].AsExpr()
		if !ok {
			return nil, fmt.Errorf("sql: non-numeric %s() target %s", kind, out.Values[pos])
		}
		var clause cond.Clause
		switch len(out.Cond.Clauses) {
		case 0:
			out.Values[pos] = ctable.Float(0)
			continue
		case 1:
			clause = out.Cond.Clauses[0]
		default:
			return nil, fmt.Errorf("sql: %s() over disjunctive conditions is not supported", kind)
		}
		v := env.smp.Variance(e, clause)
		if v.Err != nil {
			return nil, v.Err
		}
		if kind == "stddev" {
			out.Values[pos] = ctable.Float(v.StdDev)
		} else {
			out.Values[pos] = ctable.Float(v.Variance)
		}
	}
	if len(q.confCols) > 0 {
		res := env.smp.AConf(out.Cond)
		if res.Err != nil {
			return nil, res.Err
		}
		for _, pos := range q.confCols {
			out.Values[pos] = ctable.Float(res.Prob)
		}
		out.Cond = cond.TrueCondition()
	}
	return &out, nil
}

// Close implements Cursor.
func (o *projectOp) Close() error {
	o.done = true
	return o.closeKids()
}

// ---------------------------------------------------------------------------
// Aggregate

// aggOp materializes its input, stages [group keys..., agg args...] per
// row, partitions by key, and evaluates the expectation aggregates (the
// probability-removing operators of paper §V-A) per group under the
// request-scoped sampler.
type aggOp struct {
	opBase
	env    execEnv
	child  operator
	spec   *lAggregate
	result *ctable.Table
	i      int
	done   bool
}

// Next implements Cursor.
func (o *aggOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done {
		return o.emit(t0, nil, io.EOF)
	}
	if o.result == nil {
		res, err := o.compute()
		if err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		o.result = res
	}
	if o.i >= len(o.result.Tuples) {
		o.done = true
		return o.emit(t0, nil, io.EOF)
	}
	t := &o.result.Tuples[o.i]
	o.i++
	return o.emit(t0, t, nil)
}

// compute drains the child, stages the aggregate inputs and evaluates
// every group.
func (o *aggOp) compute() (*ctable.Table, error) {
	a := o.spec

	sch := make(ctable.Schema, len(a.stagedNames))
	for i, n := range a.stagedNames {
		sch[i] = ctable.Column{Name: n}
	}
	staged := &ctable.Table{Name: "agg_input", Schema: sch}
	for {
		t, err := o.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		st, err := stageAggRow(a, t)
		if err != nil {
			return nil, err
		}
		staged.Tuples = append(staged.Tuples, st)
	}
	return computeAgg(o.env, a, staged)
}

// stageAggRow resolves the [group keys..., agg args...] staging targets for
// one input row — the shared per-row unit behind both aggregate operators.
func stageAggRow(a *lAggregate, t *ctable.Tuple) (ctable.Tuple, error) {
	vals := make([]ctable.Value, len(a.staged))
	for j, tgt := range a.staged {
		v, err := tgt.Resolve(t)
		if err != nil {
			return ctable.Tuple{}, err
		}
		vals[j] = v
	}
	return ctable.Tuple{Values: vals, Cond: t.Cond}, nil
}

// computeAgg partitions a staged input table by its key columns and
// evaluates the expectation aggregates per group — shared by the
// row-at-a-time and vectorized Aggregate operators.
func computeAgg(env execEnv, a *lAggregate, staged *ctable.Table) (*ctable.Table, error) {
	// Group.
	var groups []ctable.GroupRows
	if a.nKeys == 0 {
		all := make([]int, staged.Len())
		for i := range all {
			all[i] = i
		}
		groups = []ctable.GroupRows{{Rows: all}}
	} else {
		keyCols := make([]int, a.nKeys)
		for i := range keyCols {
			keyCols[i] = i
		}
		var err error
		groups, err = ctable.GroupBy(staged, keyCols)
		if err != nil {
			return nil, err
		}
	}

	outSch := make(ctable.Schema, len(a.outCols))
	for i, oc := range a.outCols {
		outSch[i] = ctable.Column{Name: oc.name}
	}
	out := &ctable.Table{Name: "result", Schema: outSch}

	smp := env.smp
	for _, g := range groups {
		if err := env.ctxErr(); err != nil {
			return nil, err
		}
		sub := &ctable.Table{Name: staged.Name, Schema: staged.Schema}
		for _, ri := range g.Rows {
			sub.Tuples = append(sub.Tuples, staged.Tuples[ri])
		}
		aggVals := make([]ctable.Value, len(a.aggs))
		for ai, at := range a.aggs {
			switch at.kind {
			case "expected_sum":
				res, err := smp.ExpectedSum(sub, at.argCol)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_count":
				res, err := smp.ExpectedCount(sub)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_avg":
				res, err := smp.ExpectedAvg(sub, at.argCol)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_max":
				res, err := smp.ExpectedMax(sub, at.argCol, 0)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_stddev", "expected_variance":
				// Per-world spread across the group's rows, averaged over
				// sampled worlds (per-table semantics).
				fold := sampler.StdDevFold
				if at.kind == "expected_variance" {
					fold = sampler.VarianceFold
				}
				n := env.db.Config().FixedSamples
				if n <= 0 {
					n = 1000
				}
				hist, err := smp.AggregateHistogram(sub, at.argCol, fold, n)
				if err != nil {
					return nil, err
				}
				total := 0.0
				for _, v := range hist {
					total += v
				}
				if len(hist) > 0 {
					total /= float64(len(hist))
				}
				aggVals[ai] = ctable.Float(total)
			case "conf", "aconf":
				// Joint probability that at least one row of the group
				// exists (aconf over the disjunction of row conditions).
				d := cond.FalseCondition()
				for i := range sub.Tuples {
					d = d.Or(sub.Tuples[i].Cond)
				}
				res := smp.AConf(d)
				if res.Err != nil {
					return nil, res.Err
				}
				aggVals[ai] = ctable.Float(res.Prob)
			default:
				return nil, fmt.Errorf("sql: unhandled aggregate %s", at.kind)
			}
		}
		vals := make([]ctable.Value, len(a.outCols))
		for i, oc := range a.outCols {
			if oc.isKey {
				vals[i] = g.Key[oc.keyIdx]
			} else {
				vals[i] = aggVals[oc.aggIdx]
			}
		}
		out.Tuples = append(out.Tuples, ctable.NewTuple(vals...))
	}
	return out, nil
}

// Close implements Cursor.
func (o *aggOp) Close() error {
	o.done = true
	return o.closeKids()
}

// ---------------------------------------------------------------------------
// Distinct / Sort / Limit / Result

// distinctOp materializes its input and coalesces duplicate data tuples,
// OR-ing their conditions into DNF (first-occurrence order preserved).
type distinctOp struct {
	opBase
	child  operator
	result *ctable.Table
	i      int
	done   bool
}

// Next implements Cursor.
func (o *distinctOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done {
		return o.emit(t0, nil, io.EOF)
	}
	if o.result == nil {
		var rows []ctable.Tuple
		if err := materialize(o.child, &rows); err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		tb := &ctable.Table{Tuples: rows}
		o.result = ctable.Distinct(tb)
	}
	if o.i >= len(o.result.Tuples) {
		o.done = true
		return o.emit(t0, nil, io.EOF)
	}
	t := &o.result.Tuples[o.i]
	o.i++
	return o.emit(t0, t, nil)
}

// Close implements Cursor.
func (o *distinctOp) Close() error {
	o.done = true
	return o.closeKids()
}

// sortOp materializes its input and orders it deterministically
// (stable sort) by one output column.
type sortOp struct {
	opBase
	child   operator
	col     int
	colName string
	desc    bool
	rows    []ctable.Tuple
	sorted  bool
	i       int
	done    bool
}

// Next implements Cursor.
func (o *sortOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done {
		return o.emit(t0, nil, io.EOF)
	}
	if !o.sorted {
		if err := materialize(o.child, &o.rows); err != nil {
			o.done = true
			return o.emit(t0, nil, err)
		}
		var sortErr error
		sort.SliceStable(o.rows, func(i, j int) bool {
			c, ok := o.rows[i].Values[o.col].Compare(o.rows[j].Values[o.col])
			if !ok {
				sortErr = fmt.Errorf("sql: ORDER BY over symbolic column %s", o.colName)
				return false
			}
			if o.desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			o.done = true
			return o.emit(t0, nil, sortErr)
		}
		o.sorted = true
	}
	if o.i >= len(o.rows) {
		o.done = true
		return o.emit(t0, nil, io.EOF)
	}
	t := &o.rows[o.i]
	o.i++
	return o.emit(t0, t, nil)
}

// Close implements Cursor.
func (o *sortOp) Close() error {
	o.done = true
	return o.closeKids()
}

// limitOp truncates the stream after n rows; upstream operators stop being
// pulled, so per-row sampling beyond the limit never runs.
type limitOp struct {
	opBase
	child     operator
	remaining int
	done      bool
}

// Next implements Cursor.
func (o *limitOp) Next() (*ctable.Tuple, error) {
	t0 := o.begin()
	if o.done || o.remaining <= 0 {
		o.done = true
		return o.emit(t0, nil, io.EOF)
	}
	t, err := o.child.Next()
	if err != nil {
		o.done = true
		return o.emit(t0, nil, err)
	}
	o.remaining--
	return o.emit(t0, t, nil)
}

// Close implements Cursor.
func (o *limitOp) Close() error {
	o.done = true
	return o.closeKids()
}

// emptyOp is the zero-row relation of a constant-false WHERE.
type emptyOp struct {
	opBase
}

// Next implements Cursor.
func (o *emptyOp) Next() (*ctable.Tuple, error) {
	return nil, io.EOF
}

// Close implements Cursor.
func (o *emptyOp) Close() error { return nil }
