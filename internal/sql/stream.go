package sql

import (
	"context"
	"fmt"
	"io"
	"time"

	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/obs"
	"pip/internal/sampler"
)

// Cursor is a pull-based iterator over query result rows — the streaming
// half of the query API. Every physical plan operator implements Cursor, so
// SELECTs stream through the planned pipeline one tuple per Next call;
// blocking operators (Sort, Distinct, Aggregate) materialize their own
// input internally on first Next but still emit row by row. A Cursor is
// single-consumer and not safe for concurrent use.
type Cursor interface {
	// Columns returns the result column names (empty for statements that
	// produce no rows, e.g. DDL).
	Columns() []string
	// Next returns the next result tuple, or (nil, io.EOF) after the last
	// row. The returned tuple is only valid until the following Next call.
	// A cancelled request context surfaces as ctx.Err().
	Next() (*ctable.Tuple, error)
	// Close releases the cursor. It is idempotent; Next after Close
	// returns io.EOF.
	Close() error
}

// execEnv carries per-execution state through planning and evaluation: the
// request context, the database, a context-scoped sampler, the bound
// placeholder arguments, the planner hints attached to the context, and the
// statement's telemetry trace.
type execEnv struct {
	ctx   context.Context
	db    *core.DB
	smp   *sampler.Sampler
	args  []ctable.Value
	hints Hints
	// qs traces this execution: phase spans plus a statement-scope sampler
	// counter set chained to the engine-wide one. The env's sampler records
	// into it, and per-operator scopes chain onto qs.Sampler in lowerNode.
	qs *obs.QueryStats
}

func newExecEnv(ctx context.Context, db *core.DB, args []ctable.Value) execEnv {
	if ctx == nil {
		ctx = context.Background()
	}
	smp := db.SamplerContext(ctx)
	// Chain the statement scope onto whatever collection point the sampler
	// already carries (the engine root by default), so engine-wide counters
	// keep aggregating while the trace isolates this statement's share.
	qs := obs.NewQueryStats("", smp.Config().Stats)
	return execEnv{ctx: ctx, db: db, smp: smp.WithStats(qs.Sampler), args: args, hints: HintsFrom(ctx), qs: qs}
}

// ctxErr reports the request context's cancellation state.
func (env *execEnv) ctxErr() error { return env.ctx.Err() }

// bindArg resolves placeholder i against the bound arguments, wrapping
// ErrBind when no argument vector was supplied.
func (env *execEnv) bindArg(i int) (ctable.Value, error) {
	if i < 0 || i >= len(env.args) {
		return ctable.Value{}, fmt.Errorf("%w: placeholder %d is unbound (prepare the statement and pass arguments)", ErrBind, i+1)
	}
	return env.args[i], nil
}

// spanCursor wraps the streaming SELECT cursor, accumulating the wall time
// the consumer spends inside Next as the trace's "execute" phase. The phase
// is flushed exactly once — at EOF, on the first error, or at Close — so a
// partially drained stream still reports the time it actually spent.
type spanCursor struct {
	inner   operator
	qs      *obs.QueryStats
	elapsed time.Duration
	flushed bool
}

func newSpanCursor(inner operator, qs *obs.QueryStats) Cursor {
	if qs == nil {
		return inner
	}
	return &spanCursor{inner: inner, qs: qs}
}

// base exposes the wrapped root operator's metadata: the span wrapper is
// transparent to plan introspection — the cursor IS the planned pipeline,
// plus phase accounting.
func (c *spanCursor) base() *opBase { return c.inner.base() }

// Columns implements Cursor.
func (c *spanCursor) Columns() []string { return c.inner.Columns() }

// Next implements Cursor.
func (c *spanCursor) Next() (*ctable.Tuple, error) {
	//pipvet:allow detsource span-trace telemetry, never feeds sampled state
	start := time.Now()
	t, err := c.inner.Next()
	//pipvet:allow detsource span-trace telemetry, never feeds sampled state
	c.elapsed += time.Since(start)
	if err != nil {
		c.flush()
	}
	return t, err
}

// Close implements Cursor.
func (c *spanCursor) Close() error {
	err := c.inner.Close()
	c.flush()
	return err
}

func (c *spanCursor) flush() {
	if c.flushed {
		return
	}
	c.flushed = true
	c.qs.AddPhase("execute", c.elapsed)
}

// ---------------------------------------------------------------------------
// Materialized cursors

// TableCursor iterates a materialized c-table — the cursor form of
// DDL/DML/EXPLAIN results.
type TableCursor struct {
	tb   *ctable.Table
	next int
	done bool
}

// NewTableCursor wraps a materialized table (nil yields an empty,
// zero-column cursor, the shape of a DDL/DML result).
func NewTableCursor(tb *ctable.Table) *TableCursor {
	return &TableCursor{tb: tb, done: tb == nil}
}

// Columns implements Cursor.
func (c *TableCursor) Columns() []string {
	if c.tb == nil {
		return nil
	}
	return c.tb.Schema.Names()
}

// Next implements Cursor.
func (c *TableCursor) Next() (*ctable.Tuple, error) {
	if c.done || c.next >= len(c.tb.Tuples) {
		c.done = true
		return nil, io.EOF
	}
	t := &c.tb.Tuples[c.next]
	c.next++
	return t, nil
}

// Close implements Cursor.
func (c *TableCursor) Close() error {
	c.done = true
	return nil
}
