package sql

import (
	"context"
	"fmt"
	"io"

	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/sampler"
)

// Cursor is a pull-based iterator over query result rows — the streaming
// half of the query API. Every physical plan operator implements Cursor, so
// SELECTs stream through the planned pipeline one tuple per Next call;
// blocking operators (Sort, Distinct, Aggregate) materialize their own
// input internally on first Next but still emit row by row. A Cursor is
// single-consumer and not safe for concurrent use.
type Cursor interface {
	// Columns returns the result column names (empty for statements that
	// produce no rows, e.g. DDL).
	Columns() []string
	// Next returns the next result tuple, or (nil, io.EOF) after the last
	// row. The returned tuple is only valid until the following Next call.
	// A cancelled request context surfaces as ctx.Err().
	Next() (*ctable.Tuple, error)
	// Close releases the cursor. It is idempotent; Next after Close
	// returns io.EOF.
	Close() error
}

// execEnv carries per-execution state through planning and evaluation: the
// request context, the database, a context-scoped sampler, the bound
// placeholder arguments, and the planner hints attached to the context.
type execEnv struct {
	ctx   context.Context
	db    *core.DB
	smp   *sampler.Sampler
	args  []ctable.Value
	hints Hints
}

func newExecEnv(ctx context.Context, db *core.DB, args []ctable.Value) execEnv {
	if ctx == nil {
		ctx = context.Background()
	}
	return execEnv{ctx: ctx, db: db, smp: db.SamplerContext(ctx), args: args, hints: HintsFrom(ctx)}
}

// ctxErr reports the request context's cancellation state.
func (env *execEnv) ctxErr() error { return env.ctx.Err() }

// bindArg resolves placeholder i against the bound arguments, wrapping
// ErrBind when no argument vector was supplied.
func (env *execEnv) bindArg(i int) (ctable.Value, error) {
	if i < 0 || i >= len(env.args) {
		return ctable.Value{}, fmt.Errorf("%w: placeholder %d is unbound (prepare the statement and pass arguments)", ErrBind, i+1)
	}
	return env.args[i], nil
}

// ---------------------------------------------------------------------------
// Materialized cursors

// TableCursor iterates a materialized c-table — the cursor form of
// DDL/DML/EXPLAIN results.
type TableCursor struct {
	tb   *ctable.Table
	next int
	done bool
}

// NewTableCursor wraps a materialized table (nil yields an empty,
// zero-column cursor, the shape of a DDL/DML result).
func NewTableCursor(tb *ctable.Table) *TableCursor {
	return &TableCursor{tb: tb, done: tb == nil}
}

// Columns implements Cursor.
func (c *TableCursor) Columns() []string {
	if c.tb == nil {
		return nil
	}
	return c.tb.Schema.Names()
}

// Next implements Cursor.
func (c *TableCursor) Next() (*ctable.Tuple, error) {
	if c.done || c.next >= len(c.tb.Tuples) {
		c.done = true
		return nil, io.EOF
	}
	t := &c.tb.Tuples[c.next]
	c.next++
	return t, nil
}

// Close implements Cursor.
func (c *TableCursor) Close() error {
	c.done = true
	return nil
}
