package sql

import (
	"context"
	"fmt"
	"io"
	"strings"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/sampler"
)

// Cursor is a pull-based iterator over query result rows — the streaming
// half of the query API. Aggregate-free SELECTs produce cursors that join,
// filter and project one tuple per Next call instead of materializing the
// result c-table; blocking statements produce cursors over their
// materialized result. A Cursor is single-consumer and not safe for
// concurrent use.
type Cursor interface {
	// Columns returns the result column names (empty for statements that
	// produce no rows, e.g. DDL).
	Columns() []string
	// Next returns the next result tuple, or (nil, io.EOF) after the last
	// row. The returned tuple is only valid until the following Next call.
	// A cancelled request context surfaces as ctx.Err().
	Next() (*ctable.Tuple, error)
	// Close releases the cursor. It is idempotent; Next after Close
	// returns io.EOF.
	Close() error
}

// execEnv carries per-execution state through planning and evaluation: the
// request context, the database, a context-scoped sampler, and the bound
// placeholder arguments.
type execEnv struct {
	ctx  context.Context
	db   *core.DB
	smp  *sampler.Sampler
	args []ctable.Value
}

func newExecEnv(ctx context.Context, db *core.DB, args []ctable.Value) execEnv {
	if ctx == nil {
		ctx = context.Background()
	}
	return execEnv{ctx: ctx, db: db, smp: db.SamplerContext(ctx), args: args}
}

// ctxErr reports the request context's cancellation state.
func (env *execEnv) ctxErr() error { return env.ctx.Err() }

// bindArg resolves placeholder i against the bound arguments, wrapping
// ErrBind when no argument vector was supplied.
func (env *execEnv) bindArg(i int) (ctable.Value, error) {
	if i < 0 || i >= len(env.args) {
		return ctable.Value{}, fmt.Errorf("%w: placeholder %d is unbound (prepare the statement and pass arguments)", ErrBind, i+1)
	}
	return env.args[i], nil
}

// ---------------------------------------------------------------------------
// Streaming plain-SELECT evaluation

// plainQuery is the compiled form of an aggregate-free SELECT: snapshots of
// the FROM tables plus per-tuple filter, projection and row-function steps.
// Cursors over it evaluate one joined tuple at a time.
type plainQuery struct {
	env     execEnv
	name    string
	names   []string
	targets []ctable.Scalar
	pred    ctable.Predicate // nil when WHERE is absent
	// confCols / expCols / varCols mark output positions computed by the
	// per-row functions conf(), expectation() and variance()/stddev().
	confCols map[int]bool
	expCols  map[int]bool
	varCols  map[int]string
	inputs   [][]ctable.Tuple
}

// compilePlain lowers an aggregate-free SELECT against the current catalog.
// Input tuple slices are captured once at compile time, so the cursor's
// view of each table is fixed for the duration of the scan. As everywhere
// else in the engine, concurrent DML against a table being read requires
// external synchronization.
func compilePlain(env execEnv, st *SelectStmt) (*plainQuery, error) {
	if len(st.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	q := &plainQuery{
		env:      env,
		confCols: map[int]bool{},
		expCols:  map[int]bool{},
		varCols:  map[int]string{},
	}
	schemas := make([]ctable.Schema, len(st.From))
	nameParts := make([]string, len(st.From))
	for i, ref := range st.From {
		tb, err := env.db.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		q.inputs = append(q.inputs, tb.Tuples)
		schemas[i] = tb.Schema
		nameParts[i] = tb.Name
	}
	q.name = strings.Join(nameParts, "_x_")
	r := newResolver(st.From, schemas)

	if len(st.Where) > 0 {
		var preds ctable.AndPred
		for _, cmp := range st.Where {
			op, err := cmpOpFromString(cmp.Op)
			if err != nil {
				return nil, err
			}
			l, err := compileScalar(cmp.Left, r, env)
			if err != nil {
				return nil, err
			}
			rr, err := compileScalar(cmp.Right, r, env)
			if err != nil {
				return nil, err
			}
			preds = append(preds, ctable.Compare{Op: op, Left: l, Right: rr})
		}
		q.pred = preds
	}

	joined := make(ctable.Schema, 0)
	for _, sch := range schemas {
		joined = append(joined, sch...)
	}
	for _, tgt := range st.Targets {
		if tgt.Star {
			for i, c := range joined {
				q.names = append(q.names, c.Name)
				q.targets = append(q.targets, ctable.Col(i))
			}
			continue
		}
		name := tgt.Alias
		if fc, ok := tgt.Expr.(FuncCall); ok {
			switch strings.ToLower(fc.Name) {
			case "conf":
				if name == "" {
					name = "conf"
				}
				q.confCols[len(q.targets)] = true
				q.names = append(q.names, name)
				q.targets = append(q.targets, ctable.LitFloat(0)) // placeholder
				continue
			case "expectation":
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: expectation() takes one argument")
				}
				sc, err := compileScalar(fc.Args[0], r, env)
				if err != nil {
					return nil, err
				}
				if name == "" {
					name = "expectation"
				}
				q.expCols[len(q.targets)] = true
				q.names = append(q.names, name)
				q.targets = append(q.targets, sc)
				continue
			case "variance", "stddev":
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: %s() takes one argument", strings.ToLower(fc.Name))
				}
				sc, err := compileScalar(fc.Args[0], r, env)
				if err != nil {
					return nil, err
				}
				if name == "" {
					name = strings.ToLower(fc.Name)
				}
				q.varCols[len(q.targets)] = strings.ToLower(fc.Name)
				q.names = append(q.names, name)
				q.targets = append(q.targets, sc)
				continue
			}
		}
		sc, err := compileScalar(tgt.Expr, r, env)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = defaultName(tgt.Expr)
		}
		q.names = append(q.names, name)
		q.targets = append(q.targets, sc)
	}
	return q, nil
}

// cursor opens a streaming cursor over the compiled query.
func (q *plainQuery) cursor() *plainCursor {
	c := &plainCursor{q: q, idx: make([]int, len(q.inputs))}
	for _, in := range q.inputs {
		if len(in) == 0 {
			c.done = true
			break
		}
	}
	return c
}

// drain runs the cursor to completion, materializing the result c-table —
// the eager execution path shares the streaming machinery. A positive
// limit stops the scan (and its per-row sampling) after that many rows;
// pass 0 when a blocking operator (DISTINCT, ORDER BY) must see every row
// before LIMIT applies.
func (q *plainQuery) drain(limit int) (*ctable.Table, error) {
	sch := make(ctable.Schema, len(q.names))
	for i, n := range q.names {
		sch[i] = ctable.Column{Name: n}
	}
	out := &ctable.Table{Name: q.name, Schema: sch}
	var cur Cursor = q.cursor()
	if limit > 0 {
		cur = &limitCursor{Cursor: cur, remaining: limit}
	}
	defer cur.Close()
	for {
		t, err := cur.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Tuples = append(out.Tuples, t.Clone())
	}
}

// plainCursor is the nested-loop iterator over a plainQuery: an odometer
// walks the cross product of the input snapshots, and each joined tuple is
// filtered, projected and row-function-finished on demand.
type plainCursor struct {
	q    *plainQuery
	idx  []int
	done bool
	row  ctable.Tuple // scratch for the current output row
}

// Columns implements Cursor.
func (c *plainCursor) Columns() []string { return c.q.names }

// Close implements Cursor.
func (c *plainCursor) Close() error {
	c.done = true
	return nil
}

// Next implements Cursor: it advances the odometer until a tuple survives
// the filter, then projects and applies per-row functions. The request
// context is observed between candidate tuples, so cancellation interrupts
// even a long filtered scan that produces no output.
func (c *plainCursor) Next() (*ctable.Tuple, error) {
	for {
		if c.done {
			return nil, io.EOF
		}
		if err := c.q.env.ctxErr(); err != nil {
			c.done = true
			return nil, err
		}
		joined, ok := c.nextJoined()
		if !ok {
			c.done = true
			return nil, io.EOF
		}
		out, produced, err := c.q.finish(joined)
		if err != nil {
			c.done = true
			return nil, err
		}
		if !produced {
			continue
		}
		c.row = out
		return &c.row, nil
	}
}

// nextJoined produces the next cross-product tuple (conjoining input
// conditions, skipping combinations whose condition is trivially false) and
// advances the odometer.
func (c *plainCursor) nextJoined() (ctable.Tuple, bool) {
	for {
		vals := make([]ctable.Value, 0)
		cnd := cond.TrueCondition()
		for i, in := range c.q.inputs {
			t := &in[c.idx[i]]
			vals = append(vals, t.Values...)
			cnd = cnd.And(t.Cond)
		}
		advanced := c.advance()
		if !cnd.IsFalse() {
			return ctable.Tuple{Values: vals, Cond: cnd}, true
		}
		if !advanced {
			return ctable.Tuple{}, false
		}
	}
}

// advance increments the odometer, reporting false once every combination
// has been produced.
func (c *plainCursor) advance() bool {
	for i := len(c.idx) - 1; i >= 0; i-- {
		c.idx[i]++
		if c.idx[i] < len(c.q.inputs[i]) {
			return true
		}
		c.idx[i] = 0
	}
	c.done = true
	return false
}

// finish filters, projects and row-function-completes one joined tuple.
// produced=false means the tuple was filtered out.
func (q *plainQuery) finish(joined ctable.Tuple) (ctable.Tuple, bool, error) {
	t := joined
	if q.pred != nil {
		kept, keep, err := ctable.ApplyPredicate(&t, q.pred)
		if err != nil {
			return ctable.Tuple{}, false, err
		}
		if !keep {
			return ctable.Tuple{}, false, nil
		}
		t = kept
	}
	vals := make([]ctable.Value, len(q.targets))
	for j, tgt := range q.targets {
		v, err := tgt.Resolve(&t)
		if err != nil {
			return ctable.Tuple{}, false, err
		}
		vals[j] = v
	}
	out := ctable.Tuple{Values: vals, Cond: t.Cond}

	for pos := range q.expCols {
		if !out.Values[pos].IsSymbolic() {
			continue
		}
		res, err := q.env.db.ExpectationContext(q.env.ctx, &out, pos, false)
		if err != nil {
			return ctable.Tuple{}, false, err
		}
		out.Values[pos] = ctable.Float(res.Mean)
	}
	for pos, kind := range q.varCols {
		e, ok := out.Values[pos].AsExpr()
		if !ok {
			return ctable.Tuple{}, false, fmt.Errorf("sql: non-numeric %s() target %s", kind, out.Values[pos])
		}
		var clause cond.Clause
		switch len(out.Cond.Clauses) {
		case 0:
			out.Values[pos] = ctable.Float(0)
			continue
		case 1:
			clause = out.Cond.Clauses[0]
		default:
			return ctable.Tuple{}, false, fmt.Errorf("sql: %s() over disjunctive conditions is not supported", kind)
		}
		v := q.env.smp.Variance(e, clause)
		if v.Err != nil {
			return ctable.Tuple{}, false, v.Err
		}
		if kind == "stddev" {
			out.Values[pos] = ctable.Float(v.StdDev)
		} else {
			out.Values[pos] = ctable.Float(v.Variance)
		}
	}
	if len(q.confCols) > 0 {
		// conf() is probability-removing: fill in the probability and strip
		// the condition.
		res := q.env.smp.AConf(out.Cond)
		if res.Err != nil {
			return ctable.Tuple{}, false, res.Err
		}
		for pos := range q.confCols {
			out.Values[pos] = ctable.Float(res.Prob)
		}
		out.Cond = cond.TrueCondition()
	}
	return out, true, nil
}

// ---------------------------------------------------------------------------
// Materialized cursors

// TableCursor iterates a materialized c-table — the cursor form of blocking
// statements (aggregates, DISTINCT, ORDER BY) and of DDL/DML results.
type TableCursor struct {
	tb   *ctable.Table
	next int
	done bool
}

// NewTableCursor wraps a materialized table (nil yields an empty,
// zero-column cursor, the shape of a DDL/DML result).
func NewTableCursor(tb *ctable.Table) *TableCursor {
	return &TableCursor{tb: tb, done: tb == nil}
}

// Columns implements Cursor.
func (c *TableCursor) Columns() []string {
	if c.tb == nil {
		return nil
	}
	return c.tb.Schema.Names()
}

// Next implements Cursor.
func (c *TableCursor) Next() (*ctable.Tuple, error) {
	if c.done || c.next >= len(c.tb.Tuples) {
		c.done = true
		return nil, io.EOF
	}
	t := &c.tb.Tuples[c.next]
	c.next++
	return t, nil
}

// Close implements Cursor.
func (c *TableCursor) Close() error {
	c.done = true
	return nil
}

// limitCursor truncates an inner cursor after n rows (streaming LIMIT).
type limitCursor struct {
	Cursor
	remaining int
}

// Next implements Cursor.
func (c *limitCursor) Next() (*ctable.Tuple, error) {
	if c.remaining <= 0 {
		return nil, io.EOF
	}
	t, err := c.Cursor.Next()
	if err != nil {
		return nil, err
	}
	c.remaining--
	return t, nil
}
