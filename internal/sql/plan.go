package sql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/expr"
	"pip/internal/sampler"
)

// Exec parses and executes one statement against the database, returning
// the result table (nil for DDL/DML statements).
func Exec(db *core.DB, src string) (*ctable.Table, error) {
	return ExecContext(context.Background(), db, src)
}

// ExecContext parses and executes one statement under a request context,
// binding args against its ? placeholders. Cancellation or deadline expiry
// aborts sampling promptly and returns ctx.Err() — never a partial result.
func ExecContext(ctx context.Context, db *core.DB, src string, args ...ctable.Value) (*ctable.Table, error) {
	p, err := Prepare(src)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx, db, args...)
}

// QueryContext parses and executes one statement under a request context,
// returning a streaming cursor over the result rows (see
// Prepared.QueryContext for the streaming rules).
func QueryContext(ctx context.Context, db *core.DB, src string, args ...ctable.Value) (Cursor, error) {
	p, err := Prepare(src)
	if err != nil {
		return nil, err
	}
	return p.QueryContext(ctx, db, args...)
}

// ExecStmt executes a parsed statement.
func ExecStmt(db *core.DB, st Stmt) (*ctable.Table, error) {
	return ExecStmtContext(context.Background(), db, st)
}

// ExecStmtContext executes a parsed statement under a request context with
// bound placeholder arguments. The argument count must match the
// statement's placeholder count exactly (ErrBind otherwise). On
// cancellation the statement's side effects may be partially applied for
// DML, but a SELECT never returns a partial table: the result is ctx.Err().
func ExecStmtContext(ctx context.Context, db *core.DB, st Stmt, args ...ctable.Value) (*ctable.Table, error) {
	return execStmtTraced(ctx, db, st, "", 0, args)
}

// execStmtTraced is ExecStmtContext carrying the statement text and parse
// time into the execution's telemetry trace (the Prepared path knows both).
func execStmtTraced(ctx context.Context, db *core.DB, st Stmt, src string, parseTime time.Duration, args []ctable.Value) (*ctable.Table, error) {
	if n := NumParams(st); n != len(args) {
		return nil, fmt.Errorf("%w: statement has %d placeholder(s), got %d argument(s)",
			ErrBind, n, len(args))
	}
	env := newExecEnv(ctx, db, args)
	env.qs.Query = src
	if parseTime > 0 {
		env.qs.AddPhase("parse", parseTime)
	}
	if err := env.ctxErr(); err != nil {
		return nil, err
	}
	var out *ctable.Table
	run := func() error {
		var rerr error
		out, rerr = execStmt(env, st)
		return rerr
	}
	// Catalog-mutating statements go through the commit hook so an attached
	// write-ahead log sees them (serialized, with their source text) before
	// they are acknowledged; everything else, and every statement when no
	// log is attached, executes directly.
	var err error
	if isMutation(st) {
		// On a read-only replica, catalog-mutating statements are rejected
		// before they reach the commit hook — except session-local SET
		// (which mutates no shared catalog state) and statements replayed
		// by the replication applier, which ARE the primary's log.
		if _, isSet := st.(*SetStmt); !isSet && !db.IsApplier() {
			if primary, ro := db.ReadOnlyPrimary(); ro {
				return nil, fmt.Errorf("%w: writes go to the primary at %s", core.ErrReadOnly, primary)
			}
		}
		err = db.Commit(src, args, run)
	} else {
		//pipvet:allow walcommit isMutation gates this path to non-mutating statements
		err = run()
	}
	if err != nil {
		return nil, err
	}
	// Final cancellation gate: a result assembled from computations that
	// raced a cancellation is discarded, upholding the no-partial-results
	// contract even if an inner path missed a check.
	if err := env.ctxErr(); err != nil {
		return nil, err
	}
	return out, nil
}

// isMutation reports whether a statement mutates durable catalog state —
// exactly the statement kinds the write-ahead log records.
func isMutation(st Stmt) bool {
	switch st.(type) {
	case *CreateTableStmt, *DropStmt, *InsertStmt, *SetStmt:
		return true
	}
	return false
}

// execStmt dispatches one statement under an execution environment.
func execStmt(env execEnv, st Stmt) (*ctable.Table, error) {
	switch s := st.(type) {
	case *CreateTableStmt:
		env.db.Register(ctable.New(s.Name, s.Columns...))
		return nil, nil
	case *DropStmt:
		env.db.Drop(s.Name)
		return nil, nil
	case *InsertStmt:
		return nil, execInsert(env, s)
	case *SelectStmt:
		return execSelect(env, s)
	case *ExplainStmt:
		return execExplain(env, s)
	case *SetStmt:
		return nil, execSet(env.db, s)
	case *ShowStmt:
		return execShow(env)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// sessionSettings maps SET names to sampler configuration updates. Each
// entry validates its value before the configuration is swapped in.
var sessionSettings = map[string]func(cfg *sampler.Config, v float64) error{
	"workers": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 0 {
			return fmt.Errorf("sql: workers must be a non-negative integer (0 = one per CPU)")
		}
		cfg.Workers = n
		return nil
	},
	"samples": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 0 {
			return fmt.Errorf("sql: samples must be a non-negative integer (0 = adaptive)")
		}
		cfg.FixedSamples = n
		return nil
	},
	"max_samples": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 1 {
			return fmt.Errorf("sql: max_samples must be a positive integer")
		}
		cfg.MaxSamples = n
		return nil
	},
	"min_samples": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 0 {
			return fmt.Errorf("sql: min_samples must be a non-negative integer")
		}
		cfg.MinSamples = n
		return nil
	},
	"epsilon": func(cfg *sampler.Config, v float64) error {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("sql: epsilon must lie in (0, 1)")
		}
		cfg.Epsilon = v
		return nil
	},
	"delta": func(cfg *sampler.Config, v float64) error {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("sql: delta must lie in (0, 1)")
		}
		cfg.Delta = v
		return nil
	},
	"seed": func(cfg *sampler.Config, v float64) error {
		n := uint64(v)
		if v != float64(n) {
			return fmt.Errorf("sql: seed must be a non-negative integer")
		}
		cfg.WorldSeed = n
		return nil
	},
	"vectorize": func(cfg *sampler.Config, v float64) error {
		if v != 0 && v != 1 {
			return fmt.Errorf("sql: vectorize must be on or off")
		}
		cfg.DisableVectorize = v == 0
		return nil
	},
}

// execSet applies a session setting (SET name = value) to the database's
// sampling configuration. The new configuration takes effect for statements
// executed after this one; in-flight queries finish under the old one.
func execSet(db *core.DB, st *SetStmt) error {
	apply, ok := sessionSettings[st.Name]
	if !ok {
		names := make([]string, 0, len(sessionSettings))
		for n := range sessionSettings {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("sql: unknown setting %q (have %s)", st.Name, strings.Join(names, ", "))
	}
	// Validate against a scratch copy first so a bad value leaves the live
	// configuration untouched; the checks depend only on st.Value, so the
	// second application inside UpdateConfig cannot fail.
	trial := db.Config()
	if err := apply(&trial, st.Value); err != nil {
		return err
	}
	db.UpdateConfig(func(cfg *sampler.Config) { _ = apply(cfg, st.Value) })
	return nil
}

// execInsert evaluates row expressions (including CREATE_VARIABLE calls,
// which allocate fresh random variables per occurrence, and bound
// placeholders) and appends tuples.
func execInsert(env execEnv, st *InsertStmt) error {
	tb, err := env.db.Table(st.Table)
	if err != nil {
		return err
	}
	for _, row := range st.Rows {
		if len(row) != len(tb.Schema) {
			return fmt.Errorf("sql: INSERT arity %d does not match %s arity %d",
				len(row), st.Table, len(tb.Schema))
		}
		vals := make([]ctable.Value, len(row))
		for i, n := range row {
			v, err := evalConstNode(env, n)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := env.db.AppendRow(tb, ctable.NewTuple(vals...)); err != nil {
			return err
		}
	}
	return nil
}

// evalConstNode evaluates a tuple-independent expression: literals, bound
// placeholders, arithmetic and CREATE_VARIABLE.
func evalConstNode(env execEnv, n Node) (ctable.Value, error) {
	switch t := n.(type) {
	case NumLit:
		return ctable.Float(float64(t)), nil
	case StrLit:
		return ctable.String_(string(t)), nil
	case Placeholder:
		return env.bindArg(t.Idx)
	case NegExpr:
		v, err := evalConstNode(env, t.X)
		if err != nil {
			return ctable.Value{}, err
		}
		e, ok := v.AsExpr()
		if !ok {
			return ctable.Value{}, fmt.Errorf("sql: cannot negate %s", v)
		}
		return ctable.Symbolic(expr.Negate(e)), nil
	case BinExpr:
		l, err := evalConstNode(env, t.Left)
		if err != nil {
			return ctable.Value{}, err
		}
		r, err := evalConstNode(env, t.Right)
		if err != nil {
			return ctable.Value{}, err
		}
		le, ok1 := l.AsExpr()
		re, ok2 := r.AsExpr()
		if !ok1 || !ok2 {
			return ctable.Value{}, fmt.Errorf("sql: non-numeric arithmetic operand")
		}
		switch t.Op {
		case '+':
			return ctable.Symbolic(expr.Add(le, re)), nil
		case '-':
			return ctable.Symbolic(expr.Sub(le, re)), nil
		case '*':
			return ctable.Symbolic(expr.Mul(le, re)), nil
		case '/':
			return ctable.Symbolic(expr.Div(le, re)), nil
		}
		return ctable.Value{}, fmt.Errorf("sql: unknown operator %c", t.Op)
	case FuncCall:
		if strings.EqualFold(t.Name, "create_variable") {
			if len(t.Args) < 1 {
				return ctable.Value{}, fmt.Errorf("sql: CREATE_VARIABLE needs a distribution name")
			}
			nameV, err := evalConstNode(env, t.Args[0])
			if err != nil {
				return ctable.Value{}, err
			}
			if nameV.Kind != ctable.KindString {
				return ctable.Value{}, fmt.Errorf("sql: CREATE_VARIABLE first argument must be a string, got %s", nameV.Kind)
			}
			params := make([]float64, 0, len(t.Args)-1)
			for _, a := range t.Args[1:] {
				v, err := evalConstNode(env, a)
				if err != nil {
					return ctable.Value{}, err
				}
				f, ok := v.AsFloat()
				if !ok {
					return ctable.Value{}, fmt.Errorf("sql: CREATE_VARIABLE parameters must be numeric constants")
				}
				params = append(params, f)
			}
			v, err := env.db.CreateVariable(nameV.S, params...)
			if err != nil {
				return ctable.Value{}, err
			}
			return ctable.Symbolic(expr.NewVar(v)), nil
		}
		return ctable.Value{}, fmt.Errorf("sql: unknown function %q in constant context", t.Name)
	case ColRef:
		return ctable.Value{}, fmt.Errorf("sql: column reference %s in constant context", t)
	default:
		return ctable.Value{}, fmt.Errorf("sql: unsupported expression %T", n)
	}
}

// resolver maps (qualified) column names to positions in a combined schema.
type resolver struct {
	cols []resolvedCol
}

type resolvedCol struct {
	table string // lowered alias
	name  string // lowered column name
	idx   int
}

func newResolver(tables []TableRef, schemas []ctable.Schema) *resolver {
	r := &resolver{}
	idx := 0
	for ti, ref := range tables {
		alias := ref.Alias
		if alias == "" {
			alias = ref.Name
		}
		for _, c := range schemas[ti] {
			r.cols = append(r.cols, resolvedCol{
				table: strings.ToLower(alias),
				name:  strings.ToLower(c.Name),
				idx:   idx,
			})
			idx++
		}
	}
	return r
}

func (r *resolver) resolve(ref ColRef) (int, error) {
	name := strings.ToLower(ref.Column)
	table := strings.ToLower(ref.Table)
	found := -1
	for _, c := range r.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", ref)
		}
		found = c.idx
	}
	if found < 0 {
		return 0, fmt.Errorf("%w %s", ErrUnknownColumn, ref)
	}
	return found, nil
}

// compileScalar lowers a scalar AST node to a c-table Scalar; bound
// placeholders compile to literals of their argument value.
func compileScalar(n Node, r *resolver, env execEnv) (ctable.Scalar, error) {
	switch t := n.(type) {
	case NumLit:
		return ctable.LitFloat(float64(t)), nil
	case StrLit:
		return ctable.LitString(string(t)), nil
	case Placeholder:
		v, err := env.bindArg(t.Idx)
		if err != nil {
			return nil, err
		}
		return ctable.Lit{V: v}, nil
	case ColRef:
		idx, err := r.resolve(t)
		if err != nil {
			return nil, err
		}
		return ctable.Col(idx), nil
	case NegExpr:
		x, err := compileScalar(t.X, r, env)
		if err != nil {
			return nil, err
		}
		return ctable.Arith{Op: expr.OpSub, Left: ctable.LitFloat(0), Right: x}, nil
	case BinExpr:
		l, err := compileScalar(t.Left, r, env)
		if err != nil {
			return nil, err
		}
		rr, err := compileScalar(t.Right, r, env)
		if err != nil {
			return nil, err
		}
		var op expr.Op
		switch t.Op {
		case '+':
			op = expr.OpAdd
		case '-':
			op = expr.OpSub
		case '*':
			op = expr.OpMul
		case '/':
			op = expr.OpDiv
		}
		return ctable.Arith{Op: op, Left: l, Right: rr}, nil
	case FuncCall:
		return nil, fmt.Errorf("sql: function %q not allowed inside scalar expressions", t.Name)
	default:
		return nil, fmt.Errorf("sql: unsupported scalar %T", n)
	}
}

func cmpOpFromString(op string) (cond.CmpOp, error) {
	switch op {
	case "=":
		return cond.EQ, nil
	case "<>":
		return cond.NEQ, nil
	case "<":
		return cond.LT, nil
	case "<=":
		return cond.LE, nil
	case ">":
		return cond.GT, nil
	case ">=":
		return cond.GE, nil
	default:
		return 0, fmt.Errorf("sql: unknown comparison %q", op)
	}
}

// selectHasAggregates reports whether any target is an aggregate call.
// conf() counts as an aggregate (meaning aconf) only under GROUP BY.
func selectHasAggregates(st *SelectStmt) bool {
	for _, tgt := range st.Targets {
		if fc, ok := tgt.Expr.(FuncCall); ok {
			if fc.IsAggregate() || (fc.IsConf() && len(st.GroupBy) > 0) {
				return true
			}
		}
	}
	return false
}

// execSelect plans and runs a SELECT through the two-stage planner: the
// AST lowers to the logical IR, the rewriter applies its rules (constant
// folding, predicate pushdown, hash-join extraction, projection pruning),
// and the physical operator pipeline is drained into the result c-table.
// QueryContext hands the same pipeline to callers as a streaming cursor
// without draining.
func execSelect(env execEnv, st *SelectStmt) (*ctable.Table, error) {
	plan, err := planSelect(env, st, false)
	if err != nil {
		return nil, err
	}
	return plan.drain()
}

func defaultName(n Node) string {
	switch t := n.(type) {
	case ColRef:
		return t.Column
	case FuncCall:
		return strings.ToLower(t.Name)
	default:
		return "expr"
	}
}

