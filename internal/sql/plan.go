package sql

import (
	"fmt"
	"sort"
	"strings"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/expr"
	"pip/internal/sampler"
)

// Exec parses and executes one statement against the database, returning
// the result table (nil for DDL/DML statements).
func Exec(db *core.DB, src string) (*ctable.Table, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ExecStmt(db, st)
}

// ExecStmt executes a parsed statement.
func ExecStmt(db *core.DB, st Stmt) (*ctable.Table, error) {
	switch s := st.(type) {
	case *CreateTableStmt:
		db.Register(ctable.New(s.Name, s.Columns...))
		return nil, nil
	case *DropStmt:
		db.Drop(s.Name)
		return nil, nil
	case *InsertStmt:
		return nil, execInsert(db, s)
	case *SelectStmt:
		return execSelect(db, s)
	case *SetStmt:
		return nil, execSet(db, s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// sessionSettings maps SET names to sampler configuration updates. Each
// entry validates its value before the configuration is swapped in.
var sessionSettings = map[string]func(cfg *sampler.Config, v float64) error{
	"workers": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 0 {
			return fmt.Errorf("sql: workers must be a non-negative integer (0 = one per CPU)")
		}
		cfg.Workers = n
		return nil
	},
	"samples": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 0 {
			return fmt.Errorf("sql: samples must be a non-negative integer (0 = adaptive)")
		}
		cfg.FixedSamples = n
		return nil
	},
	"max_samples": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 1 {
			return fmt.Errorf("sql: max_samples must be a positive integer")
		}
		cfg.MaxSamples = n
		return nil
	},
	"min_samples": func(cfg *sampler.Config, v float64) error {
		n := int(v)
		if v != float64(n) || n < 0 {
			return fmt.Errorf("sql: min_samples must be a non-negative integer")
		}
		cfg.MinSamples = n
		return nil
	},
	"epsilon": func(cfg *sampler.Config, v float64) error {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("sql: epsilon must lie in (0, 1)")
		}
		cfg.Epsilon = v
		return nil
	},
	"delta": func(cfg *sampler.Config, v float64) error {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("sql: delta must lie in (0, 1)")
		}
		cfg.Delta = v
		return nil
	},
	"seed": func(cfg *sampler.Config, v float64) error {
		n := uint64(v)
		if v != float64(n) {
			return fmt.Errorf("sql: seed must be a non-negative integer")
		}
		cfg.WorldSeed = n
		return nil
	},
}

// execSet applies a session setting (SET name = value) to the database's
// sampling configuration. The new configuration takes effect for statements
// executed after this one; in-flight queries finish under the old one.
func execSet(db *core.DB, st *SetStmt) error {
	apply, ok := sessionSettings[st.Name]
	if !ok {
		names := make([]string, 0, len(sessionSettings))
		for n := range sessionSettings {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("sql: unknown setting %q (have %s)", st.Name, strings.Join(names, ", "))
	}
	// Validate against a scratch copy first so a bad value leaves the live
	// configuration untouched; the checks depend only on st.Value, so the
	// second application inside UpdateConfig cannot fail.
	trial := db.Config()
	if err := apply(&trial, st.Value); err != nil {
		return err
	}
	db.UpdateConfig(func(cfg *sampler.Config) { _ = apply(cfg, st.Value) })
	return nil
}

// execInsert evaluates row expressions (including CREATE_VARIABLE calls,
// which allocate fresh random variables per occurrence) and appends tuples.
func execInsert(db *core.DB, st *InsertStmt) error {
	tb, err := db.Table(st.Table)
	if err != nil {
		return err
	}
	for _, row := range st.Rows {
		if len(row) != len(tb.Schema) {
			return fmt.Errorf("sql: INSERT arity %d does not match %s arity %d",
				len(row), st.Table, len(tb.Schema))
		}
		vals := make([]ctable.Value, len(row))
		for i, n := range row {
			v, err := evalConstNode(db, n)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := tb.Append(ctable.NewTuple(vals...)); err != nil {
			return err
		}
	}
	return nil
}

// evalConstNode evaluates a tuple-independent expression: literals,
// arithmetic and CREATE_VARIABLE.
func evalConstNode(db *core.DB, n Node) (ctable.Value, error) {
	switch t := n.(type) {
	case NumLit:
		return ctable.Float(float64(t)), nil
	case StrLit:
		return ctable.String_(string(t)), nil
	case NegExpr:
		v, err := evalConstNode(db, t.X)
		if err != nil {
			return ctable.Value{}, err
		}
		e, ok := v.AsExpr()
		if !ok {
			return ctable.Value{}, fmt.Errorf("sql: cannot negate %s", v)
		}
		return ctable.Symbolic(expr.Negate(e)), nil
	case BinExpr:
		l, err := evalConstNode(db, t.Left)
		if err != nil {
			return ctable.Value{}, err
		}
		r, err := evalConstNode(db, t.Right)
		if err != nil {
			return ctable.Value{}, err
		}
		le, ok1 := l.AsExpr()
		re, ok2 := r.AsExpr()
		if !ok1 || !ok2 {
			return ctable.Value{}, fmt.Errorf("sql: non-numeric arithmetic operand")
		}
		switch t.Op {
		case '+':
			return ctable.Symbolic(expr.Add(le, re)), nil
		case '-':
			return ctable.Symbolic(expr.Sub(le, re)), nil
		case '*':
			return ctable.Symbolic(expr.Mul(le, re)), nil
		case '/':
			return ctable.Symbolic(expr.Div(le, re)), nil
		}
		return ctable.Value{}, fmt.Errorf("sql: unknown operator %c", t.Op)
	case FuncCall:
		if strings.EqualFold(t.Name, "create_variable") {
			if len(t.Args) < 1 {
				return ctable.Value{}, fmt.Errorf("sql: CREATE_VARIABLE needs a distribution name")
			}
			name, ok := t.Args[0].(StrLit)
			if !ok {
				return ctable.Value{}, fmt.Errorf("sql: CREATE_VARIABLE first argument must be a string")
			}
			params := make([]float64, 0, len(t.Args)-1)
			for _, a := range t.Args[1:] {
				v, err := evalConstNode(db, a)
				if err != nil {
					return ctable.Value{}, err
				}
				f, ok := v.AsFloat()
				if !ok {
					return ctable.Value{}, fmt.Errorf("sql: CREATE_VARIABLE parameters must be numeric constants")
				}
				params = append(params, f)
			}
			v, err := db.CreateVariable(string(name), params...)
			if err != nil {
				return ctable.Value{}, err
			}
			return ctable.Symbolic(expr.NewVar(v)), nil
		}
		return ctable.Value{}, fmt.Errorf("sql: unknown function %q in constant context", t.Name)
	case ColRef:
		return ctable.Value{}, fmt.Errorf("sql: column reference %s in constant context", t)
	default:
		return ctable.Value{}, fmt.Errorf("sql: unsupported expression %T", n)
	}
}

// resolver maps (qualified) column names to positions in a combined schema.
type resolver struct {
	cols []resolvedCol
}

type resolvedCol struct {
	table string // lowered alias
	name  string // lowered column name
	idx   int
}

func newResolver(tables []TableRef, schemas []ctable.Schema) *resolver {
	r := &resolver{}
	idx := 0
	for ti, ref := range tables {
		alias := ref.Alias
		if alias == "" {
			alias = ref.Name
		}
		for _, c := range schemas[ti] {
			r.cols = append(r.cols, resolvedCol{
				table: strings.ToLower(alias),
				name:  strings.ToLower(c.Name),
				idx:   idx,
			})
			idx++
		}
	}
	return r
}

func (r *resolver) resolve(ref ColRef) (int, error) {
	name := strings.ToLower(ref.Column)
	table := strings.ToLower(ref.Table)
	found := -1
	for _, c := range r.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", ref)
		}
		found = c.idx
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %s", ref)
	}
	return found, nil
}

// compileScalar lowers a scalar AST node to a c-table Scalar.
func compileScalar(n Node, r *resolver) (ctable.Scalar, error) {
	switch t := n.(type) {
	case NumLit:
		return ctable.LitFloat(float64(t)), nil
	case StrLit:
		return ctable.LitString(string(t)), nil
	case ColRef:
		idx, err := r.resolve(t)
		if err != nil {
			return nil, err
		}
		return ctable.Col(idx), nil
	case NegExpr:
		x, err := compileScalar(t.X, r)
		if err != nil {
			return nil, err
		}
		return ctable.Arith{Op: expr.OpSub, Left: ctable.LitFloat(0), Right: x}, nil
	case BinExpr:
		l, err := compileScalar(t.Left, r)
		if err != nil {
			return nil, err
		}
		rr, err := compileScalar(t.Right, r)
		if err != nil {
			return nil, err
		}
		var op expr.Op
		switch t.Op {
		case '+':
			op = expr.OpAdd
		case '-':
			op = expr.OpSub
		case '*':
			op = expr.OpMul
		case '/':
			op = expr.OpDiv
		}
		return ctable.Arith{Op: op, Left: l, Right: rr}, nil
	case FuncCall:
		return nil, fmt.Errorf("sql: function %q not allowed inside scalar expressions", t.Name)
	default:
		return nil, fmt.Errorf("sql: unsupported scalar %T", n)
	}
}

func cmpOpFromString(op string) (cond.CmpOp, error) {
	switch op {
	case "=":
		return cond.EQ, nil
	case "<>":
		return cond.NEQ, nil
	case "<":
		return cond.LT, nil
	case "<=":
		return cond.LE, nil
	case ">":
		return cond.GT, nil
	case ">=":
		return cond.GE, nil
	default:
		return 0, fmt.Errorf("sql: unknown comparison %q", op)
	}
}

// execSelect plans and runs a SELECT.
func execSelect(db *core.DB, st *SelectStmt) (*ctable.Table, error) {
	// FROM: fetch and cross-product (conditions conjoin per Fig. 1).
	if len(st.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	schemas := make([]ctable.Schema, len(st.From))
	inputs := make([]*ctable.Table, len(st.From))
	for i, ref := range st.From {
		tb, err := db.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		inputs[i] = tb
		schemas[i] = tb.Schema
	}
	r := newResolver(st.From, schemas)

	cur := inputs[0]
	for i := 1; i < len(inputs); i++ {
		cur = ctable.Product(cur, inputs[i])
	}

	// WHERE: compile to a conjunctive predicate; the CTYPE rewrite is
	// inherent in Compare (deterministic -> filter, symbolic -> atom).
	if len(st.Where) > 0 {
		var preds ctable.AndPred
		for _, cmp := range st.Where {
			op, err := cmpOpFromString(cmp.Op)
			if err != nil {
				return nil, err
			}
			l, err := compileScalar(cmp.Left, r)
			if err != nil {
				return nil, err
			}
			rr, err := compileScalar(cmp.Right, r)
			if err != nil {
				return nil, err
			}
			preds = append(preds, ctable.Compare{Op: op, Left: l, Right: rr})
		}
		var err error
		cur, err = ctable.Select(cur, preds)
		if err != nil {
			return nil, err
		}
	}

	// Split targets into aggregates and plain expressions. conf() counts
	// as an aggregate (meaning aconf) only under GROUP BY.
	hasAgg := false
	for _, tgt := range st.Targets {
		if fc, ok := tgt.Expr.(FuncCall); ok {
			if fc.IsAggregate() || (fc.IsConf() && len(st.GroupBy) > 0) {
				hasAgg = true
			}
		}
	}
	var out *ctable.Table
	var err error
	if hasAgg {
		out, err = execAggregateSelect(db, st, cur, r)
	} else {
		out, err = execPlainSelect(db, st, cur, r)
	}
	if err != nil {
		return nil, err
	}
	if st.Distinct {
		out = ctable.Distinct(out)
	}
	if st.OrderBy != nil {
		if err := orderTable(out, *st.OrderBy, st.Desc); err != nil {
			return nil, err
		}
	}
	if st.Limit > 0 && out.Len() > st.Limit {
		out.Tuples = out.Tuples[:st.Limit]
	}
	return out, nil
}

// execPlainSelect handles SELECT without aggregates: projection plus the
// per-row functions conf() and expectation(col).
func execPlainSelect(db *core.DB, st *SelectStmt, cur *ctable.Table, r *resolver) (*ctable.Table, error) {
	var names []string
	var targets []ctable.Scalar
	confCols := map[int]bool{}  // output positions computed by conf()
	expCols := map[int]int{}    // output position -> input col for expectation()
	varCols := map[int]string{} // output position -> "variance"|"stddev"

	for _, tgt := range st.Targets {
		if tgt.Star {
			for i, c := range cur.Schema {
				names = append(names, c.Name)
				targets = append(targets, ctable.Col(i))
			}
			continue
		}
		name := tgt.Alias
		if fc, ok := tgt.Expr.(FuncCall); ok {
			switch strings.ToLower(fc.Name) {
			case "conf":
				if name == "" {
					name = "conf"
				}
				confCols[len(targets)] = true
				names = append(names, name)
				targets = append(targets, ctable.LitFloat(0)) // placeholder
				continue
			case "expectation":
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: expectation() takes one argument")
				}
				sc, err := compileScalar(fc.Args[0], r)
				if err != nil {
					return nil, err
				}
				if name == "" {
					name = "expectation"
				}
				expCols[len(targets)] = len(targets)
				names = append(names, name)
				targets = append(targets, sc)
				continue
			case "variance", "stddev":
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: %s() takes one argument", strings.ToLower(fc.Name))
				}
				sc, err := compileScalar(fc.Args[0], r)
				if err != nil {
					return nil, err
				}
				if name == "" {
					name = strings.ToLower(fc.Name)
				}
				varCols[len(targets)] = strings.ToLower(fc.Name)
				names = append(names, name)
				targets = append(targets, sc)
				continue
			}
		}
		sc, err := compileScalar(tgt.Expr, r)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = defaultName(tgt.Expr)
		}
		names = append(names, name)
		targets = append(targets, sc)
	}

	out, err := ctable.Project(cur, names, targets)
	if err != nil {
		return nil, err
	}

	if len(expCols) > 0 {
		for i := range out.Tuples {
			t := &out.Tuples[i]
			for outPos := range expCols {
				if !t.Values[outPos].IsSymbolic() {
					continue
				}
				res, err := db.Expectation(t, outPos, false)
				if err != nil {
					return nil, err
				}
				t.Values[outPos] = ctable.Float(res.Mean)
			}
		}
	}
	if len(varCols) > 0 {
		for i := range out.Tuples {
			t := &out.Tuples[i]
			for outPos, kind := range varCols {
				e, ok := t.Values[outPos].AsExpr()
				if !ok {
					return nil, fmt.Errorf("sql: non-numeric %s() target %s", kind, t.Values[outPos])
				}
				var clause cond.Clause
				switch len(t.Cond.Clauses) {
				case 0:
					t.Values[outPos] = ctable.Float(0)
					continue
				case 1:
					clause = t.Cond.Clauses[0]
				default:
					return nil, fmt.Errorf("sql: %s() over disjunctive conditions is not supported", kind)
				}
				v := db.Sampler().Variance(e, clause)
				if kind == "stddev" {
					t.Values[outPos] = ctable.Float(v.StdDev)
				} else {
					t.Values[outPos] = ctable.Float(v.Variance)
				}
			}
		}
	}
	if len(confCols) > 0 {
		// conf() is probability-removing: fill in the probabilities and
		// strip conditions.
		for i := range out.Tuples {
			t := &out.Tuples[i]
			res := db.Conf(t)
			for pos := range confCols {
				t.Values[pos] = ctable.Float(res.Prob)
			}
			t.Cond = cond.TrueCondition()
		}
	}
	return out, nil
}

// execAggregateSelect handles SELECT with expectation aggregates and
// optional GROUP BY.
func execAggregateSelect(db *core.DB, st *SelectStmt, cur *ctable.Table, r *resolver) (*ctable.Table, error) {
	// Resolve group keys.
	keyCols := make([]int, 0, len(st.GroupBy))
	for _, g := range st.GroupBy {
		idx, err := r.resolve(g)
		if err != nil {
			return nil, err
		}
		keyCols = append(keyCols, idx)
	}

	// Compile aggregate argument expressions into a staging projection:
	// [input columns..., aggArg1, aggArg2, ...].
	type aggTarget struct {
		kind    string
		argCol  int // column in the staged table, -1 for count(*)/conf
		outName string
	}
	var staged []ctable.Scalar
	var stagedNames []string
	for i, c := range cur.Schema {
		staged = append(staged, ctable.Col(i))
		stagedNames = append(stagedNames, c.Name)
	}

	var aggs []aggTarget
	type outCol struct {
		isKey  bool
		keyIdx int // index into keyCols
		aggIdx int // index into aggs
		name   string
	}
	var outCols []outCol

	for _, tgt := range st.Targets {
		if tgt.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregates")
		}
		if fc, ok := tgt.Expr.(FuncCall); ok && (fc.IsAggregate() || fc.IsConf()) {
			kind := strings.ToLower(fc.Name)
			name := tgt.Alias
			if name == "" {
				name = kind
			}
			at := aggTarget{kind: kind, argCol: -1, outName: name}
			switch kind {
			case "expected_count", "conf", "aconf":
				// no argument column needed
			case "expected_sum_hist", "expected_max_hist":
				return nil, fmt.Errorf("sql: %s is available through the Go API (core.DB.Histogram), not SQL", kind)
			default:
				if fc.Star || len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: %s takes exactly one argument", kind)
				}
				sc, err := compileScalar(fc.Args[0], r)
				if err != nil {
					return nil, err
				}
				at.argCol = len(staged)
				staged = append(staged, sc)
				stagedNames = append(stagedNames, fmt.Sprintf("_agg%d", len(aggs)))
			}
			outCols = append(outCols, outCol{aggIdx: len(aggs), name: name})
			aggs = append(aggs, at)
			continue
		}
		// Non-aggregate target must be a group key column.
		ref, ok := tgt.Expr.(ColRef)
		if !ok {
			return nil, fmt.Errorf("sql: non-aggregate target %v must be a GROUP BY column", tgt.Expr)
		}
		idx, err := r.resolve(ref)
		if err != nil {
			return nil, err
		}
		ki := -1
		for i, k := range keyCols {
			if k == idx {
				ki = i
			}
		}
		if ki < 0 {
			return nil, fmt.Errorf("sql: target %s is not in GROUP BY", ref)
		}
		name := tgt.Alias
		if name == "" {
			name = ref.Column
		}
		outCols = append(outCols, outCol{isKey: true, keyIdx: ki, name: name})
	}

	stagedTb, err := ctable.Project(cur, stagedNames, staged)
	if err != nil {
		return nil, err
	}

	// Group.
	var groups []ctable.GroupRows
	if len(keyCols) == 0 {
		all := make([]int, stagedTb.Len())
		for i := range all {
			all[i] = i
		}
		groups = []ctable.GroupRows{{Rows: all}}
	} else {
		groups, err = ctable.GroupBy(stagedTb, keyCols)
		if err != nil {
			return nil, err
		}
	}

	sch := make(ctable.Schema, len(outCols))
	for i, oc := range outCols {
		sch[i] = ctable.Column{Name: oc.name}
	}
	out := &ctable.Table{Name: "result", Schema: sch}

	smp := db.Sampler()
	for _, g := range groups {
		sub := &ctable.Table{Name: stagedTb.Name, Schema: stagedTb.Schema}
		for _, ri := range g.Rows {
			sub.Tuples = append(sub.Tuples, stagedTb.Tuples[ri])
		}
		aggVals := make([]ctable.Value, len(aggs))
		for ai, at := range aggs {
			switch at.kind {
			case "expected_sum":
				res, err := smp.ExpectedSum(sub, at.argCol)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_count":
				res, err := smp.ExpectedCount(sub)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_avg":
				res, err := smp.ExpectedAvg(sub, at.argCol)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_max":
				res, err := smp.ExpectedMax(sub, at.argCol, 0)
				if err != nil {
					return nil, err
				}
				aggVals[ai] = ctable.Float(res.Value)
			case "expected_stddev", "expected_variance":
				// Per-world spread across the group's rows, averaged over
				// sampled worlds (per-table semantics).
				fold := sampler.StdDevFold
				if at.kind == "expected_variance" {
					fold = sampler.VarianceFold
				}
				n := db.Config().FixedSamples
				if n <= 0 {
					n = 1000
				}
				hist, err := smp.AggregateHistogram(sub, at.argCol, fold, n)
				if err != nil {
					return nil, err
				}
				total := 0.0
				for _, v := range hist {
					total += v
				}
				if len(hist) > 0 {
					total /= float64(len(hist))
				}
				aggVals[ai] = ctable.Float(total)
			case "conf", "aconf":
				// Joint probability that at least one row of the group
				// exists (aconf over the disjunction of row conditions).
				d := cond.FalseCondition()
				for i := range sub.Tuples {
					d = d.Or(sub.Tuples[i].Cond)
				}
				res := smp.AConf(d)
				aggVals[ai] = ctable.Float(res.Prob)
			default:
				return nil, fmt.Errorf("sql: unhandled aggregate %s", at.kind)
			}
		}
		vals := make([]ctable.Value, len(outCols))
		for i, oc := range outCols {
			if oc.isKey {
				vals[i] = g.Key[oc.keyIdx]
			} else {
				vals[i] = aggVals[oc.aggIdx]
			}
		}
		out.Tuples = append(out.Tuples, ctable.NewTuple(vals...))
	}
	return out, nil
}

func defaultName(n Node) string {
	switch t := n.(type) {
	case ColRef:
		return t.Column
	case FuncCall:
		return strings.ToLower(t.Name)
	default:
		return "expr"
	}
}

// orderTable sorts deterministically by the named column.
func orderTable(tb *ctable.Table, ref ColRef, desc bool) error {
	idx := tb.Schema.ColIndex(ref.Column)
	if idx < 0 {
		return fmt.Errorf("sql: ORDER BY column %s not in result", ref)
	}
	var sortErr error
	sort.SliceStable(tb.Tuples, func(i, j int) bool {
		c, ok := tb.Tuples[i].Values[idx].Compare(tb.Tuples[j].Values[idx])
		if !ok {
			sortErr = fmt.Errorf("sql: ORDER BY over symbolic column %s", ref)
			return false
		}
		if desc {
			return c > 0
		}
		return c < 0
	})
	return sortErr
}
