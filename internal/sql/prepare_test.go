package sql

import (
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"pip/internal/ctable"
	"pip/internal/expr"
)

// --- Placeholder lexing/parsing ---

func TestLexPlaceholder(t *testing.T) {
	toks, err := Lex("SELECT ? FROM t WHERE x > ?")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, tok := range toks {
		if tok.Kind == TokSymbol && tok.Text == "?" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("lexed %d placeholder tokens, want 2", n)
	}
}

func TestNumParams(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"SELECT a FROM t", 0},
		{"SELECT a FROM t WHERE a > ?", 1},
		{"SELECT ?, a + ? FROM t WHERE a > ? AND b < -?", 4},
		{"INSERT INTO t VALUES (?, ?), (1, ?)", 3},
		{"INSERT INTO t VALUES (CREATE_VARIABLE('Normal', ?, ?))", 2},
	}
	for _, tc := range cases {
		p, err := Prepare(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if p.NumInput() != tc.want {
			t.Fatalf("%s: NumInput = %d, want %d", tc.src, p.NumInput(), tc.want)
		}
	}
}

// --- Binding corpus ---

// TestBindLiteralTypes binds every literal kind through INSERT placeholders
// and reads the values back.
func TestBindLiteralTypes(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (f, i, s, e)")

	v := &expr.Variable{Key: expr.VarKey{ID: 77}}
	ins, err := Prepare("INSERT INTO t VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ins.Exec(db,
		ctable.Float(2.5),
		ctable.Int(42),
		ctable.String_("hello"),
		ctable.Symbolic(expr.Add(expr.NewVar(v), expr.Const(1))),
	)
	if err != nil {
		t.Fatal(err)
	}

	out := mustExec(t, db, "SELECT f, i, s, e FROM t")
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	row := out.Tuples[0].Values
	if f, _ := row[0].AsFloat(); f != 2.5 {
		t.Fatalf("float column %v", row[0])
	}
	if row[1].Kind != ctable.KindInt || row[1].I != 42 {
		t.Fatalf("int column %v", row[1])
	}
	if row[2].Kind != ctable.KindString || row[2].S != "hello" {
		t.Fatalf("string column %v", row[2])
	}
	if !row[3].IsSymbolic() {
		t.Fatalf("expr column %v", row[3])
	}
}

// TestBindWhere binds a comparison bound and re-executes with different
// arguments, verifying prepare-once / bind-many semantics.
func TestBindWhere(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (name, v)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)")

	p, err := Prepare("SELECT name FROM t WHERE v > ?")
	if err != nil {
		t.Fatal(err)
	}
	for bound, want := range map[float64]int{0: 3, 1.5: 2, 3: 0} {
		out, err := p.Exec(db, ctable.Float(bound))
		if err != nil {
			t.Fatalf("bound %v: %v", bound, err)
		}
		if out.Len() != want {
			t.Fatalf("bound %v: %d rows, want %d", bound, out.Len(), want)
		}
	}
}

// TestBindArity covers wrong-arity binding in both directions and unbound
// execution of a parameterized statement.
func TestBindArity(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")

	p, err := Prepare("SELECT v FROM t WHERE v > ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(db); !errors.Is(err, ErrBind) {
		t.Fatalf("too few args: %v", err)
	}
	if _, err := p.Exec(db, ctable.Float(1), ctable.Float(2)); !errors.Is(err, ErrBind) {
		t.Fatalf("too many args: %v", err)
	}
	// Unprepared execution of a statement containing placeholders.
	if _, err := Exec(db, "SELECT v FROM t WHERE v > ?"); !errors.Is(err, ErrBind) {
		t.Fatalf("unbound exec: %v", err)
	}
}

// TestBindCreateVariable binds placeholders inside CREATE_VARIABLE — both
// distribution parameters and the distribution name itself.
func TestBindCreateVariable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")

	ins, err := Prepare("INSERT INTO t VALUES (CREATE_VARIABLE(?, ?, ?))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(db, ctable.String_("Normal"), ctable.Float(7), ctable.Float(0.5)); err != nil {
		t.Fatal(err)
	}
	out := mustExec(t, db, "SELECT expectation(v) FROM t")
	if got := cell(t, out, 0, 0); math.Abs(got-7) > 1e-9 {
		t.Fatalf("expectation of bound Normal(7, 0.5) = %v", got)
	}
	// Non-string name is rejected.
	if _, err := ins.Exec(db, ctable.Float(3), ctable.Float(7), ctable.Float(0.5)); err == nil {
		t.Fatal("numeric distribution name accepted")
	}
}

// TestPreparedReuseDoesNotMutateAST re-executes one prepared statement with
// interleaved argument vectors; a binding that mutated the cached AST would
// leak earlier arguments into later executions.
func TestPreparedReuseDoesNotMutateAST(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")

	p, err := Prepare("SELECT v + ? FROM t WHERE v > ?")
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Exec(db, ctable.Float(10), ctable.Float(2))
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Exec(db, ctable.Float(100), ctable.Float(0))
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() != 1 || cell(t, first, 0, 0) != 13 {
		t.Fatalf("first bind: %v", first)
	}
	if second.Len() != 3 || cell(t, second, 0, 0) != 101 {
		t.Fatalf("second bind: %v", second)
	}
	third, err := p.Exec(db, ctable.Float(10), ctable.Float(2))
	if err != nil {
		t.Fatal(err)
	}
	if third.Len() != 1 || cell(t, third, 0, 0) != 13 {
		t.Fatalf("third bind differs from first: %v", third)
	}
}

// --- Typed errors ---

func TestTypedErrors(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")

	if _, err := Exec(db, "SELEC v FROM t"); !errors.Is(err, ErrParse) {
		t.Fatalf("syntax error: %v", err)
	}
	var pe *ParseError
	_, err := Exec(db, "SELECT v\nFROM t WHERE ^")
	if !errors.As(err, &pe) {
		t.Fatalf("no ParseError: %v", err)
	}
	if pe.Line != 2 || pe.Col < 13 {
		t.Fatalf("position line %d col %d: %v", pe.Line, pe.Col, pe)
	}
	if _, err := Exec(db, "SELECT v FROM missing"); !errors.Is(err, errUnknownTableSentinel(t)) {
		t.Fatalf("unknown table: %v", err)
	}
	if _, err := Exec(db, "SELECT nope FROM t"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown column: %v", err)
	}
	if _, err := Exec(db, "SELECT v FROM t ORDER BY nope"); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown order-by column: %v", err)
	}
}

// errUnknownTableSentinel avoids importing core's sentinel at every use
// site above.
func errUnknownTableSentinel(t *testing.T) error {
	t.Helper()
	db := testDB(t)
	_, err := db.Table("definitely_missing")
	if err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	return errors.Unwrap(err)
}

// TestLineCol pins the offset-to-position conversion.
func TestLineCol(t *testing.T) {
	src := "ab\ncde\nf"
	cases := []struct{ off, line, col int }{
		{0, 1, 1}, {1, 1, 2}, {3, 2, 1}, {5, 2, 3}, {7, 3, 1}, {99, 3, 2},
	}
	for _, tc := range cases {
		l, c := LineCol(src, tc.off)
		if l != tc.line || c != tc.col {
			t.Fatalf("offset %d: %d:%d, want %d:%d", tc.off, l, c, tc.line, tc.col)
		}
	}
}

// --- Streaming cursors ---

// TestQueryContextStreams verifies a plain SELECT streams: rows arrive
// through the cursor without materializing, WHERE and LIMIT apply, and the
// cursor terminates with io.EOF.
func TestQueryContextStreams(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (name, v)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3), ('d', 4)")

	cur, err := QueryContext(context.Background(), db, "SELECT name FROM t WHERE v > ? LIMIT 2", ctable.Float(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	sc, ok := cur.(*spanCursor)
	if !ok {
		t.Fatalf("plain SELECT produced %T, want span-traced plan cursor", cur)
	}
	if _, ok := sc.inner.(*vecLimitOp); !ok {
		t.Fatalf("plain SELECT pipeline is %T, want streaming vecLimitOp", sc.inner)
	}
	var names []string
	for {
		tp, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, tp.Values[0].S)
	}
	if len(names) != 2 || names[0] != "b" || names[1] != "c" {
		t.Fatalf("streamed %v", names)
	}
}

// TestQueryContextBlockingShapes verifies blocking SELECT shapes
// (aggregates, DISTINCT, ORDER BY) run on the same planned pipeline as
// streaming queries: the returned cursor is their physical operator, which
// materializes its own input internally on the first Next call.
func TestQueryContextBlockingShapes(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (2)")

	cases := []struct {
		q     string
		wants []float64
	}{
		{"SELECT expected_sum(v) FROM t", []float64{5}},
		{"SELECT DISTINCT v FROM t", []float64{1, 2}},
		{"SELECT v FROM t ORDER BY v DESC", []float64{2, 2, 1}},
	}
	for _, tc := range cases {
		cur, err := QueryContext(context.Background(), db, tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if _, ok := cur.(operator); !ok {
			t.Fatalf("%s: produced %T, want a plan operator", tc.q, cur)
		}
		var got []float64
		for {
			tp, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.q, err)
			}
			f, _ := tp.Values[0].AsFloat()
			got = append(got, f)
		}
		cur.Close()
		if len(got) != len(tc.wants) {
			t.Fatalf("%s: got %v, want %v", tc.q, got, tc.wants)
		}
		for i := range got {
			if got[i] != tc.wants[i] {
				t.Fatalf("%s: got %v, want %v", tc.q, got, tc.wants)
			}
		}
	}
}

// TestStreamMatchesMaterialized drains the streaming cursor and compares
// against the eager executor across join, filter, projection and per-row
// function shapes.
func TestStreamMatchesMaterialized(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE o (cust, shipto, price)")
	mustExec(t, db, "CREATE TABLE s (dest, dur)")
	mustExec(t, db, "INSERT INTO o VALUES ('j', 'NY', CREATE_VARIABLE('Normal', 100, 10)), ('b', 'LA', 40)")
	mustExec(t, db, "INSERT INTO s VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2)), ('LA', 4)")

	for _, q := range []string{
		"SELECT * FROM o",
		"SELECT cust, price * 2 AS pp FROM o WHERE price > 50",
		"SELECT cust, dur FROM o, s WHERE shipto = dest",
		"SELECT cust, conf() FROM o, s WHERE shipto = dest AND dur > 4",
		"SELECT cust, expectation(price) FROM o WHERE price > 90",
	} {
		eager, err := Exec(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		cur, err := QueryContext(context.Background(), db, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var got []ctable.Tuple
		for {
			tp, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			got = append(got, tp.Clone())
		}
		cur.Close()
		if len(got) != eager.Len() {
			t.Fatalf("%s: streamed %d rows, eager %d", q, len(got), eager.Len())
		}
		for i := range got {
			for c := range got[i].Values {
				if got[i].Values[c].String() != eager.Tuples[i].Values[c].String() {
					t.Fatalf("%s row %d col %d: %s != %s", q, i, c,
						got[i].Values[c], eager.Tuples[i].Values[c])
				}
			}
			if got[i].Cond.String() != eager.Tuples[i].Cond.String() {
				t.Fatalf("%s row %d cond: %s != %s", q, i, got[i].Cond, eager.Tuples[i].Cond)
			}
		}
	}
}
