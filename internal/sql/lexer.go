// Package sql implements the SQL subset PIP exposes (paper §V-A): enough of
// SELECT/FROM/WHERE/GROUP BY plus CREATE TABLE / INSERT / CREATE_VARIABLE to
// express the paper's queries, with the CTYPE rewrite applied by the planner
// — probabilistic comparisons in WHERE move into c-table conditions while
// deterministic ones filter rows, exactly as in the Postgres embedding.
//
// The pipeline is lexer -> recursive-descent parser -> planner; plans
// execute against a core.DB.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol // punctuation and operators
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

// Lexer tokenizes a SQL string.
type Lexer struct {
	src  string
	pos  int
	toks []Token
}

// Lex tokenizes the input, returning an error with position info on an
// invalid character or unterminated string.
func Lex(src string) ([]Token, error) {
	l := &Lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *Lexer) next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot := false
		seenExp := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			switch {
			case ch >= '0' && ch <= '9':
				l.pos++
			case ch == '.' && !seenDot && !seenExp:
				seenDot = true
				l.pos++
			case (ch == 'e' || ch == 'E') && !seenExp && l.pos > start:
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
			default:
				return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
			}
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{}, newParseError(l.src, start, "unterminated string")
	default:
		// Multi-character operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos += 2
			return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
		}
		switch c {
		case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', ';', '.', '?':
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, newParseError(l.src, l.pos, fmt.Sprintf("invalid character %q", c))
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
