// Rule-based plan rewriter. Every rule is condition-free: it changes which
// tuple combinations are enumerated, never which predicates conjoin
// condition atoms or in what order, so rewritten plans produce results
// bit-identical to naive cross-product-then-filter evaluation — including
// the symbolic conditions the paper's deferred sampling integrates later.
//
//	constant folding     WHERE 1 = 0 plans to a zero-row Result without
//	                     scanning; always-true conjuncts drop from the filter.
//	predicate pushdown   single-table conjuncts become drop-only prefilters
//	                     on their scan (rows that deterministically fail are
//	                     skipped before joining; symbolic rows pass through
//	                     and the final Filter conjoins their atoms).
//	equi-join extraction a.x = b.y conjuncts become hash-join pairing keys,
//	                     replacing the filtered cross product.
//	projection pruning   scans emit only the columns the query reads.
//
// Scope of the contract: bit-identity is defined over queries whose
// predicate evaluation succeeds. An ill-typed comparison (say a string
// cell against a number) errors only on the tuple pairs that evaluate it,
// and the rules above may prune exactly that enumeration — a constant-false
// conjunct skips the scan, a pushed prefilter empties a join input, a hash
// join never pairs keys of incomparable kinds — in which case the planned
// query succeeds with the rows the error-free evaluation defines, where
// rules-off evaluation would surface the per-row error. This mirrors how
// deterministic SQL engines treat errors in unreached rows and is pinned
// by TestRewriteErrorScope.

package sql

import (
	"pip/internal/cond"
	"pip/internal/ctable"
)

// rewriteFold evaluates plan-time-known conjuncts (no column references).
// An always-false conjunct short-circuits the whole input to a zero-row
// Result; always-true conjuncts are dropped from the filter. Symbolic
// constants (e.g. a bound random-variable argument) and conjuncts whose
// evaluation errors are left for runtime, preserving unplanned semantics.
func rewriteFold(conjs []*conjunct, h Hints) (constFalse bool, reason string) {
	if h.NoFold {
		return false, ""
	}
	for _, c := range conjs {
		if !c.mappable || len(c.cols) > 0 {
			continue
		}
		empty := ctable.Tuple{}
		outcome, _, err := c.cmp.Eval(&empty)
		if err != nil {
			continue // surfaces at runtime exactly as unplanned evaluation would
		}
		switch outcome {
		case ctable.PredTrue:
			c.foldTrue = true
		case ctable.PredFalse:
			return true, c.display + " is false"
		}
	}
	return false, ""
}

// rewritePushdown attaches single-table conjuncts to their scan as
// drop-only prefilters, remapped into the table's local column space. The
// conjunct stays in the final filter: the prefilter only skips rows the
// predicate proves deterministically false, so symbolic atom conjunction
// keeps its source order and the final conditions are unchanged. Pushdown
// is skipped for single-table queries, where the filter already sits
// directly above the scan.
func rewritePushdown(conjs []*conjunct, scans []*lScan, offs []int, nt int, h Hints) {
	if h.NoPushdown || nt == 1 {
		return
	}
	for _, c := range conjs {
		if !c.mappable || c.foldTrue || len(c.cols) == 0 {
			continue
		}
		t := tableOf(c.cols[0], offs, nt)
		if t < 0 || tableOf(c.cols[len(c.cols)-1], offs, nt) != t {
			continue
		}
		local := make([]int, offs[t]+len(scans[t].schema))
		for i := range local {
			local[i] = i - offs[t]
		}
		scans[t].pre = append(scans[t].pre, lpred{
			cmp:     remapCompare(c.cmp, local),
			display: c.display,
		})
	}
}

// rewriteHashKeys marks a.x = b.y conjuncts as pairing keys of the
// left-deep join that brings in the later table. The conjunct also stays
// in the final filter: deterministically matched pairs re-evaluate it to
// PredTrue (no atom), while symbolic keys fall back to pair-with-everything
// at the join and receive their condition atom from the filter — identical
// conditions to the filtered cross product.
func rewriteHashKeys(conjs []*conjunct, offs []int, h Hints) {
	if h.NoHashJoin || len(offs) == 1 {
		return
	}
	nt := len(offs)
	for _, c := range conjs {
		if c.foldTrue || c.cmp.Op != cond.EQ {
			continue
		}
		l, lok := c.cmp.Left.(ctable.Col)
		r, rok := c.cmp.Right.(ctable.Col)
		if !lok || !rok {
			continue
		}
		lt := tableOf(int(l), offs, nt)
		rt := tableOf(int(r), offs, nt)
		if lt < 0 || rt < 0 || lt == rt {
			continue
		}
		// Orient: the key on the later table probes that table's build side.
		left, right := int(l), int(r)
		if lt > rt {
			left, right = right, left
			lt, rt = rt, lt
		}
		c.joinLvl = rt - 1
		c.keyLeft = left
		c.keyRight = right
	}
}

// rewritePrune narrows each scan to the columns the query actually reads
// (targets or staged aggregates, remaining conjuncts, join keys), remapping
// every compiled column reference into the pruned space. It returns the
// old-to-new global column map and the new per-table offsets. Pruning is
// skipped for single-table queries (the projection already narrows the
// result) and when any scalar resists analysis.
func rewritePrune(conjs []*conjunct, scans []*lScan, offs []int, proj *lProject, agg *lAggregate, h Hints) ([]int, []int) {
	nt := len(scans)
	width := 0
	for _, s := range scans {
		width += len(s.schema)
	}
	id := identityMap(width)
	if h.NoPrune || nt == 1 {
		return id, offs
	}

	needed := map[int]bool{}
	for _, c := range conjs {
		if c.foldTrue {
			continue
		}
		if !c.mappable {
			return id, offs
		}
		for _, col := range c.cols {
			needed[col] = true
		}
	}
	var scalars []ctable.Scalar
	if proj != nil {
		scalars = proj.targets
	} else {
		scalars = agg.staged
	}
	for _, s := range scalars {
		if !scalarCols(s, needed) {
			return id, offs
		}
	}
	if len(needed) == width {
		return id, offs
	}

	keep := sortedCols(needed)
	m := make([]int, width)
	for i := range m {
		m[i] = -1
	}
	newOffs := make([]int, nt)
	next := 0
	for t := range scans {
		newOffs[t] = next
		// Non-nil even when empty: a table contributing only multiplicity
		// and conditions prunes to zero-width rows (keep == nil means the
		// whole table is kept and stored tuples are emitted directly).
		local := make([]int, 0, len(scans[t].schema))
		for _, c := range keep {
			if c >= offs[t] && c < offs[t]+len(scans[t].schema) {
				local = append(local, c-offs[t])
			}
		}
		if len(local) == len(scans[t].schema) {
			local = nil
		}
		scans[t].keep = local
		if local == nil {
			// Every column of this table stays, needed or not; the new
			// layout keeps the table's full width.
			for lc := range scans[t].schema {
				m[offs[t]+lc] = next + lc
			}
			next += len(scans[t].schema)
		} else {
			for n, lc := range local {
				m[offs[t]+lc] = next + n
			}
			next += len(local)
		}
	}

	// Remap the filter comparisons and the output scalars. Scan prefilters
	// run in table-local space against the stored tuples and need no remap.
	for _, c := range conjs {
		if !c.foldTrue {
			c.cmp = remapCompare(c.cmp, m)
		}
	}
	if proj != nil {
		for i, s := range proj.targets {
			proj.targets[i] = remapScalar(s, m)
		}
	} else {
		for i, s := range agg.staged {
			agg.staged[i] = remapScalar(s, m)
		}
	}
	return m, newOffs
}

// tableOf returns the table index covering global column c, or -1.
func tableOf(c int, offs []int, nt int) int {
	for t := nt - 1; t >= 0; t-- {
		if c >= offs[t] {
			return t
		}
	}
	return -1
}
