package sql

import (
	"strings"
	"testing"
)

// TestShowStats pins the SHOW STATS contract: the fixed (scope, name,
// value) schema, the engine rows always present, and query-scope rows —
// phases and sampler counters — appearing once a sampling SELECT ran.
func TestShowStats(t *testing.T) {
	db := plannerDB(t)

	out := mustExec(t, db, "SHOW STATS")
	if got := strings.Join(out.Schema.Names(), ","); got != "scope,name,value" {
		t.Fatalf("schema %q, want scope,name,value", got)
	}
	rows := map[[2]string]float64{}
	for _, tp := range out.Tuples {
		rows[[2]string{tp.Values[0].S, tp.Values[1].S}] = tp.Values[2].F
	}
	for _, name := range []string{"samples", "batches", "rounds", "rejection_attempts",
		"metropolis_proposals", "escalations", "exact_cdf_hits", "closed_form_hits",
		"queries_traced"} {
		if _, ok := rows[[2]string{"engine", name}]; !ok {
			t.Fatalf("engine row %q missing; rows: %v", name, rows)
		}
	}
	if _, ok := rows[[2]string{"query", "samples"}]; ok {
		t.Fatal("query scope present before any query ran")
	}

	// A sampling aggregate (expected_max has no closed form) populates the
	// query scope with counters and phase timings.
	mustExec(t, db, "SELECT expected_max(price) AS m FROM o")
	out = mustExec(t, db, "SHOW STATS")
	rows = map[[2]string]float64{}
	for _, tp := range out.Tuples {
		rows[[2]string{tp.Values[0].S, tp.Values[1].S}] = tp.Values[2].F
	}
	if rows[[2]string{"query", "samples"}] <= 0 {
		t.Fatalf("query scope recorded no samples: %v", rows)
	}
	if rows[[2]string{"engine", "samples"}] < rows[[2]string{"query", "samples"}] {
		t.Fatal("engine scope did not aggregate the query's samples")
	}
	if rows[[2]string{"engine", "queries_traced"}] != 1 {
		t.Fatalf("queries_traced = %v, want 1 (SHOW STATS itself must not count)",
			rows[[2]string{"engine", "queries_traced"}])
	}
	for _, ph := range []string{"plan", "rewrite", "execute"} {
		if _, ok := rows[[2]string{"query", "phase_" + ph + "_seconds"}]; !ok {
			t.Fatalf("query phase %q missing; rows: %v", ph, rows)
		}
	}
	// SHOW STATS must read, not displace, the last-query snapshot: running
	// it twice keeps the query scope.
	out = mustExec(t, db, "SHOW STATS")
	found := false
	for _, tp := range out.Tuples {
		if tp.Values[0].S == "query" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("second SHOW STATS lost the query scope")
	}
}

// TestExplainAnalyzeSamplerAnnotations asserts EXPLAIN ANALYZE decorates
// sampling operators with their per-operator sampler counters.
func TestExplainAnalyzeSamplerAnnotations(t *testing.T) {
	db := plannerDB(t)
	out := mustExec(t, db, "EXPLAIN ANALYZE SELECT expected_max(price) AS m FROM o")
	var plan strings.Builder
	for _, tp := range out.Tuples {
		plan.WriteString(tp.Values[0].S)
		plan.WriteByte('\n')
	}
	text := plan.String()
	if !strings.Contains(text, "samples=") || !strings.Contains(text, "batches=") {
		t.Fatalf("EXPLAIN ANALYZE lacks sampler annotations:\n%s", text)
	}

	// A two-variable comparison defeats the exact-CDF shortcut, so conf()
	// rejection-samples and the operator reports its acceptance rate.
	out = mustExec(t, db, "EXPLAIN ANALYZE SELECT cust, conf() AS p FROM o, s WHERE o.price > s.duration")
	plan.Reset()
	for _, tp := range out.Tuples {
		plan.WriteString(tp.Values[0].S)
		plan.WriteByte('\n')
	}
	if !strings.Contains(plan.String(), "accept=") {
		t.Fatalf("EXPLAIN ANALYZE lacks accept rate on the sampling operator:\n%s", plan.String())
	}
	// Plain EXPLAIN (no ANALYZE) must stay clean of runtime counters.
	out = mustExec(t, db, "EXPLAIN SELECT expected_max(price) AS m FROM o")
	for _, tp := range out.Tuples {
		if strings.Contains(tp.Values[0].S, "samples=") {
			t.Fatalf("plain EXPLAIN leaked runtime counters: %s", tp.Values[0].S)
		}
	}
}
