// Logical plan IR: the planner's intermediate representation of a SELECT.
//
// Plan(env, stmt) lowers the AST into a tree of logical nodes
// (Scan -> Join -> Filter -> Project/Aggregate -> Distinct -> Sort -> Limit),
// the rule-based rewriter (rewrite.go) transforms the tree — constant
// folding, predicate pushdown, equi-join key extraction, projection pruning
// — and the physical layer (operators.go) lowers each node onto a Cursor
// operator. The rewrites are all "condition-free": they change which tuples
// are enumerated, never which predicates conjoin condition atoms or in what
// order, so planned results are bit-identical to the naive
// cross-product-then-filter evaluation (see docs/ARCHITECTURE.md).

package sql

import (
	"fmt"
	"strings"

	"pip/internal/ctable"
)

// lnode is one node of the logical plan IR.
type lnode interface {
	// op names the node kind for plan rendering ("Scan", "HashJoin", ...).
	op() string
	// detail renders operator-specific information for plan output.
	detail() string
	// children returns the node's inputs, left to right.
	children() []lnode
}

// lpred is one compiled predicate with its source-level rendering.
type lpred struct {
	cmp     ctable.Compare
	display string
}

// lScan reads one FROM table's tuple snapshot. keep (projection pruning)
// selects the emitted columns; pre (predicate pushdown) is a drop-only
// prefilter in the table's full-local column space: rows whose predicate is
// deterministically false are skipped, all others pass unchanged — atom
// conjunction stays with the final Filter so conditions are bit-identical
// to unplanned evaluation.
type lScan struct {
	table  string
	alias  string
	tuples []ctable.Tuple
	schema ctable.Schema
	keep   []int // pruned local columns in order; nil = all
	pre    []lpred
}

func (s *lScan) op() string { return "Scan" }

func (s *lScan) detail() string {
	var b strings.Builder
	b.WriteString(s.table)
	if s.alias != "" && !strings.EqualFold(s.alias, s.table) {
		b.WriteString(" as " + s.alias)
	}
	if s.keep != nil {
		if len(s.keep) == 0 {
			b.WriteString(" [cols: none]")
		} else {
			names := make([]string, len(s.keep))
			for i, c := range s.keep {
				names[i] = s.schema[c].Name
			}
			b.WriteString(" [cols: " + strings.Join(names, ", ") + "]")
		}
	}
	if len(s.pre) > 0 {
		parts := make([]string, len(s.pre))
		for i, p := range s.pre {
			parts[i] = p.display
		}
		b.WriteString(" [pre: " + strings.Join(parts, " AND ") + "]")
	}
	return b.String()
}

func (s *lScan) children() []lnode { return nil }

// outCols returns the emitted column names.
func (s *lScan) outCols() []string {
	if s.keep == nil {
		return s.schema.Names()
	}
	names := make([]string, len(s.keep))
	for i, c := range s.keep {
		names[i] = s.schema[c].Name
	}
	return names
}

// lJoin pairs the left subtree with one scan. hash=true pairs rows whose
// deterministic key columns are equal (plus a fallback bucket for symbolic
// keys, which pair with everything and defer to the final Filter); hash=false
// is the nested-loop cross product. Either way input conditions conjoin per
// the paper's C_RxS and pairs with trivially false conditions are dropped.
type lJoin struct {
	left, right lnode
	hash        bool
	leftKeys    []int // positions in the left subtree's output row
	rightKeys   []int // positions in the right scan's (pruned) output row
	display     []string
}

func (j *lJoin) op() string {
	if j.hash {
		return "HashJoin"
	}
	return "NestedLoop"
}

func (j *lJoin) detail() string {
	if len(j.display) == 0 {
		return ""
	}
	return "(" + strings.Join(j.display, " AND ") + ")"
}

func (j *lJoin) children() []lnode { return []lnode{j.left, j.right} }

// lFilter applies the WHERE conjuncts (minus plan-time-folded ones) in
// source order: deterministic comparisons drop rows, symbolic ones conjoin
// condition atoms (the CTYPE rewrite of paper §V-A).
type lFilter struct {
	input lnode
	preds []lpred
}

func (f *lFilter) op() string { return "Filter" }

func (f *lFilter) detail() string {
	parts := make([]string, len(f.preds))
	for i, p := range f.preds {
		parts[i] = p.display
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

func (f *lFilter) children() []lnode { return []lnode{f.input} }

// lProject computes the SELECT targets of an aggregate-free query, plus the
// per-row probability functions conf(), expectation() and
// variance()/stddev() at the marked output positions.
type lProject struct {
	input   lnode
	names   []string
	targets []ctable.Scalar
	// The marked positions are slices, not sets: bindProject appends them in
	// ascending column order, and the project operator evaluates them in that
	// order — per-row sampler work and error selection must not depend on map
	// iteration order.
	confCols []int
	expCols  []int
	varCols  []varCol
}

// varCol marks one output position computed by variance() or stddev().
type varCol struct {
	pos  int
	kind string
}

func (p *lProject) op() string { return "Project" }

func (p *lProject) detail() string { return "(" + strings.Join(p.names, ", ") + ")" }

func (p *lProject) children() []lnode { return []lnode{p.input} }

// aggTarget is one aggregate output: the kind (expected_sum, conf, ...) and
// the staged column holding its argument (-1 for argument-free aggregates).
type aggTarget struct {
	kind    string
	argCol  int
	outName string
}

// aggOutCol maps one output column to its group key or aggregate.
type aggOutCol struct {
	isKey  bool
	keyIdx int // index into the staged key columns
	aggIdx int // index into aggs
	name   string
}

// lAggregate materializes its input, stages [group keys..., agg args...]
// per row, partitions by the key columns, and evaluates the expectation
// aggregates per group under the request-scoped sampler.
type lAggregate struct {
	input       lnode
	staged      []ctable.Scalar
	stagedNames []string
	nKeys       int
	aggs        []aggTarget
	outCols     []aggOutCol
	outNames    []string
}

func (a *lAggregate) op() string { return "Aggregate" }

func (a *lAggregate) detail() string {
	d := "(" + strings.Join(a.outNames, ", ") + ")"
	if a.nKeys > 0 {
		d += " [group by " + strings.Join(a.stagedNames[:a.nKeys], ", ") + "]"
	}
	return d
}

func (a *lAggregate) children() []lnode { return []lnode{a.input} }

// lDistinct coalesces duplicate data tuples, OR-ing their conditions into
// DNF (C_distinct of Fig. 1). Blocking.
type lDistinct struct{ input lnode }

func (d *lDistinct) op() string       { return "Distinct" }
func (d *lDistinct) detail() string   { return "" }
func (d *lDistinct) children() []lnode { return []lnode{d.input} }

// lSort orders the materialized result by one output column. Blocking.
type lSort struct {
	input lnode
	col   int
	name  string
	desc  bool
}

func (s *lSort) op() string { return "Sort" }

func (s *lSort) detail() string {
	if s.desc {
		return "(" + s.name + " DESC)"
	}
	return "(" + s.name + ")"
}

func (s *lSort) children() []lnode { return []lnode{s.input} }

// lLimit truncates the stream after n rows; upstream operators stop being
// pulled, so per-row sampling beyond the limit never runs.
type lLimit struct {
	input lnode
	n     int
}

func (l *lLimit) op() string       { return "Limit" }
func (l *lLimit) detail() string   { return fmt.Sprintf("%d", l.n) }
func (l *lLimit) children() []lnode { return []lnode{l.input} }

// lEmpty is the zero-row relation a constant-false WHERE folds to: no table
// is ever scanned.
type lEmpty struct{ reason string }

func (e *lEmpty) op() string       { return "Result" }
func (e *lEmpty) detail() string   { return "(no rows: " + e.reason + ")" }
func (e *lEmpty) children() []lnode { return nil }
